// Command dstore-bench regenerates the paper's evaluation tables and
// figures on the simulated system.
//
// Usage:
//
//	dstore-bench -table1            # Table I: system configuration
//	dstore-bench -table2            # Table II: benchmark inventory
//	dstore-bench -fig4              # Fig. 4: speedup, small and big inputs
//	dstore-bench -fig5              # Fig. 5: GPU L2 miss rate, small and big
//	dstore-bench -prefetch          # §IV: direct store vs prefetching
//	dstore-bench -standalone        # §III-H: stand-alone direct store
//	dstore-bench -bench MM -input big   # one benchmark in detail
//	dstore-bench -all               # everything
//
// Sweeps fan out across cores: -workers N bounds the number of
// concurrent benchmark runs (default GOMAXPROCS; 1 recovers the strictly
// sequential behaviour). The output is byte-identical for every worker
// count. -timing reports per-experiment wall clock on stderr — and,
// per benchmark, the host-side setup/run/report phase breakdown — and
// -cpuprofile/-memprofile write pprof profiles for diagnosing
// performance regressions.
//
// With -bench, the observability flags compare the two modes side by
// side (see DESIGN.md §10):
//
//	dstore-bench -bench NN -input small -hist            # latency histograms, CCSM vs DS
//	dstore-bench -bench NN -input small -trace nn.json   # nn.ccsm.json + nn.ds.json
//	dstore-bench -bench NN -input small -timeseries nn.csv
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dstore/internal/bench"
	"dstore/internal/core"
	"dstore/internal/obs"
	"dstore/internal/stats"
)

// emitJSON dumps one figure's comparisons as a JSON document carrying
// every measured field (ticks, accesses, misses, traffic, pushes).
func emitJSON(name string, cs []bench.Comparison) {
	type row struct {
		bench.Comparison
		Speedup       float64 `json:"speedup"`
		MissRateDelta float64 `json:"miss_rate_delta"`
	}
	rows := make([]row, len(cs))
	for i, c := range cs {
		rows[i] = row{Comparison: c, Speedup: c.Speedup(), MissRateDelta: c.MissRateDelta()}
	}
	doc := map[string]any{"figure": name, "rows": rows, "geomean_speedup": bench.GeomeanSpeedup(cs)}
	out, err := json.MarshalIndent(doc, "", "  ")
	fail(err)
	fmt.Println(string(out))
}

var timing bool

// timed runs f and, under -timing, reports its wall clock on stderr so
// it never contaminates the figure output.
func timed(name string, f func()) {
	start := time.Now()
	f()
	if timing {
		fmt.Fprintf(os.Stderr, "timing: %-12s %8.2fs\n", name, time.Since(start).Seconds())
	}
}

// hostClock backs the -timing phase breakdown. It lives in cmd/,
// outside the determinism contract: host wall time is measured around
// the simulation, never inside it, so results are identical with the
// clock on or off.
func hostClock() uint64 { return uint64(time.Now().UnixNano()) }

// reportPhases prints one benchmark's host-side phase breakdown.
func reportPhases(code string, in bench.Input, hp bench.HostPhases) {
	const ns = 1e9
	fmt.Fprintf(os.Stderr, "timing: %-3s/%-5s setup %6.3fs  run %6.3fs  report %6.3fs\n",
		code, in, float64(hp.SetupNS)/ns, float64(hp.RunNS)/ns, float64(hp.ReportNS)/ns)
}

// sweepFailed records that at least one sweep lost benchmarks, so the
// process can exit non-zero after rendering whatever survived.
var sweepFailed bool

// sweep runs jobs through the worker pool and renders what succeeded.
// A *bench.SweepError is reported per failure on stderr without
// suppressing the surviving results, and marks the run failed so main
// exits 1; any other error is fatal. Ctrl-C cancels the sweep through
// ctx: in-flight simulations abort and the remaining jobs surface as
// cancellation failures.
func sweep(ctx context.Context, jobs []bench.SweepJob, opt bench.SweepOptions) []bench.Comparison {
	if timing {
		opt.Clock = hostClock
	}
	cs, timings, err := bench.SweepWithTimingsContext(ctx, jobs, opt)
	if timing {
		for i, hp := range timings {
			reportPhases(jobs[i].Code, jobs[i].In, hp)
		}
	}
	if err != nil {
		se, ok := err.(*bench.SweepError)
		if !ok {
			fail(err)
		}
		fmt.Fprintln(os.Stderr, se)
		sweepFailed = true
		failed := se.FailedIndices()
		ok2 := cs[:0]
		for i, c := range cs {
			if !failed[i] {
				ok2 = append(ok2, c)
			}
		}
		cs = ok2
	}
	return cs
}

func main() {
	var (
		table1     = flag.Bool("table1", false, "print the Table I system configuration")
		table2     = flag.Bool("table2", false, "print the Table II benchmark inventory")
		fig4       = flag.Bool("fig4", false, "regenerate Fig. 4 (speedup)")
		fig5       = flag.Bool("fig5", false, "regenerate Fig. 5 (GPU L2 miss rate)")
		prefetch   = flag.Bool("prefetch", false, "compare direct store against a prefetching baseline")
		standalone = flag.Bool("standalone", false, "run direct store as a stand-alone replacement (§III-H)")
		one        = flag.String("bench", "", "run a single benchmark (code from Table II)")
		input      = flag.String("input", "both", "input size: small, big or both")
		all        = flag.Bool("all", false, "run every experiment")
		asJSON     = flag.Bool("json", false, "emit figure data as JSON instead of text tables")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent benchmark runs per sweep (1 = sequential)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")

		traceF  = flag.String("trace", "", "with -bench: write per-mode Chrome traces (FILE.ccsm.json and FILE.ds.json)")
		histOut = flag.Bool("hist", false, "with -bench: print latency histograms for both modes side by side")
		seriesF = flag.String("timeseries", "", "with -bench: write per-mode time-series files (.csv or .json by extension)")

		baselineJSON = flag.String("baseline-json", "", "run the Fig. 4 sweep sequentially and write the machine-readable performance baseline to this file")
		engineBench  = flag.String("engine-bench", "BENCH_sim_engine.txt", "with -baseline-json: microbenchmark baseline to embed")
		seedWall     = flag.Float64("seed-fig4-wall", 0, "with -baseline-json: the seed binary's wall seconds for the same sweep, for the recorded speedup")
	)
	flag.BoolVar(&timing, "timing", false, "report per-experiment wall clock on stderr")
	flag.Parse()

	if *all {
		*table1, *table2, *fig4, *fig5, *prefetch, *standalone = true, true, true, true, true, true
	}
	if !*table1 && !*table2 && !*fig4 && !*fig5 && !*prefetch && !*standalone && *one == "" && *baselineJSON == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		fail(err)
		fail(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			fail(err)
			runtime.GC()
			fail(pprof.WriteHeapProfile(f))
			f.Close()
		}()
	}

	inputs := parseInputs(*input)
	opt := bench.SweepOptions{Workers: *workers}

	// Ctrl-C cancels in-flight sweeps instead of killing the process
	// mid-write; a second Ctrl-C falls back to the default handler.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	if *baselineJSON != "" {
		fail(writeBaselineJSON(ctx, *baselineJSON, *engineBench, *seedWall))
	}

	if *table1 {
		fmt.Println("TABLE I: SYSTEM CONFIGURATION")
		fmt.Println(core.DefaultConfig(core.ModeCCSM).Table1())
	}
	if *table2 {
		fmt.Println("TABLE II: BENCHMARKS")
		fmt.Println(bench.Table2())
	}
	if *one != "" {
		obsWanted := *traceF != "" || *histOut || *seriesF != ""
		for _, in := range inputs {
			base := core.DefaultConfig(core.ModeCCSM)
			ds := core.DefaultConfig(core.ModeDirectStore)
			if obsWanted {
				base.Obs = obs.New(obs.Options{Trace: *traceF != "", Hist: *histOut, TimeSeries: *seriesF != ""})
				ds.Obs = obs.New(obs.Options{Trace: *traceF != "", Hist: *histOut, TimeSeries: *seriesF != ""})
			}
			var clk obs.Clock
			if timing {
				clk = hostClock
			}
			c, hp, err := bench.CompareWithConfigsTimedContext(ctx, *one, in, base, ds, clk)
			fail(err)
			printComparison(c)
			if timing {
				reportPhases(*one, in, hp)
			}
			if *histOut {
				printHistPair(base.Obs, ds.Obs)
			}
			if *traceF != "" {
				writeModeFile(*traceF, "ccsm", base.Obs.WriteTrace)
				writeModeFile(*traceF, "ds", ds.Obs.WriteTrace)
			}
			if *seriesF != "" {
				writeModeFile(*seriesF, "ccsm", seriesWriter(*seriesF, base.Obs))
				writeModeFile(*seriesF, "ds", seriesWriter(*seriesF, ds.Obs))
			}
		}
	}

	var byInput map[bench.Input][]bench.Comparison
	if *fig4 || *fig5 {
		byInput = map[bench.Input][]bench.Comparison{}
		for _, in := range inputs {
			in := in
			timed(fmt.Sprintf("fig4/5-%s", in), func() {
				byInput[in] = sweep(ctx, bench.StandardJobs(in), opt)
			})
		}
	}
	if *fig4 {
		for _, in := range inputs {
			if *asJSON {
				emitJSON(fmt.Sprintf("fig4-%s", in), byInput[in])
				continue
			}
			fmt.Printf("FIG. 4 (%s inputs): direct store speedup over CCSM\n", in)
			fmt.Println(bench.Fig4Table(in, byInput[in]))
		}
	}
	if *fig5 {
		for _, in := range inputs {
			if *asJSON {
				continue // the fig4 JSON already carries the miss-rate fields
			}
			fmt.Printf("FIG. 5 (%s inputs): GPU L2 miss rate\n", in)
			fmt.Println(bench.Fig5Table(in, byInput[in]))
		}
	}
	if *prefetch {
		fmt.Println("DIRECT STORE vs PREFETCHING (CCSM + next-line L2 prefetcher)")
		pf := core.DefaultConfig(core.ModeCCSM)
		pf.PrefetchDepth = 4
		// Two jobs per benchmark: DS vs plain CCSM, then DS vs the
		// prefetching baseline. Pairs stay adjacent in job order.
		var jobs []bench.SweepJob
		for _, in := range inputs {
			for _, code := range []string{"NN", "VA", "BL", "MM", "HT"} {
				jobs = append(jobs,
					bench.SweepJob{Code: code, In: in,
						Base: core.DefaultConfig(core.ModeCCSM),
						DS:   core.DefaultConfig(core.ModeDirectStore)},
					bench.SweepJob{Code: code, In: in,
						Base: pf,
						DS:   core.DefaultConfig(core.ModeDirectStore)})
			}
		}
		var cs []bench.Comparison
		timed("prefetch", func() { cs = sweep(ctx, jobs, opt) })
		t := stats.NewTable("Benchmark", "Input", "DS vs CCSM", "DS vs CCSM+prefetch")
		for i := 0; i+1 < len(cs); i += 2 {
			plain, vsPf := cs[i], cs[i+1]
			t.AddRow(plain.Code, plain.In.String(), stats.Percent(plain.Speedup()), stats.Percent(vsPf.Speedup()))
		}
		fmt.Println(t)
	}
	if *standalone {
		fmt.Println("STAND-ALONE DIRECT STORE (§III-H): CCSM removed between CPU and GPU")
		var jobs []bench.SweepJob
		for _, in := range inputs {
			for _, code := range []string{"NN", "VA", "BL", "BP", "NW"} {
				jobs = append(jobs,
					bench.SweepJob{Code: code, In: in,
						Base: core.DefaultConfig(core.ModeCCSM),
						DS:   core.DefaultConfig(core.ModeDirectStore)},
					bench.SweepJob{Code: code, In: in,
						Base: core.DefaultConfig(core.ModeCCSM),
						DS:   core.DefaultConfig(core.ModeStandalone)})
			}
		}
		var cs []bench.Comparison
		timed("standalone", func() { cs = sweep(ctx, jobs, opt) })
		t := stats.NewTable("Benchmark", "Input", "DS speedup", "Standalone speedup")
		for i := 0; i+1 < len(cs); i += 2 {
			ds, sa := cs[i], cs[i+1]
			t.AddRow(ds.Code, ds.In.String(), stats.Percent(ds.Speedup()), stats.Percent(sa.Speedup()))
		}
		fmt.Println(t)
	}

	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "dstore-bench: interrupted — results above are partial")
		os.Exit(1)
	}
	if sweepFailed {
		fmt.Fprintln(os.Stderr, "dstore-bench: one or more benchmarks failed — results above are partial")
		os.Exit(1)
	}
}

func parseInputs(s string) []bench.Input {
	switch s {
	case "small":
		return []bench.Input{bench.Small}
	case "big":
		return []bench.Input{bench.Big}
	case "both":
		return []bench.Input{bench.Small, bench.Big}
	default:
		fmt.Fprintf(os.Stderr, "unknown input size %q (want small, big or both)\n", s)
		os.Exit(2)
		return nil
	}
}

func printComparison(c bench.Comparison) {
	fmt.Printf("%s (%s inputs)\n", c.Code, c.In)
	fmt.Printf("  CCSM: ticks=%d l2acc=%d l2miss=%d rate=%s xbar=%dB\n",
		c.CCSM.Ticks, c.CCSM.L2Accesses, c.CCSM.L2Misses, stats.Percent(c.CCSM.MissRate), c.CCSM.XbarBytes)
	fmt.Printf("  DS:   ticks=%d l2acc=%d l2miss=%d rate=%s xbar=%dB direct=%dB pushes=%d\n",
		c.DS.Ticks, c.DS.L2Accesses, c.DS.L2Misses, stats.Percent(c.DS.MissRate),
		c.DS.XbarBytes, c.DS.DirectBytes, c.DS.Pushes)
	fmt.Printf("  speedup=%s  miss-rate delta=%+.1fpp\n\n",
		stats.Percent(c.Speedup()), c.MissRateDelta()*100)
}

// printHistPair renders the latency histograms of the two modes one
// after the other, so the direct-store shift is visible in one scroll.
func printHistPair(ccsm, ds *obs.Observer) {
	for _, m := range []struct {
		label string
		o     *obs.Observer
	}{{"CCSM", ccsm}, {"DS", ds}} {
		for id := obs.HistID(0); id < obs.NumHists; id++ {
			h := m.o.Hist(id)
			if h.Count() == 0 {
				continue
			}
			fmt.Printf("[%s] ", m.label)
			h.WriteText(os.Stdout)
			fmt.Println()
		}
	}
}

// writeModeFile writes one mode's export next to the requested path:
// out.json becomes out.ccsm.json and out.ds.json.
func writeModeFile(path, mode string, write func(io.Writer) error) {
	ext := filepath.Ext(path)
	name := strings.TrimSuffix(path, ext) + "." + mode + ext
	f, err := os.Create(name)
	fail(err)
	fail(write(f))
	fail(f.Close())
	fmt.Fprintf(os.Stderr, "wrote %s\n", name)
}

// seriesWriter picks the CSV or JSON time-series encoding from the
// requested path's extension.
func seriesWriter(path string, o *obs.Observer) func(io.Writer) error {
	if strings.HasSuffix(path, ".json") {
		return o.WriteSeriesJSON
	}
	return o.WriteSeriesCSV
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
