package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"dstore/internal/bench"
	"dstore/internal/benchfmt"
	"dstore/internal/core"
)

// baselineDoc is the machine-readable performance baseline
// (BENCH_coherence.json): the Fig. 4 sweep measured as a whole-system
// throughput number, plus the event-kernel microbenchmarks lifted from
// BENCH_sim_engine.txt. `make baseline-json` regenerates it; `make
// bench-diff` guards the microbenchmark half.
type baselineDoc struct {
	Schema string `json:"schema"`
	// Fig4 is the full Fig. 4 sweep (every Table II benchmark, both
	// inputs, CCSM and direct-store modes), run sequentially so
	// wall-clock and events/sec mean one core's throughput.
	Fig4 fig4Baseline `json:"fig4"`
	// SeedReference, when present, is the same sweep measured on the
	// growth seed's binary, back-to-back on the same machine (passed in
	// via -seed-fig4-wall; this tool cannot rebuild the seed itself).
	SeedReference *seedReference `json:"seed_reference,omitempty"`
	// EngineBenchmarks mirrors BENCH_sim_engine.txt: ns/op, B/op and
	// allocs/op per event-kernel microbenchmark.
	EngineBenchmarks []engineBench `json:"engine_benchmarks,omitempty"`
}

type fig4Baseline struct {
	WallSeconds  float64 `json:"wall_seconds"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Runs         int     `json:"runs"`
}

type seedReference struct {
	WallSeconds float64 `json:"wall_seconds"`
	Speedup     float64 `json:"wall_speedup"`
	Note        string  `json:"note"`
}

type engineBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// writeBaselineJSON runs the Fig. 4 sweep sequentially with the event
// counter on, merges in the microbenchmark baseline when engineTxt
// exists, and writes the JSON document to path.
func writeBaselineJSON(ctx context.Context, path, engineTxt string, seedWall float64) error {
	var doc baselineDoc
	doc.Schema = "dstore-baseline/1"

	var events uint64
	runs := 0
	start := time.Now()
	for _, in := range []bench.Input{bench.Small, bench.Big} {
		for _, job := range bench.StandardJobs(in) {
			for _, cfg := range []core.Config{job.Base, job.DS} {
				sys := core.NewSystem(cfg)
				w, err := bench.Build(sys, job.Code, job.In)
				if err != nil {
					return err
				}
				if _, _, err := w.RunPhasesContext(ctx, sys); err != nil {
					return fmt.Errorf("baseline %s (%s, %s): %w", job.Code, cfg.Mode, job.In, err)
				}
				if err := sys.CheckCoherence(); err != nil {
					return fmt.Errorf("baseline %s (%s, %s): %w", job.Code, cfg.Mode, job.In, err)
				}
				events += sys.Engine.Executed()
				runs++
			}
		}
	}
	wall := time.Since(start).Seconds()
	doc.Fig4 = fig4Baseline{
		WallSeconds:  wall,
		Events:       events,
		EventsPerSec: float64(events) / wall,
		Runs:         runs,
	}
	if seedWall > 0 {
		doc.SeedReference = &seedReference{
			WallSeconds: seedWall,
			Speedup:     seedWall / wall,
			Note:        "seed binary, same sweep, same machine, measured back-to-back",
		}
	}

	if f, err := os.Open(engineTxt); err == nil {
		entries, perr := benchfmt.Parse(f)
		f.Close()
		if perr != nil {
			return fmt.Errorf("%s: %w", engineTxt, perr)
		}
		for _, e := range entries {
			ns, _ := e.Value("ns/op")
			b, _ := e.Value("B/op")
			allocs, _ := e.Value("allocs/op")
			doc.EngineBenchmarks = append(doc.EngineBenchmarks, engineBench{
				Name: e.Name, NsPerOp: ns, BytesPerOp: b, AllocsPerOp: allocs,
			})
		}
	} else {
		fmt.Fprintf(os.Stderr, "dstore-bench: %s not found; writing baseline without engine microbenchmarks\n", engineTxt)
	}

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d runs, %.2fs wall, %.3gM events/sec\n",
		path, runs, wall, doc.Fig4.EventsPerSec/1e6)
	return nil
}
