// Command dstore-serve exposes the simulator as a long-running HTTP
// service: submit benchmark runs as JSON jobs, poll for results, and
// let the content-addressed cache absorb repeated requests.
//
// Usage:
//
//	dstore-serve                      # listen on :8080
//	dstore-serve -addr 127.0.0.1:9000 -workers 8 -queue 128
//	dstore-serve -store /var/dstore   # results + warm-prefix snapshots
//	                                  # persist across restarts
//	dstore-serve -smoke               # boot on a random port, run the
//	                                  # end-to-end cache-hit smoke test
//
// API:
//
//	POST /v1/runs            submit {"bench":"MM","mode":"direct-store","input":"small"}
//	GET  /v1/runs/{id}       job status (+ result once done)
//	GET  /v1/runs/{id}/result raw canonical result document
//	GET  /v1/benchmarks      what can be submitted
//	GET  /healthz            liveness
//	GET  /metrics            Prometheus counters; /v1/stats is the JSON view
//	POST /v1/chaos           seeded fault-injection soak run (requires -chaos)
//
// SIGINT/SIGTERM shut down gracefully: queued jobs are cancelled and
// in-flight simulations drain (bounded by -drain-timeout); with -store
// set, cached results and snapshots are flushed to disk first.
//
// Several daemons can be fronted by dstore-coord, which consistent-
// hashes job IDs across them and adds batch sweeps (see DESIGN.md §12).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dstore/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 64, "bounded job queue depth (full queue → 429)")
		cacheEntries = flag.Int("cache", 1024, "result cache capacity (entries)")
		jobTimeout   = flag.Duration("job-timeout", 10*time.Minute, "per-job simulation timeout (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "graceful-shutdown drain bound")
		stallGuard   = flag.Uint64("stall-guard", 0, "per-tick event budget before a job is failed as livelocked (0 = default)")
		enableChaos  = flag.Bool("chaos", false, "expose POST /v1/chaos (seeded fault-injection soak runs)")
		storeDir     = flag.String("store", "", "persistent store directory: results and warm-prefix snapshots survive restarts (empty = memory only)")
		storeMax     = flag.Int64("store-max-bytes", 0, "disk store size cap in bytes (0 = 256 MiB default, negative = unlimited)")
		name         = flag.String("name", "", "process name in trace exports (default dstore-serve)")
		pprofOn      = flag.Bool("pprof", false, "expose GET /debug/pprof/ (CPU/heap profiling; dstore-coord's POST /v1/profiles captures from it)")
		smoke        = flag.Bool("smoke", false, "boot on a random port, run the cache-hit smoke test, exit")
	)
	flag.Parse()

	opt := serve.Options{
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		CacheEntries:     *cacheEntries,
		JobTimeout:       *jobTimeout,
		StallGuardEvents: *stallGuard,
		EnableChaos:      *enableChaos,
		StoreDir:         *storeDir,
		StoreMaxBytes:    *storeMax,
		Name:             *name,
		EnablePprof:      *pprofOn,
		// Span timestamps carry wall-clock nanoseconds in production;
		// tests inject deterministic clocks instead.
		//dstore:allow-wallclock trace timestamps at the daemon boundary
		Clock: func() uint64 { return uint64(time.Now().UnixNano()) },
	}

	if *smoke {
		if err := runSmoke(opt); err != nil {
			fmt.Fprintf(os.Stderr, "serve-smoke: FAIL: %v\n", err)
			os.Exit(1)
		}
		return
	}

	srv, err := serve.New(opt)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("dstore-serve listening on %s", ln.Addr())
	hs := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Printf("shutting down: cancelling queued jobs, draining in-flight simulations")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("drain cut short: %v", err)
	}
	log.Printf("bye")
}

// runSmoke boots the full daemon on a loopback port and exercises the
// zero-to-cached path over real HTTP: submit one small job, wait for
// the result, submit the identical job again, and require a
// byte-identical cached answer plus a cache-hit counter increment.
func runSmoke(opt serve.Options) error {
	srv, err := serve.New(opt)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		_ = srv.Shutdown(ctx)
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serve-smoke: daemon on %s\n", base)

	spec := `{"bench":"MT","mode":"direct-store","input":"small"}`
	client := &http.Client{Timeout: 30 * time.Second}

	// Submit and poll to completion.
	var first struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := postJSON(client, base+"/v1/runs", spec, http.StatusAccepted, &first); err != nil {
		return fmt.Errorf("first submission: %w", err)
	}
	fmt.Printf("serve-smoke: submitted job %s\n", first.ID)
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var st struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := getJSON(client, base+"/v1/runs/"+first.ID, &st); err != nil {
			return err
		}
		if st.Status == "done" {
			break
		}
		if st.Status == "failed" || st.Status == "cancelled" {
			return fmt.Errorf("job %s: %s", st.Status, st.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job still %q after 2m", st.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
	result1, err := getRaw(client, base+"/v1/runs/"+first.ID+"/result")
	if err != nil {
		return err
	}

	// Identical resubmission must be a cache hit with identical bytes.
	var second struct {
		ID     string          `json:"id"`
		Status string          `json:"status"`
		Cached bool            `json:"cached"`
		Result json.RawMessage `json:"result"`
	}
	if err := postJSON(client, base+"/v1/runs", spec, http.StatusOK, &second); err != nil {
		return fmt.Errorf("second submission: %w", err)
	}
	if !second.Cached || second.ID != first.ID {
		return fmt.Errorf("second submission not served from cache (id=%s cached=%v)", second.ID, second.Cached)
	}
	if !bytes.Equal([]byte(second.Result), result1) {
		return fmt.Errorf("cached result differs from first run:\n  first:  %s\n  cached: %s", result1, second.Result)
	}

	metrics, err := getRaw(client, base+"/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{
		"dstore_serve_cache_hits_total 1",
		"dstore_serve_jobs_executed_total 1",
	} {
		if !strings.Contains(string(metrics), want) {
			return fmt.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	fmt.Printf("serve-smoke: OK — 1 simulation executed, resubmission served %d byte-identical bytes from cache\n", len(result1))
	return nil
}

func postJSON(c *http.Client, url, body string, wantCode int, out any) error {
	resp, err := c.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		return fmt.Errorf("POST %s: got %d want %d: %s", url, resp.StatusCode, wantCode, b)
	}
	return json.Unmarshal(b, out)
}

func getJSON(c *http.Client, url string, out any) error {
	b, err := getRaw(c, url)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, out)
}

func getRaw(c *http.Client, url string) ([]byte, error) {
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, b)
	}
	return b, nil
}
