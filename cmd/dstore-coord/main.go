// Command dstore-coord fronts a fleet of dstore-serve workers with
// one coordinator: jobs are consistent-hashed across the fleet by
// their content-addressed IDs (so every resubmission of a spec lands
// on the worker whose caches already hold it), dead workers are
// probed out and failed over, and batch sweeps fan a config matrix
// out to the whole fleet with results streamed back as they land.
//
// Usage:
//
//	dstore-coord -workers http://h1:8080,http://h2:8080
//	dstore-coord -addr 127.0.0.1:9000 -workers http://h1:8080
//	dstore-coord -journal /var/lib/dstore/journal   # sweep crash-recovery
//	dstore-coord -smoke       # boot 2 in-process workers, sweep,
//	                          # kill one, verify failover; exit
//	dstore-coord -chaos-smoke # boot workers behind a chaos proxy,
//	                          # partition + corrupt, verify the sweep
//	                          # survives and integrity holds; exit
//
// API:
//
//	POST /v1/runs             submit one job; answered synchronously
//	GET  /v1/runs/{id}[/result|/trace]  proxied to the job's replicas
//	POST /v1/workers          register {"url":"http://host:port"}
//	GET  /v1/workers          fleet membership and health
//	POST /v1/sweeps           config matrix -> streamed results (SSE
//	                          with Accept: text/event-stream, NDJSON
//	                          otherwise) + aggregate report
//	GET  /v1/sweeps/{id}[/stream|/report]
//	GET  /healthz /metrics /v1/stats
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dstore/internal/fleet"
	"dstore/internal/fleet/chaosnet"
	"dstore/internal/serve"
)

func main() {
	var (
		addr          = flag.String("addr", ":8090", "listen address")
		workers       = flag.String("workers", "", "comma-separated dstore-serve base URLs (more can register via POST /v1/workers)")
		vnodes        = flag.Int("vnodes", 64, "hash-ring points per worker")
		replicas      = flag.Int("replicas", 0, "max workers tried per job (0 = all)")
		sweepWorkers  = flag.Int("sweep-workers", 16, "concurrent dispatches per sweep")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "worker health-probe period")
		probeTimeout  = flag.Duration("probe-timeout", 2*time.Second, "health-probe round bound")
		reqTimeout    = flag.Duration("request-timeout", 30*time.Second, "per-call timeout to a worker")
		pollInterval  = flag.Duration("poll-interval", 20*time.Millisecond, "status-poll period for accepted jobs")
		jobDeadline   = flag.Duration("job-deadline", 5*time.Minute, "end-to-end bound per job including failover")
		seed          = flag.Uint64("seed", 1, "seed for operational randomness (probe jitter, backoff jitter)")
		failThresh    = flag.Int("failure-threshold", 3, "consecutive failures before a worker's breaker opens")
		breakerCool   = flag.Duration("breaker-cooldown", 5*time.Second, "open-breaker cooldown before a half-open trial")
		quarCool      = flag.Duration("quarantine-cooldown", 2*time.Minute, "minimum quarantine after a corrupt result")
		dispRetries   = flag.Int("dispatch-retries", 3, "extra ring passes per job with backoff (negative = none)")
		backoffBase   = flag.Duration("backoff-base", 100*time.Millisecond, "first-retry backoff")
		backoffMax    = flag.Duration("backoff-max", 5*time.Second, "per-round backoff cap")
		maxPending    = flag.Int("max-pending", 1024, "dispatches in flight before load shedding (negative = unlimited)")
		journal       = flag.String("journal", "", "directory for sweep journals; incomplete sweeps resume at startup")
		name          = flag.String("name", "", "process name in trace exports (default coordinator)")
		storeDir      = flag.String("store", "", "content-addressed store directory for fleet profile captures (POST /v1/profiles)")
		pprofOn       = flag.Bool("pprof", false, "expose GET /debug/pprof/ on the coordinator")
		smoke         = flag.Bool("smoke", false, "boot an in-process fleet, sweep it, kill a worker, verify failover, exit")
		chaosSmoke    = flag.Bool("chaos-smoke", false, "boot an in-process fleet behind a chaos proxy, partition and corrupt it, verify recovery, exit")
		obsSmoke      = flag.Bool("obs-smoke", false, "boot an in-process fleet, sweep it, verify the stitched trace and metrics federation, exit")
	)
	flag.Parse()

	opt := fleet.Options{
		Vnodes:             *vnodes,
		Replicas:           *replicas,
		SweepWorkers:       *sweepWorkers,
		ProbeInterval:      *probeInterval,
		ProbeTimeout:       *probeTimeout,
		RequestTimeout:     *reqTimeout,
		PollInterval:       *pollInterval,
		JobDeadline:        *jobDeadline,
		Seed:               *seed,
		FailureThreshold:   *failThresh,
		BreakerCooldown:    *breakerCool,
		QuarantineCooldown: *quarCool,
		DispatchRetries:    *dispRetries,
		BackoffBase:        *backoffBase,
		BackoffMax:         *backoffMax,
		MaxPending:         *maxPending,
		JournalDir:         *journal,
		Name:               *name,
		StoreDir:           *storeDir,
		EnablePprof:        *pprofOn,
		// Span timestamps carry wall-clock nanoseconds in production;
		// tests inject deterministic clocks instead.
		//dstore:allow-wallclock trace timestamps at the daemon boundary
		Clock: func() uint64 { return uint64(time.Now().UnixNano()) },
	}
	if *workers != "" {
		for _, w := range strings.Split(*workers, ",") {
			if w = strings.TrimSpace(w); w != "" {
				opt.Workers = append(opt.Workers, w)
			}
		}
	}

	if *smoke {
		if err := runSmoke(opt); err != nil {
			fmt.Fprintf(os.Stderr, "fleet-smoke: FAIL: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *chaosSmoke {
		if err := runChaosSmoke(opt); err != nil {
			fmt.Fprintf(os.Stderr, "fleet-chaos-smoke: FAIL: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *obsSmoke {
		if err := runObsSmoke(opt); err != nil {
			fmt.Fprintf(os.Stderr, "obs-fleet-smoke: FAIL: %v\n", err)
			os.Exit(1)
		}
		return
	}

	coord, err := fleet.New(opt)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("dstore-coord listening on %s (%d static workers)", ln.Addr(), len(opt.Workers))
	hs := &http.Server{Handler: coord.Handler()}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Printf("shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = hs.Shutdown(shCtx)
	coord.Close()
	log.Printf("bye")
}

// smokeWorker is one in-process dstore-serve node.
type smokeWorker struct {
	srv *serve.Server
	hs  *http.Server
	url string
}

func startSmokeWorker(dir string) (*smokeWorker, error) {
	srv, err := serve.New(serve.Options{Workers: 2, StoreDir: dir})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	return &smokeWorker{srv: srv, hs: hs, url: "http://" + ln.Addr().String()}, nil
}

func (w *smokeWorker) kill() {
	_ = w.hs.Close()
	w.srv.Close()
}

// runSmoke exercises the fleet end to end in one process: two
// persistent workers, a coordinator, a streamed sweep, then a worker
// kill followed by resubmission of every sweep job — each must still
// answer, byte-identical, via the surviving replica.
func runSmoke(opt fleet.Options) error {
	tmp, err := os.MkdirTemp("", "fleet-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	var ws [2]*smokeWorker
	for i := range ws {
		w, err := startSmokeWorker(fmt.Sprintf("%s/w%d", tmp, i))
		if err != nil {
			return err
		}
		defer w.kill()
		ws[i] = w
		opt.Workers = append(opt.Workers, w.url)
	}
	opt.ProbeInterval = 500 * time.Millisecond
	opt.PollInterval = 5 * time.Millisecond
	coord, err := fleet.New(opt)
	if err != nil {
		return err
	}
	defer coord.Close()
	chs := httptestServer(coord.Handler())
	defer chs.close()
	base := chs.url
	fmt.Printf("fleet-smoke: coordinator on %s, workers %s %s\n", base, ws[0].url, ws[1].url)

	// One sweep: 3 benches x 2 prefetch depths = 6 jobs across the
	// fleet, streamed back as NDJSON.
	matrix := `{"bench":["MT","VA","BL"],"mode":["direct-store"],"config":{"prefetch_depth":[0,2]}}`
	results, report, err := streamSweep(base, matrix)
	if err != nil {
		return err
	}
	if len(results) != 6 || report == nil {
		return fmt.Errorf("sweep streamed %d results (want 6), report %v", len(results), report != nil)
	}
	byWorker := map[string]int{}
	for _, o := range results {
		if o.Error != "" {
			return fmt.Errorf("sweep job %.8s failed: %s", o.ID, o.Error)
		}
		byWorker[o.Worker]++
	}
	if report.Failed != 0 || report.Completed != 6 {
		return fmt.Errorf("report totals off: %+v", report)
	}
	fmt.Printf("fleet-smoke: sweep %.8s done — %d results, split %v, frontier %d points\n",
		report.SweepID, report.Completed, byWorker, len(report.Frontier))

	// Kill worker 0 and resubmit every job: the ring must fail each
	// one over to the survivor with byte-identical results.
	ws[0].kill()
	fmt.Printf("fleet-smoke: killed worker %s\n", ws[0].url)
	failedOver := 0
	for _, o := range results {
		body, err := resubmit(base, o.ID, results)
		if err != nil {
			return fmt.Errorf("post-kill job %.8s: %w", o.ID, err)
		}
		if !bytes.Equal(body, o.Result) {
			return fmt.Errorf("post-kill job %.8s returned different bytes", o.ID)
		}
		if o.Worker == ws[0].url {
			failedOver++
		}
	}
	if byWorker[ws[0].url] > 0 && failedOver == 0 {
		return fmt.Errorf("worker %s owned jobs but none failed over", ws[0].url)
	}
	fmt.Printf("fleet-smoke: OK — all 6 jobs re-answered after the kill (%d via failover), bytes identical\n", failedOver)
	return nil
}

// runChaosSmoke exercises the fault-tolerance path end to end in one
// process: two workers, one behind a chaosnet proxy, and a
// coordinator with fast breakers. A clean sweep establishes the
// baseline, then the proxied worker is partitioned (jobs must fail
// over, the breaker must trip), healed (the breaker must reclose via
// a probe), served one corrupted result (the coordinator must catch
// the digest mismatch, quarantine the worker, and retry on the
// replica), and finally requalified after the quarantine cooldown.
func runChaosSmoke(opt fleet.Options) error {
	tmp, err := os.MkdirTemp("", "fleet-chaos-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	var ws [2]*smokeWorker
	for i := range ws {
		w, err := startSmokeWorker(fmt.Sprintf("%s/w%d", tmp, i))
		if err != nil {
			return err
		}
		defer w.kill()
		ws[i] = w
	}
	proxy, err := chaosnet.New(ws[0].url, opt.Seed, chaosnet.FaultPlan{})
	if err != nil {
		return err
	}
	phs := httptestServer(proxy)
	defer phs.close()

	// The coordinator only knows the proxy's address for worker 0, so
	// every byte to or from it crosses the chaos path.
	opt.Workers = []string{phs.url, ws[1].url}
	opt.ProbeInterval = 200 * time.Millisecond
	opt.PollInterval = 5 * time.Millisecond
	opt.FailureThreshold = 2
	opt.BreakerCooldown = 300 * time.Millisecond
	opt.QuarantineCooldown = 1200 * time.Millisecond
	opt.DispatchRetries = 3
	opt.BackoffBase = 20 * time.Millisecond
	opt.BackoffMax = 100 * time.Millisecond
	coord, err := fleet.New(opt)
	if err != nil {
		return err
	}
	defer coord.Close()
	chs := httptestServer(coord.Handler())
	defer chs.close()
	base := chs.url
	fmt.Printf("fleet-chaos-smoke: coordinator on %s, workers %s (chaos-proxied %s) %s\n",
		base, phs.url, ws[0].url, ws[1].url)

	// Phase 1: a clean sweep through the zero-fault proxy — 12 jobs so
	// the ring all but surely assigns the proxied worker some of them.
	matrix := `{"bench":["MT","VA","BL"],"mode":["direct-store"],"config":{"prefetch_depth":[0,2],"sms":[2,4]}}`
	results, report, err := streamSweep(base, matrix)
	if err != nil {
		return err
	}
	if len(results) != 12 || report == nil || report.Failed != 0 {
		return fmt.Errorf("baseline sweep: %d results, report %+v", len(results), report)
	}
	var proxied []fleet.Outcome
	for _, o := range results {
		if o.Error != "" {
			return fmt.Errorf("baseline job %.8s failed: %s", o.ID, o.Error)
		}
		if o.Worker == phs.url {
			proxied = append(proxied, o)
		}
	}
	if len(proxied) == 0 {
		return fmt.Errorf("ring assigned no jobs to the proxied worker across %d jobs; rerun", len(results))
	}
	fmt.Printf("fleet-chaos-smoke: baseline sweep %.8s done — %d results, %d via the chaos proxy\n",
		report.SweepID, report.Completed, len(proxied))

	// Phase 2: partition the proxied worker. Its jobs must still
	// answer, byte-identical, via the replica, and the repeated
	// connection resets must trip its breaker.
	proxy.Partition(true)
	for i := 0; i < 2; i++ {
		for _, o := range proxied {
			body, err := resubmit(base, o.ID, results)
			if err != nil {
				return fmt.Errorf("partitioned job %.8s: %w", o.ID, err)
			}
			if !bytes.Equal(body, o.Result) {
				return fmt.Errorf("partitioned job %.8s returned different bytes", o.ID)
			}
		}
	}
	stats, err := chaosStats(base)
	if err != nil {
		return err
	}
	if stats["fleet_breaker_trips_total"] == 0 {
		return fmt.Errorf("partition did not trip the breaker: %v", stats)
	}
	fmt.Printf("fleet-chaos-smoke: partition survived — %d jobs re-answered via failover, breaker tripped\n", len(proxied))

	// Phase 3: heal the partition; a health probe must half-open and
	// reclose the breaker.
	proxy.Partition(false)
	if err := awaitWorkerHealthy(base, phs.url, 15*time.Second); err != nil {
		return fmt.Errorf("breaker did not reclose after heal: %w", err)
	}
	stats, err = chaosStats(base)
	if err != nil {
		return err
	}
	if stats["fleet_breaker_recloses_total"] == 0 {
		return fmt.Errorf("heal recorded no breaker reclose: %v", stats)
	}
	fmt.Printf("fleet-chaos-smoke: partition healed — breaker reclosed via probe\n")

	// Phase 4: serve exactly one corrupted result body. The
	// coordinator must catch the digest mismatch, quarantine the
	// worker, and still answer with clean bytes from the replica.
	proxy.CorruptNext(1)
	pick := proxied[0]
	body, err := resubmit(base, pick.ID, results)
	if err != nil {
		return fmt.Errorf("job %.8s during corruption: %w", pick.ID, err)
	}
	if !bytes.Equal(body, pick.Result) {
		return fmt.Errorf("corrupt result leaked through for job %.8s", pick.ID)
	}
	stats, err = chaosStats(base)
	if err != nil {
		return err
	}
	if stats["fleet_corrupt_results_total"] == 0 || stats["fleet_quarantines_total"] == 0 {
		return fmt.Errorf("corruption not detected or worker not quarantined: %v", stats)
	}
	if c := proxy.Counts(); c.Corruptions != 1 {
		return fmt.Errorf("proxy injected %d corruptions, want 1", c.Corruptions)
	}
	fmt.Printf("fleet-chaos-smoke: corrupt result caught — worker quarantined, clean bytes served from replica\n")

	// Phase 5: after the quarantine cooldown a successful probe must
	// requalify the worker.
	if err := awaitWorkerHealthy(base, phs.url, 20*time.Second); err != nil {
		return fmt.Errorf("worker not requalified after quarantine cooldown: %w", err)
	}
	stats, err = chaosStats(base)
	if err != nil {
		return err
	}
	if stats["fleet_requalified_total"] == 0 {
		return fmt.Errorf("requalification not counted: %v", stats)
	}
	body, err = resubmit(base, pick.ID, results)
	if err != nil || !bytes.Equal(body, pick.Result) {
		return fmt.Errorf("post-requalification job %.8s: %v", pick.ID, err)
	}
	fmt.Printf("fleet-chaos-smoke: OK — partition, heal, corruption, quarantine, requalification all verified\n")
	return nil
}

// chaosStats fetches the coordinator's counter snapshot.
func chaosStats(base string) (map[string]uint64, error) {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m map[string]uint64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return m, nil
}

// awaitWorkerHealthy polls GET /v1/workers until the worker at url
// reports healthy (breaker closed, not quarantined) or the deadline
// passes.
func awaitWorkerHealthy(base, url string, within time.Duration) error {
	//dstore:allow-wallclock smoke-test deadline, never in a simulation result
	deadline := time.Now().Add(within)
	var last []byte
	//dstore:allow-wallclock smoke-test deadline, never in a simulation result
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/workers")
		if err == nil {
			var lst struct {
				Workers []struct {
					URL     string `json:"url"`
					Healthy bool   `json:"healthy"`
				} `json:"workers"`
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			last = b
			if json.Unmarshal(b, &lst) == nil {
				for _, w := range lst.Workers {
					if w.URL == url && w.Healthy {
						return nil
					}
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("worker %s not healthy within %v (last: %s)", url, within, last)
}

// resubmit re-runs one sweep job through the coordinator using the
// canonical spec the sweep stream carried for it.
func resubmit(base, id string, results []fleet.Outcome) ([]byte, error) {
	var spec []byte
	for _, o := range results {
		if o.ID == id {
			spec = o.Spec
		}
	}
	if spec == nil {
		return nil, fmt.Errorf("job %.8s not in sweep results", id)
	}
	resp, err := http.Post(base+"/v1/runs", "application/json", bytes.NewReader(spec))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var rr struct {
		ID     string          `json:"id"`
		Result json.RawMessage `json:"result"`
		Error  string          `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%d: %s", resp.StatusCode, rr.Error)
	}
	if rr.ID != id {
		return nil, fmt.Errorf("resubmitted spec hashed to %.8s, want %.8s", rr.ID, id)
	}
	return rr.Result, nil
}

// streamSweep posts the matrix and drains the NDJSON stream.
func streamSweep(base, matrix string) ([]fleet.Outcome, *fleet.Report, error) {
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(matrix))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return nil, nil, fmt.Errorf("sweep submit: %d: %s", resp.StatusCode, buf.String())
	}
	var results []fleet.Outcome
	var report *fleet.Report
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Event string          `json:"event"`
			Data  json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, nil, fmt.Errorf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case "result":
			var o fleet.Outcome
			if err := json.Unmarshal(ev.Data, &o); err != nil {
				return nil, nil, err
			}
			results = append(results, o)
		case "report":
			report = &fleet.Report{}
			if err := json.Unmarshal(ev.Data, report); err != nil {
				return nil, nil, err
			}
		}
	}
	return results, report, sc.Err()
}

// httptestServer is a minimal net/http/httptest.Server stand-in so
// the smoke path needs no testing imports in a main package.
type smokeHTTP struct {
	hs  *http.Server
	url string
}

func httptestServer(h http.Handler) *smokeHTTP {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: h}
	go func() { _ = hs.Serve(ln) }()
	return &smokeHTTP{hs: hs, url: "http://" + ln.Addr().String()}
}

func (s *smokeHTTP) close() { _ = s.hs.Close() }
