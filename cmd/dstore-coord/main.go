// Command dstore-coord fronts a fleet of dstore-serve workers with
// one coordinator: jobs are consistent-hashed across the fleet by
// their content-addressed IDs (so every resubmission of a spec lands
// on the worker whose caches already hold it), dead workers are
// probed out and failed over, and batch sweeps fan a config matrix
// out to the whole fleet with results streamed back as they land.
//
// Usage:
//
//	dstore-coord -workers http://h1:8080,http://h2:8080
//	dstore-coord -addr 127.0.0.1:9000 -workers http://h1:8080
//	dstore-coord -smoke       # boot 2 in-process workers, sweep,
//	                          # kill one, verify failover; exit
//
// API:
//
//	POST /v1/runs             submit one job; answered synchronously
//	GET  /v1/runs/{id}[/result|/trace]  proxied to the job's replicas
//	POST /v1/workers          register {"url":"http://host:port"}
//	GET  /v1/workers          fleet membership and health
//	POST /v1/sweeps           config matrix -> streamed results (SSE
//	                          with Accept: text/event-stream, NDJSON
//	                          otherwise) + aggregate report
//	GET  /v1/sweeps/{id}[/stream|/report]
//	GET  /healthz /metrics /v1/stats
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dstore/internal/fleet"
	"dstore/internal/serve"
)

func main() {
	var (
		addr          = flag.String("addr", ":8090", "listen address")
		workers       = flag.String("workers", "", "comma-separated dstore-serve base URLs (more can register via POST /v1/workers)")
		vnodes        = flag.Int("vnodes", 64, "hash-ring points per worker")
		replicas      = flag.Int("replicas", 0, "max workers tried per job (0 = all)")
		sweepWorkers  = flag.Int("sweep-workers", 16, "concurrent dispatches per sweep")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "worker health-probe period")
		probeTimeout  = flag.Duration("probe-timeout", 2*time.Second, "health-probe round bound")
		reqTimeout    = flag.Duration("request-timeout", 30*time.Second, "per-call timeout to a worker")
		pollInterval  = flag.Duration("poll-interval", 20*time.Millisecond, "status-poll period for accepted jobs")
		jobDeadline   = flag.Duration("job-deadline", 5*time.Minute, "end-to-end bound per job including failover")
		smoke         = flag.Bool("smoke", false, "boot an in-process fleet, sweep it, kill a worker, verify failover, exit")
	)
	flag.Parse()

	opt := fleet.Options{
		Vnodes:         *vnodes,
		Replicas:       *replicas,
		SweepWorkers:   *sweepWorkers,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		RequestTimeout: *reqTimeout,
		PollInterval:   *pollInterval,
		JobDeadline:    *jobDeadline,
	}
	if *workers != "" {
		for _, w := range strings.Split(*workers, ",") {
			if w = strings.TrimSpace(w); w != "" {
				opt.Workers = append(opt.Workers, w)
			}
		}
	}

	if *smoke {
		if err := runSmoke(opt); err != nil {
			fmt.Fprintf(os.Stderr, "fleet-smoke: FAIL: %v\n", err)
			os.Exit(1)
		}
		return
	}

	coord, err := fleet.New(opt)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("dstore-coord listening on %s (%d static workers)", ln.Addr(), len(opt.Workers))
	hs := &http.Server{Handler: coord.Handler()}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Printf("shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = hs.Shutdown(shCtx)
	coord.Close()
	log.Printf("bye")
}

// smokeWorker is one in-process dstore-serve node.
type smokeWorker struct {
	srv *serve.Server
	hs  *http.Server
	url string
}

func startSmokeWorker(dir string) (*smokeWorker, error) {
	srv, err := serve.New(serve.Options{Workers: 2, StoreDir: dir})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	return &smokeWorker{srv: srv, hs: hs, url: "http://" + ln.Addr().String()}, nil
}

func (w *smokeWorker) kill() {
	_ = w.hs.Close()
	w.srv.Close()
}

// runSmoke exercises the fleet end to end in one process: two
// persistent workers, a coordinator, a streamed sweep, then a worker
// kill followed by resubmission of every sweep job — each must still
// answer, byte-identical, via the surviving replica.
func runSmoke(opt fleet.Options) error {
	tmp, err := os.MkdirTemp("", "fleet-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	var ws [2]*smokeWorker
	for i := range ws {
		w, err := startSmokeWorker(fmt.Sprintf("%s/w%d", tmp, i))
		if err != nil {
			return err
		}
		defer w.kill()
		ws[i] = w
		opt.Workers = append(opt.Workers, w.url)
	}
	opt.ProbeInterval = 500 * time.Millisecond
	opt.PollInterval = 5 * time.Millisecond
	coord, err := fleet.New(opt)
	if err != nil {
		return err
	}
	defer coord.Close()
	chs := httptestServer(coord.Handler())
	defer chs.close()
	base := chs.url
	fmt.Printf("fleet-smoke: coordinator on %s, workers %s %s\n", base, ws[0].url, ws[1].url)

	// One sweep: 3 benches x 2 prefetch depths = 6 jobs across the
	// fleet, streamed back as NDJSON.
	matrix := `{"bench":["MT","VA","BL"],"mode":["direct-store"],"config":{"prefetch_depth":[0,2]}}`
	results, report, err := streamSweep(base, matrix)
	if err != nil {
		return err
	}
	if len(results) != 6 || report == nil {
		return fmt.Errorf("sweep streamed %d results (want 6), report %v", len(results), report != nil)
	}
	byWorker := map[string]int{}
	for _, o := range results {
		if o.Error != "" {
			return fmt.Errorf("sweep job %.8s failed: %s", o.ID, o.Error)
		}
		byWorker[o.Worker]++
	}
	if report.Failed != 0 || report.Completed != 6 {
		return fmt.Errorf("report totals off: %+v", report)
	}
	fmt.Printf("fleet-smoke: sweep %.8s done — %d results, split %v, frontier %d points\n",
		report.SweepID, report.Completed, byWorker, len(report.Frontier))

	// Kill worker 0 and resubmit every job: the ring must fail each
	// one over to the survivor with byte-identical results.
	ws[0].kill()
	fmt.Printf("fleet-smoke: killed worker %s\n", ws[0].url)
	failedOver := 0
	for _, o := range results {
		body, err := resubmit(base, o.ID, results)
		if err != nil {
			return fmt.Errorf("post-kill job %.8s: %w", o.ID, err)
		}
		if !bytes.Equal(body, o.Result) {
			return fmt.Errorf("post-kill job %.8s returned different bytes", o.ID)
		}
		if o.Worker == ws[0].url {
			failedOver++
		}
	}
	if byWorker[ws[0].url] > 0 && failedOver == 0 {
		return fmt.Errorf("worker %s owned jobs but none failed over", ws[0].url)
	}
	fmt.Printf("fleet-smoke: OK — all 6 jobs re-answered after the kill (%d via failover), bytes identical\n", failedOver)
	return nil
}

// resubmit re-runs one sweep job through the coordinator using the
// canonical spec the sweep stream carried for it.
func resubmit(base, id string, results []fleet.Outcome) ([]byte, error) {
	var spec []byte
	for _, o := range results {
		if o.ID == id {
			spec = o.Spec
		}
	}
	if spec == nil {
		return nil, fmt.Errorf("job %.8s not in sweep results", id)
	}
	resp, err := http.Post(base+"/v1/runs", "application/json", bytes.NewReader(spec))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var rr struct {
		ID     string          `json:"id"`
		Result json.RawMessage `json:"result"`
		Error  string          `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%d: %s", resp.StatusCode, rr.Error)
	}
	if rr.ID != id {
		return nil, fmt.Errorf("resubmitted spec hashed to %.8s, want %.8s", rr.ID, id)
	}
	return rr.Result, nil
}

// streamSweep posts the matrix and drains the NDJSON stream.
func streamSweep(base, matrix string) ([]fleet.Outcome, *fleet.Report, error) {
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(matrix))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return nil, nil, fmt.Errorf("sweep submit: %d: %s", resp.StatusCode, buf.String())
	}
	var results []fleet.Outcome
	var report *fleet.Report
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Event string          `json:"event"`
			Data  json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, nil, fmt.Errorf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case "result":
			var o fleet.Outcome
			if err := json.Unmarshal(ev.Data, &o); err != nil {
				return nil, nil, err
			}
			results = append(results, o)
		case "report":
			report = &fleet.Report{}
			if err := json.Unmarshal(ev.Data, report); err != nil {
				return nil, nil, err
			}
		}
	}
	return results, report, sc.Err()
}

// httptestServer is a minimal net/http/httptest.Server stand-in so
// the smoke path needs no testing imports in a main package.
type smokeHTTP struct {
	hs  *http.Server
	url string
}

func httptestServer(h http.Handler) *smokeHTTP {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: h}
	go func() { _ = hs.Serve(ln) }()
	return &smokeHTTP{hs: hs, url: "http://" + ln.Addr().String()}
}

func (s *smokeHTTP) close() { _ = s.hs.Close() }
