package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"dstore/internal/fleet"
	"dstore/internal/obs/dtrace"
	"dstore/internal/serve"
)

// runObsSmoke exercises the observability plane end to end over real
// HTTP: two named in-process workers and a coordinator run a small
// sweep, then the smoke requires (1) a stitched Chrome trace from
// GET /v1/sweeps/{id}/trace that re-parses via encoding/json and
// carries spans from the coordinator and at least two worker
// processes under the sweep's trace ID, and (2) a federated /metrics
// whose unlabelled fleet aggregates equal the sums of the workers'
// own scrapes.
func runObsSmoke(opt fleet.Options) error {
	tmp, err := os.MkdirTemp("", "obs-fleet-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	//dstore:allow-wallclock trace timestamps at the daemon boundary
	wall := func() uint64 { return uint64(time.Now().UnixNano()) }
	var ws [2]*smokeWorker
	for i := range ws {
		srv, err := serve.New(serve.Options{
			Workers:  2,
			StoreDir: fmt.Sprintf("%s/w%d", tmp, i),
			Name:     fmt.Sprintf("worker-%d", i),
			Clock:    wall,
		})
		if err != nil {
			return err
		}
		hs := httptestServer(srv.Handler())
		ws[i] = &smokeWorker{srv: srv, hs: hs.hs, url: hs.url}
		defer ws[i].kill()
		opt.Workers = append(opt.Workers, ws[i].url)
	}
	opt.ProbeInterval = 500 * time.Millisecond
	opt.PollInterval = 5 * time.Millisecond
	coord, err := fleet.New(opt)
	if err != nil {
		return err
	}
	defer coord.Close()
	chs := httptestServer(coord.Handler())
	defer chs.close()
	base := chs.url
	fmt.Printf("obs-fleet-smoke: coordinator on %s, workers %s %s\n", base, ws[0].url, ws[1].url)

	// A sweep wide enough that the ring all but surely lands jobs on
	// both workers.
	matrix := `{"bench":["MT","VA","BL"],"mode":["direct-store"],"config":{"prefetch_depth":[0,2],"sms":[2,4]}}`
	results, report, err := streamSweep(base, matrix)
	if err != nil {
		return err
	}
	if len(results) != 12 || report == nil || report.Failed != 0 {
		return fmt.Errorf("sweep: %d results, report %+v", len(results), report)
	}
	byWorker := map[string]int{}
	for _, o := range results {
		if o.Error != "" {
			return fmt.Errorf("sweep job %.8s failed: %s", o.ID, o.Error)
		}
		if o.Trace == "" {
			return fmt.Errorf("sweep job %.8s outcome carries no trace id", o.ID)
		}
		byWorker[o.Worker]++
	}
	if len(byWorker) < 2 {
		return fmt.Errorf("ring used %d worker(s) across %d jobs; rerun", len(byWorker), len(results))
	}
	fmt.Printf("obs-fleet-smoke: sweep %.8s done — %d results split %v, trace %s\n",
		report.SweepID, report.Completed, byWorker, results[0].Trace)

	if err := checkStitchedTrace(base, report.SweepID, results[0].Trace); err != nil {
		return err
	}
	if err := checkFederation(base, ws[0].url, ws[1].url); err != nil {
		return err
	}
	fmt.Printf("obs-fleet-smoke: OK — stitched trace valid, federation equals per-worker sums\n")
	return nil
}

// checkStitchedTrace fetches the sweep's stitched trace and verifies
// it is well-formed Chrome trace JSON with spans from the coordinator
// and at least two worker processes, all under the sweep's trace ID.
func checkStitchedTrace(base, sweepID, wantTrace string) error {
	client := &http.Client{Timeout: 10 * time.Second}
	raw, err := getRawBody(client, base+"/v1/sweeps/"+sweepID+"/trace")
	if err != nil {
		return fmt.Errorf("trace export: %w", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("stitched trace is not valid JSON: %v", err)
	}
	if got := doc.OtherData["trace"]; got != wantTrace {
		return fmt.Errorf("stitched trace id %q, want %q", got, wantTrace)
	}
	processes := map[int]string{}
	spansPerPid := map[int]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			processes[ev.Pid] = ev.Args["name"]
		case "X":
			spansPerPid[ev.Pid]++
		}
	}
	workersWithSpans := 0
	coordSpans := 0
	for pid, name := range processes { //dstore:allow-maprange order folds into counters

		switch {
		case strings.HasPrefix(name, "worker-"):
			if spansPerPid[pid] > 0 {
				workersWithSpans++
			}
		case name == "coordinator":
			coordSpans = spansPerPid[pid]
		}
	}
	if workersWithSpans < 2 {
		return fmt.Errorf("stitched trace has spans from %d worker process(es), want >= 2:\n%s", workersWithSpans, raw)
	}
	if coordSpans == 0 {
		return fmt.Errorf("stitched trace has no coordinator spans")
	}
	fmt.Printf("obs-fleet-smoke: stitched trace — %d events across %d processes\n",
		len(doc.TraceEvents), len(processes))
	return nil
}

// checkFederation scrapes both workers directly, scrapes the
// coordinator's federated /metrics, and requires the unlabelled fleet
// aggregate of every federated counter to equal the per-worker sum.
func checkFederation(base string, workerURLs ...string) error {
	client := &http.Client{Timeout: 10 * time.Second}

	// Direct worker scrapes: the ground truth sums.
	sums := map[string]float64{}
	for _, wu := range workerURLs {
		raw, err := getRawBody(client, wu+"/metrics")
		if err != nil {
			return fmt.Errorf("scrape %s: %w", wu, err)
		}
		m, err := dtrace.Parse(string(raw))
		if err != nil {
			return fmt.Errorf("parse %s metrics: %w", wu, err)
		}
		for _, s := range m.Samples {
			sums[s.Name+"{"+s.Labels+"}"] += s.Value
		}
	}

	raw, err := getRawBody(client, base+"/metrics")
	if err != nil {
		return fmt.Errorf("scrape coordinator: %w", err)
	}
	fed, err := dtrace.Parse(string(raw))
	if err != nil {
		return fmt.Errorf("parse federated metrics: %w", err)
	}
	// Check a spread of counters that must have moved during the sweep;
	// every one's unlabelled aggregate must equal the direct sum.
	checked := 0
	for _, name := range []string{
		"dstore_serve_jobs_executed_total",
		"dstore_serve_cache_misses_total",
		"obs_spans_recorded_total",
		"dstore_serve_queue_wait_ns_count",
	} {
		var fedVal float64
		found := false
		for _, s := range fed.Samples {
			if s.Name == name && s.Labels == "" {
				fedVal = s.Value
				found = true
			}
		}
		if !found {
			return fmt.Errorf("federated /metrics has no fleet aggregate for %s", name)
		}
		want := sums[name+"{}"]
		if fedVal != want {
			return fmt.Errorf("federated %s = %g, per-worker sum = %g", name, fedVal, want)
		}
		checked++
	}
	total := sums["dstore_serve_jobs_executed_total{}"]
	fmt.Printf("obs-fleet-smoke: federation — %d aggregates match per-worker sums (%g jobs executed fleet-wide)\n",
		checked, total)
	return nil
}

// getRawBody fetches a URL and returns the body, requiring 200.
func getRawBody(c *http.Client, url string) ([]byte, error) {
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, b)
	}
	return b, nil
}
