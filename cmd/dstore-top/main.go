// Command dstore-top is a live terminal console for a dstore fleet:
// it polls the coordinator's /v1/workers, /v1/sweeps and /v1/stats
// endpoints and redraws a top-style frame — per-worker health, queue
// depth, cache hit rate and executed-job throughput; per-sweep
// progress bars; and the coordinator's headline dispatch counters.
//
// Usage:
//
//	dstore-top -coord http://127.0.0.1:8090
//	dstore-top -coord http://127.0.0.1:8090 -interval 2s
//	dstore-top -coord http://127.0.0.1:8090 -once   # one frame, no
//	                                                # clear; scripts
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dstore/internal/fleet"
)

func main() {
	var (
		coord    = flag.String("coord", "http://127.0.0.1:8090", "coordinator base URL")
		interval = flag.Duration("interval", time.Second, "poll-and-redraw period")
		once     = flag.Bool("once", false, "render one frame and exit (no screen clearing)")
	)
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Second}
	if *once {
		frame, err := pollFrame(client, *coord)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dstore-top: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(frame)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	t := time.NewTicker(*interval)
	defer t.Stop()
	for {
		frame, err := pollFrame(client, *coord)
		if err != nil {
			frame = fmt.Sprintf("dstore fleet — %s\n\n  unreachable: %v\n", *coord, err)
		}
		// ANSI clear + home, then the frame: a full redraw per tick
		// keeps the renderer stateless.
		fmt.Print("\x1b[2J\x1b[H" + frame)
		select {
		case <-ctx.Done():
			fmt.Println()
			return
		case <-t.C:
		}
	}
}

// pollFrame fetches the three console endpoints and renders one frame.
func pollFrame(client *http.Client, base string) (string, error) {
	st := fleet.ConsoleState{Coordinator: base}

	var workerDoc struct {
		Workers []fleet.ConsoleWorker `json:"workers"`
	}
	if err := getJSON(client, base+"/v1/workers", &workerDoc); err != nil {
		return "", err
	}
	st.Workers = workerDoc.Workers

	var sweepDoc struct {
		Sweeps []fleet.ConsoleSweep `json:"sweeps"`
	}
	if err := getJSON(client, base+"/v1/sweeps", &sweepDoc); err != nil {
		return "", err
	}
	st.Sweeps = sweepDoc.Sweeps

	if err := getJSON(client, base+"/v1/stats", &st.Stats); err != nil {
		return "", err
	}
	return fleet.RenderConsole(st), nil
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %d: %s", url, resp.StatusCode, b)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
