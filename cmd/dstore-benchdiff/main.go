// Command dstore-benchdiff compares two `go test -bench` outputs and
// flags regressions: the repo's benchstat-style guard for the
// event-kernel microbenchmark baseline.
//
// Usage:
//
//	dstore-benchdiff [-tolerance 10] [-fail] OLD NEW
//
// OLD is typically the committed BENCH_sim_engine.txt, NEW a fresh
// `make bench` capture (`make bench-diff` wires the two together). For
// every benchmark present in both files it prints old, new and delta
// per metric, then a WARNING line for each metric that regressed by
// more than the tolerance. Timing metrics (ns/op) are warn-only by
// default — wall clock on a shared box is noisy — but -fail turns any
// warning into a failing exit for use as a hard CI gate. Allocation
// metrics (B/op, allocs/op) are deterministic, so a regression there
// is real however noisy the machine.
//
// Exit codes distinguish why the diff failed, so CI can route "the
// code got slower" and "the baseline is broken" to different owners:
//
//	0  within tolerance (or regressions found without -fail)
//	1  regression beyond tolerance with -fail set
//	2  usage error
//	3  a baseline file is missing, unparseable, carries duplicate
//	   benchmark names, or the two files share no benchmarks
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"dstore/internal/benchfmt"
)

// Exit codes.
const (
	exitOK         = 0
	exitRegression = 1
	exitUsage      = 2
	exitBadInput   = 3
)

// metrics are compared in this order when both sides carry them.
var metrics = []string{"ns/op", "B/op", "allocs/op"}

// parseFile loads one baseline, requiring unique benchmark names — a
// file with duplicates is ambiguous input, not a regression signal.
func parseFile(path string) []benchfmt.Entry {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	es, err := benchfmt.ParseUnique(f)
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	return es
}

func main() {
	tolerance := flag.Float64("tolerance", 10, "regression tolerance in percent")
	threshold := flag.Float64("threshold", 0, "deprecated alias for -tolerance")
	failOnRegress := flag.Bool("fail", false, "exit 1 on regression instead of warning")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: dstore-benchdiff [-tolerance PCT] [-fail] OLD NEW")
		os.Exit(exitUsage)
	}
	limit := *tolerance
	if *threshold != 0 {
		limit = *threshold
	}
	oldPath, newPath := flag.Arg(0), flag.Arg(1)
	oldE := make(map[string]benchfmt.Entry)
	for _, e := range parseFile(oldPath) {
		oldE[e.Name] = e
	}
	newList := parseFile(newPath)

	fmt.Printf("%-34s %-10s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	var warnings []string
	compared := 0
	for _, ne := range newList {
		oe, ok := oldE[ne.Name]
		if !ok {
			fmt.Printf("%-34s %-10s %14s %14s %9s\n", ne.Name, "-", "(absent)", "-", "new")
			continue
		}
		compared++
		for _, unit := range metrics {
			ov, okOld := oe.Value(unit)
			nv, okNew := ne.Value(unit)
			if !okOld || !okNew {
				continue
			}
			delta := deltaPct(ov, nv)
			fmt.Printf("%-34s %-10s %14.4g %14.4g %+8.1f%%\n", ne.Name, unit, ov, nv, delta)
			if delta > limit {
				warnings = append(warnings, fmt.Sprintf(
					"WARNING: %s %s regressed %+.1f%% (%.4g -> %.4g, tolerance %.1f%%)",
					ne.Name, unit, delta, ov, nv, limit))
			}
		}
	}
	if compared == 0 {
		fail(fmt.Errorf("no benchmarks in common between %s and %s", oldPath, newPath))
	}
	for _, w := range warnings {
		fmt.Fprintln(os.Stderr, w)
	}
	if len(warnings) == 0 {
		fmt.Printf("bench-diff: %d benchmarks within %.1f%% of baseline\n", compared, limit)
	} else if *failOnRegress {
		os.Exit(exitRegression)
	}
}

// deltaPct is the relative change from old to new in percent; higher
// is worse for every metric this tool compares. A zero baseline with a
// non-zero measurement (an allocation-free path starting to allocate)
// is an unbounded regression.
func deltaPct(ov, nv float64) float64 {
	if ov == 0 {
		if nv == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (nv - ov) / ov * 100
}

// fail reports a broken input — missing file, parse error, duplicate
// names, disjoint baselines — as exit 3, distinct from a regression.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "dstore-benchdiff:", err)
	os.Exit(exitBadInput)
}
