// Command dstore-benchdiff compares two `go test -bench` outputs and
// flags regressions: the repo's benchstat-style guard for the
// event-kernel microbenchmark baseline.
//
// Usage:
//
//	dstore-benchdiff [-threshold 10] [-fail] OLD NEW
//
// OLD is typically the committed BENCH_sim_engine.txt, NEW a fresh
// `make bench` capture (`make bench-diff` wires the two together). For
// every benchmark present in both files it prints old, new and delta
// per metric, then a WARNING line for each metric that regressed by
// more than the threshold. Timing metrics (ns/op) are warn-only by
// default — wall clock on a shared box is noisy — but -fail turns any
// warning into exit status 1 for use as a hard CI gate. Allocation
// metrics (B/op, allocs/op) are deterministic, so a regression there
// is real however noisy the machine.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"dstore/internal/benchfmt"
)

// metrics are compared in this order when both sides carry them.
var metrics = []string{"ns/op", "B/op", "allocs/op"}

func parseFile(path string) map[string]benchfmt.Entry {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	es, err := benchfmt.Parse(f)
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	m := make(map[string]benchfmt.Entry, len(es))
	for _, e := range es {
		if _, dup := m[e.Name]; dup {
			fail(fmt.Errorf("%s: duplicate benchmark %s (merge runs before diffing)", path, e.Name))
		}
		m[e.Name] = e
	}
	return m
}

func main() {
	threshold := flag.Float64("threshold", 10, "regression threshold in percent")
	failOnRegress := flag.Bool("fail", false, "exit 1 on regression instead of warning")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: dstore-benchdiff [-threshold PCT] [-fail] OLD NEW")
		os.Exit(2)
	}
	oldPath, newPath := flag.Arg(0), flag.Arg(1)
	oldE := parseFile(oldPath)

	// Re-parse NEW as a slice to keep its ordering for the report.
	nf, err := os.Open(newPath)
	if err != nil {
		fail(err)
	}
	newList, err := benchfmt.Parse(nf)
	nf.Close()
	if err != nil {
		fail(fmt.Errorf("%s: %w", newPath, err))
	}

	fmt.Printf("%-34s %-10s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	var warnings []string
	compared := 0
	for _, ne := range newList {
		oe, ok := oldE[ne.Name]
		if !ok {
			fmt.Printf("%-34s %-10s %14s %14s %9s\n", ne.Name, "-", "(absent)", "-", "new")
			continue
		}
		compared++
		for _, unit := range metrics {
			ov, okOld := oe.Value(unit)
			nv, okNew := ne.Value(unit)
			if !okOld || !okNew {
				continue
			}
			delta := deltaPct(ov, nv)
			fmt.Printf("%-34s %-10s %14.4g %14.4g %+8.1f%%\n", ne.Name, unit, ov, nv, delta)
			if delta > *threshold {
				warnings = append(warnings, fmt.Sprintf(
					"WARNING: %s %s regressed %+.1f%% (%.4g -> %.4g, threshold %.1f%%)",
					ne.Name, unit, delta, ov, nv, *threshold))
			}
		}
	}
	if compared == 0 {
		fail(fmt.Errorf("no benchmarks in common between %s and %s", oldPath, newPath))
	}
	for _, w := range warnings {
		fmt.Fprintln(os.Stderr, w)
	}
	if len(warnings) == 0 {
		fmt.Printf("bench-diff: %d benchmarks within %.1f%% of baseline\n", compared, *threshold)
	} else if *failOnRegress {
		os.Exit(1)
	}
}

// deltaPct is the relative change from old to new in percent; higher
// is worse for every metric this tool compares. A zero baseline with a
// non-zero measurement (an allocation-free path starting to allocate)
// is an unbounded regression.
func deltaPct(ov, nv float64) float64 {
	if ov == 0 {
		if nv == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (nv - ov) / ov * 100
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dstore-benchdiff:", err)
	os.Exit(1)
}
