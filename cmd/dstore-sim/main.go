// Command dstore-sim runs a single Table II benchmark on the simulated
// integrated CPU-GPU system under a chosen coherence mode and prints a
// full statistics dump.
//
// Usage:
//
//	dstore-sim -bench NN -mode direct-store -input small
//	dstore-sim -bench MM -mode ccsm -input big -v
//	dstore-sim -bench MM -input big -json
//	dstore-sim -stress -chaos-seed 42 -chaos-profile heavy
//	dstore-sim -list
//
// -json emits the run as the canonical result document — the same
// encoding dstore-serve returns from POST /v1/runs — so CLI output and
// API responses are directly diffable.
//
// -stress runs the randomized coherence stress harness instead of a
// benchmark: seeded agents issue load/store/kernel streams against a
// data-value oracle while the -chaos-profile fault plan perturbs the
// fabric. The transcript is deterministic in (-chaos-seed,
// -chaos-profile); any invariant or oracle violation exits 1.
//
// Observability (see DESIGN.md §10):
//
//	dstore-sim -bench NN -trace out.json        # Chrome trace (Perfetto)
//	dstore-sim -bench NN -timeline lines.txt    # per-line coherence states
//	dstore-sim -bench NN -hist                  # latency histograms
//	dstore-sim -bench NN -timeseries ts.csv     # epoch-windowed series
//
// Traces are deterministic in (benchmark, input, mode, config): two
// runs produce byte-identical files. -trace validates the written file
// by re-parsing it through encoding/json before exiting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dstore/internal/bench"
	"dstore/internal/chaos"
	"dstore/internal/core"
	"dstore/internal/obs"
	"dstore/internal/script"
	"dstore/internal/serve"
	"dstore/internal/sim"
	"dstore/internal/stats"
)

func main() {
	var (
		code    = flag.String("bench", "", "benchmark code from Table II (see -list)")
		scriptF = flag.String("script", "", "run a workload script file instead of a benchmark")
		modeStr = flag.String("mode", "direct-store", "coherence mode: ccsm, direct-store or standalone")
		inStr   = flag.String("input", "small", "input size: small or big")
		verbose = flag.Bool("v", false, "dump per-component counters")
		jsonOut = flag.Bool("json", false, "emit the canonical result JSON (the dstore-serve encoding)")
		list    = flag.Bool("list", false, "list available benchmarks")

		stress       = flag.Bool("stress", false, "run the randomized coherence stress harness")
		chaosSeed    = flag.Uint64("chaos-seed", 1, "stress harness PRNG seed (transcript is deterministic in it)")
		chaosProfile = flag.String("chaos-profile", "none", "fault profile: none, light, heavy, drop-heavy or mutation")
		stressOps    = flag.Int("stress-ops", 0, "operations per stress instance (0 = harness default)")
		stressN      = flag.Int("stress-instances", 1, "independent stress instances (seeds seed, seed+1, ...)")
		stressW      = flag.Int("stress-workers", 1, "concurrent stress instances")

		traceF    = flag.String("trace", "", "write a Chrome trace-event JSON file (load in Perfetto or chrome://tracing)")
		traceCap  = flag.Int("trace-cap", 0, "trace ring-buffer capacity in events (0 = default; oldest events drop first)")
		timelineF = flag.String("timeline", "", "write a per-line coherence state-transition timeline to this file")
		histOut   = flag.Bool("hist", false, "print latency histograms (GPU loads, CPU stores, push-to-first-use) after the run")
		seriesF   = flag.String("timeseries", "", "write epoch-windowed time series to this file (.csv or .json by extension)")
		epoch     = flag.Uint64("epoch", 0, "time-series window width in ticks (0 = default)")
	)
	flag.Parse()

	if *list {
		fmt.Println(bench.Table2())
		return
	}
	if *code == "" && *scriptF == "" && !*stress {
		flag.Usage()
		os.Exit(2)
	}

	var mode core.Mode
	switch *modeStr {
	case "ccsm":
		mode = core.ModeCCSM
	case "direct-store":
		mode = core.ModeDirectStore
	case "standalone":
		mode = core.ModeStandalone
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeStr)
		os.Exit(2)
	}

	if *stress {
		prof, err := chaos.ProfileByName(*chaosProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg := chaos.StressConfig{Seed: *chaosSeed, Ops: *stressOps, Mode: mode, Profile: prof, Kernels: true}
		results, err := chaos.RunSweep(cfg, *stressN, *stressW)
		for _, res := range results {
			if res == nil {
				continue
			}
			fmt.Print(res.Transcript)
			for _, v := range res.Violations {
				fmt.Fprintf(os.Stderr, "violation: %s\n", v)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	in := bench.Small
	switch *inStr {
	case "small":
	case "big":
		in = bench.Big
	default:
		fmt.Fprintf(os.Stderr, "unknown input %q\n", *inStr)
		os.Exit(2)
	}

	// The observer is nil unless an observability flag asks for it, so a
	// plain run stays on the zero-overhead path.
	var o *obs.Observer
	if *traceF != "" || *timelineF != "" || *histOut || *seriesF != "" {
		o = obs.New(obs.Options{
			Trace:      *traceF != "" || *timelineF != "",
			TraceCap:   *traceCap,
			Hist:       *histOut,
			TimeSeries: *seriesF != "",
			Epoch:      sim.Tick(*epoch),
		})
	}
	cfg := core.DefaultConfig(mode)
	cfg.Obs = o

	if *jsonOut {
		if *scriptF != "" {
			fmt.Fprintln(os.Stderr, "-json requires -bench (scripts have no canonical result encoding)")
			os.Exit(2)
		}
		res, err := bench.RunWithConfig(*code, cfg, in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		b, err := serve.EncodeResult(res)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(b))
		writeObsOutputs(o, *traceF, *timelineF, *histOut, *seriesF)
		return
	}

	sys := core.NewSystem(cfg)
	var (
		total  sim.Tick
		phases []sim.Tick
	)
	if *scriptF != "" {
		f, err := os.Open(*scriptF)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sc, err := script.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		total, err = sc.Run(sys)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("script %s under %s\n\n", *scriptF, mode)
	} else {
		w, err := bench.Build(sys, *code, in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		total, phases = w.RunPhases(sys)
		fmt.Printf("benchmark %s (%s inputs) under %s\n\n", *code, in, mode)
	}
	t := stats.NewTable("Metric", "Value")
	t.AddRow("total ticks", fmt.Sprintf("%d", total))
	for i, p := range phases {
		t.AddRow(fmt.Sprintf("phase %d ticks", i+1), fmt.Sprintf("%d", p))
	}
	t.AddRow("GPU L2 accesses", fmt.Sprintf("%d", sys.GPUL2Accesses()))
	t.AddRow("GPU L2 misses", fmt.Sprintf("%d", sys.GPUL2Misses()))
	t.AddRow("GPU L2 miss rate", stats.Percent(sys.GPUL2MissRate()))
	t.AddRow("pushes received", fmt.Sprintf("%d", sys.PushesReceived()))
	t.AddRow("crossbar bytes", fmt.Sprintf("%d", sys.CoherenceTrafficBytes()))
	t.AddRow("direct-network bytes", fmt.Sprintf("%d", sys.DirectTrafficBytes()))
	t.AddRow("DRAM avg latency", fmt.Sprintf("%.1f ticks", sys.DRAM.AvgLatency()))
	t.AddRow("DRAM row-hit rate", stats.Percent(sys.DRAM.RowHitRate()))
	fmt.Println(t)

	o.FinishRun(sys.Now())
	writeObsOutputs(o, *traceF, *timelineF, *histOut, *seriesF)

	if *verbose {
		fmt.Println("cpu controller:")
		fmt.Print(indent(sys.CPUCtrl.Counters().Dump()))
		fmt.Println("cpu L2 array:")
		fmt.Print(indent(sys.CPUCtrl.L2Cache().Counters().Dump()))
		for i, sl := range sys.Slices {
			fmt.Printf("gpu L2 slice %d controller:\n", i)
			fmt.Print(indent(sl.Counters().Dump()))
			fmt.Printf("gpu L2 slice %d array:\n", i)
			fmt.Print(indent(sl.L2Cache().Counters().Dump()))
		}
		fmt.Println("gpu:")
		fmt.Print(indent(sys.GPU.Counters().Dump()))
		fmt.Println("memory controller:")
		fmt.Print(indent(sys.Mem.Counters().Dump()))
		fmt.Println("dram:")
		fmt.Print(indent(sys.DRAM.Counters().Dump()))
		fmt.Println("core:")
		fmt.Print(indent(sys.Core.Counters().Dump()))
	}
}

// writeObsOutputs exports whatever the observer collected. The trace
// file is validated by re-reading it through encoding/json — the same
// parse Perfetto performs — so a malformed trace fails the run (and
// `make trace-smoke`) instead of failing later in the viewer.
func writeObsOutputs(o *obs.Observer, traceF, timelineF string, hist bool, seriesF string) {
	if o == nil {
		return
	}
	if traceF != "" {
		f, err := os.Create(traceF)
		failIf(err)
		err = o.WriteTrace(f)
		failIf(err)
		failIf(f.Close())
		raw, err := os.ReadFile(traceF)
		failIf(err)
		var parsed struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(raw, &parsed); err != nil {
			fmt.Fprintf(os.Stderr, "trace %s is not valid Chrome trace JSON: %v\n", traceF, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %s (%d events, %d dropped)\n", traceF, len(parsed.TraceEvents), o.Dropped())
	}
	if timelineF != "" {
		f, err := os.Create(timelineF)
		failIf(err)
		failIf(o.WriteTimeline(f))
		failIf(f.Close())
		fmt.Fprintf(os.Stderr, "timeline: wrote %s\n", timelineF)
	}
	if hist {
		fmt.Println()
		for id := obs.HistID(0); id < obs.NumHists; id++ {
			h := o.Hist(id)
			if h.Count() == 0 {
				fmt.Printf("%s: no samples\n", h.Name())
				continue
			}
			h.WriteText(os.Stdout)
			fmt.Println()
		}
	}
	if seriesF != "" {
		f, err := os.Create(seriesF)
		failIf(err)
		if strings.HasSuffix(seriesF, ".json") {
			err = o.WriteSeriesJSON(f)
		} else {
			err = o.WriteSeriesCSV(f)
		}
		failIf(err)
		failIf(f.Close())
		fmt.Fprintf(os.Stderr, "timeseries: wrote %s (%d windows)\n", seriesF, len(o.Samples()))
	}
}

func failIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func indent(s string) string {
	out := ""
	for _, ln := range splitLines(s) {
		if ln != "" {
			out += "  " + ln + "\n"
		}
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
