// Command dstore-modelcheck exhaustively verifies the coherence
// protocol's safety invariants (SWMR, data-value, MM-install) by
// explicit-state enumeration, and prints a minimal counterexample
// trace when one exists.
//
// With no configuration flags it runs the standard sweep — deep
// single-line configurations for every protocol flavour plus bounded
// two-line products (see modelcheck.StandardSweep). Any configuration
// flag switches to a single explicit run:
//
//	dstore-modelcheck                           # the standard sweep
//	dstore-modelcheck -mutate bypass-no-wbbuf   # re-introduce the PR 3 lost-store race
//	dstore-modelcheck -agents 2 -lines 1 -stores 3 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dstore/internal/modelcheck"
)

func main() {
	agents := flag.Int("agents", 3, "coherent agents (2 CPU + 1 GPU L2 slice = 3)")
	lines := flag.Int("lines", 1, "cache lines")
	direct := flag.Int("direct", 0, "of those, direct-store region lines")
	stores := flag.Int("stores", 2, "total store/push budget (bounds the state space)")
	evicts := flag.Int("evicts", 0, "spontaneous eviction budget (0 = unbounded)")
	loads := flag.Int("loads", 0, "demand/remote load budget (0 = unbounded)")
	bypass := flag.Bool("bypass", true, "model the bypass-dirty-victim store flavour")
	wtPush := flag.Bool("wt-push", false, "write-through push ablation (install M, not MM)")
	resilient := flag.Bool("resilient", false, "model the seq-numbered ack/NACK push protocol")
	nacks := flag.Int("nacks", 1, "injected push NACK budget (resilient only)")
	dups := flag.Int("dups", 1, "duplicated push delivery budget (resilient only)")
	ordered := flag.Bool("ordered", false, "refine delivery to the crossbar's per-destination FIFO order")
	mutate := flag.String("mutate", "none", "re-introduce a known bug: none, skip-invalidate, bypass-no-wbbuf, push-install-s")
	verbose := flag.Bool("v", false, "print per-config progress")
	flag.Parse()

	single := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name != "v" {
			single = true
		}
	})

	var configs []modelcheck.Config
	if single {
		mut, err := modelcheck.ParseMutation(*mutate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dstore-modelcheck: %v\n", err)
			os.Exit(2)
		}
		cfg := modelcheck.Config{
			Agents:           *agents,
			Lines:            *lines,
			DirectLines:      *direct,
			MaxStores:        *stores,
			MaxEvicts:        *evicts,
			MaxLoads:         *loads,
			Bypass:           *bypass,
			WriteThroughPush: *wtPush,
			Resilient:        *resilient,
			MaxNacks:         *nacks,
			MaxDups:          *dups,
			OrderedNet:       *ordered,
			Mutation:         mut,
		}
		if !*resilient {
			cfg.MaxNacks, cfg.MaxDups = 0, 0
		}
		configs = []modelcheck.Config{cfg}
	} else {
		configs = modelcheck.StandardSweep()
	}

	failed := false
	for _, cfg := range configs {
		if *verbose || !single {
			fmt.Printf("checking %s\n", cfg)
		}
		start := time.Now()
		res, err := modelcheck.Check(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dstore-modelcheck: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("  %d states, %d transitions, depth %d, %.2fs\n",
			res.States, res.Transitions, res.MaxDepth, time.Since(start).Seconds())
		if res.Violation != nil {
			fmt.Println(res.Violation.Error())
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("ok: no invariant violations")
}
