// Command dstore-modelcheck exhaustively verifies the coherence
// protocol's safety invariants (SWMR, data-value, MM-install) by
// explicit-state enumeration, and prints a minimal counterexample
// trace when one exists.
//
// With no configuration flags it runs the standard sweep — deep
// single-line configurations for every protocol flavour plus bounded
// two-line products (see modelcheck.StandardSweep). Any configuration
// flag switches to a single explicit run:
//
//	dstore-modelcheck                           # the standard sweep
//	dstore-modelcheck -mutate bypass-no-wbbuf   # re-introduce the PR 3 lost-store race
//	dstore-modelcheck -agents 2 -lines 1 -stores 3 -v
//	dstore-modelcheck -json -min-states 3000000 # CI: machine output + state floor
//	dstore-modelcheck -coverage internal/coherence/testdata/reachability.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"dstore/internal/coherence"
	"dstore/internal/modelcheck"
)

// runReport is the -json record for one configuration.
type runReport struct {
	Config      string                      `json:"config"`
	Workers     int                         `json:"workers"`
	States      int                         `json:"states"`
	Transitions int                         `json:"transitions"`
	MaxDepth    int                         `json:"max_depth"`
	Seconds     float64                     `json:"seconds"`
	Invariants  []modelcheck.InvariantCount `json:"invariants"`
	Violation   *violationReport            `json:"violation,omitempty"`
}

type violationReport struct {
	Message string   `json:"message"`
	Trace   []string `json:"trace"`
	Final   string   `json:"final"`
}

// sweepReport is the top-level -json document.
type sweepReport struct {
	Runs        []runReport `json:"runs"`
	TotalStates int         `json:"total_states"`
	Seconds     float64     `json:"seconds"`
	OK          bool        `json:"ok"`
}

// coverageFile is the reachability dump consumed by the tablecover
// analyzer: every (state, event) protocol-table row the model fired,
// named by source identifier so the analyzer can resolve them by
// package-scope lookup.
type coverageFile struct {
	Comment string         `json:"comment"`
	Pairs   []coveragePair `json:"pairs"`
}

type coveragePair struct {
	State string `json:"state"`
	Event string `json:"event"`
}

func main() {
	agents := flag.Int("agents", 3, "coherent agents (2 CPU + 1 GPU L2 slice = 3)")
	gpus := flag.Int("gpus", 0, "GPU L2 slices among the agents (0 = 1 slice)")
	lines := flag.Int("lines", 1, "cache lines")
	direct := flag.Int("direct", 0, "of those, direct-store region lines")
	stores := flag.Int("stores", 2, "total store/push budget (bounds the state space)")
	evicts := flag.Int("evicts", 0, "spontaneous eviction budget (0 = unbounded)")
	loads := flag.Int("loads", 0, "demand/remote load budget (0 = unbounded)")
	bypass := flag.Bool("bypass", true, "model the bypass-dirty-victim store flavour")
	wtPush := flag.Bool("wt-push", false, "write-through push ablation (install M, not MM)")
	resilient := flag.Bool("resilient", false, "model the seq-numbered ack/NACK push protocol")
	nacks := flag.Int("nacks", 1, "injected push NACK budget (resilient only)")
	dups := flag.Int("dups", 1, "duplicated push delivery budget (resilient only)")
	ordered := flag.Bool("ordered", false, "refine delivery to the crossbar's per-destination FIFO order")
	symmetry := flag.Bool("symmetry", false, "fold symmetric states (interchangeable agents/lines)")
	mutate := flag.String("mutate", "none", "re-introduce a known bug: none, skip-invalidate, bypass-no-wbbuf, push-install-s")
	workers := flag.Int("workers", 0, "BFS worker count (0 = GOMAXPROCS); results are identical at any count")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report on stdout")
	minStates := flag.Int("min-states", 0, "fail unless the run explores at least this many states (CI shrink guard)")
	coverage := flag.String("coverage", "", "write the fired (state, event) table rows to this JSON file")
	verbose := flag.Bool("v", false, "print per-config progress")
	flag.Parse()

	single := false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "v", "json", "min-states", "coverage", "workers":
		default:
			single = true
		}
	})

	var configs []modelcheck.Config
	if single {
		mut, err := modelcheck.ParseMutation(*mutate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dstore-modelcheck: %v\n", err)
			os.Exit(2)
		}
		cfg := modelcheck.Config{
			Agents:           *agents,
			GPUs:             *gpus,
			Lines:            *lines,
			DirectLines:      *direct,
			MaxStores:        *stores,
			MaxEvicts:        *evicts,
			MaxLoads:         *loads,
			Bypass:           *bypass,
			WriteThroughPush: *wtPush,
			Resilient:        *resilient,
			MaxNacks:         *nacks,
			MaxDups:          *dups,
			OrderedNet:       *ordered,
			Symmetry:         *symmetry,
			Mutation:         mut,
		}
		if !*resilient {
			cfg.MaxNacks, cfg.MaxDups = 0, 0
		}
		configs = []modelcheck.Config{cfg}
	} else {
		configs = modelcheck.StandardSweep()
	}

	opts := modelcheck.Options{Workers: *workers}
	if *coverage != "" {
		opts.Coverage = make(map[modelcheck.CoveragePair]bool)
	}

	report := sweepReport{OK: true}
	start := time.Now()
	for _, cfg := range configs {
		if *verbose || !single && !*jsonOut {
			fmt.Printf("checking %s\n", cfg)
		}
		cfgStart := time.Now()
		res, err := modelcheck.CheckOpts(cfg, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dstore-modelcheck: %v\n", err)
			os.Exit(2)
		}
		secs := time.Since(cfgStart).Seconds()
		run := runReport{
			Config:      cfg.String(),
			Workers:     res.Workers,
			States:      res.States,
			Transitions: res.Transitions,
			MaxDepth:    res.MaxDepth,
			Seconds:     secs,
			Invariants:  res.Invariants,
		}
		if res.Violation != nil {
			report.OK = false
			run.Violation = &violationReport{
				Message: res.Violation.Message,
				Trace:   res.Violation.Trace,
				Final:   res.Violation.Final,
			}
		}
		report.Runs = append(report.Runs, run)
		report.TotalStates += res.States
		if !*jsonOut {
			fmt.Printf("  %d states, %d transitions, depth %d, %.2fs\n",
				res.States, res.Transitions, res.MaxDepth, secs)
			if res.Violation != nil {
				fmt.Println(res.Violation.Error())
			}
		}
	}
	report.Seconds = time.Since(start).Seconds()

	if report.TotalStates < *minStates {
		report.OK = false
		fmt.Fprintf(os.Stderr, "dstore-modelcheck: state floor: explored %d states, floor is %d — the sweep shrank\n",
			report.TotalStates, *minStates)
	}
	if *coverage != "" {
		if err := writeCoverage(*coverage, opts.Coverage); err != nil {
			fmt.Fprintf(os.Stderr, "dstore-modelcheck: %v\n", err)
			os.Exit(2)
		}
		if !*jsonOut {
			fmt.Printf("wrote %d fired table rows to %s\n", len(opts.Coverage), *coverage)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "dstore-modelcheck: %v\n", err)
			os.Exit(2)
		}
	}
	if !report.OK {
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Println("ok: no invariant violations")
	}
}

// writeCoverage renders the fired-pair set as the sorted JSON document
// tablecover consumes. Identifier names (not display names) make the
// file resolvable against the coherence package's scope.
func writeCoverage(path string, pairs map[modelcheck.CoveragePair]bool) error {
	doc := coverageFile{
		Comment: "generated by dstore-modelcheck -coverage (make reachability); " +
			"every (state, event) protocol-table row the standard sweep fires",
	}
	for p := range pairs { //dstore:allow-maprange sorted immediately below
		doc.Pairs = append(doc.Pairs, coveragePair{
			State: coherence.StateName(p.State),
			Event: coherence.EventIdent(p.Event),
		})
	}
	sort.Slice(doc.Pairs, func(i, j int) bool {
		if doc.Pairs[i].State != doc.Pairs[j].State {
			return doc.Pairs[i].State < doc.Pairs[j].State
		}
		return doc.Pairs[i].Event < doc.Pairs[j].Event
	})
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
