// Command dstore-translate runs the paper's automatic code translation
// (§III-C) over mini-CUDA source files: kernel-referenced variables'
// malloc/cudaMalloc calls are rewritten to fixed-address mmap in the
// reserved direct-store range.
//
// Usage:
//
//	dstore-translate [-o outdir] [-D NAME=value ...] file.cu ...
//	dstore-translate -dry file.cu            # report only
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"dstore/internal/translator"
)

// defineFlags collects repeated -D NAME=value flags.
type defineFlags map[string]uint64

func (d defineFlags) String() string { return fmt.Sprint(map[string]uint64(d)) }

func (d defineFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("-D wants NAME=value, got %q", s)
	}
	v, err := strconv.ParseUint(val, 0, 64)
	if err != nil {
		return fmt.Errorf("-D %s: %w", s, err)
	}
	d[name] = v
	return nil
}

func main() {
	defines := defineFlags{}
	var (
		outDir = flag.String("o", "", "write rewritten sources into this directory (default: alongside inputs with .ds suffix)")
		dry    = flag.Bool("dry", false, "report the translation without writing files")
		base   = flag.Uint64("base", 0, "override the fixed-mapping base address (default: the reserved arena base)")
		min    = flag.Uint64("min", 0, "only re-home variables at least this many bytes (§III-H co-existence; 0 = all)")
	)
	flag.Var(defines, "D", "compile-time constant NAME=value (repeatable)")
	flag.Parse()

	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	files := make(map[string]string)
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		files[path] = string(src)
	}

	tr, err := translator.Translate(files, translator.Options{
		BaseAddr: *base,
		Defines:  defines,
		MinBytes: *min,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Print(tr.Report())
	if *dry {
		return
	}

	paths := make([]string, 0, len(tr.Files))
	for path := range tr.Files { //dstore:allow-maprange sorted immediately below
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		content := tr.Files[path]
		out := path + ".ds"
		if *outDir != "" {
			out = filepath.Join(*outDir, filepath.Base(path))
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if err := os.WriteFile(out, []byte(content), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", out)
	}
}
