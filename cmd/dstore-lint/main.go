// Command dstore-lint is the repo's static-analysis multichecker: it
// runs the determinism, stats-key, event-safety, alloc-free,
// tablecover and spanbalance analyzers from internal/analysis over
// the packages matched by its arguments (default ./...) and exits
// non-zero on any finding.
//
//	dstore-lint ./...
//	dstore-lint -run determinism ./internal/coherence
//	dstore-lint -json ./... | jq .
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dstore/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	run := flag.String("run", "", "comma-separated analyzer names to run (default all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Parse()

	all := []*analysis.Analyzer{analysis.Determinism, analysis.StatsKey, analysis.EventSafety, analysis.AllocFree, analysis.Tablecover, analysis.SpanBalance}
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *run != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*run, ",") {
			want[strings.TrimSpace(name)] = true
		}
		analyzers = nil
		for _, a := range all {
			if want[a.Name] {
				analyzers = append(analyzers, a)
				delete(want, a.Name)
			}
		}
		for name := range want { //dstore:allow-maprange error listing, order irrelevant
			fmt.Fprintf(os.Stderr, "dstore-lint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Run("", patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dstore-lint: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "dstore-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dstore-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
