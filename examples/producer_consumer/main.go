// Producer-consumer walkthrough: traces where the data lives at each
// step of the paper's Fig. 1 flow — CPU store, GPU first touch, CPU
// readback — under both coherence regimes, printing protocol-level
// evidence (traffic split, pushes, probe counts).
//
//	go run ./examples/producer_consumer
package main

import (
	"fmt"

	"dstore"
)

const bytes = 32 * 1024

func main() {
	for _, mode := range []dstore.Mode{dstore.CCSM, dstore.DirectStore} {
		fmt.Printf("=== %s ===\n", mode)
		sys := dstore.NewSystem(dstore.DefaultConfig(mode))
		base, err := sys.AllocShared(bytes, "frame")
		if err != nil {
			panic(err)
		}
		out, err := sys.AllocShared(bytes, "result")
		if err != nil {
			panic(err)
		}

		// 1. CPU produces a frame.
		var produce []dstore.CPUOp
		for a := base; a < base+bytes; a += 128 {
			produce = append(produce, dstore.CPUOp{Type: dstore.StoreOp, Addr: a})
		}
		t := sys.RunCPU(produce)
		fmt.Printf("produce:  %6d ticks, %5d lines pushed, xbar %6dB, direct net %6dB\n",
			t, sys.PushesReceived(), sys.CoherenceTrafficBytes(), sys.DirectTrafficBytes())

		// 2. GPU reads the frame and writes a result.
		var warps []dstore.Warp
		const nWarps = 16
		lines := bytes / 128
		per := lines / nWarps
		for w := 0; w < nWarps; w++ {
			var ops []dstore.WarpOp
			for i := 0; i < per; i++ {
				off := dstore.Addr((w*per + i) * 128)
				ops = append(ops,
					dstore.WarpOp{Kind: dstore.OpGlobalLoad, Addr: base + off, Lines: 1},
					dstore.WarpOp{Kind: dstore.OpCompute, Gap: 20},
					dstore.WarpOp{Kind: dstore.OpGlobalStore, Addr: out + off, Lines: 1})
			}
			warps = append(warps, dstore.Warp{Ops: ops})
		}
		t = sys.RunKernel(dstore.Kernel{Name: "transform", Warps: warps})
		fmt.Printf("kernel:   %6d ticks, GPU L2 %d accesses / %d misses (%.1f%%)\n",
			t, sys.GPUL2Accesses(), sys.GPUL2Misses(), sys.GPUL2MissRate()*100)

		// 3. CPU reads the result back. In direct-store mode these are
		// uncacheable remote loads served by the GPU L2.
		var rb []dstore.CPUOp
		for a := out; a < out+bytes; a += 128 {
			rb = append(rb, dstore.CPUOp{Type: dstore.LoadOp, Addr: a})
		}
		t = sys.RunCPU(rb)
		fmt.Printf("readback: %6d ticks, CPU remote loads %d\n",
			t, sys.Core.Counters().Get("remote_loads"))
		fmt.Printf("memory controller: %d requests, %d probes, %d from peer caches, %d from DRAM\n\n",
			sys.Mem.Counters().Get("requests"), sys.Mem.Counters().Get("probes_sent"),
			sys.Mem.Counters().Get("data_from_peer"), sys.Mem.Counters().Get("data_from_dram"))
	}
}
