// Capacity sweep: grows the producer-consumer working set across the
// 2MB GPU L2 boundary and watches direct store's advantage fall off —
// the mechanism behind the paper's small-vs-big input results for the
// streaming benchmarks (§IV-C: "the input is larger than the size of
// the GPU L2 cache, and hence the miss rate reduction decreases,
// followed by the speedup").
//
//	go run ./examples/capacity_sweep
package main

import (
	"fmt"

	"dstore"
)

func run(mode dstore.Mode, bytes uint64) (dstore.Tick, float64) {
	sys := dstore.NewSystem(dstore.DefaultConfig(mode))
	base, err := sys.AllocShared(bytes, "buf")
	if err != nil {
		panic(err)
	}
	var produce []dstore.CPUOp
	for a := base; a < base+dstore.Addr(bytes); a += 128 {
		produce = append(produce, dstore.CPUOp{Type: dstore.StoreOp, Addr: a})
	}
	t0 := sys.Now()
	sys.RunCPU(produce)
	const nWarps = 96
	lines := int(bytes / 128)
	var warps []dstore.Warp
	for w := 0; w < nWarps; w++ {
		var ops []dstore.WarpOp
		for i := w; i < lines; i += nWarps {
			ops = append(ops, dstore.WarpOp{Kind: dstore.OpGlobalLoad,
				Addr: base + dstore.Addr(i*128), Lines: 1})
		}
		warps = append(warps, dstore.Warp{Ops: ops})
	}
	sys.RunKernel(dstore.Kernel{Name: "consume", Warps: warps})
	return sys.Now() - t0, sys.GPUL2MissRate()
}

func main() {
	fmt.Println("working set sweep across the 2MB GPU L2 (streaming produce->consume)")
	fmt.Printf("%-10s %-10s %-10s %-9s %-12s %-12s\n",
		"size", "ccsm", "ds", "speedup", "ccsm miss", "ds miss")
	for _, kb := range []uint64{256, 512, 1024, 2048, 4096, 8192} {
		bytes := kb * 1024
		ct, cm := run(dstore.CCSM, bytes)
		dt, dm := run(dstore.DirectStore, bytes)
		fmt.Printf("%-10s %-10d %-10d %-9s %-12s %-12s\n",
			fmt.Sprintf("%dKB", kb), ct, dt,
			fmt.Sprintf("%.1f%%", (float64(ct)/float64(dt)-1)*100),
			fmt.Sprintf("%.1f%%", cm*100),
			fmt.Sprintf("%.1f%%", dm*100))
	}
}
