// Translator demo: runs the paper's automatic source translation
// (§III-C) over an embedded mini-CUDA vector-add program and prints
// before/after plus the translation report.
//
//	go run ./examples/translator_demo
package main

import (
	"fmt"
	"os"
	"strings"

	"dstore"
)

const program = `#include <stdio.h>
#define N 50000

__global__ void vecadd(float *a, float *b, float *c, int n);

int main() {
    // host working data the GPU never touches: left alone
    char *scratch = (char *)malloc(4096);

    float *a = (float *)malloc(N * sizeof(float));
    float *b = (float *)malloc(N * sizeof(float));
    float *c;
    cudaMalloc((void **)&c, N * sizeof(float));

    for (int i = 0; i < N; i++) { a[i] = i; b[i] = 2 * i; }

    vecadd<<<(N + 255) / 256, 256>>>(a, b, c, N);

    printf("%f\n", c[0]);
    return 0;
}
`

func main() {
	tr, err := dstore.Translate(map[string]string{"vecadd.cu": program},
		dstore.TranslateOptions{})
	if err != nil {
		panic(err)
	}

	fmt.Println("== original ==")
	os.Stdout.WriteString(program)
	fmt.Println("\n== translated ==")
	os.Stdout.WriteString(tr.Files["vecadd.cu"])
	fmt.Println("\n== report ==")
	fmt.Print(tr.Report())

	fmt.Println("\n== what changed ==")
	for _, ln := range diffLines(program, tr.Files["vecadd.cu"]) {
		fmt.Println(ln)
	}
}

// diffLines prints a minimal -/+ view of changed lines.
func diffLines(a, b string) []string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	var out []string
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			out = append(out, "- "+al[i], "+ "+bl[i])
		}
	}
	return out
}
