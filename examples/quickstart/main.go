// Quickstart: build the paper's Table I system, have the CPU produce a
// buffer, let the GPU consume it, and compare CCSM against direct
// store.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"dstore"
)

const bufBytes = 64 * 1024 // 512 cache lines

func run(mode dstore.Mode) (ticks dstore.Tick, missRate float64, pushes uint64) {
	sys := dstore.NewSystem(dstore.DefaultConfig(mode))

	// In direct-store modes AllocShared lands in the reserved
	// high-order range (what the source translator arranges for real
	// programs); in CCSM mode it is an ordinary heap allocation.
	base, err := sys.AllocShared(bufBytes, "buf")
	if err != nil {
		panic(err)
	}

	// Phase 1: the CPU produces the data. Under direct store every one
	// of these stores is detected by the TLB and pushed straight into
	// the GPU L2 over the dedicated network.
	var produce []dstore.CPUOp
	for a := base; a < base+bufBytes; a += 128 {
		produce = append(produce, dstore.CPUOp{Type: dstore.StoreOp, Addr: a})
	}
	t0 := sys.Now()
	sys.RunCPU(produce)

	// Phase 2: the GPU consumes it with 32 warps of coalesced loads.
	var warps []dstore.Warp
	const nWarps = 32
	lines := bufBytes / 128
	per := lines / nWarps
	for w := 0; w < nWarps; w++ {
		var ops []dstore.WarpOp
		for i := 0; i < per; i++ {
			a := base + dstore.Addr((w*per+i)*128)
			ops = append(ops, dstore.WarpOp{Kind: dstore.OpGlobalLoad, Addr: a, Lines: 1})
		}
		warps = append(warps, dstore.Warp{Ops: ops})
	}
	sys.RunKernel(dstore.Kernel{Name: "consume", Warps: warps})

	return sys.Now() - t0, sys.GPUL2MissRate(), sys.PushesReceived()
}

func main() {
	ccsmTicks, ccsmMiss, _ := run(dstore.CCSM)
	dsTicks, dsMiss, pushes := run(dstore.DirectStore)

	fmt.Println("producer-consumer quickstart (64KB, CPU produces, GPU consumes)")
	fmt.Printf("  CCSM:         %6d ticks, GPU L2 miss rate %5.1f%%\n", ccsmTicks, ccsmMiss*100)
	fmt.Printf("  direct store: %6d ticks, GPU L2 miss rate %5.1f%%  (%d lines pushed)\n",
		dsTicks, dsMiss*100, pushes)
	fmt.Printf("  speedup: %.1f%%\n", (float64(ccsmTicks)/float64(dsTicks)-1)*100)
}
