// Mixed-mode (§III-H co-existence): "The programmer can set large
// variables to use this approach ... and the remaining small-sized
// data to use CCSM." The translator's size threshold re-homes only the
// big kernel arrays; small control structures stay on the ordinary
// heap and keep using the conventional protocol. This example shows
// the translation decision and then measures the hybrid system.
//
//	go run ./examples/mixed_mode
package main

import (
	"fmt"

	"dstore"
)

const program = `
#define N 100000

__global__ void rank(float *scores, int *topk, int n);

int main() {
    float *scores = (float *)malloc(N * sizeof(float)); // 400KB: re-home
    int *topk = (int *)malloc(16 * sizeof(int));        // 64B: stays CCSM
    rank<<<64, 256>>>(scores, topk, N);
    return 0;
}
`

func main() {
	tr, err := dstore.Translate(map[string]string{"rank.cu": program},
		dstore.TranslateOptions{MinBytes: 4096})
	if err != nil {
		panic(err)
	}
	fmt.Println("== translation decision (MinBytes=4096) ==")
	fmt.Print(tr.Report())

	// Build the hybrid system the translated program implies: the big
	// array in the reserved region (pushed), the small one on the heap
	// (conventional coherence).
	sys := dstore.NewSystem(dstore.DefaultConfig(dstore.DirectStore))
	scores, err := sys.Space.MmapFixed(dstore.Addr(tr.Allocs[0].Addr), tr.Allocs[0].Size, "scores")
	if err != nil {
		panic(err)
	}
	topk, err := sys.AllocPrivate(64, "topk")
	if err != nil {
		panic(err)
	}

	// CPU produces both.
	var ops []dstore.CPUOp
	for off := uint64(0); off < tr.Allocs[0].Size; off += 128 {
		ops = append(ops, dstore.CPUOp{Type: dstore.StoreOp, Addr: scores + dstore.Addr(off)})
	}
	ops = append(ops, dstore.CPUOp{Type: dstore.StoreOp, Addr: topk})
	sys.RunCPU(ops)

	fmt.Println("\n== hybrid run ==")
	fmt.Printf("scores: %d lines pushed over the dedicated network\n", sys.PushesReceived())
	fmt.Printf("topk:   %d store went through CCSM (cacheable)\n",
		sys.Core.Counters().Get("stores"))

	// GPU reads both: scores hit the pushed copies; topk pulls once via
	// the conventional protocol.
	var warp dstore.Warp
	for off := uint64(0); off < tr.Allocs[0].Size; off += 128 {
		warp.Ops = append(warp.Ops, dstore.WarpOp{Kind: dstore.OpGlobalLoad,
			Addr: scores + dstore.Addr(off), Lines: 1})
	}
	warp.Ops = append(warp.Ops, dstore.WarpOp{Kind: dstore.OpGlobalLoad, Addr: topk, Lines: 1})
	sys.RunKernel(dstore.Kernel{Name: "rank", Warps: []dstore.Warp{warp}})

	fmt.Printf("kernel: GPU L2 %d accesses, %d misses (the CCSM-managed topk pull)\n",
		sys.GPUL2Accesses(), sys.GPUL2Misses())
	if err := sys.CheckCoherence(); err != nil {
		panic(err)
	}
	fmt.Println("coherence invariants hold across both regimes")
}
