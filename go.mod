module dstore

go 1.22
