// Package dstore is a simulation-based reproduction of "A Simple Cache
// Coherence Scheme for Integrated CPU-GPU Systems" (Yudha, Pulungan,
// Hoffmann, Solihin — DAC 2020).
//
// The library provides:
//
//   - a discrete-event integrated CPU-GPU simulator with a MOESI-Hammer
//     coherence protocol (the paper's Table I platform),
//   - the paper's direct-store extension: kernel-referenced data homed
//     in the GPU L2, detected by high-order virtual-address compare in
//     the TLB and pushed over a dedicated network (§III),
//   - a source-to-source translator for a mini-CUDA dialect that
//     rewrites malloc/cudaMalloc of kernel-referenced variables into
//     fixed-address mmap in the reserved range (§III-C),
//   - the paper's 22-benchmark evaluation suite (Table II) and the
//     harness regenerating every table and figure (§IV).
//
// Quick start:
//
//	sys := dstore.NewSystem(dstore.DefaultConfig(dstore.DirectStore))
//	buf, _ := sys.AllocShared(64*1024, "data")
//	... run CPU produce ops, launch kernels, read stats ...
//
// or drive a whole paper benchmark:
//
//	cmp, _ := dstore.CompareBenchmark("NN", dstore.Small)
//	fmt.Printf("direct store speedup: %.1f%%\n", cmp.Speedup()*100)
package dstore

import (
	"dstore/internal/bench"
	"dstore/internal/core"
	"dstore/internal/cpu"
	"dstore/internal/gpu"
	"dstore/internal/memsys"
	"dstore/internal/sim"
	"dstore/internal/stats"
	"dstore/internal/translator"
)

// Mode selects the coherence regime for a simulated system.
type Mode = core.Mode

// Coherence modes.
const (
	// CCSM is the baseline cache-coherent shared memory (Hammer).
	CCSM = core.ModeCCSM
	// DirectStore adds the paper's push-based scheme on top of CCSM.
	DirectStore = core.ModeDirectStore
	// Standalone replaces CPU-GPU CCSM with direct store (§III-H).
	Standalone = core.ModeStandalone
)

// Config is the full-system configuration; DefaultConfig returns the
// paper's Table I values.
type Config = core.Config

// DefaultConfig returns the Table I system for the given mode.
func DefaultConfig(mode Mode) Config { return core.DefaultConfig(mode) }

// System is an assembled simulated machine.
type System = core.System

// NewSystem builds a machine from cfg.
func NewSystem(cfg Config) *System { return core.NewSystem(cfg) }

// Tick is the simulation time unit (one CPU cycle).
type Tick = sim.Tick

// Addr is a byte address in the simulated machine.
type Addr = memsys.Addr

// CPUOp is one CPU memory operation (see LoadOp/StoreOp).
type CPUOp = cpu.Op

// CPU operation types.
const (
	LoadOp  = memsys.Load
	StoreOp = memsys.Store
)

// GPU kernel-building vocabulary: a Kernel is a set of Warps, each a
// sequence of WarpOps.
type (
	// Kernel is a named collection of warps dispatched together.
	Kernel = gpu.Kernel
	// Warp is an ordered op sequence executed by one warp.
	Warp = gpu.Warp
	// WarpOp is one warp operation.
	WarpOp = gpu.WarpOp
)

// Warp operation kinds.
const (
	// OpCompute spends Gap ticks of arithmetic.
	OpCompute = gpu.OpCompute
	// OpShared is a scratchpad (shared-memory) access.
	OpShared = gpu.OpShared
	// OpGlobalLoad reads global memory lines; the warp blocks.
	OpGlobalLoad = gpu.OpGlobalLoad
	// OpGlobalStore writes global memory lines without blocking.
	OpGlobalStore = gpu.OpGlobalStore
	// OpBarrier synchronises every warp of a kernel (cooperative
	// launch: the kernel must fit within resident-warp capacity).
	OpBarrier = gpu.OpBarrier
)

// FenceOp returns a CPU op that drains the store buffer before the
// core proceeds — the producer-side ordering point before signalling a
// consumer.
func FenceOp() CPUOp { return CPUOp{Fence: true} }

// Input selects a Table II input size.
type Input = bench.Input

// Input sizes.
const (
	Small = bench.Small
	Big   = bench.Big
)

// BenchResult is one benchmark run's metrics.
type BenchResult = bench.Result

// BenchComparison pairs CCSM and direct-store runs of one benchmark.
type BenchComparison = bench.Comparison

// BenchmarkCodes returns the Table II benchmark codes in table order.
func BenchmarkCodes() []string { return bench.Codes() }

// RunBenchmark executes one Table II benchmark under the default
// configuration for the mode.
func RunBenchmark(code string, mode Mode, in Input) (BenchResult, error) {
	return bench.Run(code, mode, in)
}

// CompareBenchmark runs one benchmark under CCSM and direct store.
func CompareBenchmark(code string, in Input) (BenchComparison, error) {
	return bench.Compare(code, in)
}

// RunAllBenchmarks compares every Table II benchmark for one input
// size (the full Fig. 4 / Fig. 5 data set). Every benchmark is
// attempted; failures are aggregated into a *bench.SweepError rather
// than aborting the sweep.
func RunAllBenchmarks(in Input) ([]BenchComparison, error) {
	return bench.RunAll(in)
}

// SweepOptions configures a parallel benchmark sweep.
type SweepOptions = bench.SweepOptions

// RunAllBenchmarksParallel is RunAllBenchmarks with opt.Workers
// concurrent runs. Each run owns its own simulated system, so the
// results are identical to the sequential sweep, in the same order.
func RunAllBenchmarksParallel(in Input, opt SweepOptions) ([]BenchComparison, error) {
	return bench.RunAllParallel(in, opt)
}

// GeomeanSpeedup is the rightmost bar of Fig. 4: the geometric mean of
// the non-zero speedups.
func GeomeanSpeedup(cs []BenchComparison) float64 { return bench.GeomeanSpeedup(cs) }

// GeomeanMissRates is the rightmost pair of Fig. 5.
func GeomeanMissRates(cs []BenchComparison) (ccsm, ds float64) {
	return bench.GeomeanMissRates(cs)
}

// Table renders fixed-width experiment tables.
type Table = stats.Table

// Table1 renders the paper's system-configuration table.
func Table1() *Table { return core.DefaultConfig(CCSM).Table1() }

// Table2 renders the paper's benchmark table.
func Table2() *Table { return bench.Table2() }

// Fig4Table renders the Fig. 4 speedup series.
func Fig4Table(in Input, cs []BenchComparison) *Table { return bench.Fig4Table(in, cs) }

// Fig5Table renders the Fig. 5 miss-rate series.
func Fig5Table(in Input, cs []BenchComparison) *Table { return bench.Fig5Table(in, cs) }

// Translator API (§III-C).
type (
	// TranslateOptions configures a translation.
	TranslateOptions = translator.Options
	// Translation is a completed source-to-source rewrite.
	Translation = translator.Translation
)

// Translate rewrites a mini-CUDA program's kernel-referenced
// allocations into fixed-address mmap calls in the reserved
// direct-store range.
func Translate(files map[string]string, opts TranslateOptions) (*Translation, error) {
	return translator.Translate(files, opts)
}
