package stats

import "dstore/internal/snap"

// SnapshotTo serialises every counter (name and value) in creation
// order, which is deterministic for a given component construction
// sequence.
func (s *Set) SnapshotTo(w *snap.Writer) {
	w.Tag("stats")
	w.U32(uint32(len(s.names)))
	for _, n := range s.names {
		w.String(n)
		w.U64(s.counters[n].Value())
	}
}

// RestoreFrom overwrites counter values from a snapshot. Counters
// absent from the set are created (preserving the snapshot's order
// for any later Dump), so a restored set dumps identically to the
// one that was snapshotted.
func (s *Set) RestoreFrom(r *snap.Reader) {
	r.Tag("stats")
	n := r.U32()
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		name := r.String()
		v := r.U64()
		if r.Err() != nil {
			return
		}
		s.Counter(name).n = v
	}
}
