// Package stats provides the counters and summary math used to report
// simulation results, plus fixed-width table rendering for the
// paper-figure regeneration harness.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a named monotonically increasing count. The zero value is
// ready to use.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Set is an ordered collection of named counters. Components expose one
// so the harness can dump everything uniformly.
type Set struct {
	names    []string
	counters map[string]*Counter
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{counters: make(map[string]*Counter)}
}

// Counter returns the counter with the given name, creating it on first
// use. Creation order is preserved for dumping.
func (s *Set) Counter(name string) *Counter {
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{}
	s.counters[name] = c
	s.names = append(s.names, name)
	return c
}

// Get returns the value of a named counter, or zero if it was never
// created.
func (s *Set) Get(name string) uint64 {
	if c, ok := s.counters[name]; ok {
		return c.Value()
	}
	return 0
}

// Names returns the counter names in creation order.
func (s *Set) Names() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Dump renders "name value" lines in creation order.
func (s *Set) Dump() string {
	var b strings.Builder
	for _, n := range s.names {
		fmt.Fprintf(&b, "%-32s %d\n", n, s.counters[n].Value())
	}
	return b.String()
}

// MarshalJSON encodes the set as a JSON object whose keys appear in
// counter-creation order. The encoding is deterministic byte-for-byte
// for a given set, so API responses built from it are diffable.
func (s *Set) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteString("{")
	for i, n := range s.names {
		if i > 0 {
			b.WriteString(",")
		}
		key, err := json.Marshal(n)
		if err != nil {
			return nil, err
		}
		b.Write(key)
		fmt.Fprintf(&b, ":%d", s.counters[n].Value())
	}
	b.WriteString("}")
	return []byte(b.String()), nil
}

// Ratio returns a/b as a float, or 0 when b is zero. Miss rates and
// speedups all come through here so a zero-access cache reads as a 0%
// miss rate rather than NaN (matching how the paper plots zero bars for
// GA, LU and BS in Fig. 5).
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// GeoMean returns the geometric mean of vs. Non-positive entries are
// rejected with an error since a geometric mean is undefined for them.
func GeoMean(vs []float64) (float64, error) {
	if len(vs) == 0 {
		return 0, fmt.Errorf("stats: geometric mean of empty slice")
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return 0, fmt.Errorf("stats: geometric mean of non-positive value %v", v)
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs))), nil
}

// GeoMeanNonZero returns the geometric mean of the strictly positive
// entries of vs, skipping zeros, mirroring the paper's "geometric means
// of all non-zero speedups" in Fig. 4. ok is false if every entry was
// zero or negative.
func GeoMeanNonZero(vs []float64) (mean float64, ok bool) {
	var pos []float64
	for _, v := range vs {
		if v > 0 {
			pos = append(pos, v)
		}
	}
	if len(pos) == 0 {
		return 0, false
	}
	m, err := GeoMean(pos)
	if err != nil {
		return 0, false
	}
	return m, true
}

// Percent formats a fraction as a percentage with one decimal, e.g.
// 0.078 → "7.8%".
func Percent(f float64) string {
	return fmt.Sprintf("%.1f%%", f*100)
}

// Table renders aligned fixed-width text tables for the experiment
// harness output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped and
// short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// SortRows sorts rows lexicographically by the given column.
func (t *Table) SortRows(col int) {
	if col < 0 || col >= len(t.header) {
		return
	}
	sort.SliceStable(t.rows, func(i, j int) bool { return t.rows[i][col] < t.rows[j][col] })
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// MarshalJSON encodes the table as {"header": [...], "rows": [[...]]}.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}{Header: t.header, Rows: t.rows})
}

// String renders the table with a separator under the header.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
