package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterZeroValueReady(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero counter not zero")
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Error("reset did not zero counter")
	}
}

func TestSetCreatesOnFirstUse(t *testing.T) {
	s := NewSet()
	s.Counter("hits").Add(3)
	s.Counter("hits").Add(2)
	if s.Get("hits") != 5 {
		t.Errorf("hits = %d, want 5", s.Get("hits"))
	}
	if s.Get("never") != 0 {
		t.Error("unknown counter not zero")
	}
}

func TestSetPreservesCreationOrder(t *testing.T) {
	s := NewSet()
	for _, n := range []string{"z", "a", "m"} {
		s.Counter(n)
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "z" || names[1] != "a" || names[2] != "m" {
		t.Errorf("Names() = %v, want [z a m]", names)
	}
}

func TestSetDumpContainsAll(t *testing.T) {
	s := NewSet()
	s.Counter("alpha").Add(1)
	s.Counter("beta").Add(2)
	d := s.Dump()
	if !strings.Contains(d, "alpha") || !strings.Contains(d, "beta") {
		t.Errorf("dump missing counters: %q", d)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 2) != 0.5 {
		t.Error("Ratio(1,2) != 0.5")
	}
	if Ratio(5, 0) != 0 {
		t.Error("Ratio with zero denominator should be 0")
	}
	if Ratio(0, 10) != 0 {
		t.Error("Ratio(0,10) != 0")
	}
}

func TestGeoMeanBasics(t *testing.T) {
	m, err := GeoMean([]float64{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", m)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("GeoMean of empty slice did not error")
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("GeoMean with zero did not error")
	}
	if _, err := GeoMean([]float64{-1}); err == nil {
		t.Error("GeoMean with negative did not error")
	}
}

func TestGeoMeanNonZeroSkipsZeros(t *testing.T) {
	m, ok := GeoMeanNonZero([]float64{0, 2, 0, 8, 0})
	if !ok {
		t.Fatal("GeoMeanNonZero reported no positive entries")
	}
	if math.Abs(m-4) > 1e-12 {
		t.Errorf("GeoMeanNonZero = %v, want 4", m)
	}
	if _, ok := GeoMeanNonZero([]float64{0, 0}); ok {
		t.Error("all-zero slice reported ok")
	}
}

// Property: the geometric mean lies between min and max of its inputs.
func TestPropertyGeoMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		var vs []float64
		for _, r := range raw {
			vs = append(vs, float64(r)+1) // strictly positive
		}
		if len(vs) == 0 {
			return true
		}
		m, err := GeoMean(vs)
		if err != nil {
			return false
		}
		lo, hi := vs[0], vs[0]
		for _, v := range vs {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		const eps = 1e-9
		return m >= lo-eps && m <= hi+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.078) != "7.8%" {
		t.Errorf("Percent(0.078) = %q", Percent(0.078))
	}
	if Percent(0) != "0.0%" {
		t.Errorf("Percent(0) = %q", Percent(0))
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Name", "Value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Name") {
		t.Errorf("header line %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") {
		t.Errorf("row line %q", lines[2])
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("A", "B", "C")
	tb.AddRow("only")
	tb.AddRow("x", "y", "z", "dropped")
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	out := tb.String()
	if strings.Contains(out, "dropped") {
		t.Error("overlong row cell not dropped")
	}
}

func TestTableSortRows(t *testing.T) {
	tb := NewTable("K")
	tb.AddRow("c")
	tb.AddRow("a")
	tb.AddRow("b")
	tb.SortRows(0)
	out := tb.String()
	ai, bi, ci := strings.Index(out, "a"), strings.Index(out, "b"), strings.Index(out, "c")
	if !(ai < bi && bi < ci) {
		t.Errorf("rows not sorted:\n%s", out)
	}
	tb.SortRows(99) // out of range: must not panic
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("Name", "Value")
	tb.AddRow("plain", "1")
	tb.AddRow("with,comma", `with"quote`)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines:\n%s", len(lines), csv)
	}
	if lines[0] != "Name,Value" {
		t.Errorf("header %q", lines[0])
	}
	if !strings.Contains(lines[2], `"with,comma"`) || !strings.Contains(lines[2], `"with""quote"`) {
		t.Errorf("quoting wrong: %q", lines[2])
	}
}

func TestTableJSON(t *testing.T) {
	tb := NewTable("A", "B")
	tb.AddRow("x", "y")
	out, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Header) != 2 || len(doc.Rows) != 1 || doc.Rows[0][0] != "x" {
		t.Errorf("round trip: %+v", doc)
	}
}

func TestSetMarshalJSON(t *testing.T) {
	s := NewSet()
	s.Counter("zulu").Add(3)
	s.Counter("alpha").Add(1)
	s.Counter("mid point").Add(2)

	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	// Keys appear in creation order, not sorted, and the bytes are
	// deterministic.
	want := `{"zulu":3,"alpha":1,"mid point":2}`
	if string(b) != want {
		t.Fatalf("MarshalJSON = %s, want %s", b, want)
	}
	b2, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(b2) != want {
		t.Fatalf("second marshal diverged: %s", b2)
	}
	// The output round-trips as ordinary JSON.
	var m map[string]uint64
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if m["zulu"] != 3 || m["alpha"] != 1 || m["mid point"] != 2 {
		t.Fatalf("round-trip mismatch: %v", m)
	}
}

func TestSetMarshalJSONEmpty(t *testing.T) {
	b, err := json.Marshal(NewSet())
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "{}" {
		t.Fatalf("empty set = %s, want {}", b)
	}
}
