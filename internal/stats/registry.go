package stats

import "sort"

// knownKeys is the registry of every counter key a component may
// create with (*Set).Counter or read with (*Set).Get. The dstore-lint
// stats-key analyzer checks every string-literal key in the tree
// against this list, so a typo'd or one-off key fails `make lint`
// instead of silently reporting zero forever. Adding a counter to a
// component means adding its key here — the analyzer's error message
// points at this file.
//
// Dynamic keys (built from data, e.g. the Prometheus metric names in
// internal/serve) are exempted at the call site with a
// //dstore:allow-statskey annotation.
var knownKeys = map[string]bool{
	// cache arrays (internal/cache)
	"accesses":  true,
	"hits":      true,
	"misses":    true,
	"evictions": true,
	"reads":     true,
	"writes":    true,

	// coherence controllers (internal/coherence)
	"probes_received":      true,
	"writebacks_sent":      true,
	"pushes_received":      true,
	"direct_stores":        true,
	"remote_loads":         true,
	"mshr_stalls":          true,
	"upgrades":             true,
	"pushes_overflowed":    true,
	"fill_bypasses":        true,
	"push_nacks":           true,
	"push_retries":         true,
	"requests":             true,
	"requests_gets":        true,
	"requests_getx":        true,
	"requests_wb":          true,
	"requests_remote_load": true,
	"probes_sent":          true,
	"writebacks":           true,
	"data_from_peer":       true,
	"data_from_dram":       true,
	"probes_filtered":      true,
	"regions_claimed":      true,
	"region_downgrades":    true,
	"skipped_invalidates":  true,

	// cores and GPU (internal/cpu, internal/gpu)
	"loads":                      true,
	"stores":                     true,
	"remote_stores":              true,
	"direct_detected":            true,
	"kernel_launches":            true,
	"barrier_arrivals":           true,
	"shared_ops":                 true,
	"global_load_lines":          true,
	"global_store_lines":         true,
	"l1_lines_flash_invalidated": true,
	"l1_mshr_stalls":             true,
	"l2_prefetches_issued":       true,
	"fence_stall_ticks":          true,
	"store_buffer_stall_ticks":   true,
	"total_latency":              true,

	// interconnect
	"messages": true,
	"bytes":    true,
	"hops":     true,

	// DRAM
	"row_hits":   true,
	"row_misses": true,

	// chaos fault injection (internal/chaos)
	"faults_injected": true,
	"ctrl_stalls":     true,
	"net_jitter":      true,
	"push_jitter":     true,
	"push_drops":      true,
	"push_dups":       true,

	// persistent content-addressed store tier (internal/store, surfaced
	// by internal/serve's /v1/stats and /metrics)
	"dstore_store_disk_hits_total":      true,
	"dstore_store_disk_misses_total":    true,
	"dstore_store_disk_writes_total":    true,
	"dstore_store_disk_evictions_total": true,
	"dstore_store_disk_bytes":           true,
	"dstore_store_disk_entries":         true,
	"dstore_store_corrupt_entries":      true,

	// fleet coordinator (internal/fleet)
	"fleet_workers":                      true,
	"fleet_workers_healthy":              true,
	"fleet_probes_total":                 true,
	"fleet_probe_failures_total":         true,
	"fleet_jobs_dispatched_total":        true,
	"fleet_jobs_completed_total":         true,
	"fleet_jobs_failed_total":            true,
	"fleet_dispatch_failovers_total":     true,
	"fleet_sweeps_started_total":         true,
	"fleet_sweeps_completed_total":       true,
	"fleet_sweeps_active":                true,
	"fleet_sweep_results_streamed_total": true,
	"fleet_dispatch_retry_rounds_total":  true,
	"fleet_breaker_trips_total":          true,
	"fleet_breaker_recloses_total":       true,
	"fleet_workers_quarantined":          true,
	"fleet_quarantines_total":            true,
	"fleet_requalified_total":            true,
	"fleet_corrupt_results_total":        true,
	"fleet_sweeps_degraded_total":        true,
	"fleet_sweeps_resumed_total":         true,
	"fleet_jobs_replayed_total":          true,

	// fleet coordinator process-local queue and journal (internal/fleet)
	"coord_pending_jobs":          true,
	"coord_shed_total":            true,
	"coord_journal_appends_total": true,
	"coord_journal_errors_total":  true,

	// fleet observability plane: metrics federation, trace export,
	// profile capture, and the coordinator's span ring (internal/fleet)
	"fleet_federation_scrapes_total": true,
	"fleet_federation_errors_total":  true,
	"fleet_trace_exports_total":      true,
	"fleet_dispatch_latency_ns":      true,
	"coord_profile_captures_total":   true,
	"coord_spans_recorded_total":     true,
	"coord_spans_dropped_total":      true,

	// worker observability: span ring and queue-wait histogram
	// (internal/obs/dtrace, surfaced by internal/serve's /metrics)
	"obs_spans_recorded_total":   true,
	"obs_spans_dropped_total":    true,
	"dstore_serve_queue_wait_ns": true,
}

// KnownKey reports whether name is a registered counter key.
func KnownKey(name string) bool { return knownKeys[name] }

// KnownKeys returns every registered counter key in sorted order (for
// docs and tests).
func KnownKeys() []string {
	out := make([]string, 0, len(knownKeys))
	for k := range knownKeys { //dstore:allow-maprange keys sorted below
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
