package script

import (
	"strings"
	"testing"

	"dstore/internal/core"
	"dstore/internal/memsys"
)

const demo = `
# producer-consumer demo
alloc buf 1024
alloc-private scratch 256

cpu st buf+0
cpu st buf+128 gap=10
cpu st buf+256
cpu fence
cpu ld buf+0
run cpu

warp
gpu ld buf+0
gpu compute 50
gpu shared
warp
gpu ld buf+128
gpu st buf+512
run gpu consume
`

func parse(t *testing.T, src string) *Script {
	t.Helper()
	s, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseStructure(t *testing.T) {
	s := parse(t, demo)
	if len(s.Allocs) != 2 {
		t.Fatalf("allocs %+v", s.Allocs)
	}
	if s.Allocs[0].Name != "buf" || s.Allocs[0].Private {
		t.Errorf("alloc 0 %+v", s.Allocs[0])
	}
	if !s.Allocs[1].Private {
		t.Errorf("alloc 1 should be private")
	}
	if len(s.Phases) != 2 {
		t.Fatalf("phases %d", len(s.Phases))
	}
	if s.Phases[0].Kernel != nil || len(s.Phases[0].Ops) != 5 {
		t.Errorf("phase 0: %+v", s.Phases[0])
	}
	if s.Phases[1].Kernel == nil || len(s.Phases[1].Kernel.Warps) != 2 {
		t.Errorf("phase 1: %+v", s.Phases[1])
	}
	if s.Phases[1].Kernel.Name != "consume" {
		t.Errorf("kernel name %q", s.Phases[1].Kernel.Name)
	}
}

func TestRunEndToEnd(t *testing.T) {
	s := parse(t, demo)
	sys := core.NewSystem(core.DefaultConfig(core.ModeDirectStore))
	ticks, err := s.Run(sys)
	if err != nil {
		t.Fatal(err)
	}
	if ticks == 0 {
		t.Error("script took no time")
	}
	if sys.PushesReceived() != 3 {
		t.Errorf("pushes = %d, want 3 (three produce stores)", sys.PushesReceived())
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Error(err)
	}
}

func TestRunDirectVsCCSMFromSameScript(t *testing.T) {
	src := `
alloc buf 4096
cpu st buf+0
cpu st buf+128
run cpu
gpu ld buf+0
gpu ld buf+128
run gpu
`
	run := func(mode core.Mode) uint64 {
		s := parse(t, src)
		sys := core.NewSystem(core.DefaultConfig(mode))
		if _, err := s.Run(sys); err != nil {
			t.Fatal(err)
		}
		return sys.GPUL2Misses()
	}
	if ccsm, ds := run(core.ModeCCSM), run(core.ModeDirectStore); ds >= ccsm {
		t.Errorf("DS misses %d not below CCSM %d", ds, ccsm)
	}
}

func TestLiteralAddresses(t *testing.T) {
	s := parse(t, `
cpu st 0x20000
run cpu
`)
	if s.Phases[0].Ops[0].Addr != memsys.Addr(0x20000) {
		t.Errorf("literal addr %#x", uint64(s.Phases[0].Ops[0].Addr))
	}
}

func TestBarrierAndOptions(t *testing.T) {
	s := parse(t, `
alloc b 1024
gpu ld b+0 lines=3
gpu barrier
run gpu
`)
	ops := s.Phases[0].Kernel.Warps[0].Ops
	if ops[0].Lines != 3 {
		t.Errorf("lines option lost: %+v", ops[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive": "frobnicate x",
		"bad alloc":         "alloc x",
		"zero size":         "alloc x 0",
		"dup alloc":         "alloc x 10\nalloc x 10",
		"bad cpu op":        "cpu jump 0x0",
		"cpu missing addr":  "cpu st",
		"bad gap":           "cpu st 0x0 gap=abc\nrun cpu",
		"bad gpu op":        "gpu fly",
		"bad lines":         "gpu ld 0x0 lines=0\nrun gpu",
		"run nothing":       "run cpu",
		"run what":          "cpu st 0x0\nrun sideways",
		"dangling ops":      "cpu st 0x0",
		"dangling warp":     "gpu ld 0x0",
		"bad compute":       "gpu compute xyz\nrun gpu",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestUndeclaredReferenceFailsAtRun(t *testing.T) {
	// "nosuch" parses as a literal-less unknown name.
	s := parse(t, `
cpu st nosuch+0
run cpu
`)
	sys := core.NewSystem(core.DefaultConfig(core.ModeCCSM))
	if _, err := s.Run(sys); err == nil {
		t.Error("undeclared reference ran")
	}
}

func TestCommentsAndBlanksIgnored(t *testing.T) {
	s := parse(t, `
# header comment

alloc a 128   # trailing comment
cpu st a+0
run cpu
`)
	if len(s.Allocs) != 1 || len(s.Phases) != 1 {
		t.Error("comment handling broke parsing")
	}
}
