// Package script parses and runs text workload scripts, so the
// simulator can be driven without writing Go. A script accumulates CPU
// ops and GPU warps, then executes them in phases:
//
//	# comments start with '#'
//	alloc buf 65536          # shared allocation (direct region under DS)
//	alloc-private tmp 4096   # CPU-private heap allocation
//
//	cpu st buf+0             # CPU store (becomes a push under DS)
//	cpu st buf+128 gap=10    # with 10 ticks of compute first
//	cpu ld buf+0
//	cpu fence                # drain the store buffer
//	run cpu                  # execute the accumulated CPU ops as a phase
//
//	warp                     # start a new warp
//	gpu ld buf+0             # coalesced load (this warp)
//	gpu ld buf+128 lines=2   # two-line (uncoalesced) access
//	gpu st buf+256
//	gpu shared               # scratchpad access
//	gpu compute 50           # 50 ticks of arithmetic
//	gpu barrier              # kernel-wide barrier
//	run gpu mykernel         # launch the accumulated warps
//
// Addresses are `name+offset` against a prior alloc, or bare hex/dec
// literals.
package script

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dstore/internal/core"
	"dstore/internal/cpu"
	"dstore/internal/gpu"
	"dstore/internal/memsys"
	"dstore/internal/sim"
)

// Phase is one executable step of a parsed script.
type Phase struct {
	// CPU ops (when Kernel is nil).
	Ops []cpu.Op
	// Kernel (when non-nil).
	Kernel *gpu.Kernel
}

// Script is a parsed workload: allocations then phases.
type Script struct {
	// Allocs are performed in order before any phase runs.
	Allocs []Alloc
	Phases []Phase
	// syms is the symbolic-address name table (see symbolicAddr).
	syms []string
}

// Alloc is one named allocation request.
type Alloc struct {
	Name    string
	Size    uint64
	Private bool
}

// Parse reads a script. Errors carry line numbers.
func Parse(r io.Reader) (*Script, error) {
	s := &Script{}
	names := map[string]bool{}
	var ops []cpu.Op
	var warps []gpu.Warp
	var cur []gpu.WarpOp
	warpOpen := false

	flushWarp := func() {
		if warpOpen {
			warps = append(warps, gpu.Warp{Ops: cur})
			cur = nil
			warpOpen = false
		}
	}

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		f := strings.Fields(line)
		addr := func(tok string) memsys.Addr { return s.symbolicAddr(tok, names) }
		fail := func(format string, args ...any) error {
			return fmt.Errorf("script line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch f[0] {
		case "alloc", "alloc-private":
			if len(f) != 3 {
				return nil, fail("%s wants: %s <name> <bytes>", f[0], f[0])
			}
			size, err := strconv.ParseUint(f[2], 0, 64)
			if err != nil || size == 0 {
				return nil, fail("bad size %q", f[2])
			}
			if names[f[1]] {
				return nil, fail("duplicate allocation %q", f[1])
			}
			names[f[1]] = true
			s.Allocs = append(s.Allocs, Alloc{Name: f[1], Size: size, Private: f[0] == "alloc-private"})
		case "cpu":
			if len(f) < 2 {
				return nil, fail("cpu wants an op")
			}
			op, err := parseCPUOp(f[1:], addr)
			if err != nil {
				return nil, fail("%v", err)
			}
			ops = append(ops, op)
		case "warp":
			flushWarp()
			warpOpen = true
		case "gpu":
			if !warpOpen {
				warpOpen = true // implicit first warp
			}
			if len(f) < 2 {
				return nil, fail("gpu wants an op")
			}
			op, err := parseGPUOp(f[1:], addr)
			if err != nil {
				return nil, fail("%v", err)
			}
			cur = append(cur, op)
		case "run":
			if len(f) < 2 {
				return nil, fail("run wants cpu or gpu")
			}
			switch f[1] {
			case "cpu":
				if len(ops) == 0 {
					return nil, fail("run cpu with no accumulated ops")
				}
				s.Phases = append(s.Phases, Phase{Ops: ops})
				ops = nil
			case "gpu":
				flushWarp()
				if len(warps) == 0 {
					return nil, fail("run gpu with no accumulated warps")
				}
				name := "kernel"
				if len(f) > 2 {
					name = f[2]
				}
				k := gpu.Kernel{Name: name, Warps: warps}
				s.Phases = append(s.Phases, Phase{Kernel: &k})
				warps = nil
			default:
				return nil, fail("run wants cpu or gpu, got %q", f[1])
			}
		default:
			return nil, fail("unknown directive %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(ops) > 0 || warpOpen || len(warps) > 0 {
		return nil, fmt.Errorf("script: accumulated ops never run (missing `run cpu` / `run gpu`?)")
	}
	return s, nil
}

// parseCPUOp handles: st <addr> [gap=N] | ld <addr> [gap=N] | fence.
func parseCPUOp(f []string, addr func(string) memsys.Addr) (cpu.Op, error) {
	switch f[0] {
	case "fence":
		return cpu.Op{Fence: true}, nil
	case "st", "ld":
		if len(f) < 2 {
			return cpu.Op{}, fmt.Errorf("cpu %s wants an address", f[0])
		}
		ty := memsys.Store
		if f[0] == "ld" {
			ty = memsys.Load
		}
		op := cpu.Op{Type: ty, Addr: addr(f[1])}
		for _, kv := range f[2:] {
			v, ok := strings.CutPrefix(kv, "gap=")
			if !ok {
				return cpu.Op{}, fmt.Errorf("unknown option %q", kv)
			}
			g, err := strconv.ParseUint(v, 0, 64)
			if err != nil {
				return cpu.Op{}, fmt.Errorf("bad gap %q", v)
			}
			op.Gap = sim.Tick(g)
		}
		return op, nil
	default:
		return cpu.Op{}, fmt.Errorf("unknown cpu op %q", f[0])
	}
}

// parseGPUOp handles: ld/st <addr> [lines=N] | shared | compute <ticks> | barrier.
func parseGPUOp(f []string, addr func(string) memsys.Addr) (gpu.WarpOp, error) {
	switch f[0] {
	case "shared":
		return gpu.WarpOp{Kind: gpu.OpShared}, nil
	case "barrier":
		return gpu.WarpOp{Kind: gpu.OpBarrier}, nil
	case "compute":
		if len(f) < 2 {
			return gpu.WarpOp{}, fmt.Errorf("gpu compute wants a tick count")
		}
		g, err := strconv.ParseUint(f[1], 0, 64)
		if err != nil {
			return gpu.WarpOp{}, fmt.Errorf("bad compute %q", f[1])
		}
		return gpu.WarpOp{Kind: gpu.OpCompute, Gap: sim.Tick(g)}, nil
	case "ld", "st":
		if len(f) < 2 {
			return gpu.WarpOp{}, fmt.Errorf("gpu %s wants an address", f[0])
		}
		kind := gpu.OpGlobalLoad
		if f[0] == "st" {
			kind = gpu.OpGlobalStore
		}
		op := gpu.WarpOp{Kind: kind, Addr: addr(f[1]), Lines: 1}
		for _, kv := range f[2:] {
			v, ok := strings.CutPrefix(kv, "lines=")
			if !ok {
				return gpu.WarpOp{}, fmt.Errorf("unknown option %q", kv)
			}
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return gpu.WarpOp{}, fmt.Errorf("bad lines %q", v)
			}
			op.Lines = n
		}
		return op, nil
	default:
		return gpu.WarpOp{}, fmt.Errorf("unknown gpu op %q", f[0])
	}
}

// symbolicAddr encodes `name+offset` references for later resolution.
// To keep the op structs plain, the encoding packs them into an Addr:
// the top bit marks "symbolic", the next 15 bits index the script's
// name table, and the low 48 bits carry the offset. Bare hex/dec
// literals pass through untouched.
func (s *Script) symbolicAddr(tok string, names map[string]bool) memsys.Addr {
	name, off := tok, uint64(0)
	if i := strings.IndexByte(tok, '+'); i >= 0 {
		name = tok[:i]
		if v, err := strconv.ParseUint(tok[i+1:], 0, 48); err == nil {
			off = v
		}
	}
	if !names[name] {
		// A bare literal address.
		if v, err := strconv.ParseUint(tok, 0, 64); err == nil {
			return memsys.Addr(v)
		}
		// Unknown name: Run reports it.
		return symBit | memsys.Addr(unknownName)<<48
	}
	idx := -1
	for i, n := range s.syms {
		if n == name {
			idx = i
			break
		}
	}
	if idx == -1 {
		s.syms = append(s.syms, name)
		idx = len(s.syms) - 1
	}
	return symBit | memsys.Addr(idx&0x7fff)<<48 | memsys.Addr(off)
}

const (
	symBit      = memsys.Addr(1) << 63
	unknownName = 0x7fff
)

// resolve rebases a symbolic address against the allocation map.
func (s *Script) resolve(a memsys.Addr, bases map[string]memsys.Addr) (memsys.Addr, error) {
	if a&symBit == 0 {
		return a, nil
	}
	idx := int(a>>48) & 0x7fff
	if idx == unknownName || idx >= len(s.syms) {
		return 0, fmt.Errorf("script: reference to undeclared allocation")
	}
	base, ok := bases[s.syms[idx]]
	if !ok {
		return 0, fmt.Errorf("script: allocation %q not materialised", s.syms[idx])
	}
	return base + (a &^ symBit & ((1 << 48) - 1)), nil
}

// Run materialises the script's allocations on sys and executes its
// phases in order, returning total elapsed ticks.
func (s *Script) Run(sys *core.System) (sim.Tick, error) {
	bases := map[string]memsys.Addr{}
	for _, al := range s.Allocs {
		var (
			base memsys.Addr
			err  error
		)
		if al.Private {
			base, err = sys.AllocPrivate(al.Size, al.Name)
		} else {
			base, err = sys.AllocShared(al.Size, al.Name)
		}
		if err != nil {
			return 0, err
		}
		bases[al.Name] = base
	}
	start := sys.Now()
	for _, ph := range s.Phases {
		if ph.Kernel != nil {
			k := gpu.Kernel{Name: ph.Kernel.Name}
			for _, w := range ph.Kernel.Warps {
				var ops []gpu.WarpOp
				for _, op := range w.Ops {
					a, err := s.resolve(op.Addr, bases)
					if err != nil {
						return 0, err
					}
					op.Addr = a
					ops = append(ops, op)
				}
				k.Warps = append(k.Warps, gpu.Warp{Ops: ops})
			}
			sys.RunKernel(k)
			continue
		}
		var ops []cpu.Op
		for _, op := range ph.Ops {
			a, err := s.resolve(op.Addr, bases)
			if err != nil {
				return 0, err
			}
			op.Addr = a
			ops = append(ops, op)
		}
		sys.RunCPU(ops)
	}
	return sys.Now() - start, nil
}
