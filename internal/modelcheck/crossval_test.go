package modelcheck

import (
	"math/rand"
	"testing"

	"dstore/internal/coherence"
)

// TestCrossValidation drives random legal event sequences through the
// model and cross-checks every fired protocol-table row against the
// simulator's table (internal/coherence/table.go): the row must be
// legal (OK), and the agent's resulting state in the successor must be
// exactly the table's Next. The model's rules are written against the
// same table, but its successor construction is hand-coded — this is
// the permanent guard against the PR-4-era drift where
// modelcheck/rules.go silently diverged from the relation it claims to
// enumerate.
//
// Mutation configs are excluded by design: they re-introduce known
// bugs precisely by disagreeing with the table.
func TestCrossValidation(t *testing.T) {
	cfgs := []Config{
		{Agents: 3, Lines: 1, MaxStores: 2, Bypass: true, MaxEvicts: 1, MaxLoads: 2},
		{Agents: 3, Lines: 1, DirectLines: 1, MaxStores: 2, MaxLoads: 2},
		{Agents: 3, Lines: 1, DirectLines: 1, MaxStores: 2, Resilient: true, MaxNacks: 1, MaxDups: 1},
		{Agents: 3, Lines: 1, DirectLines: 1, MaxStores: 2, WriteThroughPush: true},
		{Agents: 3, Lines: 2, DirectLines: 1, MaxStores: 2, MaxEvicts: 1, MaxLoads: 2},
		{Agents: 4, GPUs: 2, Lines: 2, DirectLines: 2, MaxStores: 2, MaxEvicts: 1, MaxLoads: 1},
	}
	// Seeded: the same walks every run; failures replay forever.
	rng := rand.New(rand.NewSource(20260808))

	type triple struct {
		agent, line int
		st          coherence.State
		ev          coherence.Event
		next        coherence.State
	}
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			if err := cfg.validate(); err != nil {
				t.Fatal(err)
			}
			checked := 0
			for walk := 0; walk < 40; walk++ {
				s := initial(cfg)
				for step := 0; step < 80; step++ {
					// Collect every successor with the table rows its
					// construction fired: recs since the previous emit
					// belong to the next emitted state.
					var cur []triple
					rc := func(agent, line int, st coherence.State, ev coherence.Event, next coherence.State) {
						cur = append(cur, triple{agent, line, st, ev, next})
					}
					type succ struct {
						s     state
						fired []triple
					}
					var succs []succ
					successors(cfg, &s, false, rc, func(ns *state, _, _ string) {
						succs = append(succs, succ{s: *ns, fired: cur})
						cur = nil
					})
					if len(succs) == 0 {
						break
					}
					// Validate every successor's fired rows; walk on via a
					// random one.
					for _, sc := range succs {
						// Several rows can fire on one (agent, line) in a
						// single action (a fill that evicts a victim, an
						// install completing a pending store): the final
						// resident state reflects the last one.
						last := make(map[[2]int]triple)
						for _, tr := range sc.fired {
							out := coherence.Transition(tr.st, tr.ev)
							if !out.OK {
								t.Fatalf("model fired illegal table row (%s, %s) in %s",
									coherence.StateName(tr.st), coherence.EventName(tr.ev), cfg)
							}
							if out.Next != tr.next {
								t.Fatalf("model recorded (%s, %s) -> %s, table says %s",
									coherence.StateName(tr.st), coherence.EventName(tr.ev),
									coherence.StateName(tr.next), coherence.StateName(out.Next))
							}
							last[[2]int{tr.agent, tr.line}] = tr
							checked++
						}
						for key, tr := range last { //dstore:allow-maprange assertion per entry, order-independent
							got := coherence.State(sc.s.st[key[0]][key[1]])
							want := coherence.Transition(tr.st, tr.ev).Next
							if got != want {
								t.Fatalf("agent%d line%d ended in %s after (%s, %s), table says %s",
									key[0], key[1], coherence.StateName(got),
									coherence.StateName(tr.st), coherence.EventName(tr.ev),
									coherence.StateName(want))
							}
						}
					}
					s = succs[rng.Intn(len(succs))].s
				}
			}
			if checked == 0 {
				t.Fatal("walks fired no table rows; the cross-validation checked nothing")
			}
			t.Logf("cross-validated %d fired rows", checked)
		})
	}
}
