package modelcheck

import (
	"encoding/binary"
	"math/bits"
	"sync"
	"unsafe"
)

// Hash-compacted visited set (Wolper/Leroy bit-state hashing's exact
// cousin): instead of storing every explored state (~300 bytes each),
// the checker stores a 64-bit fingerprint plus the parent fingerprint
// and BFS depth — 24 bytes per state, no pointer churn, no GC
// pressure. Counterexample traces are rebuilt by walking the parent
// chain and forward-replaying successors to match fingerprints.
//
// The price is a vanishing probability of a collision silently merging
// two distinct states (and hiding whatever lies beyond one of them):
// with n states the expected number of colliding pairs is about
// n²/2^65 — under 7e-7 for the ~5M states of the standard sweep. The
// single-threaded exact checker caught its bugs long before this
// scale; the fingerprint checker is what makes 2-GPU configs fit CI.

// stateSize is the byte size of the state struct. state is composed
// exclusively of uint8 fields and arrays of uint8-only structs, so it
// has no padding and the byte view below is a faithful encoding
// (TestStateNoPadding pins this).
const stateSize = int(unsafe.Sizeof(state{}))

// stateBytes returns the raw byte encoding of s. Valid only while s is
// live; callers never retain the slice.
func stateBytes(s *state) []byte {
	return (*[stateSize]byte)(unsafe.Pointer(s))[:]
}

// msgSize is the byte size of one message slot (all-uint8, no padding).
const msgSize = int(unsafe.Sizeof(msg{}))

// fpState fingerprints s, hashing only its live prefix: the message
// array is the last bulk field and slots past nmsgs are always zero, so
// they carry no information — skipping them roughly halves the bytes
// hashed per state (168 dead bytes at nmsgs == 0). The trailing nmsgs
// byte itself is dropped too: it is implied by the hashed length, which
// seeds the hash, so two states with different message counts can never
// hash the same truncated bytes with the same seed.
func fpState(s *state) uint64 {
	live := stateSize - 1 - (maxMsgs-int(s.nmsgs))*msgSize
	return fingerprint(stateBytes(s)[:live])
}

// copyLive copies src into dst touching only src's live prefix —
// everything up to its last in-flight message. Message slots that were
// live in dst but are dead in src are re-zeroed first, preserving the
// all-dead-slots-zero invariant the byte encoding relies on. At
// typical message counts this moves half the bytes of a full struct
// copy, and the successor generator copies one state per transition.
func copyLive(dst, src *state) {
	for i := int(src.nmsgs); i < int(dst.nmsgs); i++ {
		dst.msgs[i] = msg{}
	}
	live := stateSize - 1 - (maxMsgs-int(src.nmsgs))*msgSize
	copy(stateBytes(dst)[:live], stateBytes(src)[:live])
	dst.nmsgs = src.nmsgs
}

// fingerprint hashes a state encoding to 64 bits with a fixed seed —
// deterministic across runs, platforms and worker counts. Two
// independent accumulator lanes break the serial multiply-rotate
// dependency chain, nearly doubling throughput on a superscalar core.
func fingerprint(b []byte) uint64 {
	const (
		k0  = 0x9ae16a3b2f90404f
		mul = 0x9ddfea08eb382d69
	)
	h1 := uint64(len(b))*k0 + 1 // +1 keeps the all-zero state off fp 0
	h2 := uint64(len(b)) ^ mul
	for len(b) >= 16 {
		h1 ^= binary.LittleEndian.Uint64(b) * mul
		h1 = bits.RotateLeft64(h1, 31) * k0
		h2 ^= binary.LittleEndian.Uint64(b[8:]) * k0
		h2 = bits.RotateLeft64(h2, 29) * mul
		b = b[16:]
	}
	if len(b) >= 8 {
		h1 ^= binary.LittleEndian.Uint64(b) * mul
		h1 = bits.RotateLeft64(h1, 31) * k0
		b = b[8:]
	}
	var last uint64
	for i := len(b) - 1; i >= 0; i-- {
		last = last<<8 | uint64(b[i])
	}
	h := h1 ^ bits.RotateLeft64(h2, 17)
	h ^= last * mul
	h ^= h >> 33
	h *= mul
	h ^= h >> 29
	if h == 0 {
		h = 1 // 0 is the table's empty-slot sentinel
	}
	return h
}

// fpEntry is one visited state: its fingerprint, the fingerprint of
// its minimal parent (the trace pointer) and its BFS depth. The root
// entry's parentFP is its own fingerprint.
type fpEntry struct {
	fp, parentFP uint64
	depth        int32
}

// fpShards is the number of independently locked table shards. Shard
// selection uses high fingerprint bits, slot probing uses low bits, so
// the two never correlate.
const fpShards = 64

// fpTable is the sharded insert-only visited set. With a single BFS
// worker (the common 1-CPU CI case) par is false and insert skips the
// shard locks entirely — the uncontended lock/unlock pair still costs
// ~6% of a big run.
type fpTable struct {
	par    bool
	shards [fpShards]fpShard
}

type fpShard struct {
	mu      sync.Mutex
	mask    uint64
	n       int
	entries []fpEntry
}

// fpInitBits sizes each shard's initial slot array (2^14 slots × 64
// shards × 24 bytes = 25 MB). Sized so sweep-scale runs (~2M states,
// ~30K entries per shard) rehash at most once or twice: growth
// rehashes re-place every entry, but starting bigger measurably hurts
// — random probes over a large sparse table miss cache and TLB more
// than the occasional rehash costs.
const fpInitBits = 14

func newFPTable() *fpTable {
	t := &fpTable{}
	for i := range t.shards {
		t.shards[i].entries = make([]fpEntry, 1<<fpInitBits)
		t.shards[i].mask = 1<<fpInitBits - 1
	}
	return t
}

func (t *fpTable) shard(fp uint64) *fpShard {
	return &t.shards[(fp>>52)&(fpShards-1)]
}

// insert records fp at depth with parent parentFP, returning whether
// the state is new. Re-inserting at the same depth keeps the smallest
// parent fingerprint — the deterministic tie-break that makes
// counterexample traces byte-identical at any worker count.
func (t *fpTable) insert(fp, parentFP uint64, depth int32) bool {
	sh := t.shard(fp)
	if t.par {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	i := fp & sh.mask
	for {
		e := &sh.entries[i]
		if e.fp == 0 {
			*e = fpEntry{fp: fp, parentFP: parentFP, depth: depth}
			sh.n++
			if uint64(sh.n)*4 > (sh.mask+1)*3 {
				sh.grow()
			}
			return true
		}
		if e.fp == fp {
			if e.depth == depth && parentFP < e.parentFP {
				e.parentFP = parentFP
			}
			return false
		}
		i = (i + 1) & sh.mask
	}
}

// lookup returns the entry for fp. Called only after exploration
// settles (trace reconstruction), so it still takes the shard lock but
// is never hot.
func (t *fpTable) lookup(fp uint64) (fpEntry, bool) {
	sh := t.shard(fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	i := fp & sh.mask
	for {
		e := sh.entries[i]
		if e.fp == 0 {
			return fpEntry{}, false
		}
		if e.fp == fp {
			return e, true
		}
		i = (i + 1) & sh.mask
	}
}

func (sh *fpShard) grow() {
	old := sh.entries
	sh.mask = sh.mask*2 + 1
	sh.entries = make([]fpEntry, sh.mask+1)
	for _, e := range old {
		if e.fp == 0 {
			continue
		}
		i := e.fp & sh.mask
		for sh.entries[i].fp != 0 {
			i = (i + 1) & sh.mask
		}
		sh.entries[i] = e
	}
}

// count returns the number of visited states.
func (t *fpTable) count() int {
	n := 0
	for i := range t.shards {
		t.shards[i].mu.Lock()
		n += t.shards[i].n
		t.shards[i].mu.Unlock()
	}
	return n
}
