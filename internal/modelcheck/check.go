package modelcheck

import (
	"fmt"
	"strings"

	"dstore/internal/coherence"
)

// checkState validates the safety invariants in one state, returning a
// violation message or "".
//
//   - SWMR ownership: at most one owner (MM, M or O) per line, always
//     — even mid-transaction, ownership transfer is atomic.
//   - At line-quiescent states (no transaction, queue entry, message,
//     miss, writeback or push in flight for the line) the full
//     single-writer/multi-reader and data-value invariants hold: an
//     exclusive holder is the sole holder, every valid copy holds the
//     newest version, and with no owner memory itself must be current.
//   - Deadlock freedom: with work outstanding, some step must remain
//     enabled (messages or DRAM completions).
func checkState(cfg Config, s *state) string {
	for l := 0; l < cfg.Lines; l++ {
		owners := 0
		holders := 0
		exclusive := false
		for a := 0; a < cfg.Agents; a++ {
			switch coherence.State(s.st[a][l]) {
			case coherence.MM, coherence.M:
				owners++
				holders++
				exclusive = true
			case coherence.O:
				owners++
				holders++
			case coherence.S:
				holders++
			}
		}
		if owners > 1 {
			return fmt.Sprintf("SWMR violation: line %d has %d owners", l, owners)
		}
		if !lineQuiescent(cfg, s, l) {
			continue
		}
		if exclusive && holders > 1 {
			return fmt.Sprintf("SWMR violation: line %d exclusive with %d holders at quiescence", l, holders)
		}
		for a := 0; a < cfg.Agents; a++ {
			if coherence.State(s.st[a][l]) != coherence.I && s.ver[a][l] != s.latest[l] {
				return fmt.Sprintf("data-value violation: agent%d line %d holds v%d at quiescence, newest is v%d (lost store)",
					a, l, s.ver[a][l], s.latest[l])
			}
		}
		if owners == 0 && s.mem[l] != s.latest[l] {
			return fmt.Sprintf("data-value violation: line %d has no owner at quiescence but memory holds v%d, newest is v%d",
				l, s.mem[l], s.latest[l])
		}
	}
	if s.nmsgs == 0 && !anyDramPending(cfg, s) && workOutstanding(cfg, s) {
		return "deadlock: work outstanding but no step enabled"
	}
	return ""
}

// lineQuiescent reports whether nothing is in flight for line l.
func lineQuiescent(cfg Config, s *state, l int) bool {
	if s.busy[l] != 0 || s.nq[l] != 0 {
		return false
	}
	for a := 0; a < cfg.Agents; a++ {
		if s.pend[a][l] != pendNone || s.wb[a][l] != 0 {
			return false
		}
	}
	for i := 0; i < int(s.nmsgs); i++ {
		if int(s.msgs[i].line) == l {
			return false
		}
	}
	for seq := 1; seq <= maxSeqs; seq++ {
		if s.pushPend&(1<<seq) != 0 && int(s.pushLine[seq]) == l {
			return false
		}
	}
	return true
}

func anyDramPending(cfg Config, s *state) bool {
	for l := 0; l < cfg.Lines; l++ {
		if s.busy[l] != 0 && s.txn[l].flags&tDramPending != 0 && s.txn[l].flags&tDramDone == 0 {
			return true
		}
	}
	return false
}

func workOutstanding(cfg Config, s *state) bool {
	if s.pushPend != 0 {
		return true
	}
	for l := 0; l < cfg.Lines; l++ {
		if s.busy[l] != 0 || s.nq[l] != 0 {
			return true
		}
		for a := 0; a < cfg.Agents; a++ {
			if s.pend[a][l] != pendNone {
				return true
			}
		}
	}
	return false
}

// Result summarises one exhaustive exploration.
type Result struct {
	Config      Config
	States      int // distinct states reached
	Transitions int // transitions explored
	MaxDepth    int // longest shortest-path from the initial state
	Violation   *Violation
}

// Violation is a failed invariant with its minimal counterexample: the
// shortest action sequence from the initial state (BFS order
// guarantees minimality) and a rendering of the violating state.
type Violation struct {
	Message string
	Trace   []string
	Final   string
}

// Error formats the violation as a multi-line report.
func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invariant violated: %s\n", v.Message)
	fmt.Fprintf(&b, "counterexample (%d steps):\n", len(v.Trace))
	for i, step := range v.Trace {
		fmt.Fprintf(&b, "  %2d. %s\n", i+1, step)
	}
	b.WriteString("violating state:\n")
	b.WriteString(v.Final)
	return b.String()
}

// Check exhaustively explores every reachable state of the configured
// model breadth-first, stopping at the first invariant violation. A
// nil Result.Violation means the protocol is safe within the
// configured bounds.
func Check(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	init := initial(cfg)
	res := &Result{Config: cfg, States: 1}
	if v := checkState(cfg, &init); v != "" {
		res.Violation = &Violation{Message: v, Final: dump(cfg, &init)}
		return res, nil
	}

	nodes := []state{init}
	index := map[state]int32{init: 0}
	parent := []int32{-1}
	depth := []int32{0}

	for head := 0; head < len(nodes) && res.Violation == nil; head++ {
		s := nodes[head]
		successors(cfg, &s, false, func(ns state, _ string, viol string) {
			if res.Violation != nil {
				return
			}
			res.Transitions++
			if viol == "" {
				viol = checkState(cfg, &ns)
			}
			if _, seen := index[ns]; !seen {
				index[ns] = int32(len(nodes))
				nodes = append(nodes, ns)
				parent = append(parent, int32(head))
				d := depth[head] + 1
				depth = append(depth, d)
				if int(d) > res.MaxDepth {
					res.MaxDepth = int(d)
				}
			}
			if viol != "" {
				res.Violation = &Violation{
					Message: viol,
					Trace:   tracePath(cfg, nodes, parent, head, &ns),
					Final:   dump(cfg, &ns),
				}
			}
		})
	}
	res.States = len(nodes)
	return res, nil
}

// tracePath rebuilds the action labels from the initial state to the
// violating state ns (reached from nodes[last]). Labels are not stored
// during exploration; each edge on the (short) path is re-derived by
// re-running the parent's successors and matching the child.
func tracePath(cfg Config, nodes []state, parent []int32, last int, ns *state) []string {
	var path []int
	for i := int32(last); i != -1; i = parent[i] {
		path = append(path, int(i))
	}
	// Reverse into root-first order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	var trace []string
	for i := 0; i+1 < len(path); i++ {
		trace = append(trace, edgeLabel(cfg, &nodes[path[i]], &nodes[path[i+1]]))
	}
	trace = append(trace, edgeLabel(cfg, &nodes[last], ns))
	return trace
}

// edgeLabel finds the action taking from to to.
func edgeLabel(cfg Config, from, to *state) string {
	label := "?"
	found := false
	successors(cfg, from, true, func(c state, l, _ string) {
		if !found && c == *to {
			label, found = l, true
		}
	})
	return label
}

// dump renders a state for counterexample reports.
func dump(cfg Config, s *state) string {
	var b strings.Builder
	for l := 0; l < cfg.Lines; l++ {
		fmt.Fprintf(&b, "  line %d: mem=v%d newest=v%d", l, s.mem[l], s.latest[l])
		if s.busy[l] != 0 {
			t := s.txn[l]
			fmt.Fprintf(&b, " [txn %s from agent%d acks %d/%d flags %#x, %d queued]",
				coherence.ReqType(t.typ), t.from, t.acksRecv, t.acksWanted, t.flags, s.nq[l])
		}
		b.WriteByte('\n')
		for a := 0; a < cfg.Agents; a++ {
			fmt.Fprintf(&b, "    agent%d: %s v%d", a, coherence.StateName(coherence.State(s.st[a][l])), s.ver[a][l])
			if s.dirty[a][l] != 0 {
				b.WriteString(" dirty")
			}
			if s.wb[a][l] != 0 {
				fmt.Fprintf(&b, " wb=v%d", s.wb[a][l])
			}
			if s.pend[a][l] != pendNone {
				fmt.Fprintf(&b, " pend=%d", s.pend[a][l])
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "  storesLeft=%d", s.storesLeft)
	if s.pushPend != 0 {
		fmt.Fprintf(&b, " pushPend=%#x", s.pushPend)
	}
	fmt.Fprintf(&b, " msgs=%d\n", s.nmsgs)
	for i := 0; i < int(s.nmsgs); i++ {
		m := s.msgs[i]
		fmt.Fprintf(&b, "    msg kind=%d line=%d a=%d b=%d c=%d d=%d\n", m.kind, m.line, m.a, m.b, m.c, m.d)
	}
	return b.String()
}
