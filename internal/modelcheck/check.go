package modelcheck

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"dstore/internal/coherence"
)

// lineQuiescent reports whether nothing is in flight for line l.
func lineQuiescent(cfg Config, s *state, l int) bool {
	if s.busy[l] != 0 || s.nq[l] != 0 {
		return false
	}
	for a := 0; a < cfg.Agents; a++ {
		if s.pend[a][l] != pendNone || s.wb[a][l] != 0 {
			return false
		}
	}
	for i := 0; i < int(s.nmsgs); i++ {
		if int(s.msgs[i].line) == l {
			return false
		}
	}
	for seq := 1; seq <= maxSeqs; seq++ {
		if s.pushPend&(1<<seq) != 0 && int(s.pushLine[seq]) == l {
			return false
		}
	}
	return true
}

func anyDramPending(cfg Config, s *state) bool {
	for l := 0; l < cfg.Lines; l++ {
		if s.busy[l] != 0 && s.txn[l].flags&tDramPending != 0 && s.txn[l].flags&tDramDone == 0 {
			return true
		}
	}
	return false
}

func workOutstanding(cfg Config, s *state) bool {
	if s.pushPend != 0 {
		return true
	}
	for l := 0; l < cfg.Lines; l++ {
		if s.busy[l] != 0 || s.nq[l] != 0 {
			return true
		}
		for a := 0; a < cfg.Agents; a++ {
			if s.pend[a][l] != pendNone {
				return true
			}
		}
	}
	return false
}

// Result summarises one exhaustive exploration.
type Result struct {
	Config      Config
	Workers     int // worker count the run used
	States      int // distinct states reached
	Transitions int // transitions explored
	MaxDepth    int // longest shortest-path from the initial state
	// Invariants counts, per registered invariant (plus the checker's
	// own deadlock and mm-install checks), how many times the check was
	// evaluated — the per-invariant work profile of the run.
	Invariants []InvariantCount
	Violation  *Violation
}

// InvariantCount is the evaluation count of one invariant.
type InvariantCount struct {
	Name   string `json:"name"`
	Checks uint64 `json:"checks"`
}

// Violation is a failed invariant with its minimal counterexample: the
// shortest action sequence from the initial state (BFS order
// guarantees minimality) and a rendering of the violating state.
type Violation struct {
	Message string
	Trace   []string
	Final   string
}

// Error formats the violation as a multi-line report.
func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invariant violated: %s\n", v.Message)
	fmt.Fprintf(&b, "counterexample (%d steps):\n", len(v.Trace))
	for i, step := range v.Trace {
		fmt.Fprintf(&b, "  %2d. %s\n", i+1, step)
	}
	b.WriteString("violating state:\n")
	b.WriteString(v.Final)
	return b.String()
}

// CoveragePair is one fired protocol-table row.
type CoveragePair struct {
	State coherence.State
	Event coherence.Event
}

// Options tunes an exploration.
type Options struct {
	// Workers is the BFS worker count; 0 means GOMAXPROCS. Results —
	// state counts, invariant counts and counterexample traces — are
	// identical at any worker count.
	Workers int
	// Coverage, when non-nil, collects every (state, event) table row
	// the model fires. Recording costs a mutex per transition, so it is
	// reserved for the reachability dump and the cross-validation fuzz
	// test, not routine checking.
	Coverage map[CoveragePair]bool
}

// checker is the per-run immutable context shared by workers.
type checker struct {
	cfg   Config
	proto coherence.Protocol
	group []perm
	table *fpTable
	pushE coherence.Event
}

// Extra checker-owned invariant slots appended after the registry's.
const (
	extraDeadlock = iota
	extraMMInstall
	numExtra
)

// worker is one BFS worker's private scratch: the next-frontier chunk
// it builds, its candidate violations, statistics, and a preallocated
// LineView so invariant checking allocates nothing per state.
type worker struct {
	view        coherence.LineView
	counts      []uint64
	next        []state
	nextFP      []uint64
	cands       []cand
	transitions int
	scratch     state // successor buffer, reused across every expansion
}

// cand is one discovered violation, kept until the level barrier and
// then deterministically minimised. It deliberately carries nothing
// about HOW the violation was discovered: which worker found it and
// from which parent are races, so the trace is reconstructed from the
// visited table's parent chain, whose per-level min-fingerprint
// tie-break has settled deterministically by the time exploration
// stops.
type cand struct {
	depth int32
	msg   string
	st    state // the violating state
}

// candLess orders candidates: shallowest first, then by the violating
// state's byte encoding, then message — a total order independent of
// discovery order, so the reported counterexample is byte-identical
// at any worker count.
func candLess(a, b *cand) bool {
	if a.depth != b.depth {
		return a.depth < b.depth
	}
	if c := bytes.Compare(stateBytes(&a.st), stateBytes(&b.st)); c != 0 {
		return c < 0
	}
	return a.msg < b.msg
}

// checkState evaluates the registered protocol's invariant set (plus
// the deadlock heuristic) on one state, returning a violation message
// or "". Each unique state is checked exactly once, when first
// inserted into the visited set.
func (c *checker) checkState(w *worker, s *state) string {
	v := &w.view
	for l := 0; l < c.cfg.Lines; l++ {
		v.Line = lineLabels[l]
		for a := 0; a < c.cfg.Agents; a++ {
			v.States[a] = coherence.State(s.st[a][l])
			v.Dirty[a] = s.dirty[a][l] != 0
			v.Vers[a] = uint64(s.ver[a][l])
		}
		v.MemVer = uint64(s.mem[l])
		v.Latest = uint64(s.latest[l])
		v.Quiescent = lineQuiescent(c.cfg, s, l)
		if msg := c.proto.CheckLineView(v, w.counts); msg != "" {
			return msg
		}
	}
	w.counts[len(c.proto.Invariants)+extraDeadlock]++
	if s.nmsgs == 0 && !anyDramPending(c.cfg, s) && workOutstanding(c.cfg, s) {
		return "deadlock: work outstanding but no step enabled"
	}
	return ""
}

var lineLabels = [maxLines]string{"0", "1"}

func newChecker(cfg Config) *checker {
	return &checker{
		cfg:   cfg,
		proto: coherence.ProtocolFor(cfg.DirectLines > 0, cfg.Resilient, cfg.WriteThroughPush),
		group: symGroup(cfg),
		table: newFPTable(),
		pushE: coherence.PushEvent(cfg.WriteThroughPush),
	}
}

func (c *checker) newWorker() *worker {
	names := make([]string, c.cfg.Agents)
	for a := range names {
		names[a] = fmt.Sprintf("agent%d", a)
	}
	return &worker{
		view: coherence.LineView{
			N:           c.cfg.Agents,
			States:      make([]coherence.State, c.cfg.Agents),
			Dirty:       make([]bool, c.cfg.Agents),
			Vers:        make([]uint64, c.cfg.Agents),
			Names:       names,
			HasVersions: true,
		},
		counts: make([]uint64, len(c.proto.Invariants)+numExtra),
	}
}

// Check explores with default options (all cores).
func Check(cfg Config) (*Result, error) { return CheckOpts(cfg, Options{}) }

// CheckOpts exhaustively explores every reachable state of the
// configured model with a level-synchronous parallel BFS over a
// hash-compacted visited set, stopping at the first BFS level
// containing an invariant violation. A nil Result.Violation means the
// protocol is safe within the configured bounds.
//
// Determinism: the visited set is keyed by state fingerprints, parent
// pointers tie-break to the smallest fingerprint within a level, and
// violations are minimised under candLess after each level barrier —
// so States, Invariants and the counterexample are independent of
// worker count and scheduling.
func CheckOpts(cfg Config, opt Options) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c := newChecker(cfg)
	res := &Result{Config: cfg, Workers: workers}

	ws := make([]*worker, workers)
	for i := range ws {
		ws[i] = c.newWorker()
	}

	// Per-worker recorders count mm-install checks (every push install
	// the model fires) and feed the optional coverage set.
	var covMu sync.Mutex
	recFor := func(w *worker) recorder {
		return func(agent, line int, st coherence.State, ev coherence.Event, next coherence.State) {
			if ev == c.pushE {
				w.counts[len(c.proto.Invariants)+extraMMInstall]++
			}
			if opt.Coverage != nil {
				covMu.Lock()
				opt.Coverage[CoveragePair{State: st, Event: ev}] = true
				covMu.Unlock()
			}
		}
	}

	c.table.par = workers > 1
	init := canonical(cfg, c.group, initial(cfg))
	initFP := fpState(&init)
	c.table.insert(initFP, initFP, 0)
	if msg := c.checkState(ws[0], &init); msg != "" {
		res.States, res.Violation = 1, &Violation{Message: msg, Final: dump(cfg, &init)}
		c.mergeCounts(res, ws)
		return res, nil
	}

	frontier := []state{init}
	frontierFP := []uint64{initFP}
	var best *cand
	for depth := int32(0); len(frontier) > 0; depth++ {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for _, w := range ws {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				rec := recFor(w)
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(frontier) {
						return
					}
					s, pfp := &frontier[i], frontierFP[i]
					emitted := 0
					successorsInto(cfg, s, &w.scratch, false, rec, func(ns *state, _ string, viol string) {
						emitted++
						w.transitions++
						if len(c.group) > 0 {
							*ns = canonical(cfg, c.group, *ns)
						}
						fp := fpState(ns)
						if c.table.insert(fp, pfp, depth+1) {
							if viol == "" {
								viol = c.checkState(w, ns)
							}
							if n := len(w.next); n < cap(w.next) {
								// Reused frontier backing: every slot is either
								// a former state or append-zeroed, so the dead-
								// slots-zero invariant copyLive needs holds and
								// the live-prefix copy is enough.
								w.next = w.next[:n+1]
								copyLive(&w.next[n], ns)
							} else {
								w.next = append(w.next, *ns)
							}
							w.nextFP = append(w.nextFP, fp)
						}
						if viol != "" {
							w.cands = append(w.cands, cand{depth: depth + 1, msg: viol, st: *ns})
						}
					})
					if emitted == 0 && workOutstanding(cfg, s) {
						// Exact deadlock: work outstanding, no enabled step
						// at all (the in-state heuristic can miss states
						// whose remaining messages are all undeliverable).
						w.cands = append(w.cands, cand{depth: depth, msg: "deadlock: work outstanding but no step enabled",
							st: *s})
					}
				}
			}(w)
		}
		wg.Wait()

		for _, w := range ws {
			for i := range w.cands {
				if best == nil || candLess(&w.cands[i], best) {
					cp := w.cands[i]
					best = &cp
				}
			}
			w.cands = w.cands[:0]
		}
		var next []state
		var nextFP []uint64
		if len(ws) == 1 {
			// Single worker: its chunk IS the next frontier — swap the
			// backing arrays instead of copying ~300 bytes per state.
			w := ws[0]
			next, nextFP = w.next, w.nextFP
			w.next, w.nextFP = frontier[:0], frontierFP[:0]
		} else {
			next, nextFP = frontier[:0], frontierFP[:0]
			for _, w := range ws {
				next = append(next, w.next...)
				nextFP = append(nextFP, w.nextFP...)
				w.next, w.nextFP = w.next[:0], w.nextFP[:0]
			}
		}
		if best != nil {
			break
		}
		if len(next) > 0 {
			res.MaxDepth = int(depth) + 1
		}
		frontier, frontierFP = next, nextFP
	}

	res.States = c.table.count()
	c.mergeCounts(res, ws)
	if best != nil {
		res.Violation = c.buildViolation(best, init, initFP)
	}
	return res, nil
}

func (c *checker) mergeCounts(res *Result, ws []*worker) {
	for _, w := range ws {
		res.Transitions += w.transitions
	}
	names := make([]string, 0, len(c.proto.Invariants)+numExtra)
	for i := range c.proto.Invariants {
		names = append(names, c.proto.Invariants[i].Name)
	}
	names = append(names, "deadlock", "mm-install")
	for i, name := range names {
		var n uint64
		for _, w := range ws {
			n += w.counts[i]
		}
		res.Invariants = append(res.Invariants, InvariantCount{Name: name, Checks: n})
	}
}

// buildViolation reconstructs the minimal counterexample for the
// chosen candidate: walk the fingerprint parent chain back to the
// root, forward-replay successors matching each fingerprint to recover
// the action labels, then label the final violating step by exact
// state match.
func (c *checker) buildViolation(v *cand, init state, initFP uint64) *Violation {
	// Parent chain, root-first, from the visited table: every
	// candidate's state was inserted before its violation was
	// detected, and the table's per-level min-parent tie-break is the
	// deterministic path source (the discovering worker's own parent
	// is a race).
	var chain []uint64
	for fp := fpState(&v.st); ; {
		chain = append(chain, fp)
		e, ok := c.table.lookup(fp)
		if !ok || e.depth == 0 {
			break
		}
		fp = e.parentFP
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}

	var trace []string
	cur := init
	for _, fp := range chain[1:] {
		found := false
		successors(c.cfg, &cur, true, nil, func(ns *state, label, _ string) {
			if found {
				return
			}
			cns := canonical(c.cfg, c.group, *ns)
			if fpState(&cns) == fp {
				cur, found = cns, true
				trace = append(trace, label)
			}
		})
		if !found {
			// Fingerprint collision broke the chain (probability ~1e-7
			// per run); report what we have.
			trace = append(trace, "<trace lost to fingerprint collision>")
			break
		}
	}
	return &Violation{Message: v.msg, Trace: trace, Final: dump(c.cfg, &v.st)}
}

// dump renders a state for counterexample reports.
func dump(cfg Config, s *state) string {
	var b strings.Builder
	for l := 0; l < cfg.Lines; l++ {
		fmt.Fprintf(&b, "  line %d: mem=v%d newest=v%d", l, s.mem[l], s.latest[l])
		if s.busy[l] != 0 {
			t := s.txn[l]
			fmt.Fprintf(&b, " [txn %s from agent%d acks %d/%d flags %#x, %d queued]",
				coherence.ReqType(t.typ), t.from, t.acksRecv, t.acksWanted, t.flags, s.nq[l])
		}
		b.WriteByte('\n')
		for a := 0; a < cfg.Agents; a++ {
			fmt.Fprintf(&b, "    agent%d: %s v%d", a, coherence.StateName(coherence.State(s.st[a][l])), s.ver[a][l])
			if s.dirty[a][l] != 0 {
				b.WriteString(" dirty")
			}
			if s.wb[a][l] != 0 {
				fmt.Fprintf(&b, " wb=v%d", s.wb[a][l])
			}
			if s.pend[a][l] != pendNone {
				fmt.Fprintf(&b, " pend=%d", s.pend[a][l])
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "  storesLeft=%d", s.storesLeft)
	if s.pushPend != 0 {
		fmt.Fprintf(&b, " pushPend=%#x", s.pushPend)
	}
	fmt.Fprintf(&b, " msgs=%d\n", s.nmsgs)
	for i := 0; i < int(s.nmsgs); i++ {
		m := s.msgs[i]
		fmt.Fprintf(&b, "    msg kind=%d line=%d a=%d b=%d c=%d d=%d\n", m.kind, m.line, m.a, m.b, m.c, m.d)
	}
	return b.String()
}
