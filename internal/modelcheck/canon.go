package modelcheck

import "bytes"

// Canonical-ordering symmetry reduction: the model treats some
// entities uniformly, so states differing only by a relabelling of
// those entities are behaviourally identical. When Config.Symmetry is
// on, every discovered state is replaced by the lexicographically
// smallest member of its orbit before being fingerprinted, so each
// orbit is explored once.
//
// Interchangeable entities (each a sound group generator because no
// rule distinguishes the swapped pair):
//   - middle agents — neither the CPU (agent 0, the only push sender
//     and remote loader) nor a GPU slice (the home of a direct line);
//   - two heap lines (DirectLines == 0), or two direct lines homed at
//     the same slice (gpus() == 1) — per-line rules are identical and
//     all budgets are shared;
//   - (GPU slice, homed direct line) pairs when gpus() == 2 and both
//     lines are direct: slices are distinguished only by which line
//     they home, so swapping lines and slices together is invisible.
//
// The group is the closure of those generators (all compositions are
// enumerated below); for the standard sweep configs it is trivial and
// canonicalisation is skipped entirely.

// perm is one group element: a relabelling of agents and lines.
type perm struct {
	agents [maxAgents]uint8
	lines  [maxLines]uint8
}

func identityPerm(cfg Config) perm {
	var p perm
	for a := 0; a < maxAgents; a++ {
		p.agents[a] = uint8(a)
	}
	for l := 0; l < maxLines; l++ {
		p.lines[l] = uint8(l)
	}
	return p
}

// symGroup enumerates the non-identity group elements for cfg, or nil
// when symmetry is off or the group is trivial.
func symGroup(cfg Config) []perm {
	if !cfg.Symmetry {
		return nil
	}
	id := identityPerm(cfg)

	// Agent-side generators applied as full elements: the middle-agent
	// swap (at most two middle agents fit in maxAgents).
	agentPerms := []perm{id}
	firstMid, lastMid := 1, cfg.Agents-cfg.gpus()-1
	if lastMid > firstMid {
		p := id
		p.agents[firstMid], p.agents[lastMid] = p.agents[lastMid], p.agents[firstMid]
		agentPerms = append(agentPerms, p)
	}

	// Line-side generators (possibly coupled to a GPU-slice swap).
	linePerms := []perm{id}
	if cfg.Lines == 2 {
		switch {
		case cfg.DirectLines == 0, cfg.DirectLines == 2 && cfg.gpus() == 1:
			p := id
			p.lines[0], p.lines[1] = 1, 0
			linePerms = append(linePerms, p)
		case cfg.DirectLines == 2 && cfg.gpus() == 2:
			p := id
			p.lines[0], p.lines[1] = 1, 0
			g0, g1 := homeAgent(cfg, 0), homeAgent(cfg, 1)
			p.agents[g0], p.agents[g1] = p.agents[g1], p.agents[g0]
			linePerms = append(linePerms, p)
		}
	}

	// Closure: compose every agent element with every line element.
	var group []perm
	for _, ap := range agentPerms {
		for _, lp := range linePerms {
			var c perm
			for a := 0; a < maxAgents; a++ {
				c.agents[a] = lp.agents[ap.agents[a]]
			}
			c.lines = lp.lines
			if c != id {
				group = append(group, c)
			}
		}
	}
	return group
}

// applyPerm returns s relabelled by p. Message kinds carry agent ids
// in kind-specific fields (see the msg kind table in model.go); the
// multiset is re-sorted afterwards so the encoding stays canonical.
func applyPerm(cfg Config, s *state, p *perm) state {
	var ns state
	for a := 0; a < cfg.Agents; a++ {
		na := p.agents[a]
		for l := 0; l < cfg.Lines; l++ {
			nl := p.lines[l]
			ns.st[na][nl] = s.st[a][l]
			ns.dirty[na][nl] = s.dirty[a][l]
			ns.ver[na][nl] = s.ver[a][l]
			ns.wb[na][nl] = s.wb[a][l]
			ns.wbStale[na][nl] = s.wbStale[a][l]
			ns.pend[na][nl] = s.pend[a][l]
			ns.super[na][nl] = s.super[a][l]
		}
	}
	for l := 0; l < cfg.Lines; l++ {
		nl := p.lines[l]
		ns.mem[nl] = s.mem[l]
		ns.latest[nl] = s.latest[l]
		ns.busy[nl] = s.busy[l]
		ns.nq[nl] = s.nq[l]
		ns.lastPushVer[nl] = s.lastPushVer[l]
		t := s.txn[l]
		if t != (txnState{}) {
			t.from = p.agents[t.from]
		}
		ns.txn[nl] = t
		for i := 0; i < int(s.nq[l]); i++ {
			e := s.queue[l][i]
			e.from = p.agents[e.from]
			ns.queue[nl][i] = e
		}
	}
	ns.storesLeft = s.storesLeft
	ns.evictsLeft = s.evictsLeft
	ns.loadsLeft = s.loadsLeft
	ns.nackLeft = s.nackLeft
	ns.dupLeft = s.dupLeft
	ns.ordered = s.ordered
	ns.pushSeq = s.pushSeq
	ns.pushPend = s.pushPend
	ns.applied = s.applied
	ns.pushVer = s.pushVer
	// Only written entries are relabelled: unused slots stay zero so
	// the permuted state matches what the permuted run would produce.
	for seq := 1; seq <= int(s.pushSeq); seq++ {
		ns.pushLine[seq] = p.lines[s.pushLine[seq]]
	}
	ns.nmsgs = s.nmsgs
	for i := 0; i < int(s.nmsgs); i++ {
		m := s.msgs[i]
		m.line = p.lines[m.line]
		switch m.kind {
		case kReq:
			m.b = p.agents[m.b]
		case kProbe:
			m.b = p.agents[m.b]
			m.c = p.agents[m.c]
		case kAck, kData, kUnblock, kWBDone:
			m.a = p.agents[m.a]
		}
		// kPutx (a=ver, b=seq) and kPushAck (a=seq) carry no agent ids.
		ns.msgs[i] = m
	}
	for i := 1; i < int(ns.nmsgs); i++ {
		for j := i; j > 0 && msgLess(ns.msgs[j], ns.msgs[j-1]); j-- {
			ns.msgs[j], ns.msgs[j-1] = ns.msgs[j-1], ns.msgs[j]
		}
	}
	return ns
}

// canonical returns the smallest orbit member of s under group (the
// state itself when the group is empty).
func canonical(cfg Config, group []perm, s state) state {
	if len(group) == 0 {
		return s
	}
	best := s
	bb := stateBytes(&best)
	for i := range group {
		cand := applyPerm(cfg, &s, &group[i])
		if bytes.Compare(stateBytes(&cand), bb) < 0 {
			best = cand
		}
	}
	return best
}
