package modelcheck

import (
	"reflect"
	"testing"
	"unsafe"
)

// TestStateNoPadding pins the precondition of the fingerprint byte
// view: the state struct must have no padding, or unsafe bytes would
// include garbage and break canonical hashing. Every field is uint8 or
// an array/struct of uint8s, so the flat byte count must equal
// unsafe.Sizeof.
func TestStateNoPadding(t *testing.T) {
	var flat func(reflect.Type) uintptr
	flat = func(ty reflect.Type) uintptr {
		switch ty.Kind() {
		case reflect.Uint8:
			return 1
		case reflect.Array:
			return uintptr(ty.Len()) * flat(ty.Elem())
		case reflect.Struct:
			var n uintptr
			for i := 0; i < ty.NumField(); i++ {
				n += flat(ty.Field(i).Type)
			}
			return n
		default:
			t.Fatalf("state contains non-uint8 kind %v", ty.Kind())
			return 0
		}
	}
	if got, want := flat(reflect.TypeOf(state{})), unsafe.Sizeof(state{}); got != want {
		t.Fatalf("state has padding: %d flat bytes, %d with padding", got, want)
	}
}

// TestParallelDeterminism requires identical results — state counts,
// invariant counts, and byte-identical counterexamples — at every
// worker count, on both clean and violating configurations. Run under
// -race this also exercises the worker pool for data races.
func TestParallelDeterminism(t *testing.T) {
	cfgs := []Config{
		{Agents: 3, Lines: 1, DirectLines: 1, MaxStores: 2},
		{Agents: 3, Lines: 1, MaxStores: 1, MaxEvicts: 1, MaxLoads: 2, Mutation: MutSkipInvalidate},
		{Agents: 3, Lines: 1, MaxStores: 1, MaxEvicts: 1, MaxLoads: 2, Bypass: true, Mutation: MutBypassNoWBBuf},
		{Agents: 4, GPUs: 2, Lines: 2, DirectLines: 2, MaxStores: 1, MaxEvicts: 1, MaxLoads: 1, Symmetry: true},
	}
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			base, err := CheckOpts(cfg, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4} {
				got, err := CheckOpts(cfg, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if got.States != base.States || got.Transitions != base.Transitions || got.MaxDepth != base.MaxDepth {
					t.Errorf("workers=%d: states/transitions/depth %d/%d/%d, want %d/%d/%d",
						workers, got.States, got.Transitions, got.MaxDepth, base.States, base.Transitions, base.MaxDepth)
				}
				if !reflect.DeepEqual(got.Invariants, base.Invariants) {
					t.Errorf("workers=%d: invariant counts %v, want %v", workers, got.Invariants, base.Invariants)
				}
				switch {
				case (got.Violation == nil) != (base.Violation == nil):
					t.Errorf("workers=%d: violation presence differs", workers)
				case got.Violation != nil && got.Violation.Error() != base.Violation.Error():
					t.Errorf("workers=%d: counterexample differs:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
						workers, base.Violation.Error(), workers, got.Violation.Error())
				}
			}
		})
	}
}

// TestSymmetryReduction: symmetry must shrink (or at worst preserve)
// the state count without changing the verdict, and the canonical map
// must be a sound orbit representative (canonical(perm(s)) ==
// canonical(s) for every group element).
func TestSymmetryReduction(t *testing.T) {
	cfg := Config{Agents: 4, GPUs: 2, Lines: 2, DirectLines: 2, MaxStores: 1, MaxEvicts: 1, MaxLoads: 1}
	plain, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Symmetry = true
	folded, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Violation != nil || folded.Violation != nil {
		t.Fatalf("unexpected violation (plain=%v folded=%v)", plain.Violation, folded.Violation)
	}
	if folded.States >= plain.States {
		t.Errorf("symmetry did not reduce: %d states folded vs %d plain", folded.States, plain.States)
	}
	t.Logf("symmetry: %d states vs %d plain (%.1f%%)", folded.States, plain.States,
		100*float64(folded.States)/float64(plain.States))

	// Orbit soundness on a sample of reachable states.
	group := symGroup(cfg)
	if len(group) == 0 {
		t.Fatal("expected a nontrivial symmetry group")
	}
	seen := 0
	frontier := []state{initial(cfg)}
	visited := map[state]bool{frontier[0]: true}
	for len(frontier) > 0 && seen < 2000 {
		s := frontier[0]
		frontier = frontier[1:]
		seen++
		c := canonical(cfg, group, s)
		for gi := range group {
			p := applyPerm(cfg, &s, &group[gi])
			if pc := canonical(cfg, group, p); pc != c {
				t.Fatalf("canonical not orbit-invariant for group element %d", gi)
			}
		}
		successors(cfg, &s, false, nil, func(ns *state, _, _ string) {
			if !visited[*ns] {
				visited[*ns] = true
				frontier = append(frontier, *ns)
			}
		})
	}
}

// TestFingerprintSanity: the fingerprint must distinguish near-equal
// states (single byte flips) and be stable for equal ones.
func TestFingerprintSanity(t *testing.T) {
	var s state
	base := fingerprint(stateBytes(&s))
	if base != fingerprint(stateBytes(&s)) {
		t.Fatal("fingerprint not deterministic")
	}
	seen := map[uint64]bool{base: true}
	for i := 0; i < stateSize; i++ {
		var m state
		stateBytes(&m)[i] = 1
		fp := fingerprint(stateBytes(&m))
		if seen[fp] {
			t.Fatalf("fingerprint collision on byte %d flip", i)
		}
		seen[fp] = true
	}
}

// TestFPTable exercises insert/lookup/grow and the min-parent rule.
func TestFPTable(t *testing.T) {
	tab := newFPTable()
	for i := uint64(1); i <= 100_000; i++ {
		if !tab.insert(i, i/2, int32(i%40)) {
			t.Fatalf("fresh insert %d reported seen", i)
		}
	}
	if tab.insert(7, 3, 7%40) {
		t.Fatal("duplicate insert reported fresh")
	}
	if tab.count() != 100_000 {
		t.Fatalf("count = %d, want 100000", tab.count())
	}
	// Same depth, smaller parent wins; larger parent is ignored.
	tab.insert(7, 1, 7%40)
	if e, ok := tab.lookup(7); !ok || e.parentFP != 1 {
		t.Fatalf("min-parent update failed: %+v ok=%v", e, ok)
	}
	tab.insert(7, 0, 12) // different depth: no update
	if e, _ := tab.lookup(7); e.parentFP != 1 || e.depth != 7%40 {
		t.Fatalf("cross-depth update should not happen: %+v", e)
	}
	if _, ok := tab.lookup(999_999_999); ok {
		t.Fatal("lookup of absent fp succeeded")
	}
}
