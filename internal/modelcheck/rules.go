package modelcheck

import (
	"fmt"

	"dstore/internal/coherence"
)

// recorder observes every protocol-table row the model fires:
// (agent, line, state, event) → next state. Nil in the hot exploration
// loop; the -coverage reachability dump and the cross-validation fuzz
// test install one.
type recorder func(agent, line int, st coherence.State, ev coherence.Event, next coherence.State)

func (r recorder) rec(agent, line int, st coherence.State, ev coherence.Event, next coherence.State) {
	if r != nil {
		r(agent, line, st, ev, next)
	}
}

// successors enumerates every state reachable from s in one atomic
// step and hands each to emit together with an action label and, when
// the step itself violated an invariant (push install state), a
// violation message. Labels are only built when labels is true — trace
// reconstruction re-runs successors with labels on, so the hot
// exploration loop never formats strings.
//
// Each step is either a spontaneous agent action (issue a miss, commit
// a store, evict, push) or the delivery of one in-flight message;
// delivery order is completely nondeterministic. DRAM completions are
// modelled as separate steps so the speculative-read-vs-probe race is
// explored both ways.
func successors(cfg Config, s *state, labels bool, rc recorder, emit func(ns *state, label, viol string)) {
	var scratch state
	successorsInto(cfg, s, &scratch, labels, rc, emit)
}

// successorsInto is successors with a caller-owned scratch successor,
// reused for every emitted step: emit callers copy what they keep, so
// the exploration workers pass a long-lived buffer and the expansion
// allocates nothing.
func successorsInto(cfg Config, s, scratch *state, labels bool, rc recorder, emit func(ns *state, label, viol string)) {
	lbl := func(format string, args ...any) string {
		if !labels {
			return ""
		}
		return fmt.Sprintf(format, args...)
	}

	// homeAgent involves a modulo; hoist it out of the agent×line scan.
	var home [maxLines]uint8
	for l := 0; l < cfg.Lines; l++ {
		home[l] = uint8(homeAgent(cfg, l))
	}

	for a := 0; a < cfg.Agents; a++ {
		for l := 0; l < cfg.Lines; l++ {
			direct := isDirect(cfg, l)
			// Direct lines are only cached by their homing GPU slice.
			canDemand := !direct || a == int(home[l])

			st := coherence.State(s.st[a][l])
			idle := s.pend[a][l] == pendNone

			// Resident loads hit without changing state — no successor,
			// but the LoadHit row fires (coverage). Guarded on rc: the
			// argument Transition lookup is pure recording overhead.
			if rc != nil && canDemand && st != coherence.I {
				rc.rec(a, l, st, coherence.EvLoadHit, coherence.Transition(st, coherence.EvLoadHit).Next)
			}

			// Load miss → GETS. Loads that hit (resident line or own
			// non-stale writeback buffer) change no state and are
			// skipped; a stale buffer entry forces the protocol path.
			if canDemand && idle && st == coherence.I && (s.wb[a][l] == 0 || s.wbStale[a][l] != 0) &&
				(cfg.MaxLoads == 0 || s.loadsLeft > 0) {
				ns := scratch
				copyLive(ns, s)
				if cfg.MaxLoads > 0 {
					ns.loadsLeft--
				}
				ns.pend[a][l] = pendLoad
				ns.send(msg{kind: kReq, line: uint8(l), a: uint8(coherence.GETS), b: uint8(a)})
				emit(ns, lbl("agent%d: load miss line %d (GETS)", a, l), "")
			}

			// Stores (heap lines only; the direct region is written via
			// pushes — ctrl.go documents the same precondition).
			if !direct && idle && s.storesLeft > 0 {
				if out := coherence.Transition(st, coherence.EvStoreHit); out.OK {
					// MM commit in place / silent M→MM upgrade.
					rc.rec(a, l, st, coherence.EvStoreHit, out.Next)
					ns := scratch
					copyLive(ns, s)
					ns.st[a][l] = uint8(out.Next)
					ns.dirty[a][l] = 1
					ns.latest[l]++
					ns.ver[a][l] = ns.latest[l]
					ns.storesLeft--
					emit(ns, lbl("agent%d: store hit line %d → v%d", a, l, ns.latest[l]), "")
				} else if st == coherence.S || st == coherence.O {
					// Upgrade: other copies must be invalidated first.
					ns := scratch
					copyLive(ns, s)
					ns.pend[a][l] = pendStore
					ns.storesLeft--
					ns.send(msg{kind: kReq, line: uint8(l), a: uint8(coherence.GETX), b: uint8(a)})
					emit(ns, lbl("agent%d: store upgrade line %d (GETX)", a, l), "")
				} else if st == coherence.I {
					ns := scratch
					copyLive(ns, s)
					ns.pend[a][l] = pendStore
					ns.storesLeft--
					ns.send(msg{kind: kReq, line: uint8(l), a: uint8(coherence.GETX), b: uint8(a)})
					emit(ns, lbl("agent%d: store miss line %d (GETX)", a, l), "")
					if cfg.Bypass {
						// Bypass-dirty-victim flavour: the fill will not
						// allocate; the store writes through.
						nb := scratch
						copyLive(nb, s)
						nb.pend[a][l] = pendBypass
						nb.storesLeft--
						nb.send(msg{kind: kReq, line: uint8(l), a: uint8(coherence.GETX), b: uint8(a)})
						emit(nb, lbl("agent%d: bypass store miss line %d (GETX)", a, l), "")
					}
				}
			}

			// Spontaneous eviction (capacity is abstracted away).
			if canDemand && idle && st != coherence.I &&
				(cfg.MaxEvicts == 0 || s.evictsLeft > 0) {
				evOut := coherence.Transition(st, coherence.EvEvict)
				if !evOut.OK {
					panic("modelcheck: illegal evict")
				}
				rc.rec(a, l, st, coherence.EvEvict, evOut.Next)
				ns := scratch
				copyLive(ns, s)
				if cfg.MaxEvicts > 0 {
					ns.evictsLeft--
				}
				if s.dirty[a][l] != 0 {
					ns.wb[a][l] = s.ver[a][l]
					ns.wbStale[a][l] = 0
					ns.send(msg{kind: kReq, line: uint8(l), a: uint8(coherence.WB), b: uint8(a), c: s.ver[a][l]})
					ns.invalidate(a, l)
					emit(ns, lbl("agent%d: evict dirty line %d (WB v%d)", a, l, s.ver[a][l]), "")
				} else {
					ns.invalidate(a, l)
					emit(ns, lbl("agent%d: evict clean line %d", a, l), "")
				}
			}

			// Direct-store push (CPU agent only, direct lines only). The
			// CPU side is the table's DirectStore row: never cached
			// locally, so it fires from I.
			if a == 0 && direct && s.storesLeft > 0 {
				if rc != nil {
					rc.rec(a, l, coherence.I, coherence.EvDirectStore, coherence.Transition(coherence.I, coherence.EvDirectStore).Next)
				}
				if cfg.Resilient {
					if s.pushSeq < maxSeqs && pendingPushesForLine(s, l) < 2 {
						ns := scratch
						copyLive(ns, s)
						ns.latest[l]++
						ns.storesLeft--
						seq := ns.pushSeq + 1
						ns.pushSeq = seq
						ns.pushPend |= 1 << seq
						ns.pushVer[seq] = ns.latest[l]
						ns.pushLine[seq] = uint8(l)
						ns.send(msg{kind: kPutx, line: uint8(l), a: ns.latest[l], b: seq})
						emit(ns, lbl("agent0: push line %d v%d (seq %d)", l, ns.latest[l], seq), "")
					}
				} else if !putxInFlight(s, l) {
					// Fire-and-forget pushes ride a dedicated FIFO link:
					// one in flight per line models the in-order delivery.
					ns := scratch
					copyLive(ns, s)
					ns.latest[l]++
					ns.storesLeft--
					ns.send(msg{kind: kPutx, line: uint8(l), a: ns.latest[l]})
					emit(ns, lbl("agent0: push line %d v%d", l, ns.latest[l]), "")
				}
			}

			// Uncacheable remote load of the direct region (CPU reading
			// results back) — exercises the PrbSnoop row.
			if a == 0 && direct && idle && (cfg.MaxLoads == 0 || s.loadsLeft > 0) {
				ns := scratch
				copyLive(ns, s)
				if cfg.MaxLoads > 0 {
					ns.loadsLeft--
				}
				ns.pend[a][l] = pendRemote
				ns.send(msg{kind: kReq, line: uint8(l), a: uint8(coherence.RemoteLoad), b: uint8(a)})
				emit(ns, lbl("agent0: remote load line %d", l), "")
			}
		}
	}

	// DRAM completions.
	for l := 0; l < cfg.Lines; l++ {
		if s.busy[l] == 0 {
			continue
		}
		t := s.txn[l]
		if t.flags&tDramPending == 0 || t.flags&tDramDone != 0 {
			continue
		}
		ns := scratch
		copyLive(ns, s)
		nt := &ns.txn[l]
		if t.typ == uint8(coherence.WB) {
			// Memory committed the writeback (the version was recorded at
			// transaction start, matching memctrl.start): notify the
			// writer and close the transaction.
			ns.send(msg{kind: kWBDone, line: uint8(l), a: t.from, b: t.ver})
			finishTxn(cfg, ns, l)
			emit(ns, lbl("memctl: WB v%d line %d committed", t.ver, l), "")
		} else {
			nt.flags |= tDramDone
			maybeSendFromMemory(ns, l)
			emit(ns, lbl("memctl: speculative DRAM read line %d done", l), "")
		}
	}

	// Message deliveries. The multiset is sorted, so skipping an entry
	// equal to its predecessor dedupes identical deliveries.
	for i := 0; i < int(s.nmsgs); i++ {
		if i > 0 && s.msgs[i] == s.msgs[i-1] {
			continue
		}
		m := s.msgs[i]
		if m.ord != 0 {
			// OrderedNet: not at the head of its destination's FIFO.
			continue
		}
		if m.kind == kReq && coherence.ReqType(m.a) == coherence.WB && earlierWBInFlight(s, m) {
			// The crossbar is FIFO per source-destination pair, so two
			// writebacks from the same agent for the same line (evict,
			// reclaim from the writeback buffer, evict again) arrive in
			// send order: versions are monotone, so deliver lowest first.
			continue
		}
		if m.kind == kProbe && cfg.Mutation == MutSkipInvalidate ||
			m.kind == kPutx && cfg.Resilient {
			// Multi-variant receives (skip-invalidate mutation, NACK and
			// duplicate injection) are enumerated out of line.
			variants, nvar := deliveryVariants(cfg, s, m)
			for _, v := range variants[:nvar] {
				ns := scratch
				copyLive(ns, s)
				if v != variantDup {
					ns.take(i)
				} else {
					ns.dupLeft--
				}
				label, viol := deliver(cfg, ns, m, v, labels, rc)
				emit(ns, label, viol)
			}
			continue
		}
		ns := scratch
		copyLive(ns, s)
		ns.take(i)
		label, viol := deliver(cfg, ns, m, variantNormal, labels, rc)
		emit(ns, label, viol)
	}
}

// Delivery variants for nondeterministic receive behaviour.
const (
	variantNormal = iota
	variantSkipInvalidate
	variantNack
	variantDup
)

// deliveryVariants lists how message m may be received in state s.
// Fixed-size return: the hot loop calls this once per in-flight
// message, so a slice would mean one heap allocation per delivery.
func deliveryVariants(cfg Config, s *state, m msg) (vs [3]int, n int) {
	vs[0], n = variantNormal, 1
	switch m.kind {
	case kProbe:
		if cfg.Mutation == MutSkipInvalidate && probeWouldInvalidate(s, m) {
			vs[n] = variantSkipInvalidate
			n++
		}
	case kPutx:
		if cfg.Resilient && m.b != 0 {
			if s.nackLeft > 0 {
				vs[n] = variantNack
				n++
			}
			if s.dupLeft > 0 {
				vs[n] = variantDup
				n++
			}
		}
	}
	return vs, n
}

// probeWouldInvalidate reports whether delivering probe m takes the
// normal-path copy to I (the mutation point for MutSkipInvalidate).
func probeWouldInvalidate(s *state, m msg) bool {
	a, l := int(m.b), int(m.line)
	st := coherence.State(s.st[a][l])
	if s.wb[a][l] != 0 && s.wbStale[a][l] == 0 {
		owned := st == coherence.MM || st == coherence.M || st == coherence.O
		if !owned || s.ver[a][l] < s.wb[a][l] {
			return false // answered from the writeback buffer, no state change
		}
	}
	out := coherence.Transition(st, coherence.ProbeEvent(coherence.ProbeKind(m.a)))
	return st != coherence.I && out.Next == coherence.I
}

// deliver applies message m (already removed from the multiset unless
// duplicated) to ns.
func deliver(cfg Config, ns *state, m msg, variant int, labels bool, rc recorder) (label, viol string) {
	lbl := func(format string, args ...any) string {
		if !labels {
			return ""
		}
		return fmt.Sprintf(format, args...)
	}
	l := int(m.line)
	switch m.kind {
	case kReq:
		e := reqEntry{typ: m.a, from: m.b, ver: m.c}
		if ns.busy[l] != 0 {
			if int(ns.nq[l]) >= maxQueue {
				panic("modelcheck: request queue overflow (raise maxQueue)")
			}
			ns.queue[l][ns.nq[l]] = e
			ns.nq[l]++
			return lbl("memctl: queue %s from agent%d line %d", coherence.ReqType(m.a), m.b, l), ""
		}
		startTxn(cfg, ns, l, e)
		return lbl("memctl: start %s from agent%d line %d", coherence.ReqType(m.a), m.b, l), ""

	case kProbe:
		return deliverProbe(cfg, ns, m, variant, lbl, rc)

	case kAck:
		return deliverAck(cfg, ns, m, lbl)

	case kData:
		return deliverData(cfg, ns, m, lbl, rc)

	case kUnblock:
		if ns.busy[l] == 0 {
			panic("modelcheck: unblock for idle line")
		}
		ns.txn[l].flags |= tUnblocked
		maybeFinish(cfg, ns, l)
		return lbl("memctl: unblock from agent%d line %d", m.a, l), ""

	case kWBDone:
		a := int(m.a)
		if ns.wb[a][l] == m.b {
			ns.wb[a][l] = 0
			ns.wbStale[a][l] = 0
		}
		return lbl("agent%d: WB v%d line %d acknowledged", a, m.b, l), ""

	case kPutx:
		return deliverPutx(cfg, ns, m, variant, lbl, rc)

	case kPushAck:
		seq := m.a
		if m.b&fNack != 0 {
			if ns.pushPend&(1<<seq) != 0 {
				// Retry the still-pending push (chaos.go's retryPush).
				ns.send(msg{kind: kPutx, line: ns.pushLine[seq], a: ns.pushVer[seq], b: seq})
				return lbl("agent0: push seq %d NACKed, retrying", seq), ""
			}
			return lbl("agent0: stale NACK for seq %d ignored", seq), ""
		}
		ns.pushPend &^= 1 << seq
		return lbl("agent0: push seq %d acknowledged", seq), ""
	}
	panic("modelcheck: unknown message kind")
}

// startTxn begins a transaction at the ordering point, mirroring
// memctrl.start: writebacks update memory immediately and wait only
// for DRAM; reads and upgrades broadcast probes to every other agent,
// with a speculative DRAM read racing them for everything but GETX.
func startTxn(cfg Config, ns *state, l int, e reqEntry) {
	ns.busy[l] = 1
	t := &ns.txn[l]
	*t = txnState{typ: e.typ, from: e.from, ver: e.ver}
	typ := coherence.ReqType(e.typ)
	if typ == coherence.WB {
		ns.mem[l] = e.ver
		t.flags = tDramPending
		return
	}
	kind, ok := coherence.ProbeFor(typ)
	if !ok {
		panic(fmt.Sprintf("modelcheck: no probe kind for %v", typ))
	}
	t.acksWanted = uint8(cfg.Agents - 1)
	if typ != coherence.GETX {
		t.flags |= tDramPending
	}
	for tgt := 0; tgt < cfg.Agents; tgt++ {
		if tgt == int(e.from) {
			continue
		}
		ns.send(msg{kind: kProbe, line: uint8(l), a: uint8(kind), b: uint8(tgt), c: e.from})
	}
}

// deliverProbe is ctrl.answerProbe: the writeback buffer supplies
// in-flight dirty evictions, everything else is a row of the shared
// protocol table.
func deliverProbe(cfg Config, ns *state, m msg, variant int, lbl func(string, ...any) string, rc recorder) (string, string) {
	a, l := int(m.b), int(m.line)
	kind := coherence.ProbeKind(m.a)
	requester := m.c
	st := coherence.State(ns.st[a][l])

	if wbv := ns.wb[a][l]; wbv != 0 && ns.wbStale[a][l] == 0 {
		owned := st == coherence.MM || st == coherence.M || st == coherence.O
		if !owned || ns.ver[a][l] < wbv {
			// Dirty eviction still in flight: this agent remains the data
			// source; no state change. An invalidating probe transfers
			// that role, so the entry goes stale.
			if kind == coherence.PrbInv {
				ns.wbStale[a][l] = 1
			}
			supply(ns, l, requester, kind, wbv, true)
			ns.send(msg{kind: kAck, line: uint8(l), a: uint8(a), b: fHadData | fDirty, c: wbv})
			return lbl("agent%d: %v line %d answered from wb buffer (v%d)", a, kind, l, wbv), ""
		}
		// Re-acquired and re-dirtied: the live copy below is newer.
	}

	out := coherence.Transition(st, coherence.ProbeEvent(kind))
	rc.rec(a, l, st, coherence.ProbeEvent(kind), out.Next)
	var flags uint8
	if out.Present {
		flags |= fPresent
	}
	dirty := coherence.DataDirty(out.Data, ns.dirty[a][l] != 0)
	hadData := out.Data != coherence.NoData
	ver := ns.ver[a][l]
	skipped := ""
	switch {
	case out.Next == st:
		// O/S survive PrbShare; everything survives PrbSnoop.
	case out.Next == coherence.I:
		if variant == variantSkipInvalidate {
			skipped = " [copy kept: skip-invalidate]"
			break
		}
		ns.invalidate(a, l)
	default:
		ns.st[a][l] = uint8(out.Next)
	}
	if hadData {
		flags |= fHadData
		if dirty {
			flags |= fDirty
		}
		supply(ns, l, requester, kind, ver, dirty)
	}
	ns.send(msg{kind: kAck, line: uint8(l), a: uint8(a), b: flags, c: ver})
	return lbl("agent%d: answer %v line %d (was %s)%s", a, kind, l, coherence.StateName(st), skipped), ""
}

// supply is ctrl.supplyToRequester: the 3-hop owner-to-requester data
// transfer with the grant implied by the probe kind.
func supply(ns *state, l int, requester uint8, kind coherence.ProbeKind, ver uint8, dirty bool) {
	var grant coherence.State
	var flags uint8
	switch kind {
	case coherence.PrbShare:
		grant = coherence.GrantState(coherence.GETS, true, false)
	case coherence.PrbInv:
		grant = coherence.GrantState(coherence.GETX, true, false)
		if dirty {
			flags |= fOwned // dirty-data responsibility transfers
		}
	case coherence.PrbSnoop:
		grant = coherence.GrantState(coherence.RemoteLoad, true, false)
	}
	ns.send(msg{kind: kData, line: uint8(l), a: requester, b: uint8(grant), c: ver, d: flags})
}

// deliverAck is memctrl.ReceiveAck: collect, and once all acks are in
// either rely on the owner's in-flight transfer or source from memory.
func deliverAck(cfg Config, ns *state, m msg, lbl func(string, ...any) string) (string, string) {
	l := int(m.line)
	if ns.busy[l] == 0 {
		panic("modelcheck: ack for idle line")
	}
	t := &ns.txn[l]
	t.acksRecv++
	if m.b&fHadData != 0 {
		t.flags |= tOwnerSupplied | tSharerSeen
	}
	if m.b&fPresent != 0 {
		t.flags |= tSharerSeen
	}
	if t.acksRecv >= t.acksWanted {
		if t.flags&tOwnerSupplied != 0 {
			// Owner-to-requester transfer already in flight; the
			// speculative DRAM read is discarded.
			t.flags &^= tDramPending
		} else {
			t.flags |= tProbesClean
			if coherence.ReqType(t.typ) == coherence.GETX {
				// No owner: full-line write, grant travels without data.
				t.flags |= tDataSent
				ns.send(msg{kind: kData, line: uint8(l), a: t.from,
					b: uint8(coherence.GrantState(coherence.GETX, false, false)), c: ns.mem[l]})
			} else {
				maybeSendFromMemory(ns, l)
			}
		}
		maybeFinish(cfg, ns, l)
	}
	return lbl("memctl: ack from agent%d line %d", m.a, l), ""
}

// maybeSendFromMemory is memctrl.maybeSendFromMemory: data leaves once
// the probes came back clean and the speculative read completed.
func maybeSendFromMemory(ns *state, l int) {
	t := &ns.txn[l]
	if t.flags&(tDataSent|tProbesClean|tDramDone) != tProbesClean|tDramDone {
		return
	}
	t.flags |= tDataSent
	typ := coherence.ReqType(t.typ)
	sharer := typ == coherence.GETS && t.flags&tSharerSeen != 0
	grant := coherence.GrantState(typ, false, sharer)
	ns.send(msg{kind: kData, line: uint8(l), a: t.from, b: uint8(grant), c: ns.mem[l]})
}

func maybeFinish(cfg Config, ns *state, l int) {
	t := &ns.txn[l]
	if t.flags&tUnblocked != 0 && t.acksRecv >= t.acksWanted {
		finishTxn(cfg, ns, l)
	}
}

func finishTxn(cfg Config, ns *state, l int) {
	ns.busy[l] = 0
	ns.txn[l] = txnState{}
	if ns.nq[l] == 0 {
		return
	}
	e := ns.queue[l][0]
	copy(ns.queue[l][:], ns.queue[l][1:int(ns.nq[l])])
	ns.nq[l]--
	ns.queue[l][ns.nq[l]] = reqEntry{}
	startTxn(cfg, ns, l, e)
}

// deliverData is ctrl.receiveData: complete the outstanding miss.
func deliverData(cfg Config, ns *state, m msg, lbl func(string, ...any) string, rc recorder) (string, string) {
	a, l := int(m.a), int(m.line)
	grant := coherence.State(m.b)
	if grant == coherence.I {
		// Uncacheable remote-load data: nothing installs.
		if ns.pend[a][l] != pendRemote {
			panic("modelcheck: remote data with no remote pend")
		}
		ns.pend[a][l] = pendNone
		ns.send(msg{kind: kUnblock, line: uint8(l), a: uint8(a)})
		return lbl("agent%d: remote load line %d completes (v%d)", a, l, m.c), ""
	}
	p := ns.pend[a][l]
	if p == pendNone {
		panic("modelcheck: data with no pending miss")
	}
	superseded := ns.super[a][l] != 0
	ns.pend[a][l] = pendNone
	ns.super[a][l] = 0
	defer ns.send(msg{kind: kUnblock, line: uint8(l), a: uint8(a)})
	switch {
	case superseded:
		// A push landed while the fill was in flight; the pushed line
		// wins and the fill data is dropped.
		return lbl("agent%d: fill line %d superseded by push", a, l), ""
	case p == pendLoad:
		ev, ok := coherence.FillEvent(grant)
		if !ok {
			panic("modelcheck: no fill event for grant")
		}
		out := coherence.Transition(coherence.State(ns.st[a][l]), ev)
		if !out.OK {
			panic("modelcheck: illegal fill")
		}
		rc.rec(a, l, coherence.State(ns.st[a][l]), ev, out.Next)
		ns.st[a][l] = uint8(out.Next)
		if m.d&fOwned != 0 {
			ns.dirty[a][l] = 1
		}
		ns.ver[a][l] = m.c
		return lbl("agent%d: fill line %d %s v%d", a, l, coherence.StateName(out.Next), m.c), ""
	case p == pendStore:
		out := coherence.Transition(coherence.State(ns.st[a][l]), coherence.EvFillMM)
		if !out.OK {
			panic("modelcheck: illegal exclusive fill")
		}
		rc.rec(a, l, coherence.State(ns.st[a][l]), coherence.EvFillMM, out.Next)
		ns.st[a][l] = uint8(out.Next)
		ns.dirty[a][l] = 1
		ns.latest[l]++
		ns.ver[a][l] = ns.latest[l]
		return lbl("agent%d: exclusive fill line %d, store commits v%d", a, l, ns.latest[l]), ""
	case p == pendBypass:
		// Write permission held but no copy installed: write through.
		// The writeback-buffer entry keeps this agent the data source
		// until memory commits — dropping it is the PR 3 lost-store bug.
		ns.latest[l]++
		v := ns.latest[l]
		if cfg.Mutation != MutBypassNoWBBuf {
			ns.wb[a][l] = v
			ns.wbStale[a][l] = 0
		}
		ns.send(msg{kind: kReq, line: uint8(l), a: uint8(coherence.WB), b: uint8(a), c: v})
		return lbl("agent%d: bypassed store line %d writes through v%d", a, l, v), ""
	}
	panic("modelcheck: unreachable pend kind")
}

// deliverPutx is the GPU slice's ReceivePutx.
func deliverPutx(cfg Config, ns *state, m msg, variant int, lbl func(string, ...any) string, rc recorder) (string, string) {
	l := int(m.line)
	ver, seq := m.a, m.b
	if variant == variantNack {
		ns.nackLeft--
		ns.send(msg{kind: kPushAck, line: uint8(l), a: seq, b: fNack})
		return lbl("gpu: NACK push seq %d line %d", seq, l), ""
	}
	dup := ""
	if variant == variantDup {
		dup = " [duplicated]"
	}
	if seq != 0 {
		// Resilient receive: duplicate suppression, then ack.
		if ns.applied&(1<<seq) != 0 || ver < ns.lastPushVer[l] {
			ns.send(msg{kind: kPushAck, line: uint8(l), a: seq})
			return lbl("gpu: duplicate/stale push seq %d line %d re-acked%s", seq, l, dup), ""
		}
	}
	viol := applyPush(cfg, ns, l, ver, rc)
	if seq != 0 {
		ns.applied |= 1 << seq
		ns.lastPushVer[l] = ver
		ns.send(msg{kind: kPushAck, line: uint8(l), a: seq})
	}
	return lbl("gpu: push install line %d v%d (seq %d)%s", l, ver, seq, dup), viol
}

// applyPush is ctrl.applyPutx without the capacity/overflow path
// (capacity is abstracted away): install per the shared table's
// PushInstallState, superseding any fill in flight, and check the MM-
// install invariant — write permission must arrive with the data
// (§III-F), except under the deliberate write-through ablation.
func applyPush(cfg Config, ns *state, l int, ver uint8, rc recorder) string {
	g := homeAgent(cfg, l)
	if ns.pend[g][l] != pendNone {
		ns.super[g][l] = 1
	}
	cur := coherence.State(ns.st[g][l])
	out := coherence.Transition(cur, coherence.PushEvent(cfg.WriteThroughPush))
	if !out.OK {
		panic("modelcheck: illegal push install")
	}
	rc.rec(g, l, cur, coherence.PushEvent(cfg.WriteThroughPush), out.Next)
	st, dirty := out.Next, out.Dirty == coherence.DirtySet
	if cfg.Mutation == MutPushInstallS {
		st, dirty = coherence.S, false
	}
	ns.st[g][l] = uint8(st)
	ns.dirty[g][l] = 0
	if dirty {
		ns.dirty[g][l] = 1
	}
	ns.ver[g][l] = ver
	if cfg.WriteThroughPush {
		ns.wb[g][l] = ver
		ns.wbStale[g][l] = 0
		ns.send(msg{kind: kReq, line: uint8(l), a: uint8(coherence.WB), b: uint8(g), c: ver})
	}
	want, _ := coherence.PushInstallState(cfg.WriteThroughPush)
	if st != want {
		return fmt.Sprintf("push installed line %d in %s, want %s (MM-install invariant, paper §III-F)",
			l, coherence.StateName(st), coherence.StateName(want))
	}
	return ""
}

// pendingPushesForLine counts unacknowledged pushes targeting line l.
func pendingPushesForLine(s *state, l int) int {
	n := 0
	for seq := 1; seq <= maxSeqs; seq++ {
		if s.pushPend&(1<<seq) != 0 && int(s.pushLine[seq]) == l {
			n++
		}
	}
	return n
}

// earlierWBInFlight reports whether the multiset holds an older
// writeback request for the same line. Same-line writebacks are sent
// in version order (data flows through probes before it can be
// re-evicted) and the crossbar reserves its destination port at send
// time, so they arrive in version order too.
func earlierWBInFlight(s *state, m msg) bool {
	for i := 0; i < int(s.nmsgs); i++ {
		o := s.msgs[i]
		if o.kind == kReq && coherence.ReqType(o.a) == coherence.WB &&
			o.line == m.line && o.c < m.c {
			return true
		}
	}
	return false
}

// putxInFlight reports whether a fire-and-forget push for line l is in
// the multiset (the dedicated link is FIFO, so baseline pushes are
// modelled one-at-a-time per line).
func putxInFlight(s *state, l int) bool {
	for i := 0; i < int(s.nmsgs); i++ {
		if s.msgs[i].kind == kPutx && int(s.msgs[i].line) == l {
			return true
		}
	}
	return false
}
