package modelcheck

// StandardSweep is the default verification portfolio: the set of
// configurations `dstore-modelcheck` (and CI) explore on every run.
// Budgets are chosen so the whole sweep finishes in well under a
// minute while still covering every protocol flavour:
//
//   - Single-line configurations carry the deepest budgets. Lines are
//     independent in the protocol — the memory controller serialises,
//     queues and probes per line, and agents' per-line state never
//     reads another line — so a single-line run with the full store
//     budget over-approximates any one line of a multi-line run (the
//     only shared state, the action budgets, is monotone: a line of a
//     product run always sees a subset of the budget a dedicated run
//     grants it).
//   - Two-line products catch exactly what composition cannot: bugs
//     in the cross-line bookkeeping itself (per-line busy/queue
//     confusion, line-indexing slips). Full interleaving of two
//     independent subsystems multiplies their state spaces, so the
//     products run with bounded eviction and load budgets.
func StandardSweep() []Config {
	return []Config{
		// The deep heap-line run: every store flavour including the
		// bypass-dirty-victim path, unbounded evictions and loads.
		{Agents: 3, Lines: 1, DirectLines: 0, MaxStores: 2, Bypass: true},
		// The direct-store region: fire-and-forget pushes, GPU-side
		// caching, CPU remote loads.
		{Agents: 3, Lines: 1, DirectLines: 1, MaxStores: 2},
		// Resilient pushes with injected NACKs and duplicated
		// deliveries (the chaos layer's direct-link faults).
		{Agents: 3, Lines: 1, DirectLines: 1, MaxStores: 2,
			Resilient: true, MaxNacks: 1, MaxDups: 1},
		// The §III-F write-through push ablation (install M, not MM).
		{Agents: 3, Lines: 1, DirectLines: 1, MaxStores: 2, WriteThroughPush: true},
		// Two-line products: heap + direct line under full
		// interleaving, bounded budgets.
		{Agents: 3, Lines: 2, DirectLines: 1, MaxStores: 2, MaxEvicts: 1, MaxLoads: 2},
		{Agents: 3, Lines: 2, DirectLines: 1, MaxStores: 1, MaxEvicts: 1, MaxLoads: 2, Bypass: true},
	}
}
