package modelcheck

import "dstore/internal/coherence"

// StandardSweep is the default verification portfolio: the set of
// configurations `dstore-modelcheck` (and CI) explore on every run.
// The single-line leg is generated from the protocol registry — one
// deep run per registered flavour — so registering a new protocol
// automatically puts it under the checker. Budgets are chosen so the
// whole sweep finishes in well under a minute while still covering
// every protocol flavour:
//
//   - Single-line configurations carry the deepest budgets. Lines are
//     independent in the protocol — the memory controller serialises,
//     queues and probes per line, and agents' per-line state never
//     reads another line — so a single-line run with the full store
//     budget over-approximates any one line of a multi-line run (the
//     only shared state, the action budgets, is monotone: a line of a
//     product run always sees a subset of the budget a dedicated run
//     grants it).
//   - Two-line products catch exactly what composition cannot: bugs
//     in the cross-line bookkeeping itself (per-line busy/queue
//     confusion, line-indexing slips). Full interleaving of two
//     independent subsystems multiplies their state spaces, so the
//     products run with bounded eviction and load budgets.
//   - The 2-GPU product verifies the address-interleaved multi-slice
//     topology (two direct lines homed at two different GPU L2
//     slices) under symmetry reduction — the configuration the
//     parallel fingerprint checker exists for.
func StandardSweep() []Config {
	var cfgs []Config
	// One deep single-line run per registered protocol flavour. The
	// heap flavour additionally exercises the bypass-dirty-victim
	// store path; the resilient flavour gets NACK and duplicate
	// injection budgets (the chaos layer's direct-link faults).
	for _, p := range coherence.Protocols() {
		cfg := Config{Agents: 3, Lines: 1, MaxStores: 2}
		if p.Direct {
			cfg.DirectLines = 1
		} else {
			cfg.Bypass = true
		}
		if p.Resilient {
			cfg.MaxNacks, cfg.MaxDups = 1, 1
		}
		cfg.Resilient = p.Resilient
		cfg.WriteThroughPush = p.WriteThroughPush
		cfgs = append(cfgs, cfg)
	}
	return append(cfgs,
		// Two-line products: heap + direct line under full
		// interleaving, bounded budgets.
		Config{Agents: 3, Lines: 2, DirectLines: 1, MaxStores: 2, MaxEvicts: 1, MaxLoads: 2},
		Config{Agents: 3, Lines: 2, DirectLines: 1, MaxStores: 1, MaxEvicts: 1, MaxLoads: 2, Bypass: true},
		// The 2-GPU-slice product: both lines direct, each homed at its
		// own slice. Symmetry folds the (slice, line) pair swap.
		Config{Agents: 4, GPUs: 2, Lines: 2, DirectLines: 2, MaxStores: 2,
			MaxEvicts: 1, MaxLoads: 2, Symmetry: true},
	)
}
