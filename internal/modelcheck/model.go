// Package modelcheck exhaustively verifies the coherence protocol by
// explicit-state enumeration, Murphi-style: a small abstract model of
// the protocol — agents with stable line states, the memory
// controller's per-line transaction serialisation, and an unordered
// in-flight message multiset — is explored breadth-first over every
// reachable state, checking SWMR, data-value and MM-install invariants
// in each one and printing a minimal counterexample trace on
// violation.
//
// The model's transition behaviour is not re-implemented: probe
// reactions, fill grants and push installs all go through the explicit
// table in internal/coherence (coherence.Transition and friends), the
// same relation the runtime controllers execute. What the model
// abstracts away is timing: message delivery order is fully
// nondeterministic (a sound over-approximation of the crossbar, whose
// mixed control/data latencies — and the chaos layer's injected jitter
// — already reorder messages), caches have no capacity (evictions are
// spontaneous actions instead), and data values are versions from a
// global ghost counter, exactly like the stress harness's oracle.
//
// Scope and limits (see DESIGN.md "Static verification"): the direct
// push path models the paper's usage — the CPU pushes and remote-loads
// the direct region, the GPU slice reads and evicts it; concurrent
// coherent stores to a line being pushed are outside the protocol
// (ctrl.go documents the same precondition) and are not modelled.
package modelcheck

import (
	"fmt"

	"dstore/internal/coherence"
)

// Model bounds. The state struct is fixed-size and comparable so it
// can key the visited map directly.
const (
	maxAgents = 4
	maxLines  = 2
	maxQueue  = 6
	maxMsgs   = 24
	maxSeqs   = 7 // resilient push sequence numbers 1..maxSeqs
)

// Mutation re-introduces a known protocol bug so tests can prove the
// checker finds it.
type Mutation uint8

// Mutations.
const (
	// MutNone checks the protocol as implemented.
	MutNone Mutation = iota
	// MutSkipInvalidate lets a probed cache acknowledge an
	// invalidating probe while keeping its copy (the chaos harness's
	// SkipInvalidate fault): the requester installs exclusive while a
	// stale copy survives.
	MutSkipInvalidate
	// MutBypassNoWBBuf re-introduces the PR 3 lost-store race: a
	// bypassed store's write-through skips the writeback buffer, so a
	// GETS that beats the in-flight WB to the ordering point reads
	// stale DRAM.
	MutBypassNoWBBuf
	// MutPushInstallS installs a direct-store push in S instead of MM,
	// violating the paper's Fig. 3 install state.
	MutPushInstallS
)

// String names the mutation.
func (m Mutation) String() string {
	switch m {
	case MutNone:
		return "none"
	case MutSkipInvalidate:
		return "skip-invalidate"
	case MutBypassNoWBBuf:
		return "bypass-no-wbbuf"
	case MutPushInstallS:
		return "push-install-s"
	default:
		return fmt.Sprintf("Mutation(%d)", uint8(m))
	}
}

// ParseMutation resolves a mutation name.
func ParseMutation(s string) (Mutation, error) {
	for _, m := range []Mutation{MutNone, MutSkipInvalidate, MutBypassNoWBBuf, MutPushInstallS} {
		if m.String() == s {
			return m, nil
		}
	}
	return MutNone, fmt.Errorf("modelcheck: unknown mutation %q", s)
}

// Config selects the model instance to explore.
type Config struct {
	// Agents is the number of coherent cache agents (2..4). Agent 0 is
	// the CPU controller (the only push sender); the last GPUs agents
	// are GPU L2 slices homing the direct-store region.
	Agents int
	// GPUs is the number of GPU L2 slice agents (1..2; 0 means 1).
	// Direct line l is homed at slice l % GPUs, mirroring the
	// simulator's address-interleaved slice routing.
	GPUs int
	// Lines is the number of cache lines (1..2).
	Lines int
	// DirectLines makes the first DirectLines lines direct-store
	// region lines: written by agent 0's pushes, readable by the GPU
	// slice (GETS) and the CPU (uncacheable RemoteLoad).
	DirectLines int
	// MaxStores bounds the total number of writes (stores + pushes)
	// across the run; it is what makes the version-tracking state
	// space finite.
	MaxStores int
	// MaxEvicts bounds spontaneous evictions across the run; 0 means
	// unbounded. Single-line configs stay tractable unbounded, but
	// multi-line configs need the bound: evict/reload churn on
	// independent lines cross-multiplies under full interleaving.
	MaxEvicts int
	// MaxLoads bounds demand load misses and remote loads across the
	// run; 0 means unbounded. Like MaxEvicts it only exists to keep
	// multi-line products tractable — per-line interleavings of
	// independent lines multiply, so every unbounded action cycle on
	// one line scales the whole product by the other line's space.
	MaxLoads int
	// Bypass enables the bypass-dirty-victim store flavour: a store
	// miss may complete as a no-allocate write-through (the GPU L2
	// slice's streaming-store path).
	Bypass bool
	// WriteThroughPush selects the §III-F ablation: pushes install
	// exclusive-clean (M) and write through to memory.
	WriteThroughPush bool
	// Resilient enables the seq-numbered ack/NACK push protocol; NACKs
	// and duplicated deliveries are injected nondeterministically up
	// to the budgets below.
	Resilient bool
	// MaxNacks bounds injected push NACKs.
	MaxNacks int
	// MaxDups bounds duplicated push deliveries.
	MaxDups int
	// OrderedNet refines message delivery to match the crossbar's port
	// arbitration: messages to the same destination are delivered in
	// send order (the crossbar reserves its ejection port at send time
	// with a constant hop latency, so same-destination reorder is
	// impossible in the simulator — the chaos layer only jitters the
	// direct link, whose kPutx/kPushAck traffic stays reorderable
	// here). Cross-destination order remains fully nondeterministic.
	// The unordered default explores strictly more interleavings; the
	// refinement is what makes multi-line products tractable.
	OrderedNet bool
	// Symmetry enables canonical-ordering symmetry reduction: states
	// that differ only by a permutation of interchangeable middle
	// agents (the non-CPU, non-GPU cache agents), of identical heap
	// lines, or of identical (GPU slice, homed line) pairs are explored
	// once. Sound because the model treats those entities uniformly;
	// see canon.go.
	Symmetry bool
	// Mutation optionally re-introduces a known bug.
	Mutation Mutation
}

func (c Config) String() string {
	ev := "unbounded"
	if c.MaxEvicts > 0 {
		ev = fmt.Sprintf("%d", c.MaxEvicts)
	}
	ld := "unbounded"
	if c.MaxLoads > 0 {
		ld = fmt.Sprintf("%d", c.MaxLoads)
	}
	net := "unordered"
	if c.OrderedNet {
		net = "ordered"
	}
	s := fmt.Sprintf("agents=%d lines=%d direct=%d stores=%d evicts=%s loads=%s bypass=%v wtpush=%v resilient=%v nacks=%d dups=%d net=%s mutation=%s",
		c.Agents, c.Lines, c.DirectLines, c.MaxStores, ev, ld, c.Bypass, c.WriteThroughPush,
		c.Resilient, c.MaxNacks, c.MaxDups, net, c.Mutation)
	if c.gpus() > 1 {
		s += fmt.Sprintf(" gpus=%d", c.gpus())
	}
	if c.Symmetry {
		s += " symmetry=on"
	}
	return s
}

// gpus returns the normalised GPU slice count (the zero value means 1).
func (c Config) gpus() int {
	if c.GPUs == 0 {
		return 1
	}
	return c.GPUs
}

func (c Config) validate() error {
	switch {
	case c.Agents < 2 || c.Agents > maxAgents:
		return fmt.Errorf("modelcheck: agents must be 2..%d", maxAgents)
	case c.Lines < 1 || c.Lines > maxLines:
		return fmt.Errorf("modelcheck: lines must be 1..%d", maxLines)
	case c.DirectLines < 0 || c.DirectLines > c.Lines:
		return fmt.Errorf("modelcheck: direct lines must be 0..lines")
	case c.MaxStores < 0 || c.MaxStores > maxSeqs:
		return fmt.Errorf("modelcheck: stores must be 0..%d", maxSeqs)
	case c.MaxEvicts < 0 || c.MaxEvicts > 15:
		return fmt.Errorf("modelcheck: evicts must be 0..15 (0 = unbounded)")
	case c.MaxLoads < 0 || c.MaxLoads > 15:
		return fmt.Errorf("modelcheck: loads must be 0..15 (0 = unbounded)")
	case c.GPUs < 0 || c.GPUs > 2:
		return fmt.Errorf("modelcheck: gpus must be 1..2")
	case c.gpus() > c.Agents-1:
		return fmt.Errorf("modelcheck: gpus must leave at least the CPU agent")
	}
	return nil
}

// Message kinds.
const (
	kNone    uint8 = iota
	kReq           // a=ReqType, b=from, c=ver (WB)
	kProbe         // a=ProbeKind, b=target, c=requester
	kAck           // a=from, b=flags, c=ver
	kData          // a=to, b=grant, c=ver, d=flags (owned)
	kUnblock       // a=from
	kWBDone        // a=to, b=ver
	kPutx          // a=ver, b=seq (0 = fire-and-forget)
	kPushAck       // a=seq, b=flags (nack)
)

// msg flag bits (field b for kAck/kPushAck, d for kData).
const (
	fHadData uint8 = 1 << iota
	fPresent
	fDirty
	fOwned
	fNack
)

// msg is one in-flight message. All payloads are single bytes so the
// struct is comparable and sorts bytewise for canonicalisation. Under
// Config.OrderedNet, ord is the message's position in its
// destination's FIFO (0 = head, the only deliverable position); in
// unordered mode ord is always 0.
type msg struct {
	kind, line, a, b, c, d, ord uint8
}

// Destination codes for FIFO ordering under OrderedNet. Agents are
// their own codes 0..maxAgents-1.
const (
	dstMem  = 200 // the memory controller (the ordering point)
	dstNone = 255 // direct-link traffic: jittered by chaos, reorderable
)

// dstOf returns the destination code of a message.
func dstOf(m msg) uint8 {
	switch m.kind {
	case kReq, kAck, kUnblock:
		return dstMem
	case kProbe:
		return m.b
	case kData, kWBDone:
		return m.a
	default: // kPutx, kPushAck ride the chaos-jittered direct link
		return dstNone
	}
}

// pend kinds: at most one outstanding miss per (agent, line), exactly
// like a 1-entry MSHR per line.
const (
	pendNone uint8 = iota
	pendLoad
	pendStore
	pendBypass
	pendRemote
)

// txnState is the memory controller's in-flight transaction for one
// line (memctrl.go's txn struct with ticks abstracted away).
type txnState struct {
	typ        uint8 // coherence.ReqType
	from       uint8
	ver        uint8 // WB payload
	acksWanted uint8
	acksRecv   uint8
	flags      uint8
}

// txn flag bits.
const (
	tOwnerSupplied uint8 = 1 << iota
	tSharerSeen
	tProbesClean
	tDramPending
	tDramDone
	tDataSent
	tUnblocked
)

// reqEntry is one queued request at the ordering point.
type reqEntry struct {
	typ, from, ver uint8
}

// state is one explored protocol state. It is comparable (fixed-size
// arrays only) and fully canonical: invalid copies zero their ver and
// dirty fields, and the message multiset is kept sorted.
type state struct {
	st    [maxAgents][maxLines]uint8
	dirty [maxAgents][maxLines]uint8
	ver   [maxAgents][maxLines]uint8
	wb    [maxAgents][maxLines]uint8
	// wbStale mirrors ctrl.wbStale: the buffered writeback answered an
	// invalidating probe, so it no longer serves local loads or later
	// probes.
	wbStale [maxAgents][maxLines]uint8
	pend    [maxAgents][maxLines]uint8
	super   [maxAgents][maxLines]uint8

	mem    [maxLines]uint8
	latest [maxLines]uint8
	busy   [maxLines]uint8
	txn    [maxLines]txnState
	queue  [maxLines][maxQueue]reqEntry
	nq     [maxLines]uint8

	storesLeft uint8
	evictsLeft uint8 // 0 means unbounded when cfg.MaxEvicts == 0
	loadsLeft  uint8 // 0 means unbounded when cfg.MaxLoads == 0
	nackLeft   uint8
	dupLeft    uint8
	ordered    uint8 // constant per run (cfg.OrderedNet); lets send() see the mode

	// Resilient push machinery. pushPend is a bitmask of outstanding
	// (unacknowledged) sequence numbers at the sender; applied is the
	// receiver's duplicate-suppression set.
	pushSeq     uint8
	pushPend    uint8
	pushVer     [maxSeqs + 1]uint8
	pushLine    [maxSeqs + 1]uint8
	applied     uint8
	lastPushVer [maxLines]uint8

	msgs  [maxMsgs]msg
	nmsgs uint8
}

// initial returns the start state: every cache invalid, memory at
// version 0, all budgets full.
func initial(cfg Config) state {
	var s state
	s.storesLeft = uint8(cfg.MaxStores)
	s.evictsLeft = uint8(cfg.MaxEvicts)
	s.loadsLeft = uint8(cfg.MaxLoads)
	s.nackLeft = uint8(cfg.MaxNacks)
	s.dupLeft = uint8(cfg.MaxDups)
	if cfg.OrderedNet {
		s.ordered = 1
	}
	return s
}

// send adds a message to the multiset, keeping it sorted. Under
// OrderedNet crossbar messages take a FIFO position behind everything
// already in flight to the same destination.
func (s *state) send(m msg) {
	if int(s.nmsgs) >= maxMsgs {
		panic("modelcheck: message multiset overflow (raise maxMsgs)")
	}
	if s.ordered != 0 {
		if d := dstOf(m); d != dstNone {
			for i := 0; i < int(s.nmsgs); i++ {
				if dstOf(s.msgs[i]) == d {
					m.ord++
				}
			}
		}
	}
	i := int(s.nmsgs)
	s.msgs[i] = m
	s.nmsgs++
	for i > 0 && msgLess(s.msgs[i], s.msgs[i-1]) {
		s.msgs[i], s.msgs[i-1] = s.msgs[i-1], s.msgs[i]
		i--
	}
}

// take removes message i, preserving sort order. Removing an ordered
// message advances the rest of its destination's FIFO (in unordered
// mode every ord is 0, so the whole pass is skipped — it is a per-
// delivery scan of the multiset on the checker's hottest path).
func (s *state) take(i int) msg {
	m := s.msgs[i]
	copy(s.msgs[i:], s.msgs[i+1:int(s.nmsgs)])
	s.nmsgs--
	s.msgs[s.nmsgs] = msg{}
	if d := dstOf(m); s.ordered != 0 && d != dstNone {
		moved := false
		for j := 0; j < int(s.nmsgs); j++ {
			if s.msgs[j].ord > 0 && dstOf(s.msgs[j]) == d {
				s.msgs[j].ord--
				moved = true
			}
		}
		if moved { // ord participates in the sort key; restore order
			for j := 1; j < int(s.nmsgs); j++ {
				for k := j; k > 0 && msgLess(s.msgs[k], s.msgs[k-1]); k-- {
					s.msgs[k], s.msgs[k-1] = s.msgs[k-1], s.msgs[k]
				}
			}
		}
	}
	return m
}

func msgLess(a, b msg) bool {
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.line != b.line {
		return a.line < b.line
	}
	if a.a != b.a {
		return a.a < b.a
	}
	if a.b != b.b {
		return a.b < b.b
	}
	if a.c != b.c {
		return a.c < b.c
	}
	if a.d != b.d {
		return a.d < b.d
	}
	return a.ord < b.ord
}

// invalidate drops agent a's copy of line l, zeroing the canonical
// fields.
func (s *state) invalidate(a, l int) {
	s.st[a][l] = coherence.I
	s.dirty[a][l] = 0
	s.ver[a][l] = 0
}

// isDirect reports whether line l is in the direct-store region.
func isDirect(cfg Config, l int) bool { return l < cfg.DirectLines }

// homeAgent returns the index of the GPU L2 slice agent homing direct
// line l (address-interleaved across the last gpus() agents).
func homeAgent(cfg Config, l int) int {
	return cfg.Agents - cfg.gpus() + l%cfg.gpus()
}

// isGPU reports whether agent a is a GPU L2 slice.
func isGPU(cfg Config, a int) bool { return a >= cfg.Agents-cfg.gpus() }
