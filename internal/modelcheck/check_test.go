package modelcheck

import (
	"strings"
	"testing"
)

// TestStandardSweepClean exhaustively explores every standard-sweep
// configuration and requires zero invariant violations. Short mode
// skips the two largest members (the deep heap line and the two-line
// product) to stay fast; `make modelcheck` and CI run them all.
func TestStandardSweepClean(t *testing.T) {
	for _, cfg := range StandardSweep() {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			if testing.Short() && (cfg.Lines > 1 && cfg.MaxStores > 1 || cfg.Lines == 1 && cfg.Bypass) {
				t.Skip("large configuration skipped in -short mode")
			}
			res, err := Check(cfg)
			if err != nil {
				t.Fatalf("Check(%s): %v", cfg, err)
			}
			if res.Violation != nil {
				t.Fatalf("invariant violation:\n%s", res.Violation.Error())
			}
			if res.States < 2 {
				t.Fatalf("suspiciously small state space: %d states", res.States)
			}
			t.Logf("%d states, %d transitions, depth %d", res.States, res.Transitions, res.MaxDepth)
		})
	}
}

// TestBypassNoWBBufRegression is the guarded PR 3 regression: with the
// bypassed store's write-through no longer parked in the writeback
// buffer, a GETS that beats the in-flight WB to the ordering point
// reads stale DRAM — the lost-store race the heavy-profile soak
// caught dynamically. The checker must find it, and the counterexample
// must be a real trace ending in a data-value violation.
func TestBypassNoWBBufRegression(t *testing.T) {
	cfg := Config{
		Agents: 3, Lines: 1, MaxStores: 1, MaxEvicts: 1, MaxLoads: 2,
		Bypass: true, Mutation: MutBypassNoWBBuf,
	}
	v := mustViolate(t, cfg)
	if !strings.Contains(v.Message, "data-value violation") {
		t.Errorf("want a data-value violation, got: %s", v.Message)
	}
	wantStep(t, v, "bypass store miss")
}

// TestSkipInvalidateCaught: acknowledging an invalidating probe while
// keeping the copy must surface as a SWMR violation.
func TestSkipInvalidateCaught(t *testing.T) {
	cfg := Config{
		Agents: 3, Lines: 1, MaxStores: 1, MaxEvicts: 1, MaxLoads: 2,
		Mutation: MutSkipInvalidate,
	}
	v := mustViolate(t, cfg)
	if !strings.Contains(v.Message, "SWMR violation") {
		t.Errorf("want a SWMR violation, got: %s", v.Message)
	}
}

// TestPushInstallSCaught: installing a push in S instead of MM must
// trip the MM-install invariant (paper §III-F).
func TestPushInstallSCaught(t *testing.T) {
	cfg := Config{
		Agents: 3, Lines: 1, DirectLines: 1, MaxStores: 1, MaxEvicts: 1, MaxLoads: 1,
		Mutation: MutPushInstallS,
	}
	v := mustViolate(t, cfg)
	if !strings.Contains(v.Message, "MM-install") {
		t.Errorf("want the MM-install invariant, got: %s", v.Message)
	}
}

// mustViolate checks cfg and requires a violation with a coherent
// counterexample: non-empty, every step labelled, and a rendered
// final state.
func mustViolate(t *testing.T, cfg Config) *Violation {
	t.Helper()
	res, err := Check(cfg)
	if err != nil {
		t.Fatalf("Check(%s): %v", cfg, err)
	}
	if res.Violation == nil {
		t.Fatalf("expected a violation for %s, state space was clean (%d states)", cfg, res.States)
	}
	v := res.Violation
	if len(v.Trace) == 0 {
		t.Fatalf("violation %q has an empty counterexample", v.Message)
	}
	for i, step := range v.Trace {
		if step == "?" || step == "" {
			t.Errorf("trace step %d is unlabelled", i+1)
		}
	}
	if v.Final == "" {
		t.Errorf("violation has no final-state rendering")
	}
	return v
}

// wantStep requires some trace step to mention substr.
func wantStep(t *testing.T, v *Violation, substr string) {
	t.Helper()
	for _, step := range v.Trace {
		if strings.Contains(step, substr) {
			return
		}
	}
	t.Errorf("no trace step mentions %q:\n%s", substr, strings.Join(v.Trace, "\n"))
}

// TestOrderedNetClean runs a small configuration under the
// crossbar-faithful per-destination FIFO refinement; it must agree
// with the unordered run on safety.
func TestOrderedNetClean(t *testing.T) {
	cfg := Config{Agents: 3, Lines: 1, MaxStores: 1, MaxEvicts: 1, MaxLoads: 2, OrderedNet: true}
	res, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("ordered-net violation:\n%s", res.Violation.Error())
	}
}

// TestConfigValidate rejects out-of-range configurations.
func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Agents: 1, Lines: 1, MaxStores: 1},
		{Agents: 5, Lines: 1, MaxStores: 1},
		{Agents: 3, Lines: 1, MaxStores: 1, GPUs: 3},
		{Agents: 2, Lines: 1, MaxStores: 1, GPUs: 2},
		{Agents: 2, Lines: 0, MaxStores: 1},
		{Agents: 2, Lines: 3, MaxStores: 1},
		{Agents: 2, Lines: 1, DirectLines: 2, MaxStores: 1},
		{Agents: 2, Lines: 1, MaxStores: maxSeqs + 1},
		{Agents: 2, Lines: 1, MaxStores: 1, MaxEvicts: 16},
		{Agents: 2, Lines: 1, MaxStores: 1, MaxLoads: 16},
	}
	for _, cfg := range bad {
		if _, err := Check(cfg); err == nil {
			t.Errorf("Check(%s): want a validation error", cfg)
		}
	}
}

// TestParseMutation round-trips every mutation name and rejects junk.
func TestParseMutation(t *testing.T) {
	for _, m := range []Mutation{MutNone, MutSkipInvalidate, MutBypassNoWBBuf, MutPushInstallS} {
		got, err := ParseMutation(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMutation(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
	if _, err := ParseMutation("made-up"); err == nil {
		t.Error("ParseMutation accepted an unknown name")
	}
}
