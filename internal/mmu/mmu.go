// Package mmu models virtual memory: a demand-allocated page table, a
// hardware page walker cost, and a TLB extended with the paper's
// direct-store detector (§III-E). The detector is a single comparison of
// high-order virtual-address bits against the reserved range; when it
// fires on a store, the TLB "sends a signal to the MMU indicating to the
// CPU's L1 cache controller to forward the store onto the GPU L2
// cache".
package mmu

import (
	"fmt"

	"dstore/internal/memsys"
	"dstore/internal/sim"
	"dstore/internal/stats"
)

// Page geometry.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
)

// PageTable maps virtual pages to physical frames, allocating frames on
// first touch (syscall-emulation style, like the paper's gem5-gpu
// runs). Physical memory is bounded: exhausting it is an error.
type PageTable struct {
	frames    map[uint64]uint64
	nextFrame uint64
	maxFrames uint64
}

// NewPageTable builds a page table backed by memBytes of physical
// memory (Table I: 2GB).
func NewPageTable(memBytes uint64) *PageTable {
	if memBytes < PageSize {
		panic("mmu: physical memory smaller than one page")
	}
	return &PageTable{
		frames:    make(map[uint64]uint64),
		maxFrames: memBytes / PageSize,
	}
}

// Lookup translates va if its page is already mapped.
func (pt *PageTable) Lookup(va memsys.Addr) (memsys.Addr, bool) {
	vpn := uint64(va) >> PageShift
	pfn, ok := pt.frames[vpn]
	if !ok {
		return 0, false
	}
	return memsys.Addr(pfn<<PageShift | uint64(va)&(PageSize-1)), true
}

// EnsureMapped translates va, allocating a frame on first touch.
func (pt *PageTable) EnsureMapped(va memsys.Addr) (memsys.Addr, error) {
	if pa, ok := pt.Lookup(va); ok {
		return pa, nil
	}
	if pt.nextFrame >= pt.maxFrames {
		return 0, fmt.Errorf("mmu: out of physical memory (%d frames)", pt.maxFrames)
	}
	vpn := uint64(va) >> PageShift
	pfn := pt.nextFrame
	pt.nextFrame++
	pt.frames[vpn] = pfn
	return memsys.Addr(pfn<<PageShift | uint64(va)&(PageSize-1)), nil
}

// MappedPages returns the number of resident pages.
func (pt *PageTable) MappedPages() int { return len(pt.frames) }

// Config describes a TLB.
type Config struct {
	Name string
	// Entries is the number of fully associative entries.
	Entries int
	// HitLatency is charged on a TLB hit.
	HitLatency sim.Tick
	// WalkLatency is charged on a miss for the page walk.
	WalkLatency sim.Tick
	// DirectBase/DirectLimit bound the reserved direct-store VA range
	// the detector compares against.
	DirectBase  memsys.Addr
	DirectLimit memsys.Addr
}

type tlbEntry struct {
	vpn  uint64
	pfn  uint64
	used uint64
}

// TLB is a fully associative translation cache with true-LRU
// replacement, plus the direct-store range detector.
type TLB struct {
	cfg     Config
	pt      *PageTable
	entries []tlbEntry
	// index maps vpn → slot in entries, mirroring the linear contents:
	// a 256-entry fully associative file is too big to scan per
	// translation. Replacement decisions still use the used stamps, so
	// hit/miss/eviction behaviour is unchanged.
	index map[uint64]int32
	clock uint64

	counters *stats.Set
	hits     *stats.Counter
	misses   *stats.Counter
	directs  *stats.Counter
}

// NewTLB builds a TLB over the given page table.
func NewTLB(pt *PageTable, cfg Config) *TLB {
	if cfg.Entries <= 0 {
		panic(fmt.Sprintf("mmu %s: non-positive TLB entries", cfg.Name))
	}
	if cfg.DirectLimit < cfg.DirectBase {
		panic(fmt.Sprintf("mmu %s: inverted direct-store range", cfg.Name))
	}
	t := &TLB{cfg: cfg, pt: pt, index: make(map[uint64]int32, cfg.Entries), counters: stats.NewSet()}
	t.hits = t.counters.Counter("hits")
	t.misses = t.counters.Counter("misses")
	t.directs = t.counters.Counter("direct_detected")
	return t
}

// Counters exposes hit/miss/direct-detection counters.
func (t *TLB) Counters() *stats.Set { return t.counters }

// IsDirect is the detector: a pure high-order-address comparison, the
// "small overhead [that] can be done by wiring to a logic gate" of
// §IV-E. It does not touch translation state.
func (t *TLB) IsDirect(va memsys.Addr) bool {
	return va >= t.cfg.DirectBase && va < t.cfg.DirectLimit
}

func (t *TLB) find(vpn uint64) int {
	if i, ok := t.index[vpn]; ok {
		return int(i)
	}
	return -1
}

// Translate maps va to a physical address, charging hit or walk latency,
// and reports whether the detector fired. Pages are demand-allocated; an
// error means physical memory is exhausted.
func (t *TLB) Translate(va memsys.Addr) (pa memsys.Addr, lat sim.Tick, direct bool, err error) {
	direct = t.IsDirect(va)
	if direct {
		t.directs.Inc()
	}
	vpn := uint64(va) >> PageShift
	t.clock++
	if i := t.find(vpn); i >= 0 {
		t.hits.Inc()
		t.entries[i].used = t.clock
		pfn := t.entries[i].pfn
		return memsys.Addr(pfn<<PageShift | uint64(va)&(PageSize-1)), t.cfg.HitLatency, direct, nil
	}
	t.misses.Inc()
	pa, err = t.pt.EnsureMapped(va)
	if err != nil {
		return 0, 0, direct, err
	}
	e := tlbEntry{vpn: vpn, pfn: uint64(pa) >> PageShift, used: t.clock}
	if len(t.entries) < t.cfg.Entries {
		t.entries = append(t.entries, e)
		t.index[vpn] = int32(len(t.entries) - 1)
	} else {
		victim := 0
		for i := range t.entries {
			if t.entries[i].used < t.entries[victim].used {
				victim = i
			}
		}
		delete(t.index, t.entries[victim].vpn)
		t.entries[victim] = e
		t.index[vpn] = int32(victim)
	}
	return pa, t.cfg.HitLatency + t.cfg.WalkLatency, direct, nil
}

// HitRate returns the TLB hit fraction so far.
func (t *TLB) HitRate() float64 {
	return stats.Ratio(t.hits.Value(), t.hits.Value()+t.misses.Value())
}
