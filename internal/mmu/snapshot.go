package mmu

import (
	"sort"

	"dstore/internal/snap"
)

// SnapshotTo serialises the page table: frame mappings (sorted by
// virtual page number for a deterministic stream) and the allocation
// cursor.
func (pt *PageTable) SnapshotTo(w *snap.Writer) {
	w.Tag("pagetable")
	w.U64(pt.maxFrames)
	w.U64(pt.nextFrame)
	vpns := make([]uint64, 0, len(pt.frames))
	for vpn := range pt.frames { //dstore:allow-maprange keys sorted below
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	w.U32(uint32(len(vpns)))
	for _, vpn := range vpns {
		w.U64(vpn)
		w.U64(pt.frames[vpn])
	}
}

// RestoreFrom overwrites the page table from a snapshot. The physical
// memory bound must match the configured table.
func (pt *PageTable) RestoreFrom(r *snap.Reader) {
	r.Tag("pagetable")
	maxFrames := r.U64()
	nextFrame := r.U64()
	n := r.U32()
	if r.Err() != nil {
		return
	}
	if maxFrames != pt.maxFrames {
		r.Failf("mmu: snapshot physical memory %d frames, configured %d", maxFrames, pt.maxFrames)
		return
	}
	pt.nextFrame = nextFrame
	pt.frames = make(map[uint64]uint64, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		vpn := r.U64()
		pfn := r.U64()
		pt.frames[vpn] = pfn
	}
}

// SnapshotTo serialises the TLB contents, LRU clock and counters. The
// vpn index is rebuilt on restore.
func (t *TLB) SnapshotTo(w *snap.Writer) {
	w.Tag("tlb")
	w.String(t.cfg.Name)
	w.U64(t.clock)
	w.U32(uint32(len(t.entries)))
	for _, e := range t.entries {
		w.U64(e.vpn)
		w.U64(e.pfn)
		w.U64(e.used)
	}
	t.counters.SnapshotTo(w)
}

// RestoreFrom overwrites the TLB from a snapshot. The snapshot must
// fit the configured entry count.
func (t *TLB) RestoreFrom(r *snap.Reader) {
	r.Tag("tlb")
	name := r.String()
	clock := r.U64()
	n := r.U32()
	if r.Err() != nil {
		return
	}
	if name != t.cfg.Name {
		r.Failf("mmu %s: snapshot of TLB %q", t.cfg.Name, name)
		return
	}
	if int(n) > t.cfg.Entries {
		r.Failf("mmu %s: snapshot holds %d entries, TLB has %d", t.cfg.Name, n, t.cfg.Entries)
		return
	}
	t.clock = clock
	t.entries = t.entries[:0]
	for k := range t.index { //dstore:allow-maprange delete-all, order cannot escape
		delete(t.index, k)
	}
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		e := tlbEntry{vpn: r.U64(), pfn: r.U64(), used: r.U64()}
		t.entries = append(t.entries, e)
		t.index[e.vpn] = int32(len(t.entries) - 1)
	}
	t.counters.RestoreFrom(r)
}
