package mmu

import (
	"testing"
	"testing/quick"

	"dstore/internal/memalloc"
	"dstore/internal/memsys"
)

func newTLB(entries int) (*PageTable, *TLB) {
	pt := NewPageTable(1 << 30)
	tlb := NewTLB(pt, Config{
		Name:        "t",
		Entries:     entries,
		HitLatency:  1,
		WalkLatency: 50,
		DirectBase:  memalloc.DirectStoreBase,
		DirectLimit: memalloc.DirectStoreLimit,
	})
	return pt, tlb
}

func TestPageTableDemandAllocation(t *testing.T) {
	pt := NewPageTable(1 << 20)
	if _, ok := pt.Lookup(0x1234); ok {
		t.Error("lookup hit before any mapping")
	}
	pa, err := pt.EnsureMapped(0x1234)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(pa)&(PageSize-1) != 0x234 {
		t.Errorf("page offset not preserved: pa=%#x", uint64(pa))
	}
	pa2, ok := pt.Lookup(0x1234)
	if !ok || pa2 != pa {
		t.Error("lookup after mapping disagrees")
	}
	if pt.MappedPages() != 1 {
		t.Errorf("MappedPages=%d, want 1", pt.MappedPages())
	}
}

func TestPageTableSamePageSameFrame(t *testing.T) {
	pt := NewPageTable(1 << 20)
	a, _ := pt.EnsureMapped(0x1000)
	b, _ := pt.EnsureMapped(0x1fff)
	if uint64(a)>>PageShift != uint64(b)>>PageShift {
		t.Error("same virtual page mapped to different frames")
	}
}

func TestPageTableDistinctPagesDistinctFrames(t *testing.T) {
	pt := NewPageTable(1 << 20)
	a, _ := pt.EnsureMapped(0x1000)
	b, _ := pt.EnsureMapped(0x2000)
	if uint64(a)>>PageShift == uint64(b)>>PageShift {
		t.Error("distinct pages share a frame")
	}
}

func TestPageTableExhaustion(t *testing.T) {
	pt := NewPageTable(2 * PageSize)
	if _, err := pt.EnsureMapped(0); err != nil {
		t.Fatal(err)
	}
	if _, err := pt.EnsureMapped(PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := pt.EnsureMapped(2 * PageSize); err == nil {
		t.Error("mapping beyond physical memory succeeded")
	}
	// Re-touching a mapped page still works after exhaustion.
	if _, err := pt.EnsureMapped(100); err != nil {
		t.Errorf("remap of resident page failed: %v", err)
	}
}

func TestTLBHitAfterMiss(t *testing.T) {
	_, tlb := newTLB(4)
	_, lat1, _, err := tlb.Translate(0x5000)
	if err != nil {
		t.Fatal(err)
	}
	if lat1 != 51 {
		t.Errorf("miss latency %d, want hit+walk=51", lat1)
	}
	_, lat2, _, _ := tlb.Translate(0x5010)
	if lat2 != 1 {
		t.Errorf("hit latency %d, want 1", lat2)
	}
	if tlb.Counters().Get("hits") != 1 || tlb.Counters().Get("misses") != 1 {
		t.Error("hit/miss counters wrong")
	}
}

func TestTLBLRUEviction(t *testing.T) {
	_, tlb := newTLB(2)
	tlb.Translate(0x1000) // miss
	tlb.Translate(0x2000) // miss
	tlb.Translate(0x1000) // hit; 0x2000 becomes LRU
	tlb.Translate(0x3000) // miss, evicts 0x2000
	_, lat, _, _ := tlb.Translate(0x1000)
	if lat != 1 {
		t.Error("protected entry was evicted")
	}
	_, lat, _, _ = tlb.Translate(0x2000)
	if lat == 1 {
		t.Error("LRU entry survived eviction")
	}
}

func TestTLBTranslationMatchesPageTable(t *testing.T) {
	pt, tlb := newTLB(8)
	va := memsys.Addr(0x12345)
	pa1, _, _, _ := tlb.Translate(va)
	pa2, ok := pt.Lookup(va)
	if !ok || pa1 != pa2 {
		t.Errorf("TLB pa %#x != page table pa %#x", uint64(pa1), uint64(pa2))
	}
}

func TestDirectDetector(t *testing.T) {
	_, tlb := newTLB(4)
	if tlb.IsDirect(0x1000) {
		t.Error("low address detected as direct")
	}
	if !tlb.IsDirect(memalloc.DirectStoreBase) {
		t.Error("arena base not detected")
	}
	if !tlb.IsDirect(memalloc.DirectStoreBase + 12345) {
		t.Error("arena interior not detected")
	}
	if tlb.IsDirect(memalloc.DirectStoreLimit) {
		t.Error("arena limit detected as direct")
	}
}

func TestTranslateReportsDirectAndCounts(t *testing.T) {
	_, tlb := newTLB(4)
	_, _, direct, err := tlb.Translate(memalloc.DirectStoreBase + 64)
	if err != nil {
		t.Fatal(err)
	}
	if !direct {
		t.Error("translate did not flag direct address")
	}
	_, _, direct, _ = tlb.Translate(0x4000)
	if direct {
		t.Error("translate flagged ordinary address")
	}
	if tlb.Counters().Get("direct_detected") != 1 {
		t.Error("direct detection counter wrong")
	}
}

func TestTLBHitRate(t *testing.T) {
	_, tlb := newTLB(4)
	tlb.Translate(0x1000)
	tlb.Translate(0x1000)
	tlb.Translate(0x1000)
	tlb.Translate(0x1000)
	if hr := tlb.HitRate(); hr != 0.75 {
		t.Errorf("hit rate %v, want 0.75", hr)
	}
}

func TestTLBPropagatesExhaustion(t *testing.T) {
	pt := NewPageTable(PageSize)
	tlb := NewTLB(pt, Config{Name: "x", Entries: 2, DirectBase: 1 << 40, DirectLimit: 1 << 41})
	if _, _, _, err := tlb.Translate(0); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tlb.Translate(PageSize); err == nil {
		t.Error("exhaustion not propagated")
	}
}

func TestBadConfigPanics(t *testing.T) {
	pt := NewPageTable(1 << 20)
	for _, cfg := range []Config{
		{Name: "no-entries", Entries: 0},
		{Name: "inverted", Entries: 4, DirectBase: 100, DirectLimit: 50},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %s did not panic", cfg.Name)
				}
			}()
			NewTLB(pt, cfg)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("tiny page table did not panic")
			}
		}()
		NewPageTable(100)
	}()
}

// Property: translation preserves page offsets and is stable (same VA
// always yields the same PA).
func TestPropertyTranslationStable(t *testing.T) {
	f := func(vas []uint32) bool {
		_, tlb := newTLB(16)
		first := make(map[memsys.Addr]memsys.Addr)
		for _, v := range vas {
			va := memsys.Addr(v)
			pa, _, _, err := tlb.Translate(va)
			if err != nil {
				return false
			}
			if uint64(pa)&(PageSize-1) != uint64(va)&(PageSize-1) {
				return false
			}
			if prev, ok := first[va]; ok && prev != pa {
				return false
			}
			first[va] = pa
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the detector agrees with the memalloc classifier for every
// address.
func TestPropertyDetectorMatchesAllocator(t *testing.T) {
	_, tlb := newTLB(4)
	f := func(a uint64) bool {
		return tlb.IsDirect(memsys.Addr(a)) == memalloc.InDirectRegion(memsys.Addr(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
