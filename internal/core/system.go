// Package core assembles the paper's full system: the Table I
// integrated CPU-GPU platform with MOESI-Hammer coherence, and the
// direct-store extension on top — reserved high-order allocation, TLB
// detection, the dedicated CPU→GPU-L2 network, and the PUTX install
// path. It exposes the System type the benchmarks, examples and the
// figure-regeneration harness drive.
package core

import (
	"context"
	"fmt"
	"strings"

	"dstore/internal/cache"
	"dstore/internal/coherence"
	"dstore/internal/cpu"
	"dstore/internal/dram"
	"dstore/internal/gpu"
	"dstore/internal/interconnect"
	"dstore/internal/memalloc"
	"dstore/internal/memsys"
	"dstore/internal/mmu"
	"dstore/internal/obs"
	"dstore/internal/sim"
	"dstore/internal/stats"
)

// Mode selects the coherence regime.
type Mode int

const (
	// ModeCCSM is the baseline: cache-coherent shared memory over the
	// Hammer protocol; shared data allocated on the ordinary heap.
	ModeCCSM Mode = iota
	// ModeDirectStore is the paper's proposal co-existing with CCSM
	// (§III): kernel-referenced data moves to the reserved region, CPU
	// stores to it are pushed to the GPU L2.
	ModeDirectStore
	// ModeStandalone is §III-H: direct store replaces CPU-GPU CCSM
	// entirely. The ordering point no longer cross-probes between CPU
	// and GPU — shared data lives only in the GPU L2 by construction.
	ModeStandalone
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeCCSM:
		return "ccsm"
	case ModeDirectStore:
		return "direct-store"
	case ModeStandalone:
		return "standalone"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// DirectStoreEnabled reports whether the mode uses the push path.
func (m Mode) DirectStoreEnabled() bool { return m != ModeCCSM }

// Config is the full-system configuration. DefaultConfig returns the
// paper's Table I values.
type Config struct {
	Mode Mode

	// CPU side (Table I: 1 core; 64KB/2-way L1D; 32KB/2-way L1I; 2MB/8-way L2).
	CPUL1DBytes int
	CPUL1DWays  int
	CPUL1IBytes int
	CPUL1IWays  int
	CPUL2Bytes  int
	CPUL2Ways   int
	CPUMSHRs    int
	StoreBuffer int

	// GPU side (Table I: 16 SMs, 32 lanes @1.4GHz; 16KB/4-way L1 +48KB
	// shared memory; 2MB/16-way L2 in 4 slices).
	SMs           int
	MaxWarpsPerSM int
	GPUL1Bytes    int
	GPUL1Ways     int
	GPUL2Bytes    int
	GPUL2Ways     int
	GPUL2Slices   int
	GPUMSHRsPerSM int
	SliceMSHRs    int

	// Memory (Table I: 2GB, 1 channel, 2 ranks, 8 banks @1GHz).
	DRAM     dram.Config
	MemBytes uint64

	// Latencies in CPU ticks.
	CPUL1Lat   sim.Tick
	CPUL2Lat   sim.Tick
	GPUL1Lat   sim.Tick
	SharedLat  sim.Tick
	SliceLat   sim.Tick
	XbarLat    sim.Tick
	XbarBW     int // bytes/tick per port
	DirectLat  sim.Tick
	DirectBW   int
	TLBWalkLat sim.Tick
	CPUTLBSize int
	GPUTLBSize int

	// DirectGetx models §III-F's GETX-before-PUTX control flit.
	DirectGetx bool
	// Prefetch enables a next-line GPU L2 prefetcher on demand misses
	// (the pull-based alternative the paper compares against in §IV).
	PrefetchDepth int
	// DirectOverXbar is the §III-G ablation: pushes ride the shared
	// crossbar instead of the dedicated network.
	DirectOverXbar bool
	// PushWriteThrough is the §III-F ablation: pushes install
	// exclusive-clean and write through to memory instead of MM.
	PushWriteThrough bool
	// NoC selects the coherence-network topology: "xbar" (default) or
	// "ring" (a bidirectional ring cpu — slices — mem, the floorplan
	// many real LLC interconnects use).
	NoC string
	// GPUL2Policy selects the slice replacement policy: "lru"
	// (default), "plru", "random" or "srrip" (scan-resistant).
	GPUL2Policy cache.PolicyKind
	// RegionDirectory enables the HSC-style probe filter (Power et
	// al., MICRO 2013 — the paper's reference [2]) at the memory
	// controller: requests to regions private to the requester skip
	// the broadcast probes. A stronger conventional baseline for the
	// paper's comparison.
	RegionDirectory bool
	// RegionShift is the region granularity (2^shift bytes; default 12
	// = 4KB) when RegionDirectory is on.
	RegionShift uint
	// StallGuardEvents arms the engine's forward-progress watchdog:
	// executing more than this many events without the clock advancing
	// panics with a livelock diagnosis. Zero (default) disables the
	// guard and leaves the engine untouched.
	StallGuardEvents uint64
	// Chaos wires deterministic fault injection (internal/chaos) into
	// the machine. Nil — the default, and the only value benchmarks
	// ever see — leaves every component byte-identical to the
	// fault-free build.
	Chaos *ChaosConfig `json:"-"`
	// Obs attaches the observability layer (internal/obs): tracing,
	// latency histograms, interval time series. Nil — the default —
	// leaves every hot path with at most a never-taken predictable
	// branch, and simulation Results are byte-identical either way.
	Obs *obs.Observer `json:"-"`
}

// ChaosConfig is the set of fault-injection attachment points NewSystem
// honours. The concrete fault implementations live in internal/chaos;
// core only knows where they plug in, which keeps the dependency
// pointing chaos → core. Every field is optional.
type ChaosConfig struct {
	// WrapNet wraps the coherence network (delay jitter). The engine is
	// supplied so wrappers can schedule delayed deliveries.
	WrapNet func(*sim.Engine, interconnect.Network) interconnect.Network
	// WrapDirect wraps the dedicated push link (drop/duplicate/jitter).
	WrapDirect func(*sim.Engine, interconnect.DirectPort) interconnect.DirectPort
	// Hooks installs controller-side faults (stalls, push NACKs, the
	// skip-invalidate mutation) on every cache controller.
	Hooks *coherence.ChaosHooks
	// Resilience, when Enabled, switches the direct-store push to the
	// ack/NACK + bounded-retry protocol on every controller.
	Resilience coherence.ResilienceConfig
	// WatchdogInterval arms the memory controller's per-transaction
	// watchdog: every interval ticks in-flight transactions older than
	// WatchdogLimit fail the run with a transaction dump.
	WatchdogInterval sim.Tick
	WatchdogLimit    sim.Tick
	// OnFailure receives fatal protocol failures (push retry
	// exhaustion, stuck transactions) instead of a panic.
	OnFailure func(error)
}

// DefaultConfig returns the Table I system in the given mode.
func DefaultConfig(mode Mode) Config {
	d := dram.DefaultConfig()
	// Balance the DRAM burst bandwidth with the crossbar port width so
	// DRAM-sourced and cache-to-cache transfers sustain comparable
	// streaming rates (the paper's single-channel memory keeps up with
	// its coherence network).
	d.TBurst = 4
	return Config{
		Mode:        mode,
		CPUL1DBytes: 64 * 1024, CPUL1DWays: 2,
		CPUL1IBytes: 32 * 1024, CPUL1IWays: 2,
		CPUL2Bytes: 2 * 1024 * 1024, CPUL2Ways: 8,
		CPUMSHRs: 16, StoreBuffer: 32,
		SMs: 16, MaxWarpsPerSM: 24,
		GPUL1Bytes: 16 * 1024, GPUL1Ways: 4,
		GPUL2Bytes: 2 * 1024 * 1024, GPUL2Ways: 16, GPUL2Slices: 4,
		GPUMSHRsPerSM: 8, SliceMSHRs: 32,
		DRAM:     d,
		MemBytes: 2 * 1024 * 1024 * 1024,
		CPUL1Lat: 4, CPUL2Lat: 12,
		GPUL1Lat: 20, SharedLat: 8, SliceLat: 16,
		XbarLat: 16, XbarBW: 32,
		DirectLat: 20, DirectBW: 32,
		TLBWalkLat: 40, CPUTLBSize: 64, GPUTLBSize: 256,
		DirectGetx: true,
	}
}

// Validate checks a configuration for structural errors before a
// System is built (NewSystem panics on them; Validate lets callers
// report instead).
func (c Config) Validate() error {
	check := func(ok bool, msg string, args ...any) error {
		if !ok {
			return fmt.Errorf("core: "+msg, args...)
		}
		return nil
	}
	pow2 := func(n int) bool { return n > 0 && n&(n-1) == 0 }
	sets := func(bytes, ways int) int {
		if ways <= 0 {
			return 0
		}
		return bytes / (ways * memsys.LineSize)
	}
	sliceBytes := 0
	if pow2(c.GPUL2Slices) {
		sliceBytes = c.GPUL2Bytes / c.GPUL2Slices
	}
	for _, e := range []error{
		check(c.CPUL1DBytes > 0 && c.CPUL1DWays > 0, "CPU L1D geometry %d/%d", c.CPUL1DBytes, c.CPUL1DWays),
		check(c.CPUL2Bytes > 0 && c.CPUL2Ways > 0, "CPU L2 geometry %d/%d", c.CPUL2Bytes, c.CPUL2Ways),
		check(c.SMs > 0, "SM count %d", c.SMs),
		check(c.MaxWarpsPerSM > 0, "warps per SM %d", c.MaxWarpsPerSM),
		check(pow2(c.GPUL2Slices), "GPU L2 slice count %d must be a power of two", c.GPUL2Slices),
		check(sliceBytes == 0 || c.GPUL2Bytes%c.GPUL2Slices == 0, "GPU L2 %dB not divisible into %d slices", c.GPUL2Bytes, c.GPUL2Slices),
		check(pow2(sets(c.CPUL1DBytes, c.CPUL1DWays)), "CPU L1D set count %d must be a power of two", sets(c.CPUL1DBytes, c.CPUL1DWays)),
		check(pow2(sets(c.CPUL2Bytes, c.CPUL2Ways)), "CPU L2 set count %d must be a power of two", sets(c.CPUL2Bytes, c.CPUL2Ways)),
		check(pow2(sets(c.GPUL1Bytes, c.GPUL1Ways)), "GPU L1 set count %d must be a power of two", sets(c.GPUL1Bytes, c.GPUL1Ways)),
		check(sliceBytes == 0 || pow2(sets(sliceBytes, c.GPUL2Ways)), "GPU L2 slice set count %d must be a power of two", sets(sliceBytes, c.GPUL2Ways)),
		check(c.CPUMSHRs > 0 && c.SliceMSHRs > 0 && c.GPUMSHRsPerSM > 0, "MSHR counts must be positive"),
		check(c.StoreBuffer > 0, "store buffer %d", c.StoreBuffer),
		check(c.MemBytes >= 1<<20, "memory %dB too small", c.MemBytes),
		check(c.CPUTLBSize > 0 && c.GPUTLBSize > 0, "TLB sizes must be positive"),
		check(c.NoC == "" || c.NoC == "xbar" || c.NoC == "ring", "unknown NoC %q", c.NoC),
		check(c.Mode == ModeCCSM || c.Mode == ModeDirectStore || c.Mode == ModeStandalone, "unknown mode %d", int(c.Mode)),
	} {
		if e != nil {
			return e
		}
	}
	return nil
}

// System is an assembled simulated machine.
type System struct {
	Cfg    Config
	Engine *sim.Engine
	Space  *memalloc.Space
	PT     *mmu.PageTable
	Vers   *cpu.VersionSource

	Core    *cpu.Core
	GPU     *gpu.GPU
	CPUCtrl *coherence.Ctrl
	Slices  []*coherence.Ctrl
	Mem     *coherence.MemCtrl
	// Net is the coherence network (crossbar or ring per Config.NoC).
	Net    interconnect.Network
	Direct *interconnect.Link
	DRAM   *dram.DRAM

	prefetches *stats.Counter
	counters   *stats.Set
}

// NewSystem builds a machine from cfg.
func NewSystem(cfg Config) *System {
	engine := sim.NewEngine()
	s := &System{
		Cfg:      cfg,
		Engine:   engine,
		Space:    memalloc.NewSpace(),
		PT:       mmu.NewPageTable(cfg.MemBytes),
		Vers:     &cpu.VersionSource{},
		counters: stats.NewSet(),
	}
	s.prefetches = s.counters.Counter("l2_prefetches_issued")
	if cfg.StallGuardEvents != 0 {
		engine.SetStallGuard(cfg.StallGuardEvents)
	}
	s.DRAM = dram.New(engine, cfg.DRAM)

	sliceName := func(i int) string { return fmt.Sprintf("gpu.l2.s%d", i) }
	switch cfg.NoC {
	case "", "xbar":
		s.Net = interconnect.NewCrossbar(engine, "xbar", cfg.XbarLat, cfg.XbarBW)
	case "ring":
		// Floorplan order: the CPU sits next to the memory controller,
		// slices around the ring.
		nodes := []string{"cpu", "mem"}
		for i := 0; i < cfg.GPUL2Slices; i++ {
			nodes = append(nodes, sliceName(i))
		}
		// Per-hop latency is the crossbar latency split over the mean
		// hop count so the two topologies have comparable average cost.
		hop := cfg.XbarLat / 2
		if hop == 0 {
			hop = 1
		}
		s.Net = interconnect.NewRing(engine, "ring", nodes, hop, cfg.XbarBW)
	default:
		panic(fmt.Sprintf("core: unknown NoC kind %q", cfg.NoC))
	}
	if cfg.Chaos != nil && cfg.Chaos.WrapNet != nil {
		s.Net = cfg.Chaos.WrapNet(engine, s.Net)
	}
	standalone := cfg.Mode == ModeStandalone
	s.Mem = coherence.NewMemCtrl(engine, "mem", s.Net, s.DRAM,
		func(a memsys.Addr, requester string) []string {
			if standalone {
				// §III-H: no CPU↔GPU cross-probes; each request goes
				// straight to memory. Sound because shared data lives
				// only in the GPU L2.
				return nil
			}
			var out []string
			for _, n := range []string{"cpu", sliceName(memsys.SliceFor(a, cfg.GPUL2Slices))} {
				if n != requester {
					out = append(out, n)
				}
			}
			return out
		})
	s.Mem.SetProtocol(coherence.ProtocolFor(
		cfg.Mode.DirectStoreEnabled(),
		cfg.Chaos != nil && cfg.Chaos.Resilience.Enabled,
		cfg.PushWriteThrough))

	if cfg.RegionDirectory {
		shift := cfg.RegionShift
		if shift == 0 {
			shift = 12
		}
		s.Mem.AttachRegionDirectory(coherence.NewRegionDirectory(shift, func(name string) string {
			if strings.HasPrefix(name, "gpu.") {
				return "gpu"
			}
			return name
		}))
	}

	l1d := cache.Config{Name: "cpu.l1d", SizeBytes: cfg.CPUL1DBytes, Ways: cfg.CPUL1DWays}
	s.CPUCtrl = coherence.NewCtrl(engine, coherence.CtrlConfig{
		Name:     "cpu",
		L2:       cache.Config{Name: "cpu.l2", SizeBytes: cfg.CPUL2Bytes, Ways: cfg.CPUL2Ways},
		L1:       &l1d,
		L1HitLat: cfg.CPUL1Lat, L2HitLat: cfg.CPUL2Lat,
		MSHRs: cfg.CPUMSHRs, DirectGetx: cfg.DirectGetx,
		DirectOverXbar: cfg.DirectOverXbar,
	}, s.Net, s.Mem)

	sliceBytes := cfg.GPUL2Bytes / cfg.GPUL2Slices
	sliceShift := uint(0)
	for 1<<sliceShift < cfg.GPUL2Slices {
		sliceShift++
	}
	if 1<<sliceShift != cfg.GPUL2Slices {
		panic(fmt.Sprintf("core: GPU L2 slice count %d not a power of two", cfg.GPUL2Slices))
	}
	for i := 0; i < cfg.GPUL2Slices; i++ {
		i := i
		ctrlCfg := coherence.CtrlConfig{
			Name: sliceName(i),
			L2: cache.Config{Name: sliceName(i), SizeBytes: sliceBytes, Ways: cfg.GPUL2Ways,
				IndexShift: sliceShift, Policy: cfg.GPUL2Policy},
			L2HitLat:          cfg.SliceLat,
			MSHRs:             cfg.SliceMSHRs,
			BypassDirtyVictim: true,
			PushWriteThrough:  cfg.PushWriteThrough,
		}
		if cfg.PrefetchDepth > 0 {
			ctrlCfg.OnDemandMiss = func(line memsys.Addr) { s.prefetchAfter(i, line) }
		}
		s.Slices = append(s.Slices, coherence.NewCtrl(engine, ctrlCfg, s.Net, s.Mem))
	}

	s.Direct = interconnect.NewLink(engine, "direct", cfg.DirectLat, cfg.DirectBW)
	var direct interconnect.DirectPort = s.Direct
	if cfg.Chaos != nil && cfg.Chaos.WrapDirect != nil {
		direct = cfg.Chaos.WrapDirect(engine, direct)
	}
	s.CPUCtrl.AttachDirectStore(direct, func(a memsys.Addr) *coherence.Ctrl {
		return s.Slices[memsys.SliceFor(a, cfg.GPUL2Slices)]
	})

	if ch := cfg.Chaos; ch != nil {
		for _, c := range append([]*coherence.Ctrl{s.CPUCtrl}, s.Slices...) {
			if ch.Hooks != nil {
				c.AttachChaos(ch.Hooks)
			}
			if ch.Resilience.Enabled {
				c.EnableResilience(ch.Resilience)
			}
			if ch.OnFailure != nil {
				c.SetFailureHandler(ch.OnFailure)
			}
		}
		if ch.WatchdogInterval != 0 {
			s.Mem.EnableWatchdog(ch.WatchdogInterval, ch.WatchdogLimit, ch.OnFailure)
		}
	}

	cpuTLB := mmu.NewTLB(s.PT, mmu.Config{
		Name: "cpu.tlb", Entries: cfg.CPUTLBSize, HitLatency: 1, WalkLatency: cfg.TLBWalkLat,
		DirectBase: memalloc.DirectStoreBase, DirectLimit: memalloc.DirectStoreLimit,
	})
	s.Core = cpu.New(engine, cpu.Config{
		Name:               "cpu0",
		StoreBufferEntries: cfg.StoreBuffer,
		DirectStoreEnabled: cfg.Mode.DirectStoreEnabled(),
	}, cpuTLB, s.CPUCtrl, s.Vers)

	gpuTLB := mmu.NewTLB(s.PT, mmu.Config{
		Name: "gpu.tlb", Entries: cfg.GPUTLBSize, HitLatency: 1, WalkLatency: cfg.TLBWalkLat,
		DirectBase: memalloc.DirectStoreBase, DirectLimit: memalloc.DirectStoreLimit,
	})
	s.GPU = gpu.New(engine, gpu.Config{
		Name: "gpu", SMs: cfg.SMs, MaxWarpsPerSM: cfg.MaxWarpsPerSM,
		L1:       cache.Config{Name: "gpu.l1", SizeBytes: cfg.GPUL1Bytes, Ways: cfg.GPUL1Ways},
		L1HitLat: cfg.GPUL1Lat, SharedLat: cfg.SharedLat,
		MSHRsPerSM: cfg.GPUMSHRsPerSM,
	}, gpuTLB, s.Vers, func(a memsys.Addr) *coherence.Ctrl {
		return s.Slices[memsys.SliceFor(a, cfg.GPUL2Slices)]
	})

	if o := cfg.Obs; o != nil {
		// Attachment order fixes the component IDs, so identical wiring
		// yields identical traces run-to-run.
		s.Mem.AttachObserver(o)
		s.CPUCtrl.AttachObserver(o, false)
		for _, sl := range s.Slices {
			sl.AttachObserver(o, true)
		}
		s.Core.AttachObserver(o)
		s.GPU.AttachObserver(o)
		o.RegisterGauge("cpu_wbbuf_occupancy", func() uint64 { return uint64(s.CPUCtrl.WBBufLen()) })
		o.RegisterGauge("cpu_mshr_occupancy", func() uint64 { return uint64(s.CPUCtrl.MSHRInUse()) })
		o.RegisterGauge("gpu_l2_wbbuf_occupancy", func() uint64 {
			var n uint64
			for _, sl := range s.Slices {
				n += uint64(sl.WBBufLen())
			}
			return n
		})
		o.RegisterGauge("gpu_l2_mshr_occupancy", func() uint64 {
			var n uint64
			for _, sl := range s.Slices {
				n += uint64(sl.MSHRInUse())
			}
			return n
		})
		o.RegisterGauge("gpu_l1_mshr_occupancy", func() uint64 { return uint64(s.GPU.MSHRInUse()) })
		if o.Options().TimeSeries {
			// The sampler only observes clock advances; it never
			// schedules events, so the event sequence is untouched.
			engine.SetAdvanceHook(o.Tick)
		}
	}
	return s
}

// prefetchAfter issues next-line prefetches into whichever slices own
// the following lines (lines interleave, so the neighbours usually live
// in other slices).
func (s *System) prefetchAfter(_ int, line memsys.Addr) {
	for d := 1; d <= s.Cfg.PrefetchDepth; d++ {
		next := line + memsys.Addr(d)*memsys.LineSize
		s.prefetches.Inc()
		s.Slices[memsys.SliceFor(next, s.Cfg.GPUL2Slices)].Prefetch(next)
	}
}

// Counters exposes system-level counters (prefetches issued).
func (s *System) Counters() *stats.Set { return s.counters }

// AllocShared allocates a buffer the GPU will consume. In the
// direct-store modes it lands in the reserved region (what the
// translator does to kernel-referenced variables); in CCSM mode it is
// an ordinary heap allocation.
func (s *System) AllocShared(size uint64, name string) (memsys.Addr, error) {
	if s.Cfg.Mode.DirectStoreEnabled() {
		return s.Space.AllocDirect(size, name)
	}
	return s.Space.Malloc(size, name)
}

// AllocPrivate allocates CPU-private memory regardless of mode.
func (s *System) AllocPrivate(size uint64, name string) (memsys.Addr, error) {
	return s.Space.Malloc(size, name)
}

// ctxStop adapts a context to the engine's stop-polling interface. A
// context that can never be cancelled maps to nil, which keeps the
// uncancellable paths on the engine's plain Run loop.
func ctxStop(ctx context.Context) func() bool {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	done := ctx.Done()
	return func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
}

// RunCPU executes a CPU op stream to completion (produce or readback
// phase) and returns the elapsed ticks.
func (s *System) RunCPU(ops []cpu.Op) sim.Tick {
	t, err := s.RunCPUContext(context.Background(), ops)
	if err != nil {
		panic("core: CPU phase cancelled without a cancellable context")
	}
	return t
}

// RunCPUContext is RunCPU under a context: the phase is abandoned
// mid-simulation if ctx is cancelled, returning ctx's error and the
// ticks elapsed so far. A cancelled system is torn mid-transaction and
// must not be reused for further phases or invariant checks.
func (s *System) RunCPUContext(ctx context.Context, ops []cpu.Op) (sim.Tick, error) {
	start := s.Engine.Now()
	done := false
	s.Core.Run(cpu.NewSliceStream(ops), func() { done = true })
	if _, drained := s.Engine.RunInterruptible(ctxStop(ctx)); !drained {
		return s.Engine.Now() - start, ctx.Err()
	}
	if !done {
		panic("core: CPU phase did not complete")
	}
	return s.Engine.Now() - start, nil
}

// RunKernel launches a GPU kernel to completion and returns the elapsed
// ticks.
func (s *System) RunKernel(k gpu.Kernel) sim.Tick {
	t, err := s.RunKernelContext(context.Background(), k)
	if err != nil {
		panic("core: kernel cancelled without a cancellable context")
	}
	return t
}

// RunKernelContext is RunKernel under a context, with the same
// cancellation contract as RunCPUContext.
func (s *System) RunKernelContext(ctx context.Context, k gpu.Kernel) (sim.Tick, error) {
	start := s.Engine.Now()
	done := false
	s.GPU.Launch(k, func() { done = true })
	if _, drained := s.Engine.RunInterruptible(ctxStop(ctx)); !drained {
		return s.Engine.Now() - start, ctx.Err()
	}
	if !done {
		panic(fmt.Sprintf("core: kernel %q did not complete", k.Name))
	}
	return s.Engine.Now() - start, nil
}

// RunOverlapped runs a CPU op stream and a kernel concurrently (the
// CPU keeps producing while the GPU consumes) and returns elapsed
// ticks.
func (s *System) RunOverlapped(ops []cpu.Op, k gpu.Kernel) sim.Tick {
	start := s.Engine.Now()
	cpuDone, gpuDone := false, false
	s.Core.Run(cpu.NewSliceStream(ops), func() { cpuDone = true })
	s.GPU.Launch(k, func() { gpuDone = true })
	s.Engine.Run()
	if !cpuDone || !gpuDone {
		panic("core: overlapped phase did not complete")
	}
	return s.Engine.Now() - start
}

// Now returns the current simulation tick.
func (s *System) Now() sim.Tick { return s.Engine.Now() }

// CheckCoherence validates the MOESI invariants over every line of
// every allocated region (single owner, exclusive implies sole copy,
// no in-flight transactions). Call it after the system drains; a
// non-nil error is a protocol bug.
func (s *System) CheckCoherence() error {
	var lines []memsys.Addr
	for _, r := range s.Space.Regions() {
		for va := memsys.LineAlign(r.Base); va < r.End(); va += memsys.LineSize {
			if pa, ok := s.PT.Lookup(va); ok {
				lines = append(lines, pa)
			}
		}
	}
	return s.Mem.CheckInvariants(lines)
}

// GPUL2Accesses sums demand accesses over the GPU L2 slices.
func (s *System) GPUL2Accesses() uint64 {
	var n uint64
	for _, sl := range s.Slices {
		n += sl.L2Cache().Counters().Get("accesses")
	}
	return n
}

// GPUL2Misses sums demand misses over the GPU L2 slices.
func (s *System) GPUL2Misses() uint64 {
	var n uint64
	for _, sl := range s.Slices {
		n += sl.L2Cache().Counters().Get("misses")
	}
	return n
}

// GPUL2MissRate returns misses/accesses over the GPU L2 (0 when idle,
// matching the paper's zero bars).
func (s *System) GPUL2MissRate() float64 {
	return stats.Ratio(s.GPUL2Misses(), s.GPUL2Accesses())
}

// PushesReceived sums direct-store installs over the slices.
func (s *System) PushesReceived() uint64 {
	var n uint64
	for _, sl := range s.Slices {
		n += sl.Counters().Get("pushes_received")
	}
	return n
}

// CoherenceTrafficBytes returns bytes moved over the shared crossbar
// (the CCSM network); direct-network bytes are reported separately.
func (s *System) CoherenceTrafficBytes() uint64 { return s.Net.TotalBytes() }

// DirectTrafficBytes returns bytes moved over the dedicated network.
func (s *System) DirectTrafficBytes() uint64 { return s.Direct.Counters().Get("bytes") }

// Table1 renders the system configuration in the shape of the paper's
// Table I.
func (c Config) Table1() *stats.Table {
	t := stats.NewTable("Component", "Configuration")
	t.AddRow("CPU cores", "1")
	t.AddRow("CPU L1D cache", fmt.Sprintf("%dKB, %d ways", c.CPUL1DBytes/1024, c.CPUL1DWays))
	t.AddRow("CPU L1I cache", fmt.Sprintf("%dKB, %d ways", c.CPUL1IBytes/1024, c.CPUL1IWays))
	t.AddRow("CPU L2 cache", fmt.Sprintf("%dMB, %d ways", c.CPUL2Bytes/(1024*1024), c.CPUL2Ways))
	t.AddRow("GPU SMs", fmt.Sprintf("%d - 32 lanes per SM @ 1.4GHz", c.SMs))
	t.AddRow("GPU L1 cache", fmt.Sprintf("%dKB + 48KB shared memory, %d ways", c.GPUL1Bytes/1024, c.GPUL1Ways))
	t.AddRow("GPU L2 cache", fmt.Sprintf("%dMB, %d ways, %d slices", c.GPUL2Bytes/(1024*1024), c.GPUL2Ways, c.GPUL2Slices))
	t.AddRow("Memory", fmt.Sprintf("%dGB, %d channel, %d ranks, %d banks @ 1GHz",
		c.MemBytes/(1024*1024*1024), c.DRAM.Channels, c.DRAM.Ranks, c.DRAM.Banks))
	t.AddRow("Cache line", fmt.Sprintf("%d bytes", memsys.LineSize))
	t.AddRow("Coherence", "MOESI Hammer (modified per Fig. 3)")
	return t
}
