package core

import (
	"strings"
	"testing"

	"dstore/internal/dram"

	"dstore/internal/cpu"
	"dstore/internal/gpu"
	"dstore/internal/memsys"
	"dstore/internal/sim"
	"dstore/internal/trace"
)

// smallConfig shrinks the machine so capacity effects are cheap to
// exercise: 64KB GPU L2 (16KB/slice), 64KB CPU L2, 4 SMs.
func smallConfig(mode Mode) Config {
	cfg := DefaultConfig(mode)
	cfg.CPUL2Bytes = 64 * 1024
	cfg.GPUL2Bytes = 64 * 1024
	cfg.GPUL2Ways = 8
	cfg.SMs = 4
	cfg.MaxWarpsPerSM = 8
	cfg.GPUL1Bytes = 4 * 1024
	return cfg
}

// produceOps returns CPU stores covering the region.
func produceOps(base memsys.Addr, bytes uint64) []cpu.Op {
	var ops []cpu.Op
	for _, a := range trace.SequentialLines(base, bytes) {
		ops = append(ops, cpu.Op{Type: memsys.Store, Addr: a})
	}
	return ops
}

// consumeKernel builds a kernel whose warps stream-read the region.
func consumeKernel(base memsys.Addr, bytes uint64, warps int) gpu.Kernel {
	lines := trace.SequentialLines(base, bytes)
	var ws []gpu.Warp
	for _, chunk := range trace.Chunk(lines, warps) {
		var ops []gpu.WarpOp
		for _, a := range chunk {
			ops = append(ops, gpu.WarpOp{Kind: gpu.OpGlobalLoad, Addr: a, Lines: 1})
		}
		ws = append(ws, gpu.Warp{Ops: ops})
	}
	return gpu.Kernel{Name: "consume", Warps: ws}
}

// runProduceConsume runs the canonical workload and returns total ticks.
func runProduceConsume(t *testing.T, s *System, bytes uint64) sim.Tick {
	t.Helper()
	base, err := s.AllocShared(bytes, "buf")
	if err != nil {
		t.Fatal(err)
	}
	total := s.RunCPU(produceOps(base, bytes))
	total += s.RunKernel(consumeKernel(base, bytes, 32))
	return total
}

func TestTableIConfigBuilds(t *testing.T) {
	s := NewSystem(DefaultConfig(ModeCCSM))
	if len(s.Slices) != 4 {
		t.Errorf("slices = %d, want 4", len(s.Slices))
	}
	if s.Slices[0].L2Cache().CapacityLines()*4*memsys.LineSize != 2*1024*1024 {
		t.Error("GPU L2 capacity is not 2MB across slices")
	}
	tbl := DefaultConfig(ModeCCSM).Table1().String()
	for _, want := range []string{"64KB", "2MB", "16 - 32 lanes", "2GB", "8 banks", "MOESI"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("Table I output missing %q:\n%s", want, tbl)
		}
	}
}

func TestModeStrings(t *testing.T) {
	if ModeCCSM.String() != "ccsm" || ModeDirectStore.String() != "direct-store" ||
		ModeStandalone.String() != "standalone" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode empty")
	}
	if ModeCCSM.DirectStoreEnabled() {
		t.Error("CCSM claims direct store")
	}
	if !ModeDirectStore.DirectStoreEnabled() || !ModeStandalone.DirectStoreEnabled() {
		t.Error("DS modes claim no direct store")
	}
}

func TestAllocSharedRespectsMode(t *testing.T) {
	ccsm := NewSystem(smallConfig(ModeCCSM))
	ds := NewSystem(smallConfig(ModeDirectStore))
	a1, _ := ccsm.AllocShared(4096, "x")
	a2, _ := ds.AllocShared(4096, "x")
	if memsysInDirect(a1) {
		t.Error("CCSM shared allocation landed in the direct region")
	}
	if !memsysInDirect(a2) {
		t.Error("DS shared allocation not in the direct region")
	}
	p, _ := ds.AllocPrivate(4096, "y")
	if memsysInDirect(p) {
		t.Error("private allocation landed in the direct region")
	}
}

func memsysInDirect(a memsys.Addr) bool {
	return a >= 0x0000_7f00_0000_0000
}

func TestDirectStoreBeatsCCSMOnStreaming(t *testing.T) {
	const bytes = 16 * 1024 // fits comfortably in the small GPU L2
	ccsm := NewSystem(smallConfig(ModeCCSM))
	ds := NewSystem(smallConfig(ModeDirectStore))
	tC := runProduceConsume(t, ccsm, bytes)
	tD := runProduceConsume(t, ds, bytes)

	if ds.PushesReceived() == 0 {
		t.Fatal("direct-store run pushed nothing")
	}
	if ccsm.PushesReceived() != 0 {
		t.Fatal("CCSM run pushed lines")
	}
	if ds.GPUL2Misses() >= ccsm.GPUL2Misses() {
		t.Errorf("DS misses %d not below CCSM misses %d", ds.GPUL2Misses(), ccsm.GPUL2Misses())
	}
	if tD >= tC {
		t.Errorf("DS runtime %d not below CCSM runtime %d", tD, tC)
	}
}

func TestCapacityDefeatsDirectStore(t *testing.T) {
	// Working set 8x the GPU L2: pushed lines are evicted before the
	// GPU reads them, so the DS miss advantage shrinks to near zero.
	const small = 16 * 1024
	const big = 512 * 1024
	missAdvantage := func(bytes uint64) float64 {
		ccsm := NewSystem(smallConfig(ModeCCSM))
		ds := NewSystem(smallConfig(ModeDirectStore))
		runProduceConsume(t, ccsm, bytes)
		runProduceConsume(t, ds, bytes)
		return ccsm.GPUL2MissRate() - ds.GPUL2MissRate()
	}
	smallAdv := missAdvantage(small)
	bigAdv := missAdvantage(big)
	if smallAdv <= 0 {
		t.Fatalf("no miss-rate advantage on cache-resident input (%v)", smallAdv)
	}
	if bigAdv >= smallAdv/2 {
		t.Errorf("advantage did not collapse beyond capacity: small=%v big=%v", smallAdv, bigAdv)
	}
}

func TestStandaloneModeRunsAndAvoidsCrossProbes(t *testing.T) {
	const bytes = 16 * 1024
	sa := NewSystem(smallConfig(ModeStandalone))
	runProduceConsume(t, sa, bytes)
	if sa.PushesReceived() == 0 {
		t.Error("standalone mode pushed nothing")
	}
	if got := sa.Mem.Counters().Get("probes_sent"); got != 0 {
		t.Errorf("standalone mode sent %d probes, want 0 (§III-H)", got)
	}
}

// gappedConsume interleaves compute with the loads, giving a prefetcher
// time to run ahead of demand.
func gappedConsume(base memsys.Addr, bytes uint64, warps int, gap sim.Tick) gpu.Kernel {
	lines := trace.SequentialLines(base, bytes)
	var ws []gpu.Warp
	for _, chunk := range trace.Chunk(lines, warps) {
		var ops []gpu.WarpOp
		for _, a := range chunk {
			ops = append(ops, gpu.WarpOp{Kind: gpu.OpCompute, Gap: gap})
			ops = append(ops, gpu.WarpOp{Kind: gpu.OpGlobalLoad, Addr: a, Lines: 1})
		}
		ws = append(ws, gpu.Warp{Ops: ops})
	}
	return gpu.Kernel{Name: "gapped", Warps: ws}
}

func TestPrefetcherReducesMissesOnStreaming(t *testing.T) {
	const bytes = 16 * 1024 // well under the 64KB GPU L2: no pollution
	run := func(depth int) *System {
		cfg := smallConfig(ModeCCSM)
		cfg.PrefetchDepth = depth
		s := NewSystem(cfg)
		base, err := s.AllocShared(bytes, "buf")
		if err != nil {
			t.Fatal(err)
		}
		s.RunCPU(produceOps(base, bytes))
		s.RunKernel(gappedConsume(base, bytes, 4, 400))
		return s
	}
	plain := run(0)
	pre := run(4)
	if pre.Counters().Get("l2_prefetches_issued") == 0 {
		t.Fatal("prefetcher idle")
	}
	if pre.GPUL2Misses() >= plain.GPUL2Misses() {
		t.Errorf("prefetching misses %d not below plain %d", pre.GPUL2Misses(), plain.GPUL2Misses())
	}
}

func TestDirectStoreBeatsPrefetchingOnProducerConsumer(t *testing.T) {
	// §IV: "we have also compared direct stores to prefetching and find
	// that direct store's performance improvements there are even
	// higher" — i.e. DS beats the prefetch-augmented baseline too.
	const bytes = 16 * 1024
	pf := smallConfig(ModeCCSM)
	pf.PrefetchDepth = 4
	pre := NewSystem(pf)
	ds := NewSystem(smallConfig(ModeDirectStore))
	tP := runProduceConsume(t, pre, bytes)
	tD := runProduceConsume(t, ds, bytes)
	if tD >= tP {
		t.Errorf("DS runtime %d not below prefetching runtime %d", tD, tP)
	}
}

func TestCPUReadbackOfKernelResults(t *testing.T) {
	// GPU writes a result buffer; CPU reads it back. In DS mode the
	// readback uses uncacheable remote loads.
	cfg := smallConfig(ModeDirectStore)
	s := NewSystem(cfg)
	base, _ := s.AllocShared(4096, "out")
	lines := trace.SequentialLines(base, 4096)
	var ops []gpu.WarpOp
	for _, a := range lines {
		ops = append(ops, gpu.WarpOp{Kind: gpu.OpGlobalStore, Addr: a, Lines: 1})
	}
	s.RunKernel(gpu.Kernel{Name: "write", Warps: []gpu.Warp{{Ops: ops}}})
	var rb []cpu.Op
	for _, a := range lines {
		rb = append(rb, cpu.Op{Type: memsys.Load, Addr: a})
	}
	s.RunCPU(rb)
	if s.Core.Counters().Get("remote_loads") != uint64(len(lines)) {
		t.Errorf("remote loads = %d, want %d", s.Core.Counters().Get("remote_loads"), len(lines))
	}
	if s.CPUCtrl.L2Cache().Counters().Get("accesses") != 0 {
		t.Error("readback went through the CPU cache")
	}
}

func TestOverlappedProduceConsume(t *testing.T) {
	s := NewSystem(smallConfig(ModeDirectStore))
	base, _ := s.AllocShared(8*1024, "buf")
	total := s.RunOverlapped(produceOps(base, 8*1024), consumeKernel(base, 8*1024, 8))
	if total == 0 {
		t.Fatal("overlapped run took no time")
	}
	if !s.Mem.Idle() {
		t.Error("memory controller busy after overlapped run")
	}
}

func TestCoherenceTrafficLowerUnderDirectStore(t *testing.T) {
	const bytes = 16 * 1024
	ccsm := NewSystem(smallConfig(ModeCCSM))
	ds := NewSystem(smallConfig(ModeDirectStore))
	runProduceConsume(t, ccsm, bytes)
	runProduceConsume(t, ds, bytes)
	if ds.CoherenceTrafficBytes() >= ccsm.CoherenceTrafficBytes() {
		t.Errorf("DS crossbar traffic %d not below CCSM %d",
			ds.CoherenceTrafficBytes(), ccsm.CoherenceTrafficBytes())
	}
	if ds.DirectTrafficBytes() == 0 {
		t.Error("DS moved nothing over the dedicated network")
	}
}

func TestSharedMemoryKernelInsensitiveToMode(t *testing.T) {
	// A kernel that stages once and then works out of shared memory
	// barely touches the L2 during compute: DS gains little (the BP/HT
	// effect for small inputs).
	const bytes = 8 * 1024
	mk := func(mode Mode) (sim.Tick, *System) {
		s := NewSystem(smallConfig(mode))
		base, _ := s.AllocShared(bytes, "buf")
		s.RunCPU(produceOps(base, bytes))
		lines := trace.SequentialLines(base, bytes)
		var ws []gpu.Warp
		for _, chunk := range trace.Chunk(lines, 16) {
			var ops []gpu.WarpOp
			for _, a := range chunk {
				ops = append(ops, gpu.WarpOp{Kind: gpu.OpGlobalLoad, Addr: a, Lines: 1})
			}
			// Heavy shared-memory compute after staging.
			for i := 0; i < 20*len(chunk); i++ {
				ops = append(ops, gpu.WarpOp{Kind: gpu.OpShared})
			}
			ws = append(ws, gpu.Warp{Ops: ops})
		}
		return s.RunKernel(gpu.Kernel{Name: "sharedk", Warps: ws}), s
	}
	tC, _ := mk(ModeCCSM)
	tD, _ := mk(ModeDirectStore)
	if tD >= tC {
		t.Errorf("DS kernel %d not faster than CCSM %d", tD, tC)
	}
	gain := float64(tC-tD) / float64(tC)
	if gain > 0.5 {
		t.Errorf("shared-memory kernel gained %.0f%% — staging should dominate", gain*100)
	}
}

func TestRingNoCProducesSameFunctionalResults(t *testing.T) {
	// The ring topology must be functionally equivalent to the
	// crossbar: same pushes, same misses, different (but sane) timing.
	run := func(noc string) (sim.Tick, uint64, uint64) {
		cfg := smallConfig(ModeDirectStore)
		cfg.NoC = noc
		s := NewSystem(cfg)
		ticks := runProduceConsume(t, s, 16*1024)
		return ticks, s.PushesReceived(), s.GPUL2Misses()
	}
	xt, xp, xm := run("xbar")
	rt, rp, rm := run("ring")
	if xp != rp || xm != rm {
		t.Errorf("topologies disagree functionally: pushes %d/%d misses %d/%d", xp, rp, xm, rm)
	}
	if rt == 0 || xt == 0 {
		t.Error("zero runtime")
	}
}

func TestUnknownNoCPanics(t *testing.T) {
	cfg := smallConfig(ModeCCSM)
	cfg.NoC = "torus"
	defer func() {
		if recover() == nil {
			t.Error("unknown NoC accepted")
		}
	}()
	NewSystem(cfg)
}

func TestFRFCFSSchedulerEndToEnd(t *testing.T) {
	cfg := smallConfig(ModeDirectStore)
	cfg.DRAM.Scheduler = dram.SchedFRFCFS
	s := NewSystem(cfg)
	ticks := runProduceConsume(t, s, 32*1024)
	if ticks == 0 {
		t.Fatal("no time elapsed")
	}
	if !s.Mem.Idle() {
		t.Error("memory controller busy after drain")
	}
	if s.GPUL2Misses() > s.GPUL2Accesses() {
		t.Error("impossible miss count")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(ModeCCSM)
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	mutations := map[string]func(*Config){
		"slices":  func(c *Config) { c.GPUL2Slices = 3 },
		"sms":     func(c *Config) { c.SMs = 0 },
		"noc":     func(c *Config) { c.NoC = "torus" },
		"mode":    func(c *Config) { c.Mode = Mode(9) },
		"sb":      func(c *Config) { c.StoreBuffer = 0 },
		"tlb":     func(c *Config) { c.CPUTLBSize = 0 },
		"memsize": func(c *Config) { c.MemBytes = 1024 },
	}
	for name, mut := range mutations {
		cfg := DefaultConfig(ModeCCSM)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %s accepted", name)
		}
	}
}
