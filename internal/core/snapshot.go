package core

import (
	"fmt"

	"dstore/internal/interconnect"
	"dstore/internal/snap"
)

// Snapshot container format (DESIGN.md §11): a magic string, a format
// version, then fixed-order component sections. Any change to a
// component's field order or to the section order below is a version
// bump; readers reject other versions outright rather than guessing.
const (
	snapshotMagic   = "DSSNAP"
	snapshotVersion = 1
)

// SnapshotVersion is the current container format version; it
// participates in snapshot cache keys so a format change can never
// resurrect stale state.
func SnapshotVersion() uint32 { return snapshotVersion }

// VerifySnapshotHeader checks that data opens with the DSSNAP
// container fingerprint this build reads: the magic string and the
// current format version. It validates nothing past the header — a
// full structural check is RestoreSnapshot's job — but it is exactly
// the cheap screen a persistent snapshot store needs to quarantine
// foreign or stale-format blobs at startup.
func VerifySnapshotHeader(data []byte) error {
	r := snap.NewReader(data)
	magic := r.String()
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: not a snapshot stream: %w", err)
	}
	if magic != snapshotMagic {
		return fmt.Errorf("core: not a snapshot stream (magic %q)", magic)
	}
	v := r.U32()
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: not a snapshot stream: %w", err)
	}
	if v != snapshotVersion {
		return fmt.Errorf("core: snapshot format version %d, this build reads %d", v, snapshotVersion)
	}
	return nil
}

// Snapshot serialises the full system state at a quiescent point: the
// engine queue must be fully drained (as it is between workload
// phases — RunCPU/RunKernel return only once every event has run).
// Chaos-attached systems are not snapshottable. The stream restores
// with RestoreSnapshot into a *freshly built* system with the same
// configuration and the same (deterministic) workload build applied;
// build-time state — the address space layout — is reproduced by the
// build, fingerprinted here, and verified on restore.
func (s *System) Snapshot() ([]byte, error) {
	if n := s.Engine.Pending(); n != 0 {
		return nil, fmt.Errorf("core: snapshot with %d events pending", n)
	}
	if s.Cfg.Chaos != nil {
		return nil, fmt.Errorf("core: snapshot of a chaos-injected system")
	}
	w := &snap.Writer{}
	w.String(snapshotMagic)
	w.U32(snapshotVersion)

	// Address-space fingerprint: build-time state, verified not
	// restored.
	w.Tag("space")
	regions := s.Space.Regions()
	w.U32(uint32(len(regions)))
	for _, reg := range regions {
		w.U64(uint64(reg.Base))
		w.U64(reg.Size)
	}

	s.Engine.SnapshotTo(w)
	s.Vers.SnapshotTo(w)
	s.PT.SnapshotTo(w)
	s.Core.SnapshotTo(w)
	s.GPU.SnapshotTo(w)
	s.CPUCtrl.SnapshotTo(w)
	w.U32(uint32(len(s.Slices)))
	for _, sl := range s.Slices {
		sl.SnapshotTo(w)
	}
	s.Mem.SnapshotTo(w)
	s.snapshotNet(w)
	s.Direct.SnapshotTo(w)
	s.DRAM.SnapshotTo(w)
	s.counters.SnapshotTo(w)
	return w.Bytes(), nil
}

func (s *System) snapshotNet(w *snap.Writer) {
	switch net := s.Net.(type) {
	case *interconnect.Crossbar:
		net.SnapshotTo(w)
	case *interconnect.Ring:
		net.SnapshotTo(w)
	default:
		// Unreachable with the topologies NewSystem builds; tag so a
		// future topology fails restore loudly instead of desyncing.
		w.Tag("net-unknown")
	}
}

// RestoreSnapshot loads a Snapshot stream into this system. The
// system must be freshly built with an identical configuration and
// workload (so the address space matches the fingerprint) and its
// engine must be idle. On error the system is in an undefined state
// and must be discarded; on success the simulation resumes exactly
// where the snapshot was taken, byte-identical to a run that never
// stopped.
func (s *System) RestoreSnapshot(data []byte) error {
	if s.Cfg.Chaos != nil {
		return fmt.Errorf("core: restore into a chaos-injected system")
	}
	r := snap.NewReader(data)
	if magic := r.String(); r.Err() == nil && magic != snapshotMagic {
		return fmt.Errorf("core: not a snapshot stream (magic %q)", magic)
	}
	if v := r.U32(); r.Err() == nil && v != snapshotVersion {
		return fmt.Errorf("core: snapshot format version %d, this build reads %d", v, snapshotVersion)
	}

	r.Tag("space")
	regions := s.Space.Regions()
	if n := r.U32(); r.Err() == nil && int(n) != len(regions) {
		r.Failf("core: snapshot has %d address-space regions, system has %d", n, len(regions))
	}
	for _, reg := range regions {
		base := r.U64()
		size := r.U64()
		if r.Err() != nil {
			break
		}
		if base != uint64(reg.Base) || size != reg.Size {
			r.Failf("core: address-space region %q at %#x/%d does not match snapshot %#x/%d",
				reg.Name, uint64(reg.Base), reg.Size, base, size)
			break
		}
	}

	s.Engine.RestoreFrom(r)
	s.Vers.RestoreFrom(r)
	s.PT.RestoreFrom(r)
	s.Core.RestoreFrom(r)
	s.GPU.RestoreFrom(r)
	s.CPUCtrl.RestoreFrom(r)
	if n := r.U32(); r.Err() == nil && int(n) != len(s.Slices) {
		r.Failf("core: snapshot has %d L2 slices, system has %d", n, len(s.Slices))
	}
	if r.Err() == nil {
		for _, sl := range s.Slices {
			sl.RestoreFrom(r)
		}
	}
	s.Mem.RestoreFrom(r)
	switch net := s.Net.(type) {
	case *interconnect.Crossbar:
		net.RestoreFrom(r)
	case *interconnect.Ring:
		net.RestoreFrom(r)
	default:
		r.Tag("net-unknown")
	}
	s.Direct.RestoreFrom(r)
	s.DRAM.RestoreFrom(r)
	s.counters.RestoreFrom(r)
	return r.Done()
}
