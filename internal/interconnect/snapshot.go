package interconnect

import (
	"sort"

	"dstore/internal/sim"
	"dstore/internal/snap"
)

// SnapshotTo serialises the link's serialisation cursor and counters.
func (l *Link) SnapshotTo(w *snap.Writer) {
	w.Tag("link")
	w.String(l.name)
	w.I64(int64(l.nextFree))
	l.counters.SnapshotTo(w)
}

// RestoreFrom overwrites the link's state from a snapshot.
func (l *Link) RestoreFrom(r *snap.Reader) {
	r.Tag("link")
	if name := r.String(); r.Err() == nil && name != l.name {
		r.Failf("interconnect %s: snapshot of link %q", l.name, name)
	}
	if r.Err() != nil {
		return
	}
	l.nextFree = sim.Tick(r.I64())
	l.counters.RestoreFrom(r)
}

// snapshotPortMap serialises a port→free-time map with sorted keys so
// the stream is deterministic.
func snapshotPortMap(w *snap.Writer, m map[string]sim.Tick) {
	keys := make([]string, 0, len(m))
	for k := range m { //dstore:allow-maprange keys sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.String(k)
		w.I64(int64(m[k]))
	}
}

func restorePortMap(r *snap.Reader, m map[string]sim.Tick) {
	for k := range m { //dstore:allow-maprange keys sorted below
		delete(m, k)
	}
	n := r.U32()
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		k := r.String()
		t := sim.Tick(r.I64())
		if r.Err() == nil {
			m[k] = t
		}
	}
}

// SnapshotTo serialises per-port arbitration state and counters.
func (x *Crossbar) SnapshotTo(w *snap.Writer) {
	w.Tag("xbar")
	w.String(x.name)
	snapshotPortMap(w, x.inFree)
	snapshotPortMap(w, x.outFree)
	x.counters.SnapshotTo(w)
}

// RestoreFrom overwrites the crossbar's state from a snapshot.
func (x *Crossbar) RestoreFrom(r *snap.Reader) {
	r.Tag("xbar")
	if name := r.String(); r.Err() == nil && name != x.name {
		r.Failf("interconnect %s: snapshot of crossbar %q", x.name, name)
	}
	if r.Err() != nil {
		return
	}
	restorePortMap(r, x.inFree)
	restorePortMap(r, x.outFree)
	x.counters.RestoreFrom(r)
}

// SnapshotTo serialises per-directed-link arbitration state and
// counters.
func (g *Ring) SnapshotTo(w *snap.Writer) {
	w.Tag("ring")
	w.String(g.name)
	w.U32(uint32(len(g.nodes)))
	for i := range g.nodes {
		w.I64(int64(g.cwFree[i]))
		w.I64(int64(g.ccwFree[i]))
	}
	g.counters.SnapshotTo(w)
}

// RestoreFrom overwrites the ring's state from a snapshot taken on a
// ring with the same node count.
func (g *Ring) RestoreFrom(r *snap.Reader) {
	r.Tag("ring")
	if name := r.String(); r.Err() == nil && name != g.name {
		r.Failf("interconnect %s: snapshot of ring %q", g.name, name)
	}
	if n := r.U32(); r.Err() == nil && int(n) != len(g.nodes) {
		r.Failf("interconnect %s: snapshot has %d nodes, ring has %d", g.name, n, len(g.nodes))
	}
	if r.Err() != nil {
		return
	}
	for i := range g.nodes {
		g.cwFree[i] = sim.Tick(r.I64())
		g.ccwFree[i] = sim.Tick(r.I64())
	}
	g.counters.RestoreFrom(r)
}
