package interconnect

import (
	"testing"
	"testing/quick"

	"dstore/internal/sim"
)

func newRing4(e *sim.Engine) *Ring {
	return NewRing(e, "r", []string{"a", "b", "c", "d"}, 5, 0)
}

func TestRingShortestPathHops(t *testing.T) {
	e := sim.NewEngine()
	r := newRing4(e)
	cases := []struct {
		src, dst string
		hops     int
	}{
		{"a", "a", 0}, {"a", "b", 1}, {"a", "c", 2}, {"a", "d", 1},
		{"b", "d", 2}, {"d", "a", 1}, {"c", "a", 2},
	}
	for _, c := range cases {
		if got := r.HopsBetween(c.src, c.dst); got != c.hops {
			t.Errorf("hops %s->%s = %d, want %d", c.src, c.dst, got, c.hops)
		}
	}
}

func TestRingLatencyScalesWithHops(t *testing.T) {
	e := sim.NewEngine()
	r := newRing4(e)
	one := r.Send("a", "b", CtrlMsgBytes, nil)
	e = sim.NewEngine()
	r = newRing4(e)
	two := r.Send("a", "c", CtrlMsgBytes, nil)
	if two != 2*one {
		t.Errorf("2-hop arrival %d, want double the 1-hop %d", two, one)
	}
}

func TestRingDelivery(t *testing.T) {
	e := sim.NewEngine()
	r := newRing4(e)
	var at sim.Tick
	arr := r.Send("a", "c", DataMsgBytes, func(now sim.Tick) { at = now })
	e.Run()
	if at != arr || at == 0 {
		t.Errorf("delivered at %d, Send returned %d", at, arr)
	}
}

func TestRingLinkContention(t *testing.T) {
	// Two messages crossing the same directed link serialise; messages
	// on opposite directions do not.
	e := sim.NewEngine()
	r := NewRing(e, "r", []string{"a", "b", "c", "d"}, 5, 8)
	a1 := r.Send("a", "b", DataMsgBytes, nil) // cw link a->b
	a2 := r.Send("a", "b", DataMsgBytes, nil) // same link: queued
	if a2 <= a1 {
		t.Errorf("same-link messages did not serialise: %d then %d", a1, a2)
	}
	e2 := sim.NewEngine()
	r2 := NewRing(e2, "r", []string{"a", "b", "c", "d"}, 5, 8)
	b1 := r2.Send("a", "b", DataMsgBytes, nil) // cw
	b2 := r2.Send("b", "a", DataMsgBytes, nil) // ccw: independent link
	if b2 != b1 {
		t.Errorf("opposite-direction messages interfered: %d vs %d", b1, b2)
	}
}

func TestRingCounters(t *testing.T) {
	e := sim.NewEngine()
	r := newRing4(e)
	r.Send("a", "c", CtrlMsgBytes, nil) // 2 hops
	r.Send("a", "b", DataMsgBytes, nil) // 1 hop
	if r.TotalMessages() != 2 {
		t.Error("message count wrong")
	}
	if r.TotalBytes() != CtrlMsgBytes+DataMsgBytes {
		t.Error("byte count wrong")
	}
	if r.Counters().Get("hops") != 3 {
		t.Errorf("hops = %d, want 3", r.Counters().Get("hops"))
	}
}

func TestRingPanics(t *testing.T) {
	e := sim.NewEngine()
	for name, fn := range map[string]func(){
		"too-few-nodes": func() { NewRing(e, "x", []string{"a"}, 1, 0) },
		"dup-node":      func() { NewRing(e, "x", []string{"a", "a"}, 1, 0) },
		"zero-size":     func() { newRing4(e).Send("a", "b", 0, nil) },
		"unknown-node":  func() { newRing4(e).Send("a", "z", 8, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRingNodesCopy(t *testing.T) {
	e := sim.NewEngine()
	r := newRing4(e)
	ns := r.Nodes()
	ns[0] = "mutated"
	if r.Nodes()[0] == "mutated" {
		t.Error("Nodes returned live slice")
	}
}

// Property: every message arrives, and arrival is monotone in hop count
// for uncontended sends.
func TestPropertyRingDelivery(t *testing.T) {
	nodes := []string{"n0", "n1", "n2", "n3", "n4", "n5"}
	f := func(pairs []uint8) bool {
		e := sim.NewEngine()
		r := NewRing(e, "p", nodes, 3, 16)
		want := len(pairs)
		got := 0
		for _, p := range pairs {
			src := nodes[int(p)%len(nodes)]
			dst := nodes[int(p>>4)%len(nodes)]
			r.Send(src, dst, CtrlMsgBytes, func(sim.Tick) { got++ })
		}
		e.Run()
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
