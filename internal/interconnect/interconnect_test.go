package interconnect

import (
	"testing"
	"testing/quick"

	"dstore/internal/sim"
)

func TestLinkPureLatency(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, "l", 10, 0)
	var at sim.Tick
	arr := l.Send(CtrlMsgBytes, func(now sim.Tick) { at = now })
	e.Run()
	if arr != 10 || at != 10 {
		t.Errorf("arrival %d/%d, want 10", arr, at)
	}
}

func TestLinkSerialisation(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, "l", 10, 16) // 136B message → 9 ticks occupancy
	arr := l.Send(DataMsgBytes, nil)
	if arr != 9+10 {
		t.Errorf("arrival %d, want 19", arr)
	}
}

func TestLinkBackToBackQueues(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, "l", 5, 8) // ctrl msg → 1 tick occupancy
	a1 := l.Send(CtrlMsgBytes, nil)
	a2 := l.Send(CtrlMsgBytes, nil)
	if a1 != 6 {
		t.Errorf("first arrival %d, want 6", a1)
	}
	if a2 != 7 {
		t.Errorf("second arrival %d, want 7 (queued behind first)", a2)
	}
}

func TestLinkCountsTraffic(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, "l", 1, 0)
	l.Send(CtrlMsgBytes, nil)
	l.Send(DataMsgBytes, nil)
	if l.Counters().Get("messages") != 2 {
		t.Error("message count wrong")
	}
	if l.Counters().Get("bytes") != CtrlMsgBytes+DataMsgBytes {
		t.Error("byte count wrong")
	}
}

func TestLinkZeroSizePanics(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, "l", 1, 0)
	defer func() {
		if recover() == nil {
			t.Error("zero-size send did not panic")
		}
	}()
	l.Send(0, nil)
}

func TestCrossbarLatency(t *testing.T) {
	e := sim.NewEngine()
	x := NewCrossbar(e, "x", 12, 0)
	var at sim.Tick
	x.Send("a", "b", CtrlMsgBytes, func(now sim.Tick) { at = now })
	e.Run()
	if at != 12 {
		t.Errorf("arrival %d, want 12", at)
	}
}

func TestCrossbarDistinctPortsOverlap(t *testing.T) {
	e := sim.NewEngine()
	x := NewCrossbar(e, "x", 4, 8) // ctrl → 1 tick occupancy
	a1 := x.Send("a", "b", CtrlMsgBytes, nil)
	a2 := x.Send("c", "d", CtrlMsgBytes, nil)
	if a1 != a2 {
		t.Errorf("independent port pairs should overlap: %d vs %d", a1, a2)
	}
}

func TestCrossbarSharedOutputSerialises(t *testing.T) {
	e := sim.NewEngine()
	x := NewCrossbar(e, "x", 4, 8)
	a1 := x.Send("a", "mem", CtrlMsgBytes, nil)
	a2 := x.Send("b", "mem", CtrlMsgBytes, nil)
	if a2 <= a1 {
		t.Errorf("same destination should serialise: %d then %d", a1, a2)
	}
}

func TestCrossbarSharedInputSerialises(t *testing.T) {
	e := sim.NewEngine()
	x := NewCrossbar(e, "x", 4, 8)
	a1 := x.Send("cpu", "a", CtrlMsgBytes, nil)
	a2 := x.Send("cpu", "b", CtrlMsgBytes, nil)
	if a2 <= a1 {
		t.Errorf("same source should serialise: %d then %d", a1, a2)
	}
}

func TestCrossbarTrafficTotals(t *testing.T) {
	e := sim.NewEngine()
	x := NewCrossbar(e, "x", 1, 0)
	x.Send("a", "b", DataMsgBytes, nil)
	x.Send("a", "b", CtrlMsgBytes, nil)
	if x.TotalMessages() != 2 || x.TotalBytes() != DataMsgBytes+CtrlMsgBytes {
		t.Errorf("totals msgs=%d bytes=%d", x.TotalMessages(), x.TotalBytes())
	}
}

func TestSerialisationRounding(t *testing.T) {
	if serialisation(1, 16) != 1 {
		t.Error("1B over 16B/t should take 1 tick")
	}
	if serialisation(16, 16) != 1 {
		t.Error("16B over 16B/t should take 1 tick")
	}
	if serialisation(17, 16) != 2 {
		t.Error("17B over 16B/t should take 2 ticks")
	}
	if serialisation(1000, 0) != 0 {
		t.Error("infinite bandwidth should have zero occupancy")
	}
}

// Property: arrivals on one link are non-decreasing and each is at least
// latency after its send.
func TestPropertyLinkArrivalOrdering(t *testing.T) {
	f := func(sizes []uint8) bool {
		e := sim.NewEngine()
		l := NewLink(e, "p", 7, 4)
		var last sim.Tick
		for _, s := range sizes {
			size := int(s)%200 + 1
			arr := l.Send(size, nil)
			if arr < e.Now()+7 {
				return false
			}
			if arr < last {
				return false
			}
			last = arr
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: crossbar conserves message and byte counts.
func TestPropertyCrossbarConservation(t *testing.T) {
	f := func(sizes []uint8) bool {
		e := sim.NewEngine()
		x := NewCrossbar(e, "p", 2, 8)
		var wantBytes uint64
		for i, s := range sizes {
			size := int(s)%300 + 1
			src := string(rune('a' + i%3))
			dst := string(rune('x' + i%2))
			x.Send(src, dst, size, nil)
			wantBytes += uint64(size)
		}
		return x.TotalMessages() == uint64(len(sizes)) && x.TotalBytes() == wantBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
