package interconnect

import (
	"fmt"

	"dstore/internal/sim"
	"dstore/internal/stats"
)

// Network is the interface the coherence layer sends messages over;
// both the crossbar and the ring satisfy it.
type Network interface {
	Name() string
	// Send transmits size bytes from src to dst, invoking deliver at
	// arrival, and returns the arrival tick.
	Send(src, dst string, size int, deliver func(now sim.Tick)) sim.Tick
	// SendArg is the allocation-free variant: fn(arg, arrival) fires at
	// arrival, letting hot senders pass a static function plus a pooled
	// argument instead of a fresh closure per message.
	SendArg(src, dst string, size int, fn func(arg any, now sim.Tick), arg any) sim.Tick
	Counters() *stats.Set
	TotalBytes() uint64
	TotalMessages() uint64
}

var (
	_ Network = (*Crossbar)(nil)
	_ Network = (*Ring)(nil)
)

// Ring is a bidirectional ring of named nodes: messages take the
// shorter direction, occupying each directed link along the path for
// their serialisation time and paying the hop latency per link —
// the on-chip topology many real LLC interconnects use.
type Ring struct {
	name         string
	engine       *sim.Engine
	nodes        []string
	index        map[string]int
	hopLat       sim.Tick
	bytesPerTick int
	// cwFree[i] guards the clockwise link i→i+1; ccwFree[i] guards the
	// counter-clockwise link i→i-1.
	cwFree  []sim.Tick
	ccwFree []sim.Tick

	counters *stats.Set
	messages *stats.Counter
	bytes    *stats.Counter
	hops     *stats.Counter
}

// NewRing builds a ring over the named nodes in the given cyclic order.
func NewRing(engine *sim.Engine, name string, nodes []string, hopLat sim.Tick, bytesPerTick int) *Ring {
	if len(nodes) < 2 {
		panic(fmt.Sprintf("interconnect %s: a ring needs at least 2 nodes", name))
	}
	r := &Ring{
		name:         name,
		engine:       engine,
		nodes:        append([]string(nil), nodes...),
		index:        make(map[string]int, len(nodes)),
		hopLat:       hopLat,
		bytesPerTick: bytesPerTick,
		cwFree:       make([]sim.Tick, len(nodes)),
		ccwFree:      make([]sim.Tick, len(nodes)),
		counters:     stats.NewSet(),
	}
	for i, n := range nodes {
		if _, dup := r.index[n]; dup {
			panic(fmt.Sprintf("interconnect %s: duplicate ring node %q", name, n))
		}
		r.index[n] = i
	}
	r.messages = r.counters.Counter("messages")
	r.bytes = r.counters.Counter("bytes")
	r.hops = r.counters.Counter("hops")
	return r
}

// Name returns the ring's name.
func (r *Ring) Name() string { return r.name }

// Counters exposes messages/bytes/hops counters.
func (r *Ring) Counters() *stats.Set { return r.counters }

// TotalBytes returns all bytes ever sent.
func (r *Ring) TotalBytes() uint64 { return r.bytes.Value() }

// TotalMessages returns all messages ever sent.
func (r *Ring) TotalMessages() uint64 { return r.messages.Value() }

// Nodes returns the ring order (copy).
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// HopsBetween returns the number of links a message between the two
// nodes traverses (shortest direction).
func (r *Ring) HopsBetween(src, dst string) int {
	i, j, n := r.index[src], r.index[dst], len(r.nodes)
	cw := (j - i + n) % n
	ccw := (i - j + n) % n
	if cw <= ccw {
		return cw
	}
	return ccw
}

// Send routes size bytes from src to dst the shorter way around.
func (r *Ring) Send(src, dst string, size int, deliver func(now sim.Tick)) sim.Tick {
	t := r.reserve(src, dst, size)
	if deliver != nil {
		r.engine.ScheduleTickAt(t, deliver)
	}
	return t
}

// SendArg routes size bytes from src to dst and fires fn(arg, arrival)
// at arrival without allocating a delivery closure.
func (r *Ring) SendArg(src, dst string, size int, fn func(arg any, now sim.Tick), arg any) sim.Tick {
	t := r.reserve(src, dst, size)
	if fn != nil {
		r.engine.ScheduleArgAt(t, fn, arg)
	}
	return t
}

// reserve walks the path's directed links, booking each for the
// message's serialisation time, and returns the arrival tick.
func (r *Ring) reserve(src, dst string, size int) sim.Tick {
	if size <= 0 {
		panic(fmt.Sprintf("interconnect %s: non-positive message size %d", r.name, size))
	}
	i, okSrc := r.index[src]
	j, okDst := r.index[dst]
	if !okSrc || !okDst {
		panic(fmt.Sprintf("interconnect %s: unknown node in %s->%s", r.name, src, dst))
	}
	n := len(r.nodes)
	cw := (j - i + n) % n
	ccw := (i - j + n) % n
	clockwise := cw <= ccw
	hopsLeft := cw
	if !clockwise {
		hopsLeft = ccw
	}

	occ := serialisation(size, r.bytesPerTick)
	t := r.engine.Now()
	at := i
	for h := 0; h < hopsLeft; h++ {
		var free *sim.Tick
		if clockwise {
			free = &r.cwFree[at]
			at = (at + 1) % n
		} else {
			free = &r.ccwFree[at]
			at = (at - 1 + n) % n
		}
		start := t
		if *free > start {
			start = *free
		}
		*free = start + occ
		t = start + occ + r.hopLat
	}
	// Same-node delivery still pays one hop of latency (local port).
	if hopsLeft == 0 {
		t += r.hopLat
	}

	r.messages.Inc()
	r.bytes.Add(uint64(size))
	r.hops.Add(uint64(hopsLeft))
	return t
}
