// Package interconnect models the on-chip networks: point-to-point
// links with latency and serialisation bandwidth, and a crossbar with
// per-port arbitration. The direct-store proposal adds one dedicated
// link from the CPU L1 controller to the GPU L2 (paper §III-G); the
// baseline CCSM traffic rides the shared crossbar.
//
// Links carry closures rather than typed messages: the coherence layer
// owns message semantics, the network owns timing. Every transfer is
// counted (messages and bytes) so experiments can report coherence
// traffic.
package interconnect

import (
	"fmt"

	"dstore/internal/sim"
	"dstore/internal/stats"
)

// Standard simulated message sizes in bytes: a control message is a
// header; a data message is a header plus one cache line.
const (
	CtrlMsgBytes = 8
	DataMsgBytes = 8 + 128
)

// DirectPort is the send-side interface of a point-to-point channel.
// *Link is the real implementation; fault-injection wrappers (the chaos
// layer) satisfy it too, so the coherence layer's direct-store path can
// be wrapped without knowing about faults.
type DirectPort interface {
	Name() string
	// Send transmits size bytes and invokes deliver at arrival,
	// returning the arrival tick.
	Send(size int, deliver func(now sim.Tick)) sim.Tick
	// SendArg is the allocation-free variant: fn(arg, arrival) fires at
	// arrival. Hot senders pass a static function and a pooled argument
	// instead of capturing state in a fresh closure per message.
	SendArg(size int, fn func(arg any, now sim.Tick), arg any) sim.Tick
	Counters() *stats.Set
}

var _ DirectPort = (*Link)(nil)

// Link is a unidirectional point-to-point channel with a fixed
// propagation latency and a serialisation bandwidth. Sends that overlap
// queue behind each other.
type Link struct {
	name         string
	engine       *sim.Engine
	latency      sim.Tick
	bytesPerTick int
	nextFree     sim.Tick

	counters *stats.Set
	messages *stats.Counter
	bytes    *stats.Counter
}

// NewLink builds a link. bytesPerTick <= 0 means infinite bandwidth
// (pure latency).
func NewLink(engine *sim.Engine, name string, latency sim.Tick, bytesPerTick int) *Link {
	l := &Link{
		name:         name,
		engine:       engine,
		latency:      latency,
		bytesPerTick: bytesPerTick,
		counters:     stats.NewSet(),
	}
	l.messages = l.counters.Counter("messages")
	l.bytes = l.counters.Counter("bytes")
	return l
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Counters exposes messages/bytes counters.
func (l *Link) Counters() *stats.Set { return l.counters }

// serialisation returns the bus occupancy of a message of size bytes.
func serialisation(size, bytesPerTick int) sim.Tick {
	if bytesPerTick <= 0 {
		return 0
	}
	return sim.Tick((size + bytesPerTick - 1) / bytesPerTick)
}

// reserve books the serialisation slot for a message and returns its
// arrival tick.
func (l *Link) reserve(size int) sim.Tick {
	if size <= 0 {
		panic(fmt.Sprintf("interconnect %s: non-positive message size %d", l.name, size))
	}
	start := l.engine.Now()
	if l.nextFree > start {
		start = l.nextFree
	}
	occ := serialisation(size, l.bytesPerTick)
	l.nextFree = start + occ
	l.messages.Inc()
	l.bytes.Add(uint64(size))
	return start + occ + l.latency
}

// Send transmits size bytes and invokes deliver at arrival. It returns
// the arrival tick.
func (l *Link) Send(size int, deliver func(now sim.Tick)) sim.Tick {
	arrival := l.reserve(size)
	if deliver != nil {
		l.engine.ScheduleTickAt(arrival, deliver)
	}
	return arrival
}

// SendArg transmits size bytes and fires fn(arg, arrival) at arrival
// without allocating a delivery closure.
func (l *Link) SendArg(size int, fn func(arg any, now sim.Tick), arg any) sim.Tick {
	arrival := l.reserve(size)
	if fn != nil {
		l.engine.ScheduleArgAt(arrival, fn, arg)
	}
	return arrival
}

// Crossbar connects named ports with per-input and per-output
// arbitration: a message occupies its source's injection port and its
// destination's ejection port for its serialisation time.
type Crossbar struct {
	name         string
	engine       *sim.Engine
	latency      sim.Tick
	bytesPerTick int
	inFree       map[string]sim.Tick
	outFree      map[string]sim.Tick

	counters *stats.Set
	messages *stats.Counter
	bytes    *stats.Counter
}

// NewCrossbar builds a crossbar with the given hop latency and per-port
// bandwidth.
func NewCrossbar(engine *sim.Engine, name string, latency sim.Tick, bytesPerTick int) *Crossbar {
	x := &Crossbar{
		name:         name,
		engine:       engine,
		latency:      latency,
		bytesPerTick: bytesPerTick,
		inFree:       make(map[string]sim.Tick),
		outFree:      make(map[string]sim.Tick),
		counters:     stats.NewSet(),
	}
	x.messages = x.counters.Counter("messages")
	x.bytes = x.counters.Counter("bytes")
	return x
}

// Name returns the crossbar's name.
func (x *Crossbar) Name() string { return x.name }

// Counters exposes messages/bytes counters.
func (x *Crossbar) Counters() *stats.Set { return x.counters }

// reserve arbitrates the injection and ejection ports for a message and
// returns its arrival tick.
func (x *Crossbar) reserve(src, dst string, size int) sim.Tick {
	if size <= 0 {
		panic(fmt.Sprintf("interconnect %s: non-positive message size %d", x.name, size))
	}
	start := x.engine.Now()
	if t := x.inFree[src]; t > start {
		start = t
	}
	if t := x.outFree[dst]; t > start {
		start = t
	}
	occ := serialisation(size, x.bytesPerTick)
	busyUntil := start + occ
	x.inFree[src] = busyUntil
	x.outFree[dst] = busyUntil
	x.messages.Inc()
	x.bytes.Add(uint64(size))
	return busyUntil + x.latency
}

// Send transmits size bytes from port src to port dst, invoking deliver
// at arrival, and returns the arrival tick.
func (x *Crossbar) Send(src, dst string, size int, deliver func(now sim.Tick)) sim.Tick {
	arrival := x.reserve(src, dst, size)
	if deliver != nil {
		x.engine.ScheduleTickAt(arrival, deliver)
	}
	return arrival
}

// SendArg transmits size bytes from src to dst and fires fn(arg,
// arrival) at arrival without allocating a delivery closure.
func (x *Crossbar) SendArg(src, dst string, size int, fn func(arg any, now sim.Tick), arg any) sim.Tick {
	arrival := x.reserve(src, dst, size)
	if fn != nil {
		x.engine.ScheduleArgAt(arrival, fn, arg)
	}
	return arrival
}

// TotalBytes returns all bytes ever sent through the crossbar.
func (x *Crossbar) TotalBytes() uint64 { return x.bytes.Value() }

// TotalMessages returns all messages ever sent through the crossbar.
func (x *Crossbar) TotalMessages() uint64 { return x.messages.Value() }
