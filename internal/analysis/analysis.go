// Package analysis is a small, dependency-free static-analysis
// framework in the shape of golang.org/x/tools/go/analysis: analyzers
// receive a type-checked package and report position-tagged
// diagnostics. It exists because the repo's headline guarantees —
// byte-identical transcripts per (seed, profile) and the
// content-addressed result cache — are determinism contracts that unit
// tests can only sample; the analyzers in this package enforce them at
// compile time over the whole tree.
//
// Escape hatches are explicit annotations in the source:
//
//	//dstore:allow-wallclock <why>   — wall-clock read is intentional
//	//dstore:allow-rand <why>        — nondeterministic rand is intentional
//	//dstore:allow-maprange <why>    — map iteration order cannot escape
//	//dstore:allow-statskey <why>    — dynamic stats counter key
//	//dstore:allow-reentry <why>     — callback re-enters the engine
//	//dstore:allow-loopcapture <why> — loop-variable capture is intended
//	//dstore:allow-alloc <why>       — hot-path allocation is intentional
//	//dstore:allow-unhandled <why>   — declared table row with no handler arm
//	//dstore:allow-undeclared <why>  — Transition call outside the declared table
//	//dstore:allow-uncovered <why>   — declared table row the model checker
//	                                   provably cannot reach
//	//dstore:allow-spanleak <why>    — trace span intentionally left open
//
// An annotation applies to the line it sits on or the line directly
// below it, so both trailing and preceding comment styles work. The
// justification text is required by convention (reviewed, not parsed).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: an analyzer name, a position and a
// message.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Applies reports whether the analyzer runs on a package. Nil
	// means every package.
	Applies func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	report func(Diagnostic)
	// allowed maps file:line to the set of allow-directives present on
	// that line.
	allowed map[string]map[int]map[string]bool
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether a //dstore:allow-<what> annotation covers
// pos: on the same line or on the line directly above.
func (p *Pass) Allowed(pos token.Pos, what string) bool {
	at := p.Pkg.Fset.Position(pos)
	lines := p.allowed[at.Filename]
	if lines == nil {
		return false
	}
	return lines[at.Line][what] || lines[at.Line-1][what]
}

// directivePrefix introduces an escape-hatch annotation.
const directivePrefix = "dstore:allow-"

// collectAllowances indexes every //dstore:allow-* comment by file and
// line.
func collectAllowances(pkg *Package) map[string]map[int]map[string]bool {
	out := make(map[string]map[int]map[string]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				what := strings.TrimPrefix(text, directivePrefix)
				if i := strings.IndexAny(what, " \t"); i >= 0 {
					what = what[:i]
				}
				at := pkg.Fset.Position(c.Pos())
				lines := out[at.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					out[at.Filename] = lines
				}
				set := lines[at.Line]
				if set == nil {
					set = make(map[string]bool)
					lines[at.Line] = set
				}
				set[what] = true
			}
		}
	}
	return out
}

// Run loads the packages matched by patterns (rooted at dir; empty dir
// means the current directory) and applies every analyzer to every
// package it covers. Diagnostics come back sorted by position.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allowed := collectAllowances(pkg)
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.PkgPath) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				allowed:  allowed,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// funcOf resolves a call expression's callee to a *types.Func, or nil.
func (p *Pass) funcOf(call *ast.CallExpr) *funcRef {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if obj, ok := p.Pkg.Info.Uses[fun.Sel]; ok {
			return newFuncRef(obj)
		}
	case *ast.Ident:
		if obj, ok := p.Pkg.Info.Uses[fun]; ok {
			return newFuncRef(obj)
		}
	}
	return nil
}
