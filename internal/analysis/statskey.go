package analysis

import (
	"go/ast"
	"strconv"

	"dstore/internal/stats"
)

// statsPkg is the package whose Set methods define counter keys.
const statsPkg = "dstore/internal/stats"

// StatsKey checks every string-literal key passed to
// (*stats.Set).Counter or (*stats.Set).Get against the registry in
// internal/stats/registry.go. A key outside the registry is a typo or
// a one-off: either way it would report zero forever (Get) or create
// an orphan counter no table knows about (Counter). Dynamic keys need
// a //dstore:allow-statskey annotation.
var StatsKey = &Analyzer{
	Name: "statskey",
	Doc:  "flag stats counter keys missing from the internal/stats registry",
	Run:  runStatsKey,
}

func runStatsKey(pass *Pass) error {
	if pass.Pkg.PkgPath == statsPkg {
		// The registry and Set implementation themselves are exempt.
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			ref := pass.funcOf(call)
			if !ref.isMethod(statsPkg, "Set", "Counter") && !ref.isMethod(statsPkg, "Set", "Get") {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				if !pass.Allowed(call.Pos(), "statskey") {
					pass.Reportf(call.Pos(), "dynamic stats counter key passed to Set.%s; "+
						"use a registered literal or annotate //dstore:allow-statskey <why>", ref.Name)
				}
				return true
			}
			key, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !stats.KnownKey(key) && !pass.Allowed(call.Pos(), "statskey") {
				pass.Reportf(lit.Pos(), "unknown stats counter key %q: fix the typo or register "+
					"it in internal/stats/registry.go%s", key, nearestKeyHint(key))
			}
			return true
		})
	}
	return nil
}

// nearestKeyHint suggests a registered key that looks like a typo of
// key (shared prefix of at least half the length), or "".
func nearestKeyHint(key string) string {
	best := ""
	for _, k := range stats.KnownKeys() {
		n := commonPrefix(k, key)
		if n*2 >= len(key) && n*2 >= len(k) && (best == "" || n > commonPrefix(best, key)) {
			best = k
		}
	}
	if best == "" {
		return ""
	}
	return " (did you mean " + strconv.Quote(best) + "?)"
}

func commonPrefix(a, b string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}
