package analysis

import (
	"strings"
	"testing"
)

// all is the production analyzer set, in the order dstore-lint runs
// them.
func all() []*Analyzer {
	return []*Analyzer{Determinism, StatsKey, EventSafety, AllocFree, Tablecover, SpanBalance}
}

// TestFixtureViolations loads the seeded-violation fixture by its
// explicit import path (wildcards skip testdata, so the production
// lint run never sees it) and checks that every analyzer catches its
// seeded violation — and that every annotated twin is suppressed,
// which the exact-count assertion enforces.
func TestFixtureViolations(t *testing.T) {
	diags, err := Run("", []string{"dstore/internal/analysis/testdata/src/fixture"}, all())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []struct {
		analyzer string
		line     int
		substr   string
	}{
		{"determinism", 10, "import of math/rand"},
		{"determinism", 20, "time.Now in deterministic package"},
		{"determinism", 38, "range over map in deterministic package"},
		{"statskey", 51, `unknown stats counter key "hitz"`},
		{"statskey", 57, "dynamic stats counter key passed to Set.Get"},
		{"statskey", 103, `unknown stats counter key "requests_getz"`},
		{"eventsafety", 71, "event callback calls Engine.Step"},
		{"eventsafety", 88, `event callback captures loop variable "i"`},
		{"allocfree", 115, "map allocation in hot-path package"},
		{"allocfree", 116, "map literal in hot-path package"},
		{"allocfree", 126, "new(FakeMsg) allocates a message"},
		{"allocfree", 127, "&FakeMsg{} allocates a message"},
		{"spanbalance", 143, "span from Recorder.Begin is discarded"},
		{"spanbalance", 150, "span from Recorder.Begin is discarded"},
		{"spanbalance", 156, `span "sp" is begun but never Ended`},
	}
	if len(diags) != len(want) {
		t.Errorf("got %d diagnostics, want %d:", len(diags), len(want))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
	for _, w := range want {
		found := false
		for _, d := range diags {
			if d.Analyzer == w.analyzer && d.Pos.Line == w.line && strings.Contains(d.Message, w.substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing %s diagnostic at fixture.go:%d containing %q", w.analyzer, w.line, w.substr)
		}
	}

	// The typo hints must point at the registered neighbours.
	for _, d := range diags {
		if strings.Contains(d.Message, `"hitz"`) && !strings.Contains(d.Message, `did you mean "hits"`) {
			t.Errorf("statskey diagnostic lacks typo hint: %s", d)
		}
		if strings.Contains(d.Message, `"requests_getz"`) && !strings.Contains(d.Message, `did you mean "requests_gets"`) {
			t.Errorf("statskey diagnostic lacks typo hint: %s", d)
		}
	}
}

// TestTablecoverFixture loads the tablecover fixture — a miniature
// protocol package with one seeded violation per rule (unhandled
// declared row, undeclared handler arm, dead transition) plus an
// annotated twin for each escape hatch — and checks every seed is
// caught and every twin suppressed.
func TestTablecoverFixture(t *testing.T) {
	diags, err := Run("", []string{"dstore/internal/analysis/testdata/src/tablecover"}, all())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []struct {
		file   string
		line   int
		substr string
	}{
		{"ctrl.go", 37, "covers no declared table row (possible states I, events EvStore)"},
		{"table.go", 63, "declared transition (S, EvEvict) never fires"},
		{"table.go", 67, "declared transition (I, EvPush) has no handler arm"},
	}
	if len(diags) != len(want) {
		t.Errorf("got %d diagnostics, want %d:", len(diags), len(want))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
	for _, w := range want {
		found := false
		for _, d := range diags {
			if d.Analyzer == "tablecover" && strings.HasSuffix(d.Pos.Filename, w.file) &&
				d.Pos.Line == w.line && strings.Contains(d.Message, w.substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing tablecover diagnostic at %s:%d containing %q", w.file, w.line, w.substr)
		}
	}
}

// TestAppliesScoping checks the package filters: examples/ are exempt
// from the determinism contract, internal packages and commands are
// not — but commands sit in the entry-point tier (wall clock allowed,
// randomness and map-range still checked).
func TestAppliesScoping(t *testing.T) {
	cases := []struct {
		pkg        string
		want       bool
		entryPoint bool
	}{
		{"dstore", true, false},
		{"dstore/internal/sim", true, false},
		{"dstore/internal/fleet", true, false},
		{"dstore/internal/store", true, false},
		{"dstore/internal/analysis/testdata/src/fixture", true, false},
		{"dstore/cmd/dstore-lint", true, true},
		{"dstore/cmd/dstore-modelcheck", true, true},
		{"dstore/examples/bench", false, false},
		{"other/internal/sim", false, false},
	}
	for _, c := range cases {
		if got := isDeterministicPkg(c.pkg); got != c.want {
			t.Errorf("isDeterministicPkg(%q) = %v, want %v", c.pkg, got, c.want)
		}
		if got := isEntryPointPkg(c.pkg); got != c.entryPoint {
			t.Errorf("isEntryPointPkg(%q) = %v, want %v", c.pkg, got, c.entryPoint)
		}
	}
}

// TestTreeClean runs the full analyzer set over the whole repo — the
// same check `dstore-lint ./...` performs — and wants zero findings.
// Skipped in -short mode: it type-checks every package.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole tree")
	}
	diags, err := Run("../..", []string{"./..."}, all())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}
