package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// allocFreePackages are the hot-path packages under the steady-state
// zero-allocation contract: the event kernel, the cache arrays and the
// coherence protocol. Every map the hot path consults was converted to
// a dense line-indexed table, and every per-message allocation to a
// pooled packet — a new map or message allocation creeping in undoes
// the conversion silently, visible only as B/op drift in benchmarks.
// The fixture package rides along so the analyzer's own tests can seed
// violations.
var allocFreePackages = map[string]bool{
	"dstore/internal/sim":                           true,
	"dstore/internal/cache":                         true,
	"dstore/internal/coherence":                     true,
	"dstore/internal/analysis/testdata/src/fixture": true,
}

// AllocFree flags allocation on the coherence hot path: map creation
// (make or literal) and message-type allocation (new(T), &T{}) outside
// construction functions. Constructors — functions named New*/new* or
// init, where building the dense tables and pools is the job — are
// exempt. Cold paths that legitimately allocate (snapshot restore,
// pool refill) carry a //dstore:allow-alloc <why> annotation.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc: "forbid map allocation and message-type allocation in hot-path " +
		"packages outside constructors",
	Applies: func(pkgPath string) bool { return allocFreePackages[pkgPath] },
	Run:     runAllocFree,
}

// isConstructorName reports whether a function is a construction
// context: allocation there happens once per component, not per event.
func isConstructorName(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") || name == "init"
}

// isMessageType reports whether t is a protocol message or packet
// type: a named struct whose name ends in "Msg" (ReqMsg, PutxMsg, ...)
// or is the pooled packet carrier itself.
func isMessageType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return false
	}
	name := named.Obj().Name()
	return strings.HasSuffix(name, "Msg") || name == "pkt"
}

func runAllocFree(pass *Pass) error {
	info := pass.Pkg.Info
	// isBuiltin reports whether an identifier in call position resolves
	// to the predeclared builtin (not a shadowing local).
	isBuiltin := func(id *ast.Ident, name string) bool {
		if id.Name != name {
			return false
		}
		obj, ok := info.Uses[id]
		if !ok {
			return false
		}
		_, builtin := obj.(*types.Builtin)
		return builtin
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isConstructorName(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					// Closures inherit the enclosing function's context;
					// a constructor's helper closure was skipped with it.
					return true
				case *ast.CallExpr:
					id, ok := n.Fun.(*ast.Ident)
					if !ok {
						return true
					}
					if isBuiltin(id, "make") && len(n.Args) > 0 {
						if _, isMap := info.TypeOf(n).Underlying().(*types.Map); isMap && !pass.Allowed(n.Pos(), "alloc") {
							pass.Reportf(n.Pos(), "map allocation in hot-path package outside a constructor: "+
								"use a dense line-indexed table "+
								"(or annotate //dstore:allow-alloc <why> for cold paths)")
						}
					}
					if isBuiltin(id, "new") && len(n.Args) == 1 {
						if t := info.TypeOf(n.Args[0]); t != nil && isMessageType(t) && !pass.Allowed(n.Pos(), "alloc") {
							pass.Reportf(n.Pos(), "new(%s) allocates a message in a hot-path package: "+
								"draw from the packet pool "+
								"(or annotate //dstore:allow-alloc <why> for cold paths)", typeName(t))
						}
					}
				case *ast.CompositeLit:
					t := info.TypeOf(n)
					if t == nil {
						return true
					}
					if _, isMap := t.Underlying().(*types.Map); isMap && !pass.Allowed(n.Pos(), "alloc") {
						pass.Reportf(n.Pos(), "map literal in hot-path package outside a constructor: "+
							"use a dense line-indexed table "+
							"(or annotate //dstore:allow-alloc <why> for cold paths)")
					}
				case *ast.UnaryExpr:
					// &MsgType{...}: the address forces the message to the
					// heap when it escapes into the engine.
					lit, ok := n.X.(*ast.CompositeLit)
					if n.Op.String() != "&" || !ok {
						return true
					}
					if t := info.TypeOf(lit); t != nil && isMessageType(t) && !pass.Allowed(n.Pos(), "alloc") {
						pass.Reportf(n.Pos(), "&%s{} allocates a message in a hot-path package: "+
							"draw from the packet pool "+
							"(or annotate //dstore:allow-alloc <why> for cold paths)", typeName(t))
					}
				}
				return true
			})
		}
	}
	return nil
}

// typeName renders a type's bare name for diagnostics.
func typeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
