package tablecover

// Load handles demand loads: constant event, dynamic state.
func Load(st State) bool {
	return Transition(st, EvLoad).OK
}

// Store handles stores.
func Store(st State) bool {
	return Transition(st, EvStore).OK
}

// Probe handles probes through the ProbeEvent helper: the analyzer
// resolves the call to {EvProbe, EvProbeInv}.
func Probe(st State, inv bool) State {
	out := Transition(st, ProbeEvent(inv))
	if !out.OK {
		return st
	}
	return out.Next
}

// Fill handles fills through a FillEvent-assigned variable.
func Fill(st State, grant State) bool {
	ev, ok := FillEvent(grant)
	return ok && Transition(st, ev).OK
}

// Evict handles evictions.
func Evict(st State) bool {
	return Transition(st, EvEvict).OK
}

// BadStore is the seeded undeclared-transition violation: the table
// declares no (I, EvStore) row, so this arm can never be taken.
func BadStore() bool {
	return Transition(I, EvStore).OK
}

// BadLoadAllowed is the annotated twin: (I, EvLoad) is equally
// undeclared, but the escape hatch suppresses the finding.
func BadLoadAllowed() bool {
	return Transition(I, EvLoad).OK //dstore:allow-undeclared fixture: annotated twin
}
