// Package tablecover is the seeded-violation fixture for the
// tablecover analyzer: a miniature protocol package in the shape of
// internal/coherence (a table.go populating `var table` through a set
// helper, a ctrl.go consulting it through Transition) that seeds
// exactly one violation per rule — a declared row with no handler arm,
// a handler arm for an undeclared row, and a declared row absent from
// the reachability dump — plus an annotated twin for each escape
// hatch. Loaded only by the analysis unit tests (wildcards skip
// testdata).
package tablecover

// State mirrors the coherence package's alias form deliberately: the
// analyzer must resolve state constants by value, not by named type.
type State = uint8

// Event enumerates the fixture's stimuli.
type Event uint8

// States.
const (
	I State = iota
	S
	M
)

// NumStates is the number of states.
const NumStates = 3

// Events.
const (
	EvLoad Event = iota
	EvStore
	EvProbe
	EvProbeInv
	EvFill
	EvEvict
	EvPush
	NumEvents
)

// Outcome is one table cell.
type Outcome struct {
	OK   bool
	Next State
}

// table[state][event]. Zero value is "illegal".
var table = func() [NumStates][NumEvents]Outcome {
	var t [NumStates][NumEvents]Outcome
	set := func(st State, ev Event, o Outcome) {
		o.OK = true
		t[st][ev] = o
	}
	for _, st := range []State{S, M} {
		set(st, EvLoad, Outcome{Next: st})
		set(st, EvProbe, Outcome{Next: S})
		set(st, EvProbeInv, Outcome{Next: I})
	}
	set(M, EvStore, Outcome{Next: M})
	set(I, EvFill, Outcome{Next: S})
	// Seeded dead transition: declared and handled, but absent from
	// testdata/reachability.json.
	set(S, EvEvict, Outcome{Next: I})
	set(M, EvEvict, Outcome{Next: I}) //dstore:allow-uncovered fixture: annotated twin
	// Seeded unhandled transition: declared, but no ctrl.go arm
	// consults EvPush.
	set(I, EvPush, Outcome{Next: M})
	set(M, EvPush, Outcome{Next: M}) //dstore:allow-unhandled fixture: annotated twin
	return t
}()

// Transition returns the table cell for (st, ev).
func Transition(st State, ev Event) Outcome {
	if int(st) >= NumStates || ev >= NumEvents {
		return Outcome{}
	}
	return table[st][ev]
}

// ProbeEvent maps an invalidating flag to its probe event — the
// helper-call form of event resolution.
func ProbeEvent(inv bool) Event {
	if inv {
		return EvProbeInv
	}
	return EvProbe
}

// FillEvent maps a grant to its fill event — the assigned-variable
// form of event resolution.
func FillEvent(grant State) (Event, bool) {
	if grant == S {
		return EvFill, true
	}
	return EvFill, false
}
