// Package fixture seeds exactly one violation per analyzer rule, plus
// an annotated twin for each escape hatch. The analysis unit tests
// load this package by its explicit import path (go list's `./...`
// wildcard skips testdata directories, so `dstore-lint ./...` never
// sees it) and assert that every seeded violation — and nothing else —
// is reported.
package fixture

import (
	"math/rand"
	"time"

	"dstore/internal/obs/dtrace"
	"dstore/internal/sim"
	"dstore/internal/stats"
)

// WallClock reads the wall clock: determinism finding.
func WallClock() time.Time {
	return time.Now()
}

// WallClockAllowed is the annotated twin: no finding.
func WallClockAllowed() time.Time {
	return time.Now() //dstore:allow-wallclock fixture: annotated twin
}

// Random uses the flagged math/rand import (the import declaration
// itself is the determinism finding, not this call).
func Random() int {
	return rand.Int()
}

// MapRange iterates a map without sorting: determinism finding on the
// first loop; the second is annotated and clean.
func MapRange(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	//dstore:allow-maprange fixture: order folds into a commutative sum
	for _, v := range m {
		total += v
	}
	return total
}

// BadKey passes an unregistered literal key: statskey finding with a
// did-you-mean hint ("hitz" ~ "hits").
func BadKey(s *stats.Set) {
	s.Counter("hitz").Inc()
}

// DynamicKey passes a non-literal key: statskey finding on the first
// call; the second is annotated and clean.
func DynamicKey(s *stats.Set, name string) uint64 {
	v := s.Get(name)
	v += s.Get(name) //dstore:allow-statskey fixture: annotated twin
	return v
}

// GoodKey uses a registered literal key: no finding.
func GoodKey(s *stats.Set) {
	s.Counter("hits").Inc()
}

// Reenter schedules a callback that re-enters the run loop:
// eventsafety finding.
func Reenter(eng *sim.Engine) {
	eng.Schedule(1, func() {
		eng.Step()
	})
}

// ReenterAllowed is the annotated twin: no finding.
func ReenterAllowed(eng *sim.Engine) {
	eng.Schedule(1, func() {
		eng.Step() //dstore:allow-reentry fixture: annotated twin
	})
}

// LoopCapture schedules callbacks from inside a loop: the first loop
// captures the loop variable directly (eventsafety finding), the
// second rebinds it first (clean).
func LoopCapture(eng *sim.Engine, xs []int) {
	for i := range xs {
		eng.Schedule(1, func() {
			_ = i
		})
	}
	for i := range xs {
		i := i
		eng.Schedule(1, func() {
			_ = i
		})
	}
}

// BadKeyTyped passes a typo of one of the per-type memory-controller
// request keys: statskey finding with a did-you-mean hint
// ("requests_getz" ~ "requests_gets").
func BadKeyTyped(s *stats.Set) {
	s.Counter("requests_getz").Inc()
}

// FakeMsg looks like a protocol message type to the allocfree
// analyzer (named struct, "Msg" suffix).
type FakeMsg struct {
	Addr uint64
}

// HotMap allocates a map outside a constructor: allocfree finding on
// the make, another on the literal; the annotated twin is clean.
func HotMap() map[uint64]int {
	m := make(map[uint64]int)
	_ = map[string]bool{"x": true}
	m2 := make(map[uint64]int) //dstore:allow-alloc fixture: annotated twin
	_ = m2
	return m
}

// HotMsg allocates messages on the heap outside a constructor:
// allocfree findings on new and on the address-of literal; the
// annotated twin is clean.
func HotMsg() *FakeMsg {
	a := new(FakeMsg)
	b := &FakeMsg{Addr: 1}
	_ = b
	c := &FakeMsg{Addr: 2} //dstore:allow-alloc fixture: annotated twin
	_ = c
	return a
}

// NewTable is a constructor: map and message allocation here is the
// job, no finding.
func NewTable() (map[uint64]int, *FakeMsg) {
	return make(map[uint64]int), &FakeMsg{}
}

// SpanDiscard throws away the span Begin returns: spanbalance finding
// on the first call; the annotated twin is clean.
func SpanDiscard(r *dtrace.Recorder) {
	r.Begin(1, dtrace.SpanSimulate, 0, 0)
	r.Begin(1, dtrace.SpanSimulate, 0, 0) //dstore:allow-spanleak fixture: annotated twin
}

// SpanBlank binds the span to the blank identifier — just a fancier
// discard: spanbalance finding.
func SpanBlank(r *dtrace.Recorder) {
	_ = r.Begin(1, dtrace.SpanSimulate, 0, 0)
}

// SpanNeverEnded binds the span but never calls End: spanbalance
// finding.
func SpanNeverEnded(r *dtrace.Recorder) {
	sp := r.Begin(1, dtrace.SpanSimulate, 0, 0)
	_ = sp
}

// SpanBalanced ends its span (in a deferred closure, which the
// whole-body search must see): no finding.
func SpanBalanced(r *dtrace.Recorder) {
	sp := r.Begin(1, dtrace.SpanSimulate, 0, 0)
	defer func() { sp.End(0) }()
}
