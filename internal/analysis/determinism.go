package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// DeterministicPackages lists the import-path prefixes whose code must
// be a pure function of its inputs: the simulator core and everything
// it feeds. The serve daemon is included — its job bookkeeping
// legitimately reads the wall clock, but each such read must carry a
// //dstore:allow-wallclock annotation so nothing new sneaks into the
// result-producing paths (the content-addressed cache depends on
// byte-identical results). Commands (cmd/) carry the weaker
// entry-point tier — see isEntryPointPkg.
var DeterministicPackages = []string{
	"dstore",
	"dstore/internal/",
	"dstore/cmd/",
}

// isDeterministicPkg reports whether pkgPath falls under the
// determinism contract: an exact match for entries without a trailing
// slash, a prefix match for entries with one. examples/ are exempt:
// they are demonstration scaffolding whose output is not part of a
// simulation transcript.
func isDeterministicPkg(pkgPath string) bool {
	for _, p := range DeterministicPackages {
		if strings.HasSuffix(p, "/") {
			if strings.HasPrefix(pkgPath, p) {
				return true
			}
		} else if pkgPath == p {
			return true
		}
	}
	return false
}

// isEntryPointPkg reports whether pkgPath is a process entry point
// (cmd/). Entry points keep the randomness and map-iteration rules —
// a CLI whose output order or content varies per run is a real bug —
// but are exempt from the wall-clock rule: timing output and progress
// reporting are their job, and annotating every timer would bury the
// signal.
func isEntryPointPkg(pkgPath string) bool {
	return strings.HasPrefix(pkgPath, "dstore/cmd/")
}

// wallClockFuncs are the time-package functions that read the wall
// clock or create timers driven by it.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// nondetImports are packages whose presence in deterministic code is a
// finding by itself: randomness must come from sim.Rand, which is
// seeded and replayable.
var nondetImports = map[string]string{
	"math/rand":    "unseeded/global randomness; use sim.Rand (seeded SplitMix64) instead",
	"math/rand/v2": "unseeded/global randomness; use sim.Rand (seeded SplitMix64) instead",
	"crypto/rand":  "nondeterministic entropy source; use sim.Rand (seeded SplitMix64) instead",
}

// Determinism forbids wall-clock reads, nondeterministic randomness
// and unordered map iteration inside the deterministic packages.
// Escape hatches: //dstore:allow-wallclock, //dstore:allow-rand,
// //dstore:allow-maprange.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall clock, unseeded randomness and map-iteration " +
		"order dependence in simulation packages",
	Applies: isDeterministicPkg,
	Run:     runDeterminism,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, bad := nondetImports[path]; bad && !pass.Allowed(imp.Pos(), "rand") {
				pass.Reportf(imp.Pos(), "import of %s in deterministic package: %s "+
					"(or annotate //dstore:allow-rand <why>)", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				ref := pass.funcOf(n)
				if ref != nil && ref.Recv == "" && ref.PkgPath == "time" && wallClockFuncs[ref.Name] {
					if !isEntryPointPkg(pass.Pkg.PkgPath) && !pass.Allowed(n.Pos(), "wallclock") {
						pass.Reportf(n.Pos(), "time.%s in deterministic package: simulation "+
							"results must not depend on the wall clock "+
							"(annotate //dstore:allow-wallclock <why> if this never reaches a result)", ref.Name)
					}
				}
			case *ast.RangeStmt:
				t := pass.Pkg.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					if !pass.Allowed(n.Pos(), "maprange") {
						pass.Reportf(n.Pos(), "range over map in deterministic package: iteration "+
							"order is randomized per run; sort the keys first "+
							"(or annotate //dstore:allow-maprange <why> if order cannot escape)")
					}
				}
			}
			return true
		})
	}
	return nil
}
