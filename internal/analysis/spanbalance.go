package analysis

import "go/ast"

// dtracePkg is the package whose Recorder hands out spans.
const dtracePkg = "dstore/internal/obs/dtrace"

// SpanBalance checks that every span opened with
// (*dtrace.Recorder).Begin can be — and, within its function, is —
// closed with ActiveSpan.End. A Begin whose result is discarded (an
// expression statement or a blank assignment) leaks an open span: the
// recorder's open-span invariant drifts and the span never reaches
// the ring. A Begin bound to a variable that has no .End call
// anywhere in the enclosing function (deferred closures included —
// the whole body is searched) is flagged the same way. The check is
// name-based within one function body, so a span that legitimately
// escapes (returned, passed along, stored) is out of scope by
// construction: those are not discards. Intentional leaks need a
// //dstore:allow-spanleak annotation.
var SpanBalance = &Analyzer{
	Name: "spanbalance",
	Doc:  "flag dtrace spans that are begun but can never be ended",
	Run:  runSpanBalance,
}

func runSpanBalance(pass *Pass) error {
	if pass.Pkg.PkgPath == dtracePkg {
		// The recorder's own implementation and tests juggle raw spans.
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpanBalance(pass, fd.Body)
		}
	}
	return nil
}

// isBeginCall reports whether call is (*dtrace.Recorder).Begin.
func isBeginCall(pass *Pass, call *ast.CallExpr) bool {
	ref := pass.funcOf(call)
	return ref.isMethod(dtracePkg, "Recorder", "Begin")
}

// checkSpanBalance inspects one function body: collect every
// identifier that has .End called on it (anywhere in the body,
// nested closures included), then flag Begin results that are
// discarded or bound to a never-Ended identifier.
func checkSpanBalance(pass *Pass, body *ast.BlockStmt) {
	ended := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			ended[id.Name] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok && isBeginCall(pass, call) {
				if !pass.Allowed(call.Pos(), "spanleak") {
					pass.Reportf(call.Pos(), "span from Recorder.Begin is discarded and can never be Ended; "+
						"bind it and call End, or annotate //dstore:allow-spanleak <why>")
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBeginCall(pass, call) || i >= len(st.Lhs) {
					continue
				}
				id, ok := st.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if pass.Allowed(call.Pos(), "spanleak") {
					continue
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "span from Recorder.Begin is discarded and can never be Ended; "+
						"bind it and call End, or annotate //dstore:allow-spanleak <why>")
				} else if !ended[id.Name] {
					pass.Reportf(call.Pos(), "span %q is begun but never Ended in this function; "+
						"call %s.End, or annotate //dstore:allow-spanleak <why>", id.Name, id.Name)
				}
			}
		}
		return true
	})
}
