package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Tablecover cross-checks a protocol transition table against its
// runtime consumers. It applies to any package shaped like
// internal/coherence: a table.go declaring `var table` via a
// function-literal initializer that populates cells through a local
// set(state, event, outcome) helper, and controller files named
// ctrl.go / memctrl.go that consult the table through the package's
// Transition function. Three checks:
//
//  1. unhandled — a declared (state, event) row no Transition call
//     site in ctrl.go/memctrl.go can ever consult. The controllers
//     would panic (or silently no-op) if the protocol fired it.
//     Escape hatch: //dstore:allow-unhandled.
//  2. undeclared — a Transition call site whose possible (state,
//     event) pairs are all illegal in the table: the arm exists but
//     the protocol can never take it. Escape hatch:
//     //dstore:allow-undeclared.
//  3. dead — a declared row the model checker's exhaustive sweep
//     never fired, per testdata/reachability.json (regenerate with
//     `make reachability`). Declared-but-unreachable rows are either
//     defensive totality (annotate //dstore:allow-uncovered with the
//     argument why the configuration cannot occur) or dead protocol
//     surface that drifted from the implementation.
//
// Call-site argument sets are resolved statically: a constant argument
// is a singleton; a call to a same-package helper that returns Event
// constants (ProbeEvent, PushEvent, FillEvent) contributes exactly the
// constants its return statements mention; a local variable assigned
// from such a helper inherits its set; anything else is conservatively
// every state or every event. The dead check is skipped when the
// package has no testdata/reachability.json.
var Tablecover = &Analyzer{
	Name: "tablecover",
	Doc: "cross-check protocol-table declarations against controller " +
		"handler arms and the model checker's reachability dump",
	Run: runTablecover,
}

// tcPair is one (state, event) coordinate.
type tcPair struct{ st, ev int64 }

// tcDecl is one declared table row: where its set(...) call is and the
// source names of its coordinates.
type tcDecl struct {
	pos    token.Pos
	stName string
	evName string
}

// tcSite is one Transition call site with its resolved argument sets.
type tcSite struct {
	pos    token.Pos
	states []int64
	events []int64
}

func runTablecover(pass *Pass) error {
	tc := &tablecover{pass: pass, declared: make(map[tcPair]tcDecl)}
	if !tc.findTable() {
		return nil // not a protocol-table package
	}
	if err := tc.interpretTable(); err != nil {
		return err
	}
	var ok bool
	if tc.numStates, ok = tc.scopeConst("NumStates"); !ok {
		return fmt.Errorf("tablecover: package %s declares a transition table but no NumStates constant", pass.Pkg.PkgPath)
	}
	if tc.numEvents, ok = tc.scopeConst("NumEvents"); !ok {
		return fmt.Errorf("tablecover: package %s declares a transition table but no NumEvents constant", pass.Pkg.PkgPath)
	}
	tc.scanHandlers()
	reach, haveReach, err := tc.loadReachability()
	if err != nil {
		return err
	}

	// Deterministic report order: table rows in (state, event) order,
	// then call sites in position order (Run sorts again globally).
	pairs := make([]tcPair, 0, len(tc.declared))
	for p := range tc.declared { //dstore:allow-maprange sorted immediately below
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].st != pairs[j].st {
			return pairs[i].st < pairs[j].st
		}
		return pairs[i].ev < pairs[j].ev
	})

	for _, p := range pairs {
		d := tc.declared[p]
		if !tc.handled(p) && !pass.Allowed(d.pos, "unhandled") {
			pass.Reportf(d.pos, "declared transition (%s, %s) has no handler arm: no Transition call in ctrl.go/memctrl.go can consult it; add a handler or annotate //dstore:allow-unhandled <why>",
				d.stName, d.evName)
		}
		if haveReach && !reach[p] && !pass.Allowed(d.pos, "uncovered") {
			pass.Reportf(d.pos, "declared transition (%s, %s) never fires in the model checker's reachability dump; regenerate with `make reachability` or annotate //dstore:allow-uncovered <why>",
				d.stName, d.evName)
		}
	}
	for _, site := range tc.sites {
		if tc.anyDeclared(site) || pass.Allowed(site.pos, "undeclared") {
			continue
		}
		pass.Reportf(site.pos, "Transition call site covers no declared table row (possible states %s, events %s); the table declares none of these transitions — remove the arm or declare the row, or annotate //dstore:allow-undeclared <why>",
			tc.stateSetString(site.states), tc.eventSetString(site.events))
	}
	return nil
}

// tablecover is the per-package analysis state.
type tablecover struct {
	pass      *Pass
	setObj    types.Object // the table initializer's local set helper
	tableLit  *ast.FuncLit // the table's function-literal initializer
	declared  map[tcPair]tcDecl
	sites     []tcSite
	numStates int64
	numEvents int64
	// stNames / evNames map values back to the identifiers the table
	// declaration used, for diagnostics.
	stNames map[int64]string
	evNames map[int64]string
}

// findTable locates `var table = func() ... { ... }()` in a file named
// table.go and the set helper defined inside it. Returns false when
// the package has no such declaration.
func (tc *tablecover) findTable() bool {
	for _, f := range tc.pass.Pkg.Files {
		if filepath.Base(tc.pass.Pkg.Fset.Position(f.Pos()).Filename) != "table.go" {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "table" || len(vs.Values) != 1 {
					continue
				}
				call, ok := vs.Values[0].(*ast.CallExpr)
				if !ok {
					continue
				}
				lit, ok := call.Fun.(*ast.FuncLit)
				if !ok {
					continue
				}
				tc.tableLit = lit
			}
		}
	}
	if tc.tableLit == nil {
		return false
	}
	// The set helper: the first function literal bound by a := inside
	// the initializer that takes three parameters.
	for _, stmt := range tc.tableLit.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			continue
		}
		fl, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok || fl.Type.Params.NumFields() != 3 {
			continue
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			tc.setObj = tc.pass.Pkg.Info.Defs[id]
		}
	}
	return tc.setObj != nil
}

// interpretTable executes the initializer abstractly: plain set calls
// record one cell, range loops over constant composite literals bind
// the loop variable to each element in turn. Any set call the
// interpreter cannot evaluate is an error — silently skipping one
// would turn into a false "undeclared" finding at a handler site.
func (tc *tablecover) interpretTable() error {
	tc.stNames = make(map[int64]string)
	tc.evNames = make(map[int64]string)
	env := make(map[types.Object]int64)
	names := make(map[types.Object]string)
	return tc.walkStmts(tc.tableLit.Body.List, env, names)
}

func (tc *tablecover) walkStmts(stmts []ast.Stmt, env map[types.Object]int64, names map[types.Object]string) error {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || tc.pass.Pkg.Info.Uses[id] != tc.setObj {
				continue
			}
			if len(call.Args) != 3 {
				return tc.errAt(call.Pos(), "set call with %d args", len(call.Args))
			}
			st, stName, err := tc.evalConst(call.Args[0], env, names)
			if err != nil {
				return err
			}
			ev, evName, err := tc.evalConst(call.Args[1], env, names)
			if err != nil {
				return err
			}
			tc.declared[tcPair{st, ev}] = tcDecl{pos: call.Pos(), stName: stName, evName: evName}
			tc.stNames[st] = stName
			tc.evNames[ev] = evName
		case *ast.RangeStmt:
			lit, ok := s.X.(*ast.CompositeLit)
			if !ok {
				return tc.errAt(s.Pos(), "range over non-literal in table initializer")
			}
			id, ok := s.Value.(*ast.Ident)
			if !ok {
				return tc.errAt(s.Pos(), "range without a value variable in table initializer")
			}
			obj := tc.pass.Pkg.Info.Defs[id]
			for _, elem := range lit.Elts {
				v, name, err := tc.evalConst(elem, env, names)
				if err != nil {
					return err
				}
				env[obj], names[obj] = v, name
				if err := tc.walkStmts(s.Body.List, env, names); err != nil {
					return err
				}
			}
			delete(env, obj)
			delete(names, obj)
		case *ast.AssignStmt, *ast.DeclStmt, *ast.ReturnStmt:
			// set definition, var t declaration, return t.
		default:
			// A table builder using statements this interpreter does not
			// model (conditionals, function calls populating cells) must
			// fail loudly rather than under-report declared rows.
			bad := false
			ast.Inspect(stmt, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && tc.pass.Pkg.Info.Uses[id] == tc.setObj {
					bad = true
				}
				return !bad
			})
			if bad {
				return tc.errAt(stmt.Pos(), "set call inside a statement the tablecover interpreter does not model")
			}
		}
	}
	return nil
}

// evalConst resolves an expression to an integer value and a display
// name: typed or untyped constants directly, range-bound loop
// variables through the environment.
func (tc *tablecover) evalConst(expr ast.Expr, env map[types.Object]int64, names map[types.Object]string) (int64, string, error) {
	if tv, ok := tc.pass.Pkg.Info.Types[expr]; ok && tv.Value != nil {
		v, ok := constant.Int64Val(constant.ToInt(tv.Value))
		if !ok {
			return 0, "", tc.errAt(expr.Pos(), "non-integer constant in table initializer")
		}
		if id, isIdent := expr.(*ast.Ident); isIdent {
			return v, id.Name, nil
		}
		return v, fmt.Sprint(v), nil
	}
	if id, ok := expr.(*ast.Ident); ok {
		if obj := tc.pass.Pkg.Info.Uses[id]; obj != nil {
			if v, bound := env[obj]; bound {
				return v, names[obj], nil
			}
		}
	}
	return 0, "", tc.errAt(expr.Pos(), "cannot evaluate %s in table initializer", types.ExprString(expr))
}

func (tc *tablecover) errAt(pos token.Pos, format string, args ...any) error {
	return fmt.Errorf("tablecover: %s: %s", tc.pass.Pkg.Fset.Position(pos), fmt.Sprintf(format, args...))
}

// scopeConst resolves a package-scope integer constant by name.
func (tc *tablecover) scopeConst(name string) (int64, bool) {
	c, ok := tc.pass.Pkg.Types.Scope().Lookup(name).(*types.Const)
	if !ok {
		return 0, false
	}
	v, ok := constant.Int64Val(constant.ToInt(c.Val()))
	return v, ok
}

// scanHandlers records every Transition call site in ctrl.go and
// memctrl.go with its resolved argument sets.
func (tc *tablecover) scanHandlers() {
	for _, f := range tc.pass.Pkg.Files {
		base := filepath.Base(tc.pass.Pkg.Fset.Position(f.Pos()).Filename)
		if base != "ctrl.go" && base != "memctrl.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			if ref := tc.pass.funcOf(call); !ref.is(tc.pass.Pkg.PkgPath, "Transition") {
				return true
			}
			tc.sites = append(tc.sites, tcSite{
				pos:    call.Pos(),
				states: tc.resolveArg(call.Args[0], f, tc.numStates, false),
				events: tc.resolveArg(call.Args[1], f, tc.numEvents, true),
			})
			return true
		})
	}
}

// resolveArg computes the set of values an argument can take: a
// constant is a singleton; for event arguments, a helper call (or a
// variable assigned from one) contributes the constants the helper
// returns; anything else is every value below limit.
func (tc *tablecover) resolveArg(expr ast.Expr, file *ast.File, limit int64, isEvent bool) []int64 {
	if tv, ok := tc.pass.Pkg.Info.Types[expr]; ok && tv.Value != nil {
		if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
			return []int64{v}
		}
	}
	if isEvent {
		if call, ok := expr.(*ast.CallExpr); ok {
			if vs := tc.helperEvents(call); vs != nil {
				return vs
			}
		}
		if id, ok := expr.(*ast.Ident); ok {
			if vs := tc.assignedEvents(id, file); vs != nil {
				return vs
			}
		}
	}
	all := make([]int64, limit)
	for i := range all {
		all[i] = int64(i)
	}
	return all
}

// helperEvents resolves a call to a same-package function whose
// signature includes an Event result: the set of Event constants its
// return statements can produce. Returns nil when the callee is not
// such a helper or a return value is not constant.
func (tc *tablecover) helperEvents(call *ast.CallExpr) []int64 {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil
	}
	fn, ok := tc.pass.Pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != tc.pass.Pkg.PkgPath {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	idx := -1
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok && named.Obj().Name() == "Event" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == tc.pass.Pkg.PkgPath {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	var decl *ast.FuncDecl
	for _, f := range tc.pass.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && tc.pass.Pkg.Info.Defs[fd.Name] == fn {
				decl = fd
			}
		}
	}
	if decl == nil || decl.Body == nil {
		return nil
	}
	seen := make(map[int64]bool)
	var out []int64
	complete := true
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) <= idx {
			complete = false // naked return
			return true
		}
		tv, ok := tc.pass.Pkg.Info.Types[ret.Results[idx]]
		if !ok || tv.Value == nil {
			complete = false
			return true
		}
		if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	if !complete {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// assignedEvents resolves a local variable's possible events from the
// helper calls assigned to it anywhere in the file. A variable with at
// least one non-helper assignment is unknown (nil).
func (tc *tablecover) assignedEvents(id *ast.Ident, file *ast.File) []int64 {
	obj := tc.pass.Pkg.Info.Uses[id]
	if obj == nil {
		return nil
	}
	seen := make(map[int64]bool)
	var out []int64
	known := true
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		mine := false
		for _, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if tc.pass.Pkg.Info.Defs[lid] == obj || tc.pass.Pkg.Info.Uses[lid] == obj {
				mine = true
			}
		}
		if !mine {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			known = false
			return true
		}
		vs := tc.helperEvents(call)
		if vs == nil {
			known = false
			return true
		}
		for _, v := range vs {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		return true
	})
	if !known || len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// handled reports whether any call site covers the pair.
func (tc *tablecover) handled(p tcPair) bool {
	for _, site := range tc.sites {
		if containsInt(site.states, p.st) && containsInt(site.events, p.ev) {
			return true
		}
	}
	return false
}

// anyDeclared reports whether a call site can hit at least one
// declared row. Controllers routinely consult the table for pairs
// whose legality they branch on (out.OK), so a site is suspect only
// when its whole product is undeclared.
func (tc *tablecover) anyDeclared(site tcSite) bool {
	for _, st := range site.states {
		for _, ev := range site.events {
			if _, ok := tc.declared[tcPair{st, ev}]; ok {
				return true
			}
		}
	}
	return false
}

func containsInt(xs []int64, v int64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func (tc *tablecover) stateSetString(vs []int64) string {
	return tc.setString(vs, tc.stNames, tc.numStates, "state")
}
func (tc *tablecover) eventSetString(vs []int64) string {
	return tc.setString(vs, tc.evNames, tc.numEvents, "event")
}

func (tc *tablecover) setString(vs []int64, names map[int64]string, limit int64, kind string) string {
	if int64(len(vs)) == limit {
		return "any"
	}
	parts := make([]string, len(vs))
	for i, v := range vs {
		if n, ok := names[v]; ok {
			parts[i] = n
		} else {
			parts[i] = fmt.Sprintf("%s(%d)", kind, v)
		}
	}
	return strings.Join(parts, ", ")
}

// reachabilityFile mirrors the dstore-modelcheck -coverage output.
type reachabilityFile struct {
	Pairs []struct {
		State string `json:"state"`
		Event string `json:"event"`
	} `json:"pairs"`
}

// loadReachability reads testdata/reachability.json next to the
// package and resolves its identifier names against the package scope.
// A missing file skips the dead-transition check.
func (tc *tablecover) loadReachability() (map[tcPair]bool, bool, error) {
	path := filepath.Join(tc.pass.Pkg.Dir, "testdata", "reachability.json")
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("tablecover: %w", err)
	}
	var doc reachabilityFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, false, fmt.Errorf("tablecover: %s: %w", path, err)
	}
	reach := make(map[tcPair]bool, len(doc.Pairs))
	for _, p := range doc.Pairs {
		st, ok := tc.scopeConst(p.State)
		if !ok {
			return nil, false, fmt.Errorf("tablecover: %s: unknown state constant %q", path, p.State)
		}
		ev, ok := tc.scopeConst(p.Event)
		if !ok {
			return nil, false, fmt.Errorf("tablecover: %s: unknown event constant %q", path, p.Event)
		}
		reach[tcPair{st, ev}] = true
	}
	return reach, true, nil
}
