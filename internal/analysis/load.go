package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns with the go tool, type-checks every matched
// package against compiler export data, and returns them ready for
// analysis. It uses only the standard library: `go list -export`
// produces export data for all dependencies, and go/importer's gc
// reader consumes it through a lookup function — no golang.org/x/tools
// dependency.
//
// Test files are deliberately excluded (go list GoFiles): tests may
// use wall clocks and unseeded randomness freely.
func Load(dir string, patterns []string) ([]*Package, error) {
	roots, err := goList(dir, append([]string{"-find"}, patterns...))
	if err != nil {
		return nil, err
	}
	rootSet := make(map[string]bool)
	for _, r := range roots {
		rootSet[r.ImportPath] = true
	}

	// One -deps walk produces export data for every package in the
	// closure (the go tool builds anything stale as a side effect).
	all, err := goList(dir, append([]string{"-export", "-deps"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range all {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range all {
		if !rootSet[p.ImportPath] || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: load %s: %s", p.ImportPath, p.Error.Err)
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Uses:       make(map[*ast.Ident]types.Object),
			Defs:       make(map[*ast.Ident]types.Object),
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-check %s: %w", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: p.ImportPath,
			Dir:     p.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return pkgs, nil
}

// goList runs `go list -json <args>` in dir and decodes the package
// stream.
func goList(dir string, args []string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s",
			strings.Join(args, " "), err, errb.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// funcRef is a resolved callee: enough identity to match "time.Now"
// or "(*dstore/internal/stats.Set).Counter" without importing the
// target packages.
type funcRef struct {
	PkgPath string // declaring package import path
	Name    string // function or method name
	Recv    string // receiver type name ("" for plain functions)
}

func newFuncRef(obj types.Object) *funcRef {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	ref := &funcRef{PkgPath: fn.Pkg().Path(), Name: fn.Name()}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		// Both concrete and interface receivers resolve through the
		// named type (interconnect.Network's Send lands here too).
		if named, ok := t.(*types.Named); ok {
			ref.Recv = named.Obj().Name()
		}
	}
	return ref
}

// is reports whether the callee is pkgPath.name (plain function) —
// recv must be empty.
func (f *funcRef) is(pkgPath, name string) bool {
	return f != nil && f.Recv == "" && f.PkgPath == pkgPath && f.Name == name
}

// isMethod reports whether the callee is a method recv.name declared
// in pkgPath.
func (f *funcRef) isMethod(pkgPath, recv, name string) bool {
	return f != nil && f.PkgPath == pkgPath && f.Recv == recv && f.Name == name
}
