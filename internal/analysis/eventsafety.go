package analysis

import (
	"go/ast"
	"go/types"
)

// Scheduling APIs whose final function argument becomes a deferred
// event callback: it runs at a later tick, long after the enclosing
// statement finished.
var callbackSinks = []struct {
	pkg, recv, name string
}{
	{"dstore/internal/sim", "Engine", "Schedule"},
	{"dstore/internal/sim", "Engine", "ScheduleAt"},
	{"dstore/internal/interconnect", "Network", "Send"},
	{"dstore/internal/interconnect", "DirectPort", "Send"},
}

// Engine methods that drive the event loop. Calling one from inside an
// event callback re-enters the dispatcher that is currently executing
// the callback: events fire out of order or the loop livelocks.
var engineLoopFuncs = map[string]bool{
	"Run": true, "RunFor": true, "RunUntil": true,
	"RunInterruptible": true, "Step": true,
}

// EventSafety inspects function literals passed as event callbacks to
// the engine or the interconnect and flags (a) calls that re-enter the
// engine's run loop and (b) captures of enclosing loop variables that
// are not explicitly rebound. The repo convention is `x := x` before
// the callback: the capture survives backports to pre-1.22 loop
// semantics and makes the callback's inputs visible at the call site.
// Escape hatches: //dstore:allow-reentry, //dstore:allow-loopcapture.
var EventSafety = &Analyzer{
	Name:    "eventsafety",
	Doc:     "flag event callbacks that re-enter the engine or capture loop variables",
	Applies: isDeterministicPkg,
	Run:     runEventSafety,
}

func runEventSafety(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		// loopVars maps the objects declared by each for/range
		// statement to that statement, so a capture can name its loop.
		loopVars := collectLoopVars(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			ref := pass.funcOf(call)
			if !isCallbackSink(ref) {
				return true
			}
			lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok {
				return true
			}
			checkCallback(pass, lit, loopVars)
			return true
		})
	}
	return nil
}

func isCallbackSink(ref *funcRef) bool {
	for _, s := range callbackSinks {
		if ref.isMethod(s.pkg, s.recv, s.name) {
			return true
		}
	}
	return false
}

// collectLoopVars indexes every loop-declared variable object in the
// file along with its loop statement's span.
func collectLoopVars(pass *Pass, f *ast.File) map[types.Object]ast.Node {
	out := make(map[types.Object]ast.Node)
	record := func(loop ast.Node, id *ast.Ident) {
		if id == nil || id.Name == "_" {
			return
		}
		if obj := pass.Pkg.Info.Defs[id]; obj != nil {
			out[obj] = loop
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if id, ok := n.Key.(*ast.Ident); ok {
				record(n, id)
			}
			if id, ok := n.Value.(*ast.Ident); ok {
				record(n, id)
			}
		case *ast.ForStmt:
			if assign, ok := n.Init.(*ast.AssignStmt); ok {
				for _, lhs := range assign.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(n, id)
					}
				}
			}
		}
		return true
	})
	return out
}

// checkCallback inspects one deferred callback body.
func checkCallback(pass *Pass, lit *ast.FuncLit, loopVars map[types.Object]ast.Node) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			ref := pass.funcOf(n)
			if ref.isMethodIn("dstore/internal/sim", "Engine") && engineLoopFuncs[ref.Name] {
				if !pass.Allowed(n.Pos(), "reentry") {
					pass.Reportf(n.Pos(), "event callback calls Engine.%s: callbacks must not "+
						"re-enter the run loop (schedule follow-up events instead, or "+
						"annotate //dstore:allow-reentry <why>)", ref.Name)
				}
			}
		case *ast.Ident:
			obj := pass.Pkg.Info.Uses[n]
			if obj == nil {
				return true
			}
			loop, isLoopVar := loopVars[obj]
			if !isLoopVar {
				return true
			}
			// Only a capture counts: the callback must sit inside the
			// loop that declared the variable (a use after rebinding
			// resolves to the shadow object, not the loop variable).
			if lit.Pos() > loop.Pos() && lit.End() <= loop.End() {
				if !pass.Allowed(n.Pos(), "loopcapture") {
					pass.Reportf(n.Pos(), "event callback captures loop variable %q: rebind it "+
						"(%s := %s) before the callback so the captured value is explicit "+
						"(or annotate //dstore:allow-loopcapture <why>)", n.Name, n.Name, n.Name)
				}
			}
		}
		return true
	})
}

// isMethodIn reports whether the callee is any method of pkgPath.recv.
func (f *funcRef) isMethodIn(pkgPath, recv string) bool {
	return f != nil && f.PkgPath == pkgPath && f.Recv == recv
}
