package sim

import "testing"

// The engine microbenchmarks cover the three event-queue shapes the
// simulator actually produces:
//
//   - FutureMix: schedules at spread-out future ticks (DRAM, link and
//     pipeline latencies) — the classic heap workload.
//   - ZeroDelay: Schedule(0, fn) chains — the dominant pattern in the
//     coherence controller's same-tick message hops, served by the
//     FIFO fast path.
//   - Mixed: an 80/20 zero-delay/future blend approximating a full
//     benchmark run.
//
// Run with -benchmem: the whole point of the concrete event queue is
// zero allocations per schedule/step beyond slice growth.

func BenchmarkScheduleStepFutureMix(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	// Pre-warm the queue so steady-state behaviour dominates.
	for i := 0; i < 1024; i++ {
		e.Schedule(Tick(i%97+1), func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Tick(i%97+1), func() {})
		e.Step()
	}
}

func BenchmarkScheduleStepZeroDelay(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(0, fn)
		e.Step()
	}
}

func BenchmarkZeroDelayChain(b *testing.B) {
	// Each outer iteration runs a 64-hop zero-delay chain, the shape of
	// a coherence transaction bouncing between controllers in one tick.
	b.ReportAllocs()
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hops := 0
		var hop func()
		hop = func() {
			hops++
			if hops < 64 {
				e.Schedule(0, hop)
			}
		}
		e.Schedule(1, hop)
		e.Run()
	}
}

func BenchmarkScheduleStepMixed(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 256; i++ {
		e.Schedule(Tick(i%31+1), fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%5 == 0 {
			e.Schedule(Tick(i%31+1), fn)
		} else {
			e.Schedule(0, fn)
		}
		e.Step()
	}
}

func BenchmarkRunDrain(b *testing.B) {
	// Fill-then-drain: the queue grows to 4096 events and empties, the
	// pattern of a kernel issuing a wavefront of memory operations. The
	// per-op bytes here are fresh-engine construction plus first-cycle
	// arena growth; BenchmarkRunDrainSteady is the same workload on the
	// simulator's actual hot path (one long-lived engine).
	b.ReportAllocs()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := NewEngine()
		b.StartTimer()
		for j := 0; j < 4096; j++ {
			e.Schedule(Tick(j%251), fn)
		}
		e.Run()
	}
}

func BenchmarkRunDrainSteady(b *testing.B) {
	// BenchmarkRunDrain with the engine reused across iterations — the
	// shape of a real simulation, where one engine serves hundreds of
	// millions of events. Must report 0 B/op: nodes recycle through the
	// freelist and the FIFO backing array is reused, so after the first
	// cycle grows the arena nothing ever reaches the allocator.
	b.ReportAllocs()
	fn := func() {}
	e := NewEngine()
	for j := 0; j < 4096; j++ {
		e.Schedule(Tick(j%251), fn)
	}
	e.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 4096; j++ {
			e.Schedule(Tick(j%251), fn)
		}
		e.Run()
	}
}
