package sim

// Rand is a small, fast, deterministic pseudo-random source
// (SplitMix64). The simulator cannot use time-seeded randomness: every
// benchmark run must be exactly reproducible so that paper-figure
// regeneration is stable. SplitMix64 passes BigCrush for this state size
// and is more than adequate for workload-pattern generation.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Distinct seeds give
// independent streams for practical purposes.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
