package sim

import "testing"

// TestRunInterruptibleNilStopEqualsRun checks a nil stop function is
// exactly Run: same final tick, same executed-event count.
func TestRunInterruptibleNilStopEqualsRun(t *testing.T) {
	build := func() *Engine {
		e := NewEngine()
		var reschedule func()
		n := 0
		reschedule = func() {
			n++
			if n < 1000 {
				e.Schedule(3, reschedule)
			}
		}
		e.Schedule(1, reschedule)
		return e
	}
	ref := build()
	refTick := ref.Run()

	e := build()
	tick, drained := e.RunInterruptible(nil)
	if !drained {
		t.Fatal("nil-stop run did not drain")
	}
	if tick != refTick || e.Executed() != ref.Executed() {
		t.Fatalf("interruptible run diverged: tick %d vs %d, executed %d vs %d",
			tick, refTick, e.Executed(), ref.Executed())
	}
}

// TestRunInterruptibleNeverStoppedEqualsRun checks that a stop
// function that always reports false leaves the event sequence
// untouched.
func TestRunInterruptibleNeverStoppedEqualsRun(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Tick(10-i), func() { order = append(order, i) })
	}
	polls := 0
	tick, drained := e.RunInterruptible(func() bool { polls++; return false })
	if !drained {
		t.Fatal("never-stopped run did not drain")
	}
	if tick != 10 {
		t.Fatalf("final tick = %d, want 10", tick)
	}
	for i, got := range order {
		if got != 9-i {
			t.Fatalf("event order perturbed: %v", order)
		}
	}
}

// TestRunInterruptibleStops checks that a self-perpetuating event
// chain — which Run would spin on forever — is cut off at a stop poll
// with events still pending.
func TestRunInterruptibleStops(t *testing.T) {
	e := NewEngine()
	var perpetual func()
	perpetual = func() { e.Schedule(1, perpetual) }
	e.Schedule(1, perpetual)

	stops := 0
	_, drained := e.RunInterruptible(func() bool {
		stops++
		return stops >= 2
	})
	if drained {
		t.Fatal("perpetual chain reported drained")
	}
	if stops != 2 {
		t.Fatalf("stop polled %d times, want 2", stops)
	}
	if e.Pending() == 0 {
		t.Fatal("no events pending after interrupt")
	}
	// The engine polled every stopCheckEvents events.
	if want := uint64(2 * stopCheckEvents); e.Executed() != want {
		t.Fatalf("executed %d events before stopping, want %d", e.Executed(), want)
	}
}
