package sim

import (
	"container/heap"
	"testing"
)

// refEngine is the original container/heap event queue, kept verbatim as
// the ordering oracle for the concrete 4-ary heap + same-tick FIFO
// engine: both must execute any schedule in identical (tick,
// insertion-order) order.
type refEngine struct {
	now    Tick
	events refHeap
	seq    uint64
}

type refHeap []event

func (h refHeap) Len() int { return len(h) }

func (h refHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *refHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return ev
}

func (e *refEngine) Now() Tick { return e.now }

func (e *refEngine) Schedule(delay Tick, fn func()) {
	e.seq++
	heap.Push(&e.events, event{when: e.now + delay, seq: e.seq, ev: slotEvent{fn: callFn, arg: fn}})
}

func (e *refEngine) run() Tick {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.when
		ev.ev.fn(ev.ev.arg, e.now)
	}
	return e.now
}

// scheduler is the surface a scenario needs; both engines provide it.
type scheduler interface {
	Now() Tick
	Schedule(delay Tick, fn func())
}

// firing records one event execution: which event ran and when.
type firing struct {
	id   int
	tick Tick
}

// runScenario drives a randomized event schedule on e: a burst of root
// events at mixed delays, each of which may schedule further events from
// inside its handler — including zero-delay chains, the pattern the
// engine's FIFO fast path serves. Event IDs are assigned in scheduling
// order and the random stream is consumed in execution order, so two
// engines produce identical traces iff they execute the schedule in
// exactly the same order.
func runScenario(e scheduler, run func() Tick, seed uint64) ([]firing, Tick) {
	r := NewRand(seed)
	var trace []firing
	nextID := 0
	var spawn func(depth int) func()
	spawn = func(depth int) func() {
		id := nextID
		nextID++
		return func() {
			trace = append(trace, firing{id: id, tick: e.Now()})
			if depth >= 4 {
				return
			}
			for i, n := 0, r.Intn(3); i < n; i++ {
				// Bias toward zero delays: same-tick cascades are both
				// the hot path and the easiest ordering to get wrong.
				var d Tick
				if !r.Bool(0.6) {
					d = Tick(r.Intn(5))
				}
				e.Schedule(d, spawn(depth+1))
			}
		}
	}
	for i := 0; i < 64; i++ {
		e.Schedule(Tick(r.Intn(24)), spawn(0))
	}
	end := run()
	return trace, end
}

func TestEngineMatchesContainerHeapReference(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		eng := NewEngine()
		got, gotEnd := runScenario(eng, eng.Run, seed)
		ref := &refEngine{}
		want, wantEnd := runScenario(ref, ref.run, seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: engine ran %d events, reference ran %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: divergence at event %d: engine fired %+v, reference fired %+v",
					seed, i, got[i], want[i])
			}
		}
		if gotEnd != wantEnd {
			t.Fatalf("seed %d: engine ended at tick %d, reference at %d", seed, gotEnd, wantEnd)
		}
	}
}

// TestEngineMatchesReferenceAcrossWheelBoundary drives schedules whose
// delays straddle the timing-wheel span: same-tick chains, in-wheel
// latencies, delays right at the wheelSize cliff, and far-future
// overflow events that land on the same tick as wheel events. The
// reference container/heap engine is the ordering oracle.
func TestEngineMatchesReferenceAcrossWheelBoundary(t *testing.T) {
	delays := []Tick{0, 1, 7, wheelSize - 1, wheelSize, wheelSize + 1, 3 * wheelSize, 0, wheelSize}
	scenario := func(e scheduler, run func() Tick, seed uint64) ([]firing, Tick) {
		r := NewRand(seed)
		var trace []firing
		nextID := 0
		var spawn func(depth int) func()
		spawn = func(depth int) func() {
			id := nextID
			nextID++
			return func() {
				trace = append(trace, firing{id: id, tick: e.Now()})
				if depth >= 3 {
					return
				}
				for i, n := 0, r.Intn(3); i < n; i++ {
					e.Schedule(delays[r.Intn(len(delays))], spawn(depth+1))
				}
			}
		}
		for i := 0; i < 48; i++ {
			e.Schedule(delays[r.Intn(len(delays))]+Tick(r.Intn(5)), spawn(0))
		}
		end := run()
		return trace, end
	}
	for seed := uint64(0); seed < 30; seed++ {
		eng := NewEngine()
		got, gotEnd := scenario(eng, eng.Run, seed)
		ref := &refEngine{}
		want, wantEnd := scenario(ref, ref.run, seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: engine ran %d events, reference ran %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: divergence at event %d: engine fired %+v, reference fired %+v",
					seed, i, got[i], want[i])
			}
		}
		if gotEnd != wantEnd {
			t.Fatalf("seed %d: engine ended at tick %d, reference at %d", seed, gotEnd, wantEnd)
		}
	}
}

// TestEngineHeapBeforeFIFOAtSameTick pins the subtle half of the
// ordering contract: an event scheduled for tick T before the clock
// reaches T (heap resident) must run before a zero-delay event scheduled
// at T from inside T's first handler (FIFO resident), because it was
// scheduled first.
func TestEngineHeapBeforeFIFOAtSameTick(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(5, func() {
		order = append(order, "first@5")
		e.Schedule(0, func() { order = append(order, "zero-delay@5") })
	})
	e.Schedule(5, func() { order = append(order, "second@5") })
	e.Run()
	want := []string{"first@5", "second@5", "zero-delay@5"}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}
}

// TestEngineRunUntilWithFIFOPending ensures the limit check accounts for
// the FIFO: a zero-delay event scheduled at the limit tick still runs.
func TestEngineRunUntilWithFIFOPending(t *testing.T) {
	e := NewEngine()
	var ran []string
	e.Schedule(10, func() {
		ran = append(ran, "outer")
		e.Schedule(0, func() { ran = append(ran, "inner") })
		e.Schedule(1, func() { ran = append(ran, "beyond") })
	})
	if e.RunUntil(10) {
		t.Error("RunUntil(10) reported drained with an event at 11 pending")
	}
	if len(ran) != 2 || ran[0] != "outer" || ran[1] != "inner" {
		t.Errorf("ran %v, want [outer inner]", ran)
	}
	if e.Pending() != 1 {
		t.Errorf("%d events pending, want 1", e.Pending())
	}
	if e.Now() != 10 {
		t.Errorf("clock at %d, want 10", e.Now())
	}
}
