package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("new engine at tick %d, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new engine has %d pending events, want 0", e.Pending())
	}
}

func TestScheduleAndRunAdvancesClock(t *testing.T) {
	e := NewEngine()
	var fired Tick
	e.Schedule(42, func() { fired = e.Now() })
	end := e.Run()
	if fired != 42 {
		t.Errorf("event fired at tick %d, want 42", fired)
	}
	if end != 42 {
		t.Errorf("Run returned %d, want 42", end)
	}
}

func TestSameTickEventsRunInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-tick order broken: got %v", order)
		}
	}
}

func TestZeroDelayRunsInCurrentTick(t *testing.T) {
	e := NewEngine()
	var innerTick Tick = 999
	e.Schedule(7, func() {
		e.Schedule(0, func() { innerTick = e.Now() })
	})
	e.Run()
	if innerTick != 7 {
		t.Errorf("zero-delay event ran at tick %d, want 7", innerTick)
	}
}

func TestEventsRunInTimeOrderRegardlessOfScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []Tick
	for _, d := range []Tick{50, 10, 30, 20, 40} {
		e.Schedule(d, func() { order = append(order, e.Now()) })
	}
	e.Run()
	want := []Tick{10, 20, 30, 40, 50}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.ScheduleAt(5, func() {})
	})
	e.Run()
}

func TestScheduleNilPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("scheduling nil did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	e := NewEngine()
	var fired []Tick
	for _, d := range []Tick{10, 20, 30} {
		e.Schedule(d, func() { fired = append(fired, e.Now()) })
	}
	drained := e.RunUntil(20)
	if drained {
		t.Error("RunUntil(20) reported drained with an event at 30 pending")
	}
	if len(fired) != 2 {
		t.Errorf("fired %v, want events at 10 and 20 only", fired)
	}
	if e.Now() != 20 {
		t.Errorf("clock at %d after RunUntil(20), want 20", e.Now())
	}
	if !e.RunUntil(100) {
		t.Error("second RunUntil did not drain")
	}
	if len(fired) != 3 {
		t.Errorf("after drain fired %v, want 3 events", fired)
	}
}

func TestRunUntilInclusiveOfLimitTick(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(15, func() { ran = true })
	e.RunUntil(15)
	if !ran {
		t.Error("event exactly at the limit tick did not run")
	}
}

func TestRunForRelativeWindow(t *testing.T) {
	e := NewEngine()
	var fired []Tick
	e.Schedule(5, func() {
		fired = append(fired, e.Now())
		e.Schedule(5, func() { fired = append(fired, e.Now()) })
		e.Schedule(50, func() { fired = append(fired, e.Now()) })
	})
	e.RunFor(12)
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 10 {
		t.Errorf("RunFor(12) fired %v, want [5 10]", fired)
	}
}

func TestStepSingleEvent(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(1, func() { n++ })
	e.Schedule(2, func() { n++ })
	if !e.Step() {
		t.Fatal("Step returned false with events pending")
	}
	if n != 1 {
		t.Fatalf("after one Step n=%d, want 1", n)
	}
	if e.Step(); n != 2 {
		t.Fatalf("after two Steps n=%d, want 2", n)
	}
	if e.Step() {
		t.Error("Step returned true on empty queue")
	}
}

func TestExecutedCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 25; i++ {
		e.Schedule(Tick(i), func() {})
	}
	e.Run()
	if e.Executed() != 25 {
		t.Errorf("Executed()=%d, want 25", e.Executed())
	}
}

func TestCascadedEvents(t *testing.T) {
	// An event chain where each event schedules the next models how
	// components hand work along; the clock must track each hop.
	e := NewEngine()
	hops := 0
	var hop func()
	hop = func() {
		hops++
		if hops < 100 {
			e.Schedule(3, hop)
		}
	}
	e.Schedule(3, hop)
	end := e.Run()
	if hops != 100 {
		t.Errorf("hops=%d, want 100", hops)
	}
	if end != 300 {
		t.Errorf("chain ended at tick %d, want 300", end)
	}
}

// Property: for any set of delays, events execute in non-decreasing time
// order and the engine ends at the max delay.
func TestPropertyEventTimeOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		var seen []Tick
		var maxd Tick
		for _, d := range delays {
			d := Tick(d)
			if d > maxd {
				maxd = d
			}
			e.Schedule(d, func() { seen = append(seen, e.Now()) })
		}
		end := e.Run()
		if end != maxd {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical values", same)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	r := NewRand(1)
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRandBoolProbability(t *testing.T) {
	r := NewRand(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.23 || got > 0.27 {
		t.Errorf("Bool(0.25) hit rate %v, want ~0.25", got)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(5)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}

// Property: Uint64n always stays under its bound.
func TestPropertyUint64nBound(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			if r.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
