package sim

import "testing"

// TestRunDrainSteadyStateAllocs pins the engine's zero-allocation
// steady state: after one fill-drain cycle has grown the node arena
// and FIFO to the working-set size, further cycles — the shape of
// every subsequent kernel wavefront in a run — must not allocate at
// all. A regression here (a forgotten freelist release, an event
// container that reallocates per tick) multiplies across the hundreds
// of millions of events in a figure sweep.
func TestRunDrainSteadyStateAllocs(t *testing.T) {
	fn := func() {}
	cycle := func(e *Engine) {
		for j := 0; j < 4096; j++ {
			e.Schedule(Tick(j%251), fn)
		}
		e.Run()
	}
	e := NewEngine()
	cycle(e) // grow arena, FIFO and wheel to working-set size
	if allocs := testing.AllocsPerRun(10, func() { cycle(e) }); allocs != 0 {
		t.Fatalf("steady-state fill-drain cycle allocates %.1f times, want 0", allocs)
	}

	// The mixed shape too: zero-delay cascades interleaved with future
	// scheduling, the coherence controller's pattern.
	mixed := func(e *Engine) {
		for j := 0; j < 512; j++ {
			e.Schedule(Tick(j%31+1), fn)
		}
		for e.Step() {
			if e.Executed()%7 == 0 {
				e.Schedule(0, fn)
			}
		}
	}
	e2 := NewEngine()
	mixed(e2)
	if allocs := testing.AllocsPerRun(10, func() { mixed(e2) }); allocs != 0 {
		t.Fatalf("steady-state mixed cycle allocates %.1f times, want 0", allocs)
	}
}
