package sim

import (
	"strings"
	"testing"
)

// TestStallGuardTripsOnLivelock checks a zero-delay event chain that
// never advances the clock panics with the watchdog diagnostic instead
// of spinning forever.
func TestStallGuardTripsOnLivelock(t *testing.T) {
	e := NewEngine()
	e.SetStallGuard(1000)
	var spin func()
	spin = func() { e.Schedule(0, spin) }
	e.Schedule(0, spin)
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("livelocked engine did not trip the stall guard")
		}
		msg, ok := p.(string)
		if !ok || !strings.Contains(msg, "livelock") {
			t.Fatalf("unexpected panic: %v", p)
		}
	}()
	e.Run()
}

// TestStallGuardResetsWhenClockAdvances checks legitimate same-tick
// cascades below the limit never trip, even repeated across many ticks
// — the counter must reset on every clock advance.
func TestStallGuardResetsWhenClockAdvances(t *testing.T) {
	e := NewEngine()
	e.SetStallGuard(100)
	executed := 0
	for tick := 0; tick < 50; tick++ {
		// 90 same-tick events per tick: under the limit individually,
		// far over it (4500) if the counter failed to reset.
		for i := 0; i < 90; i++ {
			e.ScheduleAt(Tick(tick), func() { executed++ })
		}
	}
	e.Run()
	if executed != 50*90 {
		t.Fatalf("executed %d events, want %d", executed, 50*90)
	}
}

// TestStallGuardDisabledByDefault checks an unarmed engine tolerates
// arbitrarily deep same-tick cascades.
func TestStallGuardDisabledByDefault(t *testing.T) {
	e := NewEngine()
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < 5000 {
			e.Schedule(0, chain)
		}
	}
	e.Schedule(0, chain)
	e.Run()
	if n != 5000 {
		t.Fatalf("cascade stopped at %d", n)
	}
}
