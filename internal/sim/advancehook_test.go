package sim

import "testing"

// TestAdvanceHook proves the hook observes every clock advance with the
// correct (prev, now) pair, before the first event of the new tick
// runs, and never fires for same-tick FIFO events.
func TestAdvanceHook(t *testing.T) {
	e := NewEngine()
	type adv struct{ prev, now Tick }
	var got []adv
	e.SetAdvanceHook(func(prev, now Tick) {
		got = append(got, adv{prev, now})
		if e.Now() != prev {
			t.Errorf("hook at advance %d->%d sees Now()=%d, want pre-advance %d", prev, now, e.Now(), prev)
		}
	})
	fn := func() {}
	e.Schedule(5, fn)
	e.Schedule(5, fn) // same tick: one advance, two events
	e.Schedule(12, fn)
	e.Schedule(12, func() {
		e.Schedule(0, fn) // zero-delay: FIFO path, no advance
	})
	e.Run()
	want := []adv{{0, 5}, {5, 12}}
	if len(got) != len(want) {
		t.Fatalf("advances = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("advance %d = %v, want %v", i, got[i], want[i])
		}
	}

	// Removing the hook stops the callbacks.
	e.SetAdvanceHook(nil)
	e.Schedule(3, fn)
	e.Run()
	if len(got) != len(want) {
		t.Errorf("hook fired after removal: %v", got)
	}
}

// TestScheduleStepZeroAllocs is the observability overhead guard: with
// no advance hook installed (telemetry disabled), the schedule/step hot
// path must allocate nothing in steady state, on both the heap and the
// same-tick FIFO fast path. This pins PR 1's headline property against
// regression by the obs wiring.
func TestScheduleStepZeroAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Pre-warm so slice growth is out of the picture.
	for i := 0; i < 1024; i++ {
		e.Schedule(Tick(i%97+1), fn)
	}
	for i := 0; i < 1024; i++ {
		e.Step()
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(1, fn)
		e.Step()
	}); allocs != 0 {
		t.Errorf("heap path: %v allocs/op with hook disabled, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(0, fn)
		e.Step()
	}); allocs != 0 {
		t.Errorf("FIFO path: %v allocs/op with hook disabled, want 0", allocs)
	}

	// And the hook itself must not allocate on the engine side: with a
	// trivial hook installed, the path stays allocation-free.
	e.SetAdvanceHook(func(prev, now Tick) {})
	if allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(1, fn)
		e.Step()
	}); allocs != 0 {
		t.Errorf("heap path: %v allocs/op with trivial hook, want 0", allocs)
	}
}

// BenchmarkScheduleStepHookDisabled is FutureMix with the advance-hook
// field explicitly cleared — compare against BenchmarkScheduleStepFutureMix
// to see the cost of the disabled-hook branch (it should be noise).
func BenchmarkScheduleStepHookDisabled(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	e.SetAdvanceHook(nil)
	fn := func() {}
	for i := 0; i < 1024; i++ {
		e.Schedule(Tick(i%97+1), fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Tick(i%97+1), fn)
		e.Step()
	}
}
