package sim

import "dstore/internal/snap"

// SnapshotTo serialises the engine clock. Snapshots are only taken at
// quiescent points — the event queue fully drained — so the entire
// dynamic engine state reduces to the clock, the executed-event count
// and the heap tiebreak sequence; the wheel, node arena and FIFO are
// all empty by construction. A non-empty queue is unserialisable
// (events are closures) and is reported as an error.
func (e *Engine) SnapshotTo(w *snap.Writer) {
	w.Tag("engine")
	w.Bool(e.Pending() == 0)
	w.I64(int64(e.now))
	w.U64(e.executed)
	w.U64(e.heapSeq)
}

// RestoreFrom loads the clock into an idle engine. The guard window
// restarts at the restored clock; an engine with pending events
// cannot be restored into.
func (e *Engine) RestoreFrom(r *snap.Reader) {
	r.Tag("engine")
	if !r.Bool() {
		r.Failf("sim: snapshot was taken with events pending")
	}
	now := Tick(r.I64())
	executed := r.U64()
	heapSeq := r.U64()
	if r.Err() != nil {
		return
	}
	if e.Pending() != 0 {
		r.Failf("sim: restore into an engine with %d pending events", e.Pending())
		return
	}
	if now < e.now {
		r.Failf("sim: restore would move the clock backwards (%d -> %d)", e.now, now)
		return
	}
	e.now = now
	e.executed = executed
	e.heapSeq = heapSeq
	e.guardTick = now
	e.guardCount = 0
}

// State exposes the generator's raw state for snapshots.
func (r *Rand) State() uint64 { return r.state }

// SetState overwrites the generator's raw state from a snapshot.
func (r *Rand) SetState(s uint64) { r.state = s }
