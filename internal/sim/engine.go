// Package sim provides the discrete-event simulation kernel that every
// timed component in the simulator is built on: a tick clock, an event
// queue with deterministic ordering, and a reproducible random number
// source.
//
// The engine is deliberately minimal. Components schedule closures at
// future ticks; the engine executes them in (tick, insertion-order)
// order, so two events scheduled for the same tick always run in the
// order they were scheduled. Determinism is a hard requirement: every
// experiment in the paper reproduction must produce identical statistics
// run-to-run.
//
// The event queue is the simulator's hottest code: a full figure sweep
// executes hundreds of millions of events. It is split into two
// structures, both allocation-free in steady state:
//
//   - a concrete 4-ary min-heap over []event ordered by (when, seq),
//     with no heap.Interface indirection and no interface boxing on the
//     push/pop path;
//   - a same-tick FIFO that absorbs events scheduled for the current
//     tick (Schedule(0, fn) chains — the dominant pattern in the
//     coherence controllers' message hops), so zero-delay cascades
//     bypass the heap entirely.
//
// The split preserves (tick, insertion-order) semantics exactly: a heap
// entry at the current tick was necessarily scheduled before the clock
// reached that tick, so its sequence number is smaller than that of any
// FIFO entry, and the heap is always drained of current-tick events
// before the FIFO.
package sim

import "fmt"

// Tick is the simulation time unit. One tick is one CPU-domain clock
// cycle throughout the simulator; slower clock domains (GPU, DRAM) are
// modelled by scaling their per-operation latencies into CPU ticks.
type Tick uint64

// event is a scheduled closure. seq breaks ties between events scheduled
// for the same tick, preserving insertion order.
type event struct {
	when Tick
	seq  uint64
	fn   func()
}

// eventLess orders events by (when, seq).
func eventLess(a, b event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// heapArity is the branching factor of the event heap. A 4-ary heap
// halves the tree depth of a binary heap, trading slightly more sibling
// comparisons per level for fewer cache-missing levels — the right
// trade for the small (24-byte) event records stored inline.
const heapArity = 4

// Engine is the discrete-event simulator. The zero value is not ready to
// use; construct one with NewEngine.
type Engine struct {
	now Tick
	// heap is a 4-ary min-heap by (when, seq) holding events strictly
	// after the current tick, plus current-tick events scheduled before
	// the clock reached it.
	heap []event
	// fifo holds events scheduled for the current tick while the clock
	// is already at it. fifoHead indexes the next entry to run; the
	// backing array is reset (not reallocated) whenever it drains.
	fifo     []event
	fifoHead int
	seq      uint64
	executed uint64

	// Stall-guard state (SetStallGuard): guardLimit 0 disables the
	// forward-progress watchdog entirely.
	guardLimit uint64
	guardTick  Tick
	guardCount uint64

	// advanceHook, when non-nil, observes every clock advance
	// (SetAdvanceHook). nil disables it at the cost of one predictable
	// branch on the heap-pop path.
	advanceHook func(prev, now Tick)
}

// NewEngine returns an engine at tick zero with an empty event queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation tick.
func (e *Engine) Now() Tick { return e.now }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.heap) + len(e.fifo) - e.fifoHead }

// Executed returns the total number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// SetStallGuard arms the engine's forward-progress watchdog: executing
// more than limit events without the clock advancing a single tick
// panics with a diagnostic instead of livelocking. Legitimate same-tick
// cascades in the coherence layer are a few hundred events deep, so any
// generous limit (say, one million) only ever trips on a genuine
// livelock — an event chain rescheduling itself at delay zero forever.
// A limit of zero disables the guard (the default); a disabled guard
// adds one predictable branch to the step path and changes nothing
// else, preserving byte-identical results.
func (e *Engine) SetStallGuard(limit uint64) {
	e.guardLimit = limit
	e.guardTick = e.now
	e.guardCount = 0
}

// SetAdvanceHook installs fn to be called on every clock advance with
// the previous and new tick, immediately before the first event of the
// new tick runs. The hook observes time only — it must not schedule
// events or mutate simulation state, so an engine with a hook installed
// executes the identical event sequence as one without (same contract
// as RunInterruptible's stop function). The interval sampler in
// internal/obs is the intended client: epoch boundaries fall on clock
// advances, never on events of their own, so enabling telemetry cannot
// perturb results. A nil fn removes the hook; a removed hook costs one
// predictable branch on the heap-pop path and nothing on the same-tick
// FIFO path (the clock cannot advance there).
func (e *Engine) SetAdvanceHook(fn func(prev, now Tick)) {
	e.advanceHook = fn
}

// Schedule queues fn to run delay ticks from now. A delay of zero runs fn
// later in the current tick, after all previously scheduled events for
// this tick.
func (e *Engine) Schedule(delay Tick, fn func()) {
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn to run at the absolute tick when. Scheduling in
// the past panics: it would silently corrupt causality.
func (e *Engine) ScheduleAt(when Tick, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("sim: schedule at tick %d but now is %d", when, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil event function")
	}
	e.seq++
	if when == e.now {
		// Current-tick fast path: every event already in the heap at
		// this tick has a smaller seq, so appending preserves global
		// (when, seq) order.
		e.fifo = append(e.fifo, event{when: when, seq: e.seq, fn: fn})
		return
	}
	e.heapPush(event{when: when, seq: e.seq, fn: fn})
}

// next reports the (when, ok) of the earliest pending event without
// removing it.
func (e *Engine) next() (Tick, bool) {
	if e.fifoHead < len(e.fifo) {
		// FIFO entries are always at the current tick; a heap entry at
		// the same tick has a smaller seq and is found by Step anyway,
		// so the earliest pending time is e.now either way.
		return e.now, true
	}
	if len(e.heap) > 0 {
		return e.heap[0].when, true
	}
	return 0, false
}

// Step executes the single next event, advancing the clock to its tick.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.fifoHead < len(e.fifo) {
		// The FIFO front is at the current tick. It runs now unless the
		// heap still holds a current-tick event, which was necessarily
		// scheduled earlier (smaller seq).
		if len(e.heap) == 0 || e.heap[0].when > e.now {
			ev := e.fifoPop()
			e.executed++
			if e.guardLimit != 0 {
				e.checkStall()
			}
			ev.fn()
			return true
		}
	}
	if len(e.heap) == 0 {
		return false
	}
	ev := e.heapPop()
	if e.advanceHook != nil && ev.when != e.now {
		e.advanceHook(e.now, ev.when)
	}
	e.now = ev.when
	e.executed++
	if e.guardLimit != 0 {
		e.checkStall()
	}
	ev.fn()
	return true
}

// checkStall accounts one executed event against the stall guard. The
// caller has checked the guard is armed.
func (e *Engine) checkStall() {
	if e.now != e.guardTick {
		e.guardTick = e.now
		e.guardCount = 0
	}
	e.guardCount++
	if e.guardCount > e.guardLimit {
		panic(fmt.Sprintf(
			"sim: forward-progress watchdog: %d events executed at tick %d without the clock advancing (livelock)",
			e.guardCount, e.now))
	}
}

// Run executes events until the queue is empty and returns the final
// tick. A simulation that schedules events unconditionally from within
// events will never terminate; components must stop rescheduling when
// idle.
func (e *Engine) Run() Tick {
	for e.Step() {
	}
	return e.now
}

// stopCheckEvents is how many events RunInterruptible executes between
// stop-function polls. Large enough that the poll (typically a channel
// select on a context) is invisible next to the event work, small
// enough that cancellation latency stays in the microseconds.
const stopCheckEvents = 8192

// RunInterruptible executes events until the queue is empty or stop
// returns true, polling stop every stopCheckEvents executed events. It
// returns the final tick and whether the queue drained (false means
// stop cut the run short with events still pending). A nil stop is
// exactly Run. The stop function must not mutate simulation state, so
// an interruptible run that is never stopped executes the identical
// event sequence as Run.
func (e *Engine) RunInterruptible(stop func() bool) (Tick, bool) {
	if stop == nil {
		return e.Run(), true
	}
	for {
		for i := 0; i < stopCheckEvents; i++ {
			if !e.Step() {
				return e.now, true
			}
		}
		if stop() {
			return e.now, false
		}
	}
}

// RunUntil executes events up to and including tick limit and reports
// whether the queue drained (true) or the limit cut the run short
// (false). The clock is left at min(limit, last executed tick); events
// beyond the limit remain queued.
func (e *Engine) RunUntil(limit Tick) bool {
	for {
		when, ok := e.next()
		if !ok {
			return true
		}
		if when > limit {
			e.now = limit
			return false
		}
		e.Step()
	}
}

// RunFor executes events for d ticks past the current time, with
// RunUntil semantics.
func (e *Engine) RunFor(d Tick) bool {
	return e.RunUntil(e.now + d)
}

// fifoPop removes and returns the FIFO front. The caller has checked it
// is non-empty.
func (e *Engine) fifoPop() event {
	ev := e.fifo[e.fifoHead]
	e.fifo[e.fifoHead] = event{} // release the closure for GC
	e.fifoHead++
	if e.fifoHead == len(e.fifo) {
		e.fifo = e.fifo[:0]
		e.fifoHead = 0
	}
	return ev
}

// heapPush inserts ev into the 4-ary heap.
func (e *Engine) heapPush(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !eventLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.heap = h
}

// heapPop removes and returns the heap minimum. The caller has checked
// it is non-empty.
func (e *Engine) heapPop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the closure for GC
	h = h[:n]
	e.heap = h
	i := 0
	for {
		c := i*heapArity + 1
		if c >= n {
			break
		}
		m := c
		end := c + heapArity
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(h[j], h[m]) {
				m = j
			}
		}
		if !eventLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}
