// Package sim provides the discrete-event simulation kernel that every
// timed component in the simulator is built on: a tick clock, an event
// queue with deterministic ordering, and a reproducible random number
// source.
//
// The engine is deliberately minimal. Components schedule closures at
// future ticks; the engine executes them in (tick, insertion-order)
// order, so two events scheduled for the same tick always run in the
// order they were scheduled. Determinism is a hard requirement: every
// experiment in the paper reproduction must produce identical statistics
// run-to-run.
package sim

import (
	"container/heap"
	"fmt"
)

// Tick is the simulation time unit. One tick is one CPU-domain clock
// cycle throughout the simulator; slower clock domains (GPU, DRAM) are
// modelled by scaling their per-operation latencies into CPU ticks.
type Tick uint64

// event is a scheduled closure. seq breaks ties between events scheduled
// for the same tick, preserving insertion order.
type event struct {
	when Tick
	seq  uint64
	fn   func()
}

// eventHeap is a min-heap ordered by (when, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return ev
}

// Engine is the discrete-event simulator. The zero value is not ready to
// use; construct one with NewEngine.
type Engine struct {
	now      Tick
	events   eventHeap
	seq      uint64
	executed uint64
}

// NewEngine returns an engine at tick zero with an empty event queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation tick.
func (e *Engine) Now() Tick { return e.now }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// Executed returns the total number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Schedule queues fn to run delay ticks from now. A delay of zero runs fn
// later in the current tick, after all previously scheduled events for
// this tick.
func (e *Engine) Schedule(delay Tick, fn func()) {
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn to run at the absolute tick when. Scheduling in
// the past panics: it would silently corrupt causality.
func (e *Engine) ScheduleAt(when Tick, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("sim: schedule at tick %d but now is %d", when, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil event function")
	}
	e.seq++
	heap.Push(&e.events, event{when: when, seq: e.seq, fn: fn})
}

// Step executes the single next event, advancing the clock to its tick.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.when
	e.executed++
	ev.fn()
	return true
}

// Run executes events until the queue is empty and returns the final
// tick. A simulation that schedules events unconditionally from within
// events will never terminate; components must stop rescheduling when
// idle.
func (e *Engine) Run() Tick {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events up to and including tick limit and reports
// whether the queue drained (true) or the limit cut the run short
// (false). The clock is left at min(limit, last executed tick); events
// beyond the limit remain queued.
func (e *Engine) RunUntil(limit Tick) bool {
	for len(e.events) > 0 {
		if e.events[0].when > limit {
			e.now = limit
			return false
		}
		e.Step()
	}
	return true
}

// RunFor executes events for d ticks past the current time, with
// RunUntil semantics.
func (e *Engine) RunFor(d Tick) bool {
	return e.RunUntil(e.now + d)
}
