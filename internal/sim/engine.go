// Package sim provides the discrete-event simulation kernel that every
// timed component in the simulator is built on: a tick clock, an event
// queue with deterministic ordering, and a reproducible random number
// source.
//
// The engine is deliberately minimal. Components schedule callbacks at
// future ticks; the engine executes them in (tick, insertion-order)
// order, so two events scheduled for the same tick always run in the
// order they were scheduled. Determinism is a hard requirement: every
// experiment in the paper reproduction must produce identical statistics
// run-to-run.
//
// The event queue is the simulator's hottest code: a full figure sweep
// executes hundreds of millions of events. It is a three-level
// structure, allocation-free in steady state:
//
//   - a same-tick FIFO that absorbs events scheduled for the current
//     tick (Schedule(0, fn) chains — the dominant pattern in the
//     coherence controllers' message hops) and doubles as the staging
//     area into which each new tick's events are migrated in bulk;
//   - a timing wheel of wheelSize one-tick slots for events less than
//     wheelSize ticks out (every cache, link, DRAM and pipeline latency
//     in the simulator). Each slot is a linked list of nodes drawn from
//     a single recycled arena, and an occupancy bitmap makes finding
//     the next non-empty tick a handful of word scans. Push and pop are
//     O(1) — no heap sift, which previously dominated full-sweep
//     profiles;
//   - a small 4-ary min-heap for the rare far-future event (watchdogs,
//     coarse timeouts) at wheelSize or more ticks out.
//
// The split preserves (tick, insertion-order) semantics exactly. Within
// a wheel slot, list order is insertion order. An overflow-heap event
// at tick T was scheduled at least wheelSize ticks before T, hence
// strictly earlier than any wheel-resident event for T (which was
// scheduled under wheelSize ticks out), so migrating heap events before
// slot events at each clock advance reproduces global (tick, seq)
// order. The FIFO preserves insertion order trivially, and events
// scheduled for the current tick always append after everything already
// migrated, which is exactly the old two-structure engine's contract.
package sim

import (
	"fmt"
	"math/bits"
)

// Tick is the simulation time unit. One tick is one CPU-domain clock
// cycle throughout the simulator; slower clock domains (GPU, DRAM) are
// modelled by scaling their per-operation latencies into CPU ticks.
type Tick uint64

// wheelBits sets the timing-wheel span: events under wheelSize ticks
// out go to the wheel, the rest to the overflow heap. 1024 ticks covers
// every component latency in the simulator (DRAM ~200, TLB walk 40,
// crossbar 16) with an order of magnitude to spare; only watchdog-style
// timeouts overflow.
const wheelBits = 10

const (
	wheelSize  = Tick(1) << wheelBits
	wheelMask  = wheelSize - 1
	wheelWords = int(wheelSize) / 64
)

// slotEvent is the callback form every event is stored in: a static
// (or at least long-lived) function plus one argument word. The
// convenience Schedule variants box closures or pointer-shaped values
// into arg, which allocates nothing for pointers, funcs, or interfaces.
type slotEvent struct {
	fn  func(arg any, now Tick)
	arg any
}

// node is one wheel-slot list entry, drawn from the engine's arena and
// recycled through a freelist — slot storage never allocates in steady
// state regardless of how events distribute over ticks.
type node struct {
	ev   slotEvent
	next int32
}

// slotList is a wheel slot: an intrusive singly-linked list of arena
// node indices in insertion order. -1 means empty.
type slotList struct {
	head, tail int32
}

// event is an overflow-heap entry. seq breaks ties between heap events
// scheduled for the same tick, preserving insertion order; wheel and
// FIFO entries need no explicit seq because their containers are
// insertion-ordered.
type event struct {
	when Tick
	seq  uint64
	ev   slotEvent
}

// eventLess orders overflow events by (when, seq).
func eventLess(a, b event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// heapArity is the branching factor of the overflow heap. A 4-ary heap
// halves the tree depth of a binary heap; the overflow heap is small
// (watchdog-scale, not wavefront-scale) so this barely matters, but it
// costs nothing.
const heapArity = 4

// Engine is the discrete-event simulator. The zero value is not ready to
// use; construct one with NewEngine.
type Engine struct {
	now Tick

	// fifo holds the current tick's run queue in execution order as
	// node-arena indices: events migrated from the wheel/heap when the
	// clock advanced here, followed by any Schedule(0, fn) appends made
	// while executing. Storing indices instead of slotEvents keeps the
	// queue pointer-free (no write barriers on append, nothing for the
	// GC to scan) and migrates a wheel slot without copying its events.
	// fifoHead indexes the next entry to run; the backing array is
	// reset (not reallocated) whenever it drains.
	fifo     []int32
	fifoHead int

	// Timing wheel: slot i holds events for the unique pending tick
	// congruent to i mod wheelSize (all wheel events are in
	// (now, now+wheelSize), so the slot index determines the tick).
	// bits is the slot-occupancy bitmap; wheelCount the total events
	// wheel-resident.
	slots      [wheelSize]slotList
	bits       [wheelWords]uint64
	wheelCount int

	// Node arena backing the wheel slots, recycled via freeNode.
	nodes    []node
	freeNode int32

	// heap is the 4-ary overflow min-heap by (when, seq) for events
	// wheelSize or more ticks out. heapSeq orders same-tick entries.
	heap    []event
	heapSeq uint64

	executed uint64

	// Stall-guard state (SetStallGuard): guardLimit 0 disables the
	// forward-progress watchdog entirely.
	guardLimit uint64
	guardTick  Tick
	guardCount uint64

	// advanceHook, when non-nil, observes every clock advance
	// (SetAdvanceHook). nil disables it at the cost of one predictable
	// branch per clock advance.
	advanceHook func(prev, now Tick)
}

// initialNodes pre-sizes the node arena and FIFO at construction.
// Growing from zero under a wavefront of schedules churns every
// power-of-two doubling below the working set through the allocator
// (the dominant byte count in the fill-drain profile); one engine
// serves an entire simulation, so paying 1024 slots up front is noise
// there and removes the churn everywhere. Steady state allocates
// nothing regardless — nodes recycle through the freelist and the FIFO
// backing array is reused across ticks (pinned by
// TestRunDrainSteadyStateAllocs).
const initialNodes = 1024

// NewEngine returns an engine at tick zero with an empty event queue.
func NewEngine() *Engine {
	e := &Engine{
		freeNode: -1,
		fifo:     make([]int32, 0, initialNodes),
		nodes:    make([]node, 0, initialNodes),
	}
	for i := range e.slots {
		e.slots[i] = slotList{head: -1, tail: -1}
	}
	return e
}

// Now returns the current simulation tick.
func (e *Engine) Now() Tick { return e.now }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int {
	return (len(e.fifo) - e.fifoHead) + e.wheelCount + len(e.heap)
}

// Executed returns the total number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// SetStallGuard arms the engine's forward-progress watchdog: executing
// more than limit events without the clock advancing a single tick
// panics with a diagnostic instead of livelocking. Legitimate same-tick
// cascades in the coherence layer are a few hundred events deep, so any
// generous limit (say, one million) only ever trips on a genuine
// livelock — an event chain rescheduling itself at delay zero forever.
// A limit of zero disables the guard (the default); a disabled guard
// adds one predictable branch to the step path and changes nothing
// else, preserving byte-identical results.
func (e *Engine) SetStallGuard(limit uint64) {
	e.guardLimit = limit
	e.guardTick = e.now
	e.guardCount = 0
}

// SetAdvanceHook installs fn to be called on every clock advance with
// the previous and new tick, immediately before the first event of the
// new tick runs. The hook observes time only — it must not schedule
// events or mutate simulation state, so an engine with a hook installed
// executes the identical event sequence as one without (same contract
// as RunInterruptible's stop function). The interval sampler in
// internal/obs is the intended client: epoch boundaries fall on clock
// advances, never on events of their own, so enabling telemetry cannot
// perturb results. A nil fn removes the hook; a removed hook costs one
// predictable branch per clock advance and nothing on the same-tick
// FIFO path (the clock cannot advance there).
func (e *Engine) SetAdvanceHook(fn func(prev, now Tick)) {
	e.advanceHook = fn
}

// callFn runs a boxed func() event. Boxing a func value into any stores
// its pointer directly — no allocation.
func callFn(arg any, _ Tick) { arg.(func())() }

// callTickFn runs a boxed func(Tick) event, passing the current tick —
// the delivery-callback shape used by the interconnect, scheduled
// without a wrapper closure.
func callTickFn(arg any, now Tick) { arg.(func(Tick))(now) }

// Schedule queues fn to run delay ticks from now. A delay of zero runs fn
// later in the current tick, after all previously scheduled events for
// this tick.
func (e *Engine) Schedule(delay Tick, fn func()) {
	if fn == nil {
		panic("sim: schedule nil event function")
	}
	e.scheduleEvent(e.now+delay, slotEvent{fn: callFn, arg: fn})
}

// ScheduleAt queues fn to run at the absolute tick when. Scheduling in
// the past panics: it would silently corrupt causality.
func (e *Engine) ScheduleAt(when Tick, fn func()) {
	if fn == nil {
		panic("sim: schedule nil event function")
	}
	e.scheduleEvent(when, slotEvent{fn: callFn, arg: fn})
}

// ScheduleTick queues fn to run delay ticks from now, passing the tick
// at which it runs. Boxing fn allocates nothing, so this is the
// allocation-free way to schedule an existing delivery callback that a
// plain Schedule would have to wrap in a fresh closure.
func (e *Engine) ScheduleTick(delay Tick, fn func(now Tick)) {
	if fn == nil {
		panic("sim: schedule nil event function")
	}
	e.scheduleEvent(e.now+delay, slotEvent{fn: callTickFn, arg: fn})
}

// ScheduleTickAt is ScheduleTick at an absolute tick.
func (e *Engine) ScheduleTickAt(when Tick, fn func(now Tick)) {
	if fn == nil {
		panic("sim: schedule nil event function")
	}
	e.scheduleEvent(when, slotEvent{fn: callTickFn, arg: fn})
}

// ScheduleArg queues fn(arg, now) to run delay ticks from now. With a
// static fn and a pointer-shaped arg (the pooled-message pattern in the
// coherence layer) the whole schedule/dispatch path allocates nothing.
func (e *Engine) ScheduleArg(delay Tick, fn func(arg any, now Tick), arg any) {
	if fn == nil {
		panic("sim: schedule nil event function")
	}
	e.scheduleEvent(e.now+delay, slotEvent{fn: fn, arg: arg})
}

// ScheduleArgAt is ScheduleArg at an absolute tick.
func (e *Engine) ScheduleArgAt(when Tick, fn func(arg any, now Tick), arg any) {
	if fn == nil {
		panic("sim: schedule nil event function")
	}
	e.scheduleEvent(when, slotEvent{fn: fn, arg: arg})
}

// scheduleEvent routes ev to the FIFO (current tick), wheel (near
// future) or overflow heap (far future).
func (e *Engine) scheduleEvent(when Tick, ev slotEvent) {
	if when < e.now {
		panic(fmt.Sprintf("sim: schedule at tick %d but now is %d", when, e.now))
	}
	if when == e.now {
		// Current-tick fast path: everything already queued for this
		// tick is ahead of us in the FIFO, so appending preserves
		// global insertion order.
		n := e.allocNode()
		e.nodes[n] = node{ev: ev, next: -1}
		e.fifo = append(e.fifo, n)
		return
	}
	if when-e.now < wheelSize {
		slot := int(when & wheelMask)
		n := e.allocNode()
		e.nodes[n] = node{ev: ev, next: -1}
		if s := &e.slots[slot]; s.head < 0 {
			s.head, s.tail = n, n
			e.bits[slot>>6] |= 1 << uint(slot&63)
		} else {
			e.nodes[s.tail].next = n
			s.tail = n
		}
		e.wheelCount++
		return
	}
	e.heapSeq++
	e.heapPush(event{when: when, seq: e.heapSeq, ev: ev})
}

// allocNode returns a free arena node index, growing the arena only
// when the freelist is empty.
func (e *Engine) allocNode() int32 {
	if n := e.freeNode; n >= 0 {
		e.freeNode = e.nodes[n].next
		return n
	}
	e.nodes = append(e.nodes, node{})
	return int32(len(e.nodes) - 1)
}

// nextAdvance reports the earliest tick holding a wheel or heap event.
// The caller has drained the FIFO.
func (e *Engine) nextAdvance() (Tick, bool) {
	var best Tick
	have := false
	if e.wheelCount > 0 {
		best = e.wheelNext()
		have = true
	}
	if len(e.heap) > 0 && (!have || e.heap[0].when < best) {
		best = e.heap[0].when
		have = true
	}
	return best, have
}

// wheelNext returns the earliest pending tick on the wheel. The caller
// has checked wheelCount > 0. All wheel events lie in
// (now, now+wheelSize), so a circular bitmap scan starting after now's
// slot finds the minimum.
func (e *Engine) wheelNext() Tick {
	start := int((e.now + 1) & wheelMask)
	w := start >> 6
	word := e.bits[w] &^ (1<<uint(start&63) - 1)
	for {
		if word != 0 {
			slot := w<<6 + bits.TrailingZeros64(word)
			when := (e.now &^ wheelMask) + Tick(slot)
			if when <= e.now {
				when += wheelSize
			}
			return when
		}
		w++
		if w == wheelWords {
			w = 0
		}
		word = e.bits[w]
	}
}

// advanceTo moves the clock to when and migrates every event pending at
// that tick into the FIFO in global insertion order: overflow-heap
// entries first (scheduled at least wheelSize ticks early, hence before
// any wheel entry for the same tick), then the wheel slot's list. The
// caller has drained the FIFO and established that at least one event
// is pending at when.
func (e *Engine) advanceTo(when Tick) {
	if e.advanceHook != nil {
		e.advanceHook(e.now, when)
	}
	e.now = when
	for len(e.heap) > 0 && e.heap[0].when == when {
		n := e.allocNode()
		e.nodes[n] = node{ev: e.heapPop().ev, next: -1}
		e.fifo = append(e.fifo, n)
	}
	slot := int(when & wheelMask)
	s := &e.slots[slot]
	if s.head < 0 {
		return
	}
	// Migrate the slot by index: the nodes stay in the arena (released
	// one by one at fifoPop) and their events are never copied here.
	for n := s.head; n >= 0; n = e.nodes[n].next {
		e.fifo = append(e.fifo, n)
		e.wheelCount--
	}
	s.head, s.tail = -1, -1
	e.bits[slot>>6] &^= 1 << uint(slot&63)
}

// next reports the (when, ok) of the earliest pending event without
// removing it.
func (e *Engine) next() (Tick, bool) {
	if e.fifoHead < len(e.fifo) {
		return e.now, true
	}
	return e.nextAdvance()
}

// runOne executes ev as the next event at the current tick, updating
// the executed counter and stall guard.
func (e *Engine) runOne(ev slotEvent) {
	e.executed++
	if e.guardLimit != 0 {
		e.checkStall()
	}
	ev.fn(ev.arg, e.now)
}

// Step executes the single next event, advancing the clock to its tick.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.fifoHead >= len(e.fifo) {
		when, ok := e.nextAdvance()
		if !ok {
			return false
		}
		e.advanceTo(when)
	}
	e.runOne(e.fifoPop())
	return true
}

// checkStall accounts one executed event against the stall guard. The
// caller has checked the guard is armed.
func (e *Engine) checkStall() {
	if e.now != e.guardTick {
		e.guardTick = e.now
		e.guardCount = 0
	}
	e.guardCount++
	if e.guardCount > e.guardLimit {
		panic(fmt.Sprintf(
			"sim: forward-progress watchdog: %d events executed at tick %d without the clock advancing (livelock)",
			e.guardCount, e.now))
	}
}

// Run executes events until the queue is empty and returns the final
// tick. The inner loop drains the current tick's FIFO batch without
// touching the wheel or heap, amortizing dispatch over same-tick
// cascades. A simulation that schedules events unconditionally from
// within events will never terminate; components must stop rescheduling
// when idle.
func (e *Engine) Run() Tick {
	for {
		for e.fifoHead < len(e.fifo) {
			e.runOne(e.fifoPop())
		}
		when, ok := e.nextAdvance()
		if !ok {
			return e.now
		}
		e.advanceTo(when)
	}
}

// stopCheckEvents is how many events RunInterruptible executes between
// stop-function polls. Large enough that the poll (typically a channel
// select on a context) is invisible next to the event work, small
// enough that cancellation latency stays in the microseconds.
const stopCheckEvents = 8192

// RunInterruptible executes events until the queue is empty or stop
// returns true, polling stop every stopCheckEvents executed events. It
// returns the final tick and whether the queue drained (false means
// stop cut the run short with events still pending). A nil stop is
// exactly Run. The stop function must not mutate simulation state, so
// an interruptible run that is never stopped executes the identical
// event sequence as Run.
func (e *Engine) RunInterruptible(stop func() bool) (Tick, bool) {
	if stop == nil {
		return e.Run(), true
	}
	budget := stopCheckEvents
	for {
		for e.fifoHead < len(e.fifo) {
			if budget == 0 {
				if stop() {
					return e.now, false
				}
				budget = stopCheckEvents
			}
			budget--
			e.runOne(e.fifoPop())
		}
		when, ok := e.nextAdvance()
		if !ok {
			return e.now, true
		}
		if budget == 0 {
			if stop() {
				return e.now, false
			}
			budget = stopCheckEvents
		}
		e.advanceTo(when)
	}
}

// RunUntil executes events up to and including tick limit and reports
// whether the queue drained (true) or the limit cut the run short
// (false). The clock is left at min(limit, last executed tick); events
// beyond the limit remain queued.
func (e *Engine) RunUntil(limit Tick) bool {
	for {
		for e.fifoHead < len(e.fifo) {
			e.runOne(e.fifoPop())
		}
		when, ok := e.nextAdvance()
		if !ok {
			return true
		}
		if when > limit {
			e.now = limit
			return false
		}
		e.advanceTo(when)
	}
}

// RunFor executes events for d ticks past the current time, with
// RunUntil semantics.
func (e *Engine) RunFor(d Tick) bool {
	return e.RunUntil(e.now + d)
}

// fifoPop removes and returns the FIFO front, releasing its arena node.
// The caller has checked it is non-empty.
func (e *Engine) fifoPop() slotEvent {
	n := e.fifo[e.fifoHead]
	nd := &e.nodes[n]
	ev := nd.ev
	nd.ev = slotEvent{} // release callback and arg for GC
	nd.next = e.freeNode
	e.freeNode = n
	e.fifoHead++
	if e.fifoHead == len(e.fifo) {
		e.fifo = e.fifo[:0]
		e.fifoHead = 0
	}
	return ev
}

// heapPush inserts ev into the 4-ary overflow heap.
func (e *Engine) heapPush(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !eventLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.heap = h
}

// heapPop removes and returns the heap minimum. The caller has checked
// it is non-empty.
func (e *Engine) heapPop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the callback for GC
	h = h[:n]
	e.heap = h
	i := 0
	for {
		c := i*heapArity + 1
		if c >= n {
			break
		}
		m := c
		end := c + heapArity
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(h[j], h[m]) {
				m = j
			}
		}
		if !eventLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}
