package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"dstore/internal/serve"
)

// getTrace fetches the stitched Chrome trace for a sweep and requires
// it to re-parse as JSON.
func getTrace(t *testing.T, base, sweepID string) []byte {
	t.Helper()
	code, b := getBody(t, base+"/v1/sweeps/"+sweepID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace export: %d: %s", code, b)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
		OtherData   map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("stitched trace is not valid JSON: %v\n%s", err, b)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatalf("stitched trace has no events:\n%s", b)
	}
	return b
}

func TestSweepTraceUnknownSweep404(t *testing.T) {
	base, _ := startCoord(t, Options{Workers: []string{"http://127.0.0.1:1"}})
	code, _ := getBody(t, base+"/v1/sweeps/no-such-sweep/trace")
	if code != http.StatusNotFound {
		t.Fatalf("unknown sweep trace: %d, want 404", code)
	}
}

// TestSweepSSEReplayKeepsTraceStable reconnects a finished sweep's
// stream — SSE with Last-Event-ID and NDJSON from zero — and requires
// the replay to neither duplicate nor renumber outcomes, and the
// stitched trace export to stay byte-identical: replaying history is a
// read, not a re-dispatch, so it must not record new spans.
func TestSweepSSEReplayKeepsTraceStable(t *testing.T) {
	w1 := startWorker(t, serve.Options{Name: "worker-0"})
	w2 := startWorker(t, serve.Options{Name: "worker-1"})
	base, _ := startCoord(t, Options{Workers: []string{w1, w2}, SweepWorkers: 4})

	results, report, sweepID := runSweepNDJSON(t, base, sweepMatrix)
	if report == nil || report.Failed != 0 || len(results) != 4 {
		t.Fatalf("sweep: %d results, report %+v", len(results), report)
	}
	total := len(results)
	for i, o := range results {
		if o.Seq != i {
			t.Fatalf("result %d streamed with seq %d", i, o.Seq)
		}
		if o.Trace == "" || o.Trace != results[0].Trace {
			t.Fatalf("result %d trace id %q, want every outcome under %q", i, o.Trace, results[0].Trace)
		}
	}
	trace1 := getTrace(t, base, sweepID)

	// SSE reconnect as a client that saw everything up to seq total-3:
	// exactly the last two results replay, each keeping its original id.
	req, err := http.NewRequest(http.MethodGet, base+"/v1/sweeps/"+sweepID+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Last-Event-ID", strconv.Itoa(total-3))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	ids, events := parseSSE(t, resp)
	if want := []int{total - 2, total - 1}; fmt.Sprint(ids) != fmt.Sprint(want) {
		t.Fatalf("SSE resume ids = %v, want %v", ids, want)
	}
	if len(events) == 0 || events[len(events)-1] != "report" {
		t.Fatalf("SSE resume events = %v, want trailing report", events)
	}

	// Full NDJSON replay: byte-identical outcomes, same seqs, same
	// trace ids — nothing renumbered, nothing doubled.
	replay, rep2, _ := runSweepNDJSON(t, base, sweepMatrix)
	if rep2 == nil || len(replay) != total {
		t.Fatalf("replay: %d results, report %+v", len(replay), rep2)
	}
	for i, o := range replay {
		if o.Seq != i || o.ID != results[i].ID || o.Trace != results[i].Trace ||
			!bytes.Equal(o.Result, results[i].Result) {
			t.Fatalf("replayed seq %d diverged from the original stream", i)
		}
	}

	// The replays above were pure reads: the span ring must not have
	// moved, so the export is byte-identical.
	trace2 := getTrace(t, base, sweepID)
	if !bytes.Equal(trace1, trace2) {
		t.Fatalf("trace export changed after stream replay:\n%s\nvs\n%s", trace1, trace2)
	}
}

// handlerTransport routes requests for fixed fake hosts straight into
// in-process handlers, so worker URLs — and with them ring placement
// and trace process rows — are identical across runs and stacks.
type handlerTransport map[string]http.Handler

func (ht handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	h, ok := ht[req.URL.Host]
	if !ok {
		return nil, fmt.Errorf("no route to %q", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// obsStack is one complete in-process fleet: two single-threaded
// workers behind fixed fake URLs and a serial coordinator, all on
// injected step clocks.
type obsStack struct {
	base  string
	coord *Coordinator
}

func startObsStack(t *testing.T) *obsStack {
	t.Helper()
	ht := handlerTransport{}
	for i, host := range []string{"w0", "w1"} {
		srv, err := serve.New(serve.Options{
			Workers: 1,
			Name:    fmt.Sprintf("worker-%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			_ = srv.Shutdown(ctx)
		})
		ht[host] = srv.Handler()
	}
	c, err := New(Options{
		Workers:       []string{"http://w0", "http://w1"},
		Transport:     ht,
		SweepWorkers:  1,
		ProbeInterval: time.Hour,
		PollInterval:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		hs.Close()
		c.Close()
	})
	return &obsStack{base: hs.URL, coord: c}
}

// TestStitchedTraceByteDeterminism runs the same sweep on two isolated
// stacks — fixed worker URLs, serial dispatch, step clocks — and
// requires the two stitched trace exports to be byte-identical, with
// spans from the coordinator and both worker processes under one trace
// ID. This is the acceptance bar for the whole tracing layer: any
// nondeterminism in span recording, merging or rendering shows up as a
// byte diff here.
func TestStitchedTraceByteDeterminism(t *testing.T) {
	matrix := `{"bench":["MT","VA","BL"],"mode":["direct-store"],"config":{"prefetch_depth":[0,2]}}`
	var traces [][]byte
	var workerSets []map[string]bool
	for run := 0; run < 2; run++ {
		s := startObsStack(t)
		results, report, sweepID := runSweepNDJSON(t, s.base, matrix)
		if report == nil || report.Failed != 0 || len(results) != 6 {
			t.Fatalf("run %d: %d results, report %+v", run, len(results), report)
		}
		byWorker := map[string]bool{}
		for _, o := range results {
			byWorker[o.Worker] = true
		}
		workerSets = append(workerSets, byWorker)
		traces = append(traces, getTrace(t, s.base, sweepID))
	}
	if len(workerSets[0]) < 2 {
		t.Fatalf("ring placed all 6 jobs on one worker: %v", workerSets[0])
	}
	if !bytes.Equal(traces[0], traces[1]) {
		t.Fatalf("stitched traces differ between identical runs:\n%s\nvs\n%s", traces[0], traces[1])
	}

	// Both worker processes and the coordinator appear in the export.
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traces[0], &doc); err != nil {
		t.Fatal(err)
	}
	processes := map[int]string{}
	spans := map[int]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			processes[ev.Pid] = ev.Args["name"]
		case "X":
			spans[ev.Pid]++
		}
	}
	withSpans := map[string]int{}
	for pid, name := range processes { //dstore:allow-maprange order folds into a set
		withSpans[name] = spans[pid]
	}
	for _, name := range []string{"coordinator", "worker-0", "worker-1"} {
		if withSpans[name] == 0 {
			t.Fatalf("no spans from process %q in stitched trace (got %v)", name, withSpans)
		}
	}
}
