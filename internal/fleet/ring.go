package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ring is a consistent-hash ring over worker base URLs. Each worker
// contributes vnodes points (hash of "url#i"), and a job ID owns the
// first point clockwise from its own hash. Adding or removing one
// worker therefore remaps only ~1/N of the key space — which is what
// keeps each worker's content-addressed caches hot as the fleet
// changes shape.
//
// The ring is immutable; the registry rebuilds it on membership
// changes and swaps it atomically.
type ring struct {
	points []ringPoint
	urls   []string // distinct members, sorted (for reporting)
}

type ringPoint struct {
	h   uint64
	url string
}

func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.LittleEndian.Uint64(sum[:8])
}

// buildRing constructs the ring for the given worker URLs.
func buildRing(urls []string, vnodes int) *ring {
	if vnodes < 1 {
		vnodes = 1
	}
	uniq := make(map[string]bool, len(urls))
	r := &ring{}
	for _, u := range urls {
		if u == "" || uniq[u] {
			continue
		}
		uniq[u] = true
		r.urls = append(r.urls, u)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{h: hash64(fmt.Sprintf("%s#%d", u, i)), url: u})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].url < r.points[j].url
	})
	sort.Strings(r.urls)
	return r
}

// owners returns up to max distinct workers for key, in replica
// order: the key's owner first, then each successive distinct worker
// clockwise around the ring. max <= 0 means all members.
func (r *ring) owners(key string, max int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if max <= 0 || max > len(r.urls) {
		max = len(r.urls)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	out := make([]string, 0, max)
	seen := make(map[string]bool, max)
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.url] {
			seen[p.url] = true
			out = append(out, p.url)
		}
	}
	return out
}
