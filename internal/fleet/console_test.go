package fleet

import (
	"strings"
	"testing"
)

func TestRenderConsole(t *testing.T) {
	st := ConsoleState{
		Coordinator: "http://127.0.0.1:8090",
		Workers: []ConsoleWorker{
			{URL: "http://b:1", Healthy: true, Breaker: "closed", QueueDepth: 3, CacheHitRate: 0.5, Executed: 12},
			{URL: "http://a:1", Healthy: false, Breaker: "open"},
			{URL: "http://c:1", Quarantined: true, Breaker: "closed"},
		},
		Sweeps: []ConsoleSweep{
			{ID: "ffff000011112222", Total: 8, Completed: 4, Cached: 1},
			{ID: "aaaa000011112222", Total: 6, Completed: 6, Failed: 1, Done: true, Degraded: true},
		},
		Stats: map[string]uint64{
			"fleet_jobs_completed_total":     10,
			"fleet_dispatch_failovers_total": 2,
		},
	}
	out := RenderConsole(st)

	// Workers sorted by URL, with the status word for each state.
	ia, ib, ic := strings.Index(out, "http://a:1"), strings.Index(out, "http://b:1"), strings.Index(out, "http://c:1")
	if ia < 0 || ib < 0 || ic < 0 || !(ia < ib && ib < ic) {
		t.Fatalf("workers not sorted by URL:\n%s", out)
	}
	for _, want := range []string{"BREAKER:open", "QUARANTINED", "up", "50.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("frame missing %q:\n%s", want, out)
		}
	}

	// Sweeps sorted by ID, half-full bar for 4/8, degraded flagged.
	if !(strings.Index(out, "aaaa00001111") < strings.Index(out, "ffff00001111")) {
		t.Fatalf("sweeps not sorted by ID:\n%s", out)
	}
	if !strings.Contains(out, "[############............] 4/8 running") {
		t.Fatalf("frame missing 4/8 progress bar:\n%s", out)
	}
	if !strings.Contains(out, "6/6 DEGRADED") {
		t.Fatalf("frame missing degraded sweep:\n%s", out)
	}
	if !strings.Contains(out, "completed 10") || !strings.Contains(out, "failovers 2") {
		t.Fatalf("frame missing dispatch counters:\n%s", out)
	}

	// Deterministic: same state, same frame.
	if out != RenderConsole(st) {
		t.Fatal("RenderConsole is not deterministic")
	}
}

func TestRenderConsoleEmpty(t *testing.T) {
	out := RenderConsole(ConsoleState{Coordinator: "http://x"})
	if !strings.Contains(out, "(none registered)") || !strings.Contains(out, "(none)") {
		t.Fatalf("empty frame missing placeholders:\n%s", out)
	}
}

func TestProgressBarEdges(t *testing.T) {
	if got := progressBar(0, 0, 8); got != "--------" {
		t.Fatalf("zero-total bar = %q", got)
	}
	if got := progressBar(9, 8, 8); got != "########" {
		t.Fatalf("overfull bar = %q", got)
	}
}
