// Package chaosnet is a fault-injecting reverse proxy for the fleet:
// it sits between the coordinator and one worker and perturbs the
// network path — added latency, connection resets, partitions,
// truncated response bodies, bit-flipped response bodies — from a
// seeded FaultPlan, the cluster-layer sibling of internal/chaos's
// in-simulator fault profiles (DESIGN.md §13).
//
// Determinism works per request index: request n draws its faults
// from sim.NewRand(seed mixed with n), so a given (seed, FaultPlan)
// produces the same fault decision for the n-th request through the
// proxy no matter how requests interleave. Targeted helpers
// (Partition, CorruptNext, TruncateNext, ResetNext) override the
// random plan for scripted scenarios — "corrupt exactly one result,
// then heal" — which is what the chaos e2e and smoke drive.
package chaosnet

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"dstore/internal/serve"
	"dstore/internal/sim"
)

// FaultPlan is the per-request fault distribution. Probabilities are
// independent draws in [0,1]; zero values inject nothing, so the zero
// plan is a faithful proxy.
type FaultPlan struct {
	// Latency is the probability of delaying a request by a uniform
	// draw from (0, MaxDelay].
	Latency  float64
	MaxDelay time.Duration
	// Reset is the probability of killing the client connection with
	// a TCP RST before any response bytes.
	Reset float64
	// Truncate is the probability of cutting a response body short:
	// the full Content-Length is declared, roughly half the bytes are
	// sent, then the connection aborts.
	Truncate float64
	// Corrupt is the probability of flipping one bit inside a
	// result-bearing response body, leaving headers (and the
	// advertised digest) intact — the lie integrity checking exists
	// to catch.
	Corrupt float64
}

// Counts reports what the proxy has injected, for test assertions.
type Counts struct {
	Requests    uint64 `json:"requests"`
	Delays      uint64 `json:"delays"`
	Resets      uint64 `json:"resets"`
	Partitioned uint64 `json:"partitioned"`
	Truncations uint64 `json:"truncations"`
	Corruptions uint64 `json:"corruptions"`
}

// Proxy forwards HTTP requests to one upstream worker, injecting
// faults per its seed and plan. Safe for concurrent use.
type Proxy struct {
	upstream *url.URL
	client   *http.Client
	seed     uint64
	plan     FaultPlan

	n atomic.Uint64 // request index; each request draws its own rng

	mu           sync.Mutex
	partitioned  bool
	corruptNext  int
	truncateNext int
	resetNext    int

	delays      atomic.Uint64
	resets      atomic.Uint64
	partitions  atomic.Uint64
	truncations atomic.Uint64
	corruptions atomic.Uint64
}

// New builds a proxy for the worker at upstream (a bare base URL).
func New(upstream string, seed uint64, plan FaultPlan) (*Proxy, error) {
	u, err := url.Parse(upstream)
	if err != nil {
		return nil, fmt.Errorf("chaosnet: bad upstream %q: %v", upstream, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("chaosnet: bad upstream %q (want http[s]://host[:port])", upstream)
	}
	return &Proxy{
		upstream: u,
		client:   &http.Client{},
		seed:     seed,
		plan:     plan,
	}, nil
}

// Partition switches the partition on or off. While partitioned,
// every connection is reset without reaching the worker — the worker
// is alive but unreachable, exactly the failure a network partition
// presents.
func (p *Proxy) Partition(on bool) {
	p.mu.Lock()
	p.partitioned = on
	p.mu.Unlock()
}

// CorruptNext schedules a bit flip inside the next n result-bearing
// responses (those advertising a content digest).
func (p *Proxy) CorruptNext(n int) {
	p.mu.Lock()
	p.corruptNext += n
	p.mu.Unlock()
}

// TruncateNext schedules truncation of the next n result-bearing
// responses.
func (p *Proxy) TruncateNext(n int) {
	p.mu.Lock()
	p.truncateNext += n
	p.mu.Unlock()
}

// ResetNext schedules a connection reset for the next n requests.
func (p *Proxy) ResetNext(n int) {
	p.mu.Lock()
	p.resetNext += n
	p.mu.Unlock()
}

// Counts returns the injection tally so far.
func (p *Proxy) Counts() Counts {
	return Counts{
		Requests:    p.n.Load(),
		Delays:      p.delays.Load(),
		Resets:      p.resets.Load(),
		Partitioned: p.partitions.Load(),
		Truncations: p.truncations.Load(),
		Corruptions: p.corruptions.Load(),
	}
}

// splitmix64 is the same finalizer sim.Rand steps with; mixing the
// request index through it decorrelates per-request streams drawn
// from one seed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// ServeHTTP implements the proxy.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := p.n.Add(1) - 1
	rng := sim.NewRand(p.seed ^ splitmix64(n))

	p.mu.Lock()
	partitioned := p.partitioned
	forceReset := false
	if !partitioned && p.resetNext > 0 {
		p.resetNext--
		forceReset = true
	}
	p.mu.Unlock()

	if partitioned {
		p.partitions.Add(1)
		p.abortConn(w)
		return
	}
	if forceReset || rng.Bool(p.plan.Reset) {
		p.resets.Add(1)
		p.abortConn(w)
		return
	}
	if p.plan.MaxDelay > 0 && rng.Bool(p.plan.Latency) {
		d := time.Duration(1 + rng.Uint64n(uint64(p.plan.MaxDelay)))
		p.delays.Add(1)
		//dstore:allow-wallclock injected network latency is operational test tooling, never in a simulation result
		t := time.NewTimer(d)
		select {
		case <-r.Context().Done():
			t.Stop()
			return
		case <-t.C:
		}
	}

	code, hdr, body, err := p.forward(r)
	if err != nil {
		// The upstream itself is down or unreachable: surface it the
		// way a dead worker would, as a reset.
		p.abortConn(w)
		return
	}

	resultBearing := hdr.Get(serve.ResultDigestHeader) != ""
	corrupt, truncate := false, false
	if resultBearing {
		p.mu.Lock()
		if p.corruptNext > 0 {
			p.corruptNext--
			corrupt = true
		} else if p.truncateNext > 0 {
			p.truncateNext--
			truncate = true
		}
		p.mu.Unlock()
	}
	if !corrupt && !truncate && resultBearing && len(body) > 0 {
		if rng.Bool(p.plan.Corrupt) {
			corrupt = true
		} else if rng.Bool(p.plan.Truncate) {
			truncate = true
		}
	}

	if corrupt && len(body) > 0 {
		body = flipResultBit(body)
		p.corruptions.Add(1)
	}

	copyHeaders(w.Header(), hdr)
	if truncate && len(body) > 1 {
		// Declare the full length, send half, then abort: the client
		// sees a short read against a longer Content-Length.
		p.truncations.Add(1)
		w.Header().Set("Content-Length", fmt.Sprintf("%d", len(body)))
		w.WriteHeader(code)
		_, _ = w.Write(body[:len(body)/2])
		panic(http.ErrAbortHandler)
	}
	w.Header().Set("Content-Length", fmt.Sprintf("%d", len(body)))
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

// forward relays the request to the upstream and slurps the response.
func (p *Proxy) forward(r *http.Request) (int, http.Header, []byte, error) {
	reqBody, err := io.ReadAll(r.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	u := *p.upstream
	u.Path = r.URL.Path
	u.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), readerOf(reqBody))
	if err != nil {
		return 0, nil, nil, err
	}
	copyHeaders(req.Header, r.Header)
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, body, nil
}

// abortConn kills the client connection with a RST (SetLinger 0) so
// the client sees a connection reset, not a clean HTTP error — the
// signature of a partition or a crashed peer. Falls back to an
// aborted response when the writer cannot be hijacked.
func (p *Proxy) abortConn(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic(http.ErrAbortHandler)
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = conn.Close()
}

// flipResultBit flips one bit inside the result payload region of
// body: past the `"result":` key when the body is an envelope, in the
// middle otherwise (raw result and trace documents). Headers — and
// with them the advertised digest — are untouched, so the response
// asserts a content address its bytes no longer match.
func flipResultBit(body []byte) []byte {
	out := make([]byte, len(body))
	copy(out, body)
	at := len(out) / 2
	if i := indexOf(out, []byte(`"result":`)); i >= 0 && i+12 < len(out) {
		at = i + 12
	}
	out[at] ^= 0x01
	return out
}

func indexOf(b, sub []byte) int {
	for i := 0; i+len(sub) <= len(b); i++ {
		match := true
		for j := range sub {
			if b[i+j] != sub[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

func copyHeaders(dst http.Header, src http.Header) {
	for k, vv := range src { //dstore:allow-maprange HTTP headers, order carried by net/http
		for _, v := range vv {
			dst[k] = append(dst[k], v)
		}
	}
}

// readerOf mirrors fleet's helper; a tiny local copy keeps the
// package dependency-light.
func readerOf(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
