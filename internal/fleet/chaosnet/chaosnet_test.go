package chaosnet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dstore/internal/serve"
)

// stubWorker answers every GET with a fixed result-bearing response:
// a JSON envelope plus the digest header covering the result field,
// like dstore-serve does.
func stubWorker(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	result := `{"bench":"MT","ticks":12345}`
	sum := sha256.Sum256([]byte(result))
	body := fmt.Sprintf(`{"id":"abc","status":"done","result":%s}`, result)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(serve.ResultDigestHeader, hex.EncodeToString(sum[:]))
		_, _ = w.Write([]byte(body))
	}))
	t.Cleanup(hs.Close)
	return hs, body
}

func startProxy(t *testing.T, upstream string, seed uint64, plan FaultPlan) (*Proxy, string) {
	t.Helper()
	p, err := New(upstream, seed, plan)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(p)
	t.Cleanup(hs.Close)
	return p, hs.URL
}

func TestZeroPlanIsTransparent(t *testing.T) {
	up, want := stubWorker(t)
	p, base := startProxy(t, up.URL, 7, FaultPlan{})
	for i := 0; i < 10; i++ {
		resp, err := http.Get(base + "/v1/runs/abc")
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || string(b) != want {
			t.Fatalf("request %d altered through zero plan: %v %q", i, err, b)
		}
		if resp.Header.Get(serve.ResultDigestHeader) == "" {
			t.Fatal("digest header dropped by proxy")
		}
	}
	c := p.Counts()
	if c.Resets != 0 || c.Corruptions != 0 || c.Truncations != 0 || c.Partitioned != 0 {
		t.Fatalf("zero plan injected faults: %+v", c)
	}
}

// TestFaultScheduleDeterministicPerSeed drives the same request
// sequence through two proxies sharing a seed and plan: the n-th
// request must meet the same fate on both.
func TestFaultScheduleDeterministicPerSeed(t *testing.T) {
	up, _ := stubWorker(t)
	plan := FaultPlan{Reset: 0.4}
	_, base1 := startProxy(t, up.URL, 42, plan)
	_, base2 := startProxy(t, up.URL, 42, plan)
	_, base3 := startProxy(t, up.URL, 1042, plan)

	fates := func(base string) string {
		var sb strings.Builder
		for i := 0; i < 40; i++ {
			resp, err := http.Get(base + "/v1/runs/x")
			if err != nil {
				sb.WriteByte('R')
				continue
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			sb.WriteByte('.')
		}
		return sb.String()
	}
	f1, f2, f3 := fates(base1), fates(base2), fates(base3)
	if f1 != f2 {
		t.Fatalf("same seed diverged:\n  %s\n  %s", f1, f2)
	}
	if !strings.Contains(f1, "R") || !strings.Contains(f1, ".") {
		t.Fatalf("plan with Reset=0.4 produced a degenerate schedule: %s", f1)
	}
	if f3 == f1 {
		t.Fatalf("different seeds produced identical schedules: %s", f1)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	up, want := stubWorker(t)
	p, base := startProxy(t, up.URL, 3, FaultPlan{})

	p.Partition(true)
	if _, err := http.Get(base + "/v1/stats"); err == nil {
		t.Fatal("request crossed an active partition")
	}
	p.Partition(false)
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatalf("healed partition still failing: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != want {
		t.Fatalf("healed partition body: %q", b)
	}
	if c := p.Counts(); c.Partitioned == 0 {
		t.Fatalf("partition not counted: %+v", c)
	}
}

// TestCorruptNextBreaksDigestOnce verifies the targeted corruption:
// exactly one response's body stops matching its advertised digest,
// and the next is clean again.
func TestCorruptNextBreaksDigestOnce(t *testing.T) {
	up, _ := stubWorker(t)
	p, base := startProxy(t, up.URL, 5, FaultPlan{})
	p.CorruptNext(1)

	verify := func() bool {
		resp, err := http.Get(base + "/v1/runs/abc")
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		want := resp.Header.Get(serve.ResultDigestHeader)
		// Extract the result field the digest covers.
		i := strings.Index(string(b), `"result":`)
		if i < 0 {
			t.Fatalf("no result field in %q", b)
		}
		payload := b[i+len(`"result":`) : len(b)-1]
		sum := sha256.Sum256(payload)
		return hex.EncodeToString(sum[:]) == want
	}
	if verify() {
		t.Fatal("CorruptNext(1) left the first response intact")
	}
	if !verify() {
		t.Fatal("corruption leaked past the scheduled response")
	}
	if c := p.Counts(); c.Corruptions != 1 {
		t.Fatalf("corruptions = %d, want 1", c.Corruptions)
	}
}

func TestTruncateNextCutsBody(t *testing.T) {
	up, _ := stubWorker(t)
	p, base := startProxy(t, up.URL, 9, FaultPlan{})
	p.TruncateNext(1)

	resp, err := http.Get(base + "/v1/runs/abc")
	if err == nil {
		_, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil {
			t.Fatal("truncated response read cleanly")
		}
	}
	if c := p.Counts(); c.Truncations != 1 {
		t.Fatalf("truncations = %d, want 1", c.Truncations)
	}
}

func TestLatencyInjection(t *testing.T) {
	up, _ := stubWorker(t)
	p, base := startProxy(t, up.URL, 11, FaultPlan{Latency: 1.0, MaxDelay: 30 * time.Millisecond})
	//dstore:allow-wallclock measuring injected latency in a test
	startAt := time.Now()
	for i := 0; i < 5; i++ {
		resp, err := http.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	//dstore:allow-wallclock measuring injected latency in a test
	elapsed := time.Since(startAt)
	c := p.Counts()
	if c.Delays != 5 {
		t.Fatalf("delays = %d, want 5", c.Delays)
	}
	if elapsed == 0 {
		t.Fatal("no measurable delay injected")
	}
}
