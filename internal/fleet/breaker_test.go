package fleet

import (
	"context"
	"net/http"
	"testing"
	"time"
)

// clockedRegistry builds a registry on a manual clock so breaker
// cooldowns are driven by the test, not by real time.
func clockedRegistry(threshold int, cooldown, quarCool time.Duration) (*registry, func(time.Duration)) {
	r := newRegistry(http.DefaultClient, Options{
		Vnodes:             16,
		FailureThreshold:   threshold,
		BreakerCooldown:    cooldown,
		QuarantineCooldown: quarCool,
		Seed:               7,
	})
	now := time.Unix(1_700_000_000, 0)
	r.now = func() time.Time { return now }
	return r, func(d time.Duration) { now = now.Add(d) }
}

func TestBreakerTripsAtThresholdAndRecloses(t *testing.T) {
	r, advance := clockedRegistry(3, 5*time.Second, time.Minute)
	u, err := r.add("http://w1:1", true, true)
	if err != nil {
		t.Fatal(err)
	}

	// Two failures: still below threshold, still dispatchable.
	r.recordFailure(u)
	r.recordFailure(u)
	if got := r.dispatchOrder([]string{u}); len(got) != 1 {
		t.Fatalf("worker dropped before threshold: %v", got)
	}
	// Third failure trips the breaker open.
	r.recordFailure(u)
	if trips, _, _, _ := r.breakerCounts(); trips != 1 {
		t.Fatalf("trips = %d, want 1", trips)
	}
	if got := r.dispatchOrder([]string{u}); len(got) != 0 {
		t.Fatalf("open breaker still dispatchable: %v", got)
	}
	// Failures against an open breaker must not extend the cooldown.
	advance(4 * time.Second)
	r.recordFailure(u)
	r.recordFailure(u)
	advance(1 * time.Second) // 5s since the trip, despite the burst

	// Cooldown elapsed: exactly one half-open trial is admitted.
	if got := r.dispatchOrder([]string{u}); len(got) != 1 {
		t.Fatalf("no half-open trial after cooldown: %v", got)
	}
	if got := r.dispatchOrder([]string{u}); len(got) != 0 {
		t.Fatalf("second trial admitted while the first is outstanding: %v", got)
	}
	// Trial success recloses.
	r.recordSuccess(u)
	if _, recloses, _, _ := r.breakerCounts(); recloses != 1 {
		t.Fatalf("recloses = %d, want 1", recloses)
	}
	if !r.healthy(u) {
		t.Fatal("worker not healthy after reclose")
	}
	if got := r.dispatchOrder([]string{u}); len(got) != 1 {
		t.Fatalf("reclosed breaker not dispatchable: %v", got)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	r, advance := clockedRegistry(1, time.Second, time.Minute)
	u, _ := r.add("http://w1:1", true, true)

	r.recordFailure(u) // threshold 1: trips immediately
	advance(time.Second)
	if got := r.dispatchOrder([]string{u}); len(got) != 1 {
		t.Fatalf("no trial after cooldown: %v", got)
	}
	r.recordFailure(u) // trial fails: back to open
	if got := r.dispatchOrder([]string{u}); len(got) != 0 {
		t.Fatal("reopened breaker still dispatchable")
	}
	trips, _, _, _ := r.breakerCounts()
	if trips != 2 {
		t.Fatalf("trips = %d, want 2 (initial + failed trial)", trips)
	}
	// A second full cooldown earns another trial.
	advance(time.Second)
	if got := r.dispatchOrder([]string{u}); len(got) != 1 {
		t.Fatalf("no second trial after re-cooldown: %v", got)
	}
}

// TestRegistryFlapDamping pins the damping behavior the threshold
// exists for: a worker alternating pass/fail probes never accumulates
// enough consecutive failures to trip, so fleet membership does not
// oscillate with it.
func TestRegistryFlapDamping(t *testing.T) {
	r, _ := clockedRegistry(3, 5*time.Second, time.Minute)
	u, _ := r.add("http://w1:1", true, true)

	for i := 0; i < 20; i++ {
		r.recordProbe(u, nil, false)
		r.recordProbe(u, &workerStats{}, true)
	}
	if trips, _, _, _ := r.breakerCounts(); trips != 0 {
		t.Fatalf("flapping probes tripped the breaker %d times", trips)
	}
	_, states := r.snapshot()
	if len(states) != 1 || states[0].Breaker != "closed" || !states[0].Healthy {
		t.Fatalf("worker state after flapping: %+v", states)
	}
	if states[0].ConsecutiveFailures != 0 {
		t.Fatalf("consecutive failures not reset by success: %+v", states[0])
	}
}

func TestQuarantineIsProbeGatedAndSticky(t *testing.T) {
	r, advance := clockedRegistry(3, time.Second, time.Minute)
	u, _ := r.add("http://w1:1", true, true)

	r.quarantineWorker(u)
	if n := r.quarantinedCount(); n != 1 {
		t.Fatalf("quarantined count = %d, want 1", n)
	}
	if got := r.dispatchOrder([]string{u}); len(got) != 0 {
		t.Fatal("quarantined worker still dispatchable")
	}
	// A healthy pulse before the cooldown must not clear quarantine.
	advance(30 * time.Second)
	r.recordProbe(u, &workerStats{}, true)
	if n := r.quarantinedCount(); n != 1 {
		t.Fatal("probe success cleared quarantine before its cooldown")
	}
	// Time alone is not enough either: no probe, no requalification.
	advance(40 * time.Second) // past the 1m cooldown
	if got := r.dispatchOrder([]string{u}); len(got) != 0 {
		t.Fatal("quarantine lifted without a successful probe")
	}
	// Cooldown elapsed AND a probe succeeds: requalified.
	r.recordProbe(u, &workerStats{}, true)
	if n := r.quarantinedCount(); n != 0 {
		t.Fatal("worker not requalified after cooldown + probe")
	}
	if _, _, quarantines, requalified := func() (uint64, uint64, uint64, uint64) {
		return r.breakerCounts()
	}(); quarantines != 1 || requalified != 1 {
		t.Fatalf("counters: quarantines=%d requalified=%d, want 1/1", quarantines, requalified)
	}
	if got := r.dispatchOrder([]string{u}); len(got) != 1 || !r.healthy(u) {
		t.Fatal("requalified worker not dispatchable")
	}
}

// TestJitteredIntervalSeeded pins the probe-schedule jitter: within
// ±20% of the interval, non-constant, and reproducible per seed.
func TestJitteredIntervalSeeded(t *testing.T) {
	mk := func(seed uint64) *registry {
		return newRegistry(http.DefaultClient, Options{Vnodes: 16, Seed: seed})
	}
	a, b := mk(9), mk(9)
	interval := time.Second
	lo, hi := 800*time.Millisecond, 1200*time.Millisecond
	distinct := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		da, db := a.jitteredInterval(interval), b.jitteredInterval(interval)
		if da != db {
			t.Fatalf("draw %d: same seed diverged: %v vs %v", i, da, db)
		}
		if da < lo || da > hi {
			t.Fatalf("draw %d: %v outside [%v, %v]", i, da, lo, hi)
		}
		distinct[da] = true
	}
	if len(distinct) < 2 {
		t.Fatal("jitter produced a constant schedule")
	}
	// Sub-5ns intervals have no jitter span; the interval passes through.
	if d := a.jitteredInterval(2 * time.Nanosecond); d != 2*time.Nanosecond {
		t.Fatalf("tiny interval altered: %v", d)
	}
}

func TestProbeLoopExitsPromptlyOnCancel(t *testing.T) {
	r := newRegistry(http.DefaultClient, Options{Vnodes: 16, Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		// An hour-long interval: only prompt cancellation lets this
		// return within the test deadline.
		r.probeLoop(ctx, time.Hour, time.Second)
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("probeLoop did not exit promptly on context cancellation")
	}
}
