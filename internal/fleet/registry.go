package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// workerState is what the coordinator knows about one dstore-serve
// node: static identity (the base URL, which is also its hash-ring
// identity) plus the latest health probe's findings.
type workerState struct {
	URL string `json:"url"`
	// Healthy is flipped false by a failed probe or a failed dispatch
	// and true again by the next successful probe.
	Healthy bool `json:"healthy"`
	// Static records whether the worker came from the -workers list
	// (true) or POST /v1/workers (false).
	Static bool `json:"static"`
	// QueueDepth is the worker's inflight-job gauge from its last
	// /v1/stats scrape.
	QueueDepth uint64 `json:"queue_depth"`
	// CacheHitRate is hits/(hits+misses) from the worker's result
	// cache counters at the last scrape, 0 when it has seen no
	// submissions.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Executed is the worker's jobs-executed counter at the last
	// scrape (how much simulation work it has absorbed).
	Executed uint64 `json:"executed"`
}

// registry tracks fleet membership and health, owns the hash ring,
// and runs the periodic prober.
type registry struct {
	client *http.Client
	vnodes int

	mu      sync.Mutex
	workers map[string]*workerState
	ring    *ring

	probes, probeFailures uint64
}

func newRegistry(client *http.Client, vnodes int) *registry {
	return &registry{
		client:  client,
		vnodes:  vnodes,
		workers: make(map[string]*workerState),
		ring:    buildRing(nil, vnodes),
	}
}

// normalizeWorkerURL validates and canonicalizes a worker base URL.
func normalizeWorkerURL(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("fleet: bad worker url %q: %v", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("fleet: bad worker url %q (want http[s]://host[:port])", raw)
	}
	if u.Path != "" || u.RawQuery != "" || u.Fragment != "" {
		return "", fmt.Errorf("fleet: worker url %q must be a bare base URL", raw)
	}
	return u.Scheme + "://" + u.Host, nil
}

// add registers a worker (idempotent) and rebuilds the ring. The
// worker starts unhealthy until its first successful probe unless
// assumeHealthy is set (static -workers entries, so a fleet is usable
// the instant it boots).
func (r *registry) add(rawURL string, static, assumeHealthy bool) (string, error) {
	u, err := normalizeWorkerURL(rawURL)
	if err != nil {
		return "", err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[u]; ok {
		if assumeHealthy {
			w.Healthy = true
		}
		return u, nil
	}
	r.workers[u] = &workerState{URL: u, Healthy: assumeHealthy, Static: static}
	r.rebuildLocked()
	return u, nil
}

func (r *registry) rebuildLocked() {
	urls := make([]string, 0, len(r.workers))
	for u := range r.workers { //dstore:allow-maprange buildRing sorts its input
		urls = append(urls, u)
	}
	r.ring = buildRing(urls, r.vnodes)
}

// snapshot returns the current ring and the health view. The ring is
// immutable; the states are copies.
func (r *registry) snapshot() (*ring, []workerState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]workerState, 0, len(r.workers))
	for _, w := range r.workers { //dstore:allow-maprange sorted below
		out = append(out, *w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return r.ring, out
}

// currentRing returns the ring without copying worker state.
func (r *registry) currentRing() *ring {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring
}

// healthy reports whether url is currently believed healthy.
func (r *registry) healthy(url string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[url]
	return ok && w.Healthy
}

// healthyCount returns (healthy, total).
func (r *registry) healthyCount() (int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, w := range r.workers { //dstore:allow-maprange count only
		if w.Healthy {
			n++
		}
	}
	return n, len(r.workers)
}

// markUnhealthy records a dispatch-path failure so the ring walk
// skips the worker until a probe resurrects it.
func (r *registry) markUnhealthy(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[url]; ok {
		w.Healthy = false
	}
}

// probeAll scrapes every worker's /v1/stats once, updating health and
// the per-worker gauges. Returns after every probe completes.
func (r *registry) probeAll(ctx context.Context) {
	_, states := r.snapshot()
	var wg sync.WaitGroup
	for _, w := range states {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			r.probeOne(ctx, url)
		}(w.URL)
	}
	wg.Wait()
}

// workerStats is the subset of dstore-serve's /v1/stats the
// coordinator consumes for its per-worker gauges.
type workerStats struct {
	Inflight uint64 `json:"dstore_serve_inflight_jobs"`
	Hits     uint64 `json:"dstore_serve_cache_hits_total"`
	Misses   uint64 `json:"dstore_serve_cache_misses_total"`
	Executed uint64 `json:"dstore_serve_jobs_executed_total"`
}

func (r *registry) probeOne(ctx context.Context, url string) {
	r.mu.Lock()
	r.probes++
	r.mu.Unlock()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/stats", nil)
	if err != nil {
		r.recordProbe(url, nil, false)
		return
	}
	resp, err := r.client.Do(req)
	if err != nil {
		r.recordProbe(url, nil, false)
		return
	}
	defer resp.Body.Close()
	var st workerStats
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&st) != nil {
		r.recordProbe(url, nil, false)
		return
	}
	r.recordProbe(url, &st, true)
}

func (r *registry) recordProbe(url string, st *workerStats, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, present := r.workers[url]
	if !present {
		return
	}
	if !ok {
		r.probeFailures++
		w.Healthy = false
		return
	}
	w.Healthy = true
	w.QueueDepth = st.Inflight
	w.Executed = st.Executed
	if total := st.Hits + st.Misses; total > 0 {
		w.CacheHitRate = float64(st.Hits) / float64(total)
	} else {
		w.CacheHitRate = 0
	}
}

// probeLoop runs probeAll every interval until ctx is cancelled.
func (r *registry) probeLoop(ctx context.Context, interval, timeout time.Duration) {
	//dstore:allow-wallclock fleet health probing is operational, never part of a simulation result
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			//dstore:allow-wallclock probe deadline is operational
			pctx, cancel := context.WithTimeout(ctx, timeout)
			r.probeAll(pctx)
			cancel()
		}
	}
}

// probeCounts returns (probes, failures).
func (r *registry) probeCounts() (uint64, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.probes, r.probeFailures
}
