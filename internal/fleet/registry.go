package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"dstore/internal/sim"
)

// workerState is what the coordinator knows about one dstore-serve
// node: static identity (the base URL, which is also its hash-ring
// identity) plus the latest health probe's findings and the breaker
// view derived from its failure history.
type workerState struct {
	URL string `json:"url"`
	// Healthy mirrors the breaker: true iff the breaker is closed, the
	// worker is not quarantined, and (for dynamically added workers)
	// at least one probe or dispatch has succeeded.
	Healthy bool `json:"healthy"`
	// Static records whether the worker came from the -workers list
	// (true) or POST /v1/workers (false).
	Static bool `json:"static"`
	// Breaker is the circuit state: "closed", "open", or "half-open".
	Breaker string `json:"breaker"`
	// ConsecutiveFailures counts failures since the last success while
	// the breaker is closed (it trips at the failure threshold).
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Quarantined marks a worker that served a result whose digest did
	// not verify. It is excluded from dispatch until the quarantine
	// cooldown elapses and a probe succeeds.
	Quarantined bool `json:"quarantined"`
	// QueueDepth is the worker's inflight-job gauge from its last
	// /v1/stats scrape.
	QueueDepth uint64 `json:"queue_depth"`
	// CacheHitRate is hits/(hits+misses) from the worker's result
	// cache counters at the last scrape, 0 when it has seen no
	// submissions.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Executed is the worker's jobs-executed counter at the last
	// scrape (how much simulation work it has absorbed).
	Executed uint64 `json:"executed"`
}

// registry tracks fleet membership and health, owns the hash ring and
// the per-worker circuit breakers, and runs the periodic prober.
type registry struct {
	client             *http.Client
	vnodes             int
	failThreshold      int
	cooldown           time.Duration
	quarantineCooldown time.Duration
	// now is the clock for breaker transitions, injected so tests can
	// drive cooldowns deterministically.
	now func() time.Time

	mu      sync.Mutex
	workers map[string]*workerState
	brk     map[string]*breaker
	ring    *ring
	// rng drives the probe-interval jitter, seeded from Options.Seed
	// so a fleet's probe schedule is reproducible. Guarded by mu.
	rng *sim.Rand

	probes, probeFailures uint64
	// breaker/quarantine counters for /v1/metrics.
	trips, recloses, quarantines, requalified uint64
}

func newRegistry(client *http.Client, opt Options) *registry {
	return &registry{
		client:             client,
		vnodes:             opt.Vnodes,
		failThreshold:      opt.FailureThreshold,
		cooldown:           opt.BreakerCooldown,
		quarantineCooldown: opt.QuarantineCooldown,
		//dstore:allow-wallclock breaker cooldowns are operational fleet state, never simulation results
		now:     time.Now,
		workers: make(map[string]*workerState),
		brk:     make(map[string]*breaker),
		ring:    buildRing(nil, opt.Vnodes),
		rng:     sim.NewRand(opt.Seed ^ 0xFEE7C0DE),
	}
}

// normalizeWorkerURL validates and canonicalizes a worker base URL.
func normalizeWorkerURL(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("fleet: bad worker url %q: %v", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("fleet: bad worker url %q (want http[s]://host[:port])", raw)
	}
	if u.Path != "" || u.RawQuery != "" || u.Fragment != "" {
		return "", fmt.Errorf("fleet: worker url %q must be a bare base URL", raw)
	}
	return u.Scheme + "://" + u.Host, nil
}

// add registers a worker (idempotent) and rebuilds the ring. The
// worker starts unhealthy until its first successful probe unless
// assumeHealthy is set (static -workers entries, so a fleet is usable
// the instant it boots). Its breaker starts closed either way — an
// unprobed dynamic worker is dispatchable, just ranked behind workers
// with a confirmed pulse.
func (r *registry) add(rawURL string, static, assumeHealthy bool) (string, error) {
	u, err := normalizeWorkerURL(rawURL)
	if err != nil {
		return "", err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[u]; ok {
		if assumeHealthy {
			w.Healthy = true
		}
		return u, nil
	}
	r.workers[u] = &workerState{URL: u, Healthy: assumeHealthy, Static: static, Breaker: bkClosed.String()}
	r.brk[u] = &breaker{}
	r.rebuildLocked()
	return u, nil
}

func (r *registry) rebuildLocked() {
	urls := make([]string, 0, len(r.workers))
	for u := range r.workers { //dstore:allow-maprange buildRing sorts its input
		urls = append(urls, u)
	}
	r.ring = buildRing(urls, r.vnodes)
}

// refreshLocked syncs a worker's display fields from its breaker.
func (r *registry) refreshLocked(u string) {
	w, b := r.workers[u], r.brk[u]
	if w == nil || b == nil {
		return
	}
	w.Breaker = b.state.String()
	w.ConsecutiveFailures = b.fails
	w.Quarantined = b.quarantined
	if b.state != bkClosed || b.quarantined {
		w.Healthy = false
	}
}

// snapshot returns the current ring and the health view. The ring is
// immutable; the states are copies.
func (r *registry) snapshot() (*ring, []workerState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]workerState, 0, len(r.workers))
	for _, w := range r.workers { //dstore:allow-maprange sorted below
		out = append(out, *w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return r.ring, out
}

// currentRing returns the ring without copying worker state.
func (r *registry) currentRing() *ring {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring
}

// healthy reports whether url is currently believed healthy.
func (r *registry) healthy(url string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[url]
	return ok && w.Healthy
}

// healthyCount returns (healthy, total).
func (r *registry) healthyCount() (int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, w := range r.workers { //dstore:allow-maprange count only
		if w.Healthy {
			n++
		}
	}
	return n, len(r.workers)
}

// quarantinedCount returns how many workers are quarantined.
func (r *registry) quarantinedCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, b := range r.brk { //dstore:allow-maprange count only
		if b.quarantined {
			n++
		}
	}
	return n
}

// dispatchOrder filters owners down to workers whose breakers admit a
// request right now (consuming half-open trial tokens), confirmed-
// healthy workers first. Quarantined and cooling (open) workers are
// excluded entirely; retry rounds in runJob re-evaluate, so an open
// breaker naturally becomes a half-open trial once its cooldown ends.
func (r *registry) dispatchOrder(owners []string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	var healthy, rest []string
	for _, u := range owners {
		b := r.brk[u]
		if b == nil || !b.allow(now, r.cooldown) {
			if b != nil {
				r.refreshLocked(u)
			}
			continue
		}
		r.refreshLocked(u)
		if w := r.workers[u]; w != nil && w.Healthy {
			healthy = append(healthy, u)
		} else {
			rest = append(rest, u)
		}
	}
	return append(healthy, rest...)
}

// recordFailure notes a dispatch-path failure against the worker's
// breaker. Unlike the old one-strike markUnhealthy, a single failure
// only increments the consecutive count; the worker leaves the ring
// walk once the threshold trips the breaker open.
func (r *registry) recordFailure(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.brk[url]
	if b == nil {
		return
	}
	if b.failure(r.now(), r.failThreshold) {
		r.trips++
	}
	r.refreshLocked(url)
}

// recordSuccess notes a dispatch-path success, reclosing a half-open
// breaker and resetting the consecutive-failure count.
func (r *registry) recordSuccess(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.brk[url]
	if b == nil {
		return
	}
	if b.success() {
		r.recloses++
	}
	if w := r.workers[url]; w != nil {
		w.Healthy = true
	}
	r.refreshLocked(url)
}

// quarantineWorker flags url as having served corrupt bytes: breaker
// forced open, excluded from dispatch until the quarantine cooldown
// elapses and a probe succeeds.
func (r *registry) quarantineWorker(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.brk[url]
	if b == nil {
		return
	}
	if !b.quarantined {
		r.quarantines++
	}
	b.quarantine(r.now())
	r.refreshLocked(url)
}

// probeAll scrapes every worker's /v1/stats once, updating health and
// the per-worker gauges. Returns after every probe completes.
func (r *registry) probeAll(ctx context.Context) {
	_, states := r.snapshot()
	var wg sync.WaitGroup
	for _, w := range states {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			r.probeOne(ctx, url)
		}(w.URL)
	}
	wg.Wait()
}

// workerStats is the subset of dstore-serve's /v1/stats the
// coordinator consumes for its per-worker gauges.
type workerStats struct {
	Inflight uint64 `json:"dstore_serve_inflight_jobs"`
	Hits     uint64 `json:"dstore_serve_cache_hits_total"`
	Misses   uint64 `json:"dstore_serve_cache_misses_total"`
	Executed uint64 `json:"dstore_serve_jobs_executed_total"`
}

func (r *registry) probeOne(ctx context.Context, url string) {
	r.mu.Lock()
	r.probes++
	r.mu.Unlock()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/stats", nil)
	if err != nil {
		r.recordProbe(url, nil, false)
		return
	}
	resp, err := r.client.Do(req)
	if err != nil {
		r.recordProbe(url, nil, false)
		return
	}
	defer resp.Body.Close()
	var st workerStats
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&st) != nil {
		r.recordProbe(url, nil, false)
		return
	}
	r.recordProbe(url, &st, true)
}

// recordProbe feeds a probe result through the worker's breaker. A
// successful probe is the rehabilitation path: it recloses an open or
// half-open breaker and — once the quarantine cooldown has elapsed —
// requalifies a quarantined worker.
func (r *registry) recordProbe(url string, st *workerStats, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, present := r.workers[url]
	b := r.brk[url]
	if !present || b == nil {
		return
	}
	now := r.now()
	if !ok {
		r.probeFailures++
		if b.failure(now, r.failThreshold) {
			r.trips++
		}
		r.refreshLocked(url)
		return
	}
	if b.quarantined {
		if !b.requalify(now, r.quarantineCooldown) {
			// Quarantine is sticky: a pulse alone does not clear it
			// before the cooldown.
			r.refreshLocked(url)
			return
		}
		r.requalified++
	} else if b.state == bkOpen && !b.allow(now, r.cooldown) {
		// Still cooling down; the probe success neither recloses nor
		// counts against the worker. The post-cooldown probe will.
		return
	}
	if b.success() {
		r.recloses++
	}
	w.Healthy = true
	w.QueueDepth = st.Inflight
	w.Executed = st.Executed
	if total := st.Hits + st.Misses; total > 0 {
		w.CacheHitRate = float64(st.Hits) / float64(total)
	} else {
		w.CacheHitRate = 0
	}
	r.refreshLocked(url)
}

// jitteredInterval spreads the probe period ±20% with seeded
// randomness, so several coordinators (or one restarted on the same
// seed state) don't probe every worker in lockstep.
func (r *registry) jitteredInterval(interval time.Duration) time.Duration {
	span := uint64(interval) / 5
	if span == 0 {
		return interval
	}
	r.mu.Lock()
	off := r.rng.Uint64n(2*span + 1)
	r.mu.Unlock()
	return interval - time.Duration(span) + time.Duration(off)
}

// probeLoop runs probeAll roughly every interval (jittered ±20%) until
// ctx is cancelled. A timer per round — rather than a ticker — lets
// each round draw fresh jitter, and the select exits promptly on
// cancellation even mid-wait.
func (r *registry) probeLoop(ctx context.Context, interval, timeout time.Duration) {
	for {
		//dstore:allow-wallclock fleet health probing is operational, never part of a simulation result
		t := time.NewTimer(r.jitteredInterval(interval))
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		//dstore:allow-wallclock probe deadline is operational
		pctx, cancel := context.WithTimeout(ctx, timeout)
		r.probeAll(pctx)
		cancel()
	}
}

// probeCounts returns (probes, failures).
func (r *registry) probeCounts() (uint64, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.probes, r.probeFailures
}

// breakerCounts returns (trips, recloses, quarantines, requalified).
func (r *registry) breakerCounts() (uint64, uint64, uint64, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trips, r.recloses, r.quarantines, r.requalified
}
