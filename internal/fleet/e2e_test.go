package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFleetE2E is the whole-system proof: real coordinator and worker
// processes, a ≥1000-job sweep matrix, a worker SIGKILLed mid-sweep,
// every result byte-identical to a single-process oracle, and the
// killed worker restarted over its persistent store serving a cached
// result and a snapshot-warm job without re-simulating.
func TestFleetE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	serveBin, coordBin := buildBinaries(t)
	client := &http.Client{Timeout: time.Minute}

	// Three workers, each with its own persistent store.
	stores := make([]string, 3)
	workers := make([]*proc, 3)
	for i := range workers {
		stores[i] = filepath.Join(t.TempDir(), fmt.Sprintf("store%d", i))
		workers[i] = startProc(t, serveBin, "dstore-serve listening on ",
			"-addr", "127.0.0.1:0", "-workers", "2", "-queue", "256", "-store", stores[i])
	}

	// Coordinator with two static workers; the third registers itself
	// through the API.
	coord := startProc(t, coordBin, "dstore-coord listening on ",
		"-addr", "127.0.0.1:0",
		"-workers", workers[0].url+","+workers[1].url,
		"-probe-interval", "300ms", "-probe-timeout", "2s",
		"-poll-interval", "5ms", "-sweep-workers", "64")
	resp, err := client.Post(coord.url+"/v1/workers", "application/json",
		strings.NewReader(fmt.Sprintf(`{"url":%q}`, workers[2].url)))
	if err != nil {
		t.Fatal(err)
	}
	regBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(regBody), `"healthy":true`) {
		t.Fatalf("worker registration: %d: %s", resp.StatusCode, regBody)
	}

	// 4 benches x 5 prefetch depths x 5 warp widths x 10 SM counts =
	// exactly 1000 distinct jobs. The three config axes are all
	// prefix-irrelevant, so each bench's produce phase simulates once
	// per worker and the snapshot store absorbs the rest.
	matrix := `{
		"bench": ["MT", "VA", "BL", "NN"],
		"mode": ["direct-store"],
		"config": {
			"prefetch_depth": [0, 1, 2, 3, 4],
			"max_warps_per_sm": [4, 8, 12, 16, 24],
			"sms": [2, 4, 6, 8, 10, 12, 14, 16, 18, 20]
		}
	}`
	const wantJobs = 1000

	// Stream the sweep; SIGKILL worker 1 once enough of it is in
	// flight that a healthy share of its jobs are still pending.
	req, err := http.NewRequest(http.MethodPost, coord.url+"/v1/sweeps", strings.NewReader(matrix))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	sweepResp, err := (&http.Client{}).Do(req) // no timeout: the stream lives for the whole sweep
	if err != nil {
		t.Fatal(err)
	}
	defer sweepResp.Body.Close()
	if sweepResp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(sweepResp.Body)
		t.Fatalf("sweep submit: %d: %s", sweepResp.StatusCode, b)
	}

	var (
		results []Outcome
		report  *Report
		killed  = false
	)
	sc := bufio.NewScanner(sweepResp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev sweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case "result":
			var o Outcome
			if err := json.Unmarshal(ev.Data, &o); err != nil {
				t.Fatal(err)
			}
			results = append(results, o)
			if !killed && len(results) == 150 {
				killed = true
				if err := workers[1].cmd.Process.Kill(); err != nil {
					t.Fatalf("SIGKILL worker 1: %v", err)
				}
				t.Logf("killed worker 1 (%s) after %d streamed results", workers[1].url, len(results))
			}
		case "report":
			report = &Report{}
			if err := json.Unmarshal(ev.Data, report); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("sweep finished before the kill point — matrix too small to exercise failover")
	}
	if len(results) != wantJobs {
		t.Fatalf("streamed %d results, want %d", len(results), wantJobs)
	}
	if report == nil || report.Completed != wantJobs || report.Failed != 0 {
		t.Fatalf("report after mid-sweep kill: %+v", report)
	}
	for _, o := range results {
		if o.Error != "" {
			t.Fatalf("job %.8s failed despite failover: %s", o.ID, o.Error)
		}
	}
	if report.Failovers == 0 {
		t.Fatal("no failovers recorded — the kill had no observable effect")
	}
	var stats map[string]uint64
	if err := getJSONInto(client, coord.url+"/v1/stats", &stats); err != nil {
		t.Fatal(err)
	}
	if stats["fleet_jobs_failed_total"] != 0 || stats["fleet_dispatch_failovers_total"] == 0 {
		t.Fatalf("coordinator stats after kill: %v", stats)
	}

	// Oracle: one fresh single-process worker (memory only) re-runs
	// every canonical spec; each fleet result must match byte for
	// byte.
	oracle := startProc(t, serveBin, "dstore-serve listening on ",
		"-addr", "127.0.0.1:0", "-workers", "2", "-queue", "256")
	oracleResults := runAllOn(t, client, oracle.url, results)
	for _, o := range results {
		want, ok := oracleResults[o.ID]
		if !ok {
			t.Fatalf("oracle produced no result for %.8s", o.ID)
		}
		if !bytes.Equal(o.Result, want) {
			t.Fatalf("job %.8s differs from oracle:\n  fleet:  %s\n  oracle: %s", o.ID, o.Result, want)
		}
	}

	// Restart the killed worker over its surviving store: a job it
	// completed before the kill must be served from disk without
	// re-simulating, and a brand-new job in a known prefix family must
	// restore its produce phase from a disk snapshot.
	var fromKilled *Outcome
	for i := range results {
		if results[i].Worker == workers[1].url {
			fromKilled = &results[i]
			break
		}
	}
	if fromKilled == nil {
		t.Fatal("killed worker served no streamed results — cannot exercise restart")
	}
	restarted := startProc(t, serveBin, "dstore-serve listening on ",
		"-addr", "127.0.0.1:0", "-workers", "2", "-store", stores[1])

	resp, err = client.Post(restarted.url+"/v1/runs", "application/json", bytes.NewReader(fromKilled.Spec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var rr runResp
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !rr.Cached {
		t.Fatalf("restarted worker did not serve %.8s from its store: %d %s", fromKilled.ID, resp.StatusCode, body)
	}
	if !bytes.Equal(rr.Result, fromKilled.Result) {
		t.Fatalf("restarted worker served different bytes for %.8s", fromKilled.ID)
	}
	var wstats map[string]uint64
	if err := getJSONInto(client, restarted.url+"/v1/stats", &wstats); err != nil {
		t.Fatal(err)
	}
	if wstats["dstore_serve_jobs_executed_total"] != 0 {
		t.Fatalf("restarted worker re-simulated the cached job: %v", wstats)
	}
	if wstats["dstore_store_disk_hits_total"] == 0 {
		t.Fatalf("no disk hit recorded for the restart-served result: %v", wstats)
	}

	// Snapshot-warm: a config outside the sweep matrix but inside a
	// swept prefix family (the warp/SM/prefetch axes are stripped from
	// the prefix key) — the produce phase must restore from disk.
	var warmDoc struct {
		Bench string `json:"bench"`
	}
	if err := json.Unmarshal(fromKilled.Result, &warmDoc); err != nil {
		t.Fatal(err)
	}
	warmSpec := fmt.Sprintf(`{"bench":%q,"mode":"direct-store","input":"small","config":{"max_warps_per_sm":64}}`, warmDoc.Bench)
	warmID, warmBody := runToDone(t, client, restarted.url, warmSpec)
	if err := getJSONInto(client, restarted.url+"/v1/stats", &wstats); err != nil {
		t.Fatal(err)
	}
	if wstats["dstore_serve_snapshot_hits_total"] == 0 {
		t.Fatalf("warm job %.8s did not restore its produce phase from the disk snapshot: %v", warmID, wstats)
	}
	if wstats["dstore_serve_jobs_executed_total"] != 1 {
		t.Fatalf("restarted worker executed %d jobs, want exactly the warm one", wstats["dstore_serve_jobs_executed_total"])
	}
	// And the warm result still matches a fully cold oracle run.
	oracleWarmID, oracleWarm := runToDone(t, client, oracle.url, warmSpec)
	if warmID != oracleWarmID || !bytes.Equal(warmBody, oracleWarm) {
		t.Fatalf("snapshot-warm result differs from cold oracle for %.8s", warmID)
	}
}

// buildBinaries compiles dstore-serve and dstore-coord once into a
// temp dir. The children run uninstrumented — the race detector on
// the test binary still covers the streaming client paths.
func buildBinaries(t *testing.T) (serveBin, coordBin string) {
	t.Helper()
	dir := t.TempDir()
	serveBin = filepath.Join(dir, "dstore-serve")
	coordBin = filepath.Join(dir, "dstore-coord")
	for bin, pkg := range map[string]string{serveBin: "./cmd/dstore-serve", coordBin: "./cmd/dstore-coord"} { //dstore:allow-maprange independent builds, order free
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = repoRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return serveBin, coordBin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}

// proc is one child daemon with its parsed base URL.
type proc struct {
	cmd *exec.Cmd
	url string
}

var addrRe = regexp.MustCompile(`listening on (\S+?:\d+)`)

// startProc launches a daemon and waits for its "listening on"
// banner on stderr to learn the bound port.
func startProc(t *testing.T, bin, banner string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, banner) {
				if m := addrRe.FindStringSubmatch(line); m != nil {
					select {
					case addrCh <- m[1]:
					default:
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		p.url = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not announce a listen address", bin)
	}
	return p
}

func getJSONInto(c *http.Client, url string, out any) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, b)
	}
	return json.Unmarshal(b, out)
}

// runToDone submits a spec and polls it to completion.
func runToDone(t *testing.T, c *http.Client, base, spec string) (string, []byte) {
	t.Helper()
	resp, err := c.Post(base+"/v1/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var rr runResp
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("submit %s: %v: %s", spec, err, body)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return rr.ID, rr.Result
	case http.StatusAccepted:
	default:
		t.Fatalf("submit %s: %d: %s", spec, resp.StatusCode, body)
	}
	deadline := time.Now().Add(2 * time.Minute) //dstore:allow-wallclock test polling deadline
	for {
		var st runResp
		if err := getJSONInto(c, base+"/v1/runs/"+rr.ID, &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == "done" {
			if len(st.Result) > 0 {
				return rr.ID, st.Result
			}
			resp, err := c.Get(base + "/v1/runs/" + rr.ID + "/result")
			if err != nil {
				t.Fatal(err)
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return rr.ID, b
		}
		if st.Status == "failed" || st.Status == "cancelled" {
			t.Fatalf("job %s: %s: %s", rr.ID, st.Status, st.Error)
		}
		if time.Now().After(deadline) { //dstore:allow-wallclock test polling deadline
			t.Fatalf("job %s still %q", rr.ID, st.Status)
		}
		time.Sleep(10 * time.Millisecond) //dstore:allow-wallclock test polling
	}
}

// runAllOn replays every outcome's canonical spec on one server with
// bounded concurrency, returning result bodies by job ID.
func runAllOn(t *testing.T, c *http.Client, base string, outcomes []Outcome) map[string][]byte {
	t.Helper()
	var mu sync.Mutex
	out := make(map[string][]byte, len(outcomes))
	feed := make(chan Outcome)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for o := range feed {
				id, body := oracleRun(t, c, base, o)
				mu.Lock()
				out[id] = body
				mu.Unlock()
			}
		}()
	}
	for _, o := range outcomes {
		feed <- o
	}
	close(feed)
	wg.Wait()
	return out
}

// oracleRun pushes one spec through the oracle, tolerating 429
// backpressure.
func oracleRun(t *testing.T, c *http.Client, base string, o Outcome) (string, []byte) {
	for {
		resp, err := c.Post(base+"/v1/runs", "application/json", bytes.NewReader(o.Spec))
		if err != nil {
			t.Error(err)
			return o.ID, nil
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			time.Sleep(50 * time.Millisecond) //dstore:allow-wallclock oracle backpressure
			continue
		}
		var rr runResp
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Errorf("oracle submit: %v: %s", err, body)
			return o.ID, nil
		}
		if resp.StatusCode == http.StatusOK {
			return rr.ID, rr.Result
		}
		// Accepted: poll to done.
		for {
			var st runResp
			if err := getJSONInto(c, base+"/v1/runs/"+rr.ID, &st); err != nil {
				t.Error(err)
				return rr.ID, nil
			}
			switch st.Status {
			case "done":
				if len(st.Result) > 0 {
					return rr.ID, st.Result
				}
				resp, err := c.Get(base + "/v1/runs/" + rr.ID + "/result")
				if err != nil {
					t.Error(err)
					return rr.ID, nil
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				return rr.ID, b
			case "failed", "cancelled":
				t.Errorf("oracle job %s: %s: %s", rr.ID, st.Status, st.Error)
				return rr.ID, nil
			}
			time.Sleep(5 * time.Millisecond) //dstore:allow-wallclock oracle polling
		}
	}
}
