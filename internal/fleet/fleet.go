// Package fleet turns a set of dstore-serve workers into one logical
// simulation service: a coordinator that consistent-hashes
// content-addressed job IDs across the fleet, proxies single-job
// requests to the owning worker (failing over to the next replica on
// the ring when a worker is down or has lost its cache), and runs
// batch sweeps — a config matrix expanded server-side, fanned out to
// the fleet, with partial results streamed to the client as they land
// and an aggregate report computed at completion.
//
// Placement is what makes the fleet cache-efficient: a job's ID is
// the SHA-256 of its canonical spec, so routing by hash ring sends
// every resubmission of a spec to the same worker, whose
// content-addressed result cache and warm-prefix snapshot store
// (persistent when the worker runs with -store) absorb it without
// re-simulating. The coordinator holds no simulation state — every
// byte it returns came from a worker and is digest-verified against
// the worker's own content address before it is forwarded — and with
// a journal directory configured (Options.JournalDir) it can be
// SIGKILLed mid-sweep and resume on restart, re-dispatching only the
// jobs whose outcomes had not yet been journalled (DESIGN.md §13).
package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dstore/internal/obs"
	"dstore/internal/obs/dtrace"
	"dstore/internal/serve"
	"dstore/internal/sim"
	"dstore/internal/store"
)

// Options configures a Coordinator. The zero value gets sensible
// defaults; Workers may be empty when the fleet is populated via
// POST /v1/workers.
type Options struct {
	// Workers is the static member list (base URLs). Static workers
	// are assumed healthy at boot so the fleet is usable before the
	// first probe round.
	Workers []string
	// Vnodes is the number of hash-ring points per worker. More
	// vnodes, smoother key distribution. Default 64.
	Vnodes int
	// Replicas bounds how many distinct workers a job is tried on
	// before it is failed (the owner, then its successors on the
	// ring). Zero or negative means every worker.
	Replicas int
	// SweepWorkers is the number of jobs one sweep dispatches
	// concurrently. Default 16.
	SweepWorkers int
	// ProbeInterval is the health-probe period (jittered ±20% per
	// round from Seed). Default 2s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round. Default 2s.
	ProbeTimeout time.Duration
	// RequestTimeout bounds each individual HTTP call to a worker.
	// Default 30s.
	RequestTimeout time.Duration
	// PollInterval is the status-poll period while a worker simulates
	// an accepted job. Default 20ms.
	PollInterval time.Duration
	// JobDeadline bounds one job end to end: submission, queueing,
	// simulation and every failover retry. Default 5m.
	JobDeadline time.Duration
	// RetryAfterMax caps how long a 429's Retry-After hint is
	// honoured before retrying anyway. Default 2s.
	RetryAfterMax time.Duration

	// Seed drives every operational random draw — probe jitter,
	// backoff jitter — so a fleet's failure handling is reproducible.
	// Default 1.
	Seed uint64
	// FailureThreshold is how many consecutive failures trip a
	// worker's circuit breaker open. Default 3.
	FailureThreshold int
	// BreakerCooldown is how long an open breaker waits before
	// admitting one half-open trial request. Default 5s.
	BreakerCooldown time.Duration
	// QuarantineCooldown is how long an integrity quarantine lasts at
	// minimum; after it, a successful probe requalifies the worker.
	// Default 2m.
	QuarantineCooldown time.Duration
	// DispatchRetries is how many extra ring passes (beyond the
	// first) a job gets, with exponential backoff between passes.
	// Default 3; negative disables retry rounds.
	DispatchRetries int
	// BackoffBase is the first-retry backoff; each further round
	// doubles it up to BackoffMax. Default 100ms.
	BackoffBase time.Duration
	// BackoffMax caps the per-round backoff. Default 5s.
	BackoffMax time.Duration
	// MaxPending bounds jobs in the dispatch path at once; beyond it
	// the coordinator sheds load with 429 + Retry-After rather than
	// queueing without bound. Default 1024; negative means unlimited.
	MaxPending int
	// JournalDir, when set, enables sweep crash-recovery: every sweep
	// writes a WAL under this directory (spec at start, each outcome
	// as it lands) and New resumes any journal found incomplete.
	JournalDir string

	// Transport overrides the HTTP transport for every worker call
	// (nil means http.DefaultTransport). Tests inject an in-process
	// router here so worker URLs — and with them ring placement and
	// trace exports — are stable across runs.
	Transport http.RoundTripper
	// Name labels the coordinator's process row in stitched traces.
	// Default "coordinator".
	Name string
	// Clock supplies distributed-tracing span timestamps (dtrace). Nil
	// falls back to the recorder's monotonic sequence; the daemon
	// injects a wall clock at the cmd layer.
	Clock dtrace.Clock
	// TraceSpanCap bounds the span ring (dtrace.DefaultCap when zero).
	TraceSpanCap int
	// FederationTimeout bounds the per-worker /metrics scrape and
	// /v1/traces fetch during federation. Default 2s.
	FederationTimeout time.Duration
	// EnablePprof registers the runtime profiling handlers under
	// /debug/pprof/ (the -pprof flag).
	EnablePprof bool
	// StoreDir, when set, opens a content-addressed store for
	// fleet-wide CPU profile captures (POST /v1/profiles); without it
	// the endpoint answers 503.
	StoreDir string
	// StoreMaxBytes caps the profile store. Zero means
	// store.DefaultMaxBytes; negative means unlimited.
	StoreMaxBytes int64
}

func (o Options) withDefaults() Options {
	if o.Vnodes <= 0 {
		o.Vnodes = 64
	}
	if o.SweepWorkers <= 0 {
		o.SweepWorkers = 16
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 20 * time.Millisecond
	}
	if o.JobDeadline <= 0 {
		o.JobDeadline = 5 * time.Minute
	}
	if o.RetryAfterMax <= 0 {
		o.RetryAfterMax = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.QuarantineCooldown <= 0 {
		o.QuarantineCooldown = 2 * time.Minute
	}
	if o.DispatchRetries == 0 {
		o.DispatchRetries = 3
	}
	if o.DispatchRetries < 0 {
		o.DispatchRetries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.MaxPending == 0 {
		o.MaxPending = 1024
	}
	if o.Name == "" {
		o.Name = "coordinator"
	}
	if o.FederationTimeout <= 0 {
		o.FederationTimeout = 2 * time.Second
	}
	return o
}

// Coordinator is the fleet front-end. Construct with New, expose
// Handler over HTTP, stop with Close.
type Coordinator struct {
	opt    Options
	client *http.Client
	reg    *registry
	mux    *http.ServeMux

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// rng supplies backoff jitter; guarded by rngMu (dispatches are
	// concurrent, and sim.Rand is not).
	rngMu sync.Mutex
	rng   *sim.Rand

	sweepMu sync.Mutex
	sweeps  map[string]*sweepRun

	// rec holds the coordinator's span ring; spans from workers are
	// stitched with it at trace export (GET /v1/sweeps/{id}/trace).
	rec *dtrace.Recorder
	// profiles is the content-addressed store for fleet CPU-profile
	// captures; nil without Options.StoreDir.
	profiles *store.Store

	// histMu guards dispatchLat (dispatches are concurrent).
	histMu      sync.Mutex
	dispatchLat *obs.Histogram

	pending        atomic.Int64  // jobs in the dispatch path right now
	dispatched     atomic.Uint64 // jobs handed to the dispatch path
	completed      atomic.Uint64 // jobs that returned a result
	jobsFailed     atomic.Uint64 // jobs that exhausted every replica or failed terminally
	failovers      atomic.Uint64 // replica advances after a worker error
	retryRounds    atomic.Uint64 // backoff rounds taken after a full ring pass failed
	shed           atomic.Uint64 // submissions refused at the MaxPending bound
	corrupt        atomic.Uint64 // worker responses whose digest did not verify
	streamed       atomic.Uint64 // sweep results written to streaming clients
	sweepsRun      atomic.Uint64 // sweeps started
	sweepsDone     atomic.Uint64 // sweeps run to completion
	sweepsDegraded atomic.Uint64 // completed sweeps carrying failed jobs
	sweepsResumed  atomic.Uint64 // incomplete journals resumed at startup
	jobsReplayed   atomic.Uint64 // journalled outcomes restored without re-dispatch
	journalAppends atomic.Uint64 // records durably appended to sweep journals
	journalErrors  atomic.Uint64 // journal appends or opens that failed (sweep continues)
	fedScrapes     atomic.Uint64 // worker /metrics scrapes during federation
	fedErrors      atomic.Uint64 // federation scrapes that failed (worker omitted)
	traceExports   atomic.Uint64 // stitched traces served
	profileCaps    atomic.Uint64 // fleet CPU-profile captures stored
}

// New builds a coordinator over the static worker list, resumes any
// incomplete sweep journals under Options.JournalDir, and starts the
// health-probe loop. An unparseable worker URL or an unreadable
// journal directory is a construction error.
func New(opt Options) (*Coordinator, error) {
	opt = opt.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		opt:         opt,
		client:      &http.Client{Timeout: opt.RequestTimeout, Transport: opt.Transport},
		rng:         sim.NewRand(opt.Seed ^ 0xBACC0FF),
		sweeps:      make(map[string]*sweepRun),
		rec:         dtrace.New(dtrace.Options{Cap: opt.TraceSpanCap, Clock: opt.Clock, Process: opt.Name}),
		dispatchLat: obs.NewHistogram("fleet_dispatch_latency_ns"),
		ctx:         ctx,
		cancel:      cancel,
	}
	if opt.StoreDir != "" {
		st, err := store.Open(store.Options{Dir: opt.StoreDir, MaxBytes: opt.StoreMaxBytes})
		if err != nil {
			cancel()
			return nil, fmt.Errorf("fleet: open profile store: %w", err)
		}
		c.profiles = st
	}
	c.reg = newRegistry(c.client, opt)
	for _, w := range opt.Workers {
		if _, err := c.reg.add(w, true, true); err != nil {
			cancel()
			return nil, err
		}
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /v1/runs", c.handleSubmit)
	c.mux.HandleFunc("GET /v1/runs/{id}", c.handleRunProxy)
	c.mux.HandleFunc("GET /v1/runs/{id}/result", c.handleRunProxy)
	c.mux.HandleFunc("GET /v1/runs/{id}/trace", c.handleRunProxy)
	c.mux.HandleFunc("GET /v1/benchmarks", c.handleBenchmarks)
	c.mux.HandleFunc("POST /v1/workers", c.handleWorkerAdd)
	c.mux.HandleFunc("GET /v1/workers", c.handleWorkerList)
	c.mux.HandleFunc("POST /v1/sweeps", c.handleSweepSubmit)
	c.mux.HandleFunc("GET /v1/sweeps", c.handleSweepList)
	c.mux.HandleFunc("GET /v1/sweeps/{id}", c.handleSweepStatus)
	c.mux.HandleFunc("GET /v1/sweeps/{id}/stream", c.handleSweepStream)
	c.mux.HandleFunc("GET /v1/sweeps/{id}/report", c.handleSweepReport)
	c.mux.HandleFunc("GET /v1/sweeps/{id}/trace", c.handleSweepTrace)
	c.mux.HandleFunc("POST /v1/profiles", c.handleProfileCapture)
	if opt.EnablePprof {
		c.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		c.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		c.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		c.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		c.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	c.mux.HandleFunc("GET /healthz", c.handleHealth)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.HandleFunc("GET /v1/stats", c.handleStats)
	if opt.JournalDir != "" {
		if err := c.loadJournals(); err != nil {
			cancel()
			return nil, err
		}
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.reg.probeLoop(ctx, opt.ProbeInterval, opt.ProbeTimeout)
	}()
	return c, nil
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Close stops the probe loop and aborts in-flight dispatches and
// sweeps. Journals of unfinished sweeps are left incomplete on disk,
// which is exactly what lets the next New resume them.
func (c *Coordinator) Close() {
	c.cancel()
	c.wg.Wait()
	if c.profiles != nil {
		_ = c.profiles.Close()
	}
}

// terminalError marks a job failure that no other replica can fix: a
// rejected spec, or a deterministic simulation failure (the same spec
// would fail identically everywhere).
type terminalError struct{ msg string }

func (e *terminalError) Error() string { return e.msg }

// corruptError marks a response whose body failed digest
// verification: the worker served bytes that do not match its own
// advertised content address. The worker is quarantined and the job
// retried on a replica — corruption is a worker-integrity event, not
// a property of the job.
type corruptError struct {
	worker string
	detail string
}

func (e *corruptError) Error() string {
	return fmt.Sprintf("fleet: corrupt result from %s: %s", e.worker, e.detail)
}

// digestOf returns the content address (sha256 hex) of a result body,
// matching serve.ResultDigestHeader's format.
func digestOf(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// verifyDigest checks a result payload against the digest the worker
// advertised in its response headers. No header means no claim (an
// older worker) — nothing to verify.
func verifyDigest(worker string, hdr http.Header, payload []byte) error {
	want := hdr.Get(serve.ResultDigestHeader)
	if want == "" {
		return nil
	}
	if got := digestOf(payload); got != want {
		return &corruptError{worker: worker, detail: fmt.Sprintf("body digest %.12s… does not match advertised %.12s…", got, want)}
	}
	return nil
}

// jobOutcome is one successfully dispatched job.
type jobOutcome struct {
	body    []byte // canonical result document, digest-verified
	worker  string // base URL that answered
	cached  bool   // answered 200-from-cache on submission
	workers int    // dispatch attempts spent (1 = owner answered first try)
}

// traceCtx carries one job's distributed-trace identity through the
// dispatch path: the trace every span lands under and the job's index
// within a sweep (dtrace.JobNone for single-run submissions). The zero
// value disables tracing for the call chain.
type traceCtx struct {
	trace uint64
	job   uint32
}

// do performs one HTTP call against a worker and slurps the body.
func (c *Coordinator) do(ctx context.Context, method, url string, body []byte) (int, http.Header, []byte, error) {
	return c.doT(ctx, method, url, body, traceCtx{})
}

// doT is do with trace propagation: a non-zero trace context is
// stamped onto the outbound request headers so the worker's own spans
// land under the same trace ID.
func (c *Coordinator) doT(ctx context.Context, method, url string, body []byte, tc traceCtx) (int, http.Header, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = readerOf(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	dtrace.SetHeaders(req.Header, tc.trace, tc.job)
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, b, nil
}

// readerOf avoids importing bytes just for one constructor call site.
func readerOf(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// runResp mirrors the worker's run-response envelope.
type runResp struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result"`
	Error  string          `json:"error"`
}

// sleepCtx waits d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	//dstore:allow-wallclock dispatch pacing is operational, never part of a simulation result
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// backoff computes the pause before retry round n: exponential from
// BackoffBase, capped at BackoffMax, with seeded equal-jitter (half
// the delay fixed, half drawn from the seeded stream) so retrying
// dispatchers decorrelate without losing reproducibility.
func (c *Coordinator) backoff(round int) time.Duration {
	d := c.opt.BackoffBase
	for i := 0; i < round && d < c.opt.BackoffMax; i++ {
		d *= 2
	}
	if d > c.opt.BackoffMax {
		d = c.opt.BackoffMax
	}
	half := uint64(d) / 2
	c.rngMu.Lock()
	j := c.rng.Uint64n(half + 1)
	c.rngMu.Unlock()
	return time.Duration(half + j)
}

// runJob dispatches one canonical job to the fleet: a pass over the
// job's replicas in breaker-filtered ring order, then — if every
// admitted worker failed — further passes after exponential backoff,
// so a transient cluster-wide blip (a partition healing, workers
// restarting) is ridden out instead of failed through. Worker-level
// failures feed the breaker; digest mismatches quarantine the worker;
// terminal failures (bad spec, deterministic simulation failure) stop
// immediately.
//
// A non-zero tc annotates the whole dispatch with spans: one
// SpanDispatch per attempt (arg = attempt ordinal; flags mark errors,
// corruption, cache hits), one SpanBackoff per retry round (dur = the
// backoff pause), and SpanVerify around each digest check inside
// runOn/awaitResult.
func (c *Coordinator) runJob(ctx context.Context, id string, spec []byte, tc traceCtx) (*jobOutcome, error) {
	c.dispatched.Add(1)
	c.pending.Add(1)
	defer c.pending.Add(-1)
	if c.opt.JobDeadline > 0 {
		//dstore:allow-wallclock job deadline is operational
		dctx, cancel := context.WithTimeout(ctx, c.opt.JobDeadline)
		defer cancel()
		ctx = dctx
	}
	var lastErr error
	attempts, rounds := 0, 0
	for round := 0; ; round++ {
		rounds++
		owners := c.reg.currentRing().owners(id, c.opt.Replicas)
		if len(owners) == 0 {
			c.jobsFailed.Add(1)
			return nil, &terminalError{"fleet: no workers registered"}
		}
		for _, u := range c.reg.dispatchOrder(owners) {
			attempts++
			start := c.rec.Now()
			out, err := c.runOn(ctx, u, id, spec, tc)
			end := c.rec.Now()
			var lat uint64
			if end > start {
				lat = end - start
			}
			if err == nil {
				var flags uint8
				if out.cached {
					flags |= dtrace.FlagCached
				}
				c.rec.Record(tc.trace, dtrace.SpanDispatch, tc.job, attemptArg(attempts), start, lat, flags)
				c.histMu.Lock()
				c.dispatchLat.Observe(lat)
				c.histMu.Unlock()
				c.reg.recordSuccess(u)
				out.workers = attempts
				c.completed.Add(1)
				return out, nil
			}
			dispatchFlags := uint8(dtrace.FlagErr)
			var term *terminalError
			if errors.As(err, &term) {
				c.rec.Record(tc.trace, dtrace.SpanDispatch, tc.job, attemptArg(attempts), start, lat, dispatchFlags)
				c.jobsFailed.Add(1)
				return nil, err
			}
			var corr *corruptError
			if errors.As(err, &corr) {
				dispatchFlags |= dtrace.FlagCorrupt
				c.corrupt.Add(1)
				c.reg.quarantineWorker(u)
			} else {
				c.reg.recordFailure(u)
			}
			c.rec.Record(tc.trace, dtrace.SpanDispatch, tc.job, attemptArg(attempts), start, lat, dispatchFlags)
			lastErr = err
			c.failovers.Add(1)
			if ctx.Err() != nil {
				c.jobsFailed.Add(1)
				return nil, fmt.Errorf("fleet: job %.8s: %w", id, lastErr)
			}
		}
		if round >= c.opt.DispatchRetries {
			break
		}
		c.retryRounds.Add(1)
		pause := c.backoff(round)
		c.rec.Record(tc.trace, dtrace.SpanBackoff, tc.job, attemptArg(round+1), c.rec.Now(), uint64(pause), 0)
		if err := sleepCtx(ctx, pause); err != nil {
			break
		}
	}
	c.jobsFailed.Add(1)
	if lastErr == nil {
		lastErr = errors.New("no dispatchable worker (breakers open or quarantined)")
	}
	return nil, fmt.Errorf("fleet: job %.8s failed after %d attempts over %d rounds: %w", id, attempts, rounds, lastErr)
}

// attemptArg clamps an attempt/round ordinal into a span's 16-bit arg.
func attemptArg(n int) uint16 {
	if n > 0xFFFF {
		return 0xFFFF
	}
	return uint16(n)
}

// verifyTraced digest-checks a payload like verifyDigest and records
// the check as a SpanVerify under tc (FlagCorrupt|FlagErr on
// mismatch). Untraced calls skip the span entirely.
func (c *Coordinator) verifyTraced(worker string, hdr http.Header, payload []byte, tc traceCtx) error {
	if tc.trace == 0 {
		return verifyDigest(worker, hdr, payload)
	}
	start := c.rec.Now()
	err := verifyDigest(worker, hdr, payload)
	end := c.rec.Now()
	var dur uint64
	if end > start {
		dur = end - start
	}
	var flags uint8
	if err != nil {
		flags = dtrace.FlagCorrupt | dtrace.FlagErr
	}
	c.rec.Record(tc.trace, dtrace.SpanVerify, tc.job, 0, start, dur, flags)
	return err
}

// retryAfterHint parses a Retry-After header in either RFC 9110 form
// — delta-seconds or an HTTP-date — capped at max. Absent or
// unparseable values fall back to max; a past date or zero delta
// becomes a short pause rather than a hot loop.
func retryAfterHint(v string, max time.Duration) time.Duration {
	d := max
	if ra, err := strconv.Atoi(v); err == nil && ra >= 0 {
		if hint := time.Duration(ra) * time.Second; hint < d {
			d = hint
		}
	} else if t, err := http.ParseTime(v); err == nil {
		//dstore:allow-wallclock an HTTP-date Retry-After is defined relative to real time
		if hint := time.Until(t); hint < d {
			d = hint
		}
	}
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	return d
}

// runOn pushes one job through one worker: submit, honour
// backpressure, poll to completion, fetch and digest-verify the
// result.
func (c *Coordinator) runOn(ctx context.Context, base, id string, spec []byte, tc traceCtx) (*jobOutcome, error) {
	for {
		code, hdr, body, err := c.doT(ctx, http.MethodPost, base+"/v1/runs", spec, tc)
		if err != nil {
			return nil, err
		}
		switch {
		case code == http.StatusOK:
			var rr runResp
			if err := json.Unmarshal(body, &rr); err != nil {
				return nil, fmt.Errorf("fleet: %s returned unparseable submission response: %v", base, err)
			}
			if len(rr.Result) == 0 {
				return nil, fmt.Errorf("fleet: %s returned 200 with no result", base)
			}
			if err := c.verifyTraced(base, hdr, rr.Result, tc); err != nil {
				return nil, err
			}
			return &jobOutcome{body: rr.Result, worker: base, cached: true}, nil
		case code == http.StatusAccepted:
			return c.awaitResult(ctx, base, id, tc)
		case code == http.StatusTooManyRequests:
			// Backpressure: honour Retry-After (capped) and resubmit to
			// the same worker — its queue draining is the fast path.
			if err := sleepCtx(ctx, retryAfterHint(hdr.Get("Retry-After"), c.opt.RetryAfterMax)); err != nil {
				return nil, err
			}
		case code == http.StatusBadRequest:
			return nil, &terminalError{fmt.Sprintf("fleet: %s rejected job spec: %s", base, body)}
		default:
			return nil, fmt.Errorf("fleet: submit to %s: %d: %s", base, code, body)
		}
	}
}

// awaitResult polls an accepted job to completion on one worker and
// returns its canonical result document, digest-verified.
func (c *Coordinator) awaitResult(ctx context.Context, base, id string, tc traceCtx) (*jobOutcome, error) {
	for {
		code, hdr, body, err := c.do(ctx, http.MethodGet, base+"/v1/runs/"+id, nil)
		if err != nil {
			return nil, err
		}
		if code != http.StatusOK {
			return nil, fmt.Errorf("fleet: status of %.8s on %s: %d: %s", id, base, code, body)
		}
		var rr runResp
		if err := json.Unmarshal(body, &rr); err != nil {
			return nil, fmt.Errorf("fleet: %s returned unparseable status: %v", base, err)
		}
		switch rr.Status {
		case "done":
			if len(rr.Result) > 0 {
				if err := c.verifyTraced(base, hdr, rr.Result, tc); err != nil {
					return nil, err
				}
				return &jobOutcome{body: rr.Result, worker: base, cached: rr.Cached}, nil
			}
			code, rhdr, res, err := c.do(ctx, http.MethodGet, base+"/v1/runs/"+id+"/result", nil)
			if err != nil {
				return nil, err
			}
			if code != http.StatusOK {
				return nil, fmt.Errorf("fleet: result of %.8s on %s: %d: %s", id, base, code, res)
			}
			if err := c.verifyTraced(base, rhdr, res, tc); err != nil {
				return nil, err
			}
			return &jobOutcome{body: res, worker: base}, nil
		case "failed":
			// Deterministic: the same spec fails identically on every
			// replica, so don't burn the fleet retrying it.
			return nil, &terminalError{fmt.Sprintf("fleet: job %.8s failed on %s: %s", id, base, rr.Error)}
		case "cancelled":
			// Shutdown or per-job timeout on that worker — another
			// replica may well complete it.
			return nil, fmt.Errorf("fleet: job %.8s cancelled on %s: %s", id, base, rr.Error)
		}
		if err := sleepCtx(ctx, c.opt.PollInterval); err != nil {
			return nil, err
		}
	}
}

// canonicalizeSpec parses a submitted job spec and returns its
// normalized form, canonical serialization and content-addressed ID.
func canonicalizeSpec(raw []byte) (serve.JobSpec, []byte, string, error) {
	dec := json.NewDecoder(readerOf(raw))
	dec.DisallowUnknownFields()
	var spec serve.JobSpec
	if err := dec.Decode(&spec); err != nil {
		return spec, nil, "", fmt.Errorf("bad job spec: %v", err)
	}
	norm, err := spec.Normalize()
	if err != nil {
		return norm, nil, "", err
	}
	if _, err := norm.BuildConfig(); err != nil {
		return norm, nil, "", err
	}
	canon, err := norm.Canonical()
	if err != nil {
		return norm, nil, "", err
	}
	id, err := norm.ID()
	if err != nil {
		return norm, nil, "", err
	}
	return norm, canon, id, nil
}

// maxBodyBytes bounds submission bodies; specs and matrices are tiny.
const maxBodyBytes = 1 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// shedLoad refuses the request with 429 + Retry-After when the
// dispatch path is at its MaxPending bound — bounded queueing, so an
// overloaded coordinator degrades by deflecting rather than by
// accumulating unbounded in-flight work.
func (c *Coordinator) shedLoad(w http.ResponseWriter) bool {
	max := c.opt.MaxPending
	if max <= 0 || c.pending.Load() < int64(max) {
		return false
	}
	c.shed.Add(1)
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests, "fleet: coordinator at capacity (%d dispatches in flight); retry later", max)
	return true
}

// handleSubmit implements POST /v1/runs at the fleet level: validate
// and canonicalize the spec locally (a bad spec never reaches a
// worker), route by hash ring, and answer synchronously with the
// worker's result — the coordinator absorbs the poll loop so clients
// see one round trip.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if c.shedLoad(w) {
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	_, canon, id, err := canonicalizeSpec(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Single-run submissions trace under their own content address; a
	// caller-supplied trace header (a sweep re-entering through the
	// public API, or a client stitching its own trace) wins.
	tc := traceCtx{trace: dtrace.TraceIDFromHex(id), job: dtrace.JobNone}
	if trace, job, ok := dtrace.FromHeaders(r.Header); ok {
		tc = traceCtx{trace: trace, job: job}
	}
	out, err := c.runJob(r.Context(), id, canon, tc)
	if err != nil {
		code := http.StatusBadGateway
		var term *terminalError
		if errors.As(err, &term) {
			code = http.StatusUnprocessableEntity
		}
		if errors.Is(err, context.DeadlineExceeded) {
			code = http.StatusGatewayTimeout
		}
		writeError(w, code, "%v", err)
		return
	}
	w.Header().Set("X-Dstore-Worker", out.worker)
	w.Header().Set(serve.ResultDigestHeader, digestOf(out.body))
	writeJSON(w, http.StatusOK, runResp{ID: id, Status: "done", Cached: out.cached, Result: out.body})
}

// handleRunProxy forwards GET /v1/runs/{id}[/result|/trace] to the
// job's replicas in ring order, returning the first conclusive
// answer. A 404 from one worker is not conclusive — the job may live
// on a successor after a failover — so the walk continues and 404 is
// only returned once every replica has denied knowledge. Responses
// that advertise a content digest are verified before forwarding; a
// mismatch quarantines the worker and the walk moves on.
func (c *Coordinator) handleRunProxy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	owners := c.reg.currentRing().owners(id, c.opt.Replicas)
	if len(owners) == 0 {
		writeError(w, http.StatusServiceUnavailable, "fleet: no workers registered")
		return
	}
	var lastCode int
	var lastHdr http.Header
	var lastBody []byte
	tried := 0
	for _, u := range owners {
		code, hdr, body, err := c.do(r.Context(), http.MethodGet, u+r.URL.Path, nil)
		if err != nil {
			c.reg.recordFailure(u)
			continue
		}
		tried++
		if code == http.StatusOK {
			if err := c.verifyProxied(u, r.URL.Path, hdr, body); err != nil {
				c.corrupt.Add(1)
				c.reg.quarantineWorker(u)
				continue
			}
		}
		if code != http.StatusNotFound {
			w.Header().Set("X-Dstore-Worker", u)
			copyHeader(w, hdr)
			w.WriteHeader(code)
			_, _ = w.Write(body)
			return
		}
		lastCode, lastHdr, lastBody = code, hdr, body
	}
	if tried == 0 {
		writeError(w, http.StatusBadGateway, "fleet: no worker reachable for %q", id)
		return
	}
	copyHeader(w, lastHdr)
	w.WriteHeader(lastCode)
	_, _ = w.Write(lastBody)
}

// verifyProxied digest-checks a proxied 200 body. Raw documents
// (/result, /trace) are covered whole; a status envelope's digest
// covers its embedded result field.
func (c *Coordinator) verifyProxied(worker, path string, hdr http.Header, body []byte) error {
	if hdr.Get(serve.ResultDigestHeader) == "" {
		return nil
	}
	payload := body
	if !strings.HasSuffix(path, "/result") && !strings.HasSuffix(path, "/trace") {
		var rr runResp
		if err := json.Unmarshal(body, &rr); err != nil {
			return &corruptError{worker: worker, detail: fmt.Sprintf("digest-bearing envelope unparseable: %v", err)}
		}
		payload = rr.Result
	}
	return verifyDigest(worker, hdr, payload)
}

func copyHeader(w http.ResponseWriter, hdr http.Header) {
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if dg := hdr.Get(serve.ResultDigestHeader); dg != "" {
		w.Header().Set(serve.ResultDigestHeader, dg)
	}
}

// handleBenchmarks forwards GET /v1/benchmarks to any healthy worker
// — the inventory is identical fleet-wide.
func (c *Coordinator) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	_, states := c.reg.snapshot()
	for _, pass := range []bool{true, false} {
		for _, st := range states {
			if st.Healthy != pass {
				continue
			}
			code, hdr, body, err := c.do(r.Context(), http.MethodGet, st.URL+"/v1/benchmarks", nil)
			if err != nil || code != http.StatusOK {
				continue
			}
			w.Header().Set("X-Dstore-Worker", st.URL)
			copyHeader(w, hdr)
			_, _ = w.Write(body)
			return
		}
	}
	writeError(w, http.StatusServiceUnavailable, "fleet: no worker reachable")
}

// handleWorkerAdd implements POST /v1/workers: register a worker at
// runtime. The worker is probed synchronously so a live one enters
// the ring healthy and starts taking its key-space share immediately.
func (c *Coordinator) handleWorkerAdd(w http.ResponseWriter, r *http.Request) {
	var req struct {
		URL string `json:"url"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad registration: %v", err)
		return
	}
	u, err := c.reg.add(req.URL, false, false)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	//dstore:allow-wallclock probe deadline is operational
	pctx, cancel := context.WithTimeout(r.Context(), c.opt.ProbeTimeout)
	c.reg.probeOne(pctx, u)
	cancel()
	_, states := c.reg.snapshot()
	for _, st := range states {
		if st.URL == u {
			writeJSON(w, http.StatusOK, st)
			return
		}
	}
	writeError(w, http.StatusInternalServerError, "fleet: worker %q vanished after registration", u)
}

// handleWorkerList implements GET /v1/workers.
func (c *Coordinator) handleWorkerList(w http.ResponseWriter, r *http.Request) {
	ring, states := c.reg.snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"workers":     states,
		"ring_points": len(ring.points),
	})
}

// handleHealth implements GET /healthz. The coordinator is degraded —
// but alive — with zero healthy workers: proxying fails but
// registration still works.
func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	healthy, total := c.reg.healthyCount()
	status := "ok"
	if healthy == 0 {
		status = "no-healthy-workers"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  status,
		"workers": total,
		"healthy": healthy,
	})
}
