package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"dstore/internal/obs/dtrace"
)

// Matrix is a batch-sweep request: the cartesian product of the axes
// is expanded server-side into canonical job specs. Empty mode/input
// axes default to the single-job defaults; config axes are named
// after ConfigOverride's JSON fields, each with a list of values.
//
//	{"bench": ["MT","NN"],
//	 "mode": ["ccsm","direct-store"],
//	 "config": {"prefetch_depth": [0,2,4], "sms": [8,16]}}
//
// expands to 2×2×3×2 = 24 jobs.
type Matrix struct {
	Bench  []string                     `json:"bench"`
	Mode   []string                     `json:"mode,omitempty"`
	Input  []string                     `json:"input,omitempty"`
	Config map[string][]json.RawMessage `json:"config,omitempty"`
}

// maxSweepJobs caps one sweep's expansion; a matrix is a typo away
// from exponential.
const maxSweepJobs = 1 << 16

// sweepJob is one expanded matrix point.
type sweepJob struct {
	index int    // position in expansion order
	id    string // content address of the canonical spec
	canon []byte // canonical spec document (the dispatch body)
}

// expand materializes the matrix: every axis combination, normalized,
// validated and deduplicated by content address (two combinations
// that normalize identically — e.g. an explicit default — dispatch
// once).
func (m Matrix) expand() ([]sweepJob, error) {
	if len(m.Bench) == 0 {
		return nil, fmt.Errorf("fleet: sweep matrix needs at least one bench")
	}
	modes := m.Mode
	if len(modes) == 0 {
		modes = []string{""}
	}
	inputs := m.Input
	if len(inputs) == 0 {
		inputs = []string{""}
	}
	// Config axes in sorted name order so expansion order — and with
	// it every sweep artifact — is deterministic in the matrix.
	axes := make([]string, 0, len(m.Config))
	for name := range m.Config { //dstore:allow-maprange sorted below
		axes = append(axes, name)
	}
	sort.Strings(axes)
	total := len(m.Bench) * len(modes) * len(inputs)
	for _, name := range axes {
		vals := m.Config[name]
		if len(vals) == 0 {
			return nil, fmt.Errorf("fleet: sweep config axis %q has no values", name)
		}
		total *= len(vals)
		if total > maxSweepJobs {
			return nil, fmt.Errorf("fleet: sweep matrix expands past the %d-job cap", maxSweepJobs)
		}
	}
	if total > maxSweepJobs {
		return nil, fmt.Errorf("fleet: sweep matrix expands to %d jobs (cap %d)", total, maxSweepJobs)
	}

	var jobs []sweepJob
	seen := make(map[string]bool, total)
	// choice[i] selects the current value of config axis i.
	choice := make([]int, len(axes))
	for {
		for _, b := range m.Bench {
			for _, mode := range modes {
				for _, in := range inputs {
					spec := map[string]any{"bench": b}
					if mode != "" {
						spec["mode"] = mode
					}
					if in != "" {
						spec["input"] = in
					}
					if len(axes) > 0 {
						cfg := make(map[string]json.RawMessage, len(axes))
						for i, name := range axes {
							cfg[name] = m.Config[name][choice[i]]
						}
						spec["config"] = cfg
					}
					raw, err := json.Marshal(spec)
					if err != nil {
						return nil, err
					}
					_, canon, id, err := canonicalizeSpec(raw)
					if err != nil {
						return nil, fmt.Errorf("fleet: sweep point %s: %w", raw, err)
					}
					if seen[id] {
						continue
					}
					seen[id] = true
					jobs = append(jobs, sweepJob{index: len(jobs), id: id, canon: canon})
				}
			}
		}
		// Odometer over the config axes.
		i := len(axes) - 1
		for ; i >= 0; i-- {
			choice[i]++
			if choice[i] < len(m.Config[axes[i]]) {
				break
			}
			choice[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return jobs, nil
}

// sweepID is the content address of the expanded sweep: the SHA-256
// over the ordered job IDs. Identical matrices — or distinct matrices
// that expand to the same job set — share a sweep.
func sweepID(jobs []sweepJob) string {
	h := sha256.New()
	for _, j := range jobs {
		h.Write([]byte(j.id))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Outcome is one finished sweep job on the wire: identity, placement
// and either the full canonical result document or a terminal error.
type Outcome struct {
	Seq   int    `json:"seq"`   // completion order within the sweep
	Index int    `json:"index"` // position in matrix expansion order
	ID    string `json:"id"`
	// Spec is the canonical job document the ID hashes — resubmitting
	// it verbatim reproduces this job.
	Spec   json.RawMessage `json:"spec"`
	Worker string          `json:"worker,omitempty"`
	// Cached reports the job was answered from the worker's result
	// cache (memory or disk tier) without re-simulating.
	Cached  bool            `json:"cached,omitempty"`
	Workers int             `json:"workers_tried,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   string          `json:"error,omitempty"`
	// Trace is the sweep's 16-hex-digit trace ID — the key for
	// GET /v1/sweeps/{id}/trace and for correlating this outcome with
	// spans in the stitched export.
	Trace string `json:"trace,omitempty"`
}

// sweepRun is one sweep's lifecycle: outcomes append as jobs finish,
// watchers follow the slice under cond, and the report lands at
// completion. With a journal attached, every append is durable before
// any watcher can observe it — so a resume token a client holds is
// always at or behind what a restarted coordinator replays.
type sweepRun struct {
	id    string
	total int
	// trace is the sweep's trace ID (derived from id); rec receives
	// the coordinator-side spans this run emits (journal appends).
	trace uint64
	rec   *dtrace.Recorder

	mu       sync.Mutex
	cond     *sync.Cond
	outcomes []Outcome
	failed   int
	cached   int
	done     bool
	report   *Report
	jl       *sweepJournal
}

func newSweepRun(id string, total int) *sweepRun {
	s := &sweepRun{id: id, total: total}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *sweepRun) append(o Outcome) {
	s.mu.Lock()
	o.Seq = len(s.outcomes)
	s.outcomes = append(s.outcomes, o)
	if o.Error != "" {
		s.failed++
	}
	if o.Cached {
		s.cached++
	}
	// Journalled under the lock, after seq assignment and before the
	// broadcast: journal order is seq order, and no watcher sees an
	// outcome that is not on disk.
	if s.jl != nil && s.trace != 0 {
		jstart := s.rec.Now()
		s.jl.append(journalRecord{Type: journalTypeOutcome, SweepID: s.id, Outcome: &o})
		jend := s.rec.Now()
		var dur uint64
		if jend > jstart {
			dur = jend - jstart
		}
		s.rec.Record(s.trace, dtrace.SpanJournal, uint32(o.Index), 0, jstart, dur, 0)
	} else {
		s.jl.append(journalRecord{Type: journalTypeOutcome, SweepID: s.id, Outcome: &o})
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *sweepRun) finish(rep *Report) {
	s.mu.Lock()
	s.report = rep
	s.done = true
	if rep != nil {
		s.jl.append(journalRecord{Type: journalTypeReport, SweepID: s.id, Report: rep})
	}
	s.jl.close()
	s.jl = nil
	s.mu.Unlock()
	s.cond.Broadcast()
}

// abort releases watchers at coordinator shutdown without recording a
// verdict: the journal is closed with no report record, which is
// exactly the incomplete state the next boot resumes from.
func (s *sweepRun) abort() {
	s.mu.Lock()
	s.done = true
	s.jl.close()
	s.jl = nil
	s.mu.Unlock()
	s.cond.Broadcast()
}

// next blocks until outcome seq exists (returned with done=false) or
// the sweep is complete and drained (nil, true). wake lets callers
// interrupt the wait (client disconnect).
func (s *sweepRun) next(seq int, cancelled func() bool) (*Outcome, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if cancelled() {
			return nil, true
		}
		if seq < len(s.outcomes) {
			o := s.outcomes[seq]
			return &o, false
		}
		if s.done {
			return nil, true
		}
		s.cond.Wait()
	}
}

// status is the sweep's summary document.
func (s *sweepRun) status() map[string]any {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := map[string]any{
		"id":        s.id,
		"total":     s.total,
		"completed": len(s.outcomes),
		"failed":    s.failed,
		"cached":    s.cached,
		"done":      s.done,
		"degraded":  s.failed > 0,
	}
	if s.report != nil {
		st["report"] = s.report
	}
	return st
}

// startSweep registers (or rejoins) the sweep for the expanded job
// set and launches its dispatch pool. The sweep is content-addressed:
// resubmitting a running or finished matrix attaches to the existing
// run instead of re-dispatching the fleet.
func (c *Coordinator) startSweep(jobs []sweepJob) (*sweepRun, bool) {
	id := sweepID(jobs)
	c.sweepMu.Lock()
	if s, ok := c.sweeps[id]; ok {
		c.sweepMu.Unlock()
		return s, false
	}
	s := newSweepRun(id, len(jobs))
	s.trace = dtrace.TraceIDFromHex(id)
	s.rec = c.rec
	if c.opt.JournalDir != "" {
		if jl, err := c.newSweepJournal(id, jobs); err == nil {
			s.jl = jl
		} else {
			// A sweep that cannot journal still runs; it just cannot
			// survive a coordinator crash.
			c.journalErrors.Add(1)
		}
	}
	c.sweeps[id] = s
	c.sweepMu.Unlock()

	c.sweepsRun.Add(1)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.runSweep(s, jobs)
	}()
	return s, true
}

// runSweep drains the job set through a bounded dispatch pool and
// finishes with the aggregate report.
func (c *Coordinator) runSweep(s *sweepRun, jobs []sweepJob) {
	workers := c.opt.SweepWorkers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	feed := make(chan sweepJob)
	sweepStart := c.rec.Now()
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for j := range feed {
				// Queue wait at the coordinator: sweep start to the moment
				// a pool slot picked this job up.
				if s.trace != 0 {
					pickup := c.rec.Now()
					var wait uint64
					if pickup > sweepStart {
						wait = pickup - sweepStart
					}
					c.rec.Record(s.trace, dtrace.SpanQueueWait, uint32(j.index), 0, sweepStart, wait, 0)
				}
				out, err := c.runJob(c.ctx, j.id, j.canon, traceCtx{trace: s.trace, job: uint32(j.index)})
				if err != nil && c.ctx.Err() != nil {
					// Coordinator shutdown, not a job verdict: leave the
					// job un-journalled so a restart re-dispatches it.
					continue
				}
				o := Outcome{Index: j.index, ID: j.id, Spec: j.canon}
				if s.trace != 0 {
					o.Trace = dtrace.FormatTraceID(s.trace)
				}
				if err != nil {
					o.Error = err.Error()
				} else {
					o.Worker = out.worker
					o.Cached = out.cached
					o.Workers = out.workers
					o.Result = out.body
				}
				s.append(o)
			}
		}()
	}
	for _, j := range jobs {
		select {
		case feed <- j:
		case <-c.ctx.Done():
		}
	}
	close(feed)
	wg.Wait()

	if c.ctx.Err() != nil {
		s.abort()
		return
	}
	s.mu.Lock()
	outcomes := make([]Outcome, len(s.outcomes))
	copy(outcomes, s.outcomes)
	s.mu.Unlock()
	rep := c.buildReport(s.id, s.total, outcomes)
	if rep.Degraded {
		c.sweepsDegraded.Add(1)
	}
	s.finish(rep)
	c.sweepsDone.Add(1)
}

// handleSweepSubmit implements POST /v1/sweeps: expand the matrix,
// start (or rejoin) the content-addressed sweep, and stream outcomes
// to the caller as they land — Server-Sent Events when the client
// asks for text/event-stream, newline-delimited JSON otherwise — with
// the aggregate report as the final event.
func (c *Coordinator) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	var m Matrix
	if err := dec.Decode(&m); err != nil {
		writeError(w, http.StatusBadRequest, "bad sweep matrix: %v", err)
		return
	}
	expandStart := c.rec.Now()
	jobs, err := m.expand()
	expandEnd := c.rec.Now()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if _, total := c.reg.healthyCount(); total == 0 {
		writeError(w, http.StatusServiceUnavailable, "fleet: no workers registered")
		return
	}
	s, started := c.startSweep(jobs)
	// The expansion span is recorded only on a fresh start: a rejoin of
	// a running (or finished) sweep did not expand anything the trace
	// should account for, and must not change the export.
	if started && s.trace != 0 {
		var dur uint64
		if expandEnd > expandStart {
			dur = expandEnd - expandStart
		}
		c.rec.Record(s.trace, dtrace.SpanExpand, dtrace.JobNone, attemptArg(len(jobs)), expandStart, dur, 0)
	}
	c.streamSweep(w, r, s)
}

// handleSweepStream implements GET /v1/sweeps/{id}/stream: re-attach
// a stream to a running (or finished — events replay from the start)
// sweep.
func (c *Coordinator) handleSweepStream(w http.ResponseWriter, r *http.Request) {
	s := c.lookupSweep(r.PathValue("id"))
	if s == nil {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	c.streamSweep(w, r, s)
}

// resumeSeq reads the client's resume position: a standard SSE
// `Last-Event-ID` header (the id of the last event it saw — resume
// after it), or a `?from=N` query parameter (resume at N) for NDJSON
// clients. Default is 0: full replay.
func resumeSeq(r *http.Request) int {
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		if n, err := strconv.Atoi(lei); err == nil && n >= 0 {
			return n + 1
		}
	}
	if f := r.URL.Query().Get("from"); f != "" {
		if n, err := strconv.Atoi(f); err == nil && n >= 0 {
			return n
		}
	}
	return 0
}

// streamSweep writes the sweep's event stream: every outcome from the
// client's resume position (seq 0 by default, so streams attached
// late replay history first and the view is complete regardless of
// attach time), then the report event once the sweep completes. Each
// result event carries its seq as the SSE event id, so a client
// reconnecting — even to a restarted coordinator — resumes exactly
// where its stream broke via Last-Event-ID.
func (c *Coordinator) streamSweep(w http.ResponseWriter, r *http.Request, s *sweepRun) {
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("X-Dstore-Sweep", s.id)
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	flush := func() {
		if fl != nil {
			fl.Flush()
		}
	}
	flush()

	ctx := r.Context()
	// A client disconnect must wake a blocked next(); the sweep's cond
	// only pulses on sweep progress.
	stopWake := context.AfterFunc(ctx, s.cond.Broadcast)
	defer stopWake()
	cancelled := func() bool { return ctx.Err() != nil }

	writeEvent := func(event string, id int, v any) bool {
		b, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if sse {
			if id >= 0 {
				_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, event, b)
			} else {
				_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
			}
		} else {
			_, err = fmt.Fprintf(w, "{\"event\":%q,\"data\":%s}\n", event, b)
		}
		if err != nil {
			return false
		}
		flush()
		return true
	}

	for seq := resumeSeq(r); ; seq++ {
		o, drained := s.next(seq, cancelled)
		if drained {
			break
		}
		if !writeEvent("result", o.Seq, o) {
			return
		}
		c.streamed.Add(1)
	}
	if cancelled() {
		return
	}
	s.mu.Lock()
	rep := s.report
	s.mu.Unlock()
	if rep != nil {
		writeEvent("report", -1, rep)
	}
}

func (c *Coordinator) lookupSweep(id string) *sweepRun {
	c.sweepMu.Lock()
	defer c.sweepMu.Unlock()
	return c.sweeps[id]
}

// handleSweepList implements GET /v1/sweeps.
func (c *Coordinator) handleSweepList(w http.ResponseWriter, r *http.Request) {
	c.sweepMu.Lock()
	ids := make([]string, 0, len(c.sweeps))
	for id := range c.sweeps { //dstore:allow-maprange sorted below
		ids = append(ids, id)
	}
	c.sweepMu.Unlock()
	sort.Strings(ids)
	out := make([]map[string]any, 0, len(ids))
	for _, id := range ids {
		if s := c.lookupSweep(id); s != nil {
			out = append(out, s.status())
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": out})
}

// handleSweepStatus implements GET /v1/sweeps/{id}.
func (c *Coordinator) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	s := c.lookupSweep(r.PathValue("id"))
	if s == nil {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.status())
}

// handleSweepReport implements GET /v1/sweeps/{id}/report: the
// aggregate report's benchmark-text rendering (go test -bench
// format), 409 while the sweep is still running.
func (c *Coordinator) handleSweepReport(w http.ResponseWriter, r *http.Request) {
	s := c.lookupSweep(r.PathValue("id"))
	if s == nil {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	rep := s.report
	s.mu.Unlock()
	if rep == nil {
		writeError(w, http.StatusConflict, "sweep %q still running", s.id)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(rep.BenchText))
}
