// Live sweep console: the pure rendering core behind cmd/dstore-top.
// The console is a poll-and-render loop over three coordinator
// endpoints — GET /v1/workers (fleet membership and health), GET
// /v1/sweeps (sweep progress) and GET /v1/stats (dispatch counters) —
// and everything here is side-effect free so the exact frame for a
// given fleet state is unit-testable without a terminal.
package fleet

import (
	"fmt"
	"sort"
	"strings"
)

// ConsoleWorker is one worker row as the console consumes it — the
// JSON shape GET /v1/workers serves per worker.
type ConsoleWorker struct {
	URL          string  `json:"url"`
	Healthy      bool    `json:"healthy"`
	Breaker      string  `json:"breaker"`
	Quarantined  bool    `json:"quarantined"`
	QueueDepth   int     `json:"queue_depth"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	Executed     uint64  `json:"executed"`
}

// ConsoleSweep is one sweep row — the JSON shape GET /v1/sweeps serves
// per sweep.
type ConsoleSweep struct {
	ID        string `json:"id"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	Cached    int    `json:"cached"`
	Done      bool   `json:"done"`
	Degraded  bool   `json:"degraded"`
}

// ConsoleState is one full console frame's input.
type ConsoleState struct {
	Coordinator string
	Workers     []ConsoleWorker
	Sweeps      []ConsoleSweep
	Stats       map[string]uint64
}

// progressBar renders done/total as a fixed-width bar.
func progressBar(done, total, width int) string {
	if total <= 0 {
		return strings.Repeat("-", width)
	}
	fill := done * width / total
	if fill > width {
		fill = width
	}
	return strings.Repeat("#", fill) + strings.Repeat(".", width-fill)
}

// workerStatus compresses a worker's health triple into one word.
func workerStatus(w ConsoleWorker) string {
	switch {
	case w.Quarantined:
		return "QUARANTINED"
	case w.Breaker != "" && w.Breaker != "closed":
		return "BREAKER:" + w.Breaker
	case w.Healthy:
		return "up"
	default:
		return "DOWN"
	}
}

// RenderConsole renders one console frame as plain text: a worker
// table (status, queue depth, cache hit rate, executed jobs), a sweep
// table with progress bars, and the coordinator's headline dispatch
// counters. Workers render sorted by URL and sweeps by ID, so a frame
// is deterministic in the state regardless of map/poll ordering.
func RenderConsole(st ConsoleState) string {
	var b strings.Builder
	fmt.Fprintf(&b, "dstore fleet — %s\n\n", st.Coordinator)

	workers := make([]ConsoleWorker, len(st.Workers))
	copy(workers, st.Workers)
	sort.Slice(workers, func(i, j int) bool { return workers[i].URL < workers[j].URL })
	fmt.Fprintf(&b, "WORKERS (%d)\n", len(workers))
	fmt.Fprintf(&b, "  %-32s %-14s %7s %8s %10s\n", "URL", "STATUS", "QUEUE", "HIT%", "EXECUTED")
	for _, w := range workers {
		fmt.Fprintf(&b, "  %-32s %-14s %7d %7.1f%% %10d\n",
			w.URL, workerStatus(w), w.QueueDepth, w.CacheHitRate*100, w.Executed)
	}
	if len(workers) == 0 {
		b.WriteString("  (none registered)\n")
	}

	sweeps := make([]ConsoleSweep, len(st.Sweeps))
	copy(sweeps, st.Sweeps)
	sort.Slice(sweeps, func(i, j int) bool { return sweeps[i].ID < sweeps[j].ID })
	fmt.Fprintf(&b, "\nSWEEPS (%d)\n", len(sweeps))
	for _, s := range sweeps {
		state := "running"
		switch {
		case s.Done && s.Degraded:
			state = "DEGRADED"
		case s.Done:
			state = "done"
		}
		fmt.Fprintf(&b, "  %.12s [%s] %d/%d %s (%d cached, %d failed)\n",
			s.ID, progressBar(s.Completed, s.Total, 24), s.Completed, s.Total, state, s.Cached, s.Failed)
	}
	if len(sweeps) == 0 {
		b.WriteString("  (none)\n")
	}

	if len(st.Stats) > 0 {
		fmt.Fprintf(&b, "\nDISPATCH  completed %d · failed %d · failovers %d · shed %d · corrupt %d\n",
			st.Stats["fleet_jobs_completed_total"],
			st.Stats["fleet_jobs_failed_total"],
			st.Stats["fleet_dispatch_failovers_total"],
			st.Stats["coord_shed_total"],
			st.Stats["fleet_corrupt_results_total"])
	}
	return b.String()
}
