package fleet

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"dstore/internal/benchfmt"
)

// resultDoc mirrors the fields of the worker's canonical result
// document the report aggregates over.
type resultDoc struct {
	Bench       string  `json:"bench"`
	Mode        string  `json:"mode"`
	Input       string  `json:"input"`
	Ticks       uint64  `json:"ticks"`
	MissRate    float64 `json:"miss_rate"`
	XbarBytes   uint64  `json:"xbar_bytes"`
	DirectBytes uint64  `json:"direct_bytes"`
}

// FrontierPoint is one Pareto-optimal sweep result: no other point in
// the sweep finished in fewer ticks AND moved fewer interconnect
// bytes. The frontier is the sweep's actionable output — every
// configuration off it is strictly dominated.
type FrontierPoint struct {
	ID    string `json:"id"`
	Bench string `json:"bench"`
	Mode  string `json:"mode"`
	Input string `json:"input"`
	Ticks uint64 `json:"ticks"`
	// Bytes is total interconnect traffic: crossbar plus direct-store
	// path.
	Bytes uint64 `json:"bytes"`
}

// BestEntry is the fastest configuration for one benchmark line,
// derived by parsing the report's own benchmark text back through
// internal/benchfmt — the same parser the regression differ trusts.
type BestEntry struct {
	Name  string `json:"name"`
	Ticks uint64 `json:"ticks"`
}

// WorkerLoad is one worker's share of a sweep.
type WorkerLoad struct {
	URL    string `json:"url"`
	Jobs   int    `json:"jobs"`
	Cached int    `json:"cached"`
}

// Report is the aggregate computed when a sweep completes.
type Report struct {
	SweepID   string `json:"sweep_id"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	// Cached counts jobs answered from a worker cache (memory or
	// disk) without re-simulating.
	Cached int `json:"cached"`
	// Failovers counts jobs that needed more than one worker.
	Failovers int `json:"failovers"`
	// Degraded marks a completed sweep carrying failed jobs: the
	// results present are good, but the matrix is not fully covered.
	// Partial coverage is reported, never silently dropped — and never
	// fails the sweep wholesale.
	Degraded bool            `json:"degraded,omitempty"`
	Workers  []WorkerLoad    `json:"workers"`
	Frontier []FrontierPoint `json:"frontier"`
	Best     []BestEntry     `json:"best,omitempty"`
	// BenchText is the sweep rendered in `go test -bench` text format
	// (one line per job), directly usable as a dstore-benchdiff
	// baseline.
	BenchText string `json:"bench_text"`
	// BenchTextError reports a benchfmt round-trip failure — always
	// empty unless the renderer and parser disagree, which a test
	// pins.
	BenchTextError string `json:"bench_text_error,omitempty"`
}

// buildReport aggregates a finished sweep: per-worker load, the
// (ticks, bytes) Pareto frontier, and the benchmark-text rendering —
// which is then parsed back through internal/benchfmt to derive the
// per-benchmark best table, so the report provably round-trips
// through the same format the repo's regression tooling consumes.
func (c *Coordinator) buildReport(sweepID string, total int, outcomes []Outcome) *Report {
	rep := &Report{SweepID: sweepID, Total: total, Completed: len(outcomes)}
	rep.Degraded = rep.Completed < rep.Total

	byWorker := make(map[string]*WorkerLoad)
	type point struct {
		FrontierPoint
		index int
	}
	var pts []point
	// Render in matrix-expansion order so BenchText is deterministic
	// in the matrix, not in completion order.
	ordered := make([]Outcome, len(outcomes))
	copy(ordered, outcomes)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Index < ordered[j].Index })

	var text strings.Builder
	for _, o := range ordered {
		if o.Error != "" {
			rep.Failed++
			rep.Degraded = true
			continue
		}
		if o.Cached {
			rep.Cached++
		}
		if o.Workers > 1 {
			rep.Failovers++
		}
		wl := byWorker[o.Worker]
		if wl == nil {
			wl = &WorkerLoad{URL: o.Worker}
			byWorker[o.Worker] = wl
		}
		wl.Jobs++
		if o.Cached {
			wl.Cached++
		}
		var doc resultDoc
		if err := json.Unmarshal(o.Result, &doc); err != nil {
			rep.BenchTextError = fmt.Sprintf("job %.8s: unparseable result: %v", o.ID, err)
			continue
		}
		bytes := doc.XbarBytes + doc.DirectBytes
		pts = append(pts, point{
			FrontierPoint: FrontierPoint{
				ID: o.ID, Bench: doc.Bench, Mode: doc.Mode, Input: doc.Input,
				Ticks: doc.Ticks, Bytes: bytes,
			},
			index: o.Index,
		})
		fmt.Fprintf(&text, "BenchmarkSweep/%s/%s/%s/%.8s 1 %d ticks %d moved-bytes %g miss-rate\n",
			doc.Bench, doc.Mode, doc.Input, o.ID, doc.Ticks, bytes, doc.MissRate)
	}

	for _, u := range sortedKeys(byWorker) {
		rep.Workers = append(rep.Workers, *byWorker[u])
	}

	// Pareto frontier over (ticks, bytes), both minimized: sort by
	// ticks then bytes, keep every point that improves the running
	// bytes minimum. Ties on both axes keep the first in expansion
	// order.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Ticks != pts[j].Ticks {
			return pts[i].Ticks < pts[j].Ticks
		}
		if pts[i].Bytes != pts[j].Bytes {
			return pts[i].Bytes < pts[j].Bytes
		}
		return pts[i].index < pts[j].index
	})
	bestBytes := ^uint64(0)
	for _, p := range pts {
		if p.Bytes < bestBytes {
			bestBytes = p.Bytes
			rep.Frontier = append(rep.Frontier, p.FrontierPoint)
		}
	}

	rep.BenchText = text.String()
	entries, err := benchfmt.ParseUnique(strings.NewReader(rep.BenchText))
	if err != nil {
		rep.BenchTextError = err.Error()
		return rep
	}
	// Best-per-benchmark from the parsed-back text: group by the name
	// minus the config hash segment, keep the minimum ticks.
	best := make(map[string]uint64)
	for _, e := range entries {
		ticks, ok := e.Value("ticks")
		if !ok {
			continue
		}
		group := e.Name
		if i := strings.LastIndex(group, "/"); i >= 0 {
			group = group[:i]
		}
		if cur, seen := best[group]; !seen || uint64(ticks) < cur {
			best[group] = uint64(ticks)
		}
	}
	for _, name := range sortedKeys(best) {
		rep.Best = append(rep.Best, BestEntry{Name: name, Ticks: best[name]})
	}
	return rep
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m { //dstore:allow-maprange sorted below
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
