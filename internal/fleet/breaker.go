package fleet

import "time"

// breakerState is the per-worker circuit-breaker state machine
// (DESIGN.md §13). The breaker replaces the original one-strike
// markUnhealthy: a worker must fail FailureThreshold consecutive
// times before the fleet stops dispatching to it, and once open it is
// reclosed only through a successful probe — one trial request (a
// health probe or a single dispatched job) is let through after the
// cooldown, and its outcome decides between reclose and another
// cooldown round.
type breakerState uint8

const (
	// bkClosed: requests flow; consecutive failures are counted.
	bkClosed breakerState = iota
	// bkOpen: the worker is cooling down; no requests until the
	// cooldown elapses.
	bkOpen
	// bkHalfOpen: the cooldown elapsed; exactly one trial request is
	// allowed through. Success recloses, failure reopens.
	bkHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case bkClosed:
		return "closed"
	case bkOpen:
		return "open"
	case bkHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is one worker's failure-handling state. All transitions run
// under the owning registry's mutex; times come from the registry's
// injected clock so tests are deterministic.
type breaker struct {
	state breakerState
	// fails counts consecutive failures while closed. Any success
	// resets it — which is exactly the flap damping: a worker
	// alternating pass/fail never accumulates enough to trip.
	fails int
	// openedAt stamps the closed→open (or half-open→open) transition;
	// the cooldown is measured from it.
	openedAt time.Time
	// trial marks the half-open probe token as taken.
	trial bool
	// quarantined is the integrity flag: the worker served bytes whose
	// digest did not verify. Quarantine overrides everything — no
	// dispatches — until QuarantineCooldown has elapsed AND a probe
	// succeeds.
	quarantined   bool
	quarantinedAt time.Time
}

// allow reports whether a request may be sent to this worker now,
// advancing open→half-open when the cooldown has elapsed (and
// consuming the single half-open trial token). Caller holds the
// registry mutex.
func (b *breaker) allow(now time.Time, cooldown time.Duration) bool {
	if b.quarantined {
		return false
	}
	switch b.state {
	case bkClosed:
		return true
	case bkOpen:
		if now.Sub(b.openedAt) < cooldown {
			return false
		}
		b.state = bkHalfOpen
		b.trial = true
		return true
	case bkHalfOpen:
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
	return false
}

// success applies a successful request or probe. Returns true when
// the transition was a reclose (half-open/open → closed).
func (b *breaker) success() bool {
	b.fails = 0
	b.trial = false
	if b.state != bkClosed {
		b.state = bkClosed
		return true
	}
	return false
}

// failure applies a failed request or probe. Returns true when the
// breaker tripped (→ open) on this failure.
func (b *breaker) failure(now time.Time, threshold int) bool {
	switch b.state {
	case bkClosed:
		b.fails++
		if b.fails < threshold {
			return false
		}
		b.state = bkOpen
		b.openedAt = now
		return true
	case bkHalfOpen:
		// The trial failed: back to cooling down.
		b.state = bkOpen
		b.openedAt = now
		b.trial = false
		return true
	case bkOpen:
		// Already cooling; don't extend the window — a burst of
		// failures against a downed worker should not push recovery
		// ever further out.
		return false
	}
	return false
}

// quarantine forces the breaker open and raises the integrity flag.
func (b *breaker) quarantine(now time.Time) {
	b.quarantined = true
	b.quarantinedAt = now
	b.state = bkOpen
	b.openedAt = now
	b.trial = false
	b.fails = 0
}

// requalify clears quarantine if its cooldown has elapsed. The caller
// invokes this only on a successful probe, making rehabilitation
// probe-gated: time alone is never enough.
func (b *breaker) requalify(now time.Time, cooldown time.Duration) bool {
	if !b.quarantined || now.Sub(b.quarantinedAt) < cooldown {
		return false
	}
	b.quarantined = false
	b.state = bkClosed
	b.fails = 0
	b.trial = false
	return true
}
