// Sweep crash-recovery: every sweep writes a WAL (internal/store's
// checksummed append-only log) under Options.JournalDir — one header
// record carrying the expanded job set, then one record per outcome
// as it lands, then the report. A coordinator killed mid-sweep leaves
// the journal without a report record; New finds it, restores the
// journalled outcomes (so reconnecting watchers replay them by resume
// token), and re-dispatches only the jobs with no outcome on disk.
// See DESIGN.md §13 for the format and versioning contract.
package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"dstore/internal/obs/dtrace"
	"dstore/internal/store"
)

// journalVersion is bumped on any incompatible record change; a
// journal with a different version is set aside, never misread.
const journalVersion = 1

// Journal record types.
const (
	journalTypeSweep   = "sweep"   // header: sweep identity + expanded job set
	journalTypeOutcome = "outcome" // one finished job
	journalTypeReport  = "report"  // terminal: the aggregate report
)

// journalJob is one expanded matrix point as journalled: everything
// needed to re-dispatch it after a crash.
type journalJob struct {
	Index int             `json:"index"`
	ID    string          `json:"id"`
	Spec  json.RawMessage `json:"spec"`
}

// journalRecord is the one wire shape for all record types.
type journalRecord struct {
	V       int          `json:"v"`
	Type    string       `json:"type"`
	SweepID string       `json:"sweep_id,omitempty"`
	Total   int          `json:"total,omitempty"`
	Jobs    []journalJob `json:"jobs,omitempty"`
	Outcome *Outcome     `json:"outcome,omitempty"`
	Report  *Report      `json:"report,omitempty"`
}

// sweepJournal is one sweep's durable log. Appends are best-effort by
// design: a journal write failure degrades crash-recovery (the job
// would be re-dispatched after a crash, and re-dispatch is idempotent
// — content-addressed jobs hit worker caches) but never fails the
// sweep itself.
type sweepJournal struct {
	wal     *store.WAL
	appends *atomic.Uint64
	errs    *atomic.Uint64
}

func (j *sweepJournal) append(rec journalRecord) {
	if j == nil || j.wal == nil {
		return
	}
	rec.V = journalVersion
	b, err := json.Marshal(rec)
	if err == nil {
		err = j.wal.Append(b)
	}
	if err != nil {
		j.errs.Add(1)
		return
	}
	j.appends.Add(1)
}

func (j *sweepJournal) close() {
	if j == nil || j.wal == nil {
		return
	}
	_ = j.wal.Close()
	j.wal = nil
}

// newSweepJournal opens the journal for a fresh sweep and writes its
// header record. A leftover file for the same sweep ID (one set aside
// and restored by hand, say) is replaced, not appended to — mixing
// two runs' outcome streams would corrupt resume accounting.
func (c *Coordinator) newSweepJournal(id string, jobs []sweepJob) (*sweepJournal, error) {
	path := filepath.Join(c.opt.JournalDir, id+".wal")
	wal, recs, err := store.OpenWAL(path)
	if err != nil {
		return nil, err
	}
	if len(recs) > 0 {
		wal.Close()
		if err := os.Remove(path); err != nil {
			return nil, err
		}
		if wal, _, err = store.OpenWAL(path); err != nil {
			return nil, err
		}
	}
	jl := &sweepJournal{wal: wal, appends: &c.journalAppends, errs: &c.journalErrors}
	hdr := journalRecord{Type: journalTypeSweep, SweepID: id, Total: len(jobs)}
	hdr.Jobs = make([]journalJob, 0, len(jobs))
	for _, j := range jobs {
		hdr.Jobs = append(hdr.Jobs, journalJob{Index: j.index, ID: j.id, Spec: json.RawMessage(j.canon)})
	}
	jl.append(hdr)
	return jl, nil
}

// loadJournals scans Options.JournalDir at startup: completed sweeps
// are restored read-only (status, stream replay and report survive
// the restart), incomplete ones resume dispatching. A journal that
// cannot be understood — bad header, wrong version, unparseable
// record — is renamed aside for post-mortem rather than taking the
// coordinator down.
func (c *Coordinator) loadJournals() error {
	if err := os.MkdirAll(c.opt.JournalDir, 0o755); err != nil {
		return fmt.Errorf("fleet: journal dir: %w", err)
	}
	paths, err := filepath.Glob(filepath.Join(c.opt.JournalDir, "*.wal"))
	if err != nil {
		return fmt.Errorf("fleet: journal dir: %w", err)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := c.loadJournal(path); err != nil {
			c.journalErrors.Add(1)
			_ = os.Rename(path, path+".corrupt")
		}
	}
	return nil
}

func (c *Coordinator) loadJournal(path string) error {
	wal, recs, err := store.OpenWAL(path)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		wal.Close()
		return fmt.Errorf("fleet: journal %s has no header", path)
	}
	var hdr journalRecord
	if err := json.Unmarshal(recs[0], &hdr); err != nil {
		wal.Close()
		return fmt.Errorf("fleet: journal %s: %w", path, err)
	}
	if hdr.Type != journalTypeSweep || hdr.V != journalVersion ||
		hdr.SweepID == "" || hdr.Total != len(hdr.Jobs) {
		wal.Close()
		return fmt.Errorf("fleet: journal %s: bad header (type %q, v%d, %d/%d jobs)",
			path, hdr.Type, hdr.V, len(hdr.Jobs), hdr.Total)
	}

	s := newSweepRun(hdr.SweepID, hdr.Total)
	s.trace = dtrace.TraceIDFromHex(hdr.SweepID)
	s.rec = c.rec
	completed := make(map[string]bool, len(recs))
	var rep *Report
	for _, raw := range recs[1:] {
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			wal.Close()
			return fmt.Errorf("fleet: journal %s: %w", path, err)
		}
		switch rec.Type {
		case journalTypeOutcome:
			if rec.Outcome == nil || completed[rec.Outcome.ID] {
				continue
			}
			o := *rec.Outcome
			o.Seq = len(s.outcomes)
			s.outcomes = append(s.outcomes, o)
			if o.Error != "" {
				s.failed++
			}
			if o.Cached {
				s.cached++
			}
			completed[o.ID] = true
			c.jobsReplayed.Add(1)
		case journalTypeReport:
			rep = rec.Report
		}
	}

	c.sweepMu.Lock()
	c.sweeps[hdr.SweepID] = s
	c.sweepMu.Unlock()

	if rep != nil {
		s.report = rep
		s.done = true
		wal.Close()
		return nil
	}

	// Incomplete: keep appending to the same journal and re-dispatch
	// only the jobs with no outcome on disk.
	s.jl = &sweepJournal{wal: wal, appends: &c.journalAppends, errs: &c.journalErrors}
	remaining := make([]sweepJob, 0, hdr.Total-len(completed))
	for _, j := range hdr.Jobs {
		if !completed[j.ID] {
			remaining = append(remaining, sweepJob{index: j.Index, id: j.ID, canon: []byte(j.Spec)})
		}
	}
	c.sweepsRun.Add(1)
	c.sweepsResumed.Add(1)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.runSweep(s, remaining)
	}()
	return nil
}
