package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dstore/internal/fleet/chaosnet"
)

// TestFleetChaosE2E is the fault-tolerance proof over real processes:
// three workers (one behind a chaos proxy), a journalling coordinator
// SIGKILLed mid-sweep and restarted, a partition injected and healed,
// one corrupted result body — and at the end, every one of the 1000
// sweep results byte-identical to an uninstrumented single-process
// oracle, with zero failed jobs.
func TestFleetChaosE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos e2e skipped in -short mode")
	}
	serveBin, coordBin := buildBinaries(t)
	client := &http.Client{Timeout: time.Minute}

	// Three workers with persistent stores; worker 2 is reachable only
	// through the chaos proxy, so every byte it serves crosses the
	// fault-injection path.
	workers := make([]*proc, 3)
	for i := range workers {
		workers[i] = startProc(t, serveBin, "dstore-serve listening on ",
			"-addr", "127.0.0.1:0", "-workers", "2", "-queue", "256",
			"-store", filepath.Join(t.TempDir(), fmt.Sprintf("store%d", i)))
	}
	proxy, err := chaosnet.New(workers[2].url, 1, chaosnet.FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	phs := httptest.NewServer(proxy)
	defer phs.Close()

	journalDir := filepath.Join(t.TempDir(), "journal")
	coordArgs := []string{
		"-addr", "127.0.0.1:0",
		"-workers", workers[0].url + "," + workers[1].url + "," + phs.URL,
		"-journal", journalDir,
		"-probe-interval", "300ms", "-probe-timeout", "2s",
		"-poll-interval", "5ms", "-sweep-workers", "32",
		"-failure-threshold", "2", "-breaker-cooldown", "500ms",
		"-quarantine-cooldown", "2s",
		"-backoff-base", "20ms", "-backoff-max", "200ms",
	}
	coord := startProc(t, coordBin, "dstore-coord listening on ", coordArgs...)

	// The same 1000-job matrix the plain e2e uses.
	matrix := `{
		"bench": ["MT", "VA", "BL", "NN"],
		"mode": ["direct-store"],
		"config": {
			"prefetch_depth": [0, 1, 2, 3, 4],
			"max_warps_per_sm": [4, 8, 12, 16, 24],
			"sms": [2, 4, 6, 8, 10, 12, 14, 16, 18, 20]
		}
	}`
	const wantJobs = 1000

	req, err := http.NewRequest(http.MethodPost, coord.url+"/v1/sweeps", strings.NewReader(matrix))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	sweepResp, err := (&http.Client{}).Do(req) // no timeout: stream lives for the sweep
	if err != nil {
		t.Fatal(err)
	}
	if sweepResp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(sweepResp.Body)
		t.Fatalf("sweep submit: %d: %s", sweepResp.StatusCode, b)
	}
	sweepID := sweepResp.Header.Get("X-Dstore-Sweep")
	if sweepID == "" {
		t.Fatal("no sweep id on the stream response")
	}

	// Drain the stream until 150 results are in hand, then SIGKILL the
	// coordinator — a hard crash, no shutdown path. The stream breaks;
	// whatever error the broken socket surfaces is expected.
	preCrash := make(map[int]Outcome)
	killed := false
	sc := bufio.NewScanner(sweepResp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev sweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			break // torn line from the dying connection
		}
		if ev.Event != "result" {
			continue
		}
		var o Outcome
		if err := json.Unmarshal(ev.Data, &o); err != nil {
			break
		}
		preCrash[o.Seq] = o
		if !killed && len(preCrash) == 150 {
			killed = true
			if err := coord.cmd.Process.Kill(); err != nil {
				t.Fatalf("SIGKILL coordinator: %v", err)
			}
			t.Logf("SIGKILLed the coordinator after %d streamed results", len(preCrash))
		}
	}
	sweepResp.Body.Close()
	if !killed {
		t.Fatal("sweep finished before the kill point")
	}
	_, _ = coord.cmd.Process.Wait()

	// Restart over the same journal: the sweep must resume on its own.
	coord2 := startProc(t, coordBin, "dstore-coord listening on ", coordArgs...)
	var stats map[string]uint64
	if err := getJSONInto(client, coord2.url+"/v1/stats", &stats); err != nil {
		t.Fatal(err)
	}
	if stats["fleet_sweeps_resumed_total"] != 1 {
		t.Fatalf("restarted coordinator resumed %d sweeps, want 1: %v", stats["fleet_sweeps_resumed_total"], stats)
	}
	replayed := int(stats["fleet_jobs_replayed_total"])
	if replayed < 150 || replayed >= wantJobs {
		t.Fatalf("jobs replayed = %d, want within [150, %d)", replayed, wantJobs)
	}
	t.Logf("resume: %d journalled outcomes replayed, %d jobs re-dispatching", replayed, wantJobs-replayed)

	// Reconnect from seq 0: the journalled prefix replays instantly,
	// then live results follow. While they stream, run the chaos
	// choreography against the proxied worker: partition, heal, then
	// one corrupted result body.
	req, err = http.NewRequest(http.MethodGet, coord2.url+"/v1/sweeps/"+sweepID+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream reconnect: %d: %s", resp.StatusCode, b)
	}
	var all []Outcome
	var report *Report
	partitionAt, healAt, corruptAt := replayed+50, replayed+250, replayed+450
	sc = bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev sweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case "result":
			var o Outcome
			if err := json.Unmarshal(ev.Data, &o); err != nil {
				t.Fatal(err)
			}
			all = append(all, o)
			switch len(all) {
			case partitionAt:
				proxy.Partition(true)
				t.Logf("partitioned %s at %d results", phs.URL, len(all))
			case healAt:
				proxy.Partition(false)
				t.Logf("healed the partition at %d results", len(all))
			case corruptAt:
				proxy.CorruptNext(1)
				t.Logf("scheduled one corrupt result body at %d results", len(all))
			}
		case "report":
			report = &Report{}
			if err := json.Unmarshal(ev.Data, report); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Integrity of the final state: every job exactly once, none
	// failed, and the pre-crash stream's resume tokens still valid —
	// the replayed prefix is identical, seq for seq.
	if len(all) != wantJobs {
		t.Fatalf("streamed %d results, want %d", len(all), wantJobs)
	}
	if report == nil || report.Completed != wantJobs || report.Failed != 0 || report.Degraded {
		t.Fatalf("report after crash + chaos: %+v", report)
	}
	seen := make(map[string]bool, wantJobs)
	for i, o := range all {
		if o.Error != "" {
			t.Fatalf("job %.8s failed despite failover: %s", o.ID, o.Error)
		}
		if o.Seq != i {
			t.Fatalf("result %d carries seq %d", i, o.Seq)
		}
		if seen[o.ID] {
			t.Fatalf("job %.8s streamed twice", o.ID)
		}
		seen[o.ID] = true
	}
	for seq, o := range preCrash { //dstore:allow-maprange per-seq comparison, order free
		if all[seq].ID != o.ID || !bytes.Equal(all[seq].Result, o.Result) {
			t.Fatalf("replayed seq %d diverged from the pre-crash stream", seq)
		}
	}

	// The chaos must have been felt and handled: the partition tripped
	// the proxied worker's breaker, a probe reclosed it after the heal,
	// and the corrupted body was caught and quarantined — never served.
	if err := getJSONInto(client, coord2.url+"/v1/stats", &stats); err != nil {
		t.Fatal(err)
	}
	if stats["fleet_jobs_failed_total"] != 0 {
		t.Fatalf("failed jobs after chaos: %v", stats)
	}
	if stats["fleet_breaker_trips_total"] == 0 {
		t.Fatalf("partition did not trip a breaker: %v", stats)
	}
	if stats["fleet_corrupt_results_total"] == 0 || stats["fleet_quarantines_total"] == 0 {
		t.Fatalf("corruption not caught/quarantined: %v", stats)
	}
	counts := proxy.Counts()
	if counts.Partitioned == 0 || counts.Corruptions != 1 {
		t.Fatalf("proxy injections off: %+v", counts)
	}

	// Oracle: a fresh single-process worker re-runs every canonical
	// spec; the fleet's results — crash, partition and corruption
	// notwithstanding — must match byte for byte.
	oracle := startProc(t, serveBin, "dstore-serve listening on ",
		"-addr", "127.0.0.1:0", "-workers", "2", "-queue", "256")
	oracleResults := runAllOn(t, client, oracle.url, all)
	for _, o := range all {
		want, ok := oracleResults[o.ID]
		if !ok {
			t.Fatalf("oracle produced no result for %.8s", o.ID)
		}
		if !bytes.Equal(o.Result, want) {
			t.Fatalf("job %.8s differs from oracle:\n  fleet:  %s\n  oracle: %s", o.ID, o.Result, want)
		}
	}
	t.Logf("chaos e2e: %d results byte-identical to oracle after crash-resume + partition + corruption", wantJobs)
}
