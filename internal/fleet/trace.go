// Fleet-wide trace export and profile capture: the coordinator's view
// of a sweep is only half the story — the queue waits, cache lookups
// and simulate spans live in the workers' span rings. GET
// /v1/sweeps/{id}/trace stitches both halves into one Chrome
// trace-event document by fanning the sweep's trace ID out to every
// registered worker and merging whatever each one recorded under it.
// POST /v1/profiles does the runtime equivalent for CPU time: a
// fleet-wide pprof capture, each profile stored content-addressed so a
// capture is citable by digest long after the incident.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"dstore/internal/obs/dtrace"
)

// traceErrorsHeader reports workers whose span rings could not be
// fetched during a trace export; the stitched document still renders
// from everything that answered.
const traceErrorsHeader = "X-Dstore-Trace-Errors"

// handleSweepTrace implements GET /v1/sweeps/{id}/trace: resolve the
// sweep's trace ID, dump the coordinator's own spans, fetch each
// registered worker's dump for the same trace (sequentially, in
// sorted-URL order — export is a debugging path, determinism beats
// latency here), and stitch the lot into one Chrome trace-event JSON
// document. Workers that fail to answer are skipped and named in
// X-Dstore-Trace-Errors rather than failing the export: a trace with
// a hole beats no trace during an incident.
func (c *Coordinator) handleSweepTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s := c.lookupSweep(id)
	if s == nil {
		writeError(w, http.StatusNotFound, "unknown sweep %q", id)
		return
	}
	if s.trace == 0 {
		writeError(w, http.StatusUnprocessableEntity, "sweep %q has no trace id", id)
		return
	}
	tid := dtrace.FormatTraceID(s.trace)
	dumps := []dtrace.Dump{c.rec.DumpTrace(s.trace)}
	var fetchErrs []string
	_, states := c.reg.snapshot() // sorted by URL: stable fan-out order
	for _, st := range states {
		d, err := c.fetchWorkerTrace(r, st.URL, tid)
		if err != nil {
			fetchErrs = append(fetchErrs, st.URL)
			continue
		}
		if len(d.Spans) == 0 {
			continue // worker never saw this trace; no process row for it
		}
		dumps = append(dumps, d)
	}
	out, err := dtrace.Stitch(s.trace, dumps)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "stitch trace: %v", err)
		return
	}
	c.traceExports.Add(1)
	if len(fetchErrs) > 0 {
		w.Header().Set(traceErrorsHeader, joinURLs(fetchErrs))
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(out)
}

// fetchWorkerTrace pulls one worker's span dump for a trace, bounded
// by the federation timeout.
func (c *Coordinator) fetchWorkerTrace(r *http.Request, base, tid string) (dtrace.Dump, error) {
	//dstore:allow-wallclock federation deadline is operational
	ctx, cancel := context.WithTimeout(r.Context(), c.opt.FederationTimeout)
	defer cancel()
	code, _, body, err := c.do(ctx, http.MethodGet, base+"/v1/traces/"+tid, nil)
	if err != nil {
		return dtrace.Dump{}, err
	}
	if code != http.StatusOK {
		return dtrace.Dump{}, fmt.Errorf("fleet: trace from %s: %d", base, code)
	}
	var d dtrace.Dump
	if err := json.Unmarshal(body, &d); err != nil {
		return dtrace.Dump{}, fmt.Errorf("fleet: trace from %s unparseable: %v", base, err)
	}
	return d, nil
}

// profileManifest is the response to a fleet profile capture: one
// entry per worker that delivered a profile, keyed by the profile's
// content address in the coordinator's store.
type profileManifest struct {
	Seconds  int               `json:"seconds"`
	Profiles []capturedProfile `json:"profiles"`
	Errors   map[string]string `json:"errors,omitempty"`
}

type capturedProfile struct {
	Worker string `json:"worker"`
	Digest string `json:"digest"`
	Bytes  int    `json:"bytes"`
}

// profileNamespace is the store namespace for captured CPU profiles.
const profileNamespace = "profile"

// handleProfileCapture implements POST /v1/profiles: capture a CPU
// profile from every registered worker's /debug/pprof/profile (they
// must run with -pprof) and persist each one content-addressed in the
// coordinator's store. ?seconds=N bounds the capture (default 1,
// max 30). Answers 503 without a store (-store not set).
func (c *Coordinator) handleProfileCapture(w http.ResponseWriter, r *http.Request) {
	if c.profiles == nil {
		writeError(w, http.StatusServiceUnavailable, "fleet: profile capture needs a coordinator store (-store)")
		return
	}
	secs := 1
	if v := r.URL.Query().Get("seconds"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 30 {
			writeError(w, http.StatusBadRequest, "bad seconds %q (want 1..30)", v)
			return
		}
		secs = n
	}
	man := profileManifest{Seconds: secs}
	_, states := c.reg.snapshot()
	for _, st := range states {
		body, err := c.captureProfile(r, st.URL, secs)
		if err != nil {
			if man.Errors == nil {
				man.Errors = make(map[string]string)
			}
			man.Errors[st.URL] = err.Error()
			continue
		}
		digest := digestOf(body)
		if err := c.profiles.Put(profileNamespace, digest, body); err != nil {
			if man.Errors == nil {
				man.Errors = make(map[string]string)
			}
			man.Errors[st.URL] = err.Error()
			continue
		}
		c.profileCaps.Add(1)
		man.Profiles = append(man.Profiles, capturedProfile{Worker: st.URL, Digest: digest, Bytes: len(body)})
	}
	code := http.StatusOK
	if len(man.Profiles) == 0 {
		code = http.StatusBadGateway
	}
	writeJSON(w, code, man)
}

// captureProfile pulls one worker's CPU profile. The capture itself
// takes secs seconds by design, so the deadline is the federation
// timeout on top of the capture window, not instead of it.
func (c *Coordinator) captureProfile(r *http.Request, base string, secs int) ([]byte, error) {
	//dstore:allow-wallclock profile capture deadline is operational
	ctx, cancel := context.WithTimeout(r.Context(), c.opt.FederationTimeout+time.Duration(secs)*time.Second)
	defer cancel()
	u := base + "/debug/pprof/profile?seconds=" + strconv.Itoa(secs)
	code, _, body, err := c.do(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("fleet: profile from %s: %d: %.120s", base, code, body)
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("fleet: profile from %s: empty body", base)
	}
	return body, nil
}

// joinURLs renders a URL list for a response header, comma-separated
// with each element escaped (URLs contain no commas once escaped).
func joinURLs(urls []string) string {
	out := ""
	for i, u := range urls {
		if i > 0 {
			out += ","
		}
		out += url.QueryEscape(u)
	}
	return out
}
