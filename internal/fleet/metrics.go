package fleet

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"dstore/internal/obs"
	"dstore/internal/obs/dtrace"
	"dstore/internal/stats"
)

// metricDefs lists every scalar coordinator metric in a fixed order,
// with its Prometheus type. /metrics and /v1/stats both render from
// this table (the same convention as internal/serve), so the two
// views can never disagree on names. The keys are registered in
// internal/stats/registry.go.
var metricDefs = []struct {
	name, kind string
}{
	{"fleet_workers", "gauge"},
	{"fleet_workers_healthy", "gauge"},
	{"fleet_probes_total", "counter"},
	{"fleet_probe_failures_total", "counter"},
	{"fleet_jobs_dispatched_total", "counter"},
	{"fleet_jobs_completed_total", "counter"},
	{"fleet_jobs_failed_total", "counter"},
	{"fleet_dispatch_failovers_total", "counter"},
	{"fleet_sweeps_started_total", "counter"},
	{"fleet_sweeps_completed_total", "counter"},
	{"fleet_sweeps_active", "gauge"},
	{"fleet_sweep_results_streamed_total", "counter"},
	{"fleet_dispatch_retry_rounds_total", "counter"},
	{"fleet_breaker_trips_total", "counter"},
	{"fleet_breaker_recloses_total", "counter"},
	{"fleet_workers_quarantined", "gauge"},
	{"fleet_quarantines_total", "counter"},
	{"fleet_requalified_total", "counter"},
	{"fleet_corrupt_results_total", "counter"},
	{"fleet_sweeps_degraded_total", "counter"},
	{"fleet_sweeps_resumed_total", "counter"},
	{"fleet_jobs_replayed_total", "counter"},
	{"coord_pending_jobs", "gauge"},
	{"coord_shed_total", "counter"},
	{"coord_journal_appends_total", "counter"},
	{"coord_journal_errors_total", "counter"},
	{"fleet_federation_scrapes_total", "counter"},
	{"fleet_federation_errors_total", "counter"},
	{"fleet_trace_exports_total", "counter"},
	{"coord_profile_captures_total", "counter"},
	// The coordinator's span-ring counters use the coord_ prefix — the
	// workers' own obs_spans_* families arrive via federation below,
	// and one exposition must not carry the same family twice.
	{"coord_spans_recorded_total", "counter"},
	{"coord_spans_dropped_total", "counter"},
	{"fleet_dispatch_latency_ns", "histogram"},
}

// snapshot materializes the scalar metrics as a stats.Set in
// metricDefs order.
func (c *Coordinator) snapshot() *stats.Set {
	healthy, total := c.reg.healthyCount()
	probes, probeFailures := c.reg.probeCounts()
	trips, recloses, quarantines, requalified := c.reg.breakerCounts()
	started := c.sweepsRun.Load()
	done := c.sweepsDone.Load()
	pending := c.pending.Load()
	if pending < 0 {
		pending = 0
	}
	values := map[string]uint64{
		"fleet_workers":                      uint64(total),
		"fleet_workers_healthy":              uint64(healthy),
		"fleet_probes_total":                 probes,
		"fleet_probe_failures_total":         probeFailures,
		"fleet_jobs_dispatched_total":        c.dispatched.Load(),
		"fleet_jobs_completed_total":         c.completed.Load(),
		"fleet_jobs_failed_total":            c.jobsFailed.Load(),
		"fleet_dispatch_failovers_total":     c.failovers.Load(),
		"fleet_sweeps_started_total":         started,
		"fleet_sweeps_completed_total":       done,
		"fleet_sweeps_active":                started - done,
		"fleet_sweep_results_streamed_total": c.streamed.Load(),
		"fleet_dispatch_retry_rounds_total":  c.retryRounds.Load(),
		"fleet_breaker_trips_total":          trips,
		"fleet_breaker_recloses_total":       recloses,
		"fleet_workers_quarantined":          uint64(c.reg.quarantinedCount()),
		"fleet_quarantines_total":            quarantines,
		"fleet_requalified_total":            requalified,
		"fleet_corrupt_results_total":        c.corrupt.Load(),
		"fleet_sweeps_degraded_total":        c.sweepsDegraded.Load(),
		"fleet_sweeps_resumed_total":         c.sweepsResumed.Load(),
		"fleet_jobs_replayed_total":          c.jobsReplayed.Load(),
		"coord_pending_jobs":                 uint64(pending),
		"coord_shed_total":                   c.shed.Load(),
		"coord_journal_appends_total":        c.journalAppends.Load(),
		"coord_journal_errors_total":         c.journalErrors.Load(),
		"fleet_federation_scrapes_total":     c.fedScrapes.Load(),
		"fleet_federation_errors_total":      c.fedErrors.Load(),
		"fleet_trace_exports_total":          c.traceExports.Load(),
		"coord_profile_captures_total":       c.profileCaps.Load(),
	}
	spansRecorded, spansDropped := c.rec.Counts()
	values["coord_spans_recorded_total"] = spansRecorded
	values["coord_spans_dropped_total"] = spansDropped
	values["fleet_dispatch_latency_ns"] = c.dispatchLatSnapshot().Count()
	set := stats.NewSet()
	for _, d := range metricDefs {
		set.Counter(d.name).Add(values[d.name]) //dstore:allow-statskey Prometheus names from metricDefs
	}
	return set
}

// handleMetrics implements GET /metrics in the Prometheus text
// exposition format: the scalar table, then per-worker gauges
// labelled by worker URL (health, last-scraped queue depth and cache
// hit rate, cumulative executed jobs).
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	set := c.snapshot()
	var b strings.Builder
	for _, d := range metricDefs {
		if d.kind == "histogram" {
			c.dispatchLatSnapshot().WriteProm(&b, d.name)
			continue
		}
		//dstore:allow-statskey Prometheus names from metricDefs
		fmt.Fprintf(&b, "# TYPE %s %s\n%s %d\n", d.name, d.kind, d.name, set.Get(d.name))
	}
	_, states := c.reg.snapshot()
	perWorker := []struct {
		name, kind string
		value      func(workerState) string
	}{
		{"fleet_worker_healthy", "gauge", func(st workerState) string {
			if st.Healthy {
				return "1"
			}
			return "0"
		}},
		{"fleet_worker_queue_depth", "gauge", func(st workerState) string {
			return fmt.Sprintf("%d", st.QueueDepth)
		}},
		{"fleet_worker_cache_hit_rate", "gauge", func(st workerState) string {
			return fmt.Sprintf("%g", st.CacheHitRate)
		}},
		{"fleet_worker_executed_total", "counter", func(st workerState) string {
			return fmt.Sprintf("%d", st.Executed)
		}},
		{"fleet_worker_breaker_open", "gauge", func(st workerState) string {
			if st.Breaker != "closed" {
				return "1"
			}
			return "0"
		}},
		{"fleet_worker_quarantined", "gauge", func(st workerState) string {
			if st.Quarantined {
				return "1"
			}
			return "0"
		}},
	}
	for _, m := range perWorker {
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		for _, st := range states {
			fmt.Fprintf(&b, "%s{worker=%q} %s\n", m.name, st.URL, m.value(st))
		}
	}
	c.writeFederation(r, &b, states)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(b.String()))
}

// writeFederation scrapes every registered worker's /metrics and
// re-exports the union: each worker's samples labelled worker="url",
// plus an unlabelled fleet-level sum per series (histograms federate
// at the bucket level, so the summed series is itself a valid
// histogram). Workers that fail to answer within the federation
// timeout are skipped and counted in fleet_federation_errors_total —
// a partial federation beats a stalled scrape. Scrape order is the
// registry's sorted-URL order, so the rendering is deterministic in
// the fleet membership.
func (c *Coordinator) writeFederation(r *http.Request, b *strings.Builder, states []workerState) {
	var workers []dtrace.WorkerMetrics
	for _, st := range states {
		c.fedScrapes.Add(1)
		//dstore:allow-wallclock federation deadline is operational
		ctx, cancel := context.WithTimeout(r.Context(), c.opt.FederationTimeout)
		code, _, body, err := c.do(ctx, http.MethodGet, st.URL+"/metrics", nil)
		cancel()
		if err != nil || code != http.StatusOK {
			c.fedErrors.Add(1)
			continue
		}
		m, err := dtrace.Parse(string(body))
		if err != nil {
			c.fedErrors.Add(1)
			continue
		}
		workers = append(workers, dtrace.WorkerMetrics{Worker: st.URL, M: m})
	}
	dtrace.WriteFederated(b, workers)
}

// dispatchLatSnapshot clones the dispatch-latency histogram under its
// lock so rendering never races concurrent dispatches.
func (c *Coordinator) dispatchLatSnapshot() *obs.Histogram {
	out := obs.NewHistogram("fleet_dispatch_latency_ns")
	c.histMu.Lock()
	out.Merge(c.dispatchLat)
	c.histMu.Unlock()
	return out
}

// handleStats implements GET /v1/stats: the scalar metrics as an
// ordered JSON object (stats.Set's encoding).
func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	b, err := c.snapshot().MarshalJSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	_, _ = w.Write(b)
}
