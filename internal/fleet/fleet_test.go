package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dstore/internal/benchfmt"
	"dstore/internal/serve"
)

// startWorker boots a real serve.Server behind an httptest listener
// and returns its base URL.
func startWorker(t *testing.T, opt serve.Options) string {
	t.Helper()
	if opt.Workers == 0 {
		opt.Workers = 2
	}
	srv, err := serve.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return hs.URL
}

// startCoord boots a Coordinator over the given workers with
// test-friendly timings (probes effectively off unless asked for).
func startCoord(t *testing.T, opt Options) (string, *Coordinator) {
	t.Helper()
	if opt.ProbeInterval == 0 {
		opt.ProbeInterval = time.Hour
	}
	if opt.PollInterval == 0 {
		opt.PollInterval = 2 * time.Millisecond
	}
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		hs.Close()
		c.Close()
	})
	return hs.URL, c
}

func postBody(t *testing.T, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr { //dstore:allow-maprange test request headers, order free
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func coordStats(t *testing.T, base string) map[string]uint64 {
	t.Helper()
	code, b := getBody(t, base+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("/v1/stats: %d: %s", code, b)
	}
	var m map[string]uint64
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("/v1/stats unparseable: %v: %s", err, b)
	}
	return m
}

const specMT = `{"bench":"MT","mode":"direct-store","input":"small"}`

func TestProxySingleJobAndCacheAffinity(t *testing.T) {
	w1 := startWorker(t, serve.Options{})
	w2 := startWorker(t, serve.Options{})
	base, _ := startCoord(t, Options{Workers: []string{w1, w2}})

	resp1, b1 := postBody(t, base+"/v1/runs", specMT, nil)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("proxy submit: %d: %s", resp1.StatusCode, b1)
	}
	var rr1 runResp
	if err := json.Unmarshal(b1, &rr1); err != nil || rr1.Status != "done" || len(rr1.Result) == 0 {
		t.Fatalf("proxy response: %v %s", err, b1)
	}
	owner := resp1.Header.Get("X-Dstore-Worker")
	if owner != w1 && owner != w2 {
		t.Fatalf("X-Dstore-Worker = %q, want one of the fleet", owner)
	}

	// The resubmission must route to the same worker (hash affinity)
	// and be answered from its cache without re-simulating.
	resp2, b2 := postBody(t, base+"/v1/runs", specMT, nil)
	var rr2 runResp
	if err := json.Unmarshal(b2, &rr2); err != nil {
		t.Fatal(err)
	}
	if got := resp2.Header.Get("X-Dstore-Worker"); got != owner {
		t.Fatalf("resubmission routed to %q, first to %q — ring affinity broken", got, owner)
	}
	if !rr2.Cached {
		t.Fatal("resubmission not served from worker cache")
	}
	if !bytes.Equal(rr1.Result, rr2.Result) {
		t.Fatalf("cached result differs:\n  %s\n  %s", rr1.Result, rr2.Result)
	}

	// Status and result proxies find the job wherever it lives.
	code, st := getBody(t, base+"/v1/runs/"+rr1.ID)
	if code != http.StatusOK || !strings.Contains(string(st), `"done"`) {
		t.Fatalf("status proxy: %d: %s", code, st)
	}
	code, res := getBody(t, base+"/v1/runs/"+rr1.ID+"/result")
	if code != http.StatusOK || !bytes.Equal(res, rr1.Result) {
		t.Fatalf("result proxy: %d: %s", code, res)
	}
}

func TestProxyBadSpecRejectedLocally(t *testing.T) {
	w1 := startWorker(t, serve.Options{})
	base, c := startCoord(t, Options{Workers: []string{w1}})
	resp, b := postBody(t, base+"/v1/runs", `{"bench":"NOPE"}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %d: %s", resp.StatusCode, b)
	}
	if got := c.dispatched.Load(); got != 0 {
		t.Fatalf("bad spec reached the dispatch path (%d dispatches)", got)
	}
}

func TestUnknownRunIs404AfterFullWalk(t *testing.T) {
	w1 := startWorker(t, serve.Options{})
	w2 := startWorker(t, serve.Options{})
	base, _ := startCoord(t, Options{Workers: []string{w1, w2}})
	code, b := getBody(t, base+"/v1/runs/"+strings.Repeat("ab", 32))
	if code != http.StatusNotFound {
		t.Fatalf("unknown run: %d: %s", code, b)
	}
}

func TestWorkerRegistration(t *testing.T) {
	w1 := startWorker(t, serve.Options{})
	w2 := startWorker(t, serve.Options{})
	base, _ := startCoord(t, Options{Workers: []string{w1}})

	resp, b := postBody(t, base+"/v1/workers", fmt.Sprintf(`{"url":%q}`, w2), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("registration: %d: %s", resp.StatusCode, b)
	}
	var st workerState
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Healthy || st.Static {
		t.Fatalf("registered worker state: %+v (want healthy, dynamic)", st)
	}

	code, lb := getBody(t, base+"/v1/workers")
	if code != http.StatusOK {
		t.Fatalf("list: %d: %s", code, lb)
	}
	var list struct {
		Workers    []workerState `json:"workers"`
		RingPoints int           `json:"ring_points"`
	}
	if err := json.Unmarshal(lb, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Workers) != 2 || list.RingPoints == 0 {
		t.Fatalf("worker list after registration: %s", lb)
	}

	resp, b = postBody(t, base+"/v1/workers", `{"url":"not a url"}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad registration accepted: %d: %s", resp.StatusCode, b)
	}
}

// sweepEvent is one NDJSON stream line.
type sweepEvent struct {
	Event string          `json:"event"`
	Data  json.RawMessage `json:"data"`
}

// runSweepNDJSON posts the matrix and decodes the full stream.
func runSweepNDJSON(t *testing.T, base, matrix string) (results []Outcome, report *Report, sweepID string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/sweeps", strings.NewReader(matrix))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("sweep submit: %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	sweepID = resp.Header.Get("X-Dstore-Sweep")
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev sweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case "result":
			var o Outcome
			if err := json.Unmarshal(ev.Data, &o); err != nil {
				t.Fatal(err)
			}
			results = append(results, o)
		case "report":
			report = &Report{}
			if err := json.Unmarshal(ev.Data, report); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unknown stream event %q", ev.Event)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return results, report, sweepID
}

const sweepMatrix = `{
	"bench": ["MT", "VA"],
	"mode": ["direct-store"],
	"config": {"prefetch_depth": [0, 2]}
}`

func TestSweepStreamsResultsAndReport(t *testing.T) {
	w1 := startWorker(t, serve.Options{})
	w2 := startWorker(t, serve.Options{})
	base, _ := startCoord(t, Options{Workers: []string{w1, w2}, SweepWorkers: 4})

	results, report, sweepID := runSweepNDJSON(t, base, sweepMatrix)
	if len(results) != 4 {
		t.Fatalf("streamed %d results, want 4", len(results))
	}
	for _, o := range results {
		if o.Error != "" {
			t.Fatalf("sweep job %.8s failed: %s", o.ID, o.Error)
		}
		// Every result must agree byte-for-byte with asking the owning
		// worker directly.
		code, direct := getBody(t, o.Worker+"/v1/runs/"+o.ID+"/result")
		if code != http.StatusOK || !bytes.Equal(direct, o.Result) {
			t.Fatalf("sweep result for %.8s differs from worker's own copy", o.ID)
		}
	}
	if report == nil {
		t.Fatal("stream ended without a report event")
	}
	if report.SweepID != sweepID || report.Total != 4 || report.Completed != 4 || report.Failed != 0 {
		t.Fatalf("report totals: %+v", report)
	}
	if len(report.Frontier) == 0 {
		t.Fatal("report has no Pareto frontier")
	}
	last := uint64(0)
	bestBytes := ^uint64(0)
	for _, p := range report.Frontier {
		if p.Ticks < last || p.Bytes >= bestBytes {
			t.Fatalf("frontier not Pareto-ordered: %+v", report.Frontier)
		}
		last, bestBytes = p.Ticks, p.Bytes
	}
	if report.BenchTextError != "" {
		t.Fatalf("bench text failed its own round-trip: %s", report.BenchTextError)
	}
	entries, err := benchfmt.ParseUnique(strings.NewReader(report.BenchText))
	if err != nil {
		t.Fatalf("report bench text does not parse: %v\n%s", err, report.BenchText)
	}
	if len(entries) != 4 {
		t.Fatalf("bench text has %d entries, want 4:\n%s", len(entries), report.BenchText)
	}
	if len(report.Best) == 0 {
		t.Fatal("report has no best-per-benchmark table")
	}

	// The report endpoint serves the same text.
	code, text := getBody(t, base+"/v1/sweeps/"+sweepID+"/report")
	if code != http.StatusOK || string(text) != report.BenchText {
		t.Fatalf("report endpoint: %d\n%s", code, text)
	}
}

func TestSweepIsContentAddressedAndReplays(t *testing.T) {
	w1 := startWorker(t, serve.Options{})
	base, c := startCoord(t, Options{Workers: []string{w1}, SweepWorkers: 4})

	first, rep1, id1 := runSweepNDJSON(t, base, sweepMatrix)
	dispatched := c.dispatched.Load()

	// Same matrix again: same sweep ID, full replay, no new dispatches
	// (the sweep itself is the cache).
	second, rep2, id2 := runSweepNDJSON(t, base, sweepMatrix)
	if id1 != id2 {
		t.Fatalf("same matrix produced different sweep IDs %s vs %s", id1, id2)
	}
	if got := c.dispatched.Load(); got != dispatched {
		t.Fatalf("resubmitted sweep re-dispatched jobs (%d -> %d)", dispatched, got)
	}
	if len(second) != len(first) || rep2 == nil || rep2.BenchText != rep1.BenchText {
		t.Fatal("replayed sweep differs from original")
	}

	// The stream endpoint replays too.
	req, _ := http.NewRequest(http.MethodGet, base+"/v1/sweeps/"+id1+"/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), `"event":"report"`) {
		t.Fatalf("stream replay: %d: %s", resp.StatusCode, b)
	}
}

func TestSweepSSEFraming(t *testing.T) {
	w1 := startWorker(t, serve.Options{})
	base, _ := startCoord(t, Options{Workers: []string{w1}})

	req, err := http.NewRequest(http.MethodPost, base+"/v1/sweeps",
		strings.NewReader(`{"bench":["MT"]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	s := string(b)
	if !strings.Contains(s, "event: result\ndata: ") || !strings.Contains(s, "event: report\ndata: ") {
		t.Fatalf("SSE framing missing events:\n%s", s)
	}
}

func TestSweepBadMatrix(t *testing.T) {
	w1 := startWorker(t, serve.Options{})
	base, _ := startCoord(t, Options{Workers: []string{w1}})
	for _, m := range []string{
		`{"bench":[]}`,
		`{"bench":["NOPE"]}`,
		`{"bench":["MT"],"config":{"no_such_knob":[1]}}`,
		`{"bench":["MT"],"config":{"prefetch_depth":[]}}`,
		`{"bench":["MT"],"mode":["warp-drive"]}`,
	} {
		resp, b := postBody(t, base+"/v1/sweeps", m, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("matrix %s: got %d (%s), want 400", m, resp.StatusCode, b)
		}
	}
}

func TestSweepFailsOverDeadWorker(t *testing.T) {
	w1 := startWorker(t, serve.Options{})

	// A worker that is registered and believed healthy but is already
	// gone: its listener is closed before any dispatch.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	// FailureThreshold 1 restores the old one-strike behavior this
	// test pins: the first refused connection trips the breaker. The
	// 16-job matrix (vs the usual 4) makes it overwhelmingly likely
	// the dead worker is first owner for at least one job — ring
	// placement depends on the ephemeral port.
	base, c := startCoord(t, Options{Workers: []string{w1, deadURL}, SweepWorkers: 4, FailureThreshold: 1})
	m := `{"bench":["MT","VA"],"mode":["direct-store"],"config":{"prefetch_depth":[0,1],"sms":[2,4],"max_warps_per_sm":[4,8]}}`
	results, report, _ := runSweepNDJSON(t, base, m)
	if len(results) != 16 || report == nil || report.Failed != 0 {
		t.Fatalf("sweep with a dead worker: %d results, report %+v", len(results), report)
	}
	for _, o := range results {
		if o.Worker != w1 {
			t.Fatalf("job %.8s served by %q, want the live worker", o.ID, o.Worker)
		}
	}
	if c.failovers.Load() == 0 {
		t.Fatal("no failovers recorded despite a dead ring member")
	}
	st := coordStats(t, base)
	if st["fleet_jobs_failed_total"] != 0 || st["fleet_jobs_completed_total"] != 16 {
		t.Fatalf("stats after failover sweep: %v", st)
	}
	if st["fleet_breaker_trips_total"] == 0 {
		t.Fatalf("dead worker never tripped its breaker: %v", st)
	}
	if st["fleet_workers_healthy"] != 1 {
		t.Fatalf("dead worker still counted healthy: %v", st)
	}
}

func TestMatrixExpansionDedupes(t *testing.T) {
	// "direct-store" and "" normalize identically, so the two modes
	// collapse to one job per bench.
	m := Matrix{Bench: []string{"MT"}, Mode: []string{"", "direct-store"}}
	jobs, err := m.expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("expansion did not dedupe normalized twins: %d jobs", len(jobs))
	}
}

func TestMatrixExpansionCap(t *testing.T) {
	vals := make([]json.RawMessage, 60)
	for i := range vals {
		vals[i] = json.RawMessage(fmt.Sprintf("%d", i+1))
	}
	m := Matrix{
		Bench: []string{"MT"},
		Config: map[string][]json.RawMessage{
			"sms":              vals,
			"max_warps_per_sm": vals,
			"prefetch_depth":   vals,
		},
	}
	if _, err := m.expand(); err == nil {
		t.Fatal("216000-job matrix expanded without hitting the cap")
	}
}

func TestCoordinatorMetricsEndpoint(t *testing.T) {
	w1 := startWorker(t, serve.Options{})
	base, _ := startCoord(t, Options{Workers: []string{w1}})
	_, _ = postBody(t, base+"/v1/runs", specMT, nil)
	code, b := getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		"fleet_jobs_dispatched_total 1",
		"fleet_jobs_completed_total 1",
		"fleet_workers 1",
		"fleet_worker_healthy{worker=\"" + w1 + "\"} 1",
	} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, b)
		}
	}
}
