package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"dstore/internal/serve"
)

func TestRetryAfterHintHTTPDate(t *testing.T) {
	max := 10 * time.Second
	if d := retryAfterHint("2", max); d != 2*time.Second {
		t.Fatalf("delta-seconds: %v", d)
	}
	if d := retryAfterHint("9999", max); d != max {
		t.Fatalf("delta-seconds above cap: %v", d)
	}
	// RFC 9110 §10.2.3: Retry-After may be an HTTP-date instead of
	// delta-seconds.
	//dstore:allow-wallclock an HTTP-date Retry-After is defined relative to real time
	date := time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat)
	if d := retryAfterHint(date, max); d < 500*time.Millisecond || d > 3*time.Second {
		t.Fatalf("HTTP-date 3s out: %v", d)
	}
	//dstore:allow-wallclock an HTTP-date Retry-After is defined relative to real time
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if d := retryAfterHint(past, max); d != 50*time.Millisecond {
		t.Fatalf("past HTTP-date should floor at 50ms: %v", d)
	}
	if d := retryAfterHint("yesterday-ish", max); d != max {
		t.Fatalf("garbage should fall back to the cap: %v", d)
	}
	if d := retryAfterHint("", max); d != max {
		t.Fatalf("empty should fall back to the cap: %v", d)
	}
}

// TestCoordinatorLoadShedding pins graceful degradation: with
// MaxPending dispatches in flight, further submissions are shed with
// 429 + Retry-After instead of queueing without bound.
func TestCoordinatorLoadShedding(t *testing.T) {
	release := make(chan struct{})
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/runs" {
			<-release
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{}`))
	}))
	defer worker.Close()
	defer close(release)

	base, _ := startCoord(t, Options{
		Workers:         []string{worker.URL},
		MaxPending:      1,
		DispatchRetries: -1, // no retry rounds: the stub fails terminally fast
		JobDeadline:     time.Minute,
	})

	// First submission blocks inside the stub worker, pinning the
	// pending gauge at the cap.
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		req, _ := http.NewRequest(http.MethodPost, base+"/v1/runs", strings.NewReader(specMT))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second) //dstore:allow-wallclock test polling deadline
	for coordStats(t, base)["coord_pending_jobs"] == 0 {
		if time.Now().After(deadline) { //dstore:allow-wallclock test polling deadline
			t.Fatal("first submission never became pending")
		}
		time.Sleep(2 * time.Millisecond) //dstore:allow-wallclock test polling
	}

	resp, body := postBody(t, base+"/v1/runs", `{"bench":"VA","mode":"direct-store"}`, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("at capacity: got %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if st := coordStats(t, base); st["coord_shed_total"] == 0 {
		t.Fatalf("shed not counted: %v", st)
	}
	release <- struct{}{}
	<-firstDone
}

// drainNDJSONStream reads one NDJSON sweep stream to completion (or
// until onResult returns false, which closes the connection).
func drainNDJSONStream(t *testing.T, resp *http.Response, onResult func(Outcome) bool) ([]Outcome, *Report) {
	t.Helper()
	defer resp.Body.Close()
	var results []Outcome
	var report *Report
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev sweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case "result":
			var o Outcome
			if err := json.Unmarshal(ev.Data, &o); err != nil {
				t.Fatal(err)
			}
			results = append(results, o)
			if onResult != nil && !onResult(o) {
				return results, nil
			}
		case "report":
			report = &Report{}
			if err := json.Unmarshal(ev.Data, report); err != nil {
				t.Fatal(err)
			}
		}
	}
	return results, report
}

// TestSweepJournalCrashResume is the in-process crash-recovery proof:
// a coordinator closed mid-sweep leaves an incomplete journal; a new
// coordinator over the same journal dir resumes the sweep, re-runs
// only the unfinished jobs, replays the finished ones to reconnecting
// watchers, and completes with a clean report that survives a further
// restart.
func TestSweepJournalCrashResume(t *testing.T) {
	w := startWorker(t, serve.Options{})
	dir := t.TempDir()
	opt := Options{
		Workers:       []string{w},
		JournalDir:    dir,
		SweepWorkers:  1, // serialize so the crash point is mid-sweep
		PollInterval:  2 * time.Millisecond,
		ProbeInterval: time.Hour,
	}
	matrix := `{"bench":["MT","VA"],"mode":["direct-store"],"config":{"prefetch_depth":[0,1,2],"sms":[2,4]}}`
	const total = 12

	c1, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(c1.Handler())
	req, _ := http.NewRequest(http.MethodPost, hs1.URL+"/v1/sweeps", strings.NewReader(matrix))
	req.Header.Set("Content-Type", "application/json")
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("sweep submit: %d: %s", resp.StatusCode, b)
	}
	sweepID := resp.Header.Get("X-Dstore-Sweep")
	if sweepID == "" {
		t.Fatal("no sweep id on the stream response")
	}
	// "Crash" after two streamed results: Close cancels the dispatch
	// context, aborting the sweep with its journal report-less.
	var preCrash []Outcome
	preCrash, rep := drainNDJSONStream(t, resp, func(o Outcome) bool {
		preCrash = append(preCrash, o)
		if len(preCrash) == 2 {
			go c1.Close()
		}
		return true
	})
	if rep != nil {
		t.Fatalf("sweep finished before the crash point (%d results)", len(preCrash))
	}
	if len(preCrash) < 2 || len(preCrash) >= total {
		t.Fatalf("crash point off: %d results streamed", len(preCrash))
	}
	hs1.Close()
	c1.Close()

	// Restart over the same journal dir: the incomplete sweep must
	// resume by itself.
	c2, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(c2.Handler())
	defer hs2.Close()
	defer c2.Close()

	st := coordStats(t, hs2.URL)
	if st["fleet_sweeps_resumed_total"] != 1 {
		t.Fatalf("sweeps resumed = %d, want 1: %v", st["fleet_sweeps_resumed_total"], st)
	}
	replayed := st["fleet_jobs_replayed_total"]
	if replayed < uint64(len(preCrash)) || replayed >= total {
		t.Fatalf("jobs replayed = %d, want within [%d, %d)", replayed, len(preCrash), total)
	}

	// A full reconnect (from seq 0) replays history and follows the
	// resumed dispatch to the report.
	req, _ = http.NewRequest(http.MethodGet, hs2.URL+"/v1/sweeps/"+sweepID+"/stream", nil)
	resp, err = (&http.Client{}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	all, report := drainNDJSONStream(t, resp, nil)
	if report == nil || report.Completed != total || report.Failed != 0 {
		t.Fatalf("resumed sweep report: %+v", report)
	}
	if len(all) != total {
		t.Fatalf("resumed stream carried %d results, want %d", len(all), total)
	}
	seen := map[string]bool{}
	for i, o := range all {
		if o.Seq != i {
			t.Fatalf("result %d carries seq %d", i, o.Seq)
		}
		if seen[o.ID] {
			t.Fatalf("job %.8s appeared twice after resume", o.ID)
		}
		seen[o.ID] = true
	}
	// The pre-crash prefix must replay identically: same jobs at the
	// same seqs with the same bytes, so a client's resume token from
	// before the crash stays coherent after it.
	for i, o := range preCrash {
		if all[i].ID != o.ID || !bytes.Equal(all[i].Result, o.Result) {
			t.Fatalf("replayed seq %d diverged from the pre-crash stream", i)
		}
	}
	// New dispatches happened only for the jobs with no outcome on
	// disk.
	st = coordStats(t, hs2.URL)
	if st["fleet_jobs_completed_total"] != total-replayed {
		t.Fatalf("resumed coordinator completed %d jobs, want %d: %v",
			st["fleet_jobs_completed_total"], total-replayed, st)
	}

	// SSE reconnect with Last-Event-ID resumes after the given seq.
	req, _ = http.NewRequest(http.MethodGet, hs2.URL+"/v1/sweeps/"+sweepID+"/stream", nil)
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Last-Event-ID", strconv.Itoa(total-3))
	resp, err = (&http.Client{}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	ids, events := parseSSE(t, resp)
	if want := []int{total - 2, total - 1}; fmt.Sprint(ids) != fmt.Sprint(want) {
		t.Fatalf("SSE resume ids = %v, want %v", ids, want)
	}
	if len(events) == 0 || events[len(events)-1] != "report" {
		t.Fatalf("SSE resume events = %v, want trailing report", events)
	}

	// And NDJSON ?from=N resumes at N.
	req, _ = http.NewRequest(http.MethodGet, hs2.URL+"/v1/sweeps/"+sweepID+"/stream?from="+strconv.Itoa(total-1), nil)
	resp, err = (&http.Client{}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	tail, tailRep := drainNDJSONStream(t, resp, nil)
	if len(tail) != 1 || tail[0].Seq != total-1 || tailRep == nil {
		t.Fatalf("?from resume returned %d results (rep %v)", len(tail), tailRep != nil)
	}

	// The journal now holds the report: a third coordinator restores
	// the sweep read-only, report intact, without resuming anything.
	hs2.Close()
	c2.Close()
	c3, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	hs3 := httptest.NewServer(c3.Handler())
	defer hs3.Close()
	defer c3.Close()
	st = coordStats(t, hs3.URL)
	if st["fleet_sweeps_resumed_total"] != 0 {
		t.Fatalf("completed sweep resumed dispatch: %v", st)
	}
	code, b := getBody(t, hs3.URL+"/v1/sweeps/"+sweepID)
	if code != http.StatusOK || !strings.Contains(string(b), `"done":true`) {
		t.Fatalf("restored sweep status: %d: %s", code, b)
	}
	code, b = getBody(t, hs3.URL+"/v1/sweeps/"+sweepID+"/report")
	if code != http.StatusOK || len(b) == 0 {
		t.Fatalf("restored sweep report: %d: %s", code, b)
	}
}

// parseSSE reads a Server-Sent Events stream, returning the ids of
// result events and the ordered event names.
func parseSSE(t *testing.T, resp *http.Response) ([]int, []string) {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type: %q", ct)
	}
	var ids []int
	var events []string
	id, event := -1, ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.Atoi(line[len("id: "):])
			if err != nil {
				t.Fatalf("bad SSE id line %q", line)
			}
			id = n
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case line == "":
			if event != "" {
				events = append(events, event)
				if event == "result" {
					ids = append(ids, id)
				}
			}
			id, event = -1, ""
		}
	}
	return ids, events
}
