package fleet

import (
	"fmt"
	"testing"
)

func TestRingOwnersDistinctAndDeterministic(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := buildRing(urls, 64)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("%064d", i)
		got := r.owners(key, 0)
		if len(got) != 3 {
			t.Fatalf("owners(%q) = %v, want 3 distinct workers", key, got)
		}
		seen := map[string]bool{}
		for _, u := range got {
			if seen[u] {
				t.Fatalf("owners(%q) repeats %q: %v", key, u, got)
			}
			seen[u] = true
		}
		again := buildRing([]string{"http://c:1", "http://b:1", "http://a:1"}, 64).owners(key, 0)
		for j := range got {
			if got[j] != again[j] {
				t.Fatalf("owner order depends on construction order: %v vs %v", got, again)
			}
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := buildRing(urls, 64)
	counts := map[string]int{}
	const keys = 4096
	for i := 0; i < keys; i++ {
		counts[r.owners(fmt.Sprintf("key-%d", i), 1)[0]]++
	}
	for _, u := range urls {
		// With 64 vnodes the spread is far tighter than 4x, but the
		// test only pins "nobody is starved or hot-spotted".
		if counts[u] < keys/16 || counts[u] > keys/2 {
			t.Fatalf("worker %s owns %d/%d keys — distribution collapsed: %v", u, counts[u], keys, counts)
		}
	}
}

func TestRingMinimalRemapOnMemberLoss(t *testing.T) {
	all := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	big := buildRing(all, 64)
	small := buildRing(all[:3], 64) // d removed
	moved := 0
	const keys = 2048
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := big.owners(key, 1)[0]
		after := small.owners(key, 1)[0]
		if before == "http://d:1" {
			continue // d's keys must move somewhere
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed worker changed owner — consistent hashing broken", moved)
	}
}

func TestRingReplicaWalkSkipsOwner(t *testing.T) {
	r := buildRing([]string{"http://a:1", "http://b:1"}, 32)
	got := r.owners("somekey", 2)
	if len(got) != 2 || got[0] == got[1] {
		t.Fatalf("replica walk broken: %v", got)
	}
	if r.owners("somekey", 1)[0] != got[0] {
		t.Fatal("owner changes with replica count")
	}
}

func TestRingEmpty(t *testing.T) {
	if got := buildRing(nil, 8).owners("k", 0); got != nil {
		t.Fatalf("empty ring returned owners: %v", got)
	}
}
