// Package memsys defines the vocabulary shared by every memory-system
// component in the simulator: physical/virtual addresses, cache-line
// arithmetic, access types, and the demand-request structure that cores
// and SMs hand to the hierarchy.
//
// The whole simulated system uses a 128-byte cache line, matching the
// gem5-gpu configuration in Table I of the paper.
package memsys

import (
	"fmt"

	"dstore/internal/sim"
)

// Addr is a byte address. The same type is used for virtual and physical
// addresses; the MMU package is the only place the distinction matters
// and it names its fields accordingly.
type Addr uint64

// Cache-line geometry (Table I: "Cache line size is 128 bytes across the
// whole system").
const (
	LineShift = 7
	LineSize  = 1 << LineShift // 128 bytes
)

// LineAlign rounds a down to the start of its cache line.
func LineAlign(a Addr) Addr { return a &^ (LineSize - 1) }

// LineOffset returns a's offset within its cache line.
func LineOffset(a Addr) uint64 { return uint64(a) & (LineSize - 1) }

// LineNum returns the line index of a (address divided by line size).
func LineNum(a Addr) uint64 { return uint64(a) >> LineShift }

// LinesCovering returns how many cache lines the byte range [a, a+size)
// touches. A zero-size range touches no lines.
func LinesCovering(a Addr, size uint64) uint64 {
	if size == 0 {
		return 0
	}
	first := LineNum(a)
	last := LineNum(a + Addr(size) - 1)
	return last - first + 1
}

// SliceFor returns which of n address-interleaved slices owns the line
// containing a. The GPU L2 in Table I has 4 slices interleaved at line
// granularity.
func SliceFor(a Addr, n int) int {
	if n <= 0 {
		panic("memsys: SliceFor with non-positive slice count")
	}
	return int(LineNum(a) % uint64(n))
}

// AccessType classifies a demand access.
type AccessType uint8

const (
	// Load is a demand read.
	Load AccessType = iota
	// Store is a demand write.
	Store
	// IFetch is an instruction fetch (CPU L1I path).
	IFetch
	// RemoteStore is a store to the direct-store region: the CPU-side
	// hierarchy must not cache it and must forward it to the GPU L2
	// (paper §III-E/F).
	RemoteStore
)

// String returns the conventional short name for the access type.
func (t AccessType) String() string {
	switch t {
	case Load:
		return "LD"
	case Store:
		return "ST"
	case IFetch:
		return "IF"
	case RemoteStore:
		return "RST"
	default:
		return fmt.Sprintf("AccessType(%d)", uint8(t))
	}
}

// IsWrite reports whether the access modifies memory.
func (t AccessType) IsWrite() bool { return t == Store || t == RemoteStore }

// Request is a demand memory access issued by a core or an SM into the
// hierarchy. Requests are line-granular by the time they reach a cache
// controller; the issuing agent performs coalescing/splitting.
type Request struct {
	// ID is unique per issuing agent, for tracing.
	ID uint64
	// Type is the access class.
	Type AccessType
	// Addr is the (physical, post-TLB) address of the access.
	Addr Addr
	// Size in bytes; informational once line-aligned.
	Size uint32
	// Issued is the tick the agent issued the request.
	Issued sim.Tick
	// Ver is the data-version oracle. The simulator does not carry data
	// values, but every store is tagged with a version by its issuer and
	// every load reports the version of the line copy it observed, so
	// tests can check that the protocol always returns the latest write.
	// For writes the issuer sets Ver; for reads the completing
	// controller fills it in before calling Done.
	Ver uint64
	// Done is called exactly once when the access completes. It may be
	// nil for fire-and-forget writes.
	Done func(now sim.Tick)
}

// Complete invokes Done if set. Controllers call this exactly once per
// request.
func (r *Request) Complete(now sim.Tick) {
	if r.Done != nil {
		r.Done(now)
	}
}

// String formats the request for trace output.
func (r *Request) String() string {
	return fmt.Sprintf("%s#%d@%#x", r.Type, r.ID, uint64(r.Addr))
}
