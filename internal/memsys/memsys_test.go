package memsys

import (
	"testing"
	"testing/quick"

	"dstore/internal/sim"
)

func TestLineAlign(t *testing.T) {
	cases := []struct{ in, want Addr }{
		{0, 0},
		{1, 0},
		{127, 0},
		{128, 128},
		{129, 128},
		{0x1000, 0x1000},
		{0x10ff, 0x1080},
	}
	for _, c := range cases {
		if got := LineAlign(c.in); got != c.want {
			t.Errorf("LineAlign(%#x) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestLineOffset(t *testing.T) {
	if LineOffset(0x1000) != 0 {
		t.Error("aligned address has non-zero offset")
	}
	if LineOffset(0x1005) != 5 {
		t.Errorf("LineOffset(0x1005) = %d, want 5", LineOffset(0x1005))
	}
	if LineOffset(127) != 127 {
		t.Errorf("LineOffset(127) = %d, want 127", LineOffset(127))
	}
}

func TestLineNum(t *testing.T) {
	if LineNum(0) != 0 || LineNum(127) != 0 {
		t.Error("first line misnumbered")
	}
	if LineNum(128) != 1 {
		t.Error("second line misnumbered")
	}
	if LineNum(128*1000+5) != 1000 {
		t.Error("large line misnumbered")
	}
}

func TestLinesCovering(t *testing.T) {
	cases := []struct {
		addr Addr
		size uint64
		want uint64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 128, 1},
		{0, 129, 2},
		{127, 1, 1},
		{127, 2, 2},
		{100, 128, 2},
		{0, 128 * 10, 10},
		{64, 128 * 10, 11},
	}
	for _, c := range cases {
		if got := LinesCovering(c.addr, c.size); got != c.want {
			t.Errorf("LinesCovering(%#x, %d) = %d, want %d", c.addr, c.size, got, c.want)
		}
	}
}

// Property: LineAlign is idempotent and never increases the address, and
// offset+aligned reconstructs the address.
func TestPropertyLineArithmetic(t *testing.T) {
	f := func(a uint64) bool {
		addr := Addr(a)
		al := LineAlign(addr)
		if LineAlign(al) != al {
			return false
		}
		if al > addr {
			return false
		}
		return uint64(al)+LineOffset(addr) == uint64(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: consecutive lines map to consecutive slices modulo the slice
// count, and every slice index is in range.
func TestPropertySliceInterleave(t *testing.T) {
	f := func(a uint64, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		addr := LineAlign(Addr(a))
		s0 := SliceFor(addr, n)
		s1 := SliceFor(addr+LineSize, n)
		if s0 < 0 || s0 >= n {
			return false
		}
		return s1 == (s0+1)%n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSliceForPanicsOnZeroSlices(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SliceFor with 0 slices did not panic")
		}
	}()
	SliceFor(0, 0)
}

func TestSliceForSameLineSameSlice(t *testing.T) {
	for off := Addr(0); off < LineSize; off += 13 {
		if SliceFor(0x4000+off, 4) != SliceFor(0x4000, 4) {
			t.Fatalf("offset %d within a line changed its slice", off)
		}
	}
}

func TestAccessTypeStrings(t *testing.T) {
	cases := map[AccessType]string{
		Load:        "LD",
		Store:       "ST",
		IFetch:      "IF",
		RemoteStore: "RST",
	}
	for ty, want := range cases {
		if ty.String() != want {
			t.Errorf("%v.String() = %q, want %q", uint8(ty), ty.String(), want)
		}
	}
	if AccessType(99).String() == "" {
		t.Error("unknown access type produced empty string")
	}
}

func TestAccessTypeIsWrite(t *testing.T) {
	if Load.IsWrite() || IFetch.IsWrite() {
		t.Error("read access classified as write")
	}
	if !Store.IsWrite() || !RemoteStore.IsWrite() {
		t.Error("write access not classified as write")
	}
}

func TestRequestCompleteInvokesDone(t *testing.T) {
	var at sim.Tick
	r := &Request{Type: Load, Addr: 0x80, Done: func(now sim.Tick) { at = now }}
	r.Complete(17)
	if at != 17 {
		t.Errorf("Done saw tick %d, want 17", at)
	}
}

func TestRequestCompleteNilDone(t *testing.T) {
	r := &Request{Type: Store, Addr: 0x80}
	r.Complete(5) // must not panic
}

func TestRequestString(t *testing.T) {
	r := &Request{ID: 3, Type: Store, Addr: 0x1f00}
	if got := r.String(); got != "ST#3@0x1f00" {
		t.Errorf("String() = %q", got)
	}
}
