package translator

import (
	"fmt"
	"sort"
	"strings"

	"dstore/internal/memalloc"
	"dstore/internal/memsys"
)

// Options configures a translation.
type Options struct {
	// BaseAddr is the first fixed mapping address; defaults to the
	// reserved direct-store arena base.
	BaseAddr uint64
	// Defines supplies compile-time constants the sources don't define
	// themselves (e.g. sizes passed via -DN=1024).
	Defines map[string]uint64
	// MinBytes implements the paper's §III-H co-existence policy: only
	// kernel-referenced variables at least this large are re-homed to
	// the GPU ("the programmer can set large variables to use this
	// approach... the remaining small-sized data to use CCSM"). Zero
	// re-homes everything.
	MinBytes uint64
}

// KernelCall records one captured kernel invocation.
type KernelCall struct {
	File string
	Line int
	Name string
	// Args are the top-level argument variable names, in order —
	// exactly what the paper's translator stores "in the temporary
	// memory".
	Args []string
}

// VarAlloc records one rewritten allocation.
type VarAlloc struct {
	File string
	Line int
	Var  string
	// Kind is "malloc" or "cudaMalloc".
	Kind string
	// Size is the evaluated byte size.
	Size uint64
	// Addr is the fixed virtual address assigned.
	Addr uint64
}

// Translation is the result of translating a program.
type Translation struct {
	// Files holds the rewritten sources.
	Files map[string]string
	// Kernels are all captured invocations.
	Kernels []KernelCall
	// Allocs are the rewritten allocations, in address order.
	Allocs []VarAlloc
	// Unmatched lists kernel-argument variables for which no
	// malloc/cudaMalloc declaration was found (typically by-value
	// scalars; reported for transparency).
	Unmatched []string
	// SkippedSmall lists kernel-referenced variables left on the
	// ordinary heap because they fall under Options.MinBytes (§III-H
	// co-existence).
	SkippedSmall []string
}

// Report renders a human-readable translation summary.
func (t *Translation) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel invocations: %d\n", len(t.Kernels))
	for _, k := range t.Kernels {
		fmt.Fprintf(&b, "  %s:%d  %s<<<…>>>(%s)\n", k.File, k.Line, k.Name, strings.Join(k.Args, ", "))
	}
	fmt.Fprintf(&b, "rewritten allocations: %d\n", len(t.Allocs))
	for _, a := range t.Allocs {
		fmt.Fprintf(&b, "  %s:%d  %s (%s, %d bytes) -> mmap fixed @ %#x\n",
			a.File, a.Line, a.Var, a.Kind, a.Size, a.Addr)
	}
	if len(t.SkippedSmall) > 0 {
		fmt.Fprintf(&b, "left on the heap (below the size threshold, CCSM handles them): %s\n",
			strings.Join(t.SkippedSmall, ", "))
	}
	if len(t.Unmatched) > 0 {
		fmt.Fprintf(&b, "kernel arguments without allocations (scalars?): %s\n",
			strings.Join(t.Unmatched, ", "))
	}
	return b.String()
}

// edit is a pending byte-range replacement in one source file.
type edit struct {
	pos, end int
	text     string
}

// Translate runs the paper's two-pass translation over the sources:
// pass one captures every kernel invocation's argument variables, pass
// two finds those variables' malloc/cudaMalloc declarations and
// rewrites them to fixed-address mmap calls in the reserved range. The
// returned Translation holds the rewritten files and a full report.
//
// The input program must already be memory-copy free (§IV-B); a
// cudaMemcpy anywhere is an error.
func Translate(files map[string]string, opts Options) (*Translation, error) {
	if opts.BaseAddr == 0 {
		opts.BaseAddr = uint64(memalloc.DirectStoreBase)
	}
	if opts.BaseAddr%memalloc.PageSize != 0 {
		return nil, fmt.Errorf("translator: base address %#x not page-aligned", opts.BaseAddr)
	}

	names := make([]string, 0, len(files))
	for n := range files { //dstore:allow-maprange keys sorted below
		names = append(names, n)
	}
	sort.Strings(names)

	defines := make(map[string]uint64)
	for k, v := range opts.Defines { //dstore:allow-maprange map-to-map copy, order irrelevant
		defines[k] = v
	}
	toksByFile := make(map[string][]Token)
	for _, n := range names {
		src := files[n]
		if strings.Contains(src, "cudaMemcpy") {
			return nil, fmt.Errorf("translator: %s uses cudaMemcpy; input programs must perform no CUDA memory copy", n)
		}
		toksByFile[n] = Lex(src)
		for k, v := range scanDefines(src) { //dstore:allow-maprange map-to-map copy, order irrelevant
			defines[k] = v
		}
	}

	out := &Translation{Files: make(map[string]string)}

	// Pass 1: capture kernel invocations and their argument variables.
	captured := map[string]bool{}
	var capturedOrder []string
	for _, n := range names {
		for _, k := range scanKernelCalls(n, toksByFile[n]) {
			out.Kernels = append(out.Kernels, k)
			for _, a := range k.Args {
				if !captured[a] {
					captured[a] = true
					capturedOrder = append(capturedOrder, a)
				}
			}
		}
	}

	// Pass 2: find and rewrite the captured variables' allocations.
	// The shared Space enforces the non-overlap invariant exactly the
	// way the runtime allocator does.
	space := memalloc.NewSpace()
	next := memsys.Addr(opts.BaseAddr)
	matched := map[string]bool{}
	for _, n := range names {
		var edits []edit
		for _, al := range scanAllocations(n, toksByFile[n]) {
			if !captured[al.varName] {
				continue
			}
			size, err := EvalSize(al.sizeToks, defines)
			if err != nil {
				return nil, fmt.Errorf("translator: %s:%d: allocation of %q: %w", n, al.line, al.varName, err)
			}
			if size == 0 {
				return nil, fmt.Errorf("translator: %s:%d: allocation of %q has zero size", n, al.line, al.varName)
			}
			if size < opts.MinBytes {
				out.SkippedSmall = append(out.SkippedSmall, al.varName)
				matched[al.varName] = true // known, deliberately left on the heap
				continue
			}
			addr, err := space.MmapFixed(next, size, al.varName)
			if err != nil {
				return nil, fmt.Errorf("translator: %s:%d: %w", n, al.line, err)
			}
			next = pageAlignUp(addr + memsys.Addr(size))
			mmapText := fmt.Sprintf(
				"mmap((void *)0x%xULL, %dUL, PROT_READ|PROT_WRITE, MAP_PRIVATE|MAP_ANONYMOUS|MAP_FIXED, -1, 0)",
				uint64(addr), size)
			var text string
			if al.kind == "cudaMalloc" {
				text = fmt.Sprintf("%s = %s", al.varName, mmapText)
			} else {
				text = al.castText + mmapText
			}
			edits = append(edits, edit{pos: al.pos, end: al.end, text: text})
			out.Allocs = append(out.Allocs, VarAlloc{
				File: n, Line: al.line, Var: al.varName, Kind: al.kind,
				Size: size, Addr: uint64(addr),
			})
			matched[al.varName] = true
		}
		out.Files[n] = applyEdits(files[n], edits)
	}

	for _, v := range capturedOrder {
		if !matched[v] {
			out.Unmatched = append(out.Unmatched, v)
		}
	}
	return out, nil
}

func pageAlignUp(a memsys.Addr) memsys.Addr {
	return memsys.Addr((uint64(a) + memalloc.PageSize - 1) &^ uint64(memalloc.PageSize-1))
}

// applyEdits replaces byte ranges (non-overlapping) right to left.
func applyEdits(src string, edits []edit) string {
	sort.Slice(edits, func(i, j int) bool { return edits[i].pos > edits[j].pos })
	for _, e := range edits {
		src = src[:e.pos] + e.text + src[e.end:]
	}
	return src
}

// scanKernelCalls finds `name<<<…>>>(args)` invocations.
func scanKernelCalls(file string, toks []Token) []KernelCall {
	var out []KernelCall
	for i := 0; i+1 < len(toks); i++ {
		if toks[i].Kind != TokIdent || toks[i+1].Kind != TokLaunchOpen {
			continue
		}
		name := toks[i].Text
		line := toks[i].Line
		// Skip to the matching >>>.
		j := i + 2
		for j < len(toks) && toks[j].Kind != TokLaunchClose {
			j++
		}
		if j >= len(toks) {
			continue
		}
		j++
		if j >= len(toks) || toks[j].Kind != TokPunct || toks[j].Text != "(" {
			continue
		}
		args, end := scanArgs(toks, j)
		out = append(out, KernelCall{File: file, Line: line, Name: name, Args: args})
		i = end
	}
	return out
}

// scanArgs collects top-level identifier arguments of a call whose '('
// is at index open; returns the argument names and the index of the
// matching ')'.
func scanArgs(toks []Token, open int) ([]string, int) {
	depth := 0
	var args []string
	var cur []Token
	flush := func() {
		// Capture the lone identifier of a simple argument, or the
		// identifier following a top-level '&'.
		var idents []string
		for _, t := range cur {
			if t.Kind == TokIdent {
				idents = append(idents, t.Text)
			}
		}
		if len(idents) == 1 {
			args = append(args, idents[0])
		}
		cur = cur[:0]
	}
	i := open
	for ; i < len(toks); i++ {
		t := toks[i]
		if t.Kind == TokPunct {
			switch t.Text {
			case "(", "[":
				depth++
				if depth == 1 {
					continue
				}
			case ")", "]":
				depth--
				if depth == 0 {
					flush()
					return args, i
				}
			case ",":
				if depth == 1 {
					flush()
					continue
				}
			}
		}
		if depth >= 1 {
			cur = append(cur, t)
		}
	}
	return args, i
}

// allocation is one malloc/cudaMalloc site found in a file.
type allocation struct {
	varName  string
	kind     string
	castText string // the original cast between '=' and malloc, verbatim
	pos, end int    // byte span to replace
	line     int
	sizeToks []Token
}

// scanAllocations finds `x = (cast)malloc(expr)` and
// `cudaMalloc(&x, expr)` / `cudaMalloc((void**)&x, expr)` sites.
func scanAllocations(file string, toks []Token) []allocation {
	var out []allocation
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.Kind != TokIdent {
			continue
		}
		switch t.Text {
		case "malloc", "calloc":
			if al, ok := scanMalloc(toks, i); ok {
				al.kind = t.Text
				out = append(out, al)
			}
		case "cudaMalloc":
			if al, ok := scanCudaMalloc(toks, i); ok {
				out = append(out, al)
			}
		}
	}
	_ = file
	return out
}

// scanMalloc handles `x = (cast)malloc(size)` and, since calloc's two
// arguments multiply, `x = (cast)calloc(n, size)` — the size evaluator
// treats the top-level comma as a multiplication.
func scanMalloc(toks []Token, at int) (allocation, bool) {
	// Forward: malloc '(' expr ')'.
	if at+1 >= len(toks) || toks[at+1].Kind != TokPunct || toks[at+1].Text != "(" {
		return allocation{}, false
	}
	depth := 0
	var sizeToks []Token
	end := -1
	for j := at + 1; j < len(toks); j++ {
		t := toks[j]
		if t.Kind == TokPunct && t.Text == "(" {
			depth++
			if depth == 1 {
				continue
			}
		}
		if t.Kind == TokPunct && t.Text == ")" {
			depth--
			if depth == 0 {
				end = j
				break
			}
		}
		sizeToks = append(sizeToks, t)
	}
	if end < 0 {
		return allocation{}, false
	}
	// Backward: skip a possible cast `( type * * )` between '=' and
	// malloc. Only cast-shaped tokens may intervene; anything else
	// (a statement boundary, an operator) means this malloc is not a
	// plain `x = (cast)malloc(size)` and is left alone.
	eq := -1
	for k := at - 1; k >= 0; k-- {
		t := toks[k]
		if t.Kind == TokPunct && (t.Text == "(" || t.Text == ")" || t.Text == "*") {
			continue
		}
		if t.Kind == TokIdent && sizeofCastWord(t.Text) {
			continue
		}
		if t.Kind == TokPunct && t.Text == "=" {
			eq = k
		}
		break
	}
	if eq < 1 || toks[eq-1].Kind != TokIdent {
		return allocation{}, false
	}
	varTok := toks[eq-1]
	return allocation{
		varName:  varTok.Text,
		kind:     "malloc",
		castText: "", // the cast inside [eq+1, at) is replaced wholesale
		pos:      toks[eq+1].Pos,
		end:      toks[end].End,
		line:     toks[at].Line,
		sizeToks: sizeToks,
	}, true
}

// sizeofCastWord reports whether an identifier can appear inside a
// pointer cast: a base type name or common typedef-ish words.
func sizeofCastWord(s string) bool {
	if _, ok := sizeofTable[s]; ok {
		return true
	}
	switch s {
	case "void", "const", "struct", "unsigned", "signed":
		return true
	}
	// User typedefs ending in _t are common in the benchmarks.
	return strings.HasSuffix(s, "_t")
}

func scanCudaMalloc(toks []Token, at int) (allocation, bool) {
	// cudaMalloc '(' [cast] '&' x ',' expr ')'
	if at+1 >= len(toks) || toks[at+1].Kind != TokPunct || toks[at+1].Text != "(" {
		return allocation{}, false
	}
	depth := 0
	varName := ""
	var sizeToks []Token
	seenComma := false
	end := -1
	for j := at + 1; j < len(toks); j++ {
		t := toks[j]
		if t.Kind == TokPunct {
			switch t.Text {
			case "(":
				depth++
				if depth == 1 {
					continue
				}
			case ")":
				depth--
				if depth == 0 {
					end = j
				}
			case ",":
				if depth == 1 {
					seenComma = true
					continue
				}
			case "&":
				if depth == 1 && !seenComma && j+1 < len(toks) && toks[j+1].Kind == TokIdent {
					varName = toks[j+1].Text
				}
			}
		}
		if end >= 0 {
			break
		}
		if seenComma {
			sizeToks = append(sizeToks, t)
		}
	}
	if end < 0 || varName == "" || len(sizeToks) == 0 {
		return allocation{}, false
	}
	return allocation{
		varName:  varName,
		kind:     "cudaMalloc",
		pos:      toks[at].Pos,
		end:      toks[end].End,
		line:     toks[at].Line,
		sizeToks: sizeToks,
	}, true
}
