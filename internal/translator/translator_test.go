package translator

import (
	"strings"
	"testing"
	"testing/quick"

	"dstore/internal/memalloc"
)

const simpleProgram = `
#include <stdio.h>
#define N 1024

__global__ void vecadd(float *a, float *b, float *c, int n);

int main() {
    float *a = (float *)malloc(N * sizeof(float));
    float *b = (float *)malloc(N * sizeof(float));
    float *c;
    cudaMalloc(&c, N * sizeof(float));
    int n = N;
    vecadd<<<4, 256>>>(a, b, c, n);
    return 0;
}
`

func translateOne(t *testing.T, src string, opts Options) *Translation {
	t.Helper()
	tr, err := Translate(map[string]string{"main.cu": src}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCapturesKernelInvocation(t *testing.T) {
	tr := translateOne(t, simpleProgram, Options{})
	if len(tr.Kernels) != 1 {
		t.Fatalf("captured %d kernels, want 1", len(tr.Kernels))
	}
	k := tr.Kernels[0]
	if k.Name != "vecadd" {
		t.Errorf("kernel name %q", k.Name)
	}
	want := []string{"a", "b", "c", "n"}
	if len(k.Args) != len(want) {
		t.Fatalf("args %v, want %v", k.Args, want)
	}
	for i := range want {
		if k.Args[i] != want[i] {
			t.Fatalf("args %v, want %v", k.Args, want)
		}
	}
}

func TestRewritesMallocAndCudaMalloc(t *testing.T) {
	tr := translateOne(t, simpleProgram, Options{})
	if len(tr.Allocs) != 3 {
		t.Fatalf("rewrote %d allocations, want 3: %+v", len(tr.Allocs), tr.Allocs)
	}
	out := tr.Files["main.cu"]
	if strings.Contains(out, "malloc(N") {
		t.Error("a malloc survived translation")
	}
	if strings.Contains(out, "cudaMalloc") {
		t.Error("a cudaMalloc survived translation")
	}
	if got := strings.Count(out, "MAP_FIXED"); got != 3 {
		t.Errorf("output has %d MAP_FIXED mmaps, want 3:\n%s", got, out)
	}
	// cudaMalloc rewrite assigns to the variable.
	if !strings.Contains(out, "c = mmap(") {
		t.Errorf("cudaMalloc rewrite missing assignment:\n%s", out)
	}
}

func TestAssignedAddressesDisjointAndInArena(t *testing.T) {
	tr := translateOne(t, simpleProgram, Options{})
	for i, a := range tr.Allocs {
		if a.Size != 4096 {
			t.Errorf("alloc %d size %d, want 4096", i, a.Size)
		}
		if a.Addr < uint64(memalloc.DirectStoreBase) {
			t.Errorf("alloc %d at %#x below the arena", i, a.Addr)
		}
		if a.Addr%memalloc.PageSize != 0 {
			t.Errorf("alloc %d at %#x not page-aligned", i, a.Addr)
		}
		for j := range tr.Allocs[:i] {
			b := tr.Allocs[j]
			if a.Addr < b.Addr+b.Size && b.Addr < a.Addr+a.Size {
				t.Errorf("allocs %d and %d overlap", i, j)
			}
		}
	}
}

func TestScalarArgsReportedUnmatched(t *testing.T) {
	tr := translateOne(t, simpleProgram, Options{})
	found := false
	for _, u := range tr.Unmatched {
		if u == "n" {
			found = true
		}
	}
	if !found {
		t.Errorf("scalar arg not reported unmatched: %v", tr.Unmatched)
	}
}

func TestNonKernelMallocLeftAlone(t *testing.T) {
	src := `
int main() {
    char *scratch = (char *)malloc(100);
    float *a = (float *)malloc(400);
    k<<<1, 1>>>(a);
}
`
	tr := translateOne(t, src, Options{})
	if len(tr.Allocs) != 1 || tr.Allocs[0].Var != "a" {
		t.Fatalf("allocs %+v, want only a", tr.Allocs)
	}
	if !strings.Contains(tr.Files["main.cu"], "malloc(100)") {
		t.Error("non-kernel malloc was rewritten")
	}
}

func TestCudaMemcpyRejected(t *testing.T) {
	src := `
int main() {
    float *a;
    cudaMalloc(&a, 400);
    cudaMemcpy(a, h, 400, cudaMemcpyHostToDevice);
    k<<<1,1>>>(a);
}
`
	if _, err := Translate(map[string]string{"m.cu": src}, Options{}); err == nil {
		t.Error("program with cudaMemcpy accepted")
	}
}

func TestDefinesFromConstAndOption(t *testing.T) {
	src := `
const int ROWS = 64;
int main() {
    float *a = (float *)malloc(ROWS * COLS * sizeof(float));
    k<<<1,1>>>(a);
}
`
	// COLS only via option.
	tr, err := Translate(map[string]string{"m.cu": src}, Options{Defines: map[string]uint64{"COLS": 32}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Allocs[0].Size != 64*32*4 {
		t.Errorf("size %d, want %d", tr.Allocs[0].Size, 64*32*4)
	}
}

func TestUnknownSizeConstantErrors(t *testing.T) {
	src := `
int main() {
    float *a = (float *)malloc(UNKNOWN * sizeof(float));
    k<<<1,1>>>(a);
}
`
	if _, err := Translate(map[string]string{"m.cu": src}, Options{}); err == nil {
		t.Error("unevaluable size accepted")
	}
}

func TestMultiFileTranslation(t *testing.T) {
	host := `
#define N 256
int main() {
    double *x = (double *)malloc(N * sizeof(double));
    compute<<<8, 32>>>(x);
}
`
	other := `
void helper() {
    int *y = (int *)malloc(N * sizeof(int));
    aux<<<1, 32, 0, s>>>(y);
}
`
	tr, err := Translate(map[string]string{"host.cu": host, "other.cu": other}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Allocs) != 2 {
		t.Fatalf("allocs %+v", tr.Allocs)
	}
	if len(tr.Kernels) != 2 {
		t.Fatalf("kernels %+v", tr.Kernels)
	}
	// Defines from one file apply to the program (single translation
	// unit set), so other.cu's N resolves.
	for _, a := range tr.Allocs {
		if a.Size == 0 {
			t.Error("zero size slipped through")
		}
	}
}

func TestFourArgLaunchSyntax(t *testing.T) {
	src := `
int main() {
    float *a = (float *)malloc(512);
    k<<<dimGrid, dimBlock, 1024, stream>>>(a);
}
`
	tr := translateOne(t, src, Options{})
	if len(tr.Kernels) != 1 || tr.Kernels[0].Args[0] != "a" {
		t.Fatalf("kernels %+v", tr.Kernels)
	}
}

func TestCudaMallocWithCast(t *testing.T) {
	src := `
int main() {
    float *d;
    cudaMalloc((void **)&d, 2048);
    k<<<1,1>>>(d);
}
`
	tr := translateOne(t, src, Options{})
	if len(tr.Allocs) != 1 || tr.Allocs[0].Var != "d" || tr.Allocs[0].Size != 2048 {
		t.Fatalf("allocs %+v", tr.Allocs)
	}
	if !strings.Contains(tr.Files["main.cu"], "d = mmap(") {
		t.Error("cast cudaMalloc not rewritten")
	}
}

func TestCommentsAndStringsIgnored(t *testing.T) {
	src := `
// fake<<<1,1>>>(z); in a comment
/* float *q = (float*)malloc(4); k<<<1,1>>>(q); */
const char *msg = "k<<<1,1>>>(fake)";
int main() {
    float *a = (float *)malloc(128);
    real<<<1, 1>>>(a);
}
`
	tr := translateOne(t, src, Options{})
	if len(tr.Kernels) != 1 || tr.Kernels[0].Name != "real" {
		t.Fatalf("kernels %+v", tr.Kernels)
	}
	if len(tr.Allocs) != 1 {
		t.Fatalf("allocs %+v", tr.Allocs)
	}
}

func TestBaseAddrOption(t *testing.T) {
	tr := translateOne(t, simpleProgram, Options{BaseAddr: uint64(memalloc.DirectStoreBase) + 1<<20})
	if tr.Allocs[0].Addr != uint64(memalloc.DirectStoreBase)+1<<20 {
		t.Errorf("first alloc at %#x", tr.Allocs[0].Addr)
	}
	if _, err := Translate(map[string]string{"m.cu": simpleProgram}, Options{BaseAddr: 12345}); err == nil {
		t.Error("unaligned base accepted")
	}
}

func TestReportMentionsEverything(t *testing.T) {
	tr := translateOne(t, simpleProgram, Options{})
	rep := tr.Report()
	for _, want := range []string{"vecadd", "mmap fixed", "malloc", "cudaMalloc"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestRewrittenProgramStillLexes(t *testing.T) {
	tr := translateOne(t, simpleProgram, Options{})
	toks := Lex(tr.Files["main.cu"])
	if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
		t.Error("rewritten source does not lex")
	}
	// Translation is idempotent in effect: re-translating the output
	// finds no mallocs left to rewrite.
	tr2, err := Translate(map[string]string{"main.cu": tr.Files["main.cu"]}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Allocs) != 0 {
		t.Errorf("second translation rewrote %d allocations", len(tr2.Allocs))
	}
}

func TestEvalSizeExpressions(t *testing.T) {
	cases := []struct {
		expr string
		want uint64
	}{
		{"100", 100},
		{"0x40", 64},
		{"4 * 25", 100},
		{"sizeof(float)", 4},
		{"sizeof(double)", 8},
		{"sizeof(unsigned long)", 8},
		{"sizeof(float *)", 8},
		{"N * sizeof(int)", 40},
		{"(N + 2) * (N + 2)", 144},
		{"N * N / 2", 50},
		{"N - 2", 8},
	}
	defines := map[string]uint64{"N": 10}
	for _, c := range cases {
		toks := Lex(c.expr)
		toks = toks[:len(toks)-1] // trim EOF
		got, err := EvalSize(toks, defines)
		if err != nil {
			t.Errorf("EvalSize(%q): %v", c.expr, err)
			continue
		}
		if got != c.want {
			t.Errorf("EvalSize(%q) = %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestEvalSizeErrors(t *testing.T) {
	for _, expr := range []string{"", "FOO", "1 / 0", "sizeof(widget)", "2 - 5"} {
		toks := Lex(expr)
		toks = toks[:len(toks)-1]
		if _, err := EvalSize(toks, nil); err == nil {
			t.Errorf("EvalSize(%q) did not error", expr)
		}
	}
}

func TestScanDefines(t *testing.T) {
	src := `
#define N 100
#define HEXY 0x20
#define NOTNUM foo
const int ROWS = 7;
const unsigned long BIG = 12345;
const char *s = "x";
`
	d := scanDefines(src)
	if d["N"] != 100 || d["HEXY"] != 32 || d["ROWS"] != 7 || d["BIG"] != 12345 {
		t.Errorf("defines %v", d)
	}
	if _, ok := d["NOTNUM"]; ok {
		t.Error("non-numeric define captured")
	}
}

func TestLexerTokenSpans(t *testing.T) {
	src := "ab <<< 12 >>>"
	toks := Lex(src)
	if toks[0].Text != "ab" || toks[0].Pos != 0 || toks[0].End != 2 {
		t.Errorf("ident span wrong: %+v", toks[0])
	}
	if toks[1].Kind != TokLaunchOpen || toks[3].Kind != TokLaunchClose {
		t.Error("launch tokens not recognised")
	}
	for _, tok := range toks {
		if tok.Kind != TokEOF && src[tok.Pos:tok.End] != tok.Text {
			t.Errorf("token %+v span mismatch", tok)
		}
	}
}

// Property: for any set of sizes, assigned addresses are page-aligned,
// ascending and pairwise disjoint.
func TestPropertyAddressAssignment(t *testing.T) {
	f := func(sizesRaw []uint16) bool {
		if len(sizesRaw) == 0 || len(sizesRaw) > 20 {
			return true
		}
		var b strings.Builder
		b.WriteString("int main() {\n")
		args := []string{}
		for i, s := range sizesRaw {
			size := int(s)%100000 + 1
			name := "v" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
			b.WriteString("float *" + name + " = (float *)malloc(" + itoa(size) + ");\n")
			args = append(args, name)
		}
		b.WriteString("k<<<1,1>>>(" + strings.Join(args, ", ") + ");\n}\n")
		tr, err := Translate(map[string]string{"m.cu": b.String()}, Options{})
		if err != nil {
			return false
		}
		if len(tr.Allocs) != len(sizesRaw) {
			return false
		}
		prevEnd := uint64(0)
		for _, a := range tr.Allocs {
			if a.Addr%memalloc.PageSize != 0 {
				return false
			}
			if a.Addr < prevEnd {
				return false
			}
			prevEnd = a.Addr + a.Size
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestCallocRewritten(t *testing.T) {
	src := `
#define N 100
int main() {
    int *hist = (int *)calloc(N, sizeof(int));
    count<<<1, 32>>>(hist);
}
`
	tr := translateOne(t, src, Options{})
	if len(tr.Allocs) != 1 {
		t.Fatalf("allocs %+v", tr.Allocs)
	}
	if tr.Allocs[0].Kind != "calloc" || tr.Allocs[0].Size != 400 {
		t.Errorf("calloc alloc %+v, want kind=calloc size=400", tr.Allocs[0])
	}
	if strings.Contains(tr.Files["main.cu"], "calloc") {
		t.Error("calloc survived translation")
	}
}

func TestNonKernelCallocLeftAlone(t *testing.T) {
	src := `
int main() {
    int *tmp = (int *)calloc(8, 4);
    float *a = (float *)malloc(512);
    k<<<1,1>>>(a);
}
`
	tr := translateOne(t, src, Options{})
	if len(tr.Allocs) != 1 || tr.Allocs[0].Var != "a" {
		t.Fatalf("allocs %+v", tr.Allocs)
	}
	if !strings.Contains(tr.Files["main.cu"], "calloc(8, 4)") {
		t.Error("non-kernel calloc rewritten")
	}
}

func TestMinBytesCoexistencePolicy(t *testing.T) {
	// §III-H: large variables go direct store, small stay on the heap.
	src := `
int main() {
    float *big = (float *)malloc(1048576);
    float *tiny = (float *)malloc(64);
    k<<<32, 256>>>(big, tiny);
}
`
	tr, err := Translate(map[string]string{"m.cu": src}, Options{MinBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Allocs) != 1 || tr.Allocs[0].Var != "big" {
		t.Fatalf("allocs %+v, want only big", tr.Allocs)
	}
	if len(tr.SkippedSmall) != 1 || tr.SkippedSmall[0] != "tiny" {
		t.Fatalf("skipped %v, want [tiny]", tr.SkippedSmall)
	}
	if !strings.Contains(tr.Files["m.cu"], "malloc(64)") {
		t.Error("small variable was rewritten despite the threshold")
	}
	if !strings.Contains(tr.Report(), "below the size threshold") {
		t.Error("report does not mention the skipped variable")
	}
}
