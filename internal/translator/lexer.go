// Package translator implements the paper's automatic code translation
// (§III-C) over a mini-CUDA dialect: it scans source files for kernel
// invocations `name<<<Dg, Db, Ns, S>>>(x1, …, xn)`, captures the
// variables the GPU will access, finds their malloc/cudaMalloc
// declarations, and rewrites those to fixed-address mmap calls in the
// reserved direct-store range — incrementing the starting virtual
// address per variable so no two mappings overlap. "By using this
// automatic code translator, there is no effort for the programmer to
// modify the source code."
package translator

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexer tokens.
type TokKind uint8

// Token kinds.
const (
	TokIdent TokKind = iota
	TokNumber
	TokString
	TokPunct       // single punctuation character
	TokLaunchOpen  // <<<
	TokLaunchClose // >>>
	TokEOF
)

// Token is one lexeme with its byte span in the source.
type Token struct {
	Kind TokKind
	Text string
	Pos  int // byte offset of the first character
	End  int // byte offset one past the last character
	Line int // 1-based line number of the first character
	Col  int // 1-based column (byte-based) of the first character
}

// Lex tokenises the source, skipping whitespace and comments. It never
// fails: unknown bytes become single-character punctuation tokens, and
// an unterminated comment or string simply ends at EOF (the scanner
// only needs enough structure to find launches and allocations).
func Lex(src string) []Token {
	var toks []Token
	line := 1
	lineStart := 0 // byte offset of the current line's first character
	i := 0
	n := len(src)
	emit := func(kind TokKind, start, end int, startLine, startCol int) {
		toks = append(toks, Token{
			Kind: kind, Text: src[start:end],
			Pos: start, End: end, Line: startLine, Col: startCol,
		})
	}
	col := func(pos int) int { return pos - lineStart + 1 }
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
			lineStart = i
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
					lineStart = i + 1
				}
				i++
			}
			if i+1 < n {
				i += 2
			} else {
				i = n
			}
		case c == '"' || c == '\'':
			quote := c
			start, startLine, startCol := i, line, col(i)
			i++
			for i < n && src[i] != quote {
				if src[i] == '\\' && i+1 < n {
					i++
				}
				if src[i] == '\n' {
					line++
					lineStart = i + 1
				}
				i++
			}
			if i < n {
				i++
			}
			emit(TokString, start, i, startLine, startCol)
		case c == '<' && i+2 < n && src[i+1] == '<' && src[i+2] == '<':
			emit(TokLaunchOpen, i, i+3, line, col(i))
			i += 3
		case c == '>' && i+2 < n && src[i+1] == '>' && src[i+2] == '>':
			emit(TokLaunchClose, i, i+3, line, col(i))
			i += 3
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(src[i])) {
				i++
			}
			emit(TokIdent, start, i, line, col(start))
		case unicode.IsDigit(rune(c)):
			start := i
			for i < n && (isIdentPart(rune(src[i])) || src[i] == '.') {
				i++
			}
			emit(TokNumber, start, i, line, col(start))
		default:
			emit(TokPunct, i, i+1, line, col(i))
			i++
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n, End: n, Line: line, Col: col(n)})
	return toks
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// tokenString formats a token for error messages, with its source
// position so malformed input is diagnosable.
func tokenString(t Token) string {
	switch t.Kind {
	case TokEOF:
		return fmt.Sprintf("end of file (line %d, col %d)", t.Line, t.Col)
	default:
		return fmt.Sprintf("%q (line %d, col %d)", t.Text, t.Line, t.Col)
	}
}

// scanDefines extracts `#define NAME <number>` and
// `const int NAME = <number>;`-style compile-time constants the size
// evaluator can use.
func scanDefines(src string) map[string]uint64 {
	out := make(map[string]uint64)
	for _, ln := range strings.Split(src, "\n") {
		s := strings.TrimSpace(ln)
		if strings.HasPrefix(s, "#define") {
			fields := strings.Fields(s)
			if len(fields) >= 3 {
				if v, ok := parseUintLiteral(fields[2]); ok {
					out[fields[1]] = v
				}
			}
			continue
		}
		if strings.HasPrefix(s, "const ") {
			// const <type...> NAME = <number>;
			eq := strings.Index(s, "=")
			if eq < 0 {
				continue
			}
			lhs := strings.Fields(strings.TrimSpace(s[len("const "):eq]))
			if len(lhs) == 0 {
				continue
			}
			name := lhs[len(lhs)-1]
			rhs := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(s[eq+1:]), ";"))
			if v, ok := parseUintLiteral(rhs); ok {
				out[name] = v
			}
		}
	}
	return out
}

// parseUintLiteral parses decimal or hex C integer literals (with
// optional u/l suffixes).
func parseUintLiteral(s string) (uint64, bool) {
	s = strings.TrimRight(s, "uUlL")
	if s == "" {
		return 0, false
	}
	var v uint64
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		if len(s) == 2 {
			return 0, false // "0x" with no digits
		}
		for _, r := range s[2:] {
			var d uint64
			switch {
			case r >= '0' && r <= '9':
				d = uint64(r - '0')
			case r >= 'a' && r <= 'f':
				d = uint64(r-'a') + 10
			case r >= 'A' && r <= 'F':
				d = uint64(r-'A') + 10
			default:
				return 0, false
			}
			v = v*16 + d
		}
		return v, true
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, false
		}
		v = v*10 + uint64(r-'0')
	}
	return v, true
}
