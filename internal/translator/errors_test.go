package translator

import (
	"math/rand"
	"strings"
	"testing"
)

// TestLexPositions checks tokens carry accurate 1-based line/col
// coordinates, including across comments and multi-line strings.
func TestLexPositions(t *testing.T) {
	src := "int a;\n  foo<<<1, 2>>>(b);\n/* skip\nskip */ x\n"
	toks := Lex(src)
	want := []struct {
		text      string
		line, col int
	}{
		{"int", 1, 1}, {"a", 1, 5}, {";", 1, 6},
		{"foo", 2, 3}, {"<<<", 2, 6}, {"1", 2, 9}, {",", 2, 10},
		{"2", 2, 12}, {">>>", 2, 13}, {"(", 2, 16}, {"b", 2, 17},
		{")", 2, 18}, {";", 2, 19},
		{"x", 4, 9},
	}
	if len(toks) != len(want)+1 { // +1 for EOF
		t.Fatalf("got %d tokens, want %d", len(toks), len(want)+1)
	}
	for i, w := range want {
		got := toks[i]
		if got.Text != w.text || got.Line != w.line || got.Col != w.col {
			t.Errorf("token %d: got %q at line %d col %d; want %q at line %d col %d",
				i, got.Text, got.Line, got.Col, w.text, w.line, w.col)
		}
	}
	eof := toks[len(toks)-1]
	if eof.Kind != TokEOF || eof.Line != 5 {
		t.Errorf("EOF token: %+v, want line 5", eof)
	}
}

// malformedSources is a battery of broken inputs: the lexer must
// produce a token stream ending in EOF and the translator must return
// a normal error (or succeed vacuously), never panic.
var malformedSources = []string{
	"",
	"\"unterminated string",
	"'u",
	"/* unterminated comment",
	"// comment to EOF",
	"<<<",
	">>>",
	"<<<<<<>>>>>>",
	"k<<<>>>()",
	"k<<<1>>>(",
	"k<<<1,2>>>(a,)",
	"float *a = malloc(",
	"float *a = malloc();",
	"cudaMalloc(&a",
	"cudaMalloc((void**)&a, n * sizeof(float)",
	"#define N\nint a = N;",
	"\x00\x01\xff\xfe",
	"\"str\\",
	strings.Repeat("(", 200),
	strings.Repeat("k<<<1,1>>>(a); ", 50),
}

func TestLexMalformedNeverPanics(t *testing.T) {
	for _, src := range malformedSources {
		toks := Lex(src)
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Errorf("Lex(%q): stream does not end in EOF", src)
		}
		for i, tok := range toks {
			if tok.Line < 1 || tok.Col < 1 {
				t.Errorf("Lex(%q): token %d has unset position %d:%d", src, i, tok.Line, tok.Col)
			}
		}
	}
}

func TestTranslateMalformedNeverPanics(t *testing.T) {
	for _, src := range malformedSources {
		// A panic fails the test run; both error and success are fine.
		_, _ = Translate(map[string]string{"m.cu": src}, Options{})
	}
}

// TestLexRandomNeverPanics hammers the lexer with seeded random byte
// soup and random mutations of a valid program.
func TestLexRandomNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	valid := "int main(){float*a=malloc(N*sizeof(float));k<<<1,2>>>(a);}"
	for i := 0; i < 500; i++ {
		var src string
		if i%2 == 0 {
			b := make([]byte, rng.Intn(64))
			for j := range b {
				b[j] = byte(rng.Intn(256))
			}
			src = string(b)
		} else {
			b := []byte(valid)
			for j := 0; j < 4; j++ {
				b[rng.Intn(len(b))] = byte(rng.Intn(256))
			}
			src = string(b)
		}
		toks := Lex(src)
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatalf("Lex(%q): stream does not end in EOF", src)
		}
		_, _ = Translate(map[string]string{"m.cu": src}, Options{})
	}
}

// TestEvalSizeErrorPositions drives every error path of the size
// evaluator: malformed expressions return an error carrying the
// offending token's line/col — and never panic.
func TestEvalSizeErrorPositions(t *testing.T) {
	cases := []struct {
		expr string
		want string // substring of the error
	}{
		{"1 - 2", "negative intermediate"},
		{"4 / 0", "division by zero"},
		{"sizeof(float", "unterminated sizeof"},
		{"sizeof float", "expected '(' after sizeof"},
		{"sizeof(banana)", "unknown type"},
		{"N * 4", "not a known compile-time constant"},
		{"(1 + 2", "expected ')'"},
		{"+", "unexpected token"},
		{"1 2", "trailing tokens"},
		{"0x", "bad numeric literal"},
	}
	for _, c := range cases {
		toks := Lex(c.expr)
		_, err := EvalSize(toks, nil)
		if err == nil {
			t.Errorf("EvalSize(%q): want error containing %q, got nil", c.expr, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("EvalSize(%q) = %q, want substring %q", c.expr, err, c.want)
		}
		if !strings.Contains(err.Error(), "line ") || !strings.Contains(err.Error(), "col ") {
			t.Errorf("EvalSize(%q) error carries no line/col: %q", c.expr, err)
		}
	}
}
