package translator

import "fmt"

// sizeofTable maps C type names to byte sizes for the size evaluator.
var sizeofTable = map[string]uint64{
	"char": 1, "signed": 4, "unsigned": 4, "short": 2,
	"int": 4, "long": 8, "float": 4, "double": 8,
	"size_t": 8, "int8_t": 1, "uint8_t": 1, "int16_t": 2, "uint16_t": 2,
	"int32_t": 4, "uint32_t": 4, "int64_t": 8, "uint64_t": 8,
}

// evaluator computes compile-time constant size expressions: numeric
// literals, sizeof(type), named constants, + - * / and parentheses —
// enough for the allocation-size expressions the benchmarks use
// (`n * sizeof(float)`, `(rows+2)*(cols+2)*sizeof(double)`, …).
type evaluator struct {
	toks    []Token
	i       int
	defines map[string]uint64
}

// EvalSize evaluates the constant expression formed by toks using the
// given named constants. A top-level comma multiplies the operands —
// calloc(n, size) allocates n*size bytes.
func EvalSize(toks []Token, defines map[string]uint64) (uint64, error) {
	e := &evaluator{toks: toks, defines: defines}
	v, err := e.expr()
	if err != nil {
		return 0, err
	}
	for e.peek().Kind == TokPunct && e.peek().Text == "," {
		e.next()
		rhs, err := e.expr()
		if err != nil {
			return 0, err
		}
		v *= rhs
	}
	if e.peek().Kind != TokEOF && e.i < len(e.toks) {
		return 0, fmt.Errorf("translator: trailing tokens after size expression (at %s)", tokenString(e.peek()))
	}
	return v, nil
}

func (e *evaluator) peek() Token {
	if e.i >= len(e.toks) {
		return Token{Kind: TokEOF}
	}
	return e.toks[e.i]
}

func (e *evaluator) next() Token {
	t := e.peek()
	e.i++
	return t
}

func (e *evaluator) expr() (uint64, error) {
	v, err := e.term()
	if err != nil {
		return 0, err
	}
	for {
		t := e.peek()
		if t.Kind != TokPunct || (t.Text != "+" && t.Text != "-") {
			return v, nil
		}
		e.next()
		rhs, err := e.term()
		if err != nil {
			return 0, err
		}
		if t.Text == "+" {
			v += rhs
		} else {
			if rhs > v {
				return 0, fmt.Errorf("translator: negative intermediate in size expression at %s", tokenString(t))
			}
			v -= rhs
		}
	}
}

func (e *evaluator) term() (uint64, error) {
	v, err := e.factor()
	if err != nil {
		return 0, err
	}
	for {
		t := e.peek()
		if t.Kind != TokPunct || (t.Text != "*" && t.Text != "/") {
			return v, nil
		}
		e.next()
		rhs, err := e.factor()
		if err != nil {
			return 0, err
		}
		if t.Text == "*" {
			v *= rhs
		} else {
			if rhs == 0 {
				return 0, fmt.Errorf("translator: division by zero in size expression at %s", tokenString(t))
			}
			v /= rhs
		}
	}
}

func (e *evaluator) factor() (uint64, error) {
	t := e.next()
	switch {
	case t.Kind == TokNumber:
		v, ok := parseUintLiteral(t.Text)
		if !ok {
			return 0, fmt.Errorf("translator: bad numeric literal %s", tokenString(t))
		}
		return v, nil
	case t.Kind == TokIdent && t.Text == "sizeof":
		if p := e.next(); p.Kind != TokPunct || p.Text != "(" {
			return 0, fmt.Errorf("translator: expected '(' after sizeof, got %s", tokenString(p))
		}
		// Consume type tokens up to the matching ')': a pointer type
		// (any '*' present) is 8 bytes; otherwise the innermost known
		// base type wins ("unsigned long" resolves via its last word).
		var size uint64
		pointer := false
		names := []string{}
		for {
			p := e.next()
			if p.Kind == TokEOF {
				return 0, fmt.Errorf("translator: unterminated sizeof at %s", tokenString(t))
			}
			if p.Kind == TokPunct && p.Text == ")" {
				break
			}
			if p.Kind == TokPunct && p.Text == "*" {
				pointer = true
				continue
			}
			if p.Kind == TokIdent {
				names = append(names, p.Text)
			}
		}
		if pointer {
			return 8, nil
		}
		for i := len(names) - 1; i >= 0; i-- {
			if s, ok := sizeofTable[names[i]]; ok {
				size = s
				break
			}
		}
		if size == 0 {
			return 0, fmt.Errorf("translator: unknown type in sizeof(%v) at %s", names, tokenString(t))
		}
		return size, nil
	case t.Kind == TokIdent:
		if v, ok := e.defines[t.Text]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("translator: size depends on %s, which is not a known compile-time constant (add it to Options.Defines)", tokenString(t))
	case t.Kind == TokPunct && t.Text == "(":
		// Either a parenthesised sub-expression or a cast like
		// (size_t); treat a lone type name followed by ')' as a cast
		// and evaluate the rest.
		v, err := e.expr()
		if err != nil {
			return 0, err
		}
		if p := e.next(); p.Kind != TokPunct || p.Text != ")" {
			return 0, fmt.Errorf("translator: expected ')', got %s", tokenString(p))
		}
		return v, nil
	default:
		return 0, fmt.Errorf("translator: unexpected token %s in size expression", tokenString(t))
	}
}
