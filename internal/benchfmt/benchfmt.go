// Package benchfmt parses the `go test -bench` text format: the
// benchmark result lines BENCH_sim_engine.txt is made of. It covers
// exactly the subset this repo's tooling needs — one value per
// (benchmark, unit) — so the regression differ (cmd/dstore-benchdiff)
// and the machine-readable baseline writer (dstore-bench
// -baseline-json) agree on what a baseline file says.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Entry is one benchmark result line: the benchmark name (with any
// -cpu suffix kept, so GOMAXPROCS variants stay distinct), the
// iteration count, and the measured values keyed by unit ("ns/op",
// "B/op", "allocs/op", or any custom ReportMetric unit).
type Entry struct {
	Name   string
	Iters  uint64
	Values map[string]float64
}

// Value returns the measurement for unit and whether the line carried
// one.
func (e Entry) Value(unit string) (float64, bool) {
	v, ok := e.Values[unit]
	return v, ok
}

// Parse reads benchmark result lines from r, skipping everything else
// (comments, the goos/goarch header, PASS/ok trailers). A line is a
// result when it starts with "Benchmark", has an iteration count, and
// parses as value/unit pairs; malformed Benchmark lines are an error
// rather than silently dropped — a truncated baseline should fail the
// diff, not pass it.
func Parse(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// A bare "BenchmarkFoo" with no fields is the naming line `go
		// test -list` prints; results have at least name + iters + one
		// value/unit pair.
		if len(f) == 1 {
			continue
		}
		if len(f) < 4 || len(f)%2 != 0 {
			return nil, fmt.Errorf("benchfmt: line %d: malformed result %q", lineNo, line)
		}
		iters, err := strconv.ParseUint(f[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: line %d: bad iteration count %q", lineNo, f[1])
		}
		e := Entry{Name: f[0], Iters: iters, Values: make(map[string]float64)}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: line %d: bad value %q", lineNo, f[i])
			}
			e.Values[f[i+1]] = v
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ParseUnique is Parse with a uniqueness requirement on benchmark
// names: a baseline (or generated report) carrying the same name
// twice is ambiguous — which measurement is "the" value? — so it is
// rejected rather than letting the last line silently win.
func ParseUnique(r io.Reader) ([]Entry, error) {
	entries, err := Parse(r)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]int, len(entries))
	for i, e := range entries {
		if prev, dup := seen[e.Name]; dup {
			return nil, fmt.Errorf("benchfmt: duplicate benchmark name %q (results %d and %d)",
				e.Name, prev+1, i+1)
		}
		seen[e.Name] = i
	}
	return entries, nil
}
