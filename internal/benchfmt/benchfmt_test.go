package benchfmt

import (
	"strings"
	"testing"
)

const sample = `# Event-kernel microbenchmark baseline (internal/sim).
#   BenchmarkRunDrain            1186641   ns/op 550888 B/op 8207 allocs/op
goos: linux
goarch: amd64
pkg: dstore/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScheduleStepZeroDelay 	186085377	         6.467 ns/op	       0 B/op	       0 allocs/op
BenchmarkRunDrain              	    1597	    771493 ns/op	  355920 B/op	      21 allocs/op
PASS
ok  	dstore/internal/sim	7.568s
`

func TestParse(t *testing.T) {
	es, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	// The commented reference line must not parse as a result.
	if len(es) != 2 {
		t.Fatalf("parsed %d entries, want 2: %+v", len(es), es)
	}
	zd := es[0]
	if zd.Name != "BenchmarkScheduleStepZeroDelay" || zd.Iters != 186085377 {
		t.Fatalf("bad first entry: %+v", zd)
	}
	if v, ok := zd.Value("ns/op"); !ok || v != 6.467 {
		t.Fatalf("ns/op = %v, %v", v, ok)
	}
	rd := es[1]
	if v, ok := rd.Value("allocs/op"); !ok || v != 21 {
		t.Fatalf("allocs/op = %v, %v", v, ok)
	}
	if v, ok := rd.Value("B/op"); !ok || v != 355920 {
		t.Fatalf("B/op = %v, %v", v, ok)
	}
}

func TestParseMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX\t12\t34 ns/op\textra",
		"BenchmarkX\tnotanumber\t34 ns/op",
		"BenchmarkX\t12\tNaNope ns/op",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
	// Non-Benchmark noise is skipped, not an error.
	if es, err := Parse(strings.NewReader("hello\nworld 1 2\n")); err != nil || len(es) != 0 {
		t.Errorf("noise parse: %v, %v", es, err)
	}
}

func TestParseTruncatedLines(t *testing.T) {
	// A baseline cut off mid-write (disk full, killed process) leaves
	// a final line missing fields; that must be an error, not a
	// silently shorter baseline.
	for _, bad := range []string{
		"BenchmarkRunDrain 1597 771493",              // value with no unit
		"BenchmarkRunDrain 1597",                     // iters only
		"BenchmarkRunDrain 1597 771493 ns/op 355920", // trailing pair cut in half
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) succeeded, want truncation error", bad)
		}
	}
	// A bare name line (`go test -list` output) is not a truncation.
	if es, err := Parse(strings.NewReader("BenchmarkRunDrain\n")); err != nil || len(es) != 0 {
		t.Errorf("bare name: %v, %v", es, err)
	}
}

func TestParseNonNumericFields(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX 1e99x 34 ns/op",         // iteration count not an integer
		"BenchmarkX -7 34 ns/op",            // negative iteration count
		"BenchmarkX 12 12.5.3 ns/op",        // malformed float
		"BenchmarkX 12 6.4 ns/op oops B/op", // second value non-numeric
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
	// Scientific notation and Inf are valid float syntax and must
	// survive: the differ treats Inf deltas as unbounded regressions.
	es, err := Parse(strings.NewReader("BenchmarkX 12 6.4e3 ns/op\n"))
	if err != nil || len(es) != 1 {
		t.Fatalf("scientific notation: %v, %v", es, err)
	}
	if v, _ := es[0].Value("ns/op"); v != 6400 {
		t.Fatalf("ns/op = %v, want 6400", v)
	}
}

func TestParseUniqueRejectsDuplicates(t *testing.T) {
	dup := "BenchmarkA 1 5 ns/op\nBenchmarkB 1 6 ns/op\nBenchmarkA 1 7 ns/op\n"
	if _, err := ParseUnique(strings.NewReader(dup)); err == nil {
		t.Fatal("ParseUnique accepted a duplicated benchmark name")
	} else if !strings.Contains(err.Error(), "BenchmarkA") {
		t.Fatalf("duplicate error does not name the benchmark: %v", err)
	}
	// Parse itself stays permissive (merging runs is the caller's
	// decision); ParseUnique on clean input matches Parse.
	if es, err := Parse(strings.NewReader(dup)); err != nil || len(es) != 3 {
		t.Fatalf("Parse of duplicated names: %v, %v", es, err)
	}
	es, err := ParseUnique(strings.NewReader(sample))
	if err != nil || len(es) != 2 {
		t.Fatalf("ParseUnique on clean baseline: %v, %v", es, err)
	}
}
