package benchfmt

import (
	"strings"
	"testing"
)

const sample = `# Event-kernel microbenchmark baseline (internal/sim).
#   BenchmarkRunDrain            1186641   ns/op 550888 B/op 8207 allocs/op
goos: linux
goarch: amd64
pkg: dstore/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScheduleStepZeroDelay 	186085377	         6.467 ns/op	       0 B/op	       0 allocs/op
BenchmarkRunDrain              	    1597	    771493 ns/op	  355920 B/op	      21 allocs/op
PASS
ok  	dstore/internal/sim	7.568s
`

func TestParse(t *testing.T) {
	es, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	// The commented reference line must not parse as a result.
	if len(es) != 2 {
		t.Fatalf("parsed %d entries, want 2: %+v", len(es), es)
	}
	zd := es[0]
	if zd.Name != "BenchmarkScheduleStepZeroDelay" || zd.Iters != 186085377 {
		t.Fatalf("bad first entry: %+v", zd)
	}
	if v, ok := zd.Value("ns/op"); !ok || v != 6.467 {
		t.Fatalf("ns/op = %v, %v", v, ok)
	}
	rd := es[1]
	if v, ok := rd.Value("allocs/op"); !ok || v != 21 {
		t.Fatalf("allocs/op = %v, %v", v, ok)
	}
	if v, ok := rd.Value("B/op"); !ok || v != 355920 {
		t.Fatalf("B/op = %v, %v", v, ok)
	}
}

func TestParseMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX\t12\t34 ns/op\textra",
		"BenchmarkX\tnotanumber\t34 ns/op",
		"BenchmarkX\t12\tNaNope ns/op",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
	// Non-Benchmark noise is skipped, not an error.
	if es, err := Parse(strings.NewReader("hello\nworld 1 2\n")); err != nil || len(es) != 0 {
		t.Errorf("noise parse: %v, %v", es, err)
	}
}
