// Package trace generates line-granular memory access patterns: the
// building blocks the benchmark models (internal/bench) compose into
// CPU op streams and GPU kernels. Patterns are deterministic for a
// given seed — experiment reproducibility end to end.
package trace

import (
	"fmt"

	"dstore/internal/memsys"
	"dstore/internal/sim"
)

// SequentialLines returns every line address covering [base, base+bytes),
// in ascending order — the streaming produce/consume pattern.
func SequentialLines(base memsys.Addr, bytes uint64) []memsys.Addr {
	n := memsys.LinesCovering(base, bytes)
	out := make([]memsys.Addr, 0, n)
	for a := memsys.LineAlign(base); n > 0; n-- {
		out = append(out, a)
		a += memsys.LineSize
	}
	return out
}

// StridedLines returns lines covering the region visited with a stride
// of strideLines, wrapping through all residues so every line is
// visited exactly once (a column-major sweep).
func StridedLines(base memsys.Addr, bytes uint64, strideLines int) []memsys.Addr {
	if strideLines <= 0 {
		panic(fmt.Sprintf("trace: non-positive stride %d", strideLines))
	}
	n := int(memsys.LinesCovering(base, bytes))
	start := memsys.LineAlign(base)
	out := make([]memsys.Addr, 0, n)
	for off := 0; off < strideLines; off++ {
		for i := off; i < n; i += strideLines {
			out = append(out, start+memsys.Addr(i)*memsys.LineSize)
		}
	}
	return out
}

// TiledLines returns the line sequence of a tiled 2D walk over a
// rows×cols matrix of elemSize-byte elements: tiles of tileRows×tileCols
// elements are visited left-to-right, top-to-bottom, row-major inside
// each tile — the matmul/LU blocking pattern.
func TiledLines(base memsys.Addr, rows, cols, elemSize, tileRows, tileCols int) []memsys.Addr {
	if rows <= 0 || cols <= 0 || elemSize <= 0 || tileRows <= 0 || tileCols <= 0 {
		panic("trace: non-positive tiling geometry")
	}
	var out []memsys.Addr
	var lastLine memsys.Addr
	have := false
	emit := func(r, c int) {
		a := memsys.LineAlign(base + memsys.Addr((r*cols+c)*elemSize))
		if have && a == lastLine {
			return // coalesce consecutive same-line touches
		}
		out = append(out, a)
		lastLine, have = a, true
	}
	for tr := 0; tr < rows; tr += tileRows {
		for tc := 0; tc < cols; tc += tileCols {
			for r := tr; r < tr+tileRows && r < rows; r++ {
				for c := tc; c < tc+tileCols && c < cols; c++ {
					emit(r, c)
				}
			}
		}
	}
	return out
}

// RandomLines returns count uniform-random line addresses within the
// region (with repetition) — the irregular pointer-chasing flavour.
func RandomLines(base memsys.Addr, bytes uint64, count int, rng *sim.Rand) []memsys.Addr {
	if count < 0 {
		panic("trace: negative count")
	}
	n := memsys.LinesCovering(base, bytes)
	if n == 0 {
		panic("trace: empty region")
	}
	start := memsys.LineAlign(base)
	out := make([]memsys.Addr, count)
	for i := range out {
		out[i] = start + memsys.Addr(rng.Uint64n(n))*memsys.LineSize
	}
	return out
}

// Graph is a synthetic CSR graph over a base region: node data lives at
// NodeBase, edge/neighbour data at EdgeBase. Pannotia-style irregular
// workloads traverse it.
type Graph struct {
	Nodes    int
	NodeBase memsys.Addr
	EdgeBase memsys.Addr
	// Adj holds each node's neighbour indices.
	Adj [][]int32
	// edgeOffsets[i] is node i's first edge slot (prefix sums of
	// degree).
	edgeOffsets []int64
}

// NewGraph builds a power-law-flavoured random graph: node degrees are
// skewed (a few hubs, many leaves), matching the Pannotia inputs'
// irregularity. Deterministic per seed.
func NewGraph(nodes, avgDegree int, nodeBase, edgeBase memsys.Addr, rng *sim.Rand) *Graph {
	if nodes <= 0 || avgDegree <= 0 {
		panic("trace: non-positive graph geometry")
	}
	g := &Graph{Nodes: nodes, NodeBase: nodeBase, EdgeBase: edgeBase}
	g.Adj = make([][]int32, nodes)
	g.edgeOffsets = make([]int64, nodes+1)
	var total int64
	for i := 0; i < nodes; i++ {
		// Skewed degree: most nodes near avg/2, a few near 4*avg.
		deg := 1 + rng.Intn(avgDegree)
		if rng.Bool(0.05) {
			deg += avgDegree * 3
		}
		adj := make([]int32, deg)
		for j := range adj {
			adj[j] = int32(rng.Intn(nodes))
		}
		g.Adj[i] = adj
		g.edgeOffsets[i] = total
		total += int64(deg)
	}
	g.edgeOffsets[nodes] = total
	return g
}

// Edges returns the total edge count.
func (g *Graph) Edges() int64 { return g.edgeOffsets[g.Nodes] }

// NodeAddr returns the line address of node i's data (4 bytes/node).
func (g *Graph) NodeAddr(i int) memsys.Addr {
	return memsys.LineAlign(g.NodeBase + memsys.Addr(i*4))
}

// EdgeAddr returns the line address of edge slot e (4 bytes/edge).
func (g *Graph) EdgeAddr(e int64) memsys.Addr {
	return memsys.LineAlign(g.EdgeBase + memsys.Addr(e*4))
}

// TraverseLines returns the line sequence of one full traversal: for
// each node, its CSR row followed by each neighbour's node data — the
// scattered reads that make graph workloads cache-hostile.
func (g *Graph) TraverseLines() []memsys.Addr {
	var out []memsys.Addr
	for i := 0; i < g.Nodes; i++ {
		out = append(out, g.EdgeAddr(g.edgeOffsets[i]))
		for _, nb := range g.Adj[i] {
			out = append(out, g.NodeAddr(int(nb)))
		}
	}
	return out
}

// Dedup returns lines with consecutive duplicates collapsed — models
// intra-warp coalescing of a sorted access run.
func Dedup(lines []memsys.Addr) []memsys.Addr {
	var out []memsys.Addr
	for i, a := range lines {
		if i == 0 || a != lines[i-1] {
			out = append(out, a)
		}
	}
	return out
}

// Chunk splits lines into n nearly equal contiguous chunks (for
// distributing work across warps). Chunks may be empty when n exceeds
// the line count.
func Chunk(lines []memsys.Addr, n int) [][]memsys.Addr {
	if n <= 0 {
		panic("trace: non-positive chunk count")
	}
	out := make([][]memsys.Addr, n)
	per := (len(lines) + n - 1) / n
	for i := 0; i < n; i++ {
		lo := i * per
		hi := lo + per
		if lo > len(lines) {
			lo = len(lines)
		}
		if hi > len(lines) {
			hi = len(lines)
		}
		out[i] = lines[lo:hi]
	}
	return out
}
