package trace

import (
	"testing"
	"testing/quick"

	"dstore/internal/memsys"
	"dstore/internal/sim"
)

func TestSequentialLinesCoverage(t *testing.T) {
	lines := SequentialLines(0x1000, 1000) // 1000B from aligned base: 8 lines
	if len(lines) != 8 {
		t.Fatalf("got %d lines, want 8", len(lines))
	}
	for i, a := range lines {
		if a != memsys.Addr(0x1000)+memsys.Addr(i)*memsys.LineSize {
			t.Fatalf("line %d = %#x", i, uint64(a))
		}
	}
}

func TestSequentialLinesUnalignedBase(t *testing.T) {
	lines := SequentialLines(0x1010, memsys.LineSize) // straddles 2 lines
	if len(lines) != 2 || lines[0] != 0x1000 {
		t.Errorf("unaligned coverage wrong: %v", lines)
	}
}

func TestStridedLinesVisitsAllOnce(t *testing.T) {
	lines := StridedLines(0, 10*memsys.LineSize, 3)
	if len(lines) != 10 {
		t.Fatalf("got %d lines, want 10", len(lines))
	}
	seen := map[memsys.Addr]bool{}
	for _, a := range lines {
		if seen[a] {
			t.Fatalf("line %#x visited twice", uint64(a))
		}
		seen[a] = true
	}
	// First pass strides by 3 lines.
	if lines[1]-lines[0] != 3*memsys.LineSize {
		t.Error("stride not honoured")
	}
}

func TestStridedPanicsOnBadStride(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero stride did not panic")
		}
	}()
	StridedLines(0, 1024, 0)
}

func TestTiledLinesCoalescesWithinLine(t *testing.T) {
	// 4x4 matrix of 4B elements = 64B: single line, visited once.
	lines := TiledLines(0, 4, 4, 4, 2, 2)
	if len(lines) != 1 {
		t.Errorf("tiny matrix produced %d line touches, want 1", len(lines))
	}
}

func TestTiledLinesTouchesWholeMatrix(t *testing.T) {
	// 64x64 of 4B = 16KB = 128 lines; every line must appear.
	lines := TiledLines(0, 64, 64, 4, 16, 16)
	seen := map[memsys.Addr]bool{}
	for _, a := range lines {
		seen[a] = true
	}
	if len(seen) != 128 {
		t.Errorf("tiled walk covered %d distinct lines, want 128", len(seen))
	}
}

func TestRandomLinesInRegion(t *testing.T) {
	rng := sim.NewRand(1)
	base := memsys.Addr(0x4000)
	lines := RandomLines(base, 64*memsys.LineSize, 1000, rng)
	if len(lines) != 1000 {
		t.Fatal("count wrong")
	}
	for _, a := range lines {
		if a < base || a >= base+64*memsys.LineSize {
			t.Fatalf("line %#x outside region", uint64(a))
		}
		if memsys.LineOffset(a) != 0 {
			t.Fatal("unaligned line")
		}
	}
}

func TestRandomLinesDeterministic(t *testing.T) {
	a := RandomLines(0, 1<<20, 100, sim.NewRand(7))
	b := RandomLines(0, 1<<20, 100, sim.NewRand(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestGraphShape(t *testing.T) {
	g := NewGraph(100, 8, 0x10000, 0x20000, sim.NewRand(3))
	if g.Nodes != 100 {
		t.Fatal("node count wrong")
	}
	if g.Edges() <= 0 {
		t.Fatal("no edges")
	}
	var total int64
	for _, adj := range g.Adj {
		if len(adj) == 0 {
			t.Fatal("zero-degree node")
		}
		total += int64(len(adj))
		for _, nb := range adj {
			if nb < 0 || int(nb) >= g.Nodes {
				t.Fatalf("neighbour %d out of range", nb)
			}
		}
	}
	if total != g.Edges() {
		t.Errorf("edge sum %d != Edges() %d", total, g.Edges())
	}
}

func TestGraphDeterministic(t *testing.T) {
	a := NewGraph(50, 4, 0, 0x10000, sim.NewRand(9))
	b := NewGraph(50, 4, 0, 0x10000, sim.NewRand(9))
	if a.Edges() != b.Edges() {
		t.Fatal("same-seed graphs differ")
	}
}

func TestGraphTraverseLines(t *testing.T) {
	g := NewGraph(20, 3, 0x10000, 0x20000, sim.NewRand(5))
	lines := g.TraverseLines()
	// One CSR-row touch per node plus one per edge.
	want := int64(g.Nodes) + g.Edges()
	if int64(len(lines)) != want {
		t.Errorf("traversal touched %d lines, want %d", len(lines), want)
	}
}

func TestDedup(t *testing.T) {
	in := []memsys.Addr{0, 0, 128, 128, 128, 0, 256}
	out := Dedup(in)
	want := []memsys.Addr{0, 128, 0, 256}
	if len(out) != len(want) {
		t.Fatalf("dedup %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("dedup %v, want %v", out, want)
		}
	}
	if Dedup(nil) != nil {
		t.Error("dedup of nil not nil")
	}
}

func TestChunkPartition(t *testing.T) {
	lines := SequentialLines(0, 10*memsys.LineSize)
	chunks := Chunk(lines, 3)
	if len(chunks) != 3 {
		t.Fatal("chunk count wrong")
	}
	var total int
	for _, c := range chunks {
		total += len(c)
	}
	if total != 10 {
		t.Errorf("chunks lost lines: %d", total)
	}
}

func TestChunkMoreChunksThanLines(t *testing.T) {
	chunks := Chunk(SequentialLines(0, 2*memsys.LineSize), 5)
	var total int
	for _, c := range chunks {
		total += len(c)
	}
	if total != 2 {
		t.Errorf("over-chunking lost lines: %d", total)
	}
}

// Property: strided visits exactly the sequential set, in a different
// order.
func TestPropertyStridedIsPermutation(t *testing.T) {
	f := func(nRaw, strideRaw uint8) bool {
		n := int(nRaw%100) + 1
		stride := int(strideRaw%10) + 1
		seq := SequentialLines(0, uint64(n)*memsys.LineSize)
		str := StridedLines(0, uint64(n)*memsys.LineSize, stride)
		if len(seq) != len(str) {
			return false
		}
		seen := map[memsys.Addr]int{}
		for _, a := range str {
			seen[a]++
		}
		for _, a := range seq {
			if seen[a] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: chunking conserves order and content.
func TestPropertyChunkConserves(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw % 200)
		k := int(kRaw%8) + 1
		lines := SequentialLines(0, uint64(n)*memsys.LineSize)
		var flat []memsys.Addr
		for _, c := range Chunk(lines, k) {
			flat = append(flat, c...)
		}
		if len(flat) != len(lines) {
			return false
		}
		for i := range flat {
			if flat[i] != lines[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
