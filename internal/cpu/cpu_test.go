package cpu

import (
	"testing"

	"dstore/internal/cache"
	"dstore/internal/coherence"
	"dstore/internal/dram"
	"dstore/internal/interconnect"
	"dstore/internal/memalloc"
	"dstore/internal/memsys"
	"dstore/internal/mmu"
	"dstore/internal/sim"
)

type rig struct {
	e     *sim.Engine
	core  *Core
	cpuC  *coherence.Ctrl
	gpuC  *coherence.Ctrl
	space *memalloc.Space
	vers  *VersionSource
	pt    *mmu.PageTable
}

// pa translates a virtual address through the rig's page table; the
// hierarchy below the TLBs runs on physical addresses.
func (r *rig) pa(t *testing.T, va memsys.Addr) memsys.Addr {
	t.Helper()
	pa, ok := r.pt.Lookup(va)
	if !ok {
		t.Fatalf("va %#x never touched", uint64(va))
	}
	return pa
}

func newRig(t *testing.T, ds bool) *rig {
	t.Helper()
	e := sim.NewEngine()
	xbar := interconnect.NewCrossbar(e, "xbar", 16, 32)
	d := dram.New(e, dram.DefaultConfig())
	mem := coherence.NewMemCtrl(e, "mem", xbar, d, func(_ memsys.Addr, req string) []string {
		var out []string
		for _, n := range []string{"cpu", "gpu0"} {
			if n != req {
				out = append(out, n)
			}
		}
		return out
	})
	l1 := cache.Config{Name: "l1d", SizeBytes: 4 * 1024, Ways: 2}
	cpuC := coherence.NewCtrl(e, coherence.CtrlConfig{
		Name: "cpu", L2: cache.Config{Name: "l2", SizeBytes: 64 * 1024, Ways: 8},
		L1: &l1, L1HitLat: 4, L2HitLat: 12, MSHRs: 8,
	}, xbar, mem)
	gpuC := coherence.NewCtrl(e, coherence.CtrlConfig{
		Name: "gpu0", L2: cache.Config{Name: "gl2", SizeBytes: 64 * 1024, Ways: 8},
		L2HitLat: 12, MSHRs: 8,
	}, xbar, mem)
	direct := interconnect.NewLink(e, "direct", 20, 16)
	cpuC.AttachDirectStore(direct, func(memsys.Addr) *coherence.Ctrl { return gpuC })

	pt := mmu.NewPageTable(1 << 30)
	tlb := mmu.NewTLB(pt, mmu.Config{
		Name: "tlb", Entries: 64, HitLatency: 1, WalkLatency: 30,
		DirectBase: memalloc.DirectStoreBase, DirectLimit: memalloc.DirectStoreLimit,
	})
	vers := &VersionSource{}
	core := New(e, Config{Name: "core0", StoreBufferEntries: 8, DirectStoreEnabled: ds}, tlb, cpuC, vers)
	return &rig{e: e, core: core, cpuC: cpuC, gpuC: gpuC, space: memalloc.NewSpace(), vers: vers, pt: pt}
}

func run(t *testing.T, r *rig, ops []Op) {
	t.Helper()
	finished := false
	r.core.Run(NewSliceStream(ops), func() { finished = true })
	r.e.Run()
	if !finished {
		t.Fatal("core did not finish")
	}
}

func TestCoreExecutesLoadsAndStores(t *testing.T) {
	r := newRig(t, false)
	base, _ := r.space.Malloc(4096, "buf")
	ops := []Op{
		{Type: memsys.Store, Addr: base},
		{Type: memsys.Store, Addr: base + memsys.LineSize},
		{Type: memsys.Load, Addr: base},
	}
	run(t, r, ops)
	if r.core.Counters().Get("stores") != 2 || r.core.Counters().Get("loads") != 1 {
		t.Errorf("op counts stores=%d loads=%d", r.core.Counters().Get("stores"), r.core.Counters().Get("loads"))
	}
	if r.core.FinishedAt() == 0 {
		t.Error("finish tick not recorded")
	}
}

func TestComputeGapDelaysIssue(t *testing.T) {
	short := newRig(t, false)
	long := newRig(t, false)
	base := memsys.Addr(0x10000)
	run(t, short, []Op{{Type: memsys.Load, Addr: base}})
	run(t, long, []Op{{Type: memsys.Load, Addr: base, Gap: 500}})
	if long.core.FinishedAt() < short.core.FinishedAt()+500 {
		t.Errorf("gap not honoured: short=%d long=%d", short.core.FinishedAt(), long.core.FinishedAt())
	}
}

func TestStoresRetireWithoutBlocking(t *testing.T) {
	// N independent store misses should overlap: total time must be far
	// below N * single-store-miss latency.
	r1 := newRig(t, false)
	base := memsys.Addr(0x10000)
	run(t, r1, []Op{{Type: memsys.Store, Addr: base}})
	single := r1.core.FinishedAt()

	r2 := newRig(t, false)
	var ops []Op
	const n = 8
	for i := 0; i < n; i++ {
		ops = append(ops, Op{Type: memsys.Store, Addr: base + memsys.Addr(i)*memsys.LineSize})
	}
	run(t, r2, ops)
	if r2.core.FinishedAt() >= single*n {
		t.Errorf("%d stores took %d ticks, not overlapped (single=%d)", n, r2.core.FinishedAt(), single)
	}
}

func TestLoadsBlockInOrder(t *testing.T) {
	// Two dependent loads to distinct cold lines must serialise: the
	// second can't issue until the first returns.
	r := newRig(t, false)
	base := memsys.Addr(0x10000)
	r1 := newRig(t, false)
	run(t, r1, []Op{{Type: memsys.Load, Addr: base}})
	single := r1.core.FinishedAt()
	run(t, r, []Op{
		{Type: memsys.Load, Addr: base},
		{Type: memsys.Load, Addr: base + 16*memsys.LineSize},
	})
	if r.core.FinishedAt() < single+single/2 {
		t.Errorf("two cold loads at %d ticks, too fast for blocking loads (single=%d)",
			r.core.FinishedAt(), single)
	}
}

func TestDirectRegionStoreBecomesPush(t *testing.T) {
	r := newRig(t, true)
	base, err := r.space.AllocDirect(4096, "gpu_buf")
	if err != nil {
		t.Fatal(err)
	}
	run(t, r, []Op{{Type: memsys.Store, Addr: base}})
	if r.core.Counters().Get("remote_stores") != 1 {
		t.Error("direct-region store not routed to push path")
	}
	if r.core.Counters().Get("stores") != 0 {
		t.Error("direct-region store also counted as ordinary store")
	}
	if st := r.gpuC.State(r.pa(t, base)); st != coherence.MM {
		t.Errorf("pushed line state %s, want MM", coherence.StateName(st))
	}
	if r.cpuC.L2Cache().Contains(r.pa(t, base)) {
		t.Error("direct-region line cached on CPU")
	}
}

func TestDirectRegionStoreWithFeatureDisabledStaysCacheable(t *testing.T) {
	// CCSM baseline: even if an address happens to sit in the region,
	// the push path is off.
	r := newRig(t, false)
	base, _ := r.space.AllocDirect(4096, "buf")
	run(t, r, []Op{{Type: memsys.Store, Addr: base}})
	if r.core.Counters().Get("remote_stores") != 0 {
		t.Error("push issued with direct store disabled")
	}
	if st := r.cpuC.State(r.pa(t, base)); st != coherence.MM {
		t.Errorf("state %s, want MM via ordinary GETX", coherence.StateName(st))
	}
}

func TestDirectRegionLoadIsUncacheable(t *testing.T) {
	r := newRig(t, true)
	base, _ := r.space.AllocDirect(4096, "buf")
	run(t, r, []Op{
		{Type: memsys.Store, Addr: base}, // push
		{Type: memsys.Load, Addr: base},  // remote load
	})
	if r.core.Counters().Get("remote_loads") != 1 {
		t.Error("direct-region load not routed to remote-load path")
	}
	if r.cpuC.L2Cache().Contains(r.pa(t, base)) {
		t.Error("uncacheable load installed a CPU copy")
	}
}

func TestStoreBufferBackpressure(t *testing.T) {
	// Flood with more store misses than buffer entries; the core must
	// stall at least once but still finish.
	r := newRig(t, false)
	var ops []Op
	for i := 0; i < 64; i++ {
		ops = append(ops, Op{Type: memsys.Store, Addr: memsys.Addr(0x10000) + memsys.Addr(i)*memsys.LineSize})
	}
	run(t, r, ops)
	if r.core.Counters().Get("store_buffer_stall_ticks") == 0 {
		t.Error("no store buffer stalls under flood")
	}
}

func TestProducerConsumerVersionFlow(t *testing.T) {
	r := newRig(t, true)
	base, _ := r.space.AllocDirect(4096, "buf")
	run(t, r, []Op{{Type: memsys.Store, Addr: base}})
	basePA := r.pa(t, base)
	pushVer := r.gpuC.Ver(basePA)
	if pushVer == 0 {
		t.Fatal("push carried no version")
	}
	// The GPU-side controller can serve the line locally.
	done := false
	var seen uint64
	req := &memsys.Request{Type: memsys.Load, Addr: basePA, Done: func(sim.Tick) { done = true }}
	r.gpuC.Access(req)
	r.e.Run()
	seen = req.Ver
	if !done || seen != pushVer {
		t.Errorf("GPU load saw version %d, want %d", seen, pushVer)
	}
}

func TestRunTwiceSequentially(t *testing.T) {
	r := newRig(t, false)
	base := memsys.Addr(0x10000)
	run(t, r, []Op{{Type: memsys.Store, Addr: base}})
	run(t, r, []Op{{Type: memsys.Load, Addr: base}})
	if r.core.Counters().Get("loads") != 1 || r.core.Counters().Get("stores") != 1 {
		t.Error("second run miscounted")
	}
}

func TestRunWhileRunningPanics(t *testing.T) {
	r := newRig(t, false)
	r.core.Run(NewSliceStream(nil), nil)
	defer func() {
		if recover() == nil {
			t.Error("concurrent Run did not panic")
		}
	}()
	r.core.Run(NewSliceStream(nil), nil)
}

func TestSliceStream(t *testing.T) {
	s := NewSliceStream([]Op{{Gap: 1}, {Gap: 2}})
	a, ok := s.Next()
	if !ok || a.Gap != 1 {
		t.Error("first op wrong")
	}
	b, ok := s.Next()
	if !ok || b.Gap != 2 {
		t.Error("second op wrong")
	}
	if _, ok := s.Next(); ok {
		t.Error("exhausted stream returned an op")
	}
}

func TestVersionSourceMonotonic(t *testing.T) {
	v := &VersionSource{}
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		n := v.Next()
		if n <= prev {
			t.Fatal("versions not strictly increasing")
		}
		prev = n
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero store buffer did not panic")
		}
	}()
	New(sim.NewEngine(), Config{Name: "bad", StoreBufferEntries: 0}, nil, nil, &VersionSource{})
}

func TestFenceDrainsStoreBuffer(t *testing.T) {
	// store..., fence, load: the load must issue only after every store
	// completed. Without the fence, the load (an L1 hit after the first
	// store's line) would complete long before the store drain.
	r := newRig(t, false)
	base := memsys.Addr(0x10000)
	var ops []Op
	for i := 0; i < 16; i++ {
		ops = append(ops, Op{Type: memsys.Store, Addr: base + memsys.Addr(i)*memsys.LineSize})
	}
	ops = append(ops, Op{Fence: true})
	ops = append(ops, Op{Type: memsys.Load, Addr: base})
	run(t, r, ops)
	if r.core.Counters().Get("fence_stall_ticks") == 0 {
		t.Error("fence never stalled despite 16 outstanding stores")
	}
}

func TestFenceOnEmptyBufferIsCheap(t *testing.T) {
	r := newRig(t, false)
	run(t, r, []Op{{Fence: true}, {Fence: true}})
	if r.core.Counters().Get("fence_stall_ticks") != 0 {
		t.Error("fence stalled with nothing outstanding")
	}
}
