// Package cpu models the CPU side of the integrated system: an in-order
// timing core that executes a memory-operation stream through its TLB
// and cache hierarchy. Loads block the core; stores retire into a store
// buffer that drains in the background — which is what lets direct
// store trade increased store latency for reduced GPU load latency
// without hurting the CPU (paper §III-B).
//
// The TLB's direct-store detector routes accesses: stores whose virtual
// address falls in the reserved region are issued as remote stores
// (pushes over the dedicated network); loads from that region are
// uncacheable remote loads.
package cpu

import (
	"fmt"

	"dstore/internal/coherence"
	"dstore/internal/memsys"
	"dstore/internal/mmu"
	"dstore/internal/obs"
	"dstore/internal/sim"
	"dstore/internal/stats"
)

// Op is one instruction's memory behaviour. Gap models the compute
// cycles preceding the operation. A Fence op drains the store buffer
// before the core proceeds (the ordering point a producer needs before
// signalling a consumer).
type Op struct {
	Type  memsys.AccessType
	Addr  memsys.Addr // virtual
	Gap   sim.Tick
	Fence bool
}

// OpStream supplies the core's operation sequence.
type OpStream interface {
	// Next returns the next operation; ok is false when the stream is
	// exhausted.
	Next() (op Op, ok bool)
}

// SliceStream adapts a slice of ops into an OpStream.
type SliceStream struct {
	ops []Op
	i   int
}

// NewSliceStream wraps ops.
func NewSliceStream(ops []Op) *SliceStream { return &SliceStream{ops: ops} }

// Next implements OpStream.
func (s *SliceStream) Next() (Op, bool) {
	if s.i >= len(s.ops) {
		return Op{}, false
	}
	op := s.ops[s.i]
	s.i++
	return op, true
}

// VersionSource hands out store version numbers; shared between CPU and
// GPU so the oracle's "latest write" is globally ordered by issue.
type VersionSource struct{ next uint64 }

// Next returns a fresh version.
func (v *VersionSource) Next() uint64 {
	v.next++
	return v.next
}

// Config describes the core.
type Config struct {
	Name string
	// StoreBufferEntries bounds in-flight retired stores.
	StoreBufferEntries int
	// DirectStoreEnabled routes detected direct-region stores through
	// the push path. Off in the CCSM baseline (where nothing is
	// allocated in the region anyway, but the switch also supports the
	// paper's §III-H co-existence discussion).
	DirectStoreEnabled bool
}

// Core is the in-order CPU core.
type Core struct {
	engine *sim.Engine
	cfg    Config
	tlb    *mmu.TLB
	ctrl   *coherence.Ctrl
	vers   *VersionSource

	sbInFlight int
	sbWaiting  bool

	// Observability (AttachObserver): nil in normal operation.
	obs   *obs.Observer
	obsID obs.CompID

	stream OpStream
	onDone func()

	running bool

	counters     *stats.Set
	loads        *stats.Counter
	storesC      *stats.Counter
	remoteStores *stats.Counter
	remoteLoadsC *stats.Counter
	sbStallTicks *stats.Counter
	fences       *stats.Counter
	finishedAt   sim.Tick
}

// New builds a core over its TLB and cache controller.
func New(engine *sim.Engine, cfg Config, tlb *mmu.TLB, ctrl *coherence.Ctrl, vers *VersionSource) *Core {
	if cfg.StoreBufferEntries <= 0 {
		panic(fmt.Sprintf("cpu %s: non-positive store buffer", cfg.Name))
	}
	c := &Core{
		engine:   engine,
		cfg:      cfg,
		tlb:      tlb,
		ctrl:     ctrl,
		vers:     vers,
		counters: stats.NewSet(),
	}
	c.loads = c.counters.Counter("loads")
	c.storesC = c.counters.Counter("stores")
	c.remoteStores = c.counters.Counter("remote_stores")
	c.remoteLoadsC = c.counters.Counter("remote_loads")
	c.sbStallTicks = c.counters.Counter("store_buffer_stall_ticks")
	c.fences = c.counters.Counter("fence_stall_ticks")
	return c
}

// Counters exposes the core's statistics.
func (c *Core) Counters() *stats.Set { return c.counters }

// AttachObserver connects the core to the observability layer: store
// completions (issue to coherence completion, including the direct-
// store push round) feed the CPU store-latency histogram.
func (c *Core) AttachObserver(o *obs.Observer) {
	if o == nil {
		return
	}
	c.obs = o
	c.obsID = o.Component(c.cfg.Name)
}

// FinishedAt returns the tick the last run completed.
func (c *Core) FinishedAt() sim.Tick { return c.finishedAt }

// Run executes the stream; done fires when every op has issued and all
// stores have drained. A core runs one stream at a time.
func (c *Core) Run(stream OpStream, done func()) {
	if c.running {
		panic(fmt.Sprintf("cpu %s: Run while already running", c.cfg.Name))
	}
	c.running = true
	c.stream = stream
	c.onDone = done
	c.engine.Schedule(0, c.step)
}

// step fetches and executes the next operation.
func (c *Core) step() {
	op, ok := c.stream.Next()
	if !ok {
		c.finishWhenDrained()
		return
	}
	if op.Fence {
		c.engine.Schedule(op.Gap, func() { c.fence() })
		return
	}
	c.engine.Schedule(op.Gap, func() { c.issue(op) })
}

// fence stalls until the store buffer drains, then proceeds.
func (c *Core) fence() {
	if c.sbInFlight > 0 {
		c.fences.Inc()
		c.engine.Schedule(1, c.fence)
		return
	}
	c.step()
}

func (c *Core) issue(op Op) {
	pa, lat, direct, err := c.tlb.Translate(op.Addr)
	if err != nil {
		panic(fmt.Sprintf("cpu %s: translation failed: %v", c.cfg.Name, err))
	}
	c.engine.Schedule(lat, func() { c.execute(op, pa, direct) })
}

// execute runs op against the hierarchy using the physical address pa;
// the whole memory system below the TLBs operates on physical
// addresses.
func (c *Core) execute(op Op, pa memsys.Addr, direct bool) {
	switch op.Type {
	case memsys.Load:
		if direct {
			// Uncacheable read from the GPU-homed region.
			c.remoteLoadsC.Inc()
			req := &memsys.Request{Type: memsys.Load, Addr: pa, Issued: c.engine.Now(),
				Done: func(sim.Tick) { c.step() }}
			c.ctrl.RemoteLoad(req)
			return
		}
		c.loads.Inc()
		req := &memsys.Request{Type: memsys.Load, Addr: pa, Issued: c.engine.Now(),
			Done: func(sim.Tick) { c.step() }}
		c.ctrl.Access(req)
	case memsys.Store:
		if c.sbInFlight >= c.cfg.StoreBufferEntries {
			// Store buffer full: retry each tick until a slot frees.
			c.sbStallTicks.Inc()
			c.engine.Schedule(1, func() { c.execute(op, pa, direct) })
			return
		}
		c.sbInFlight++
		ver := c.vers.Next()
		ty := memsys.Store
		if direct && c.cfg.DirectStoreEnabled {
			ty = memsys.RemoteStore
			c.remoteStores.Inc()
		} else {
			c.storesC.Inc()
		}
		issued := c.engine.Now()
		req := &memsys.Request{Type: ty, Addr: pa, Ver: ver, Issued: issued,
			Done: func(now sim.Tick) {
				c.obs.Latency(now, c.obsID, obs.HistCPUStoreLat, pa, now-issued)
				c.sbInFlight--
				if c.sbWaiting && c.sbInFlight == 0 {
					c.sbWaiting = false
					c.finishWhenDrained()
				}
			}}
		c.ctrl.Access(req)
		// Stores retire immediately; the next instruction proceeds.
		c.engine.Schedule(1, c.step)
	default:
		panic(fmt.Sprintf("cpu %s: unsupported op type %v", c.cfg.Name, op.Type))
	}
}

func (c *Core) finishWhenDrained() {
	if c.sbInFlight > 0 {
		c.sbWaiting = true
		return
	}
	c.running = false
	c.finishedAt = c.engine.Now()
	if c.onDone != nil {
		done := c.onDone
		c.onDone = nil
		c.engine.Schedule(0, done)
	}
}
