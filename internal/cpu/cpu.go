// Package cpu models the CPU side of the integrated system: an in-order
// timing core that executes a memory-operation stream through its TLB
// and cache hierarchy. Loads block the core; stores retire into a store
// buffer that drains in the background — which is what lets direct
// store trade increased store latency for reduced GPU load latency
// without hurting the CPU (paper §III-B).
//
// The TLB's direct-store detector routes accesses: stores whose virtual
// address falls in the reserved region are issued as remote stores
// (pushes over the dedicated network); loads from that region are
// uncacheable remote loads.
package cpu

import (
	"fmt"

	"dstore/internal/coherence"
	"dstore/internal/memsys"
	"dstore/internal/mmu"
	"dstore/internal/obs"
	"dstore/internal/sim"
	"dstore/internal/stats"
)

// Op is one instruction's memory behaviour. Gap models the compute
// cycles preceding the operation. A Fence op drains the store buffer
// before the core proceeds (the ordering point a producer needs before
// signalling a consumer).
type Op struct {
	Type  memsys.AccessType
	Addr  memsys.Addr // virtual
	Gap   sim.Tick
	Fence bool
}

// OpStream supplies the core's operation sequence.
type OpStream interface {
	// Next returns the next operation; ok is false when the stream is
	// exhausted.
	Next() (op Op, ok bool)
}

// SliceStream adapts a slice of ops into an OpStream.
type SliceStream struct {
	ops []Op
	i   int
}

// NewSliceStream wraps ops.
func NewSliceStream(ops []Op) *SliceStream { return &SliceStream{ops: ops} }

// Next implements OpStream.
func (s *SliceStream) Next() (Op, bool) {
	if s.i >= len(s.ops) {
		return Op{}, false
	}
	op := s.ops[s.i]
	s.i++
	return op, true
}

// VersionSource hands out store version numbers; shared between CPU and
// GPU so the oracle's "latest write" is globally ordered by issue.
type VersionSource struct{ next uint64 }

// Next returns a fresh version.
func (v *VersionSource) Next() uint64 {
	v.next++
	return v.next
}

// Config describes the core.
type Config struct {
	Name string
	// StoreBufferEntries bounds in-flight retired stores.
	StoreBufferEntries int
	// DirectStoreEnabled routes detected direct-region stores through
	// the push path. Off in the CCSM baseline (where nothing is
	// allocated in the region anyway, but the switch also supports the
	// paper's §III-H co-existence discussion).
	DirectStoreEnabled bool
}

// Core is the in-order CPU core.
type Core struct {
	engine *sim.Engine
	cfg    Config
	tlb    *mmu.TLB
	ctrl   *coherence.Ctrl
	vers   *VersionSource

	sbInFlight int
	sbWaiting  bool

	// Observability (AttachObserver): nil in normal operation.
	obs   *obs.Observer
	obsID obs.CompID

	stream OpStream
	onDone func()

	running bool

	// In-order pipeline state: exactly one operation moves through
	// step → issue → execute at a time, so the current op and its
	// translation live in fields and the stage callbacks are created
	// once (stepFn et al), keeping the issue path allocation-free.
	curOp     Op
	curPA     memsys.Addr
	curDirect bool
	stepFn    func()
	fenceFn   func()
	issueFn   func()
	executeFn func()

	// loadReq is the single reusable load request — loads block the
	// core, so at most one is outstanding. Stores retire into the store
	// buffer and draw pooled carriers from storePool.
	loadReq   memsys.Request
	storePool []*cpuStore

	counters     *stats.Set
	loads        *stats.Counter
	storesC      *stats.Counter
	remoteStores *stats.Counter
	remoteLoadsC *stats.Counter
	sbStallTicks *stats.Counter
	fences       *stats.Counter
	finishedAt   sim.Tick
}

// New builds a core over its TLB and cache controller.
func New(engine *sim.Engine, cfg Config, tlb *mmu.TLB, ctrl *coherence.Ctrl, vers *VersionSource) *Core {
	if cfg.StoreBufferEntries <= 0 {
		panic(fmt.Sprintf("cpu %s: non-positive store buffer", cfg.Name))
	}
	c := &Core{
		engine:   engine,
		cfg:      cfg,
		tlb:      tlb,
		ctrl:     ctrl,
		vers:     vers,
		counters: stats.NewSet(),
	}
	c.stepFn = c.step
	c.fenceFn = c.fence
	c.issueFn = c.issue
	c.executeFn = c.execute
	c.loadReq.Type = memsys.Load
	c.loadReq.Done = func(sim.Tick) { c.step() }
	c.loads = c.counters.Counter("loads")
	c.storesC = c.counters.Counter("stores")
	c.remoteStores = c.counters.Counter("remote_stores")
	c.remoteLoadsC = c.counters.Counter("remote_loads")
	c.sbStallTicks = c.counters.Counter("store_buffer_stall_ticks")
	c.fences = c.counters.Counter("fence_stall_ticks")
	return c
}

// Counters exposes the core's statistics.
func (c *Core) Counters() *stats.Set { return c.counters }

// AttachObserver connects the core to the observability layer: store
// completions (issue to coherence completion, including the direct-
// store push round) feed the CPU store-latency histogram.
func (c *Core) AttachObserver(o *obs.Observer) {
	if o == nil {
		return
	}
	c.obs = o
	c.obsID = o.Component(c.cfg.Name)
}

// FinishedAt returns the tick the last run completed.
func (c *Core) FinishedAt() sim.Tick { return c.finishedAt }

// Run executes the stream; done fires when every op has issued and all
// stores have drained. A core runs one stream at a time.
func (c *Core) Run(stream OpStream, done func()) {
	if c.running {
		panic(fmt.Sprintf("cpu %s: Run while already running", c.cfg.Name))
	}
	c.running = true
	c.stream = stream
	c.onDone = done
	c.engine.Schedule(0, c.step)
}

// cpuStore carries one store-buffer entry from issue to coherence
// completion. Pooled per core; the Done callback is created once per
// object.
type cpuStore struct {
	c   *Core
	req memsys.Request
}

// done retires a store-buffer entry and recycles its carrier.
func (s *cpuStore) done(now sim.Tick) {
	c := s.c
	c.obs.Latency(now, c.obsID, obs.HistCPUStoreLat, s.req.Addr, now-s.req.Issued)
	c.sbInFlight--
	c.storePool = append(c.storePool, s)
	if c.sbWaiting && c.sbInFlight == 0 {
		c.sbWaiting = false
		c.finishWhenDrained()
	}
}

// step fetches and executes the next operation.
func (c *Core) step() {
	op, ok := c.stream.Next()
	if !ok {
		c.finishWhenDrained()
		return
	}
	if op.Fence {
		c.engine.Schedule(op.Gap, c.fenceFn)
		return
	}
	c.curOp = op
	c.engine.Schedule(op.Gap, c.issueFn)
}

// fence stalls until the store buffer drains, then proceeds.
func (c *Core) fence() {
	if c.sbInFlight > 0 {
		c.fences.Inc()
		c.engine.Schedule(1, c.fenceFn)
		return
	}
	c.step()
}

func (c *Core) issue() {
	pa, lat, direct, err := c.tlb.Translate(c.curOp.Addr)
	if err != nil {
		panic(fmt.Sprintf("cpu %s: translation failed: %v", c.cfg.Name, err))
	}
	c.curPA, c.curDirect = pa, direct
	c.engine.Schedule(lat, c.executeFn)
}

// execute runs the current op against the hierarchy using its physical
// address; the whole memory system below the TLBs operates on physical
// addresses.
func (c *Core) execute() {
	op, pa, direct := c.curOp, c.curPA, c.curDirect
	switch op.Type {
	case memsys.Load:
		// Loads block the core, so the single reusable request is free.
		c.loadReq.Addr = pa
		c.loadReq.Issued = c.engine.Now()
		c.loadReq.Ver = 0
		if direct {
			// Uncacheable read from the GPU-homed region.
			c.remoteLoadsC.Inc()
			c.ctrl.RemoteLoad(&c.loadReq)
			return
		}
		c.loads.Inc()
		c.ctrl.Access(&c.loadReq)
	case memsys.Store:
		if c.sbInFlight >= c.cfg.StoreBufferEntries {
			// Store buffer full: retry each tick until a slot frees.
			c.sbStallTicks.Inc()
			c.engine.Schedule(1, c.executeFn)
			return
		}
		c.sbInFlight++
		ver := c.vers.Next()
		ty := memsys.Store
		if direct && c.cfg.DirectStoreEnabled {
			ty = memsys.RemoteStore
			c.remoteStores.Inc()
		} else {
			c.storesC.Inc()
		}
		var s *cpuStore
		if n := len(c.storePool); n > 0 {
			s = c.storePool[n-1]
			c.storePool = c.storePool[:n-1]
		} else {
			s = &cpuStore{c: c}
			s.req.Done = s.done
		}
		s.req.Type, s.req.Addr, s.req.Ver = ty, pa, ver
		s.req.Issued = c.engine.Now()
		c.ctrl.Access(&s.req)
		// Stores retire immediately; the next instruction proceeds.
		c.engine.Schedule(1, c.stepFn)
	default:
		panic(fmt.Sprintf("cpu %s: unsupported op type %v", c.cfg.Name, op.Type))
	}
}

func (c *Core) finishWhenDrained() {
	if c.sbInFlight > 0 {
		c.sbWaiting = true
		return
	}
	c.running = false
	c.finishedAt = c.engine.Now()
	if c.onDone != nil {
		done := c.onDone
		c.onDone = nil
		c.engine.Schedule(0, done)
	}
}
