package cpu

import "dstore/internal/snap"

// SnapshotTo serialises the version source (the functional data
// oracle shared by every store site).
func (v *VersionSource) SnapshotTo(w *snap.Writer) {
	w.Tag("vers")
	w.U64(v.next)
}

// RestoreFrom overwrites the version source from a snapshot.
func (v *VersionSource) RestoreFrom(r *snap.Reader) {
	r.Tag("vers")
	v.next = r.U64()
}

// SnapshotTo serialises the core at a quiescent point: its TLB and
// counters. Pipeline and store-buffer state is in-flight events; a
// drained engine cannot have any, and a running core marks the
// snapshot unusable.
func (c *Core) SnapshotTo(w *snap.Writer) {
	w.Tag("core")
	w.Bool(!c.running && c.sbInFlight == 0 && !c.sbWaiting)
	c.tlb.SnapshotTo(w)
	c.counters.SnapshotTo(w)
}

// RestoreFrom overwrites the core's state from a snapshot.
func (c *Core) RestoreFrom(r *snap.Reader) {
	r.Tag("core")
	if r.Err() == nil && !r.Bool() {
		r.Failf("cpu: snapshot was taken with the core mid-stream")
	}
	if r.Err() != nil {
		return
	}
	if c.running || c.sbInFlight != 0 {
		r.Failf("cpu: restore into a running core")
		return
	}
	c.tlb.RestoreFrom(r)
	c.counters.RestoreFrom(r)
}
