package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"dstore/internal/memsys"
	"dstore/internal/sim"
)

// TestNilObserverSafe proves every recording and export method is a
// no-op on a nil *Observer — the zero-overhead-when-disabled contract
// at the API level.
func TestNilObserverSafe(t *testing.T) {
	var o *Observer
	o.Msg(1, 0, MsgGETS, 0x100, 1)
	o.StateChange(1, 0, 0x100, 0, 3)
	o.Push(1, 0, 0x100, 1)
	o.CacheAccess(1, 0, 0x100, 2, true, true)
	o.PushInstalled(1, 0x100)
	o.Latency(1, 0, HistGPULoadLat, 0x100, 42)
	o.Tick(0, 100)
	o.FinishRun(100)
	o.SetStateNamer(nil)
	if got := o.Component("x"); got != 0 {
		t.Errorf("nil Component = %d, want 0", got)
	}
	if o.Events() != nil || o.Samples() != nil || o.Hist(HistGPULoadLat) != nil {
		t.Error("nil observer leaked state")
	}
	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatalf("nil WriteTrace: %v", err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("nil trace not valid JSON: %v", err)
	}
	if err := o.WriteTimeline(&buf); err != nil {
		t.Fatalf("nil WriteTimeline: %v", err)
	}
	if err := o.WriteSeriesCSV(&buf); err != nil {
		t.Fatalf("nil WriteSeriesCSV: %v", err)
	}
	if err := o.WriteSeriesJSON(&buf); err != nil {
		t.Fatalf("nil WriteSeriesJSON: %v", err)
	}
}

// TestRingWrap proves the tracer keeps exactly the most recent TraceCap
// events, in chronological order, and counts the overwritten ones.
func TestRingWrap(t *testing.T) {
	o := New(Options{Trace: true, TraceCap: 4})
	c := o.Component("c")
	for i := 0; i < 10; i++ {
		o.Msg(sim.Tick(i), c, MsgGETS, memsys.Addr(i), c)
	}
	evs := o.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := sim.Tick(6 + i); ev.When != want {
			t.Errorf("event %d at tick %d, want %d", i, ev.When, want)
		}
	}
	if o.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", o.Dropped())
	}
}

// TestHistogramBuckets pins the log2 bucket boundaries: 0 alone, then
// [2^(i-1), 2^i).
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("t")
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1000} {
		h.Observe(v)
	}
	want := []Bucket{
		{Lo: 0, Hi: 0, Count: 1},
		{Lo: 1, Hi: 1, Count: 1},
		{Lo: 2, Hi: 3, Count: 2},
		{Lo: 4, Hi: 7, Count: 2},
		{Lo: 8, Hi: 15, Count: 1},
		{Lo: 512, Hi: 1023, Count: 1},
	}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("Buckets = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if h.Count() != 8 || h.Sum() != 1025 || h.Min() != 0 || h.Max() != 1000 {
		t.Errorf("count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if math.Abs(h.Mean()-1025.0/8) > 1e-9 {
		t.Errorf("Mean = %v", h.Mean())
	}
	top := NewHistogram("top")
	top.Observe(math.MaxUint64)
	if b := top.Buckets(); len(b) != 1 || b[0].Lo != 1<<63 || b[0].Hi != math.MaxUint64 {
		t.Errorf("top bucket = %+v", b)
	}
}

// TestHistogramMerge proves Merge is the sum of the two distributions.
func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram("a"), NewHistogram("b")
	a.Observe(5)
	a.Observe(100)
	b.Observe(3)
	b.Observe(2000)
	a.Merge(b)
	if a.Count() != 4 || a.Sum() != 2108 || a.Min() != 3 || a.Max() != 2000 {
		t.Errorf("merged count=%d sum=%d min=%d max=%d", a.Count(), a.Sum(), a.Min(), a.Max())
	}
	a.Merge(nil)
	a.Merge(NewHistogram("empty"))
	if a.Count() != 4 || a.Min() != 3 {
		t.Errorf("merge with empty changed state: count=%d min=%d", a.Count(), a.Min())
	}
}

// record a small, fully mixed event stream against o.
func recordFixture(o *Observer) {
	cpu := o.Component("cpu")
	gpu := o.Component("gpu.l2.s0")
	mem := o.Component("mem")
	o.SetStateNamer(func(s uint8) string { return [5]string{"I", "S", "O", "M", "MM"}[s] })
	o.Msg(10, cpu, MsgGETX, 0x1000, mem)
	o.StateChange(25, cpu, 0x1000, 0, 4)
	o.Push(30, cpu, 0x1000, gpu)
	o.CacheAccess(40, gpu, 0x1000, 2, false, true)
	o.CacheAccess(45, gpu, 0x1040, 2, true, true)
	o.Latency(60, gpu, HistGPULoadLat, 0x1000, 20)
	o.StateChange(70, gpu, 0x1080, 1, 0)
}

// TestChromeTraceRoundTrip proves the Chrome trace output parses with
// encoding/json, carries one thread_name metadata record per
// component, and is byte-identical across observers fed the same
// stream.
func TestChromeTraceRoundTrip(t *testing.T) {
	var bufs [2]bytes.Buffer
	for i := range bufs {
		o := New(Options{Trace: true, Hist: true, TraceCap: 64})
		recordFixture(o)
		if err := o.WriteTrace(&bufs[i]); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Error("identical streams produced different trace bytes")
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(bufs[0].Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	meta, instants, slices := 0, 0, 0
	for _, ev := range parsed.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
		case "i":
			instants++
		case "X":
			slices++
		}
	}
	if meta != 3 {
		t.Errorf("thread_name records = %d, want 3", meta)
	}
	if instants != 6 || slices != 1 {
		t.Errorf("instants=%d slices=%d, want 6 and 1", instants, slices)
	}
}

// TestTimeline proves the per-line dump groups by address in ascending
// order with protocol state names.
func TestTimeline(t *testing.T) {
	o := New(Options{Trace: true, TraceCap: 64})
	recordFixture(o)
	var buf bytes.Buffer
	if err := o.WriteTimeline(&buf); err != nil {
		t.Fatalf("WriteTimeline: %v", err)
	}
	out := buf.String()
	i1 := strings.Index(out, "line 0x00001000")
	i2 := strings.Index(out, "line 0x00001080")
	if i1 < 0 || i2 < 0 || i2 < i1 {
		t.Fatalf("timeline sections missing or misordered:\n%s", out)
	}
	if !strings.Contains(out, "I->MM") || !strings.Contains(out, "S->I") {
		t.Errorf("timeline missing transitions:\n%s", out)
	}
}

// TestPushToFirstUse proves the distance histogram pairs PushInstalled
// with the next demand access and observes each push once.
func TestPushToFirstUse(t *testing.T) {
	o := New(Options{Hist: true})
	gpu := o.Component("gpu.l2.s0")
	o.PushInstalled(100, 0x2000)
	o.CacheAccess(175, gpu, 0x2010, 2, true, true) // same line, offset addr
	o.CacheAccess(300, gpu, 0x2000, 2, true, true) // second use: not counted
	h := o.Hist(HistPushToUse)
	if h.Count() != 1 || h.Sum() != 75 {
		t.Errorf("push-to-use count=%d sum=%d, want 1 and 75", h.Count(), h.Sum())
	}
}

// TestSamplerWindows proves epoch windows close on clock advances, a
// jump across several boundaries emits the empty windows in between,
// and FinishRun seals the final partial window exactly once.
func TestSamplerWindows(t *testing.T) {
	o := New(Options{TimeSeries: true, Epoch: 100})
	c := o.Component("gpu.l2.s0")
	occ := uint64(7)
	o.RegisterGauge("wbbuf_occupancy", func() uint64 { return occ })

	o.CacheAccess(10, c, 0x100, 2, false, true)
	o.Msg(20, c, MsgGETS, 0x100, c)
	o.Tick(20, 150) // crosses 100
	occ = 3
	o.CacheAccess(150, c, 0x140, 2, true, true)
	o.Tick(150, 420) // crosses 200, 300, 400
	o.FinishRun(450)
	o.FinishRun(450) // idempotent

	ss := o.Samples()
	if len(ss) != 5 {
		t.Fatalf("samples = %d, want 5", len(ss))
	}
	w0 := ss[0]
	if w0.Start != 0 || w0.End != 100 || w0.GPUL2Accesses != 1 || w0.GPUL2Misses != 1 || w0.Msgs[MsgGETS] != 1 {
		t.Errorf("window 0 = %+v", w0)
	}
	if w0.Gauges[0] != 7 {
		t.Errorf("window 0 gauge = %d, want 7", w0.Gauges[0])
	}
	w1 := ss[1]
	if w1.Start != 100 || w1.End != 200 || w1.GPUL2Accesses != 1 || w1.GPUL2Misses != 0 {
		t.Errorf("window 1 = %+v", w1)
	}
	if w1.Gauges[0] != 3 {
		t.Errorf("window 1 gauge = %d, want 3", w1.Gauges[0])
	}
	for i, s := range ss[2:4] {
		if s.GPUL2Accesses != 0 {
			t.Errorf("empty window %d has accesses", i+2)
		}
	}
	last := ss[4]
	if last.Start != 400 || last.End != 450 {
		t.Errorf("final window = %+v", last)
	}

	var csv bytes.Buffer
	if err := o.WriteSeriesCSV(&csv); err != nil {
		t.Fatalf("WriteSeriesCSV: %v", err)
	}
	rows := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(rows) != 6 {
		t.Fatalf("csv rows = %d, want header + 5", len(rows))
	}
	if !strings.HasPrefix(rows[0], "epoch,start,end,gpu_l2_accesses,gpu_l2_misses,miss_rate,msg_GETS") ||
		!strings.HasSuffix(rows[0], ",wbbuf_occupancy") {
		t.Errorf("csv header = %q", rows[0])
	}
	var js bytes.Buffer
	if err := o.WriteSeriesJSON(&js); err != nil {
		t.Fatalf("WriteSeriesJSON: %v", err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(js.Bytes(), &arr); err != nil {
		t.Fatalf("series JSON invalid: %v", err)
	}
	if len(arr) != 5 {
		t.Errorf("series JSON rows = %d, want 5", len(arr))
	}
}

// TestComponentIDsStable proves registration order fixes IDs and
// re-registration is idempotent.
func TestComponentIDsStable(t *testing.T) {
	o := New(Options{})
	a := o.Component("a")
	b := o.Component("b")
	if a != 0 || b != 1 || o.Component("a") != a {
		t.Errorf("ids: a=%d b=%d again=%d", a, b, o.Component("a"))
	}
	if o.CompName(a) != "a" || o.CompName(99) != "comp99" {
		t.Errorf("CompName: %q %q", o.CompName(a), o.CompName(99))
	}
}
