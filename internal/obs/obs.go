// Package obs is the simulator's observability layer: an event tracer,
// log-bucketed latency histograms and an epoch-windowed interval
// sampler, all recording against simulated time.
//
// The layer is strictly passive. Recording never schedules events,
// never mutates component state and never reads the wall clock, so a
// run produces byte-identical Results whether or not an Observer is
// attached, and two runs of the same (seed, configuration) produce
// byte-identical traces — on any sweep worker count, because each run
// owns a private Observer.
//
// It is also zero-overhead when disabled: every recording method is
// safe on a nil *Observer and returns immediately, so components hold
// a possibly-nil pointer and call unconditionally. The only engine-side
// coupling is sim.Engine's advance hook, which core installs solely
// when the interval sampler is enabled.
package obs

import (
	"fmt"

	"dstore/internal/memsys"
	"dstore/internal/sim"
)

// Clock reads host time in nanoseconds. The determinism contract bans
// wall-clock reads inside internal packages, so the closure is injected
// from cmd/ (which is exempt); internal code only ever calls it for
// host-side phase timing, never for simulation results.
type Clock func() uint64

// Options selects which pillars an Observer records. The zero value
// records nothing (but a nil *Observer is the cheaper way to disable).
type Options struct {
	// Trace enables the ring-buffer event tracer.
	Trace bool
	// TraceCap bounds the ring to the most recent TraceCap events;
	// earlier events are dropped (and counted). Zero means 1<<20.
	TraceCap int
	// Hist enables the latency histograms.
	Hist bool
	// TimeSeries enables the interval sampler. The sampler only
	// advances when core installs the engine advance hook.
	TimeSeries bool
	// Epoch is the sampler window in ticks. Zero means 100000.
	Epoch sim.Tick
}

// CompID identifies a registered component in trace events.
type CompID uint16

// EventKind classifies trace events.
type EventKind uint8

// Trace event kinds.
const (
	// EvMsg is a protocol message send; Arg is the MsgClass, A the
	// destination CompID.
	EvMsg EventKind = iota + 1
	// EvState is a coherence state transition; Arg packs from<<4|to.
	EvState
	// EvPush is a direct-store push leaving the CPU controller; A is
	// the destination CompID.
	EvPush
	// EvAccess is a cache demand access; Arg packs level<<1|hit.
	EvAccess
	// EvLat is a completed-access latency sample; Arg is the HistID, A
	// the duration in ticks.
	EvLat
)

// MsgClass classifies protocol messages for EvMsg events and the
// sampler's per-type message counts. The names mirror the coherence
// package without importing it (obs sits below coherence).
type MsgClass uint8

// Protocol message classes.
const (
	MsgGETS MsgClass = iota
	MsgGETX
	MsgWB
	MsgRemoteLoad
	MsgProbe
	MsgAck
	MsgData
	MsgGrant
	MsgUnblock
	MsgPutx
	NumMsgClasses
)

// String names the message class.
func (m MsgClass) String() string {
	switch m {
	case MsgGETS:
		return "GETS"
	case MsgGETX:
		return "GETX"
	case MsgWB:
		return "WB"
	case MsgRemoteLoad:
		return "RemoteLoad"
	case MsgProbe:
		return "Probe"
	case MsgAck:
		return "Ack"
	case MsgData:
		return "Data"
	case MsgGrant:
		return "Grant"
	case MsgUnblock:
		return "Unblock"
	case MsgPutx:
		return "PUTX"
	default:
		return fmt.Sprintf("MsgClass(%d)", uint8(m))
	}
}

// HistID names one of the built-in latency histograms.
type HistID uint8

// Built-in histograms.
const (
	// HistGPULoadLat is the GPU global-load latency: L1 hits at the hit
	// latency, misses from fill issue to data arrival. Direct store's
	// headline claim — the first-access miss latency disappears — shows
	// up here as mass moving out of the top buckets.
	HistGPULoadLat HistID = iota
	// HistCPUStoreLat is the CPU store completion latency (issue to
	// coherence completion), the cost direct store pays on the CPU side.
	HistCPUStoreLat
	// HistPushToUse is the push-to-first-use distance: ticks between a
	// pushed line installing in a GPU L2 slice and the first demand
	// access touching it. Short distances mean the push arrived just in
	// time; very long ones mean it aged in the cache.
	HistPushToUse
	// NumHists is the histogram count.
	NumHists
)

// String names the histogram.
func (h HistID) String() string {
	switch h {
	case HistGPULoadLat:
		return "gpu_load_latency"
	case HistCPUStoreLat:
		return "cpu_store_latency"
	case HistPushToUse:
		return "push_to_first_use"
	default:
		return fmt.Sprintf("HistID(%d)", uint8(h))
	}
}

// Event is one fixed-size trace record. The payload fields are packed
// so the ring buffer stays allocation-free after construction.
type Event struct {
	When sim.Tick
	Addr memsys.Addr
	// A is kind-specific: destination CompID for EvMsg/EvPush, the
	// duration for EvLat.
	A    uint64
	Kind EventKind
	// Arg is kind-specific: MsgClass, from<<4|to states, level<<1|hit,
	// or HistID.
	Arg  uint8
	Comp CompID
}

// gauge is one registered occupancy probe, sampled at epoch boundaries.
type gauge struct {
	name  string
	probe func() uint64
}

// Observer records trace events, histogram observations and interval
// samples for one simulated system. It is not safe for concurrent use;
// the event engine serialises all recording, and each run owns a
// private Observer (sweeps attach one per job).
type Observer struct {
	opt Options

	// Component registry.
	comps   []string
	compIDs map[string]CompID

	// Trace ring: ring holds the most recent events; once full, head is
	// the next slot to overwrite (= the oldest event).
	ring    []Event
	head    int
	wrapped bool
	dropped uint64

	// State namer injected by the wiring layer (coherence's StateName),
	// so trace output uses protocol names without an import cycle.
	stateName func(uint8) string

	hists [NumHists]*Histogram
	// pushTick remembers when each pushed line installed, for the
	// push-to-first-use distance.
	pushTick map[memsys.Addr]sim.Tick

	sampler sampler
	gauges  []gauge
}

// New builds an Observer for one run.
func New(opt Options) *Observer {
	if opt.TraceCap <= 0 {
		opt.TraceCap = 1 << 20
	}
	if opt.Epoch <= 0 {
		opt.Epoch = 100_000
	}
	o := &Observer{opt: opt, compIDs: make(map[string]CompID)}
	if opt.Trace {
		o.ring = make([]Event, 0, opt.TraceCap)
	}
	if opt.Hist {
		for i := range o.hists {
			o.hists[i] = NewHistogram(HistID(i).String())
		}
		o.pushTick = make(map[memsys.Addr]sim.Tick)
	}
	if opt.TimeSeries {
		o.sampler.epoch = opt.Epoch
	}
	return o
}

// Options returns the observer's configuration (nil-safe; a nil
// observer reports the zero Options).
func (o *Observer) Options() Options {
	if o == nil {
		return Options{}
	}
	return o.opt
}

// Component registers (or resolves) a component name and returns its
// stable ID. IDs are assigned in registration order, so a fixed wiring
// order yields identical IDs run-to-run. Nil-safe: returns 0.
func (o *Observer) Component(name string) CompID {
	if o == nil {
		return 0
	}
	if id, ok := o.compIDs[name]; ok {
		return id
	}
	id := CompID(len(o.comps))
	o.comps = append(o.comps, name)
	o.compIDs[name] = id
	return id
}

// CompName resolves an ID back to its name (nil-safe).
func (o *Observer) CompName(id CompID) string {
	if o == nil || int(id) >= len(o.comps) {
		return fmt.Sprintf("comp%d", id)
	}
	return o.comps[id]
}

// SetStateNamer injects the protocol-state naming function used by the
// trace exporters (nil-safe).
func (o *Observer) SetStateNamer(f func(uint8) string) {
	if o == nil {
		return
	}
	o.stateName = f
}

// stateStr names a protocol state via the injected namer.
func (o *Observer) stateStr(s uint8) string {
	if o.stateName != nil {
		return o.stateName(s)
	}
	return fmt.Sprintf("S%d", s)
}

// record appends to the ring, overwriting the oldest event once full.
func (o *Observer) record(ev Event) {
	if cap(o.ring) == 0 {
		return
	}
	if len(o.ring) < cap(o.ring) {
		o.ring = append(o.ring, ev)
		return
	}
	o.ring[o.head] = ev
	o.head++
	if o.head == len(o.ring) {
		o.head = 0
	}
	o.wrapped = true
	o.dropped++
}

// Events returns the recorded events in chronological order (oldest
// first). Nil-safe: returns nil.
func (o *Observer) Events() []Event {
	if o == nil || len(o.ring) == 0 {
		return nil
	}
	if !o.wrapped {
		out := make([]Event, len(o.ring))
		copy(out, o.ring)
		return out
	}
	out := make([]Event, 0, len(o.ring))
	out = append(out, o.ring[o.head:]...)
	out = append(out, o.ring[:o.head]...)
	return out
}

// Dropped returns how many events the ring overwrote (nil-safe).
func (o *Observer) Dropped() uint64 {
	if o == nil {
		return 0
	}
	return o.dropped
}

// Msg records a protocol message send and counts it for the sampler.
// Nil-safe.
func (o *Observer) Msg(now sim.Tick, from CompID, class MsgClass, addr memsys.Addr, to CompID) {
	if o == nil {
		return
	}
	if o.opt.TimeSeries && class < NumMsgClasses {
		o.sampler.cur.Msgs[class]++
	}
	if o.opt.Trace {
		o.record(Event{When: now, Kind: EvMsg, Comp: from, Arg: uint8(class), Addr: addr, A: uint64(to)})
	}
}

// StateChange records a coherence state transition on a line. Nil-safe.
func (o *Observer) StateChange(now sim.Tick, comp CompID, addr memsys.Addr, from, to uint8) {
	if o == nil || !o.opt.Trace {
		return
	}
	o.record(Event{When: now, Kind: EvState, Comp: comp, Arg: from<<4 | to&0xf, Addr: addr})
}

// Push records a direct-store push leaving the CPU controller. Nil-safe.
func (o *Observer) Push(now sim.Tick, from CompID, addr memsys.Addr, to CompID) {
	if o == nil || !o.opt.Trace {
		return
	}
	o.record(Event{When: now, Kind: EvPush, Comp: from, Addr: addr, A: uint64(to)})
}

// CacheAccess records a demand cache access (level 1 or 2) and, for GPU
// L2 slices (gpu=true), feeds the sampler's miss-rate window and the
// push-to-first-use histogram. Nil-safe.
func (o *Observer) CacheAccess(now sim.Tick, comp CompID, addr memsys.Addr, level uint8, hit, gpu bool) {
	if o == nil {
		return
	}
	if gpu && level == 2 {
		if o.opt.TimeSeries {
			o.sampler.cur.GPUL2Accesses++
			if !hit {
				o.sampler.cur.GPUL2Misses++
			}
		}
		if o.pushTick != nil {
			line := memsys.LineAlign(addr)
			if t0, ok := o.pushTick[line]; ok {
				delete(o.pushTick, line)
				o.hists[HistPushToUse].Observe(uint64(now - t0))
			}
		}
	}
	if o.opt.Trace {
		h := uint8(0)
		if hit {
			h = 1
		}
		o.record(Event{When: now, Kind: EvAccess, Comp: comp, Arg: level<<1 | h, Addr: addr})
	}
}

// PushInstalled marks a pushed line landing in a GPU L2 slice, starting
// its push-to-first-use clock. Nil-safe.
func (o *Observer) PushInstalled(now sim.Tick, addr memsys.Addr) {
	if o == nil || o.pushTick == nil {
		return
	}
	o.pushTick[memsys.LineAlign(addr)] = now
}

// Latency records a completed-access duration into histogram id and the
// trace. Nil-safe.
func (o *Observer) Latency(now sim.Tick, comp CompID, id HistID, addr memsys.Addr, d sim.Tick) {
	if o == nil {
		return
	}
	if o.opt.Hist && id < NumHists {
		o.hists[id].Observe(uint64(d))
	}
	if o.opt.Trace {
		o.record(Event{When: now, Kind: EvLat, Comp: comp, Arg: uint8(id), Addr: addr, A: uint64(d)})
	}
}

// Hist returns the built-in histogram for id, or nil when histograms
// are disabled. Nil-safe.
func (o *Observer) Hist(id HistID) *Histogram {
	if o == nil || id >= NumHists {
		return nil
	}
	return o.hists[id]
}

// RegisterGauge adds an occupancy probe sampled at every epoch
// boundary, in registration order. Nil-safe.
func (o *Observer) RegisterGauge(name string, probe func() uint64) {
	if o == nil || !o.opt.TimeSeries {
		return
	}
	o.gauges = append(o.gauges, gauge{name: name, probe: probe})
}
