package obs

import (
	"math"
	"strings"
	"testing"
)

// TestHistogramMergeEdges covers the merge edges the serve daemon's
// per-job aggregation actually hits: empty sources, empty (including
// zero-value) destinations, single-bucket folds, and the overflow
// bucket for values ≥ 2^63.
func TestHistogramMergeEdges(t *testing.T) {
	obsv := func(vs ...uint64) *Histogram {
		h := NewHistogram("h")
		for _, v := range vs {
			h.Observe(v)
		}
		return h
	}
	tests := []struct {
		name        string
		dst, src    *Histogram
		count, sum  uint64
		min, max    uint64
		wantBuckets int
	}{
		{name: "zero count source is a no-op", dst: obsv(5, 9), src: NewHistogram("h"),
			count: 2, sum: 14, min: 5, max: 9, wantBuckets: 2},
		{name: "empty destination adopts source", dst: NewHistogram("h"), src: obsv(5, 9),
			count: 2, sum: 14, min: 5, max: 9, wantBuckets: 2},
		{name: "zero-value destination adopts source min", dst: &Histogram{}, src: obsv(5, 9),
			count: 2, sum: 14, min: 5, max: 9, wantBuckets: 2},
		{name: "single bucket merges into same bucket", dst: obsv(4), src: obsv(5),
			count: 2, sum: 9, min: 4, max: 5, wantBuckets: 1},
		{name: "max bucket merge", dst: obsv(1 << 63), src: obsv(math.MaxUint64),
			// sum wraps mod 2^64: 2^63 + (2^64-1) ≡ 2^63 - 1
			count: 2, sum: 1<<63 - 1, min: 1 << 63, max: math.MaxUint64, wantBuckets: 1},
		{name: "min does not regress across merges", dst: obsv(3), src: obsv(100),
			count: 2, sum: 103, min: 3, max: 100, wantBuckets: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tt.dst.Merge(tt.src)
			if got := tt.dst.Count(); got != tt.count {
				t.Fatalf("count = %d, want %d", got, tt.count)
			}
			if got := tt.dst.Sum(); got != tt.sum {
				t.Fatalf("sum = %d, want %d", got, tt.sum)
			}
			if got := tt.dst.Min(); got != tt.min {
				t.Fatalf("min = %d, want %d", got, tt.min)
			}
			if got := tt.dst.Max(); got != tt.max {
				t.Fatalf("max = %d, want %d", got, tt.max)
			}
			if got := len(tt.dst.Buckets()); got != tt.wantBuckets {
				t.Fatalf("buckets = %d, want %d", got, tt.wantBuckets)
			}
		})
	}
}

// TestZeroValueHistogramObserve pins the zero-value min fix: a
// Histogram{} (no NewHistogram sentinel) must still track min.
func TestZeroValueHistogramObserve(t *testing.T) {
	var h Histogram
	h.Observe(7)
	h.Observe(3)
	h.Observe(9)
	if h.Min() != 3 || h.Max() != 9 || h.Count() != 3 {
		t.Fatalf("zero-value histogram min/max/count = %d/%d/%d, want 3/9/3", h.Min(), h.Max(), h.Count())
	}
}

// TestWriteProm covers the Prometheus renderer edges: empty
// histograms, the cumulative le series, and the overflow bucket
// folding into +Inf instead of a finite 2^64-1 bound.
func TestWriteProm(t *testing.T) {
	tests := []struct {
		name    string
		h       *Histogram
		want    []string
		notWant []string
	}{
		{
			name: "empty",
			h:    NewHistogram("h"),
			want: []string{
				"# TYPE m histogram\n",
				`m_bucket{le="+Inf"} 0` + "\n",
				"m_sum 0\nm_count 0\n",
			},
		},
		{
			name: "nil",
			h:    nil,
			want: []string{`m_bucket{le="+Inf"} 0` + "\n"},
		},
		{
			name: "cumulative buckets",
			h: func() *Histogram {
				h := NewHistogram("h")
				h.Observe(0) // bucket [0,0]
				h.Observe(3) // bucket [2,3]
				h.Observe(3)
				return h
			}(),
			want: []string{
				`m_bucket{le="0"} 1` + "\n",
				`m_bucket{le="3"} 3` + "\n",
				`m_bucket{le="+Inf"} 3` + "\n",
				"m_sum 6\nm_count 3\n",
			},
		},
		{
			name: "overflow bucket folds into +Inf",
			h: func() *Histogram {
				h := NewHistogram("h")
				h.Observe(5)
				h.Observe(math.MaxUint64)
				return h
			}(),
			want: []string{
				`m_bucket{le="7"} 1` + "\n",
				`m_bucket{le="+Inf"} 2` + "\n",
			},
			notWant: []string{"18446744073709551615"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var b strings.Builder
			tt.h.WriteProm(&b, "m")
			out := b.String()
			for _, w := range tt.want {
				if !strings.Contains(out, w) {
					t.Fatalf("output missing %q:\n%s", w, out)
				}
			}
			for _, nw := range tt.notWant {
				if strings.Contains(out, nw) {
					t.Fatalf("output contains %q:\n%s", nw, out)
				}
			}
		})
	}
}
