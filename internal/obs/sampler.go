package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"dstore/internal/sim"
)

// Sample is one closed epoch window [Start, End) of the interval time
// series. Counter fields count events whose tick fell inside the
// window; Gauges holds the registered occupancy probes read at the
// window's closing boundary, in registration order.
type Sample struct {
	Epoch         uint64
	Start, End    sim.Tick
	GPUL2Accesses uint64
	GPUL2Misses   uint64
	Msgs          [NumMsgClasses]uint64
	Gauges        []uint64
}

// MissRate returns the window's GPU L2 miss rate (0 when idle).
func (s Sample) MissRate() float64 {
	if s.GPUL2Accesses == 0 {
		return 0
	}
	return float64(s.GPUL2Misses) / float64(s.GPUL2Accesses)
}

// sampler accumulates the current window and the closed series. Window
// boundaries fall on clock advances observed through the engine's
// advance hook, so sampling schedules no events of its own and a
// sampled run executes the identical event sequence as an unsampled
// one.
type sampler struct {
	epoch    sim.Tick
	cur      Sample
	out      []Sample
	finished bool
}

// Tick is the engine advance-hook entry point: it closes every epoch
// window the clock is about to cross. The hook fires before the engine
// publishes the new tick, so all events recorded so far are at ticks
// less than now and the closing gauge reads see pre-advance state.
// Nil-safe.
func (o *Observer) Tick(prev, now sim.Tick) {
	if o == nil || !o.opt.TimeSeries || o.sampler.finished {
		return
	}
	s := &o.sampler
	for b := s.cur.Start + s.epoch; now >= b; b += s.epoch {
		o.closeWindow(b)
	}
}

// FinishRun closes the final (possibly partial) window at the end-of-
// run tick. Further recording is ignored; calling it again is a no-op.
// Nil-safe.
func (o *Observer) FinishRun(now sim.Tick) {
	if o == nil || !o.opt.TimeSeries || o.sampler.finished {
		return
	}
	o.closeWindow(now)
	o.sampler.finished = true
}

// closeWindow seals the current window at end, reads the gauges, and
// opens the next window.
func (o *Observer) closeWindow(end sim.Tick) {
	s := &o.sampler
	s.cur.End = end
	if len(o.gauges) > 0 {
		s.cur.Gauges = make([]uint64, len(o.gauges))
		for i, g := range o.gauges {
			s.cur.Gauges[i] = g.probe()
		}
	}
	s.out = append(s.out, s.cur)
	s.cur = Sample{Epoch: s.cur.Epoch + 1, Start: end}
}

// Samples returns the closed windows in order (nil-safe).
func (o *Observer) Samples() []Sample {
	if o == nil {
		return nil
	}
	return o.sampler.out
}

// GaugeNames returns the registered gauge names in registration order
// (nil-safe).
func (o *Observer) GaugeNames() []string {
	if o == nil {
		return nil
	}
	names := make([]string, len(o.gauges))
	for i, g := range o.gauges {
		names[i] = g.name
	}
	return names
}

// WriteSeriesCSV writes the time series as CSV: one header row, one row
// per closed window, message counts as msg_<TYPE> columns and gauges
// under their registered names. Nil-safe: writes the fixed header
// columns only.
func (o *Observer) WriteSeriesCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "epoch,start,end,gpu_l2_accesses,gpu_l2_misses,miss_rate"); err != nil {
		return err
	}
	for c := MsgClass(0); c < NumMsgClasses; c++ {
		if _, err := fmt.Fprintf(w, ",msg_%s", c); err != nil {
			return err
		}
	}
	if o != nil {
		for _, g := range o.gauges {
			if _, err := fmt.Fprintf(w, ",%s", g.name); err != nil {
				return err
			}
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, s := range o.Samples() {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%.6f",
			s.Epoch, uint64(s.Start), uint64(s.End),
			s.GPUL2Accesses, s.GPUL2Misses, s.MissRate()); err != nil {
			return err
		}
		for _, n := range s.Msgs {
			if _, err := fmt.Fprintf(w, ",%d", n); err != nil {
				return err
			}
		}
		for _, v := range s.Gauges {
			if _, err := fmt.Fprintf(w, ",%d", v); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// seriesRow is the JSON wire form of one Sample; maps marshal with
// sorted keys, so the output is deterministic.
type seriesRow struct {
	Epoch    uint64            `json:"epoch"`
	Start    uint64            `json:"start"`
	End      uint64            `json:"end"`
	Accesses uint64            `json:"gpu_l2_accesses"`
	Misses   uint64            `json:"gpu_l2_misses"`
	MissRate float64           `json:"miss_rate"`
	Msgs     map[string]uint64 `json:"msgs"`
	Gauges   map[string]uint64 `json:"gauges,omitempty"`
}

// WriteSeriesJSON writes the time series as a JSON array of window
// objects. Nil-safe: writes an empty array.
func (o *Observer) WriteSeriesJSON(w io.Writer) error {
	rows := []seriesRow{}
	for _, s := range o.Samples() {
		row := seriesRow{
			Epoch: s.Epoch, Start: uint64(s.Start), End: uint64(s.End),
			Accesses: s.GPUL2Accesses, Misses: s.GPUL2Misses,
			MissRate: s.MissRate(),
			Msgs:     make(map[string]uint64, NumMsgClasses),
		}
		for c := MsgClass(0); c < NumMsgClasses; c++ {
			row.Msgs[c.String()] = s.Msgs[c]
		}
		if len(s.Gauges) > 0 {
			row.Gauges = make(map[string]uint64, len(s.Gauges))
			for i, v := range s.Gauges {
				row.Gauges[o.gauges[i].name] = v
			}
		}
		rows = append(rows, row)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(rows)
}
