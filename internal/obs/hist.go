package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"strings"
)

// Histogram is a log2-bucketed latency histogram: observation v lands
// in bucket bits.Len64(v), so bucket 0 holds only zero, bucket i holds
// [2^(i-1), 2^i). Power-of-two buckets cover the full tick range in 65
// fixed counters with no configuration, and the geometric resolution
// matches what the latency distributions actually need: telling a
// 20-tick L1 hit from a 600-tick DRAM miss, not a 601-tick one.
//
// All methods are safe on a nil *Histogram (no-ops / zeros), so callers
// can use Observer.Hist(id) unconditionally.
type Histogram struct {
	name    string
	buckets [65]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// NewHistogram returns an empty histogram with the given name.
func NewHistogram(name string) *Histogram {
	return &Histogram{name: name, min: math.MaxUint64}
}

// Name returns the histogram's name (nil-safe).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one value (nil-safe).
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)]++
	h.count++
	h.sum += v
	// The first observation seeds min unconditionally: a zero-value
	// Histogram (not built by NewHistogram) starts with min == 0, and
	// `v < 0` would never replace it.
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations (nil-safe).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observations (nil-safe).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the smallest observation, or 0 when empty (nil-safe).
func (h *Histogram) Min() uint64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (nil-safe).
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean, or 0 when empty (nil-safe).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Bucket is one non-empty histogram bucket covering [Lo, Hi].
type Bucket struct {
	Lo, Hi uint64
	Count  uint64
}

// bucketBounds returns the inclusive [lo, hi] range of bucket i.
func bucketBounds(i int) (uint64, uint64) {
	switch {
	case i == 0:
		return 0, 0
	case i >= 64:
		return 1 << 63, math.MaxUint64
	default:
		return 1 << (i - 1), 1<<i - 1
	}
}

// Buckets returns the non-empty buckets in ascending range order
// (nil-safe).
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	var out []Bucket
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}

// Merge folds other into h (nil-safe on both sides). Used by the serve
// daemon to aggregate per-run histograms into process totals.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil || other.count == 0 {
		return
	}
	// An empty destination adopts other's min outright: a zero-value
	// Histogram starts with min == 0 (not the NewHistogram sentinel),
	// so the comparison alone would pin min at 0 forever.
	wasEmpty := h.count == 0
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if wasEmpty || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// WriteProm renders the histogram as one Prometheus histogram family:
// cumulative le-labelled buckets (upper bounds from the log2 bucket
// ranges), the +Inf catch-all, then _sum and _count (nil-safe — a nil
// or empty histogram renders the empty family: +Inf 0, _sum 0,
// _count 0). The overflow bucket (values ≥ 2^63) has no finite upper
// bound, so its observations appear only under +Inf rather than as a
// spurious le="18446744073709551615" series.
func (h *Histogram) WriteProm(w io.Writer, name string) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	for _, bk := range h.Buckets() {
		if bk.Hi == math.MaxUint64 {
			break // overflow bucket: counted by +Inf below
		}
		cum += bk.Count
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, bk.Hi, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
	fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}

// WriteText renders the histogram as an aligned text table with scaled
// count bars, in ascending bucket order (nil-safe).
func (h *Histogram) WriteText(w io.Writer) {
	if h == nil {
		return
	}
	fmt.Fprintf(w, "%s: count=%d mean=%.1f min=%d max=%d\n",
		h.name, h.Count(), h.Mean(), h.Min(), h.Max())
	bs := h.Buckets()
	if len(bs) == 0 {
		return
	}
	var peak uint64
	for _, b := range bs {
		if b.Count > peak {
			peak = b.Count
		}
	}
	const barWidth = 40
	for _, b := range bs {
		n := int(b.Count * barWidth / peak)
		fmt.Fprintf(w, "  [%10d, %10d] %10d %s\n", b.Lo, b.Hi, b.Count, strings.Repeat("#", n))
	}
}
