package dtrace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the metrics-federation half of the measurement plane:
// a minimal parser for the Prometheus text exposition subset the
// daemons emit, and a renderer that merges N workers' scrapes into one
// coordinator /metrics document — every worker sample re-labelled with
// worker="<url>", plus an unlabelled fleet-level sum per series.

// Sample is one parsed exposition sample.
type Sample struct {
	// Name is the sample name (histogram children keep their _bucket /
	// _sum / _count suffix).
	Name string
	// Labels is the raw label body without braces ("" when absent),
	// e.g. `le="15"`.
	Labels string
	// Value is the parsed sample value.
	Value float64
}

// Metrics is one parsed scrape.
type Metrics struct {
	// Types maps family name to declared type (counter, gauge,
	// histogram, untyped).
	Types map[string]string
	// Samples holds every sample in document order.
	Samples []Sample
}

// Parse reads a Prometheus text exposition document. Unparseable
// sample lines are an error — the fleet only scrapes its own daemons,
// so a malformed line is a bug, not foreign input to tolerate.
func Parse(text string) (*Metrics, error) {
	m := &Metrics{Types: make(map[string]string)}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				m.Types[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: %w", ln+1, err)
		}
		m.Samples = append(m.Samples, s)
	}
	return m, nil
}

// parseSample splits `name{labels} value` or `name value`.
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return s, fmt.Errorf("unbalanced braces in %q", line)
		}
		s.Name = line[:i]
		s.Labels = line[i+1 : j]
		rest = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return s, fmt.Errorf("want `name value`, got %q", line)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// familyOf maps a sample name to its declaring family: histogram
// children (_bucket/_sum/_count with a histogram TYPE for the stem)
// fold into the stem, everything else is its own family.
func familyOf(types map[string]string, name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		stem, ok := strings.CutSuffix(name, suffix)
		if ok && types[stem] == "histogram" {
			return stem
		}
	}
	return name
}

// WorkerMetrics is one worker's parsed scrape tagged with the label
// value its samples federate under.
type WorkerMetrics struct {
	Worker string
	M      *Metrics
}

// WriteFederated renders the merged fleet view of N worker scrapes.
// For every family (sorted by name): the TYPE line, each worker's
// samples re-labelled with worker="<url>" in caller order, then one
// unlabelled fleet-level sum per (name, labels) series, sorted. The
// caller orders workers (the coordinator sorts by URL), so for a fixed
// set of scrapes the output is deterministic.
func WriteFederated(w io.Writer, workers []WorkerMetrics) {
	type series struct {
		name, labels string
		sum          float64
	}
	families := make(map[string]string)   // family -> type
	byFamily := make(map[string][]string) // family -> rendered worker lines
	aggOrder := make(map[string][]string) // family -> agg keys in order
	agg := make(map[string]*series)       // "name\xfflabels" -> sum
	for _, wm := range workers {
		if wm.M == nil {
			continue
		}
		for name, typ := range wm.M.Types { //dstore:allow-maprange destination is a map keyed identically
			if _, ok := families[name]; !ok {
				families[name] = typ
			}
		}
		for _, s := range wm.M.Samples {
			fam := familyOf(wm.M.Types, s.Name)
			if _, ok := families[fam]; !ok {
				families[fam] = "untyped"
			}
			byFamily[fam] = append(byFamily[fam],
				fmt.Sprintf("%s{%s} %s", s.Name, joinLabels(s.Labels, "worker", wm.Worker), formatValue(s.Value)))
			key := s.Name + "\xff" + s.Labels
			se := agg[key]
			if se == nil {
				se = &series{name: s.Name, labels: s.Labels}
				agg[key] = se
				aggOrder[fam] = append(aggOrder[fam], key)
			}
			se.sum += s.Value
		}
	}
	names := make([]string, 0, len(families))
	for name := range families { //dstore:allow-maprange sorted before use
		names = append(names, name)
	}
	sort.Strings(names)
	for _, fam := range names {
		if len(byFamily[fam]) == 0 {
			continue
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", fam, families[fam])
		for _, line := range byFamily[fam] {
			fmt.Fprintln(w, line)
		}
		keys := append([]string(nil), aggOrder[fam]...)
		sort.Strings(keys)
		for _, key := range keys {
			se := agg[key]
			if se.labels == "" {
				fmt.Fprintf(w, "%s %s\n", se.name, formatValue(se.sum))
			} else {
				fmt.Fprintf(w, "%s{%s} %s\n", se.name, se.labels, formatValue(se.sum))
			}
		}
	}
}

// joinLabels appends one label pair to a raw label body.
func joinLabels(labels, key, value string) string {
	pair := key + `="` + escapeLabel(value) + `"`
	if labels == "" {
		return pair
	}
	return labels + "," + pair
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders integral values without an exponent (counters
// stay exact) and everything else in compact float form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1<<53 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
