package dtrace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Dump is one process's spans for one trace — the wire form workers
// serve from GET /v1/traces/{tid} and the coordinator stitches. Spans
// are in export order and Seq is each span's position in it, so a
// re-fetched dump never renumbers (the ring only ever appends spans
// that sort into place; replayed reads are pure).
type Dump struct {
	// Process names the process row ("coordinator", "worker-0", ...).
	Process string `json:"process"`
	// Trace is the 16-hex-digit trace ID.
	Trace string `json:"trace"`
	// Dropped counts ring overwrites in the source recorder — a
	// non-zero value means the trace may be incomplete.
	Dropped uint64 `json:"dropped,omitempty"`
	// Spans holds the retained spans in export order.
	Spans []DumpSpan `json:"spans"`
}

// DumpSpan is the JSON form of one Span.
type DumpSpan struct {
	Seq   int    `json:"seq"`
	Job   int64  `json:"job"` // -1 when the span is not tied to one job
	Kind  string `json:"kind"`
	Arg   uint16 `json:"arg"`
	Flags uint8  `json:"flags"`
	Start uint64 `json:"start"`
	Dur   uint64 `json:"dur"`
}

// DumpTrace exports the recorder's spans for one trace (nil-safe).
func (r *Recorder) DumpTrace(trace uint64) Dump {
	spans := r.Spans(trace)
	_, dropped := r.Counts()
	d := Dump{
		Process: r.Process(),
		Trace:   FormatTraceID(trace),
		Dropped: dropped,
		Spans:   make([]DumpSpan, len(spans)),
	}
	for i, s := range spans {
		job := int64(s.Job)
		if s.Job == JobNone {
			job = -1
		}
		d.Spans[i] = DumpSpan{
			Seq:   i,
			Job:   job,
			Kind:  s.Kind.Name(),
			Arg:   s.Arg,
			Flags: s.Flags,
			Start: s.Start,
			Dur:   s.Dur,
		}
	}
	return d
}

// chromeEvent is one Chrome trace-event record. Field order is the
// serialization order, which keeps stitched output byte-stable.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   uint64            `json:"ts"`
	Dur  uint64            `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// Stitch merges per-process dumps into one Chrome trace-event JSON
// document: one named process row per node (metadata records first),
// then every span as a complete ("X") event with tid = job index.
// Processes render sorted by name and spans in dump order, so the
// output is byte-deterministic given deterministic dumps — the
// acceptance bar for trace exports. Timestamps pass through in the
// recorder clock's unit (nanoseconds under the daemons' clock).
func Stitch(trace uint64, dumps []Dump) ([]byte, error) {
	sorted := make([]Dump, len(dumps))
	copy(sorted, dumps)
	// Stable: two processes configured with the same name keep the
	// caller's (deterministic) dump order instead of an arbitrary one.
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Process < sorted[j].Process })

	var events []chromeEvent
	for pid, d := range sorted {
		events = append(events, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  pid,
			Args: map[string]string{"name": d.Process},
		})
	}
	var dropped uint64
	for pid, d := range sorted {
		dropped += d.Dropped
		for _, s := range d.Spans {
			ev := chromeEvent{
				Name: s.Kind,
				Cat:  "dtrace",
				Ph:   "X",
				Ts:   s.Start,
				Dur:  s.Dur,
				Pid:  pid,
				Tid:  s.Job,
				Args: map[string]string{
					"arg":   fmt.Sprintf("%d", s.Arg),
					"flags": fmt.Sprintf("%d", s.Flags),
				},
			}
			events = append(events, ev)
		}
	}

	var b bytes.Buffer
	b.WriteString("{\"traceEvents\":[")
	for i, ev := range events {
		if i > 0 {
			b.WriteByte(',')
		}
		enc, err := json.Marshal(ev)
		if err != nil {
			return nil, err
		}
		b.Write(enc)
	}
	fmt.Fprintf(&b, "],\"otherData\":{\"dropped\":\"%d\",\"trace\":\"%s\"}}", dropped, FormatTraceID(trace))
	b.WriteByte('\n')
	return b.Bytes(), nil
}
