// Package dtrace is the fleet's distributed-tracing layer: a
// deterministic, zero-dependency span recorder threaded through the
// coordinator and every worker. It reuses the 32-byte packed
// ring-buffer design the single-process observer proved (overwrite
// oldest, count drops, nil-safe everywhere) and adds the two things a
// fleet needs on top: a trace context that propagates across process
// boundaries in HTTP headers, and exporters that stitch the per-process
// rings into one multi-process Chrome trace.
//
// Determinism contract: the package never reads the wall clock. Time
// comes from an injected Clock (the daemons inject time.Now at the cmd
// layer; tests inject stepped or constant clocks), and when no clock is
// given the recorder falls back to a per-recorder monotonic sequence —
// orderings stay meaningful, absolute values do not. Exported span
// lists are sorted by value, not by arrival, so concurrent schedules
// that record the same work produce byte-identical exports.
package dtrace

import (
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// SpanKind identifies one lifecycle stage of a job or sweep.
type SpanKind uint8

// Span kinds cover the full dispatch lifecycle, coordinator and worker
// side. The set is closed: exporters render names from this table and
// the spanbalance lint keys off the Begin/End pairing, so new stages
// must be added here rather than ad hoc.
const (
	// SpanExpand is the coordinator expanding a sweep matrix into jobs.
	SpanExpand SpanKind = iota
	// SpanDispatch is one coordinator dispatch attempt against one
	// worker (Arg carries the attempt number within the job).
	SpanDispatch
	// SpanBackoff is the coordinator sleeping between retry rounds
	// (Arg carries the round number).
	SpanBackoff
	// SpanQueueWait is time a job spent queued before execution.
	SpanQueueWait
	// SpanCacheLookup is a worker result-cache probe (FlagHit on hit).
	SpanCacheLookup
	// SpanSnapshot is a worker snapshot-cache probe (FlagHit when the
	// run resumed from a warm prefix).
	SpanSnapshot
	// SpanSimulate is the simulation run itself.
	SpanSimulate
	// SpanVerify is an end-to-end result digest check (FlagCorrupt on
	// mismatch).
	SpanVerify
	// SpanJournal is one sweep-journal append.
	SpanJournal

	// NumSpanKinds bounds the kind space.
	NumSpanKinds
)

// kindNames renders span kinds in exports; indexed by SpanKind.
var kindNames = [NumSpanKinds]string{
	"expand", "dispatch", "backoff", "queue-wait", "cache-lookup",
	"snapshot", "simulate", "verify", "journal-append",
}

// Name returns the export name of the kind, or "unknown".
func (k SpanKind) Name() string {
	if k >= NumSpanKinds {
		return "unknown"
	}
	return kindNames[k]
}

// KindByName is the inverse of SpanKind.Name; ok is false for names
// outside the taxonomy.
func KindByName(name string) (SpanKind, bool) {
	for k := SpanKind(0); k < NumSpanKinds; k++ {
		if kindNames[k] == name {
			return k, true
		}
	}
	return 0, false
}

// Span outcome flag bits.
const (
	// FlagHit marks a cache/snapshot lookup that hit.
	FlagHit uint8 = 1 << iota
	// FlagErr marks a stage that failed.
	FlagErr
	// FlagCorrupt marks a digest verification mismatch.
	FlagCorrupt
	// FlagCached marks a dispatch answered from the worker's cache.
	FlagCached
)

// JobNone is the Job value for spans not tied to one job (for example
// sweep expansion). Exports render it as tid -1.
const JobNone = ^uint32(0)

// Span is one recorded lifecycle stage, packed to 32 bytes so a
// 16k-span ring costs 512 KiB and recording is one copy, no pointers.
// Job is the job's index in sweep expansion order (sweeps are capped at
// 1<<16 jobs, so it fits uint32 with room for JobNone); Arg is
// kind-specific (attempt or round number); Start and Dur are in the
// recorder clock's unit (nanoseconds under the daemons' injected
// wall clock).
type Span struct {
	Trace uint64
	Start uint64
	Dur   uint64
	Job   uint32
	Kind  SpanKind
	Flags uint8
	Arg   uint16
}

// less orders spans by value — the export order. Trace first so
// multi-trace dumps group; record order never matters, which is what
// makes concurrent schedules export byte-identically.
func (s Span) less(o Span) bool {
	if s.Trace != o.Trace {
		return s.Trace < o.Trace
	}
	if s.Job != o.Job {
		return s.Job < o.Job
	}
	if s.Kind != o.Kind {
		return s.Kind < o.Kind
	}
	if s.Arg != o.Arg {
		return s.Arg < o.Arg
	}
	if s.Start != o.Start {
		return s.Start < o.Start
	}
	if s.Dur != o.Dur {
		return s.Dur < o.Dur
	}
	return s.Flags < o.Flags
}

// Clock supplies span timestamps. The daemons inject a wall clock at
// the cmd layer (internal packages stay wall-free); tests inject
// stepped or constant clocks to pin exact output bytes.
type Clock func() uint64

// Options configures a Recorder.
type Options struct {
	// Cap bounds retained spans; the ring overwrites oldest beyond it.
	// Defaults to 16384.
	Cap int
	// Clock supplies timestamps. Nil falls back to a per-recorder
	// monotonic sequence: orderings hold, absolute values are call
	// counts.
	Clock Clock
	// Process names this recorder's process row in stitched exports
	// ("coordinator", "worker-0", ...). Defaults to "dstore".
	Process string
}

// Recorder is a bounded, concurrency-safe span ring. All methods are
// safe on a nil *Recorder (no-ops / zeros), so call sites need no
// tracing-enabled branches.
type Recorder struct {
	clock   Clock
	process string

	step atomic.Uint64 // fallback clock
	open atomic.Int64  // spans begun but not yet ended

	mu       sync.Mutex
	spans    []Span
	head     int
	wrapped  bool
	recorded uint64
	dropped  uint64
}

// DefaultCap is the default ring capacity (512 KiB of spans).
const DefaultCap = 16384

// New returns a Recorder. Zero Options are usable.
func New(opt Options) *Recorder {
	if opt.Cap <= 0 {
		opt.Cap = DefaultCap
	}
	if opt.Process == "" {
		opt.Process = "dstore"
	}
	return &Recorder{
		clock:   opt.Clock,
		process: opt.Process,
		spans:   make([]Span, 0, opt.Cap),
	}
}

// Process returns the recorder's process name (nil-safe).
func (r *Recorder) Process() string {
	if r == nil {
		return ""
	}
	return r.process
}

// Now returns the current clock reading (nil-safe). With no injected
// clock it advances the fallback sequence.
func (r *Recorder) Now() uint64 {
	if r == nil {
		return 0
	}
	if r.clock != nil {
		return r.clock()
	}
	return r.step.Add(1)
}

// ActiveSpan is an in-flight span returned by Begin. It is a value —
// beginning and ending a span allocates nothing — and the zero
// ActiveSpan (from a nil recorder or an empty trace) ends as a no-op.
type ActiveSpan struct {
	r     *Recorder
	trace uint64
	start uint64
	job   uint32
	kind  SpanKind
	arg   uint16
}

// Begin opens a span; the caller must End it on every return path (the
// spanbalance lint enforces this statically, Open checks it at
// runtime). A zero trace means "not traced" and records nothing.
func (r *Recorder) Begin(trace uint64, kind SpanKind, job uint32, arg uint16) ActiveSpan {
	if r == nil || trace == 0 {
		return ActiveSpan{}
	}
	r.open.Add(1)
	return ActiveSpan{r: r, trace: trace, start: r.Now(), job: job, kind: kind, arg: arg}
}

// End closes the span with the given outcome flags.
func (s ActiveSpan) End(flags uint8) {
	if s.r == nil {
		return
	}
	now := s.r.Now()
	var dur uint64
	if now > s.start {
		dur = now - s.start
	}
	s.r.record(Span{Trace: s.trace, Start: s.start, Dur: dur, Job: s.job, Kind: s.kind, Flags: flags, Arg: s.arg})
	s.r.open.Add(-1)
}

// Record stores a span whose bounds are already known (for example
// queue wait, measured submit→start). A zero trace records nothing.
func (r *Recorder) Record(trace uint64, kind SpanKind, job uint32, arg uint16, start, dur uint64, flags uint8) {
	if r == nil || trace == 0 {
		return
	}
	r.record(Span{Trace: trace, Start: start, Dur: dur, Job: job, Kind: kind, Flags: flags, Arg: arg})
}

// record appends to the ring, overwriting oldest past capacity.
func (r *Recorder) record(s Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recorded++
	if len(r.spans) < cap(r.spans) {
		r.spans = append(r.spans, s)
		return
	}
	r.spans[r.head] = s
	r.head++
	r.dropped++
	if r.head == len(r.spans) {
		r.head = 0
		r.wrapped = true
	}
}

// Spans returns the retained spans for one trace in export order
// (nil-safe). A zero trace returns every retained span.
func (r *Recorder) Spans(trace uint64) []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Span, 0, len(r.spans))
	for _, s := range r.spans {
		if trace == 0 || s.Trace == trace {
			out = append(out, s)
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// Counts returns total spans recorded and spans dropped by ring
// overwrite (nil-safe).
func (r *Recorder) Counts() (recorded, dropped uint64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recorded, r.dropped
}

// Open returns the number of spans begun but not yet ended (nil-safe).
// Tests assert it returns to zero — the runtime half of the
// spanbalance invariant.
func (r *Recorder) Open() int64 {
	if r == nil {
		return 0
	}
	return r.open.Load()
}

// Trace-context propagation headers. The coordinator stamps both on
// every worker call; workers record their spans under the received
// trace and job index so the coordinator can stitch the rings back
// together by trace ID alone — no per-span parent IDs to keep
// deterministic under concurrency.
const (
	// TraceHeader carries the 64-bit trace ID as 16 hex digits.
	TraceHeader = "X-Dstore-Trace-Id"
	// SpanHeader carries the job's index in sweep expansion order.
	SpanHeader = "X-Dstore-Span-Id"
)

// SetHeaders stamps the trace context onto an outgoing request. A zero
// trace stamps nothing.
func SetHeaders(h http.Header, trace uint64, job uint32) {
	if trace == 0 {
		return
	}
	h.Set(TraceHeader, FormatTraceID(trace))
	h.Set(SpanHeader, strconv.FormatUint(uint64(job), 10))
}

// FromHeaders recovers the trace context from an incoming request.
// Absent or malformed headers return ok == false: the request is
// simply untraced.
func FromHeaders(h http.Header) (trace uint64, job uint32, ok bool) {
	t := h.Get(TraceHeader)
	if t == "" {
		return 0, 0, false
	}
	tv, err := strconv.ParseUint(t, 16, 64)
	if err != nil || tv == 0 {
		return 0, 0, false
	}
	job64 := uint64(JobNone)
	if s := h.Get(SpanHeader); s != "" {
		job64, err = strconv.ParseUint(s, 10, 32)
		if err != nil {
			job64 = uint64(JobNone)
		}
	}
	return tv, uint32(job64), true
}

// FormatTraceID renders a trace ID as 16 hex digits.
func FormatTraceID(trace uint64) string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[trace&0xf]
		trace >>= 4
	}
	return string(b[:])
}

// TraceIDFromHex derives a trace ID from a content-addressed ID (a
// sha256 hex digest): the first 16 hex digits as a uint64. Sweep and
// job IDs are already collision-resistant, so truncation keeps the
// derivation deterministic without new state. IDs shorter than 16
// digits or non-hex hash to 0 (untraced).
func TraceIDFromHex(id string) uint64 {
	if len(id) < 16 {
		return 0
	}
	v, err := strconv.ParseUint(id[:16], 16, 64)
	if err != nil {
		return 0
	}
	return v
}
