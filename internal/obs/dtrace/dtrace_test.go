package dtrace

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"unsafe"
)

// TestSpanSize pins the packed record at 32 bytes — the same budget
// the single-process observer proved. Growing it silently doubles the
// ring's memory.
func TestSpanSize(t *testing.T) {
	if got := unsafe.Sizeof(Span{}); got != 32 {
		t.Fatalf("Span size = %d bytes, want 32", got)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	sp := r.Begin(1, SpanSimulate, 0, 0)
	sp.End(FlagErr)
	r.Record(1, SpanVerify, 0, 0, 0, 0, 0)
	if r.Spans(0) != nil {
		t.Fatalf("nil recorder returned spans")
	}
	if rec, drop := r.Counts(); rec != 0 || drop != 0 {
		t.Fatalf("nil recorder counts = %d/%d", rec, drop)
	}
	if r.Open() != 0 || r.Now() != 0 || r.Process() != "" {
		t.Fatalf("nil recorder leaked state")
	}
}

func TestZeroTraceRecordsNothing(t *testing.T) {
	r := New(Options{Cap: 8})
	r.Begin(0, SpanSimulate, 0, 0).End(0)
	r.Record(0, SpanVerify, 0, 0, 1, 2, 0)
	if rec, _ := r.Counts(); rec != 0 {
		t.Fatalf("zero trace recorded %d spans", rec)
	}
	if r.Open() != 0 {
		t.Fatalf("zero-trace Begin left open count %d", r.Open())
	}
}

func TestBeginEndAndOpenInvariant(t *testing.T) {
	var now uint64
	r := New(Options{Cap: 8, Clock: func() uint64 { now += 10; return now }, Process: "w"})
	sp := r.Begin(7, SpanSimulate, 3, 2)
	if r.Open() != 1 {
		t.Fatalf("open = %d, want 1", r.Open())
	}
	sp.End(FlagHit)
	if r.Open() != 0 {
		t.Fatalf("open = %d after End, want 0", r.Open())
	}
	spans := r.Spans(7)
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	want := Span{Trace: 7, Start: 10, Dur: 10, Job: 3, Kind: SpanSimulate, Flags: FlagHit, Arg: 2}
	if spans[0] != want {
		t.Fatalf("span = %+v, want %+v", spans[0], want)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := New(Options{Cap: 4})
	for i := uint16(0); i < 6; i++ {
		r.Record(1, SpanDispatch, uint32(i), i, uint64(i), 1, 0)
	}
	rec, drop := r.Counts()
	if rec != 6 || drop != 2 {
		t.Fatalf("counts = %d recorded / %d dropped, want 6/2", rec, drop)
	}
	spans := r.Spans(1)
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	if spans[0].Job != 2 {
		t.Fatalf("oldest retained job = %d, want 2 (jobs 0,1 overwritten)", spans[0].Job)
	}
}

// TestSpansOrderIndependent is the determinism core: the same span
// multiset recorded in different orders exports identically.
func TestSpansOrderIndependent(t *testing.T) {
	mk := func(order []int) []Span {
		r := New(Options{Cap: 16})
		all := []Span{
			{Trace: 5, Start: 30, Dur: 1, Job: 1, Kind: SpanSimulate},
			{Trace: 5, Start: 10, Dur: 2, Job: 0, Kind: SpanDispatch, Arg: 1},
			{Trace: 5, Start: 20, Dur: 3, Job: 0, Kind: SpanDispatch, Arg: 2},
			{Trace: 9, Start: 5, Dur: 4, Job: 0, Kind: SpanVerify},
		}
		for _, i := range order {
			s := all[i]
			r.Record(s.Trace, s.Kind, s.Job, s.Arg, s.Start, s.Dur, s.Flags)
		}
		return r.Spans(5)
	}
	a := mk([]int{0, 1, 2, 3})
	b := mk([]int{3, 2, 1, 0})
	if len(a) != 3 {
		t.Fatalf("trace filter kept %d spans, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order-dependent export: %+v vs %+v", a[i], b[i])
		}
	}
	if a[0].Job != 0 || a[0].Arg != 1 {
		t.Fatalf("sort order wrong: first span %+v", a[0])
	}
}

func TestRecorderConcurrencySafe(t *testing.T) {
	r := New(Options{Cap: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := r.Begin(1, SpanSimulate, uint32(g), 0)
				sp.End(0)
			}
		}(g)
	}
	wg.Wait()
	if rec, _ := r.Counts(); rec != 800 {
		t.Fatalf("recorded %d, want 800", rec)
	}
	if r.Open() != 0 {
		t.Fatalf("open = %d, want 0", r.Open())
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := make(http.Header)
	SetHeaders(h, 0xdeadbeef, 42)
	if h.Get(TraceHeader) != "00000000deadbeef" {
		t.Fatalf("trace header = %q", h.Get(TraceHeader))
	}
	trace, job, ok := FromHeaders(h)
	if !ok || trace != 0xdeadbeef || job != 42 {
		t.Fatalf("round trip = (%x, %d, %v)", trace, job, ok)
	}

	SetHeaders(make(http.Header), 0, 1) // zero trace: no-op
	if _, _, ok := FromHeaders(make(http.Header)); ok {
		t.Fatalf("empty headers parsed as traced")
	}
	bad := make(http.Header)
	bad.Set(TraceHeader, "not-hex")
	if _, _, ok := FromHeaders(bad); ok {
		t.Fatalf("malformed trace header parsed as traced")
	}
	noJob := make(http.Header)
	noJob.Set(TraceHeader, "10")
	trace, job, ok = FromHeaders(noJob)
	if !ok || trace != 0x10 || job != JobNone {
		t.Fatalf("missing span header = (%x, %d, %v), want JobNone", trace, job, ok)
	}
}

func TestTraceIDFromHex(t *testing.T) {
	if got := TraceIDFromHex("00000000deadbeefcafe"); got != 0xdeadbeef {
		t.Fatalf("TraceIDFromHex = %x", got)
	}
	if got := TraceIDFromHex("short"); got != 0 {
		t.Fatalf("short id = %x, want 0", got)
	}
	if got := TraceIDFromHex("zzzzzzzzzzzzzzzz"); got != 0 {
		t.Fatalf("non-hex id = %x, want 0", got)
	}
}

func TestKindNames(t *testing.T) {
	for k := SpanKind(0); k < NumSpanKinds; k++ {
		name := k.Name()
		if name == "" || name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := KindByName(name)
		if !ok || back != k {
			t.Fatalf("KindByName(%q) = (%v, %v), want %v", name, back, ok, k)
		}
	}
	if SpanKind(200).Name() != "unknown" {
		t.Fatalf("out-of-range kind name = %q", SpanKind(200).Name())
	}
}

// TestStitchDeterministic re-parses stitched output through
// encoding/json (the Perfetto parse) and pins byte-identity across
// dump orderings.
func TestStitchDeterministic(t *testing.T) {
	w0 := New(Options{Cap: 8, Process: "worker-0"})
	w0.Record(3, SpanSimulate, 0, 0, 10, 5, 0)
	w0.Record(3, SpanCacheLookup, 0, 0, 8, 1, FlagHit)
	w1 := New(Options{Cap: 8, Process: "worker-1"})
	w1.Record(3, SpanSimulate, 1, 0, 12, 6, FlagErr)
	co := New(Options{Cap: 8, Process: "coordinator"})
	co.Record(3, SpanExpand, JobNone, 2, 1, 2, 0)

	dumps := []Dump{w0.DumpTrace(3), w1.DumpTrace(3), co.DumpTrace(3)}
	out1, err := Stitch(3, dumps)
	if err != nil {
		t.Fatalf("Stitch: %v", err)
	}
	out2, err := Stitch(3, []Dump{dumps[2], dumps[0], dumps[1]})
	if err != nil {
		t.Fatalf("Stitch shuffled: %v", err)
	}
	if !bytes.Equal(out1, out2) {
		t.Fatalf("stitch depends on dump order:\n%s\nvs\n%s", out1, out2)
	}

	var doc struct {
		TraceEvents []map[string]any  `json:"traceEvents"`
		OtherData   map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(out1, &doc); err != nil {
		t.Fatalf("stitched output is not valid JSON: %v", err)
	}
	if doc.OtherData["trace"] != FormatTraceID(3) {
		t.Fatalf("otherData trace = %q", doc.OtherData["trace"])
	}
	var procs, spans int
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			procs++
			args := ev["args"].(map[string]any)
			names[args["name"].(string)] = true
		case "X":
			spans++
		}
	}
	if procs != 3 || spans != 4 {
		t.Fatalf("stitched %d process rows / %d spans, want 3/4", procs, spans)
	}
	for _, want := range []string{"coordinator", "worker-0", "worker-1"} {
		if !names[want] {
			t.Fatalf("missing process row %q in %v", want, names)
		}
	}
	// JobNone renders as tid -1.
	if !strings.Contains(string(out1), `"tid":-1`) {
		t.Fatalf("expand span did not render tid -1:\n%s", out1)
	}
}

func TestDumpSeqStable(t *testing.T) {
	r := New(Options{Cap: 8, Process: "w"})
	r.Record(2, SpanSimulate, 1, 0, 10, 1, 0)
	r.Record(2, SpanSimulate, 0, 0, 5, 1, 0)
	d1 := r.DumpTrace(2)
	d2 := r.DumpTrace(2)
	if len(d1.Spans) != 2 || d1.Spans[0].Seq != 0 || d1.Spans[1].Seq != 1 {
		t.Fatalf("seq numbering wrong: %+v", d1.Spans)
	}
	if d1.Spans[0].Job != 0 {
		t.Fatalf("dump not in export order: %+v", d1.Spans)
	}
	for i := range d1.Spans {
		if d1.Spans[i] != d2.Spans[i] {
			t.Fatalf("re-dump renumbered spans: %+v vs %+v", d1.Spans[i], d2.Spans[i])
		}
	}
}

const workerScrapeA = `# TYPE jobs_total counter
jobs_total 3
# TYPE hit_rate gauge
hit_rate 0.25
# TYPE lat histogram
lat_bucket{le="15"} 2
lat_bucket{le="+Inf"} 3
lat_sum 40
lat_count 3
`

const workerScrapeB = `# TYPE jobs_total counter
jobs_total 5
# TYPE hit_rate gauge
hit_rate 0.75
# TYPE lat histogram
lat_bucket{le="15"} 1
lat_bucket{le="+Inf"} 1
lat_sum 9
lat_count 1
`

func TestParseProm(t *testing.T) {
	m, err := Parse(workerScrapeA)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.Types["lat"] != "histogram" || m.Types["jobs_total"] != "counter" {
		t.Fatalf("types = %v", m.Types)
	}
	if len(m.Samples) != 6 {
		t.Fatalf("parsed %d samples, want 6", len(m.Samples))
	}
	if m.Samples[2].Name != "lat_bucket" || m.Samples[2].Labels != `le="15"` || m.Samples[2].Value != 2 {
		t.Fatalf("bucket sample = %+v", m.Samples[2])
	}
	if _, err := Parse("jobs_total not-a-number\n"); err == nil {
		t.Fatalf("malformed value parsed silently")
	}
	if _, err := Parse("jobs_total{le=\"5\" 3\n"); err == nil {
		t.Fatalf("unbalanced braces parsed silently")
	}
}

func TestWriteFederated(t *testing.T) {
	ma, err := Parse(workerScrapeA)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := Parse(workerScrapeB)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	WriteFederated(&b, []WorkerMetrics{{Worker: "http://a", M: ma}, {Worker: "http://b", M: mb}})
	out := b.String()

	for _, want := range []string{
		`jobs_total{worker="http://a"} 3`,
		`jobs_total{worker="http://b"} 5`,
		"\njobs_total 8\n",
		"\nhit_rate 1\n", // 0.25 + 0.75
		`lat_bucket{le="15",worker="http://b"} 1`,
		"\nlat_bucket{le=\"15\"} 3\n",
		"\nlat_count 4\n",
		"\nlat_sum 49\n",
		"# TYPE lat histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("federated output missing %q:\n%s", want, out)
		}
	}
	// Federated output must itself re-parse.
	fed, err := Parse(out)
	if err != nil {
		t.Fatalf("federated output does not re-parse: %v\n%s", err, out)
	}
	// And the unlabelled aggregates must equal per-worker sums.
	sums := map[string]float64{}
	var aggs []Sample
	for _, s := range fed.Samples {
		if strings.Contains(s.Labels, "worker=") {
			sums[s.Name+"\xff"+stripWorker(s.Labels)] += s.Value
		} else {
			aggs = append(aggs, s)
		}
	}
	if len(aggs) == 0 {
		t.Fatalf("no aggregate samples in federated output")
	}
	for _, a := range aggs {
		if got := sums[a.Name+"\xff"+a.Labels]; got != a.Value {
			t.Fatalf("aggregate %s{%s} = %v, per-worker sum = %v", a.Name, a.Labels, a.Value, got)
		}
	}
	// Deterministic rendering.
	var b2 bytes.Buffer
	WriteFederated(&b2, []WorkerMetrics{{Worker: "http://a", M: ma}, {Worker: "http://b", M: mb}})
	if out != b2.String() {
		t.Fatalf("federation output not deterministic")
	}
}

// stripWorker removes the worker label pair from a raw label body.
func stripWorker(labels string) string {
	var kept []string
	for _, pair := range strings.Split(labels, ",") {
		if !strings.HasPrefix(pair, "worker=") {
			kept = append(kept, pair)
		}
	}
	return strings.Join(kept, ",")
}

func TestFormatValueExactIntegers(t *testing.T) {
	if got := formatValue(1e7); got != "10000000" {
		t.Fatalf("formatValue(1e7) = %q", got)
	}
	if got := formatValue(0.125); got != "0.125" {
		t.Fatalf("formatValue(0.125) = %q", got)
	}
}
