package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"dstore/internal/memsys"
)

// chromeEvent is one record in the Chrome trace-event JSON format
// (loadable by Perfetto and chrome://tracing). Components map to
// threads of a single process; ts is the simulation tick.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   uint64            `json:"ts"`
	Dur  uint64            `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Cat  string            `json:"cat,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeFor translates one ring event. encoding/json sorts the Args map
// keys, so the byte output is fully determined by the event stream.
func (o *Observer) chromeFor(ev Event) chromeEvent {
	addr := fmt.Sprintf("0x%x", uint64(ev.Addr))
	switch ev.Kind {
	case EvMsg:
		return chromeEvent{
			Name: "msg " + MsgClass(ev.Arg).String(),
			Ph:   "i", S: "t", Cat: "msg",
			Ts: uint64(ev.When), Tid: int(ev.Comp),
			Args: map[string]string{"addr": addr, "to": o.CompName(CompID(ev.A))},
		}
	case EvState:
		from, to := ev.Arg>>4, ev.Arg&0xf
		return chromeEvent{
			Name: o.stateStr(from) + "->" + o.stateStr(to),
			Ph:   "i", S: "t", Cat: "state",
			Ts: uint64(ev.When), Tid: int(ev.Comp),
			Args: map[string]string{"addr": addr},
		}
	case EvPush:
		return chromeEvent{
			Name: "push",
			Ph:   "i", S: "t", Cat: "push",
			Ts: uint64(ev.When), Tid: int(ev.Comp),
			Args: map[string]string{"addr": addr, "to": o.CompName(CompID(ev.A))},
		}
	case EvAccess:
		verdict := "miss"
		if ev.Arg&1 != 0 {
			verdict = "hit"
		}
		return chromeEvent{
			Name: fmt.Sprintf("L%d %s", ev.Arg>>1, verdict),
			Ph:   "i", S: "t", Cat: "cache",
			Ts: uint64(ev.When), Tid: int(ev.Comp),
			Args: map[string]string{"addr": addr},
		}
	case EvLat:
		// A completed access renders as a duration slice ending at the
		// completion tick.
		ts := uint64(ev.When)
		if ev.A <= ts {
			ts -= ev.A
		}
		return chromeEvent{
			Name: HistID(ev.Arg).String(),
			Ph:   "X", Cat: "lat",
			Ts: ts, Dur: ev.A, Tid: int(ev.Comp),
			Args: map[string]string{"addr": addr},
		}
	default:
		return chromeEvent{
			Name: fmt.Sprintf("event(%d)", ev.Kind),
			Ph:   "i", S: "t",
			Ts: uint64(ev.When), Tid: int(ev.Comp),
		}
	}
}

// WriteTrace streams the recorded events as Chrome trace-event JSON:
// one "M" thread_name metadata record per registered component, then
// the events in chronological order. The output is byte-identical for
// identical event streams. Nil-safe: writes an empty trace.
func (o *Observer) WriteTrace(w io.Writer) error {
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ce chromeEvent) error {
		b, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = w.Write(b)
		return err
	}
	if o != nil {
		for id, name := range o.comps {
			ce := chromeEvent{
				Name: "thread_name", Ph: "M", Tid: id,
				Args: map[string]string{"name": name},
			}
			if err := emit(ce); err != nil {
				return err
			}
		}
		for _, ev := range o.Events() {
			if err := emit(o.chromeFor(ev)); err != nil {
				return err
			}
		}
	}
	if _, err := io.WriteString(w, "\n]"); err != nil {
		return err
	}
	if o != nil && o.dropped > 0 {
		if _, err := fmt.Fprintf(w, ",\"otherData\":{\"droppedEvents\":\"%d\"}", o.dropped); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}

// WriteTimeline dumps the per-line coherence-state history recovered
// from the EvState events: one section per line address (ascending),
// with chronological "t=<tick> <component> <from>-><to>" rows. It is
// the grep-friendly companion to the Chrome trace. Nil-safe.
func (o *Observer) WriteTimeline(w io.Writer) error {
	if _, err := io.WriteString(w, "# coherence state timeline (per line address)\n"); err != nil {
		return err
	}
	if o == nil {
		return nil
	}
	byLine := make(map[memsys.Addr][]Event)
	for _, ev := range o.Events() {
		if ev.Kind != EvState {
			continue
		}
		byLine[ev.Addr] = append(byLine[ev.Addr], ev)
	}
	lines := make([]memsys.Addr, 0, len(byLine))
	//dstore:allow-maprange keys are sorted before any output is written
	for a := range byLine {
		lines = append(lines, a)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, a := range lines {
		if _, err := fmt.Fprintf(w, "line 0x%08x\n", uint64(a)); err != nil {
			return err
		}
		for _, ev := range byLine[a] {
			from, to := ev.Arg>>4, ev.Arg&0xf
			if _, err := fmt.Fprintf(w, "  t=%-10d %-12s %s->%s\n",
				uint64(ev.When), o.CompName(ev.Comp), o.stateStr(from), o.stateStr(to)); err != nil {
				return err
			}
		}
	}
	return nil
}
