package cache

import "dstore/internal/memsys"

// WriteBuffer is a coalescing FIFO of outbound line writes. The CPU
// store path drains through one of these, which is what makes direct
// store's increased store latency cheap: the core retires the store as
// soon as it lands in the buffer, and the buffer pays the CPU→GPU-L2
// transfer off the critical path (paper §III-B: "the protocol is
// designed to decrease GPU load latency ... in exchange for increased
// CPU store latency, to which most programs are less sensitive").
type WriteBuffer struct {
	capacity int
	order    []memsys.Addr
	present  map[memsys.Addr]bool
	coalesce *int // hit counter for coalesced writes, optional
}

// NewWriteBuffer returns a buffer holding up to capacity distinct lines.
func NewWriteBuffer(capacity int) *WriteBuffer {
	if capacity <= 0 {
		panic("cache: write buffer capacity must be positive")
	}
	return &WriteBuffer{capacity: capacity, present: make(map[memsys.Addr]bool)}
}

// Push enqueues the line containing a. A write to a line already
// buffered coalesces (no new slot) and returns true. Push returns false
// only when the buffer is full and the line is not already present — the
// store must stall.
func (w *WriteBuffer) Push(a memsys.Addr) bool {
	la := memsys.LineAlign(a)
	if w.present[la] {
		if w.coalesce != nil {
			*w.coalesce++
		}
		return true
	}
	if len(w.order) >= w.capacity {
		return false
	}
	w.order = append(w.order, la)
	w.present[la] = true
	return true
}

// Pop dequeues the oldest buffered line.
func (w *WriteBuffer) Pop() (memsys.Addr, bool) {
	if len(w.order) == 0 {
		return 0, false
	}
	a := w.order[0]
	w.order = w.order[1:]
	delete(w.present, a)
	return a, true
}

// Peek returns the oldest buffered line without removing it.
func (w *WriteBuffer) Peek() (memsys.Addr, bool) {
	if len(w.order) == 0 {
		return 0, false
	}
	return w.order[0], true
}

// Contains reports whether the line containing a is buffered.
func (w *WriteBuffer) Contains(a memsys.Addr) bool {
	return w.present[memsys.LineAlign(a)]
}

// Len returns the number of buffered lines.
func (w *WriteBuffer) Len() int { return len(w.order) }

// Full reports whether a push of a new line would fail.
func (w *WriteBuffer) Full() bool { return len(w.order) >= w.capacity }

// Empty reports whether the buffer holds nothing.
func (w *WriteBuffer) Empty() bool { return len(w.order) == 0 }
