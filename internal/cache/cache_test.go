package cache

import (
	"testing"
	"testing/quick"

	"dstore/internal/memsys"
)

// stateValid is an arbitrary non-zero protocol state for tests.
const stateValid uint8 = 1

func lineAddr(i int) memsys.Addr { return memsys.Addr(i) * memsys.LineSize }

func small(t *testing.T, policy PolicyKind) *Cache {
	t.Helper()
	// 4 sets x 2 ways x 128B = 1KB
	return New(Config{Name: "t", SizeBytes: 1024, Ways: 2, Policy: policy})
}

func TestNewGeometry(t *testing.T) {
	c := small(t, PolicyLRU)
	if c.NumSets() != 4 || c.Ways() != 2 || c.CapacityLines() != 8 {
		t.Fatalf("geometry sets=%d ways=%d cap=%d", c.NumSets(), c.Ways(), c.CapacityLines())
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	cases := []Config{
		{Name: "zero-ways", SizeBytes: 1024, Ways: 0},
		{Name: "bad-size", SizeBytes: 1000, Ways: 2},
		{Name: "non-pow2-sets", SizeBytes: 3 * 2 * memsys.LineSize, Ways: 2},
		{Name: "bad-policy", SizeBytes: 1024, Ways: 2, Policy: "fifo"},
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %s did not panic", cfg.Name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestMissOnEmptyCache(t *testing.T) {
	c := small(t, PolicyLRU)
	if _, hit := c.Lookup(0x1000); hit {
		t.Error("hit in empty cache")
	}
	if c.Counters().Get("misses") != 1 || c.Counters().Get("accesses") != 1 {
		t.Error("miss counters wrong")
	}
}

func TestInsertThenHit(t *testing.T) {
	c := small(t, PolicyLRU)
	c.Insert(0x1000, stateValid, false)
	st, hit := c.Lookup(0x1000)
	if !hit || st != stateValid {
		t.Fatalf("lookup after insert: hit=%v state=%d", hit, st)
	}
	// Whole line hits, next line misses.
	if _, hit := c.Lookup(0x1000 + memsys.LineSize - 1); !hit {
		t.Error("same-line offset missed")
	}
	if _, hit := c.Lookup(0x1000 + memsys.LineSize); hit {
		t.Error("adjacent line hit")
	}
}

func TestInsertExistingUpdatesInPlace(t *testing.T) {
	c := small(t, PolicyLRU)
	c.Insert(0x1000, 1, false)
	v, ev := c.Insert(0x1000, 2, true)
	if ev {
		t.Errorf("re-insert evicted %+v", v)
	}
	st, dirty, ok := c.Probe(0x1000)
	if !ok || st != 2 || !dirty {
		t.Errorf("after re-insert: state=%d dirty=%v ok=%v", st, dirty, ok)
	}
	if c.ValidLines() != 1 {
		t.Errorf("ValidLines=%d, want 1", c.ValidLines())
	}
}

func TestInsertDirtyStaysDirtyOnCleanReinsert(t *testing.T) {
	c := small(t, PolicyLRU)
	c.Insert(0x1000, 1, true)
	c.Insert(0x1000, 1, false)
	if _, dirty, _ := c.Probe(0x1000); !dirty {
		t.Error("clean re-insert lost dirtiness")
	}
}

func TestEvictionVictimIdentity(t *testing.T) {
	c := small(t, PolicyLRU) // 4 sets, 2 ways; same set = line numbers ≡ mod 4
	a0, a1, a2 := lineAddr(0), lineAddr(4), lineAddr(8)
	c.Insert(a0, stateValid, true)
	c.Insert(a1, stateValid, false)
	v, ev := c.Insert(a2, stateValid, false)
	if !ev {
		t.Fatal("third insert into 2-way set did not evict")
	}
	if v.Addr != a0 || !v.Dirty || v.State != stateValid {
		t.Errorf("victim %+v, want LRU line %#x dirty", v, uint64(a0))
	}
	if c.Contains(a0) {
		t.Error("evicted line still resident")
	}
	if c.Counters().Get("evictions") != 1 || c.Counters().Get("writebacks") != 1 {
		t.Error("eviction counters wrong")
	}
}

func TestLRUTouchProtectsLine(t *testing.T) {
	c := small(t, PolicyLRU)
	a0, a1, a2 := lineAddr(0), lineAddr(4), lineAddr(8)
	c.Insert(a0, stateValid, false)
	c.Insert(a1, stateValid, false)
	c.Lookup(a0) // a0 becomes MRU; a1 is now LRU
	v, ev := c.Insert(a2, stateValid, false)
	if !ev || v.Addr != a1 {
		t.Errorf("victim %+v, want %#x after touching a0", v, uint64(a1))
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := small(t, PolicyLRU)
	a0, a1, a2 := lineAddr(0), lineAddr(4), lineAddr(8)
	c.Insert(a0, stateValid, false)
	c.Insert(a1, stateValid, false)
	before := c.Counters().Get("accesses")
	c.Probe(a0) // must NOT refresh a0's recency
	if c.Counters().Get("accesses") != before {
		t.Error("Probe counted as an access")
	}
	v, _ := c.Insert(a2, stateValid, false)
	if v.Addr != a0 {
		t.Errorf("probe refreshed recency: victim %#x, want %#x", uint64(v.Addr), uint64(a0))
	}
}

func TestSetStateAndInvalidateViaZero(t *testing.T) {
	c := small(t, PolicyLRU)
	c.Insert(0x1000, 1, false)
	c.SetState(0x1000, 3)
	if st, _, _ := c.Probe(0x1000); st != 3 {
		t.Errorf("state=%d, want 3", st)
	}
	c.SetState(0x1000, 0)
	if c.Contains(0x1000) {
		t.Error("SetState(0) did not invalidate")
	}
}

func TestSetStatePanicsOnAbsent(t *testing.T) {
	c := small(t, PolicyLRU)
	defer func() {
		if recover() == nil {
			t.Error("SetState on absent line did not panic")
		}
	}()
	c.SetState(0x1000, 1)
}

func TestSetDirty(t *testing.T) {
	c := small(t, PolicyLRU)
	c.Insert(0x1000, 1, false)
	c.SetDirty(0x1000, true)
	if _, dirty, _ := c.Probe(0x1000); !dirty {
		t.Error("SetDirty(true) had no effect")
	}
	c.SetDirty(0x1000, false)
	if _, dirty, _ := c.Probe(0x1000); dirty {
		t.Error("SetDirty(false) had no effect")
	}
}

func TestInvalidate(t *testing.T) {
	c := small(t, PolicyLRU)
	c.Insert(0x1000, 1, true)
	wasDirty, present := c.Invalidate(0x1000)
	if !present || !wasDirty {
		t.Errorf("Invalidate: present=%v dirty=%v", present, wasDirty)
	}
	if _, present := c.Invalidate(0x1000); present {
		t.Error("double invalidate reported present")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := small(t, PolicyLRU)
	for i := 0; i < 6; i++ {
		c.Insert(lineAddr(i), stateValid, false)
	}
	if n := c.InvalidateAll(); n != 6 {
		t.Errorf("InvalidateAll dropped %d lines, want 6", n)
	}
	if c.ValidLines() != 0 {
		t.Error("lines survive InvalidateAll")
	}
}

func TestInsertInvalidStatePanics(t *testing.T) {
	c := small(t, PolicyLRU)
	defer func() {
		if recover() == nil {
			t.Error("Insert state 0 did not panic")
		}
	}()
	c.Insert(0x1000, 0, false)
}

func TestWorkingSetWithinCapacityNeverEvicts(t *testing.T) {
	for _, pol := range []PolicyKind{PolicyLRU, PolicyTreePLRU, PolicyRandom} {
		c := New(Config{Name: "cap", SizeBytes: 16 * 1024, Ways: 4, Policy: pol})
		n := c.CapacityLines()
		for i := 0; i < n; i++ {
			if _, ev := c.Insert(lineAddr(i), stateValid, false); ev {
				t.Errorf("%s: eviction while filling to capacity", pol)
			}
		}
		if c.ValidLines() != n {
			t.Errorf("%s: ValidLines=%d, want %d", pol, c.ValidLines(), n)
		}
		// Re-access everything: all hits.
		for i := 0; i < n; i++ {
			if _, hit := c.Lookup(lineAddr(i)); !hit {
				t.Errorf("%s: line %d missing at capacity", pol, i)
			}
		}
	}
}

func TestWorkingSetBeyondCapacityThrashesLRU(t *testing.T) {
	// Sequential sweep over capacity+sets lines with LRU: second sweep
	// must miss everything (classic LRU worst case).
	c := New(Config{Name: "thrash", SizeBytes: 1024, Ways: 2, Policy: PolicyLRU})
	n := c.CapacityLines() + c.NumSets()
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			if st, hit := c.Lookup(lineAddr(i)); !hit {
				_ = st
				c.Insert(lineAddr(i), stateValid, false)
			} else if pass == 1 {
				t.Fatalf("hit on line %d during over-capacity sweep", i)
			}
		}
	}
}

// Property: under any access sequence and any policy, the number of
// valid lines never exceeds capacity and per-set residency never exceeds
// associativity.
func TestPropertyResidencyBounds(t *testing.T) {
	for _, pol := range []PolicyKind{PolicyLRU, PolicyTreePLRU, PolicyRandom} {
		pol := pol
		f := func(lineNums []uint8) bool {
			c := New(Config{Name: "p", SizeBytes: 1024, Ways: 2, Policy: pol, Seed: 42})
			for _, ln := range lineNums {
				a := lineAddr(int(ln))
				if _, hit := c.Lookup(a); !hit {
					c.Insert(a, stateValid, ln%3 == 0)
				}
			}
			if c.ValidLines() > c.CapacityLines() {
				return false
			}
			// Count per-set residency by probing all possible lines.
			perSet := make(map[int]int)
			for ln := 0; ln < 256; ln++ {
				if c.Contains(lineAddr(ln)) {
					perSet[ln%c.NumSets()]++
				}
			}
			for _, n := range perSet {
				if n > c.Ways() {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("policy %s: %v", pol, err)
		}
	}
}

// Property: hits + misses == accesses for any access stream.
func TestPropertyHitMissAccounting(t *testing.T) {
	f := func(lineNums []uint8) bool {
		c := New(Config{Name: "p", SizeBytes: 2048, Ways: 4})
		for _, ln := range lineNums {
			a := lineAddr(int(ln))
			if _, hit := c.Lookup(a); !hit {
				c.Insert(a, stateValid, false)
			}
		}
		cs := c.Counters()
		return cs.Get("hits")+cs.Get("misses") == cs.Get("accesses")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: an LRU cache of capacity C holding a cyclic working set of
// size <= ways per set gets all hits after the first pass.
func TestPropertyLRUSmallWorkingSetAllHits(t *testing.T) {
	c := New(Config{Name: "ws", SizeBytes: 4096, Ways: 8, Policy: PolicyLRU})
	ws := c.Ways() // all in one set: worst case for conflict
	set0 := func(i int) memsys.Addr { return lineAddr(i * c.NumSets()) }
	for i := 0; i < ws; i++ {
		c.Insert(set0(i), stateValid, false)
	}
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < ws; i++ {
			if _, hit := c.Lookup(set0(i)); !hit {
				t.Fatalf("pass %d line %d missed with working set == ways", pass, i)
			}
		}
	}
}

func TestTreePLRUVictimValidWay(t *testing.T) {
	c := New(Config{Name: "plru", SizeBytes: 4096, Ways: 8, Policy: PolicyTreePLRU})
	// Fill one set, then hammer one way; victim must never be the MRU way.
	set0 := func(i int) memsys.Addr { return lineAddr(i * c.NumSets()) }
	for i := 0; i < 8; i++ {
		c.Insert(set0(i), stateValid, false)
	}
	c.Lookup(set0(3))
	v, ev := c.Insert(set0(8), stateValid, false)
	if !ev {
		t.Fatal("full set insert did not evict")
	}
	if v.Addr == set0(3) {
		t.Error("tree-PLRU evicted the most recently used way")
	}
}

func TestRandomPolicyDeterministicAcrossRuns(t *testing.T) {
	run := func() []memsys.Addr {
		c := New(Config{Name: "r", SizeBytes: 1024, Ways: 2, Policy: PolicyRandom, Seed: 7})
		var victims []memsys.Addr
		for i := 0; i < 64; i++ {
			if v, ev := c.Insert(lineAddr(i), stateValid, false); ev {
				victims = append(victims, v.Addr)
			}
		}
		return victims
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("random policy victim counts differ across identical runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random policy not deterministic for fixed seed")
		}
	}
}

func TestNonPowerOfTwoWaysPLRU(t *testing.T) {
	// 3-way cache exercises the treeWays rounding path.
	c := New(Config{Name: "w3", SizeBytes: 3 * 2 * memsys.LineSize * 2, Ways: 3, Policy: PolicyTreePLRU})
	set0 := func(i int) memsys.Addr { return lineAddr(i * c.NumSets()) }
	for i := 0; i < 10; i++ {
		if _, hit := c.Lookup(set0(i)); !hit {
			c.Insert(set0(i), stateValid, false)
		}
	}
	if c.ValidLines() > c.CapacityLines() {
		t.Error("3-way PLRU overfilled")
	}
}
