package cache

import (
	"fmt"

	"dstore/internal/memsys"
)

// MSHR is a miss-status holding register file. It tracks outstanding
// line fills so that concurrent misses to the same line merge into one
// downstream request, and bounds the number of distinct outstanding
// misses a controller may have in flight. A full MSHR file stalls new
// misses — the key latency-hiding limiter for the GPU when big inputs
// defeat warp parallelism (paper §IV-C).
//
// Capacities are small (a real MSHR file is 8–64 entries), so the
// active set lives in a dense slice scanned linearly: on the simulator
// hot path that beats a hash map on both lookup cost and allocation
// (entries and their Waiters slices are pooled and recycled).
type MSHR struct {
	capacity int
	// addrs mirrors active's line addresses so the hot-path scan walks a
	// flat word array instead of chasing entry pointers.
	addrs  []memsys.Addr
	active []*MSHREntry
	pool   []*MSHREntry
}

// MSHREntry tracks one outstanding line fill and the requests waiting on
// it.
type MSHREntry struct {
	// Addr is the line-aligned address being filled.
	Addr memsys.Addr
	// Waiters are the demand requests merged onto this fill.
	Waiters []*memsys.Request
	// WantExclusive records whether any merged request needs write
	// permission, so the downstream request can be upgraded.
	WantExclusive bool
	// Superseded marks a fill whose line was overwritten by a newer
	// direct-store push while the fill was in flight; the arriving data
	// must be discarded in favour of the pushed copy.
	Superseded bool
}

// NewMSHR returns an MSHR file with the given number of entries.
func NewMSHR(capacity int) *MSHR {
	if capacity <= 0 {
		panic("cache: MSHR capacity must be positive")
	}
	return &MSHR{
		capacity: capacity,
		addrs:    make([]memsys.Addr, 0, capacity),
		active:   make([]*MSHREntry, 0, capacity),
	}
}

// Lookup returns the entry for the line containing a, if one is
// outstanding.
func (m *MSHR) Lookup(a memsys.Addr) (*MSHREntry, bool) {
	la := memsys.LineAlign(a)
	for i, ea := range m.addrs {
		if ea == la {
			return m.active[i], true
		}
	}
	return nil, false
}

// Allocate creates an entry for the line containing a. It returns false
// if the file is full or the line already has an entry (use Lookup+merge
// for the latter).
func (m *MSHR) Allocate(a memsys.Addr) (*MSHREntry, bool) {
	la := memsys.LineAlign(a)
	for _, ea := range m.addrs {
		if ea == la {
			return nil, false
		}
	}
	if len(m.active) >= m.capacity {
		return nil, false
	}
	var e *MSHREntry
	if n := len(m.pool); n > 0 {
		e = m.pool[n-1]
		m.pool = m.pool[:n-1]
		e.Addr = la
		e.Waiters = e.Waiters[:0]
		e.WantExclusive = false
		e.Superseded = false
	} else {
		e = &MSHREntry{Addr: la}
	}
	m.addrs = append(m.addrs, la)
	m.active = append(m.active, e)
	return e, true
}

// Free removes the entry for the line containing a and returns its
// waiters for completion. It panics if no entry exists: a fill response
// without an outstanding miss is a protocol bug.
//
// The entry is recycled, so the returned slice is only valid until the
// next Allocate on this MSHR. Callers in the simulator schedule all
// waiter completions and replays before any new miss can allocate, so
// the window is safe; callers that need the waiters longer must copy.
func (m *MSHR) Free(a memsys.Addr) []*memsys.Request {
	la := memsys.LineAlign(a)
	for i, ea := range m.addrs {
		if ea == la {
			e := m.active[i]
			m.addrs = append(m.addrs[:i], m.addrs[i+1:]...)
			m.active = append(m.active[:i], m.active[i+1:]...)
			m.pool = append(m.pool, e)
			return e.Waiters
		}
	}
	panic(fmt.Sprintf("cache: MSHR free of absent line %#x", uint64(la)))
}

// Full reports whether no further distinct misses can be tracked.
func (m *MSHR) Full() bool { return len(m.active) >= m.capacity }

// Len returns the number of outstanding misses.
func (m *MSHR) Len() int { return len(m.active) }

// Capacity returns the configured entry count.
func (m *MSHR) Capacity() int { return m.capacity }
