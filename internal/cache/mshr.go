package cache

import (
	"fmt"

	"dstore/internal/memsys"
)

// MSHR is a miss-status holding register file. It tracks outstanding
// line fills so that concurrent misses to the same line merge into one
// downstream request, and bounds the number of distinct outstanding
// misses a controller may have in flight. A full MSHR file stalls new
// misses — the key latency-hiding limiter for the GPU when big inputs
// defeat warp parallelism (paper §IV-C).
type MSHR struct {
	capacity int
	entries  map[memsys.Addr]*MSHREntry
}

// MSHREntry tracks one outstanding line fill and the requests waiting on
// it.
type MSHREntry struct {
	// Addr is the line-aligned address being filled.
	Addr memsys.Addr
	// Waiters are the demand requests merged onto this fill.
	Waiters []*memsys.Request
	// WantExclusive records whether any merged request needs write
	// permission, so the downstream request can be upgraded.
	WantExclusive bool
	// Superseded marks a fill whose line was overwritten by a newer
	// direct-store push while the fill was in flight; the arriving data
	// must be discarded in favour of the pushed copy.
	Superseded bool
}

// NewMSHR returns an MSHR file with the given number of entries.
func NewMSHR(capacity int) *MSHR {
	if capacity <= 0 {
		panic("cache: MSHR capacity must be positive")
	}
	return &MSHR{capacity: capacity, entries: make(map[memsys.Addr]*MSHREntry)}
}

// Lookup returns the entry for the line containing a, if one is
// outstanding.
func (m *MSHR) Lookup(a memsys.Addr) (*MSHREntry, bool) {
	e, ok := m.entries[memsys.LineAlign(a)]
	return e, ok
}

// Allocate creates an entry for the line containing a. It returns false
// if the file is full or the line already has an entry (use Lookup+merge
// for the latter).
func (m *MSHR) Allocate(a memsys.Addr) (*MSHREntry, bool) {
	la := memsys.LineAlign(a)
	if _, exists := m.entries[la]; exists {
		return nil, false
	}
	if len(m.entries) >= m.capacity {
		return nil, false
	}
	e := &MSHREntry{Addr: la}
	m.entries[la] = e
	return e, true
}

// Free removes the entry for the line containing a and returns its
// waiters for completion. It panics if no entry exists: a fill response
// without an outstanding miss is a protocol bug.
func (m *MSHR) Free(a memsys.Addr) []*memsys.Request {
	la := memsys.LineAlign(a)
	e, ok := m.entries[la]
	if !ok {
		panic(fmt.Sprintf("cache: MSHR free of absent line %#x", uint64(la)))
	}
	delete(m.entries, la)
	return e.Waiters
}

// Full reports whether no further distinct misses can be tracked.
func (m *MSHR) Full() bool { return len(m.entries) >= m.capacity }

// Len returns the number of outstanding misses.
func (m *MSHR) Len() int { return len(m.entries) }

// Capacity returns the configured entry count.
func (m *MSHR) Capacity() int { return m.capacity }
