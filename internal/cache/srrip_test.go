package cache

import (
	"testing"
	"testing/quick"

	"dstore/internal/memsys"
)

func srripCache() *Cache {
	// 4 sets x 4 ways
	return New(Config{Name: "srrip", SizeBytes: 4 * 4 * memsys.LineSize, Ways: 4, Policy: PolicySRRIP})
}

func TestSRRIPBasicFillAndHit(t *testing.T) {
	c := srripCache()
	for i := 0; i < c.CapacityLines(); i++ {
		if _, ev := c.Insert(lineAddr(i), stateValid, false); ev {
			t.Fatal("eviction while filling to capacity")
		}
	}
	for i := 0; i < c.CapacityLines(); i++ {
		if _, hit := c.Lookup(lineAddr(i)); !hit {
			t.Fatalf("line %d missing at capacity", i)
		}
	}
}

func TestSRRIPScanResistance(t *testing.T) {
	// Establish a hot working set (touched repeatedly), then stream a
	// long scan through the same sets. Under SRRIP the hot lines (RRPV
	// 0) survive the scan (insertions at RRPV 2 are evicted first);
	// under LRU the scan flushes everything.
	// A 4-insert scan: within SRRIP's protection window (hot lines at
	// RRPV 0 survive two aging rounds) but enough to flush LRU, which
	// evicts the oldest-stamped hot lines immediately.
	hot := []int{0, 4} // set 0 (4 sets: lines ≡ 0 mod 4)
	scan := make([]int, 4)
	for i := range scan {
		scan[i] = 8 + i*4 // also set 0
	}

	survivors := func(policy PolicyKind) int {
		c := New(Config{Name: "sr", SizeBytes: 4 * 4 * memsys.LineSize, Ways: 4, Policy: policy})
		for _, ln := range hot {
			c.Insert(lineAddr(ln), stateValid, false)
		}
		for pass := 0; pass < 3; pass++ {
			for _, ln := range hot {
				c.Lookup(lineAddr(ln))
			}
		}
		for _, ln := range scan {
			if _, hit := c.Lookup(lineAddr(ln)); !hit {
				c.Insert(lineAddr(ln), stateValid, false)
			}
		}
		n := 0
		for _, ln := range hot {
			if c.Contains(lineAddr(ln)) {
				n++
			}
		}
		return n
	}

	if s := survivors(PolicySRRIP); s != len(hot) {
		t.Errorf("SRRIP kept %d/%d hot lines through a scan", s, len(hot))
	}
	if s := survivors(PolicyLRU); s != 0 {
		t.Errorf("LRU kept %d hot lines through a scan — scan resistance test is vacuous", s)
	}
}

func TestSRRIPVictimAlwaysValidWay(t *testing.T) {
	c := srripCache()
	// Hammer one set far past capacity.
	for i := 0; i < 100; i++ {
		ln := i * 4 // all set 0
		if _, hit := c.Lookup(lineAddr(ln)); !hit {
			c.Insert(lineAddr(ln), stateValid, false)
		}
	}
	if c.ValidLines() > c.CapacityLines() {
		t.Error("SRRIP overfilled the cache")
	}
}

// Property: under any access stream, SRRIP respects capacity and
// hit+miss accounting.
func TestPropertySRRIPBounds(t *testing.T) {
	f := func(lineNums []uint8) bool {
		c := srripCache()
		for _, ln := range lineNums {
			a := lineAddr(int(ln))
			if _, hit := c.Lookup(a); !hit {
				c.Insert(a, stateValid, ln%2 == 0)
			}
		}
		cs := c.Counters()
		return c.ValidLines() <= c.CapacityLines() &&
			cs.Get("hits")+cs.Get("misses") == cs.Get("accesses")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
