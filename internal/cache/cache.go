// Package cache implements the set-associative cache arrays used by
// every level of the simulated hierarchy, together with the supporting
// structures a timing-accurate controller needs: replacement policies
// (LRU, tree pseudo-LRU, random), miss-status holding registers (MSHRs),
// and a coalescing write buffer.
//
// The cache array is purely a tag/state store: coherence protocol state
// is an opaque uint8 owned by the controller (0 always means invalid),
// and data values are not simulated — the experiments measure where
// lines live and how long accesses take, not their contents.
package cache

import (
	"fmt"
	"math/bits"

	"dstore/internal/memsys"
	"dstore/internal/stats"
)

// PolicyKind selects a replacement policy.
type PolicyKind string

// Supported replacement policies.
const (
	PolicyLRU      PolicyKind = "lru"
	PolicyTreePLRU PolicyKind = "plru"
	PolicyRandom   PolicyKind = "random"
	PolicySRRIP    PolicyKind = "srrip"
)

// Config describes a cache array.
type Config struct {
	// Name appears in statistics output.
	Name string
	// SizeBytes is the total capacity; must be a multiple of
	// Ways*LineSize and yield a power-of-two set count.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// Policy selects replacement; empty means LRU.
	Policy PolicyKind
	// Seed feeds the random policy.
	Seed uint64
	// IndexShift drops that many low line-number bits before set
	// indexing. An address-interleaved cache slice must strip its
	// slice-selection bits, otherwise only 1/2^shift of its sets are
	// ever addressed.
	IndexShift uint
}

// Line is one cache-array entry. Tag stores the full line number, which
// wastes a few simulated-set bits but keeps victim-address
// reconstruction trivial.
type Line struct {
	Tag   uint64
	State uint8
	Dirty bool
}

// Valid reports whether the entry holds a line (state non-zero).
func (l *Line) Valid() bool { return l.State != 0 }

// Victim describes a line displaced by an insertion.
type Victim struct {
	Addr  memsys.Addr
	State uint8
	Dirty bool
}

// Cache is a set-associative tag/state array. It is not safe for
// concurrent use; the event engine serialises all accesses.
type Cache struct {
	cfg     Config
	numSets int
	setMask uint64
	lines   []Line // numSets * Ways, flattened
	// tags mirrors lines for the way scan: tags[i] is lines[i].Tag when
	// the line is valid and tagInvalid otherwise, so find touches 8
	// packed bytes per way instead of a 24-byte Line. Every valid<->
	// invalid transition and every tag write must keep it in sync.
	tags   []uint64
	policy replacementPolicy

	counters *stats.Set
	accesses *stats.Counter
	hits     *stats.Counter
	misses   *stats.Counter
	evicts   *stats.Counter
	wbacks   *stats.Counter

	// accessHook, when non-nil, observes every demand access
	// (SetAccessHook). It mirrors the accesses/hits/misses counters
	// exactly: fired by Lookup only, never by Touch or Probe.
	accessHook func(a memsys.Addr, hit bool)
}

// New builds a cache from cfg. It panics on malformed geometry: cache
// shapes are static experiment configuration, not runtime input.
func New(cfg Config) *Cache {
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: non-positive ways %d", cfg.Name, cfg.Ways))
	}
	if cfg.SizeBytes <= 0 || cfg.SizeBytes%(cfg.Ways*memsys.LineSize) != 0 {
		panic(fmt.Sprintf("cache %s: size %d not divisible by ways*line", cfg.Name, cfg.SizeBytes))
	}
	numSets := cfg.SizeBytes / (cfg.Ways * memsys.LineSize)
	if bits.OnesCount(uint(numSets)) != 1 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", cfg.Name, numSets))
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyLRU
	}
	c := &Cache{
		cfg:      cfg,
		numSets:  numSets,
		setMask:  uint64(numSets - 1),
		lines:    make([]Line, numSets*cfg.Ways),
		tags:     make([]uint64, numSets*cfg.Ways),
		counters: stats.NewSet(),
	}
	for i := range c.tags {
		c.tags[i] = tagInvalid
	}
	switch cfg.Policy {
	case PolicyLRU:
		c.policy = newLRU(numSets, cfg.Ways)
	case PolicyTreePLRU:
		c.policy = newTreePLRU(numSets, cfg.Ways)
	case PolicyRandom:
		c.policy = newRandomPolicy(cfg.Ways, cfg.Seed)
	case PolicySRRIP:
		c.policy = newSRRIP(numSets, cfg.Ways)
	default:
		panic(fmt.Sprintf("cache %s: unknown policy %q", cfg.Name, cfg.Policy))
	}
	c.accesses = c.counters.Counter("accesses")
	c.hits = c.counters.Counter("hits")
	c.misses = c.counters.Counter("misses")
	c.evicts = c.counters.Counter("evictions")
	c.wbacks = c.counters.Counter("writebacks")
	return c
}

// Name returns the configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.cfg.Ways }

// CapacityLines returns the total number of lines the array can hold.
func (c *Cache) CapacityLines() int { return c.numSets * c.cfg.Ways }

// Counters exposes the statistics set (accesses, hits, misses,
// evictions, writebacks).
func (c *Cache) Counters() *stats.Set { return c.counters }

func (c *Cache) setOf(a memsys.Addr) int {
	return int((memsys.LineNum(a) >> c.cfg.IndexShift) & c.setMask)
}

func (c *Cache) line(set, way int) *Line {
	return &c.lines[set*c.cfg.Ways+way]
}

// tagInvalid marks an empty way in the packed tag array. Tags are full
// line numbers (physical address >> line shift), which can never reach
// all-ones.
const tagInvalid = ^uint64(0)

func (c *Cache) find(a memsys.Addr) (set, way int, ok bool) {
	set = c.setOf(a)
	tag := memsys.LineNum(a)
	base := set * c.cfg.Ways
	ts := c.tags[base : base+c.cfg.Ways]
	for w := range ts {
		if ts[w] == tag {
			return set, w, true
		}
	}
	return set, -1, false
}

// Lookup performs a demand access: it counts an access plus a hit or a
// miss, updates replacement state on a hit, and returns the line's
// protocol state.
func (c *Cache) Lookup(a memsys.Addr) (state uint8, hit bool) {
	c.accesses.Inc()
	set, way, ok := c.find(a)
	if !ok {
		c.misses.Inc()
		if c.accessHook != nil {
			c.accessHook(a, false)
		}
		return 0, false
	}
	c.hits.Inc()
	c.policy.touch(set, way)
	if c.accessHook != nil {
		c.accessHook(a, true)
	}
	return c.line(set, way).State, true
}

// SetAccessHook installs fn to observe every demand access, with the
// same accounting as the accesses/hits/misses counters: Lookup fires
// it, quiet paths (Touch, Probe) do not. The hook observes only — it
// must not mutate the cache. A nil fn removes the hook; a removed hook
// costs one predictable branch per lookup. The observability layer in
// internal/obs is the intended client.
func (c *Cache) SetAccessHook(fn func(a memsys.Addr, hit bool)) {
	c.accessHook = fn
}

// Touch behaves like Lookup for replacement state (a hit refreshes
// recency) but records no statistics. Controllers use it to re-examine
// a request that was already counted at its first lookup and then
// stalled — a retry is not a new demand access.
func (c *Cache) Touch(a memsys.Addr) (state uint8, hit bool) {
	set, way, ok := c.find(a)
	if !ok {
		return 0, false
	}
	c.policy.touch(set, way)
	return c.line(set, way).State, true
}

// Probe inspects the array without touching statistics or replacement
// state. Coherence probes from other controllers use this so they do not
// perturb demand-access metrics.
func (c *Cache) Probe(a memsys.Addr) (state uint8, dirty, ok bool) {
	_, way, found := c.find(a)
	if !found {
		return 0, false, false
	}
	set := c.setOf(a)
	l := c.line(set, way)
	return l.State, l.Dirty, true
}

// SetState changes the protocol state of a resident line. Setting state
// 0 is an invalidation and clears the entry. It panics if the line is
// absent: controllers must only downgrade lines they hold.
func (c *Cache) SetState(a memsys.Addr, state uint8) {
	set, way, ok := c.find(a)
	if !ok {
		panic(fmt.Sprintf("cache %s: SetState on absent line %#x", c.cfg.Name, uint64(a)))
	}
	l := c.line(set, way)
	if state == 0 {
		*l = Line{}
		c.tags[set*c.cfg.Ways+way] = tagInvalid
		return
	}
	l.State = state
}

// SetDirty marks a resident line clean or dirty; it panics if absent.
func (c *Cache) SetDirty(a memsys.Addr, dirty bool) {
	set, way, ok := c.find(a)
	if !ok {
		panic(fmt.Sprintf("cache %s: SetDirty on absent line %#x", c.cfg.Name, uint64(a)))
	}
	c.line(set, way).Dirty = dirty
}

// Contains reports whether the line holding a is resident.
func (c *Cache) Contains(a memsys.Addr) bool {
	_, _, ok := c.find(a)
	return ok
}

// PeekVictim returns what Insert of the line holding a would evict,
// without changing any state. ok is false when the insert would not
// evict (line resident or an invalid way exists).
func (c *Cache) PeekVictim(a memsys.Addr) (Victim, bool) {
	set, _, found := c.find(a)
	if found {
		return Victim{}, false
	}
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.line(set, w).Valid() {
			return Victim{}, false
		}
	}
	way := c.policy.victim(set)
	l := c.line(set, way)
	return Victim{
		Addr:  memsys.Addr(l.Tag << memsys.LineShift),
		State: l.State,
		Dirty: l.Dirty,
	}, true
}

// SetFull reports whether installing the line holding a would require
// evicting a valid line (a is absent and its set has no invalid way).
func (c *Cache) SetFull(a memsys.Addr) bool {
	set, _, ok := c.find(a)
	if ok {
		return false
	}
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.line(set, w).Valid() {
			return false
		}
	}
	return true
}

// Insert allocates the line holding a with the given state and dirtiness
// and returns any displaced victim. Inserting a line that is already
// resident updates its state in place and reports no victim. A dirty
// victim increments the writeback counter; every victim increments the
// eviction counter.
func (c *Cache) Insert(a memsys.Addr, state uint8, dirty bool) (v Victim, evicted bool) {
	if state == 0 {
		panic(fmt.Sprintf("cache %s: Insert with invalid state", c.cfg.Name))
	}
	set, way, ok := c.find(a)
	if ok {
		l := c.line(set, way)
		l.State = state
		l.Dirty = l.Dirty || dirty
		c.policy.touch(set, way)
		return Victim{}, false
	}
	// Prefer an invalid way.
	way = -1
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.line(set, w).Valid() {
			way = w
			break
		}
	}
	if way == -1 {
		way = c.policy.victim(set)
		old := c.line(set, way)
		v = Victim{
			Addr:  memsys.Addr(old.Tag << memsys.LineShift),
			State: old.State,
			Dirty: old.Dirty,
		}
		evicted = true
		c.evicts.Inc()
		if old.Dirty {
			c.wbacks.Inc()
		}
	}
	*c.line(set, way) = Line{Tag: memsys.LineNum(a), State: state, Dirty: dirty}
	c.tags[set*c.cfg.Ways+way] = memsys.LineNum(a)
	c.policy.insert(set, way)
	return v, evicted
}

// Invalidate removes the line holding a if resident, reporting whether
// it was present and whether it was dirty (the caller owns any required
// writeback).
func (c *Cache) Invalidate(a memsys.Addr) (wasDirty, wasPresent bool) {
	set, way, ok := c.find(a)
	if !ok {
		return false, false
	}
	l := c.line(set, way)
	wasDirty = l.Dirty
	*l = Line{}
	c.tags[set*c.cfg.Ways+way] = tagInvalid
	return wasDirty, true
}

// InvalidateAll clears the whole array (the GPU L1 flash invalidate at
// kernel launch, paper §III-A) and returns how many valid lines were
// dropped.
func (c *Cache) InvalidateAll() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid() {
			n++
			c.lines[i] = Line{}
		}
		c.tags[i] = tagInvalid
	}
	return n
}

// ValidLines returns how many lines are currently resident.
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid() {
			n++
		}
	}
	return n
}
