package cache

import "dstore/internal/snap"

// Policy discriminants in the snapshot stream. These are part of the
// serialised format (DESIGN.md §11): renumbering them is a snapshot
// version bump.
const (
	snapPolicyLRU      = 1
	snapPolicyTreePLRU = 2
	snapPolicySRRIP    = 3
	snapPolicyRandom   = 4
)

// SnapshotTo serialises the array contents (valid lines, sparse), the
// replacement-policy state and the counters. The tags mirror is not
// serialised: RestoreFrom rebuilds it from the lines, so the mirror
// invariant holds by construction on the restored side.
func (c *Cache) SnapshotTo(w *snap.Writer) {
	w.Tag("cache")
	w.String(c.cfg.Name)
	w.U32(uint32(c.numSets))
	w.U32(uint32(c.cfg.Ways))

	valid := 0
	for i := range c.lines {
		if c.lines[i].Valid() {
			valid++
		}
	}
	w.U32(uint32(valid))
	for i := range c.lines {
		l := &c.lines[i]
		if !l.Valid() {
			continue
		}
		w.U32(uint32(i))
		w.U64(l.Tag)
		w.U8(l.State)
		w.Bool(l.Dirty)
	}

	switch p := c.policy.(type) {
	case *lru:
		w.U8(snapPolicyLRU)
		w.U64(p.clock)
		for _, v := range p.last {
			w.U64(v)
		}
	case *treePLRU:
		w.U8(snapPolicyTreePLRU)
		for _, b := range p.bits {
			w.Bool(b)
		}
	case *srrip:
		w.U8(snapPolicySRRIP)
		for _, v := range p.rrpv {
			w.U8(v)
		}
	case *randomPolicy:
		w.U8(snapPolicyRandom)
		w.U64(p.rng.State())
	}
	c.counters.SnapshotTo(w)
}

// RestoreFrom overwrites the array from a snapshot. Geometry and
// policy kind must match the configured cache; a mismatch fails the
// reader and leaves the cache partially overwritten — callers discard
// the whole system on restore failure.
func (c *Cache) RestoreFrom(r *snap.Reader) {
	r.Tag("cache")
	name := r.String()
	sets := r.U32()
	ways := r.U32()
	if r.Err() != nil {
		return
	}
	if name != c.cfg.Name || int(sets) != c.numSets || int(ways) != c.cfg.Ways {
		r.Failf("cache %s: snapshot geometry %s/%dx%d does not match %dx%d",
			c.cfg.Name, name, sets, ways, c.numSets, c.cfg.Ways)
		return
	}
	for i := range c.lines {
		c.lines[i] = Line{}
		c.tags[i] = tagInvalid
	}
	valid := r.U32()
	for n := uint32(0); n < valid && r.Err() == nil; n++ {
		i := r.U32()
		tag := r.U64()
		state := r.U8()
		dirty := r.Bool()
		if r.Err() != nil {
			return
		}
		if int(i) >= len(c.lines) || state == 0 {
			r.Failf("cache %s: invalid snapshot line entry (idx %d, state %d)", c.cfg.Name, i, state)
			return
		}
		c.lines[i] = Line{Tag: tag, State: state, Dirty: dirty}
		c.tags[i] = tag
	}

	kind := r.U8()
	switch p := c.policy.(type) {
	case *lru:
		if kind != snapPolicyLRU {
			r.Failf("cache %s: snapshot policy %d, configured lru", c.cfg.Name, kind)
			return
		}
		p.clock = r.U64()
		for i := range p.last {
			p.last[i] = r.U64()
		}
	case *treePLRU:
		if kind != snapPolicyTreePLRU {
			r.Failf("cache %s: snapshot policy %d, configured plru", c.cfg.Name, kind)
			return
		}
		for i := range p.bits {
			p.bits[i] = r.Bool()
		}
	case *srrip:
		if kind != snapPolicySRRIP {
			r.Failf("cache %s: snapshot policy %d, configured srrip", c.cfg.Name, kind)
			return
		}
		for i := range p.rrpv {
			p.rrpv[i] = r.U8()
		}
	case *randomPolicy:
		if kind != snapPolicyRandom {
			r.Failf("cache %s: snapshot policy %d, configured random", c.cfg.Name, kind)
			return
		}
		p.rng.SetState(r.U64())
	}
	c.counters.RestoreFrom(r)
}
