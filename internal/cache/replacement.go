package cache

import "dstore/internal/sim"

// replacementPolicy tracks access recency per set and nominates victims.
// Implementations are not safe for concurrent use.
type replacementPolicy interface {
	// touch records a demand hit on (set, way).
	touch(set, way int)
	// insert records a fill into (set, way).
	insert(set, way int)
	// victim nominates the way to evict from a full set.
	victim(set int) int
}

// lru is true least-recently-used via a per-line logical timestamp.
type lru struct {
	ways  int
	clock uint64
	last  []uint64 // numSets * ways
}

func newLRU(numSets, ways int) *lru {
	return &lru{ways: ways, last: make([]uint64, numSets*ways)}
}

func (p *lru) stamp(set, way int) {
	p.clock++
	p.last[set*p.ways+way] = p.clock
}

func (p *lru) touch(set, way int)  { p.stamp(set, way) }
func (p *lru) insert(set, way int) { p.stamp(set, way) }

func (p *lru) victim(set int) int {
	base := set * p.ways
	best := 0
	for w := 1; w < p.ways; w++ {
		if p.last[base+w] < p.last[base+best] {
			best = w
		}
	}
	return best
}

// treePLRU is the classic binary-tree pseudo-LRU used by most real L2/L3
// arrays. Associativity is rounded up to a power of two internally;
// victim selection clamps to the real way count.
type treePLRU struct {
	ways     int
	treeWays int // ways rounded up to a power of two
	bits     []bool
}

func newTreePLRU(numSets, ways int) *treePLRU {
	tw := 1
	for tw < ways {
		tw *= 2
	}
	return &treePLRU{ways: ways, treeWays: tw, bits: make([]bool, numSets*(tw-1))}
}

// setBits returns the slice of tree bits for one set.
func (p *treePLRU) setBits(set int) []bool {
	n := p.treeWays - 1
	return p.bits[set*n : (set+1)*n]
}

// promote walks from the root to the leaf for way, flipping each node to
// point away from the accessed path.
func (p *treePLRU) promote(set, way int) {
	b := p.setBits(set)
	node := 0
	span := p.treeWays
	lo := 0
	for span > 1 {
		span /= 2
		goRight := way >= lo+span
		b[node] = !goRight // bit points toward the PLRU side
		if goRight {
			lo += span
			node = 2*node + 2
		} else {
			node = 2*node + 1
		}
	}
}

func (p *treePLRU) touch(set, way int)  { p.promote(set, way) }
func (p *treePLRU) insert(set, way int) { p.promote(set, way) }

func (p *treePLRU) victim(set int) int {
	b := p.setBits(set)
	node := 0
	span := p.treeWays
	lo := 0
	for span > 1 {
		span /= 2
		if b[node] {
			lo += span
			node = 2*node + 2
		} else {
			node = 2*node + 1
		}
	}
	if lo >= p.ways {
		lo = p.ways - 1
	}
	return lo
}

// srrip is Static Re-Reference Interval Prediction with 2-bit RRPVs
// (Jaleel et al., ISCA 2010): insertions predict a long re-reference
// interval (RRPV 2), hits promote to 0, and the victim is the first way
// at RRPV 3 (aging everyone when none is). Scan-resistant: a streaming
// burst cannot flush the reused working set the way LRU lets it.
type srrip struct {
	ways int
	rrpv []uint8 // numSets * ways
}

// srripMax is the distant re-reference value (2-bit counters).
const srripMax = 3

func newSRRIP(numSets, ways int) *srrip {
	p := &srrip{ways: ways, rrpv: make([]uint8, numSets*ways)}
	for i := range p.rrpv {
		p.rrpv[i] = srripMax
	}
	return p
}

func (p *srrip) touch(set, way int) { p.rrpv[set*p.ways+way] = 0 }

func (p *srrip) insert(set, way int) { p.rrpv[set*p.ways+way] = srripMax - 1 }

func (p *srrip) victim(set int) int {
	base := set * p.ways
	for {
		for w := 0; w < p.ways; w++ {
			if p.rrpv[base+w] == srripMax {
				return w
			}
		}
		for w := 0; w < p.ways; w++ {
			p.rrpv[base+w]++
		}
	}
}

// randomPolicy evicts a pseudo-random way. Deterministic via sim.Rand.
type randomPolicy struct {
	ways int
	rng  *sim.Rand
}

func newRandomPolicy(ways int, seed uint64) *randomPolicy {
	return &randomPolicy{ways: ways, rng: sim.NewRand(seed ^ 0xcafef00d)}
}

func (p *randomPolicy) touch(int, int)  {}
func (p *randomPolicy) insert(int, int) {}
func (p *randomPolicy) victim(int) int  { return p.rng.Intn(p.ways) }
