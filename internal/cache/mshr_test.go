package cache

import (
	"testing"
	"testing/quick"

	"dstore/internal/memsys"
)

func TestMSHRAllocateLookupFree(t *testing.T) {
	m := NewMSHR(4)
	e, ok := m.Allocate(0x1005) // unaligned on purpose
	if !ok {
		t.Fatal("allocate failed on empty MSHR")
	}
	if e.Addr != memsys.LineAlign(0x1005) {
		t.Errorf("entry addr %#x not line-aligned", uint64(e.Addr))
	}
	got, ok := m.Lookup(0x1000 + 3)
	if !ok || got != e {
		t.Error("lookup by same-line address failed")
	}
	r := &memsys.Request{ID: 1}
	e.Waiters = append(e.Waiters, r)
	waiters := m.Free(0x1000)
	if len(waiters) != 1 || waiters[0] != r {
		t.Error("free did not return waiters")
	}
	if m.Len() != 0 {
		t.Error("entry survives free")
	}
}

func TestMSHRDoubleAllocateSameLineFails(t *testing.T) {
	m := NewMSHR(4)
	m.Allocate(0x1000)
	if _, ok := m.Allocate(0x1000 + 64); ok {
		t.Error("second allocate of the same line succeeded")
	}
}

func TestMSHRCapacityStalls(t *testing.T) {
	m := NewMSHR(2)
	m.Allocate(lineAddr(1))
	m.Allocate(lineAddr(2))
	if !m.Full() {
		t.Error("MSHR not full at capacity")
	}
	if _, ok := m.Allocate(lineAddr(3)); ok {
		t.Error("allocate succeeded beyond capacity")
	}
	m.Free(lineAddr(1))
	if m.Full() {
		t.Error("MSHR still full after free")
	}
	if _, ok := m.Allocate(lineAddr(3)); !ok {
		t.Error("allocate failed after freeing a slot")
	}
}

func TestMSHRFreeAbsentPanics(t *testing.T) {
	m := NewMSHR(2)
	defer func() {
		if recover() == nil {
			t.Error("free of absent entry did not panic")
		}
	}()
	m.Free(0x2000)
}

func TestMSHRZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMSHR(0) did not panic")
		}
	}()
	NewMSHR(0)
}

func TestMSHRWantExclusiveMerging(t *testing.T) {
	m := NewMSHR(4)
	e, _ := m.Allocate(0x1000)
	e.Waiters = append(e.Waiters, &memsys.Request{Type: memsys.Load})
	if e.WantExclusive {
		t.Error("load set WantExclusive")
	}
	e.WantExclusive = true // merged store upgrades the fill
	got, _ := m.Lookup(0x1000)
	if !got.WantExclusive {
		t.Error("upgrade lost")
	}
}

// Property: Len never exceeds capacity and allocate-then-free always
// round-trips.
func TestPropertyMSHRBounds(t *testing.T) {
	f := func(ops []uint8, capRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		m := NewMSHR(capacity)
		for _, op := range ops {
			a := lineAddr(int(op % 16))
			if _, ok := m.Lookup(a); ok {
				m.Free(a)
			} else {
				m.Allocate(a)
			}
			if m.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWriteBufferFIFOOrder(t *testing.T) {
	w := NewWriteBuffer(4)
	for i := 1; i <= 3; i++ {
		if !w.Push(lineAddr(i)) {
			t.Fatalf("push %d failed", i)
		}
	}
	for i := 1; i <= 3; i++ {
		a, ok := w.Pop()
		if !ok || a != lineAddr(i) {
			t.Fatalf("pop %d got %#x ok=%v", i, uint64(a), ok)
		}
	}
	if _, ok := w.Pop(); ok {
		t.Error("pop from empty buffer succeeded")
	}
}

func TestWriteBufferCoalescesSameLine(t *testing.T) {
	w := NewWriteBuffer(2)
	w.Push(0x1000)
	if !w.Push(0x1000 + 8) {
		t.Error("same-line push did not coalesce")
	}
	if w.Len() != 1 {
		t.Errorf("Len=%d after coalesce, want 1", w.Len())
	}
}

func TestWriteBufferFullStallsNewLines(t *testing.T) {
	w := NewWriteBuffer(2)
	w.Push(lineAddr(1))
	w.Push(lineAddr(2))
	if !w.Full() {
		t.Error("buffer not full")
	}
	if w.Push(lineAddr(3)) {
		t.Error("push of new line succeeded when full")
	}
	if !w.Push(lineAddr(1)) {
		t.Error("coalescing push failed when full")
	}
}

func TestWriteBufferPeekAndContains(t *testing.T) {
	w := NewWriteBuffer(4)
	if _, ok := w.Peek(); ok {
		t.Error("peek on empty succeeded")
	}
	w.Push(lineAddr(5))
	a, ok := w.Peek()
	if !ok || a != lineAddr(5) {
		t.Error("peek wrong")
	}
	if w.Len() != 1 {
		t.Error("peek consumed the entry")
	}
	if !w.Contains(lineAddr(5) + 17) {
		t.Error("Contains missed same-line address")
	}
	if w.Contains(lineAddr(6)) {
		t.Error("Contains matched absent line")
	}
}

func TestWriteBufferZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWriteBuffer(0) did not panic")
		}
	}()
	NewWriteBuffer(0)
}

// TestWriteBufferDrainUnderPressure runs the buffer at capacity with a
// producer that outpaces the consumer: full-buffer pushes must fail
// without corrupting order, coalescing must keep working at capacity,
// and the drain must release exactly the distinct lines in FIFO order.
func TestWriteBufferDrainUnderPressure(t *testing.T) {
	w := NewWriteBuffer(4)
	var drained []memsys.Addr
	next, stalls := 0, 0
	// Producer pushes two new lines per step, consumer pops one — the
	// buffer saturates and stays saturated until the tail drain.
	for step := 0; step < 32; step++ {
		for k := 0; k < 2; k++ {
			if w.Push(lineAddr(next)) {
				next++
			} else {
				stalls++
				if !w.Full() {
					t.Fatal("push failed on a non-full buffer")
				}
				// A coalescing write must still land while stalled.
				if oldest, ok := w.Peek(); !ok || !w.Push(oldest) {
					t.Fatal("coalesce rejected at capacity")
				}
			}
		}
		if a, ok := w.Pop(); ok {
			drained = append(drained, a)
		}
	}
	for {
		a, ok := w.Pop()
		if !ok {
			break
		}
		drained = append(drained, a)
	}
	if stalls == 0 {
		t.Fatal("producer never stalled; the buffer was not under pressure")
	}
	if !w.Empty() {
		t.Error("buffer not empty after drain")
	}
	if len(drained) != next {
		t.Fatalf("drained %d lines, pushed %d distinct", len(drained), next)
	}
	for i, a := range drained {
		if a != lineAddr(i) {
			t.Fatalf("drain order broken at %d: got %#x want %#x", i, uint64(a), uint64(lineAddr(i)))
		}
	}
}

// Property: pops come out in push order (for non-coalesced pushes) and
// Len is consistent.
func TestPropertyWriteBufferFIFO(t *testing.T) {
	f := func(linesRaw []uint8) bool {
		w := NewWriteBuffer(256)
		var pushed []memsys.Addr
		seen := map[memsys.Addr]bool{}
		for _, ln := range linesRaw {
			a := lineAddr(int(ln))
			if !seen[a] {
				pushed = append(pushed, a)
				seen[a] = true
			}
			if !w.Push(a) {
				return false
			}
		}
		if w.Len() != len(pushed) {
			return false
		}
		for _, want := range pushed {
			got, ok := w.Pop()
			if !ok || got != want {
				return false
			}
		}
		return w.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
