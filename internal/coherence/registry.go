package coherence

import (
	"fmt"
	"strings"
)

// This file is the protocol registry: each coherence flavour the
// simulator implements is a first-class Protocol value — its slice of
// the shared transition table, the message classes it puts on the
// wire, and the invariant set that defines its correctness. The model
// checker (internal/modelcheck), the runtime invariant checker
// (MemCtrl.CheckInvariants, consumed by the chaos harness), the obs
// state timeline and the DESIGN.md Appendix-A renderer all consume
// the registry, so adding a protocol means registering one value —
// not touching four hardcoded mode switches.

// Protocol is one registered coherence protocol flavour.
type Protocol struct {
	// Name identifies the protocol in sweeps, reports and DESIGN.md.
	Name string
	// Doc is a one-line description.
	Doc string

	// Config surface: the mode flags that select this flavour at
	// runtime (CtrlConfig / modelcheck.Config).
	//
	// Direct enables the direct-store region: CPU pushes over the
	// dedicated network, GPU-side caching, CPU remote loads.
	Direct bool
	// Resilient enables the seq-numbered acknowledged push protocol
	// (retry, NACK, duplicate suppression).
	Resilient bool
	// WriteThroughPush selects the §III-F ablation: pushes install
	// exclusive-clean (M) and write through to memory.
	WriteThroughPush bool

	// Events is the subset of table events this flavour exercises; the
	// Appendix-A renderer shows only these columns.
	Events []Event
	// Messages lists the wire message classes the flavour uses.
	Messages []string
	// Invariants is the safety-invariant set checked over LineView by
	// both the model checker and MemCtrl.CheckInvariants.
	Invariants []Invariant
	// StateName names a raw protocol state for display (the obs
	// state-timeline namer).
	StateName func(State) string
}

// LineView is a protocol-neutral snapshot of one line's coherence
// state across all agents — the common ground between the model
// checker's abstract state and the runtime controllers. Invariants
// are written against it so both consumers share one definition.
type LineView struct {
	// Line is a display label ("0", "0x40080").
	Line string
	// N is the number of agents; States/Dirty/Vers hold [0,N).
	N      int
	States []State
	Dirty  []bool
	// Vers are the data versions each copy holds (ghost values from
	// the store oracle; meaningful only when HasVersions).
	Vers []uint64
	// Names optionally labels agents for reports; nil falls back to
	// "agent<i>".
	Names []string
	// MemVer and Latest are memory's version and the newest written
	// version (HasVersions only — the runtime checker has no global
	// ghost counter, so data-value invariants are skipped there).
	MemVer      uint64
	Latest      uint64
	HasVersions bool
	// Quiescent reports nothing is in flight for the line: no
	// transaction, queued request, message, outstanding miss,
	// buffered writeback or pending push.
	Quiescent bool
}

func (v *LineView) name(i int) string {
	if i < len(v.Names) {
		return v.Names[i]
	}
	return fmt.Sprintf("agent%d", i)
}

// owners counts owner copies (MM, M, O) and reports whether any is
// exclusive (MM, M), plus the number of non-I holders.
func (v *LineView) owners() (owners, holders int, exclusive bool) {
	for i := 0; i < v.N; i++ {
		switch v.States[i] {
		case MM, M:
			owners++
			holders++
			exclusive = true
		case O:
			owners++
			holders++
		case S:
			holders++
		}
	}
	return
}

// Invariant is one safety property over a line view. Check returns ""
// when the invariant holds, or a violation message.
type Invariant struct {
	Name string
	Doc  string
	// QuiescentOnly restricts the check to quiescent lines (ownership
	// is transferred atomically, but holder counts and data versions
	// are only meaningful once traffic drains).
	QuiescentOnly bool
	// NeedsVersions restricts the check to consumers with a version
	// oracle (the model checker and the chaos harness; the plain
	// runtime checker has none).
	NeedsVersions bool
	Check         func(v *LineView) string
}

// Applies reports whether the invariant can be evaluated on v.
func (inv *Invariant) Applies(v *LineView) bool {
	if inv.QuiescentOnly && !v.Quiescent {
		return false
	}
	if inv.NeedsVersions && !v.HasVersions {
		return false
	}
	return true
}

// The shared invariant set. Every registered protocol checks all
// four; a future protocol family (e.g. timestamp coherence) can swap
// its own definitions in.
var (
	// InvSWMROwner: at most one owner copy per line, always — even
	// mid-transaction, ownership transfer is atomic.
	InvSWMROwner = Invariant{
		Name: "swmr-owner",
		Doc:  "at most one owner (MM, M or O) per line, at all times",
		Check: func(v *LineView) string {
			owners, _, _ := v.owners()
			if owners > 1 {
				return fmt.Sprintf("SWMR violation: line %s has %d owners", v.Line, owners)
			}
			return ""
		},
	}

	// InvExclusiveSole: an exclusive holder is the only holder once
	// the line drains.
	InvExclusiveSole = Invariant{
		Name:          "exclusive-sole-holder",
		Doc:           "an exclusive copy (MM, M) implies every other cache is I at quiescence",
		QuiescentOnly: true,
		Check: func(v *LineView) string {
			_, holders, exclusive := v.owners()
			if exclusive && holders > 1 {
				return fmt.Sprintf("SWMR violation: line %s exclusive with %d holders at quiescence", v.Line, holders)
			}
			return ""
		},
	}

	// InvDataCopies: every surviving copy holds the newest version.
	InvDataCopies = Invariant{
		Name:          "data-value-copies",
		Doc:           "every valid copy holds the newest written version at quiescence",
		QuiescentOnly: true,
		NeedsVersions: true,
		Check: func(v *LineView) string {
			for i := 0; i < v.N; i++ {
				if v.States[i] != I && v.Vers[i] != v.Latest {
					return fmt.Sprintf("data-value violation: %s line %s holds v%d at quiescence, newest is v%d (lost store)",
						v.name(i), v.Line, v.Vers[i], v.Latest)
				}
			}
			return ""
		},
	}

	// InvDataMemory: with no owner left, memory itself must be
	// current.
	InvDataMemory = Invariant{
		Name:          "data-value-memory",
		Doc:           "with no owner at quiescence, memory holds the newest version",
		QuiescentOnly: true,
		NeedsVersions: true,
		Check: func(v *LineView) string {
			owners, _, _ := v.owners()
			if owners == 0 && v.MemVer != v.Latest {
				return fmt.Sprintf("data-value violation: line %s has no owner at quiescence but memory holds v%d, newest is v%d",
					v.Line, v.MemVer, v.Latest)
			}
			return ""
		},
	}
)

// StandardInvariants returns the shared invariant set in evaluation
// order.
func StandardInvariants() []Invariant {
	return []Invariant{InvSWMROwner, InvExclusiveSole, InvDataCopies, InvDataMemory}
}

// Event subsets per flavour. The heap protocol is plain MOESI-Hammer;
// the direct flavours add the push/remote-load columns.
func heapEvents() []Event {
	return []Event{
		EvLoadHit, EvStoreHit, EvProbeShare, EvProbeInv,
		EvFillS, EvFillM, EvFillMM, EvEvict,
	}
}

func directEvents(writeThrough bool) []Event {
	push := EvPushInstall
	if writeThrough {
		push = EvPushInstallWT
	}
	return append(heapEvents(), EvProbeSnoop, push, EvDirectStore)
}

// Wire message classes per flavour.
func heapMessages() []string {
	return []string{"GETS", "GETX", "WB", "Probe", "Ack", "Data", "Unblock"}
}

func directMessages(resilient bool) []string {
	m := append(heapMessages(), "RemoteLoad", "Putx")
	if resilient {
		m = append(m, "PushAck")
	}
	return m
}

// protocols is the registry, in display order. Kept as a function so
// every caller gets a fresh value (the slices are shared-read only by
// convention, but a sweep mutating its copy must not corrupt the
// registry).
func protocols() []Protocol {
	return []Protocol{
		{
			Name:       "heap",
			Doc:        "broadcast MOESI-Hammer over the shared crossbar (no direct-store region)",
			Events:     heapEvents(),
			Messages:   heapMessages(),
			Invariants: StandardInvariants(),
			StateName:  StateName,
		},
		{
			Name:       "direct",
			Doc:        "MOESI-Hammer plus the paper's direct-store extension: fire-and-forget pushes install MM at the owning GPU L2 slice",
			Direct:     true,
			Events:     directEvents(false),
			Messages:   directMessages(false),
			Invariants: StandardInvariants(),
			StateName:  StateName,
		},
		{
			Name:       "resilient",
			Doc:        "direct store with seq-numbered acknowledged pushes: retry on NACK or loss, receiver-side duplicate suppression",
			Direct:     true,
			Resilient:  true,
			Events:     directEvents(false),
			Messages:   directMessages(true),
			Invariants: StandardInvariants(),
			StateName:  StateName,
		},
		{
			Name:             "write-through-push",
			Doc:              "the §III-F ablation: pushes install exclusive-clean (M) and write through to memory",
			Direct:           true,
			WriteThroughPush: true,
			Events:           directEvents(true),
			Messages:         directMessages(false),
			Invariants:       StandardInvariants(),
			StateName:        StateName,
		},
	}
}

// Protocols returns every registered protocol in display order.
func Protocols() []Protocol { return protocols() }

// ProtocolByName resolves a registered protocol.
func ProtocolByName(name string) (Protocol, bool) {
	for _, p := range protocols() {
		if p.Name == name {
			return p, true
		}
	}
	return Protocol{}, false
}

// ProtocolFor maps mode flags to the registered protocol they select.
func ProtocolFor(direct, resilient, writeThroughPush bool) Protocol {
	name := "heap"
	switch {
	case writeThroughPush:
		name = "write-through-push"
	case resilient:
		name = "resilient"
	case direct:
		name = "direct"
	}
	p, _ := ProtocolByName(name)
	return p
}

// CheckLineView runs the protocol's invariant set over one line view,
// returning the first violation message or "". count, when non-nil,
// receives one increment per invariant evaluated (indexed like
// Invariants) — the model checker's per-invariant statistics.
func (p *Protocol) CheckLineView(v *LineView, count []uint64) string {
	for i := range p.Invariants {
		inv := &p.Invariants[i]
		if !inv.Applies(v) {
			continue
		}
		if count != nil {
			count[i]++
		}
		if msg := inv.Check(v); msg != "" {
			return msg
		}
	}
	return ""
}

// AppendixA renders the per-protocol transition tables for DESIGN.md:
// one section per registered protocol showing only the event columns
// that flavour exercises, kept in sync by TestProtocolTableAppendix.
func AppendixA() string {
	var b strings.Builder
	for i, p := range protocols() {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "### %s\n\n%s.\n\n", p.Name, p.Doc)
		fmt.Fprintf(&b, "Messages: %s.\n", strings.Join(p.Messages, ", "))
		fmt.Fprintf(&b, "Invariants: %s.\n\n", invariantNames(p.Invariants))
		b.WriteString(protocolTableFor(p.Events))
	}
	return b.String()
}

func invariantNames(invs []Invariant) string {
	names := make([]string, len(invs))
	for i, inv := range invs {
		names[i] = inv.Name
	}
	return strings.Join(names, ", ")
}
