package coherence

import (
	"fmt"
	"strings"
)

// This file is the protocol's single source of truth: the MOESI-Hammer
// + direct-store transition relation as an explicit table. The runtime
// controllers (ctrl.go, memctrl.go) consult it, the model checker
// (internal/modelcheck) exhaustively enumerates it, the fuzz target
// throws arbitrary inputs at it, and the DESIGN.md appendix is
// generated from it — so the table cannot drift from the code that
// executes it.

// Event enumerates the stimuli that can hit a cache controller for one
// line: local demand accesses, probes from the ordering point, fill
// grants completing a miss, direct-store traffic, and evictions.
type Event uint8

// Events. Fill events carry the grant state of the arriving DataMsg;
// EvPushInstall / EvPushInstallWT are the two install flavours of a
// PUTX (paper §III-F baseline vs write-through ablation).
const (
	EvLoadHit Event = iota
	EvStoreHit
	EvProbeShare
	EvProbeInv
	EvProbeSnoop
	EvFillS
	EvFillM
	EvFillMM
	EvPushInstall
	EvPushInstallWT
	EvDirectStore
	EvEvict
	NumEvents
)

// EventName returns a short display name for an event.
func EventName(ev Event) string {
	switch ev {
	case EvLoadHit:
		return "LoadHit"
	case EvStoreHit:
		return "StoreHit"
	case EvProbeShare:
		return "PrbShare"
	case EvProbeInv:
		return "PrbInv"
	case EvProbeSnoop:
		return "PrbSnoop"
	case EvFillS:
		return "Fill(S)"
	case EvFillM:
		return "Fill(M)"
	case EvFillMM:
		return "Fill(MM)"
	case EvPushInstall:
		return "Putx"
	case EvPushInstallWT:
		return "Putx(WT)"
	case EvDirectStore:
		return "DirectStore"
	case EvEvict:
		return "Evict"
	default:
		return fmt.Sprintf("Event(%d)", uint8(ev))
	}
}

// EventIdent returns the Go identifier of an event constant
// ("EvLoadHit"), as opposed to EventName's display form ("LoadHit").
// The model checker's reachability dump records events under these
// names so the tablecover analyzer can resolve them back to values by
// package-scope lookup, independent of display formatting.
func EventIdent(ev Event) string {
	switch ev {
	case EvLoadHit:
		return "EvLoadHit"
	case EvStoreHit:
		return "EvStoreHit"
	case EvProbeShare:
		return "EvProbeShare"
	case EvProbeInv:
		return "EvProbeInv"
	case EvProbeSnoop:
		return "EvProbeSnoop"
	case EvFillS:
		return "EvFillS"
	case EvFillM:
		return "EvFillM"
	case EvFillMM:
		return "EvFillMM"
	case EvPushInstall:
		return "EvPushInstall"
	case EvPushInstallWT:
		return "EvPushInstallWT"
	case EvDirectStore:
		return "EvDirectStore"
	case EvEvict:
		return "EvEvict"
	default:
		return fmt.Sprintf("Event(%d)", uint8(ev))
	}
}

// ProbeEvent maps a wire probe kind to its table event.
func ProbeEvent(k ProbeKind) Event {
	switch k {
	case PrbShare:
		return EvProbeShare
	case PrbInv:
		return EvProbeInv
	default:
		return EvProbeSnoop
	}
}

// DataCond describes the data a transition supplies to the requester
// (probe reactions only; every other event supplies nothing).
type DataCond uint8

// Data conditions.
const (
	// NoData supplies nothing.
	NoData DataCond = iota
	// CleanData supplies data that matches memory.
	CleanData
	// DirtyIfDirty supplies data whose dirtiness is the line's dirty
	// bit (O and M copies may or may not carry writeback duty).
	DirtyIfDirty
	// DirtyData supplies data known dirty with respect to memory (an
	// MM copy is always treated as modified).
	DirtyData
)

// DirtyEffect describes a transition's effect on the line's dirty bit.
type DirtyEffect uint8

// Dirty-bit effects.
const (
	DirtyKeep DirtyEffect = iota
	DirtyClear
	DirtySet
)

// Outcome is one cell of the transition table.
type Outcome struct {
	// OK reports the (state, event) pair is legal. Illegal pairs (a
	// store hit in S, an eviction of an invalid line) mean the
	// controller must take a different path (miss, upgrade, no-op) —
	// reaching Transition with them is a protocol bug.
	OK bool
	// Next is the stable state after the transition.
	Next State
	// Data is what the transition supplies to the requester.
	Data DataCond
	// Present reports a probe ack that announces a surviving shared
	// copy without supplying data.
	Present bool
	// Dirty is the transition's effect on the line's dirty bit. Fills
	// install clean; the DataMsg's Owned flag (dirty-data
	// responsibility transfer) and subsequent stores set it.
	Dirty DirtyEffect
}

// NumStates is the number of stable states (I, S, O, M, MM).
const NumStates = 5

// table[state][event]. Zero value is "illegal" (OK == false).
var table = func() [NumStates][NumEvents]Outcome {
	var t [NumStates][NumEvents]Outcome
	set := func(st State, ev Event, o Outcome) {
		o.OK = true
		t[st][ev] = o
	}
	for _, st := range []State{S, O, M, MM} {
		// Reads hit in every valid state; evictions drop to I (the
		// dirty bit decides whether a writeback leaves — ctrl.go).
		set(st, EvLoadHit, Outcome{Next: st})
		set(st, EvEvict, Outcome{Next: I, Dirty: DirtyClear})
	}

	// Stores: allowed only with exclusive-modified permission. M (the
	// paper's exclusive-clean) upgrades to MM silently — no other node
	// holds a copy, so no transaction is needed.
	set(MM, EvStoreHit, Outcome{Next: MM, Dirty: DirtySet})
	set(M, EvStoreHit, Outcome{Next: MM, Dirty: DirtySet})

	// PrbShare: a requester wants a readable copy. The modified owner
	// supplies and keeps writeback duty in O; an exclusive-clean copy
	// surrenders to S (memory already matches); O supplies per its
	// dirty bit; a sharer just reports presence.
	set(I, EvProbeShare, Outcome{Next: I})
	set(S, EvProbeShare, Outcome{Next: S, Present: true})
	set(O, EvProbeShare, Outcome{Next: O, Data: DirtyIfDirty})
	set(M, EvProbeShare, Outcome{Next: S, Data: CleanData})
	set(MM, EvProbeShare, Outcome{Next: O, Data: DirtyData})

	// PrbInv: a requester wants exclusivity; every copy dies, owners
	// supply data on the way out.
	set(I, EvProbeInv, Outcome{Next: I})
	set(S, EvProbeInv, Outcome{Next: I, Present: true, Dirty: DirtyClear})
	set(O, EvProbeInv, Outcome{Next: I, Data: DirtyIfDirty, Dirty: DirtyClear})
	set(M, EvProbeInv, Outcome{Next: I, Data: DirtyIfDirty, Dirty: DirtyClear})
	set(MM, EvProbeInv, Outcome{Next: I, Data: DirtyData, Dirty: DirtyClear})

	// PrbSnoop: an uncacheable RemoteLoad reads through; nobody
	// changes state. RemoteLoads target the direct region, whose only
	// cached copy is the homing GPU slice's M/MM (no other agent may
	// GETS a direct line), so the S and O rows are declared for
	// totality but can never fire.
	set(I, EvProbeSnoop, Outcome{Next: I})
	set(S, EvProbeSnoop, Outcome{Next: S, Present: true})      //dstore:allow-uncovered no sharer can exist on a direct line to snoop
	set(O, EvProbeSnoop, Outcome{Next: O, Data: DirtyIfDirty}) //dstore:allow-uncovered no owner downgrade can exist on a direct line to snoop
	set(M, EvProbeSnoop, Outcome{Next: M, Data: DirtyIfDirty})
	set(MM, EvProbeSnoop, Outcome{Next: MM, Data: DirtyData})

	// Fills. GETS data installs S (sharers survive) or M (nobody else
	// holds a copy); GETX installs MM. The upgrade path (GETX issued
	// from S or O) receives its grant while still holding the stale
	// copy, so Fill(MM) is legal from S and O as well as I.
	set(I, EvFillS, Outcome{Next: S, Dirty: DirtyClear})
	set(I, EvFillM, Outcome{Next: M, Dirty: DirtyClear})
	for _, st := range []State{I, S, O} {
		set(st, EvFillMM, Outcome{Next: MM, Dirty: DirtyClear})
	}

	// Direct-store push install: the blue dashed I→MM transition of
	// Fig. 3. A re-push to a resident line (retry, or a line the slice
	// read back in M) also lands in MM; the write-through ablation
	// installs exclusive-clean instead. Rows are declared for all five
	// states (the table is total over resident states), but grouped by
	// reachability so the tablecover dead-transition check can pin its
	// annotations to exactly the rows the model checker cannot fire.
	for _, st := range []State{I, M, MM} {
		set(st, EvPushInstall, Outcome{Next: MM, Dirty: DirtySet})
	}
	for _, st := range []State{I, M} {
		set(st, EvPushInstallWT, Outcome{Next: M, Dirty: DirtyClear})
	}
	for _, st := range []State{S, O} {
		// A direct-region line is cached only by its homing GPU L2
		// slice, and no other agent may GETS it — so the slice can
		// never be downgraded to S or O and a push can never land on
		// such a copy. Declared for totality.
		set(st, EvPushInstall, Outcome{Next: MM, Dirty: DirtySet})    //dstore:allow-uncovered no sharer/owner downgrade can exist on a direct line
		set(st, EvPushInstallWT, Outcome{Next: M, Dirty: DirtyClear}) //dstore:allow-uncovered no sharer/owner downgrade can exist on a direct line
	}
	// Under the write-through ablation every install is exclusive-clean
	// M, and the slice never stores direct lines itself, so a push can
	// never find an MM copy.
	set(MM, EvPushInstallWT, Outcome{Next: M, Dirty: DirtyClear}) //dstore:allow-uncovered write-through installs are always clean, so MM never occurs

	// Direct store (CPU side): the bold I/S/M/MM → I transitions of
	// Fig. 3 — the store is never cached locally. Only the I row is
	// reachable: the reserved region "can never be cached on the CPU
	// side" (§III-E), so the non-I rows are the runtime's defensive
	// path, declared for totality.
	set(I, EvDirectStore, Outcome{Next: I, Dirty: DirtyClear})
	for _, st := range []State{S, O, M, MM} {
		set(st, EvDirectStore, Outcome{Next: I, Dirty: DirtyClear}) //dstore:allow-uncovered the direct region is never CPU-cached in translated programs
	}
	return t
}()

// Transition returns the table cell for (st, ev). Out-of-range inputs
// return a zero Outcome (OK == false) rather than panicking, so the
// function is total — the fuzz target relies on this.
func Transition(st State, ev Event) Outcome {
	if int(st) >= NumStates || ev >= NumEvents {
		return Outcome{}
	}
	return table[st][ev]
}

// DataDirty resolves a DataCond against the line's dirty bit.
func DataDirty(c DataCond, lineDirty bool) bool {
	switch c {
	case DirtyData:
		return true
	case DirtyIfDirty:
		return lineDirty
	default:
		return false
	}
}

// ProbeFor returns the probe kind the ordering point broadcasts for a
// request type. ok is false for WB, which probes nobody.
func ProbeFor(t ReqType) (ProbeKind, bool) {
	switch t {
	case GETS:
		return PrbShare, true
	case GETX:
		return PrbInv, true
	case RemoteLoad:
		return PrbSnoop, true
	default:
		return PrbShare, false
	}
}

// GrantState returns the state a requester installs for data answering
// request type t. fromOwner marks a 3-hop owner-to-requester transfer;
// sharerSurvives marks a GETS whose probes found a surviving copy.
// Hammer grants exclusive-clean (M) to a GETS that found no other
// copy. RemoteLoad data is uncacheable and never installs.
func GrantState(t ReqType, fromOwner, sharerSurvives bool) State {
	switch t {
	case GETX:
		return MM
	case GETS:
		if fromOwner || sharerSurvives {
			return S
		}
		return M
	default:
		return I
	}
}

// FillEvent maps a grant state to its fill event. ok is false for
// grant I (uncacheable data, no install).
func FillEvent(grant State) (Event, bool) {
	switch grant {
	case S:
		return EvFillS, true
	case M:
		return EvFillM, true
	case MM:
		return EvFillMM, true
	default:
		return 0, false
	}
}

// PushInstallState returns the install state and dirty bit of a
// direct-store PUTX: MM and dirty in the paper's scheme, M and clean
// under the write-through ablation.
func PushInstallState(writeThrough bool) (State, bool) {
	out := Transition(I, PushEvent(writeThrough))
	return out.Next, out.Dirty == DirtySet
}

// PushEvent maps the write-through flag to the PUTX install event.
func PushEvent(writeThrough bool) Event {
	if writeThrough {
		return EvPushInstallWT
	}
	return EvPushInstall
}

// ProtocolTable renders the full transition relation as a
// GitHub-flavoured markdown table (every event column). The DESIGN.md
// appendix uses AppendixA, which renders one table per registered
// protocol over its own event subset.
func ProtocolTable() string {
	return protocolTableFor([]Event{
		EvLoadHit, EvStoreHit, EvProbeShare, EvProbeInv, EvProbeSnoop,
		EvFillS, EvFillM, EvFillMM, EvPushInstall, EvPushInstallWT,
		EvDirectStore, EvEvict,
	})
}

// protocolTableFor renders the transition table restricted to the
// given event columns.
func protocolTableFor(events []Event) string {
	states := []State{I, S, O, M, MM}
	var b strings.Builder
	b.WriteString("| State |")
	for _, ev := range events {
		fmt.Fprintf(&b, " %s |", EventName(ev))
	}
	b.WriteString("\n|---|")
	for range events {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, st := range states {
		fmt.Fprintf(&b, "| **%s** |", StateName(st))
		for _, ev := range events {
			fmt.Fprintf(&b, " %s |", cellString(st, Transition(st, ev)))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// cellString renders one table cell: the next state plus the data /
// presence the transition announces. "·" marks an illegal pair.
func cellString(st State, o Outcome) string {
	if !o.OK {
		return "·"
	}
	var parts []string
	if o.Next != st {
		parts = append(parts, "→"+StateName(o.Next))
	} else {
		parts = append(parts, StateName(o.Next))
	}
	switch o.Data {
	case CleanData:
		parts = append(parts, "data")
	case DirtyIfDirty:
		parts = append(parts, "data(d?)")
	case DirtyData:
		parts = append(parts, "data(d)")
	}
	if o.Present {
		parts = append(parts, "present")
	}
	return strings.Join(parts, " ")
}
