package coherence

import (
	"testing"
	"testing/quick"

	"dstore/internal/cache"
	"dstore/internal/dram"
	"dstore/internal/interconnect"
	"dstore/internal/memsys"
	"dstore/internal/sim"
)

// rig wires a miniature version of the real topology: one CPU cache
// complex, one GPU L2 slice, a memory controller on a crossbar, and the
// dedicated direct-store link.
type rig struct {
	t      *testing.T
	e      *sim.Engine
	xbar   *interconnect.Crossbar
	mem    *MemCtrl
	cpu    *Ctrl
	gpu    *Ctrl
	direct *interconnect.Link
}

func newRig(t *testing.T, mshrs, cacheBytes, ways int) *rig {
	e := sim.NewEngine()
	xbar := interconnect.NewCrossbar(e, "xbar", 16, 32)
	d := dram.New(e, dram.DefaultConfig())
	var mem *MemCtrl
	mem = NewMemCtrl(e, "mem", xbar, d, func(_ memsys.Addr, requester string) []string {
		var out []string
		for _, n := range []string{"cpu", "gpu0"} {
			if n != requester {
				out = append(out, n)
			}
		}
		return out
	})
	l1cfg := cache.Config{Name: "cpu.l1d", SizeBytes: 1024, Ways: 2}
	cpu := NewCtrl(e, CtrlConfig{
		Name:     "cpu",
		L2:       cache.Config{Name: "cpu.l2", SizeBytes: cacheBytes, Ways: ways},
		L1:       &l1cfg,
		L1HitLat: 4, L2HitLat: 12, MSHRs: mshrs,
	}, xbar, mem)
	gpu := NewCtrl(e, CtrlConfig{
		Name:     "gpu0",
		L2:       cache.Config{Name: "gpu.l2", SizeBytes: cacheBytes, Ways: ways},
		L2HitLat: 12, MSHRs: mshrs,
	}, xbar, mem)
	direct := interconnect.NewLink(e, "direct", 20, 16)
	cpu.AttachDirectStore(direct, func(memsys.Addr) *Ctrl { return gpu })
	return &rig{t: t, e: e, xbar: xbar, mem: mem, cpu: cpu, gpu: gpu, direct: direct}
}

// do issues one access and runs the engine until it completes.
func (r *rig) do(c *Ctrl, typ memsys.AccessType, addr memsys.Addr, ver uint64) *memsys.Request {
	r.t.Helper()
	done := false
	req := &memsys.Request{Type: typ, Addr: addr, Ver: ver, Done: func(sim.Tick) { done = true }}
	c.Access(req)
	r.e.Run()
	if !done {
		r.t.Fatalf("%s %v @%#x did not complete", c.Name(), typ, uint64(addr))
	}
	return req
}

func (r *rig) remoteLoad(c *Ctrl, addr memsys.Addr) *memsys.Request {
	r.t.Helper()
	done := false
	req := &memsys.Request{Type: memsys.Load, Addr: addr, Done: func(sim.Tick) { done = true }}
	c.RemoteLoad(req)
	r.e.Run()
	if !done {
		r.t.Fatalf("remote load @%#x did not complete", uint64(addr))
	}
	return req
}

// checkExclusivity asserts the MOESI single-owner invariant over lines.
func (r *rig) checkExclusivity(lines []memsys.Addr) {
	r.t.Helper()
	for _, a := range lines {
		cs, gs := r.cpu.State(a), r.gpu.State(a)
		owners := 0
		for _, s := range []State{cs, gs} {
			if s == MM || s == M || s == O {
				owners++
			}
		}
		if owners > 1 {
			r.t.Errorf("line %#x has two owners: cpu=%s gpu=%s", uint64(a), StateName(cs), StateName(gs))
		}
		if (cs == MM || cs == M) && gs != I {
			r.t.Errorf("line %#x: cpu exclusive (%s) but gpu=%s", uint64(a), StateName(cs), StateName(gs))
		}
		if (gs == MM || gs == M) && cs != I {
			r.t.Errorf("line %#x: gpu exclusive (%s) but cpu=%s", uint64(a), StateName(gs), StateName(cs))
		}
	}
}

const line0 = memsys.Addr(0x10000)

func TestColdLoadGrantsExclusiveClean(t *testing.T) {
	r := newRig(t, 8, 4096, 2)
	req := r.do(r.cpu, memsys.Load, line0, 0)
	if st := r.cpu.State(line0); st != M {
		t.Errorf("state after cold load %s, want M", StateName(st))
	}
	if req.Ver != 0 {
		t.Errorf("cold load saw version %d, want 0 (memory)", req.Ver)
	}
	if r.mem.Counters().Get("data_from_dram") != 1 {
		t.Error("cold load not sourced from DRAM")
	}
}

func TestStoreGrantsModified(t *testing.T) {
	r := newRig(t, 8, 4096, 2)
	r.do(r.cpu, memsys.Store, line0, 7)
	if st := r.cpu.State(line0); st != MM {
		t.Errorf("state after store %s, want MM", StateName(st))
	}
	if r.cpu.Ver(line0) != 7 {
		t.Errorf("version %d, want 7", r.cpu.Ver(line0))
	}
}

func TestLoadAfterStoreHitsLocally(t *testing.T) {
	r := newRig(t, 8, 4096, 2)
	r.do(r.cpu, memsys.Store, line0, 7)
	before := r.mem.Counters().Get("requests")
	req := r.do(r.cpu, memsys.Load, line0, 0)
	if req.Ver != 7 {
		t.Errorf("load saw version %d, want 7", req.Ver)
	}
	if r.mem.Counters().Get("requests") != before {
		t.Error("local hit generated memory traffic")
	}
}

func TestSilentMToMMUpgrade(t *testing.T) {
	r := newRig(t, 8, 4096, 2)
	r.do(r.cpu, memsys.Load, line0, 0) // M
	before := r.mem.Counters().Get("requests")
	r.do(r.cpu, memsys.Store, line0, 3)
	if r.mem.Counters().Get("requests") != before {
		t.Error("M→MM upgrade generated a transaction")
	}
	if st := r.cpu.State(line0); st != MM {
		t.Errorf("state %s, want MM", StateName(st))
	}
}

func TestProducerConsumerTransfersData(t *testing.T) {
	r := newRig(t, 8, 4096, 2)
	r.do(r.cpu, memsys.Store, line0, 42) // CPU produces
	req := r.do(r.gpu, memsys.Load, line0, 0)
	if req.Ver != 42 {
		t.Errorf("GPU read version %d, want 42", req.Ver)
	}
	if st := r.cpu.State(line0); st != O {
		t.Errorf("producer state %s, want O (owner after sharing)", StateName(st))
	}
	if st := r.gpu.State(line0); st != S {
		t.Errorf("consumer state %s, want S", StateName(st))
	}
	if r.mem.Counters().Get("data_from_peer") != 1 {
		t.Error("data not sourced from the producing cache")
	}
	r.checkExclusivity([]memsys.Addr{line0})
}

func TestGetxInvalidatesOtherCopy(t *testing.T) {
	r := newRig(t, 8, 4096, 2)
	r.do(r.cpu, memsys.Store, line0, 1)
	r.do(r.gpu, memsys.Store, line0, 2)
	if st := r.cpu.State(line0); st != I {
		t.Errorf("old owner state %s, want I", StateName(st))
	}
	if st := r.gpu.State(line0); st != MM {
		t.Errorf("new owner state %s, want MM", StateName(st))
	}
	if r.gpu.Ver(line0) != 2 {
		t.Errorf("version %d, want 2", r.gpu.Ver(line0))
	}
	r.checkExclusivity([]memsys.Addr{line0})
}

func TestSharedToExclusiveUpgrade(t *testing.T) {
	r := newRig(t, 8, 4096, 2)
	r.do(r.cpu, memsys.Load, line0, 0) // cpu: M
	r.do(r.gpu, memsys.Load, line0, 0) // cpu: S, gpu: S
	if r.cpu.State(line0) != S && r.cpu.State(line0) != O {
		t.Fatalf("cpu state %s after share", StateName(r.cpu.State(line0)))
	}
	r.do(r.cpu, memsys.Store, line0, 9) // upgrade
	if st := r.cpu.State(line0); st != MM {
		t.Errorf("cpu state %s, want MM", StateName(st))
	}
	if st := r.gpu.State(line0); st != I {
		t.Errorf("gpu state %s, want I after invalidation", StateName(st))
	}
	if r.cpu.Counters().Get("upgrades") == 0 {
		t.Error("upgrade not counted")
	}
	req := r.do(r.gpu, memsys.Load, line0, 0)
	if req.Ver != 9 {
		t.Errorf("gpu re-read version %d, want 9", req.Ver)
	}
}

func TestEvictionWritebackReachesMemory(t *testing.T) {
	// 1-set, 1-way cache: second store evicts the first line.
	r := newRig(t, 8, memsys.LineSize, 1)
	a, b := line0, line0+memsys.LineSize
	r.do(r.cpu, memsys.Store, a, 5)
	r.do(r.cpu, memsys.Store, b, 6)
	if r.cpu.State(a) != I {
		t.Error("evicted line still resident")
	}
	if r.mem.MemVer(a) != 5 {
		t.Errorf("memory version %d, want 5 after writeback", r.mem.MemVer(a))
	}
	req := r.do(r.gpu, memsys.Load, a, 0)
	if req.Ver != 5 {
		t.Errorf("reader got version %d, want 5", req.Ver)
	}
}

func TestEvictionRaceProbeHitsWritebackBuffer(t *testing.T) {
	// Issue the evicting store and the remote read back-to-back without
	// draining, so the GPU's GETS can race the CPU's writeback.
	r := newRig(t, 8, memsys.LineSize, 1)
	a, b := line0, line0+memsys.LineSize
	r.do(r.cpu, memsys.Store, a, 5)
	var gotVer uint64
	done := 0
	stb := &memsys.Request{Type: memsys.Store, Addr: b, Ver: 6, Done: func(sim.Tick) { done++ }}
	ld := &memsys.Request{Type: memsys.Load, Addr: a, Done: func(now sim.Tick) { done++ }}
	r.cpu.Access(stb)
	r.gpu.Access(ld)
	r.e.Run()
	gotVer = ld.Ver
	if done != 2 {
		t.Fatalf("completed %d ops, want 2", done)
	}
	if gotVer != 5 {
		t.Errorf("racing reader got version %d, want 5", gotVer)
	}
	if !r.mem.Idle() {
		t.Error("memory controller left busy")
	}
}

func TestDirectStoreInstallsInGPUSlice(t *testing.T) {
	r := newRig(t, 8, 4096, 2)
	r.do(r.cpu, memsys.RemoteStore, line0, 11)
	if st := r.gpu.State(line0); st != MM {
		t.Errorf("slice state %s, want MM", StateName(st))
	}
	if r.gpu.Ver(line0) != 11 {
		t.Errorf("slice version %d, want 11", r.gpu.Ver(line0))
	}
	if st := r.cpu.State(line0); st != I {
		t.Errorf("cpu state %s, want I (never cached)", StateName(st))
	}
	if r.gpu.Counters().Get("pushes_received") != 1 {
		t.Error("push not counted")
	}
	if r.mem.Counters().Get("requests") != 0 {
		t.Error("direct store generated ordering-point traffic")
	}
	if r.direct.Counters().Get("messages") == 0 {
		t.Error("direct link unused")
	}
}

func TestDirectStoreFromValidLocalStateEndsInI(t *testing.T) {
	r := newRig(t, 8, 4096, 2)
	r.do(r.cpu, memsys.Store, line0, 1) // cpu MM
	r.do(r.cpu, memsys.RemoteStore, line0, 2)
	if st := r.cpu.State(line0); st != I {
		t.Errorf("cpu state %s, want I after remote store from MM", StateName(st))
	}
	if r.gpu.Ver(line0) != 2 || r.gpu.State(line0) != MM {
		t.Errorf("slice ver=%d state=%s", r.gpu.Ver(line0), StateName(r.gpu.State(line0)))
	}
	r.checkExclusivity([]memsys.Addr{line0})
}

func TestGPUReadAfterPushHitsLocally(t *testing.T) {
	r := newRig(t, 8, 4096, 2)
	r.do(r.cpu, memsys.RemoteStore, line0, 11)
	before := r.mem.Counters().Get("requests")
	req := r.do(r.gpu, memsys.Load, line0, 0)
	if req.Ver != 11 {
		t.Errorf("read version %d, want 11", req.Ver)
	}
	if r.mem.Counters().Get("requests") != before {
		t.Error("pushed line read generated a coherence transaction")
	}
}

func TestRemoteLoadReturnsPushedDataWithoutCaching(t *testing.T) {
	r := newRig(t, 8, 4096, 2)
	r.do(r.cpu, memsys.RemoteStore, line0, 13)
	req := r.remoteLoad(r.cpu, line0)
	if req.Ver != 13 {
		t.Errorf("remote load version %d, want 13", req.Ver)
	}
	if st := r.cpu.State(line0); st != I {
		t.Errorf("cpu cached an uncacheable line (state %s)", StateName(st))
	}
	if st := r.gpu.State(line0); st != MM {
		t.Errorf("slice state %s, want MM preserved", StateName(st))
	}
}

func TestRemoteLoadFromMemoryWhenSliceCold(t *testing.T) {
	r := newRig(t, 8, 4096, 2)
	req := r.remoteLoad(r.cpu, line0)
	if req.Ver != 0 {
		t.Errorf("remote load of cold line version %d, want 0", req.Ver)
	}
}

func TestPushSupersedesInFlightFill(t *testing.T) {
	r := newRig(t, 8, 4096, 2)
	// GPU load misses (DRAM path is slow); CPU push lands first over
	// the fast direct link.
	var loadVer uint64
	done := 0
	ld := &memsys.Request{Type: memsys.Load, Addr: line0, Done: func(sim.Tick) { done++ }}
	st := &memsys.Request{Type: memsys.RemoteStore, Addr: line0, Ver: 99, Done: func(sim.Tick) { done++ }}
	r.gpu.Access(ld)
	r.cpu.Access(st)
	r.e.Run()
	loadVer = ld.Ver
	if done != 2 {
		t.Fatalf("completed %d ops, want 2", done)
	}
	if r.gpu.State(line0) != MM || r.gpu.Ver(line0) != 99 {
		t.Errorf("slice state=%s ver=%d, want MM/99 (push must win)",
			StateName(r.gpu.State(line0)), r.gpu.Ver(line0))
	}
	if loadVer != 0 && loadVer != 99 {
		t.Errorf("load saw version %d, want 0 (pre-push) or 99", loadVer)
	}
}

func TestMSHRMergingSingleTransaction(t *testing.T) {
	r := newRig(t, 8, 4096, 2)
	done := 0
	for i := 0; i < 5; i++ {
		r.gpu.Access(&memsys.Request{Type: memsys.Load, Addr: line0 + memsys.Addr(i*8),
			Done: func(sim.Tick) { done++ }})
	}
	r.e.Run()
	if done != 5 {
		t.Fatalf("completed %d loads, want 5", done)
	}
	if got := r.mem.Counters().Get("requests"); got != 1 {
		t.Errorf("memory saw %d requests, want 1 (merged)", got)
	}
}

func TestMSHRFullStallEventuallyCompletes(t *testing.T) {
	r := newRig(t, 1, 4096, 2)
	done := 0
	for i := 0; i < 4; i++ {
		r.gpu.Access(&memsys.Request{Type: memsys.Load, Addr: line0 + memsys.Addr(i)*memsys.LineSize,
			Done: func(sim.Tick) { done++ }})
	}
	r.e.Run()
	if done != 4 {
		t.Fatalf("completed %d loads, want 4", done)
	}
	if r.gpu.Counters().Get("mshr_stalls") == 0 {
		t.Error("no stalls recorded with 1 MSHR and 4 distinct lines")
	}
}

func TestStoreMergedOntoLoadFillUpgrades(t *testing.T) {
	r := newRig(t, 8, 4096, 2)
	r.do(r.cpu, memsys.Load, line0, 0) // cpu holds a copy, so GPU's GETS grants S
	done := 0
	ld := &memsys.Request{Type: memsys.Load, Addr: line0, Done: func(sim.Tick) { done++ }}
	st := &memsys.Request{Type: memsys.Store, Addr: line0, Ver: 21, Done: func(sim.Tick) { done++ }}
	r.gpu.Access(ld)
	r.gpu.Access(st) // merges onto the outstanding fill
	r.e.Run()
	if done != 2 {
		t.Fatalf("completed %d ops, want 2", done)
	}
	if r.gpu.State(line0) != MM || r.gpu.Ver(line0) != 21 {
		t.Errorf("state=%s ver=%d, want MM/21", StateName(r.gpu.State(line0)), r.gpu.Ver(line0))
	}
	if r.cpu.State(line0) != I {
		t.Errorf("cpu not invalidated by merged store's upgrade: %s", StateName(r.cpu.State(line0)))
	}
}

func TestDirectGetxSendsExtraControlFlit(t *testing.T) {
	count := func(getx bool) uint64 {
		e := sim.NewEngine()
		xbar := interconnect.NewCrossbar(e, "xbar", 16, 32)
		d := dram.New(e, dram.DefaultConfig())
		mem := NewMemCtrl(e, "mem", xbar, d, func(memsys.Addr, string) []string { return nil })
		cpu := NewCtrl(e, CtrlConfig{
			Name: "cpu", L2: cache.Config{Name: "l2", SizeBytes: 4096, Ways: 2},
			L2HitLat: 12, MSHRs: 4, DirectGetx: getx,
		}, xbar, mem)
		gpu := NewCtrl(e, CtrlConfig{
			Name: "gpu0", L2: cache.Config{Name: "gl2", SizeBytes: 4096, Ways: 2},
			L2HitLat: 12, MSHRs: 4,
		}, xbar, mem)
		direct := interconnect.NewLink(e, "direct", 20, 16)
		cpu.AttachDirectStore(direct, func(memsys.Addr) *Ctrl { return gpu })
		cpu.Access(&memsys.Request{Type: memsys.RemoteStore, Addr: line0, Ver: 1})
		e.Run()
		return direct.Counters().Get("messages")
	}
	without, with := count(false), count(true)
	if with != without+1 {
		t.Errorf("GETX mode sent %d messages vs %d without, want exactly one more", with, without)
	}
}

// TestPropertySequentialConsistencyPerLine drives random sequential
// accesses from both agents and checks every load observes the version
// of the most recent completed store to its line.
func TestPropertySequentialConsistencyPerLine(t *testing.T) {
	f := func(ops []uint16) bool {
		r := newRig(t, 4, 2048, 2)
		lastVer := map[memsys.Addr]uint64{}
		nextVer := uint64(0)
		okAll := true
		for _, op := range ops {
			line := line0 + memsys.Addr(op%8)*memsys.LineSize
			agent := r.cpu
			if op&0x100 != 0 {
				agent = r.gpu
			}
			switch (op >> 9) % 3 {
			case 0: // load
				req := r.do(agent, memsys.Load, line, 0)
				if req.Ver != lastVer[line] {
					okAll = false
				}
			case 1: // store
				nextVer++
				r.do(agent, memsys.Store, line, nextVer)
				lastVer[line] = nextVer
			case 2: // direct store from the CPU
				nextVer++
				r.do(r.cpu, memsys.RemoteStore, line, nextVer)
				lastVer[line] = nextVer
			}
		}
		var lines []memsys.Addr
		for i := 0; i < 8; i++ {
			lines = append(lines, line0+memsys.Addr(i)*memsys.LineSize)
		}
		r.checkExclusivity(lines)
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyConcurrentSoup fires random overlapping requests, then
// checks structural invariants after the system drains: single owner
// per line, memory controller idle, and every request completed. Lines
// are partitioned the way the TLB partitions the address space: lines
// 0–3 are ordinary coherent memory (loads/stores from both agents),
// lines 4–7 are direct-store region (CPU writes only via pushes, GPU
// accesses freely) — mixing cacheable stores and pushes on one line is
// outside the protocol by construction (§III-E).
func TestPropertyConcurrentSoup(t *testing.T) {
	f := func(ops []uint16) bool {
		r := newRig(t, 4, 2048, 2)
		want := len(ops)
		done := 0
		nextVer := uint64(0)
		for _, op := range ops {
			lineIdx := int(op % 8)
			line := line0 + memsys.Addr(lineIdx)*memsys.LineSize
			directRegion := lineIdx >= 4
			agent := r.cpu
			if op&0x100 != 0 {
				agent = r.gpu
			}
			var ty memsys.AccessType
			switch (op >> 9) % 3 {
			case 0:
				ty = memsys.Load
			case 1:
				ty = memsys.Store
				nextVer++
			case 2:
				ty = memsys.RemoteStore
				nextVer++
			}
			if directRegion {
				// CPU never issues cacheable accesses to the direct
				// region; all its writes become pushes.
				if agent == r.cpu {
					if ty == memsys.Load {
						req := &memsys.Request{Type: ty, Addr: line, Done: func(sim.Tick) { done++ }}
						r.cpu.RemoteLoad(req)
						continue
					}
					ty = memsys.RemoteStore
				} else if ty == memsys.RemoteStore {
					ty = memsys.Store // only the CPU pushes
				}
			} else if ty == memsys.RemoteStore {
				ty = memsys.Store // ordinary region: no pushes
			}
			req := &memsys.Request{Type: ty, Addr: line, Ver: nextVer, Done: func(sim.Tick) { done++ }}
			agent.Access(req)
		}
		r.e.Run()
		if done != want {
			return false
		}
		if !r.mem.Idle() {
			return false
		}
		var lines []memsys.Addr
		for i := 0; i < 8; i++ {
			lines = append(lines, line0+memsys.Addr(i)*memsys.LineSize)
		}
		r.checkExclusivity(lines)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStateNames(t *testing.T) {
	for s, want := range map[State]string{I: "I", S: "S", O: "O", M: "M", MM: "MM"} {
		if StateName(s) != want {
			t.Errorf("StateName(%d) = %q, want %q", s, StateName(s), want)
		}
	}
	if StateName(99) == "" {
		t.Error("unknown state empty")
	}
	if GETS.String() != "GETS" || GETX.String() != "GETX" || WB.String() != "WB" || RemoteLoad.String() != "RemoteLoad" {
		t.Error("request type names wrong")
	}
	if PrbShare.String() != "PrbShare" || PrbInv.String() != "PrbInv" || PrbSnoop.String() != "PrbSnoop" {
		t.Error("probe kind names wrong")
	}
	if ReqType(99).String() == "" || ProbeKind(99).String() == "" {
		t.Error("unknown enum names empty")
	}
}

func TestCanReadCanWrite(t *testing.T) {
	if CanRead(I) {
		t.Error("CanRead(I)")
	}
	for _, s := range []State{S, O, M, MM} {
		if !CanRead(s) {
			t.Errorf("!CanRead(%s)", StateName(s))
		}
	}
	if !CanWrite(MM) {
		t.Error("!CanWrite(MM)")
	}
	for _, s := range []State{I, S, O, M} {
		if CanWrite(s) {
			t.Errorf("CanWrite(%s)", StateName(s))
		}
	}
}

func TestDirectOverXbarAblation(t *testing.T) {
	e := sim.NewEngine()
	xbar := interconnect.NewCrossbar(e, "xbar", 16, 32)
	d := dram.New(e, dram.DefaultConfig())
	mem := NewMemCtrl(e, "mem", xbar, d, func(memsys.Addr, string) []string { return nil })
	cpu := NewCtrl(e, CtrlConfig{
		Name: "cpu", L2: cache.Config{Name: "l2", SizeBytes: 4096, Ways: 2},
		L2HitLat: 12, MSHRs: 4, DirectOverXbar: true,
	}, xbar, mem)
	gpu := NewCtrl(e, CtrlConfig{
		Name: "gpu0", L2: cache.Config{Name: "gl2", SizeBytes: 4096, Ways: 2},
		L2HitLat: 12, MSHRs: 4,
	}, xbar, mem)
	direct := interconnect.NewLink(e, "direct", 20, 32)
	cpu.AttachDirectStore(direct, func(memsys.Addr) *Ctrl { return gpu })
	before := xbar.TotalBytes()
	done := false
	cpu.Access(&memsys.Request{Type: memsys.RemoteStore, Addr: line0, Ver: 5,
		Done: func(sim.Tick) { done = true }})
	e.Run()
	if !done {
		t.Fatal("push did not complete")
	}
	if direct.Counters().Get("messages") != 0 {
		t.Error("ablation still used the dedicated link")
	}
	if xbar.TotalBytes() == before {
		t.Error("push bytes did not ride the crossbar")
	}
	if gpu.State(line0) != MM || gpu.Ver(line0) != 5 {
		t.Error("push did not install")
	}
}

func TestPushWriteThroughAblation(t *testing.T) {
	e := sim.NewEngine()
	xbar := interconnect.NewCrossbar(e, "xbar", 16, 32)
	d := dram.New(e, dram.DefaultConfig())
	mem := NewMemCtrl(e, "mem", xbar, d, func(memsys.Addr, string) []string { return nil })
	cpu := NewCtrl(e, CtrlConfig{
		Name: "cpu", L2: cache.Config{Name: "l2", SizeBytes: 4096, Ways: 2},
		L2HitLat: 12, MSHRs: 4,
	}, xbar, mem)
	gpu := NewCtrl(e, CtrlConfig{
		Name: "gpu0", L2: cache.Config{Name: "gl2", SizeBytes: 4096, Ways: 2},
		L2HitLat: 12, MSHRs: 4, PushWriteThrough: true,
	}, xbar, mem)
	direct := interconnect.NewLink(e, "direct", 20, 32)
	cpu.AttachDirectStore(direct, func(memsys.Addr) *Ctrl { return gpu })
	done := false
	cpu.Access(&memsys.Request{Type: memsys.RemoteStore, Addr: line0, Ver: 9,
		Done: func(sim.Tick) { done = true }})
	e.Run()
	if !done {
		t.Fatal("push did not complete")
	}
	if st := gpu.State(line0); st != M {
		t.Errorf("write-through push installed %s, want M (exclusive clean)", StateName(st))
	}
	if mem.MemVer(line0) != 9 {
		t.Errorf("memory version %d, want 9 (write-through)", mem.MemVer(line0))
	}
	// Clean eviction must be silent and lose nothing: evict by filling
	// the set, then re-read.
	gpu.Access(&memsys.Request{Type: memsys.Load, Addr: line0 + 16*memsys.LineSize})
	gpu.Access(&memsys.Request{Type: memsys.Load, Addr: line0 + 32*memsys.LineSize})
	e.Run()
	req := &memsys.Request{Type: memsys.Load, Addr: line0, Done: func(sim.Tick) {}}
	gpu.Access(req)
	e.Run()
	if req.Ver != 9 {
		t.Errorf("re-read after clean eviction saw version %d, want 9", req.Ver)
	}
}

func TestPushOverflowToDRAM(t *testing.T) {
	// A 1-set/1-way slice: the second push must overflow to DRAM per
	// §III-A ("if the GPU L2 cache is full, the system then writes
	// data to DRAM"), not evict the first.
	e := sim.NewEngine()
	xbar := interconnect.NewCrossbar(e, "xbar", 16, 32)
	d := dram.New(e, dram.DefaultConfig())
	mem := NewMemCtrl(e, "mem", xbar, d, func(memsys.Addr, string) []string { return nil })
	cpu := NewCtrl(e, CtrlConfig{
		Name: "cpu", L2: cache.Config{Name: "l2", SizeBytes: 4096, Ways: 2},
		L2HitLat: 12, MSHRs: 4,
	}, xbar, mem)
	gpu := NewCtrl(e, CtrlConfig{
		Name: "gpu0", L2: cache.Config{Name: "gl2", SizeBytes: memsys.LineSize, Ways: 1},
		L2HitLat: 12, MSHRs: 4,
	}, xbar, mem)
	direct := interconnect.NewLink(e, "direct", 20, 32)
	cpu.AttachDirectStore(direct, func(memsys.Addr) *Ctrl { return gpu })
	a, b := line0, line0+memsys.LineSize
	cpu.Access(&memsys.Request{Type: memsys.RemoteStore, Addr: a, Ver: 1})
	e.Run()
	cpu.Access(&memsys.Request{Type: memsys.RemoteStore, Addr: b, Ver: 2})
	e.Run()
	if gpu.State(a) != MM {
		t.Error("first push evicted by overflow push")
	}
	if gpu.Counters().Get("pushes_overflowed") != 1 {
		t.Errorf("overflows = %d, want 1", gpu.Counters().Get("pushes_overflowed"))
	}
	if mem.MemVer(b) != 2 {
		t.Errorf("overflowed push version %d in memory, want 2", mem.MemVer(b))
	}
	// Reading the overflowed line returns the pushed data.
	req := &memsys.Request{Type: memsys.Load, Addr: b, Done: func(sim.Tick) {}}
	gpu.Access(req)
	e.Run()
	if req.Ver != 2 {
		t.Errorf("read of overflowed line saw version %d, want 2", req.Ver)
	}
}

// TestProbeMatrix exercises every stable state against every probe
// kind, checking the resulting local state and the data movement
// (Fig. 3's table in test form).
func TestProbeMatrix(t *testing.T) {
	// prepare puts the CPU cache into the wanted state for line0.
	prepare := map[State]func(r *rig){
		S: func(r *rig) {
			r.do(r.cpu, memsys.Load, line0, 0) // M at cpu
			r.do(r.gpu, memsys.Load, line0, 0) // cpu drops to S, gpu S
		},
		O: func(r *rig) {
			r.do(r.cpu, memsys.Store, line0, 5) // MM
			r.do(r.gpu, memsys.Load, line0, 0)  // cpu O, gpu S
		},
		M:  func(r *rig) { r.do(r.cpu, memsys.Load, line0, 0) },
		MM: func(r *rig) { r.do(r.cpu, memsys.Store, line0, 5) },
	}
	// For each prepared state, what should a GPU access do to the CPU?
	cases := []struct {
		name     string
		state    State
		gpuOp    memsys.AccessType
		wantCPU  []State // acceptable CPU states afterwards
		fromPeer bool    // data must come cache-to-cache
	}{
		{"S+GETS", S, memsys.Load, []State{S}, false},
		{"O+GETS", O, memsys.Load, []State{O}, true},
		{"M+GETS", M, memsys.Load, []State{S}, true},
		{"MM+GETS", MM, memsys.Load, []State{O}, true},
		{"S+GETX", S, memsys.Store, []State{I}, false},
		{"O+GETX", O, memsys.Store, []State{I}, true},
		{"M+GETX", M, memsys.Store, []State{I}, true},
		{"MM+GETX", MM, memsys.Store, []State{I}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := newRig(t, 8, 4096, 2)
			prepare[c.state](r)
			if got := r.cpu.State(line0); got != c.state {
				t.Fatalf("setup state %s, want %s", StateName(got), StateName(c.state))
			}
			// Drop any GPU copy the setup left behind (a clean S may be
			// dropped silently), so the access below really probes.
			r.gpu.L2Cache().Invalidate(line0)
			before := r.mem.Counters().Get("data_from_peer")
			r.do(r.gpu, c.gpuOp, line0, 77)
			got := r.cpu.State(line0)
			ok := false
			for _, w := range c.wantCPU {
				if got == w {
					ok = true
				}
			}
			if !ok {
				t.Errorf("CPU state after probe %s, want one of %v", StateName(got), c.wantCPU)
			}
			gotPeer := r.mem.Counters().Get("data_from_peer") > before
			if gotPeer != c.fromPeer {
				t.Errorf("data_from_peer = %v, want %v", gotPeer, c.fromPeer)
			}
			if err := r.mem.CheckInvariants([]memsys.Addr{line0}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestMemCtrlSerialisesPerLine(t *testing.T) {
	// Two overlapping stores from both agents to the same line: the
	// ordering point must run them one at a time; the final owner holds
	// one of the two versions and the other agent is I.
	r := newRig(t, 8, 4096, 2)
	done := 0
	r.cpu.Access(&memsys.Request{Type: memsys.Store, Addr: line0, Ver: 1, Done: func(sim.Tick) { done++ }})
	r.gpu.Access(&memsys.Request{Type: memsys.Store, Addr: line0, Ver: 2, Done: func(sim.Tick) { done++ }})
	r.e.Run()
	if done != 2 {
		t.Fatalf("completed %d stores", done)
	}
	cs, gs := r.cpu.State(line0), r.gpu.State(line0)
	if !((cs == MM && gs == I) || (cs == I && gs == MM)) {
		t.Errorf("final states cpu=%s gpu=%s, want exactly one MM", StateName(cs), StateName(gs))
	}
	winner := r.cpu
	if gs == MM {
		winner = r.gpu
	}
	if v := winner.Ver(line0); v != 1 && v != 2 {
		t.Errorf("winner version %d, want 1 or 2", v)
	}
	if err := r.mem.CheckInvariants([]memsys.Addr{line0}); err != nil {
		t.Error(err)
	}
}

func TestCheckInvariantsCatchesCorruption(t *testing.T) {
	r := newRig(t, 8, 4096, 2)
	r.do(r.cpu, memsys.Store, line0, 1)
	// Corrupt: force a second exclusive copy behind the protocol's back.
	r.gpu.L2Cache().Insert(line0, MM, true)
	if err := r.mem.CheckInvariants([]memsys.Addr{line0}); err == nil {
		t.Error("invariant checker missed a double-exclusive line")
	}
}

func TestCheckInvariantsDetectsBusyController(t *testing.T) {
	r := newRig(t, 8, 4096, 2)
	r.cpu.Access(&memsys.Request{Type: memsys.Load, Addr: line0})
	// Step a little but don't drain.
	for i := 0; i < 5; i++ {
		r.e.Step()
	}
	if r.mem.Idle() {
		t.Skip("transaction already finished; timing changed")
	}
	if err := r.mem.CheckInvariants(nil); err == nil {
		t.Error("busy controller not reported")
	}
	r.e.Run()
}

func TestStoreToOverflowedPushReinstalls(t *testing.T) {
	// A store hitting a line whose overflowed push is still in flight
	// to memory must reinstall it exclusively with the new version.
	e := sim.NewEngine()
	xbar := interconnect.NewCrossbar(e, "xbar", 16, 32)
	d := dram.New(e, dram.DefaultConfig())
	mem := NewMemCtrl(e, "mem", xbar, d, func(memsys.Addr, string) []string { return nil })
	cpu := NewCtrl(e, CtrlConfig{
		Name: "cpu", L2: cache.Config{Name: "l2", SizeBytes: 4096, Ways: 2},
		L2HitLat: 12, MSHRs: 4,
	}, xbar, mem)
	gpu := NewCtrl(e, CtrlConfig{
		Name: "gpu0", L2: cache.Config{Name: "gl2", SizeBytes: memsys.LineSize, Ways: 1},
		L2HitLat: 12, MSHRs: 4,
	}, xbar, mem)
	direct := interconnect.NewLink(e, "direct", 20, 32)
	cpu.AttachDirectStore(direct, func(memsys.Addr) *Ctrl { return gpu })
	a, b := line0, line0+memsys.LineSize
	// Fill the single way, then overflow b, then store to b while its
	// writeback may still be in flight.
	cpu.Access(&memsys.Request{Type: memsys.RemoteStore, Addr: a, Ver: 1})
	cpu.Access(&memsys.Request{Type: memsys.RemoteStore, Addr: b, Ver: 2})
	done := false
	gpu.Access(&memsys.Request{Type: memsys.Store, Addr: b, Ver: 3, Done: func(sim.Tick) { done = true }})
	e.Run()
	if !done {
		t.Fatal("store did not complete")
	}
	// The GPU must now own b with version 3, wherever it lives.
	if gpu.L2Cache().Contains(b) {
		if gpu.Ver(b) != 3 {
			t.Errorf("resident version %d, want 3", gpu.Ver(b))
		}
	} else if mem.MemVer(b) != 3 {
		t.Errorf("memory version %d, want 3", mem.MemVer(b))
	}
	// Re-reading must see version 3.
	req := &memsys.Request{Type: memsys.Load, Addr: b, Done: func(sim.Tick) {}}
	gpu.Access(req)
	e.Run()
	if req.Ver != 3 {
		t.Errorf("re-read saw version %d, want 3", req.Ver)
	}
}
