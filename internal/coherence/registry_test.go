package coherence

import (
	"strings"
	"testing"
)

func TestProtocolRegistry(t *testing.T) {
	ps := Protocols()
	if len(ps) != 4 {
		t.Fatalf("registered %d protocols, want 4", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Name == "" || p.Doc == "" {
			t.Errorf("protocol %+v missing name or doc", p)
		}
		if seen[p.Name] {
			t.Errorf("duplicate protocol %q", p.Name)
		}
		seen[p.Name] = true
		if len(p.Events) == 0 || len(p.Messages) == 0 || len(p.Invariants) == 0 {
			t.Errorf("%s: empty events/messages/invariants", p.Name)
		}
		if p.StateName == nil || p.StateName(MM) != "MM" {
			t.Errorf("%s: bad StateName", p.Name)
		}
		// Every declared event must be inside the table bounds, and the
		// direct-only columns must not leak into the heap protocol.
		for _, ev := range p.Events {
			if ev >= NumEvents {
				t.Errorf("%s: event %d out of range", p.Name, ev)
			}
			if !p.Direct && (ev == EvProbeSnoop || ev == EvPushInstall || ev == EvPushInstallWT || ev == EvDirectStore) {
				t.Errorf("%s: heap protocol lists direct event %s", p.Name, EventName(ev))
			}
		}
		got, ok := ProtocolByName(p.Name)
		if !ok || got.Name != p.Name {
			t.Errorf("ProtocolByName(%q) failed", p.Name)
		}
	}
	for _, tc := range []struct {
		direct, resilient, wt bool
		want                  string
	}{
		{false, false, false, "heap"},
		{true, false, false, "direct"},
		{true, true, false, "resilient"},
		{true, false, true, "write-through-push"},
	} {
		if got := ProtocolFor(tc.direct, tc.resilient, tc.wt).Name; got != tc.want {
			t.Errorf("ProtocolFor(%v,%v,%v) = %s, want %s", tc.direct, tc.resilient, tc.wt, got, tc.want)
		}
	}
	if _, ok := ProtocolByName("nope"); ok {
		t.Error("ProtocolByName accepted unknown name")
	}
}

func TestInvariantChecks(t *testing.T) {
	p := ProtocolFor(true, false, false)
	count := make([]uint64, len(p.Invariants))

	// Two owners: SWMR violation even mid-flight.
	v := &LineView{Line: "0", N: 3, States: []State{M, O, I}, Dirty: make([]bool, 3), Vers: make([]uint64, 3)}
	if msg := p.CheckLineView(v, count); !strings.Contains(msg, "SWMR violation") || !strings.Contains(msg, "2 owners") {
		t.Errorf("two owners: got %q", msg)
	}
	if count[0] == 0 {
		t.Error("per-invariant count not incremented")
	}

	// Exclusive alongside a sharer: legal in flight, flagged at rest.
	v = &LineView{Line: "0", N: 3, States: []State{MM, S, I}, Dirty: make([]bool, 3), Vers: make([]uint64, 3)}
	if msg := p.CheckLineView(v, nil); msg != "" {
		t.Errorf("in-flight exclusive+sharer flagged: %q", msg)
	}
	v.Quiescent = true
	if msg := p.CheckLineView(v, nil); !strings.Contains(msg, "exclusive with 2 holders") {
		t.Errorf("quiescent exclusive+sharer: got %q", msg)
	}

	// Stale copy at quiescence, versions known.
	v = &LineView{Line: "0", N: 2, States: []State{S, I}, Dirty: make([]bool, 2),
		Vers: []uint64{1, 0}, MemVer: 2, Latest: 2, HasVersions: true, Quiescent: true}
	if msg := p.CheckLineView(v, nil); !strings.Contains(msg, "lost store") {
		t.Errorf("stale copy: got %q", msg)
	}
	// Without versions the same view passes (runtime checker has no oracle).
	v.HasVersions = false
	if msg := p.CheckLineView(v, nil); msg != "" {
		t.Errorf("no-oracle view flagged: %q", msg)
	}

	// No owner and stale memory.
	v = &LineView{Line: "0", N: 2, States: []State{I, I}, Dirty: make([]bool, 2),
		Vers: make([]uint64, 2), MemVer: 1, Latest: 2, HasVersions: true, Quiescent: true}
	if msg := p.CheckLineView(v, nil); !strings.Contains(msg, "memory holds v1") {
		t.Errorf("stale memory: got %q", msg)
	}

	// Clean single-owner view passes everything.
	v = &LineView{Line: "0", N: 2, States: []State{MM, I}, Dirty: []bool{true, false},
		Vers: []uint64{2, 0}, MemVer: 1, Latest: 2, HasVersions: true, Quiescent: true}
	if msg := p.CheckLineView(v, nil); msg != "" {
		t.Errorf("clean view flagged: %q", msg)
	}
}

func TestAppendixARendersAllProtocols(t *testing.T) {
	out := AppendixA()
	for _, p := range Protocols() {
		if !strings.Contains(out, "### "+p.Name) {
			t.Errorf("appendix missing section for %s", p.Name)
		}
	}
	// The heap section must not carry the push column; the direct ones must.
	heap := out[:strings.Index(out, "### direct")]
	if strings.Contains(heap, "Putx") {
		t.Error("heap appendix table lists the Putx column")
	}
	if !strings.Contains(out[strings.Index(out, "### direct"):], "Putx") {
		t.Error("direct appendix table missing the Putx column")
	}
}
