package coherence

import (
	"flag"
	"os"
	"strings"
	"testing"
)

var updateTable = flag.Bool("update", false, "rewrite the DESIGN.md protocol-table appendix")

const (
	designPath  = "../../DESIGN.md"
	beginMarker = "<!-- protocol-table:begin -->"
	endMarker   = "<!-- protocol-table:end -->"
)

// TestProtocolTableAppendix keeps DESIGN.md's Appendix A in sync with
// the per-protocol tables rendered from the registry. On drift, rerun
// with -update to regenerate the block between the markers.
func TestProtocolTableAppendix(t *testing.T) {
	doc, err := os.ReadFile(designPath)
	if err != nil {
		t.Fatalf("read DESIGN.md: %v", err)
	}
	text := string(doc)
	begin := strings.Index(text, beginMarker)
	end := strings.Index(text, endMarker)
	if begin < 0 || end < 0 || end < begin {
		t.Fatalf("DESIGN.md is missing the %s / %s markers", beginMarker, endMarker)
	}

	want := "\n" + AppendixA()
	got := text[begin+len(beginMarker) : end]
	if got == want {
		return
	}
	if !*updateTable {
		t.Fatalf("DESIGN.md protocol-table appendix is stale; regenerate with:\n"+
			"  go test ./internal/coherence -run ProtocolTableAppendix -update\n"+
			"--- appendix ---\n%s\n--- generated ---\n%s", got, want)
	}
	updated := text[:begin+len(beginMarker)] + want + text[end:]
	if err := os.WriteFile(designPath, []byte(updated), 0o644); err != nil {
		t.Fatalf("write DESIGN.md: %v", err)
	}
}
