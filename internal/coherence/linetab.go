package coherence

import "dstore/internal/memsys"

// lineTab is a dense per-line table indexed by physical line number.
// The page table allocates physical frames sequentially from zero, so
// the line numbers a workload touches form a compact prefix and a flat
// slice replaces the per-address hash maps on the protocol hot path:
// a lookup is one bounds check and an index instead of a hash probe,
// and steady state allocates nothing.
//
// The zero value of T must mean "absent" (version 0, no flags, nil
// transaction): clearing an entry writes the zero value, exactly
// mirroring the map-delete semantics it replaces.
type lineTab[T any] struct{ v []T }

// at returns the entry for a line, growing the table to cover it. The
// returned pointer is invalidated by the next at() call on the same
// table (growth reallocates), so callers must not hold it across one.
func (t *lineTab[T]) at(line memsys.Addr) *T {
	i := memsys.LineNum(line)
	if i >= uint64(len(t.v)) {
		t.grow(i)
	}
	return &t.v[i]
}

func (t *lineTab[T]) grow(i uint64) {
	n := uint64(1024)
	for n <= i {
		n *= 2
	}
	nv := make([]T, n)
	copy(nv, t.v)
	t.v = nv
}

// lineState is a Ctrl's per-line protocol bookkeeping, packing what
// used to live in three separate maps (ver, wbBuf, wbStale).
type lineState struct {
	// ver is the resident data version (the functional oracle standing
	// in for data values); 0 means no version recorded.
	ver uint64
	// wbVer is the version of the in-flight buffered writeback, valid
	// only while lsWB is set.
	wbVer uint64
	flags uint8
}

const (
	// lsWB marks a dirty evicted line buffered until the memory
	// controller acknowledges its writeback; probes hitting it supply
	// data from the buffer, closing the eviction race.
	lsWB uint8 = 1 << iota
	// lsWBStale marks a buffered writeback whose line has since been
	// granted exclusively to another agent: the writeback must still
	// reach memory, but the buffered data must neither satisfy local
	// loads nor supply later probes.
	lsWBStale
)
