package coherence

import (
	"testing"

	"dstore/internal/memsys"
	"dstore/internal/sim"
)

// TestMSHRFullStallMixedTraffic drives a 1-entry MSHR file with
// interleaved loads and stores to distinct lines: every access behind
// the full MSHR must stall, drain in order, and complete with the
// stored versions intact.
func TestMSHRFullStallMixedTraffic(t *testing.T) {
	r := newRig(t, 1, 4096, 2)
	const n = 12
	completed := make([]bool, n)
	for i := 0; i < n; i++ {
		typ := memsys.Load
		var ver uint64
		if i%3 == 0 {
			typ = memsys.Store
			ver = uint64(100 + i)
		}
		r.gpu.Access(&memsys.Request{Type: typ, Addr: line0 + memsys.Addr(i)*memsys.LineSize,
			Ver: ver, Done: func(sim.Tick) { completed[i] = true }})
	}
	r.e.Run()
	for i, done := range completed {
		if !done {
			t.Fatalf("access %d never completed behind the full MSHR", i)
		}
	}
	if r.gpu.Counters().Get("mshr_stalls") == 0 {
		t.Error("no MSHR stalls recorded with 1 entry and 12 distinct lines")
	}
	for i := 0; i < n; i += 3 {
		line := line0 + memsys.Addr(i)*memsys.LineSize
		if got := r.gpu.Ver(line); got != uint64(100+i) {
			t.Errorf("line %d: version %d after drain, want %d", i, got, 100+i)
		}
	}
}

// TestMSHRStallDoesNotReorderSameLine checks a store stalled behind a
// full MSHR still applies after the load fill for its line: the drain
// path must not lose the program's per-line order.
func TestMSHRStallDoesNotReorderSameLine(t *testing.T) {
	r := newRig(t, 1, 4096, 2)
	other := line0 + 64*memsys.LineSize
	done := 0
	// First miss occupies the single MSHR; the same-line store behind it
	// merges, the other-line load stalls.
	r.gpu.Access(&memsys.Request{Type: memsys.Load, Addr: line0, Done: func(sim.Tick) { done++ }})
	r.gpu.Access(&memsys.Request{Type: memsys.Store, Addr: line0, Ver: 7, Done: func(sim.Tick) { done++ }})
	r.gpu.Access(&memsys.Request{Type: memsys.Load, Addr: other, Done: func(sim.Tick) { done++ }})
	r.e.Run()
	if done != 3 {
		t.Fatalf("completed %d of 3 accesses", done)
	}
	if st := r.gpu.State(line0); st != MM {
		t.Errorf("merged store left line in %s, want MM", StateName(st))
	}
	if got := r.gpu.Ver(line0); got != 7 {
		t.Errorf("merged store version %d, want 7", got)
	}
}

// TestWriteBufferDrainUnderPressure forces a storm of dirty evictions
// through a 4-line cache: two store passes over 16 lines keep the
// writeback buffer loaded while victims re-enter, exercising both the
// in-flight-writeback self-serve path and the probe-hits-wbBuf path.
// Every line must end at its second-pass version, observable from the
// peer, with the buffer fully drained.
func TestWriteBufferDrainUnderPressure(t *testing.T) {
	r := newRig(t, 8, 256, 2) // 4 lines total: 2 sets x 2 ways
	const n = 16
	done := 0
	for pass, base := range []uint64{100, 200} {
		_ = pass
		for i := 0; i < n; i++ {
			r.cpu.Access(&memsys.Request{Type: memsys.Store,
				Addr: line0 + memsys.Addr(i)*memsys.LineSize,
				Ver:  base + uint64(i), Done: func(sim.Tick) { done++ }})
		}
	}
	r.e.Run()
	if done != 2*n {
		t.Fatalf("completed %d of %d stores", done, 2*n)
	}
	if wb := r.cpu.Counters().Get("writebacks_sent"); wb == 0 {
		t.Error("no writebacks with 32 stores through a 4-line cache")
	}
	if r.cpu.WBBufLen() != 0 {
		t.Errorf("%d writebacks still buffered after quiesce", r.cpu.WBBufLen())
	}
	// The peer must observe every second-pass version, wherever the line
	// ended up (CPU cache, in-flight writeback, or memory).
	for i := 0; i < n; i++ {
		req := r.do(r.gpu, memsys.Load, line0+memsys.Addr(i)*memsys.LineSize, 0)
		if req.Ver != 200+uint64(i) {
			t.Errorf("line %d: peer observed version %d, want %d", i, req.Ver, 200+uint64(i))
		}
	}
}

// TestProbeDuringWritebackStorm interleaves peer loads with the
// eviction storm so probes land while their lines sit in the writeback
// buffer; the buffer must keep supplying data until memory commits.
func TestProbeDuringWritebackStorm(t *testing.T) {
	r := newRig(t, 8, 256, 2)
	const n = 8
	stores := 0
	for i := 0; i < n; i++ {
		r.cpu.Access(&memsys.Request{Type: memsys.Store,
			Addr: line0 + memsys.Addr(i)*memsys.LineSize,
			Ver:  uint64(1 + i), Done: func(sim.Tick) { stores++ }})
	}
	loads := 0
	vers := make([]uint64, n)
	for i := 0; i < n; i++ {
		req := &memsys.Request{Type: memsys.Load,
			Addr: line0 + memsys.Addr(i)*memsys.LineSize}
		req.Done = func(tk sim.Tick) { loads++; vers[i] = req.Ver }
		r.gpu.Access(req)
	}
	r.e.Run()
	if stores != n || loads != n {
		t.Fatalf("completed %d stores, %d loads; want %d each", stores, loads, n)
	}
	for i, v := range vers {
		// A load racing its store may legitimately observe the pre-store
		// copy, but a version from a *different* line or a torn value is
		// a coherence bug.
		if v != 0 && v != uint64(1+i) {
			t.Errorf("line %d: observed version %d, want 0 or %d", i, v, 1+i)
		}
	}
	if r.cpu.WBBufLen() != 0 || r.gpu.WBBufLen() != 0 {
		t.Error("writeback buffers not drained after quiesce")
	}
	r.checkExclusivity(func() []memsys.Addr {
		out := make([]memsys.Addr, n)
		for i := range out {
			out[i] = line0 + memsys.Addr(i)*memsys.LineSize
		}
		return out
	}())
}
