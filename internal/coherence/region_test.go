package coherence

import (
	"testing"
	"testing/quick"

	"dstore/internal/memsys"
)

func TestRegionDirectoryClaimAndFilter(t *testing.T) {
	r := NewRegionDirectory(12, nil)
	a := memsys.Addr(0x4000)
	if !r.Filter(a, "cpu", GETX) {
		t.Error("first access did not claim and filter")
	}
	if !r.Filter(a+128, "cpu", GETS) {
		t.Error("owner's later access not filtered")
	}
	if owner, ok := r.Owner(a); !ok || owner != "cpu" {
		t.Errorf("owner = %q/%v", owner, ok)
	}
	if r.Counters().Get("probes_filtered") != 2 {
		t.Error("filter count wrong")
	}
}

func TestRegionDirectoryDowngradeOnCrossAccess(t *testing.T) {
	r := NewRegionDirectory(12, nil)
	a := memsys.Addr(0x4000)
	r.Filter(a, "cpu", GETX)
	if r.Filter(a+256, "gpu.l2.s0", GETS) {
		t.Error("cross-agent access was filtered (stale data risk)")
	}
	if _, ok := r.Owner(a); ok {
		t.Error("region still private after cross access")
	}
	// Even the old owner broadcasts now.
	if r.Filter(a, "cpu", GETS) {
		t.Error("shared region filtered")
	}
	if r.SharedRegions() != 1 {
		t.Errorf("shared regions = %d", r.SharedRegions())
	}
}

func TestRegionDirectoryRemoteLoadNeverFiltered(t *testing.T) {
	r := NewRegionDirectory(12, nil)
	a := memsys.Addr(0x8000)
	r.Filter(a, "cpu", GETX)
	if r.Filter(a, "cpu", RemoteLoad) {
		t.Error("RemoteLoad filtered — would miss a pushed copy in the GPU L2")
	}
}

func TestRegionDirectoryGroupsSlices(t *testing.T) {
	group := func(n string) string {
		if len(n) >= 3 && n[:3] == "gpu" {
			return "gpu"
		}
		return n
	}
	r := NewRegionDirectory(12, group)
	a := memsys.Addr(0x4000)
	if !r.Filter(a, "gpu.l2.s0", GETS) {
		t.Error("slice 0 claim failed")
	}
	// A sibling slice is the same domain: still filtered, not demoted.
	if !r.Filter(a+128, "gpu.l2.s1", GETS) {
		t.Error("sibling slice demoted its own domain's region")
	}
	if r.SharedRegions() != 0 {
		t.Error("region demoted despite single domain")
	}
}

func TestRegionDirectoryDistinctRegionsIndependent(t *testing.T) {
	r := NewRegionDirectory(12, nil)
	r.Filter(0x0000, "cpu", GETX)
	if !r.Filter(0x1000, "gpu.l2.s0", GETS) {
		t.Error("different region not independently claimable")
	}
	if r.SharedRegions() != 0 {
		t.Error("independent claims demoted something")
	}
}

// Property: a region is filtered only for its owning domain; once two
// domains touch it, never again.
func TestPropertyRegionDirectorySoundness(t *testing.T) {
	agents := []string{"cpu", "gpu.l2.s0", "gpu.l2.s1"}
	group := func(n string) string {
		if len(n) >= 3 && n[:3] == "gpu" {
			return "gpu"
		}
		return n
	}
	f := func(ops []uint8) bool {
		r := NewRegionDirectory(12, group)
		touched := map[uint64]map[string]bool{}
		for _, op := range ops {
			agent := agents[int(op)%len(agents)]
			a := memsys.Addr(op>>2) << 12
			reg := uint64(a) >> 12
			if touched[reg] == nil {
				touched[reg] = map[string]bool{}
			}
			touched[reg][group(agent)] = true
			skipped := r.Filter(a, agent, GETS)
			if skipped && len(touched[reg]) > 1 {
				// Skipping probes while another domain has touched the
				// region is only sound right at the downgrade access,
				// which returns false — so a skip here is a bug.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRegionDirectoryEndToEndCorrectness(t *testing.T) {
	// Producer-consumer with the filter attached: the consumer must
	// still observe the producer's data (the cross-access downgrade
	// forces the probe that finds the owner's copy).
	r := newRig(t, 8, 4096, 2)
	r.mem.AttachRegionDirectory(NewRegionDirectory(12, nil))
	r.do(r.cpu, memsys.Store, line0, 41)
	req := r.do(r.gpu, memsys.Load, line0, 0)
	if req.Ver != 41 {
		t.Fatalf("consumer saw version %d, want 41 (filter hid the owner)", req.Ver)
	}
	// CPU-private traffic after the claim must skip probes.
	probesBefore := r.mem.Counters().Get("probes_sent")
	r.do(r.cpu, memsys.Store, line0+0x2000, 42) // a fresh region
	r.do(r.cpu, memsys.Store, line0+0x2000+128, 43)
	if got := r.mem.Counters().Get("probes_sent"); got != probesBefore {
		t.Errorf("private-region stores sent %d probes", got-probesBefore)
	}
}
