package coherence

import (
	"fmt"

	"strings"

	"dstore/internal/dram"
	"dstore/internal/interconnect"
	"dstore/internal/memsys"
	"dstore/internal/obs"
	"dstore/internal/sim"
	"dstore/internal/stats"
)

// MemCtrl is the memory controller and coherence ordering point. It
// serialises transactions per line, broadcasts probes to the peer
// caches that could hold a copy (Hammer has no directory), collects
// acknowledgements, sources data from the owning cache or DRAM, and
// applies writebacks.
type MemCtrl struct {
	engine *sim.Engine
	name   string
	xbar   interconnect.Network
	dram   *dram.DRAM

	peers map[string]*Ctrl
	// probeTargets returns the peer names that must be probed for a
	// line, excluding the requester. The paper's topology has two
	// coherent agents per line: the CPU cache complex and the GPU L2
	// slice owning the address.
	probeTargets func(addr memsys.Addr, requester string) []string

	// proto is the registered protocol flavour whose invariant set
	// CheckInvariants evaluates (see registry.go); nil defaults to heap.
	proto *Protocol

	// busy and dramVer are dense per-line tables (see lineTab); queued
	// stays a map — it only holds lines with a transaction collision.
	busy      lineTab[*txn]
	busyCount int
	queued    map[memsys.Addr][]ReqMsg
	dramVer   lineTab[uint64]

	// pkts is the shared coherence packet pool (see pkt.go); txnPool
	// recycles transactions.
	pkts    []*pkt
	txnPool []*txn

	// regions, when non-nil, filters probes HSC-style (see
	// RegionDirectory).
	regions *RegionDirectory

	// Per-transaction watchdog (EnableWatchdog). wdInterval zero means
	// disabled: no scan events are ever scheduled, so the event
	// sequence is untouched.
	wdInterval sim.Tick
	wdLimit    sim.Tick
	wdOnStuck  func(error)
	wdArmed    bool
	wdTripped  bool

	// Observability (AttachObserver): nil in normal operation.
	obs   *obs.Observer
	obsID obs.CompID

	counters  *stats.Set
	requests  *stats.Counter
	reqGETS   *stats.Counter
	reqGETX   *stats.Counter
	reqWB     *stats.Counter
	reqRemote *stats.Counter
	probes    *stats.Counter
	wbs       *stats.Counter
	fromPeer  *stats.Counter
	fromDRAM  *stats.Counter
}

type txn struct {
	req        ReqMsg
	started    sim.Tick
	acksWanted int
	acks       []AckMsg
	// gen is bumped when the transaction is recycled, so a speculative
	// DRAM read that outlives its transaction (pkDramDone) can detect
	// that its txn pointer is stale and fizzle.
	gen uint64
	// Speculative-fetch bookkeeping: Hammer launches the DRAM read in
	// parallel with the probes and discards it if an owner responds.
	probesClean bool // all acks in, no owner
	dramDone    bool
	dataSent    bool
	// unblocked records the requester's completion notice. The
	// transaction closes only once BOTH the unblock and every expected
	// probe ack have arrived: on a fault-free fabric acks always beat
	// the unblock (the requester's data leaves the owner before its
	// ack), but injected delivery jitter can invert the race, and a
	// straggling ack must not leak into the next transaction on the
	// line.
	unblocked bool
}

// NewMemCtrl builds the controller. probeTargets defines the broadcast
// set per line.
func NewMemCtrl(engine *sim.Engine, name string, xbar interconnect.Network, d *dram.DRAM,
	probeTargets func(addr memsys.Addr, requester string) []string) *MemCtrl {
	m := &MemCtrl{
		engine:       engine,
		name:         name,
		xbar:         xbar,
		dram:         d,
		peers:        make(map[string]*Ctrl),
		probeTargets: probeTargets,
		queued:       make(map[memsys.Addr][]ReqMsg),
		counters:     stats.NewSet(),
	}
	m.requests = m.counters.Counter("requests")
	m.reqGETS = m.counters.Counter("requests_gets")
	m.reqGETX = m.counters.Counter("requests_getx")
	m.reqWB = m.counters.Counter("requests_wb")
	m.reqRemote = m.counters.Counter("requests_remote_load")
	m.probes = m.counters.Counter("probes_sent")
	m.wbs = m.counters.Counter("writebacks")
	m.fromPeer = m.counters.Counter("data_from_peer")
	m.fromDRAM = m.counters.Counter("data_from_dram")
	return m
}

// Name returns the controller's crossbar port name.
func (m *MemCtrl) Name() string { return m.name }

// Counters exposes the controller's statistics.
func (m *MemCtrl) Counters() *stats.Set { return m.counters }

// AddPeer registers a cache controller so probes and data can be
// delivered to it.
func (m *MemCtrl) AddPeer(c *Ctrl) { m.peers[c.name] = c }

// AttachRegionDirectory enables HSC-style probe filtering.
func (m *MemCtrl) AttachRegionDirectory(r *RegionDirectory) { m.regions = r }

// AttachObserver connects the ordering point to the observability
// layer: probe, grant and data sends record against its component.
func (m *MemCtrl) AttachObserver(o *obs.Observer) {
	if o == nil {
		return
	}
	m.obs = o
	m.obsID = o.Component(m.name)
}

// MemVer returns the version memory holds for a line (the oracle's view
// of DRAM contents).
func (m *MemCtrl) MemVer(a memsys.Addr) uint64 { return *m.dramVer.at(memsys.LineAlign(a)) }

// ReceiveRequest is invoked when a request message arrives (the caller
// has already paid the network delay).
func (m *MemCtrl) ReceiveRequest(req ReqMsg) {
	m.requests.Inc()
	switch req.Type {
	case GETS:
		m.reqGETS.Inc()
	case GETX:
		m.reqGETX.Inc()
	case WB:
		m.reqWB.Inc()
	case RemoteLoad:
		m.reqRemote.Inc()
	}
	line := memsys.LineAlign(req.Addr)
	req.Addr = line
	if *m.busy.at(line) != nil {
		m.queued[line] = append(m.queued[line], req)
		return
	}
	m.start(req)
}

// newTxn draws a transaction from the pool; the generation survives
// recycling (see txn.gen).
func (m *MemCtrl) newTxn(req ReqMsg) *txn {
	var t *txn
	if n := len(m.txnPool); n > 0 {
		t = m.txnPool[n-1]
		m.txnPool = m.txnPool[:n-1]
		t.req = req
		t.started = m.engine.Now()
		t.acksWanted = 0
		t.acks = t.acks[:0]
		t.probesClean, t.dramDone, t.dataSent, t.unblocked = false, false, false, false
	} else {
		t = &txn{req: req, started: m.engine.Now()}
	}
	return t
}

// specFetch launches the DRAM read racing the probes; the completion
// packet pins the transaction generation so a read outliving its
// transaction fizzles instead of corrupting the txn's successor.
func (m *MemCtrl) specFetch(line memsys.Addr, t *txn) {
	pk := m.pkt(pkDramDone)
	pk.t, pk.gen = t, t.gen
	m.dram.AccessArg(line, false, runPkt, pk)
}

func (m *MemCtrl) start(req ReqMsg) {
	line := req.Addr
	t := m.newTxn(req)
	*m.busy.at(line) = t
	m.busyCount++
	m.armWatchdog()

	if req.Type == WB {
		m.wbs.Inc()
		*m.dramVer.at(line) = req.Ver
		pk := m.pkt(pkWBDone)
		pk.rmsg = req
		m.dram.AccessArg(line, true, runPkt, pk)
		return
	}

	targets := m.probeTargets(line, req.From)
	if m.regions != nil && len(targets) > 0 && m.regions.Filter(line, req.From, req.Type) {
		targets = nil
	}
	if len(targets) == 0 {
		t.probesClean = true
		if req.Type == GETX {
			m.sendGrant(t, *m.dramVer.at(line))
			return
		}
		m.specFetch(line, t)
		return
	}
	t.acksWanted = len(targets)
	kind, ok := ProbeFor(req.Type)
	if !ok {
		panic(fmt.Sprintf("coherence: no probe kind for %v", req.Type))
	}
	if req.Type != GETX {
		// Speculative memory fetch (the Opteron/Hammer hallmark): the
		// DRAM read races the probes; an owner response wins and the
		// memory data is dropped — bandwidth spent either way.
		m.specFetch(line, t)
	}
	for _, tgt := range targets {
		m.probes.Inc()
		if m.obs != nil {
			m.obs.Msg(m.engine.Now(), m.obsID, obs.MsgProbe, line, m.obs.Component(tgt))
		}
		pk := m.pkt(pkRecvProbe)
		pk.c = m.peers[tgt]
		pk.probe = ProbeMsg{Kind: kind, Addr: line, Requester: req.From}
		m.xbar.SendArg(m.name, tgt, interconnect.CtrlMsgBytes, runPkt, pk)
	}
}

// writebackCommitted fires when DRAM has committed a writeback: it
// notifies the writer (so its writeback buffer entry clears) and closes
// the transaction.
func (m *MemCtrl) writebackCommitted(req ReqMsg) {
	pk := m.pkt(pkWBCommit)
	pk.rmsg = req
	m.xbar.SendArg(m.name, req.From, interconnect.CtrlMsgBytes, runPkt, pk)
	m.finish(req.Addr)
}

// maybeSendFromMemory forwards DRAM data once both the probes have come
// back clean and the speculative read has completed.
func (m *MemCtrl) maybeSendFromMemory(t *txn) {
	if t.dataSent || !t.probesClean || !t.dramDone {
		return
	}
	t.dataSent = true
	m.fromDRAM.Inc()
	m.sendData(t, *m.dramVer.at(t.req.Addr))
}

// ReceiveAck collects a probe acknowledgement. Hammer is 3-hop: an
// owner has already sent the data straight to the requester, so the
// controller only sources DRAM when nobody owned the line.
func (m *MemCtrl) ReceiveAck(a AckMsg) {
	line := memsys.LineAlign(a.Addr)
	t := *m.busy.at(line)
	if t == nil {
		panic(fmt.Sprintf("coherence: ack for idle line %#x", uint64(line)))
	}
	t.acks = append(t.acks, a)
	if len(t.acks) < t.acksWanted {
		return
	}
	defer m.maybeFinish(line, t)
	for i := range t.acks {
		if t.acks[i].HadData {
			// Owner-to-requester transfer already in flight; the
			// speculative DRAM read (if any) is discarded.
			m.fromPeer.Inc()
			return
		}
	}
	t.probesClean = true
	if t.req.Type == GETX {
		// No owner: the simulator's stores are line-granular, so the
		// write fully overwrites the line and a fetch-on-write would
		// be wasted bandwidth (write-combining / WriteInvalidate
		// semantics); the grant travels as a control message.
		m.sendGrant(t, *m.dramVer.at(t.req.Addr))
		return
	}
	m.maybeSendFromMemory(t)
}

// sendGrant delivers write permission without data (full-line write).
func (m *MemCtrl) sendGrant(t *txn, ver uint64) {
	d := DataMsg{Addr: t.req.Addr, Ver: ver, Grant: GrantState(GETX, false, false)}
	requester := t.req.From
	if m.obs != nil {
		m.obs.Msg(m.engine.Now(), m.obsID, obs.MsgGrant, d.Addr, m.obs.Component(requester))
	}
	pk := m.pkt(pkRecvData)
	pk.c, pk.data = m.peers[requester], d
	m.xbar.SendArg(m.name, requester, interconnect.CtrlMsgBytes, runPkt, pk)
}

// anySharer reports whether a probe ack showed a surviving shared copy
// (possible only for GETS; GETX probes invalidate).
func (m *MemCtrl) anySharer(t *txn) bool {
	if t.req.Type != GETS {
		return false
	}
	for _, a := range t.acks {
		if a.Present || a.HadData {
			return true
		}
	}
	return false
}

// sendData delivers memory-sourced data to the requester with the
// right grant.
func (m *MemCtrl) sendData(t *txn, ver uint64) {
	// GETX → MM; GETS → S if a copy survived, else exclusive-clean M
	// (the Hammer grant); RemoteLoad → I (uncacheable, no install).
	grant := GrantState(t.req.Type, false, m.anySharer(t))
	d := DataMsg{Addr: t.req.Addr, Ver: ver, Grant: grant}
	requester := t.req.From
	if m.obs != nil {
		m.obs.Msg(m.engine.Now(), m.obsID, obs.MsgData, d.Addr, m.obs.Component(requester))
	}
	pk := m.pkt(pkRecvData)
	pk.c, pk.data = m.peers[requester], d
	m.xbar.SendArg(m.name, requester, interconnect.DataMsgBytes, runPkt, pk)
}

// ReceiveUnblock records the requester's completion notice and closes
// the transaction once every expected ack has also arrived.
func (m *MemCtrl) ReceiveUnblock(a memsys.Addr) {
	line := memsys.LineAlign(a)
	t := *m.busy.at(line)
	if t == nil {
		panic(fmt.Sprintf("coherence: unblock for idle line %#x", uint64(line)))
	}
	t.unblocked = true
	m.maybeFinish(line, t)
}

func (m *MemCtrl) maybeFinish(line memsys.Addr, t *txn) {
	if t.unblocked && len(t.acks) >= t.acksWanted {
		m.finish(line)
	}
}

func (m *MemCtrl) finish(line memsys.Addr) {
	tp := m.busy.at(line)
	t := *tp
	if t == nil {
		panic(fmt.Sprintf("coherence: finish on idle line %#x", uint64(line)))
	}
	*tp = nil
	m.busyCount--
	// Invalidate any speculative-fetch packet still in flight for this
	// transaction, then recycle it.
	t.gen++
	m.txnPool = append(m.txnPool, t)
	if q := m.queued[line]; len(q) > 0 {
		next := q[0]
		if len(q) == 1 {
			delete(m.queued, line)
		} else {
			m.queued[line] = q[1:]
		}
		// Start in a fresh event so completion cascades settle first.
		pk := m.pkt(pkStart)
		pk.rmsg = next
		m.engine.ScheduleArg(0, runPkt, pk)
	}
}

// Idle reports whether no transaction is in flight (test hook).
func (m *MemCtrl) Idle() bool { return m.busyCount == 0 }

// EnableWatchdog arms the per-transaction watchdog: every interval
// ticks (while transactions are in flight) the controller scans its
// busy set, and a transaction older than limit fails the run through
// onStuck with a full transaction dump — turning a would-be hang into a
// diagnosis. A nil onStuck panics instead. The scan is self-limiting:
// it only reschedules while transactions remain in flight, so a
// drained system still drains and the watchdog never keeps the event
// queue alive on its own.
func (m *MemCtrl) EnableWatchdog(interval, limit sim.Tick, onStuck func(error)) {
	if interval <= 0 || limit <= 0 {
		panic(fmt.Sprintf("coherence: non-positive watchdog interval %d / limit %d", interval, limit))
	}
	m.wdInterval = interval
	m.wdLimit = limit
	m.wdOnStuck = onStuck
	m.armWatchdog()
}

func (m *MemCtrl) armWatchdog() {
	if m.wdInterval == 0 || m.wdArmed || m.wdTripped || m.busyCount == 0 {
		return
	}
	m.wdArmed = true
	m.engine.Schedule(m.wdInterval, m.watchdogScan)
}

func (m *MemCtrl) watchdogScan() {
	m.wdArmed = false
	if m.wdTripped || m.busyCount == 0 {
		return
	}
	now := m.engine.Now()
	for _, line := range m.busyLines() {
		t := *m.busy.at(line)
		if age := now - t.started; age > m.wdLimit {
			m.wdTripped = true
			err := fmt.Errorf(
				"coherence: transaction for line %#x (%s from %s) stuck for %d ticks (limit %d)\n%s",
				uint64(line), t.req.Type, t.req.From, age, m.wdLimit, m.TransactionDump())
			if m.wdOnStuck == nil {
				panic(err)
			}
			m.wdOnStuck(err)
			return
		}
	}
	m.armWatchdog()
}

// busyLines returns the in-flight lines in address order, so every dump
// and scan is deterministic. The dense table scans in ascending line
// number, which IS address order — no sort needed.
func (m *MemCtrl) busyLines() []memsys.Addr {
	lines := make([]memsys.Addr, 0, m.busyCount)
	for i, t := range m.busy.v {
		if t != nil {
			lines = append(lines, memsys.Addr(uint64(i)<<memsys.LineShift))
		}
	}
	return lines
}

// TransactionDump renders every in-flight transaction and its queue in
// address order: the diagnosis attached to watchdog trips and push
// retry exhaustion.
func (m *MemCtrl) TransactionDump() string {
	var b strings.Builder
	now := m.engine.Now()
	fmt.Fprintf(&b, "transaction dump at tick %d: %d in flight\n", now, m.busyCount)
	for _, line := range m.busyLines() {
		t := *m.busy.at(line)
		fmt.Fprintf(&b,
			"  line %#x: %s from %s, age %d, acks %d/%d, probesClean=%v dramDone=%v dataSent=%v, %d queued\n",
			uint64(line), t.req.Type, t.req.From, now-t.started, len(t.acks), t.acksWanted,
			t.probesClean, t.dramDone, t.dataSent, len(m.queued[line]))
	}
	return b.String()
}
