// Package coherence implements the cache coherence layer: a
// broadcast-based MOESI protocol in the style of AMD's Hammer (the
// MOESI_hammer configuration the paper bases its Fig. 3 on), plus the
// paper's direct-store extension.
//
// Stable states follow the paper's naming:
//
//	MM — exclusive and potentially locally modified (conventional M)
//	M  — exclusive but not written (conventional E); stores not allowed
//	O  — owns the block, unmodified copy responsibility, sharers may exist
//	S  — shared, read-only
//	I  — invalid
//
// The direct-store extension adds the remote-store path: a store whose
// virtual address falls in the reserved high-order range is never
// cached CPU-side. The CPU L1 controller takes the line to I from
// whatever state it held (I/S/M/MM → I, the bold transitions in the
// paper's Fig. 3) and forwards the data over the dedicated network as a
// PUTX; the GPU L2 slice that owns the address installs it I → MM (the
// blue dashed transition).
//
// Transaction serialisation: the memory controller is the ordering
// point. At most one coherence transaction is in flight per line
// system-wide; later requests for a busy line queue at the controller.
// This collapses the transient-state explosion of a full Ruby
// implementation while preserving the message sequences, hop counts and
// data movement the experiments measure.
package coherence

import (
	"fmt"

	"dstore/internal/memsys"
)

// State is a MOESI-Hammer stable state. I is the zero value so the cache
// array's invalid convention (state 0) matches.
type State = uint8

// Stable protocol states (paper Fig. 3).
const (
	I  State = 0
	S  State = 1
	O  State = 2
	M  State = 3 // exclusive clean: stores not allowed (must upgrade to MM)
	MM State = 4 // exclusive, potentially modified
)

// StateName returns the paper's name for a state.
func StateName(s State) string {
	switch s {
	case I:
		return "I"
	case S:
		return "S"
	case O:
		return "O"
	case M:
		return "M"
	case MM:
		return "MM"
	default:
		return fmt.Sprintf("State(%d)", s)
	}
}

// CanRead reports whether a load may be satisfied from state s.
func CanRead(s State) bool { return s != I }

// CanWrite reports whether a store may be performed in state s without a
// coherence transaction. Per the paper, stores are not allowed in M
// (exclusive clean) — but the M→MM upgrade is silent since no other node
// holds a copy, so the controller performs it locally.
func CanWrite(s State) bool { return s == MM }

// ReqType classifies requests arriving at the memory controller.
type ReqType uint8

// Request types.
const (
	// GETS asks for a readable copy.
	GETS ReqType = iota
	// GETX asks for an exclusive, writable copy; all other copies are
	// invalidated.
	GETX
	// WB writes back a dirty evicted line to memory.
	WB
	// RemoteLoad is an uncacheable read: the CPU loading from the
	// direct-store region. Data is returned but no copy installs and the
	// owner keeps its state.
	RemoteLoad
)

// String names the request type.
func (t ReqType) String() string {
	switch t {
	case GETS:
		return "GETS"
	case GETX:
		return "GETX"
	case WB:
		return "WB"
	case RemoteLoad:
		return "RemoteLoad"
	default:
		return fmt.Sprintf("ReqType(%d)", uint8(t))
	}
}

// ReqMsg travels requester → memory controller.
type ReqMsg struct {
	Type ReqType
	Addr memsys.Addr
	From string
	// Ver carries the data version for WB.
	Ver uint64
}

// ProbeKind classifies probes sent by the memory controller.
type ProbeKind uint8

// Probe kinds.
const (
	// PrbShare asks the target to surrender a readable copy: an owner
	// supplies data and downgrades to O; sharers report presence.
	PrbShare ProbeKind = iota
	// PrbInv asks the target to invalidate, supplying data if owner.
	PrbInv
	// PrbSnoop asks the target to supply data without any state change
	// (used for RemoteLoad's uncacheable reads).
	PrbSnoop
)

// String names the probe kind.
func (k ProbeKind) String() string {
	switch k {
	case PrbShare:
		return "PrbShare"
	case PrbInv:
		return "PrbInv"
	case PrbSnoop:
		return "PrbSnoop"
	default:
		return fmt.Sprintf("ProbeKind(%d)", uint8(k))
	}
}

// ProbeMsg travels memory controller → peer cache.
type ProbeMsg struct {
	Kind ProbeKind
	Addr memsys.Addr
	// Requester is the original requester's name (for tracing).
	Requester string
}

// AckMsg travels peer cache → memory controller in answer to a probe.
type AckMsg struct {
	Addr memsys.Addr
	From string
	// HadData reports the peer was owner and its copy (with Ver) is the
	// authoritative data.
	HadData bool
	// Present reports the peer held a (possibly shared) copy.
	Present bool
	// Dirty reports the surrendered data was modified relative to
	// memory.
	Dirty bool
	Ver   uint64
}

// DataMsg completes a miss at the requester. Hammer is a 3-hop
// protocol: when a peer cache owns the line it sends the data directly
// to the requester (the memory controller only sees a control-sized
// acknowledgement); otherwise the memory controller sources DRAM and
// sends the data itself.
type DataMsg struct {
	Addr memsys.Addr
	Ver  uint64
	// Grant is the state the requester installs (I for uncacheable
	// remote-load data).
	Grant State
	// Owned marks the data as dirty-with-respect-to-memory: the
	// requester becomes responsible for eventual writeback.
	Owned bool
}

// PutxMsg is the direct-store push: CPU L1 controller → GPU L2 slice
// over the dedicated network. The slice installs the line in MM.
type PutxMsg struct {
	Addr memsys.Addr
	Ver  uint64
	From string
	// Seq is non-zero only under the resilient push protocol (chaos
	// runs): it identifies the push for acknowledgement, retry and
	// receiver-side duplicate suppression. Zero means fire-and-forget
	// (the paper's baseline behaviour).
	Seq uint64
}

// PushAckMsg travels GPU L2 slice → CPU controller over the shared
// crossbar, acknowledging (or refusing) a resilient direct-store push.
// It exists only in chaos runs; the baseline push path sends nothing
// back.
type PushAckMsg struct {
	Addr memsys.Addr
	Seq  uint64
	// Nack asks the sender to retry later (injected receiver-side
	// faults; a real controller would assert it on resource conflicts).
	Nack bool
}
