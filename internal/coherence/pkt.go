package coherence

import (
	"dstore/internal/memsys"
	"dstore/internal/sim"
)

// completeReq is the static completion trampoline: scheduling it with a
// *memsys.Request argument replaces the per-completion closure.
func completeReq(arg any, now sim.Tick) { arg.(*memsys.Request).Complete(now) }

// pktKind discriminates what a pooled coherence packet does when it
// fires.
type pktKind uint8

const (
	// Controller side.
	pkProcess      pktKind = iota // c.process(req) after port arbitration
	pkProcessQuiet                // c.processQuiet(req) replay
	pkRemoteLoad                  // c.remoteLoadStart(req) after port arbitration
	pkRecvData                    // c.receiveData(data)
	pkRecvProbe                   // c.receiveProbe(probe) network delivery
	pkAnswerProbe                 // c.answerProbe(probe) after lookup delay
	pkRecvPutx                    // c.ReceivePutx(putx, req) push delivery

	// Memory-controller side.
	pkRecvReq     // m.ReceiveRequest(rmsg)
	pkRecvAck     // m.ReceiveAck(ack)
	pkRecvUnblock // m.ReceiveUnblock(line)
	pkStart       // m.start(rmsg) dequeued follower
	pkDramDone    // speculative fetch done: t.dramDone, maybeSendFromMemory
	pkWBDone      // writeback committed to DRAM: notify writer, finish
	pkWBCommit    // writer-side writeback-commit notice delivery
)

// pkt is a pooled coherence event carrier: one recycled object stands
// in for the closure a message send or delayed handler used to
// allocate. Packets are drawn from the memory controller's shared pool
// (every Ctrl holds its MemCtrl), scheduled through the engine's or
// network's static-function variants, dispatched by runPkt, and
// released back to the pool after dispatch — steady state allocates
// nothing per message.
type pkt struct {
	m    *MemCtrl // pool owner; also the target of mem-side kinds
	kind pktKind

	c    *Ctrl
	t    *txn
	gen  uint64 // txn generation pinned at schedule time (pkDramDone)
	req  *memsys.Request
	line memsys.Addr

	rmsg  ReqMsg
	probe ProbeMsg
	ack   AckMsg
	data  DataMsg
	putx  PutxMsg
}

// pkt draws a packet from the pool. Fields from a previous use are not
// zeroed: each kind reads only the fields its sender set.
func (m *MemCtrl) pkt(kind pktKind) *pkt {
	var pk *pkt
	if n := len(m.pkts); n > 0 {
		pk = m.pkts[n-1]
		m.pkts = m.pkts[:n-1]
	} else {
		pk = &pkt{m: m} //dstore:allow-alloc pool refill, amortized to zero in steady state
	}
	pk.kind = kind
	return pk
}

// runPkt is the single static dispatch function for all packets. The
// packet is released after dispatch: it is not in the pool while its
// handler runs, so handlers are free to draw new packets.
func runPkt(arg any, now sim.Tick) {
	pk := arg.(*pkt)
	m := pk.m
	switch pk.kind {
	case pkProcess:
		pk.c.process(pk.req)
	case pkProcessQuiet:
		pk.c.processQuiet(pk.req)
	case pkRemoteLoad:
		pk.c.remoteLoadStart(pk.req)
	case pkRecvData:
		pk.c.receiveData(pk.data)
	case pkRecvProbe:
		pk.c.receiveProbe(pk.probe)
	case pkAnswerProbe:
		pk.c.answerProbe(pk.probe)
	case pkRecvPutx:
		pk.c.ReceivePutx(pk.putx, pk.req)
	case pkRecvReq:
		m.ReceiveRequest(pk.rmsg)
	case pkRecvAck:
		m.ReceiveAck(pk.ack)
	case pkRecvUnblock:
		m.ReceiveUnblock(pk.line)
	case pkStart:
		m.start(pk.rmsg)
	case pkDramDone:
		// The speculative DRAM read can outlive its transaction (an
		// owner supplied the data and the transaction closed); a stale
		// generation means the txn was recycled and the read is a no-op,
		// matching the old closure's harmless late firing.
		if pk.t.gen == pk.gen {
			pk.t.dramDone = true
			m.maybeSendFromMemory(pk.t)
		}
	case pkWBDone:
		m.writebackCommitted(pk.rmsg)
	case pkWBCommit:
		if p := m.peers[pk.rmsg.From]; p != nil {
			p.writebackDone(pk.rmsg.Addr, pk.rmsg.Ver)
		}
	}
	pk.c, pk.t, pk.req = nil, nil, nil
	m.pkts = append(m.pkts, pk)
}
