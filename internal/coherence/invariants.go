package coherence

import (
	"fmt"
	"sort"

	"dstore/internal/memsys"
)

// CheckInvariants validates the MOESI single-writer/multi-reader
// invariants for the given lines across every registered peer cache:
//
//   - at most one owner (MM, M or O) per line;
//   - an exclusive holder (MM or M) implies every other cache is I;
//   - no in-flight transactions remain (the system must be drained).
//
// It is a debugging/verification aid for tests and for users embedding
// the simulator; a non-nil error means a protocol bug.
func (m *MemCtrl) CheckInvariants(lines []memsys.Addr) error {
	if !m.Idle() {
		return fmt.Errorf("coherence: %d transactions still in flight\n%s", m.busyCount, m.TransactionDump())
	}
	names := make([]string, 0, len(m.peers))
	for name := range m.peers { //dstore:allow-maprange keys sorted below
		names = append(names, name)
	}
	sort.Strings(names)
	for _, a := range lines {
		line := memsys.LineAlign(a)
		owners := 0
		exclusive := false
		holders := 0
		var desc string
		for _, name := range names {
			st := m.peers[name].State(line)
			if st == I {
				continue
			}
			holders++
			desc += fmt.Sprintf(" %s=%s", name, StateName(st))
			switch st {
			case MM, M:
				owners++
				exclusive = true
			case O:
				owners++
			}
		}
		if owners > 1 {
			return fmt.Errorf("coherence: line %#x has %d owners:%s", uint64(line), owners, desc)
		}
		if exclusive && holders > 1 {
			return fmt.Errorf("coherence: line %#x exclusive with %d holders:%s", uint64(line), holders, desc)
		}
	}
	return nil
}
