package coherence

import (
	"fmt"
	"sort"

	"dstore/internal/memsys"
)

// SetProtocol selects the registered protocol whose invariant set
// CheckInvariants evaluates. The default is the plain heap protocol;
// core.NewSystem wires the flavour matching its mode flags.
func (m *MemCtrl) SetProtocol(p Protocol) { m.proto = &p }

// protocol returns the configured protocol, defaulting to heap.
func (m *MemCtrl) protocol() *Protocol {
	if m.proto == nil {
		p := ProtocolFor(false, false, false)
		m.proto = &p
	}
	return m.proto
}

// CheckInvariants validates the registered protocol's invariant set
// for the given lines across every registered peer cache — for the
// standard protocols: at most one owner (MM, M or O) per line, and an
// exclusive holder (MM or M) implies every other cache is I. The
// system must be drained first (every line is viewed as quiescent);
// in-flight transactions are an error by themselves. Data-value
// invariants need a version oracle and are skipped here — the chaos
// harness layers its own oracle on top.
//
// It is a debugging/verification aid for tests and for users
// embedding the simulator; a non-nil error means a protocol bug.
func (m *MemCtrl) CheckInvariants(lines []memsys.Addr) error {
	if !m.Idle() {
		return fmt.Errorf("coherence: %d transactions still in flight\n%s", m.busyCount, m.TransactionDump())
	}
	names := make([]string, 0, len(m.peers))
	for name := range m.peers { //dstore:allow-maprange keys sorted below
		names = append(names, name)
	}
	sort.Strings(names)
	proto := m.protocol()
	v := LineView{
		N:         len(names),
		States:    make([]State, len(names)),
		Dirty:     make([]bool, len(names)),
		Vers:      make([]uint64, len(names)),
		Names:     names,
		Quiescent: true,
	}
	for _, a := range lines {
		line := memsys.LineAlign(a)
		v.Line = fmt.Sprintf("%#x", uint64(line))
		for i, name := range names {
			c := m.peers[name]
			v.States[i] = c.State(line)
			v.Vers[i] = c.Ver(line)
		}
		if msg := proto.CheckLineView(&v, nil); msg != "" {
			return fmt.Errorf("coherence: %s%s", msg, holderDesc(&v))
		}
	}
	return nil
}

// holderDesc renders the non-I holders of a line for error reports.
func holderDesc(v *LineView) string {
	desc := ""
	for i := 0; i < v.N; i++ {
		if v.States[i] != I {
			desc += fmt.Sprintf(" %s=%s", v.name(i), StateName(v.States[i]))
		}
	}
	if desc == "" {
		return ""
	}
	return " holders:" + desc
}
