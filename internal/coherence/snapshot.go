package coherence

import (
	"sort"

	"dstore/internal/sim"
	"dstore/internal/snap"
)

// SnapshotTo serialises a cache controller at a quiescent point: the
// protocol line table (sparse), the port cursor, the cache arrays and
// the counters. Transient state — MSHR entries, stalled requests,
// pending remote loads, buffered writebacks awaiting acks — is events
// in flight, which a drained engine cannot have; any of it non-empty
// marks the snapshot unusable. Chaos runs (recovery hooks attached)
// are never snapshotted: their replay tables are part of fault
// injection, not machine state.
func (c *Ctrl) SnapshotTo(w *snap.Writer) {
	w.Tag("ctrl")
	w.String(c.name)
	quiet := c.mshr.Len() == 0 && len(c.stalled) == 0 && len(c.remotePending) == 0 &&
		c.hooks == nil && c.pushSeq == 0
	w.Bool(quiet)
	w.I64(int64(c.portFree))
	w.U32(uint32(c.wbCount))

	// Sparse line table: count, then (line index, ver, wbVer, flags).
	n := 0
	for i := range c.lines.v {
		ls := &c.lines.v[i]
		if ls.ver != 0 || ls.wbVer != 0 || ls.flags != 0 {
			n++
		}
	}
	w.U32(uint32(n))
	for i := range c.lines.v {
		ls := &c.lines.v[i]
		if ls.ver == 0 && ls.wbVer == 0 && ls.flags == 0 {
			continue
		}
		w.U64(uint64(i))
		w.U64(ls.ver)
		w.U64(ls.wbVer)
		w.U8(ls.flags)
	}

	w.Bool(c.l1 != nil)
	if c.l1 != nil {
		c.l1.SnapshotTo(w)
	}
	c.l2.SnapshotTo(w)
	c.counters.SnapshotTo(w)
}

// RestoreFrom overwrites the controller's state from a snapshot taken
// on an identically named and shaped controller.
func (c *Ctrl) RestoreFrom(r *snap.Reader) {
	r.Tag("ctrl")
	if name := r.String(); r.Err() == nil && name != c.name {
		r.Failf("coherence %s: snapshot of controller %q", c.name, name)
	}
	if r.Err() == nil && !r.Bool() {
		r.Failf("coherence %s: snapshot was taken with transactions in flight or chaos attached", c.name)
	}
	if r.Err() != nil {
		return
	}
	if c.mshr.Len() != 0 || len(c.stalled) != 0 || len(c.remotePending) != 0 {
		r.Failf("coherence %s: restore into a controller with transactions in flight", c.name)
		return
	}
	c.portFree = sim.Tick(r.I64())
	c.wbCount = int(r.U32())

	c.lines = lineTab[lineState]{}
	n := r.U32()
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		idx := r.U64()
		ver := r.U64()
		wbVer := r.U64()
		flags := r.U8()
		if r.Err() != nil {
			return
		}
		*c.lines.atIndex(idx) = lineState{ver: ver, wbVer: wbVer, flags: flags}
	}

	hasL1 := r.Bool()
	if r.Err() != nil {
		return
	}
	if hasL1 != (c.l1 != nil) {
		r.Failf("coherence %s: snapshot L1 presence %v, configured %v", c.name, hasL1, c.l1 != nil)
		return
	}
	if c.l1 != nil {
		c.l1.RestoreFrom(r)
	}
	c.l2.RestoreFrom(r)
	c.counters.RestoreFrom(r)
}

// atIndex is at() addressed by line table index rather than line
// address (the index is LineNum of the physical line address).
func (t *lineTab[T]) atIndex(i uint64) *T {
	if i >= uint64(len(t.v)) {
		t.grow(i)
	}
	return &t.v[i]
}

// SnapshotTo serialises the ordering point: the memory version table
// (sparse), the optional region directory and the counters. Open
// transactions or queued collisions are in-flight events and mark the
// snapshot unusable, as does a tripped watchdog.
func (m *MemCtrl) SnapshotTo(w *snap.Writer) {
	w.Tag("memctrl")
	w.String(m.name)
	w.Bool(m.busyCount == 0 && len(m.queued) == 0 && !m.wdArmed && !m.wdTripped)

	n := 0
	for _, v := range m.dramVer.v {
		if v != 0 {
			n++
		}
	}
	w.U32(uint32(n))
	for i, v := range m.dramVer.v {
		if v == 0 {
			continue
		}
		w.U64(uint64(i))
		w.U64(v)
	}

	w.Bool(m.regions != nil)
	if m.regions != nil {
		m.regions.SnapshotTo(w)
	}
	m.counters.SnapshotTo(w)
}

// RestoreFrom overwrites the ordering point's state from a snapshot.
func (m *MemCtrl) RestoreFrom(r *snap.Reader) {
	r.Tag("memctrl")
	if name := r.String(); r.Err() == nil && name != m.name {
		r.Failf("coherence %s: snapshot of memory controller %q", m.name, name)
	}
	if r.Err() == nil && !r.Bool() {
		r.Failf("coherence %s: snapshot was taken with transactions open at the ordering point", m.name)
	}
	if r.Err() != nil {
		return
	}
	if m.busyCount != 0 || len(m.queued) != 0 {
		r.Failf("coherence %s: restore into an ordering point with transactions open", m.name)
		return
	}
	m.dramVer = lineTab[uint64]{}
	n := r.U32()
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		idx := r.U64()
		v := r.U64()
		if r.Err() != nil {
			return
		}
		*m.dramVer.atIndex(idx) = v
	}
	hasRegions := r.Bool()
	if r.Err() != nil {
		return
	}
	if hasRegions != (m.regions != nil) {
		r.Failf("coherence %s: snapshot region directory presence %v, configured %v", m.name, hasRegions, m.regions != nil)
		return
	}
	if m.regions != nil {
		m.regions.RestoreFrom(r)
	}
	m.counters.RestoreFrom(r)
}

// SnapshotTo serialises the probe filter's ownership state (sorted by
// region number for a deterministic stream) and counters.
func (d *RegionDirectory) SnapshotTo(w *snap.Writer) {
	w.Tag("regions")
	regs := make([]uint64, 0, len(d.owner))
	for reg := range d.owner { //dstore:allow-maprange keys sorted below
		regs = append(regs, reg)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	w.U32(uint32(len(regs)))
	for _, reg := range regs {
		w.U64(reg)
		w.String(d.owner[reg])
	}
	shared := make([]uint64, 0, len(d.shared))
	for reg := range d.shared { //dstore:allow-maprange keys sorted below
		if d.shared[reg] {
			shared = append(shared, reg)
		}
	}
	sort.Slice(shared, func(i, j int) bool { return shared[i] < shared[j] })
	w.U32(uint32(len(shared)))
	for _, reg := range shared {
		w.U64(reg)
	}
	d.counters.SnapshotTo(w)
}

// RestoreFrom overwrites the probe filter's state from a snapshot.
func (d *RegionDirectory) RestoreFrom(r *snap.Reader) {
	r.Tag("regions")
	d.owner = make(map[uint64]string) //dstore:allow-alloc snapshot restore, cold path
	d.shared = make(map[uint64]bool)  //dstore:allow-alloc snapshot restore, cold path
	n := r.U32()
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		reg := r.U64()
		d.owner[reg] = r.String()
	}
	ns := r.U32()
	for i := uint32(0); i < ns && r.Err() == nil; i++ {
		d.shared[r.U64()] = true
	}
	d.counters.RestoreFrom(r)
}
