package coherence

import (
	"testing"
)

// FuzzTransition drives the extracted transition function with
// arbitrary (state, event) bytes — including values far outside the
// enums — and checks the safety contract the model checker and the
// runtime controllers both rely on:
//
//   - Transition never panics, whatever the input.
//   - Write permission is only ever granted in MM: any legal
//     transition whose next state permits stores must land in MM, and
//     only the store-commit and push-install events may acquire it
//     from a non-MM state.
//   - Outcomes are internally consistent: a transition to I clears
//     dirtiness, an illegal outcome carries no effects, and data is
//     only supplied by probe reactions.
func FuzzTransition(f *testing.F) {
	for st := 0; st < NumStates; st++ {
		for ev := 0; ev < int(NumEvents); ev++ {
			f.Add(uint8(st), uint8(ev))
		}
	}
	f.Add(uint8(255), uint8(255))
	f.Fuzz(func(t *testing.T, stb, evb byte) {
		st, ev := State(stb), Event(evb)
		out := Transition(st, ev) // must not panic
		if !out.OK {
			if out.Next != I || out.Data != NoData || out.Present || out.Dirty != DirtyKeep {
				t.Fatalf("Transition(%d, %d): illegal outcome carries effects: %+v", stb, evb, out)
			}
			return
		}
		if CanWrite(out.Next) && out.Next != MM {
			t.Fatalf("Transition(%s, %s) grants write permission outside MM: %s",
				StateName(st), EventName(ev), StateName(out.Next))
		}
		if out.Next == MM && st != MM {
			switch ev {
			case EvStoreHit, EvFillMM, EvPushInstall, EvDirectStore:
			default:
				t.Fatalf("Transition(%s, %s) reaches MM via a non-store event", StateName(st), EventName(ev))
			}
		}
		if st != I && out.Next == I && out.Dirty != DirtyClear {
			t.Fatalf("Transition(%s, %s) invalidates without clearing dirty", StateName(st), EventName(ev))
		}
		switch ev {
		case EvProbeShare, EvProbeInv, EvProbeSnoop:
		default:
			if out.Data != NoData || out.Present {
				t.Fatalf("Transition(%s, %s) supplies data outside a probe reaction: %+v",
					StateName(st), EventName(ev), out)
			}
		}
	})
}
